#!/usr/bin/env python3
"""Merge robustness leaderboard shards into one BENCH_robustness.json.

Usage::

    scripts/merge_robustness.py OUT.json SHARD.json [SHARD.json ...]
    scripts/merge_robustness.py OUT.json SHARD_DIR

Each shard is a ``fedguard-robustness-v1`` leaderboard (one
``bench_robustness`` invocation — e.g. the matrix split across machines with
``--config`` axis overrides, or a re-run of a handful of cells by id). Cells
are deduplicated by cell id with later shards winning, so a targeted re-run
can patch individual rows of an earlier full sweep. All shards must agree on
the matrix seed — mixing seeds would produce a leaderboard no single seed can
replay, which defeats the (seed, cell-id) replay contract.

The merged file keeps the shard schema, sorts cells by id, and is emitted
with sorted keys + indent 2 + trailing newline so diffs stay reviewable.
"""
import json
import pathlib
import sys

SCHEMA = "fedguard-robustness-v1"


def shard_paths(arguments):
    paths = []
    for argument in arguments:
        path = pathlib.Path(argument)
        if path.is_dir():
            paths.extend(sorted(path.glob("*.json")))
        else:
            paths.append(path)
    return paths


def main():
    if len(sys.argv) < 3:
        print(f"usage: {sys.argv[0]} <output.json> <shard.json|shard-dir> ...",
              file=sys.stderr)
        return 2
    output = sys.argv[1]
    cells = {}
    seed = None
    matrix_names = set()
    rounds = 0
    shards = shard_paths(sys.argv[2:])
    if not shards:
        print("error: no shards found", file=sys.stderr)
        return 2
    for path in shards:
        try:
            with open(path) as f:
                board = json.load(f)
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: cannot read {path}: {error}", file=sys.stderr)
            return 2
        if board.get("schema") != SCHEMA:
            print(f"error: {path}: expected schema {SCHEMA}, "
                  f"got {board.get('schema')!r}", file=sys.stderr)
            return 2
        if seed is None:
            seed = board.get("seed")
        elif board.get("seed") != seed:
            print(f"error: {path}: matrix seed {board.get('seed')} != {seed}; "
                  "refusing to merge shards from different seeds", file=sys.stderr)
            return 2
        matrix_names.add(board.get("matrix", "custom"))
        rounds = max(rounds, board.get("rounds", 0))
        for row in board.get("cells", []):
            cells[row["cell"]] = row  # later shards win

    merged = {
        "schema": SCHEMA,
        "matrix": matrix_names.pop() if len(matrix_names) == 1 else "merged",
        "seed": seed,
        "rounds": rounds,
        "cells": [cells[cell_id] for cell_id in sorted(cells)],
    }
    with open(output, "w") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"{len(cells)} cells from {len(shards)} shard(s) -> {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
