#!/usr/bin/env bash
# Regenerate every paper table/figure plus the ablation and micro benches.
# Usage: scripts/run_all_benches.sh [build-dir] (default: build)
set -u
BUILD_DIR="${1:-build}"
for b in "$BUILD_DIR"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo
  echo "===================================================================="
  echo "### $(basename "$b")"
  echo "===================================================================="
  case "$b" in
    *micro*) "$b" ;;
    *) "$b" --quiet ;;
  esac
done
