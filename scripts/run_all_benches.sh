#!/usr/bin/env bash
# Regenerate every paper table/figure plus the ablation and micro benches.
# The micro benches additionally emit machine-readable kernel numbers to
# BENCH_kernels.json (op, shape, threads, ns/iter, GFLOP/s) for tracking the
# blocked/parallel tensor kernels across commits, and the round-pipeline
# bench emits BENCH_update_pipeline.json (zero-copy arena vs legacy-ownership
# round costs, Bulyan elimination old vs new), and the wire bench emits
# BENCH_wire.json (ψ codec encode/decode µs and bytes/round for fp32/q8/fp16
# at the paper's m=50, d≈100k traffic shape).
# Usage: scripts/run_all_benches.sh [build-dir] (default: build)
set -u
BUILD_DIR="${1:-build}"
SCRIPT_DIR="$(cd "$(dirname "$0")" && pwd)"
KERNEL_JSON_DIR="$(mktemp -d)"
PIPELINE_JSON_DIR="$(mktemp -d)"
WIRE_JSON_DIR="$(mktemp -d)"
trap 'rm -rf "$KERNEL_JSON_DIR" "$PIPELINE_JSON_DIR" "$WIRE_JSON_DIR"' EXIT

for b in "$BUILD_DIR"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo
  echo "===================================================================="
  echo "### $(basename "$b")"
  echo "===================================================================="
  case "$b" in
    *bench_obs*)
      # Raw google-benchmark report: scripts/check_obs_overhead.py compares
      # the traced/untraced medians against the 3% budget.
      "$b" --benchmark_out=BENCH_obs.json --benchmark_out_format=json
      ;;
    *update_pipeline*)
      "$b" --benchmark_out="$PIPELINE_JSON_DIR/$(basename "$b").json" \
           --benchmark_out_format=json
      ;;
    *bench_wire*)
      # ψ wire-codec encode/decode costs + bytes/round -> BENCH_wire.json.
      "$b" --benchmark_out="$WIRE_JSON_DIR/$(basename "$b").json" \
           --benchmark_out_format=json
      ;;
    *bench_robustness*)
      # Smoke attack×defense leaderboard -> BENCH_robustness.json. Serial
      # kernels pin the bit-identical reproducibility contract the committed
      # baseline (scripts/robustness_baseline.json) is checked against below.
      "$b" --quiet --matrix smoke --kernel-arch serial --out BENCH_robustness.json
      ;;
    *bench_reactor*)
      # Connection-scaling numbers (single-tier vs 4-shard two-tier fan-in
      # at >=2k simulated clients) -> BENCH_reactor.json.
      "$b" --quiet --out BENCH_reactor.json
      ;;
    *micro*)
      # Keep the human-readable console output AND capture the JSON report.
      "$b" --benchmark_out="$KERNEL_JSON_DIR/$(basename "$b").json" \
           --benchmark_out_format=json
      ;;
    *) "$b" --quiet ;;
  esac
done

# Merge the per-binary google-benchmark reports into one flat record list.
if command -v python3 >/dev/null 2>&1; then
  python3 "$SCRIPT_DIR/merge_kernel_bench.py" "$KERNEL_JSON_DIR" BENCH_kernels.json \
    && echo && echo "kernel micro-bench summary written to BENCH_kernels.json"
  python3 "$SCRIPT_DIR/merge_kernel_bench.py" --shape-only "$PIPELINE_JSON_DIR" BENCH_update_pipeline.json \
    && echo "round-pipeline summary written to BENCH_update_pipeline.json"
  python3 "$SCRIPT_DIR/merge_kernel_bench.py" --shape-only "$WIRE_JSON_DIR" BENCH_wire.json \
    && echo "wire-codec summary written to BENCH_wire.json"
  [ -f BENCH_obs.json ] \
    && python3 "$SCRIPT_DIR/check_obs_overhead.py" BENCH_obs.json \
    && echo "observability overhead report written to BENCH_obs.json"
  [ -f BENCH_robustness.json ] \
    && python3 "$SCRIPT_DIR/check_robustness.py" BENCH_robustness.json \
         --baseline "$SCRIPT_DIR/robustness_baseline.json" \
    && echo "robustness leaderboard written to BENCH_robustness.json"
else
  echo "python3 not found; skipping BENCH_kernels.json / BENCH_update_pipeline.json" >&2
fi
