#!/usr/bin/env bash
# Regenerate every paper table/figure plus the ablation and micro benches.
# The micro benches additionally emit machine-readable kernel numbers to
# BENCH_kernels.json (op, shape, threads, ns/iter, GFLOP/s) for tracking the
# blocked/parallel tensor kernels across commits.
# Usage: scripts/run_all_benches.sh [build-dir] (default: build)
set -u
BUILD_DIR="${1:-build}"
SCRIPT_DIR="$(cd "$(dirname "$0")" && pwd)"
KERNEL_JSON_DIR="$(mktemp -d)"
trap 'rm -rf "$KERNEL_JSON_DIR"' EXIT

for b in "$BUILD_DIR"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo
  echo "===================================================================="
  echo "### $(basename "$b")"
  echo "===================================================================="
  case "$b" in
    *micro*)
      # Keep the human-readable console output AND capture the JSON report.
      "$b" --benchmark_out="$KERNEL_JSON_DIR/$(basename "$b").json" \
           --benchmark_out_format=json
      ;;
    *) "$b" --quiet ;;
  esac
done

# Merge the per-binary google-benchmark reports into one flat record list.
if command -v python3 >/dev/null 2>&1; then
  python3 "$SCRIPT_DIR/merge_kernel_bench.py" "$KERNEL_JSON_DIR" BENCH_kernels.json \
    && echo && echo "kernel micro-bench summary written to BENCH_kernels.json"
else
  echo "python3 not found; skipping BENCH_kernels.json" >&2
fi
