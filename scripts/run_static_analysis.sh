#!/usr/bin/env bash
# The whole-repo static-analysis gate (docs/STATIC_ANALYSIS.md), four layers:
#
#   1. clang-tidy over src/, tests/, bench/, examples/ using the curated
#      .clang-tidy profile and build/compile_commands.json. Skipped with a
#      warning when clang-tidy is not installed (this container ships only
#      gcc); the lint and sanitizer layers still gate the tree.
#   2. scripts/fedguard_lint.py — repo-specific invariants (rng funnel, no
#      unordered iteration in aggregation paths, logging discipline, no naked
#      new/delete, mandatory test TIMEOUTs, documented config keys, the
#      architecture layer DAG, and the mutex-annotation rules).
#   3. Sanitizer matrix: full ctest under -DFEDGUARD_SANITIZE=address,undefined
#      (FEDGUARD_ASSERTS defaults ON there, arming FEDGUARD_CHECK /
#      FEDGUARD_CHECK_FINITE at the aggregator and kernel boundaries).
#   4. clang Thread Safety Analysis: src/ compiled with clang++ and
#      -DFEDGUARD_THREAD_SAFETY=ON (-Wthread-safety as errors), checking the
#      FEDGUARD_* lock annotations in src/util/thread_annotations.hpp.
#      Skipped with a warning when clang++ is not installed.
#
# Usage: scripts/run_static_analysis.sh [--skip-sanitizers] [--tidy-jobs N]
#                                       [--strict]
#   --strict  a missing clang toolchain (layer 1 / layer 4) fails the gate
#             instead of warn-skipping — for CI images that must have it.
# Exits non-zero on any surviving finding.
set -eu

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
REPO_ROOT="$(dirname "$SCRIPT_DIR")"
cd "$REPO_ROOT"

SKIP_SANITIZERS=0
STRICT=0
TIDY_JOBS="$(nproc)"
while [ $# -gt 0 ]; do
  case "$1" in
    --skip-sanitizers) SKIP_SANITIZERS=1; shift ;;
    --strict) STRICT=1; shift ;;
    --tidy-jobs) TIDY_JOBS="$2"; shift 2 ;;
    -h|--help) sed -n '2,25p' "$0"; exit 0 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

FAILED=0

# ---- Layer 1: clang-tidy ----------------------------------------------------
echo "== layer 1: clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  # compile_commands.json comes from the normal build tree
  # (CMAKE_EXPORT_COMPILE_COMMANDS is ON in the top-level CMakeLists).
  if [ ! -f build/compile_commands.json ]; then
    cmake -B build -S .
  fi
  # Every translation unit in the four first-party roots.
  mapfile -t TIDY_SOURCES < <(find src tests bench examples -name '*.cpp' \
      ! -path 'tests/lint_fixtures/*' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p build -j "$TIDY_JOBS" -quiet "${TIDY_SOURCES[@]}" || FAILED=1
  else
    for source in "${TIDY_SOURCES[@]}"; do
      clang-tidy -p build --quiet "$source" || FAILED=1
    done
  fi
elif [ "$STRICT" -eq 1 ]; then
  echo "ERROR: clang-tidy not found on PATH and --strict is set." >&2
  FAILED=1
else
  echo "WARNING: clang-tidy not found on PATH; skipping layer 1." >&2
  echo "         Install clang-tidy (or run in an image that has it) for full coverage." >&2
fi

# ---- Layer 2: fedguard-lint -------------------------------------------------
echo "== layer 2: fedguard-lint =="
python3 "$SCRIPT_DIR/fedguard_lint.py" --root "$REPO_ROOT" || FAILED=1

# ---- Layer 3: sanitizer matrix ----------------------------------------------
if [ "$SKIP_SANITIZERS" -eq 1 ]; then
  echo "== layer 3: sanitizers (skipped by --skip-sanitizers) =="
else
  echo "== layer 3: ASan+UBSan full suite (FEDGUARD_ASSERTS on) =="
  "$SCRIPT_DIR/run_tier1_tests.sh" --sanitize address,undefined || FAILED=1
fi

# ---- Layer 4: clang thread-safety analysis ----------------------------------
echo "== layer 4: clang thread-safety analysis =="
if command -v clang++ >/dev/null 2>&1; then
  # Dedicated build dir: the tree is compiled with clang++ and every
  # -Wthread-safety diagnostic promoted to an error. Library targets only —
  # the annotations live in src/, and this keeps the layer independent of
  # GTest/benchmark being visible to clang.
  if cmake -B build-tsa -S "$REPO_ROOT" \
        -DCMAKE_CXX_COMPILER=clang++ \
        -DFEDGUARD_THREAD_SAFETY=ON \
        -DFEDGUARD_BUILD_TESTS=OFF \
        -DFEDGUARD_BUILD_BENCH=OFF \
        -DFEDGUARD_BUILD_EXAMPLES=OFF \
     && cmake --build build-tsa -j "$(nproc)"; then
    echo "thread-safety analysis: clean"
  else
    FAILED=1
  fi
elif [ "$STRICT" -eq 1 ]; then
  echo "ERROR: clang++ not found on PATH and --strict is set." >&2
  FAILED=1
else
  echo "WARNING: clang++ not found on PATH; skipping layer 4 (thread-safety)." >&2
  echo "         The FEDGUARD_* annotations compile to no-ops under gcc; run" >&2
  echo "         this layer on a clang-equipped machine (see docs/STATIC_ANALYSIS.md)." >&2
fi

if [ "$FAILED" -ne 0 ]; then
  echo "static-analysis gate: FAILED" >&2
  exit 1
fi
echo "static-analysis gate: OK"
