#!/usr/bin/env bash
# Assert that a binary built from tests/obs_trace_off_probe.cpp carries zero
# tracing machinery: the FEDGUARD_TRACE_SPAN macro must compile to nothing
# when FEDGUARD_TRACE_ENABLED is absent, so no fedguard::obs symbol may
# appear in the probe — defined, undefined, or inlined.
#
# Usage: check_trace_off_symbols.sh <probe-binary>
set -euo pipefail

probe="${1:?usage: check_trace_off_symbols.sh <probe-binary>}"

# The probe's own sanity check (exit 0 iff the loop computed the oracle).
"${probe}"

if ! command -v nm >/dev/null 2>&1; then
  echo "check_trace_off_symbols: nm not found; link success is the only check" >&2
  exit 0
fi

# nm -C demangles; any mention of the obs namespace means the macro leaked a
# Span (or something pulled in the tracer translation units).
if nm -C "${probe}" | grep -E 'fedguard::obs' >/dev/null; then
  echo "FAIL: fedguard::obs symbols found in trace-off probe:" >&2
  nm -C "${probe}" | grep -E 'fedguard::obs' >&2
  exit 1
fi

echo "ok: trace-off probe carries no fedguard::obs symbols"
