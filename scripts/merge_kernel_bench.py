#!/usr/bin/env python3
"""Merge google-benchmark JSON reports into one flat BENCH_kernels.json.

Input: a directory of ``--benchmark_out`` reports (one per micro-bench
binary). Output: a JSON list with one record per benchmark run::

    {"op": "BM_Matmul", "shape": "256", "threads": 4,
     "ns_per_iter": 17123.0, "gflops": 1957.5}

Threaded benches follow the repo convention that the LAST slash-separated
benchmark argument is the kernel thread count (see bench/bench_micro_tensor.cpp);
single-argument benches report threads = 1. ``gflops`` is derived from
google-benchmark's ``items_per_second`` counter, which the GEMM/axpy benches
set to flops per iteration; benches without it omit the field.

With ``--shape-only`` every slash-separated argument is part of the shape and
threads is reported as 1 — for benches whose arguments are all problem sizes
(the round-pipeline benches use [clients, dim]).

Two further conventions ride on the record:

* An op name ending in ``_serial`` / ``_avx2`` / ``_avx512`` marks a bench
  pinned to that SIMD kernel tier (bench_micro_tensor's per-arch GEMM rows);
  the suffix is surfaced as a ``kernel_arch`` field (``auto`` otherwise).
* Custom google-benchmark counters whose names start with ``wire_`` (the
  bench_wire byte-accounting counters) are copied onto the record verbatim.
"""
import json
import pathlib
import sys


def parse_benchmark(entry, shape_only=False):
    if entry.get("run_type") == "aggregate":
        return None
    name = entry["name"]
    parts = name.split("/")
    op = parts[0]
    args = parts[1:]
    # Last argument is the thread count when the bench has >= 2 args.
    if len(args) >= 2 and not shape_only:
        threads = int(args[-1])
        shape = "x".join(args[:-1])
    else:
        threads = 1
        shape = "x".join(args) if args else ""
    time_unit_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    scale = time_unit_ns.get(entry.get("time_unit", "ns"), 1.0)
    kernel_arch = "auto"
    for suffix in ("serial", "avx2", "avx512"):
        if op.endswith("_" + suffix):
            kernel_arch = suffix
            break
    record = {
        "op": op,
        "shape": shape,
        "threads": threads,
        "kernel_arch": kernel_arch,
        "ns_per_iter": entry["real_time"] * scale,
    }
    if "items_per_second" in entry:
        record["gflops"] = entry["items_per_second"] / 1e9
    for key, value in entry.items():
        if key.startswith("wire_"):
            record[key] = value
    return record


def main():
    argv = [a for a in sys.argv[1:] if a != "--shape-only"]
    shape_only = "--shape-only" in sys.argv[1:]
    if len(argv) != 2:
        print(f"usage: {sys.argv[0]} [--shape-only] <report-dir> <output.json>",
              file=sys.stderr)
        return 2
    report_dir = pathlib.Path(argv[0])
    records = []
    for report in sorted(report_dir.glob("*.json")):
        with report.open() as f:
            data = json.load(f)
        for entry in data.get("benchmarks", []):
            record = parse_benchmark(entry, shape_only)
            if record is not None:
                records.append(record)
    with open(argv[1], "w") as f:
        json.dump(records, f, indent=2)
        f.write("\n")
    print(f"{len(records)} benchmark records -> {argv[1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
