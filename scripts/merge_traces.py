#!/usr/bin/env python3
"""Stitch per-process FedGuard trace files into one Perfetto-loadable timeline.

Each federation process (root, shard aggregators, remote clients) can write
its own Chrome trace_event file via obs_trace_path / --trace. The live
TelemetryReport relay already merges client spans into the server's file at
round boundaries, but when processes instead trace locally (e.g. a client
started without telemetry relay, or traces collected from separate hosts),
this script merges them offline:

  $ scripts/merge_traces.py root.json shard0.json client0.json -o merged.json

Alignment: wall-clock offsets between hosts are unknowable from the traces
alone, so events are aligned per trace_id — for every (file, trace_id) pair
the earliest event is shifted onto the earliest event of that trace_id in the
first file that contains it. Files without shared trace ids are appended
unshifted. Each input keeps its own pid lane; colliding pids are renumbered
and recorded in process_name metadata so Perfetto labels the lanes.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load_events(path: str) -> list[dict]:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    events = data["traceEvents"] if isinstance(data, dict) else data
    if not isinstance(events, list):
        raise ValueError(f"{path}: not a trace_event file")
    return [e for e in events if isinstance(e, dict)]


def trace_id_of(event: dict) -> str | None:
    args = event.get("args")
    if isinstance(args, dict):
        tid = args.get("trace_id")
        if isinstance(tid, str):
            return tid
    return None


def earliest_by_trace_id(events: list[dict]) -> dict[str, float]:
    earliest: dict[str, float] = {}
    for event in events:
        tid = trace_id_of(event)
        if tid is None or "ts" not in event:
            continue
        ts = float(event["ts"])
        if tid not in earliest or ts < earliest[tid]:
            earliest[tid] = ts
    return earliest


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("traces", nargs="+", help="trace_event JSON files to merge")
    parser.add_argument("-o", "--output", default="merged_trace.json")
    args = parser.parse_args()

    merged: list[dict] = []
    # trace_id -> anchor ts (from the first file that contains it).
    anchors: dict[str, float] = {}
    used_pids: set[int] = set()
    next_pid = 1

    for path in args.traces:
        try:
            events = load_events(path)
        except (OSError, ValueError, KeyError) as error:
            print(f"error: {path}: {error}", file=sys.stderr)
            return 1

        earliest = earliest_by_trace_id(events)
        # One offset per file: the median per-trace-id shift is overkill for
        # steady clocks, so use the first shared trace id's shift.
        offset = 0.0
        for tid, ts in sorted(earliest.items()):
            if tid in anchors:
                offset = anchors[tid] - ts
                break
        for tid, ts in earliest.items():
            anchors.setdefault(tid, ts + offset)

        # Renumber colliding pid lanes so each file stays visually separate.
        file_pids = sorted({int(e.get("pid", 0)) for e in events})
        pid_map: dict[int, int] = {}
        for pid in file_pids:
            if pid not in used_pids:
                pid_map[pid] = pid
            else:
                while next_pid in used_pids:
                    next_pid += 1
                pid_map[pid] = next_pid
            used_pids.add(pid_map[pid])

        label = os.path.basename(path)
        for original, renumbered in pid_map.items():
            merged.append({
                "name": "process_name", "ph": "M", "pid": renumbered, "tid": 0,
                "args": {"name": f"{label} (pid {original})"},
            })
        for event in events:
            out = dict(event)
            if "ts" in out:
                out["ts"] = float(out["ts"]) + offset
            out["pid"] = pid_map[int(event.get("pid", 0))]
            merged.append(out)
        print(f"{path}: {len(events)} events, offset {offset:+.3f} us, "
              f"pids {sorted(pid_map.values())}")

    merged.sort(key=lambda e: (float(e.get("ts", -1.0)), e.get("ph") != "M"))
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": merged}, handle)
        handle.write("\n")
    print(f"wrote {len(merged)} events to {args.output} (open at ui.perfetto.dev)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
