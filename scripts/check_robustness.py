#!/usr/bin/env python3
"""Gate a BENCH_robustness.json leaderboard against the committed baseline.

Usage::

    scripts/check_robustness.py BENCH_robustness.json \
        [--baseline scripts/robustness_baseline.json]

The baseline (see scripts/robustness_baseline.json) has two kinds of
expectations, both keyed by leaderboard cell id:

* ``cells``: per-cell floors/ceilings —
    - ``min_accuracy`` / ``max_accuracy``: bounds on ``final_accuracy``.
      ``max_accuracy`` exists so a *broken attack* fails too: if the covert
      attack stops hurting plain FedAvg, the sweep is no longer testing
      anything.
    - ``min_ejection_recall``: floor on the obs-counter-derived attacker
      ejection recall (only meaningful for filtering defenses).
  A baseline cell missing from the leaderboard is a failure — shrinking the
  matrix must be an explicit baseline edit, not a silent pass.

* ``relations``: ordering constraints ``higher.final_accuracy >=
  lower.final_accuracy + margin``. These encode the science headline (e.g.
  the covert attack beats plain FedAvg but not Krum/FedCPA/FedGuard) so a
  defense regression that stays above its absolute floor still fails if it
  collapses into the undefended band.

Exit status: 0 when every expectation holds, 1 with one line per violation
otherwise, 2 on usage/schema errors.
"""
import argparse
import json
import pathlib
import sys

LEADERBOARD_SCHEMA = "fedguard-robustness-v1"
BASELINE_SCHEMA = "fedguard-robustness-baseline-v1"


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(2)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("leaderboard", help="BENCH_robustness.json to check")
    parser.add_argument(
        "--baseline",
        default=str(pathlib.Path(__file__).parent / "robustness_baseline.json"),
        help="baseline expectations (default: scripts/robustness_baseline.json)",
    )
    args = parser.parse_args()

    board = load_json(args.leaderboard)
    baseline = load_json(args.baseline)
    if board.get("schema") != LEADERBOARD_SCHEMA:
        print(f"error: {args.leaderboard}: expected schema {LEADERBOARD_SCHEMA}, "
              f"got {board.get('schema')!r}", file=sys.stderr)
        return 2
    if baseline.get("schema") != BASELINE_SCHEMA:
        print(f"error: {args.baseline}: expected schema {BASELINE_SCHEMA}, "
              f"got {baseline.get('schema')!r}", file=sys.stderr)
        return 2

    rows = {row["cell"]: row for row in board.get("cells", [])}
    failures = []

    for cell_id, bounds in baseline.get("cells", {}).items():
        row = rows.get(cell_id)
        if row is None:
            failures.append(f"{cell_id}: missing from leaderboard")
            continue
        accuracy = row["final_accuracy"]
        if "min_accuracy" in bounds and accuracy < bounds["min_accuracy"]:
            failures.append(
                f"{cell_id}: final_accuracy {accuracy:.4f} "
                f"< floor {bounds['min_accuracy']:.4f}")
        if "max_accuracy" in bounds and accuracy > bounds["max_accuracy"]:
            failures.append(
                f"{cell_id}: final_accuracy {accuracy:.4f} "
                f"> ceiling {bounds['max_accuracy']:.4f} (attack no longer bites)")
        if "min_ejection_recall" in bounds:
            recall = row["ejection_recall"]
            if recall < bounds["min_ejection_recall"]:
                failures.append(
                    f"{cell_id}: ejection_recall {recall:.4f} "
                    f"< floor {bounds['min_ejection_recall']:.4f}")

    for relation in baseline.get("relations", []):
        lower = rows.get(relation["lower"])
        higher = rows.get(relation["higher"])
        margin = relation.get("margin", 0.0)
        if lower is None or higher is None:
            missing = relation["lower"] if lower is None else relation["higher"]
            failures.append(f"relation {relation['lower']} < {relation['higher']}: "
                            f"missing cell {missing}")
            continue
        if higher["final_accuracy"] < lower["final_accuracy"] + margin:
            failures.append(
                f"relation violated: {relation['higher']} "
                f"({higher['final_accuracy']:.4f}) must exceed {relation['lower']} "
                f"({lower['final_accuracy']:.4f}) by >= {margin:.2f}")

    if failures:
        print(f"robustness regression: {len(failures)} violation(s) against "
              f"{args.baseline}:")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1

    checked = len(baseline.get("cells", {})) + len(baseline.get("relations", []))
    print(f"robustness leaderboard OK: {checked} expectations hold "
          f"({len(rows)} cells in {args.leaderboard})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
