#!/usr/bin/env python3
"""Observability overhead gate: traced and scraped rounds <= 3% over untraced.

Reads the raw google-benchmark report that scripts/run_all_benches.sh (or
scripts/run_tier1_tests.sh --obs) writes to BENCH_obs.json::

    build/bench/bench_obs --benchmark_out=BENCH_obs.json \\
                          --benchmark_out_format=json

and compares the median real_time of BM_ObsRoundTraced (full trace session)
and BM_ObsRoundScraped (live /metrics endpoint with one polling scraper
attached) against BM_ObsRoundUntraced (m=50, d=100k server round; see
bench/bench_obs.cpp). Exit 1 when either median exceeds the untraced median
by more than the threshold. Medians over 5 repetitions keep the gate stable
on a noisy box.
"""
import json
import sys

THRESHOLD = 0.03  # documented budget in docs/OBSERVABILITY.md


def median_real_time(data, op):
    for entry in data.get("benchmarks", []):
        # Aggregate rows are named "<op>_median" (run_name stays "<op>").
        if (entry.get("aggregate_name") == "median"
                and entry["name"].startswith(op)):
            return entry["real_time"], entry.get("time_unit", "ns")
    raise SystemExit(f"check_obs_overhead: no median aggregate for {op} "
                     "(run bench_obs with --benchmark_out_format=json)")


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_obs.json"
    with open(path) as f:
        data = json.load(f)
    untraced, unit = median_real_time(data, "BM_ObsRoundUntraced")
    failed = False
    for op, label in (("BM_ObsRoundTraced", "traced"),
                      ("BM_ObsRoundScraped", "scraped")):
        measured, _ = median_real_time(data, op)
        overhead = measured / untraced - 1.0
        print(f"untraced round: {untraced:.3f} {unit} | {label} round: "
              f"{measured:.3f} {unit} | overhead {overhead:+.2%} "
              f"(budget {THRESHOLD:.0%})")
        if overhead > THRESHOLD:
            print(f"FAIL: {label} overhead exceeds the documented budget",
                  file=sys.stderr)
            failed = True
    if failed:
        return 1
    print("ok: observability overhead within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
