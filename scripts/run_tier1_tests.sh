#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite —
# including the `net`-labeled socket/fault-injection tests, which carry
# explicit CTest TIMEOUT properties so a hung socket can never wedge the run.
# Usage: scripts/run_tier1_tests.sh [build-dir] (default: build)
set -eu
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j

# The whole suite (the net label is part of tier-1, not an opt-in extra).
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Belt and braces: confirm the net label resolves to its three suites even if
# someone filters the main run.
ctest --test-dir "$BUILD_DIR" -L net -N
