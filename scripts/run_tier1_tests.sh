#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite —
# including the `net`-labeled socket/fault-injection tests, which carry
# explicit CTest TIMEOUT properties so a hung socket can never wedge the run.
#
# Usage: scripts/run_tier1_tests.sh [options] [build-dir]
#   --sanitize address|undefined|thread|address,undefined
#       Build with -DFEDGUARD_SANITIZE=<preset> (FEDGUARD_ASSERTS then
#       defaults ON) in a preset-specific build dir (build-asan, build-ubsan,
#       build-tsan, build-asan-ubsan) unless one is given explicitly.
#   --lint
#       Run scripts/fedguard_lint.py over the repo before building; any
#       violation fails the run.
#   --thread-safety
#       Before the suite, compile src/ with clang++ under
#       -DFEDGUARD_THREAD_SAFETY=ON (clang Thread Safety Analysis as errors;
#       layer 4 of the static-analysis gate). Warn-skips when clang++ is not
#       installed — use scripts/run_static_analysis.sh --strict in CI.
#   --kernel-arch serial|avx2|avx512|auto
#       Export FEDGUARD_KERNEL_ARCH for the ctest run so the whole suite
#       executes under that SIMD kernel tier (the matrix leg of the dispatch
#       gate; an unavailable tier degrades down the chain). Golden-pinned
#       digests are only asserted under the serial tier — SIMD runs check
#       invariants and local/remote parity instead.
#   --obs
#       After the suite, run bench/bench_obs and fail if the fully-traced
#       m=50 d=100k round costs more than 3% over the untraced round
#       (scripts/check_obs_overhead.py; report lands in BENCH_obs.json).
#   --robustness
#       After the suite, re-run the scenario-labeled tests standalone, then
#       run the smoke robustness sweep (bench/bench_robustness, serial
#       kernels, BENCH_robustness.json) and gate it against
#       scripts/robustness_baseline.json via scripts/check_robustness.py.
#   [build-dir]  override the build directory (default: build).
set -eu

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
REPO_ROOT="$(dirname "$SCRIPT_DIR")"

SANITIZE=""
KERNEL_ARCH=""
RUN_LINT=0
RUN_THREAD_SAFETY=0
RUN_OBS=0
RUN_ROBUSTNESS=0
BUILD_DIR=""
while [ $# -gt 0 ]; do
  case "$1" in
    --sanitize)
      [ $# -ge 2 ] || { echo "--sanitize requires an argument" >&2; exit 2; }
      SANITIZE="$2"; shift 2 ;;
    --sanitize=*)
      SANITIZE="${1#--sanitize=}"; shift ;;
    --kernel-arch)
      [ $# -ge 2 ] || { echo "--kernel-arch requires an argument" >&2; exit 2; }
      KERNEL_ARCH="$2"; shift 2 ;;
    --kernel-arch=*)
      KERNEL_ARCH="${1#--kernel-arch=}"; shift ;;
    --lint)
      RUN_LINT=1; shift ;;
    --thread-safety)
      RUN_THREAD_SAFETY=1; shift ;;
    --obs)
      RUN_OBS=1; shift ;;
    --robustness)
      RUN_ROBUSTNESS=1; shift ;;
    -h|--help)
      sed -n '2,34p' "$0"; exit 0 ;;
    *)
      BUILD_DIR="$1"; shift ;;
  esac
done

case "$SANITIZE" in
  ""|address|undefined|thread|address,undefined) ;;
  *) echo "unknown --sanitize preset '$SANITIZE' (want address|undefined|thread|address,undefined)" >&2
     exit 2 ;;
esac

case "$KERNEL_ARCH" in
  ""|auto|serial|avx2|avx512) ;;
  *) echo "unknown --kernel-arch tier '$KERNEL_ARCH' (want auto|serial|avx2|avx512)" >&2
     exit 2 ;;
esac

if [ -z "$BUILD_DIR" ]; then
  case "$SANITIZE" in
    "")                BUILD_DIR="build" ;;
    address)           BUILD_DIR="build-asan" ;;
    undefined)         BUILD_DIR="build-ubsan" ;;
    thread)            BUILD_DIR="build-tsan" ;;
    address,undefined) BUILD_DIR="build-asan-ubsan" ;;
  esac
fi

if [ "$RUN_LINT" -eq 1 ]; then
  echo "== fedguard-lint =="
  python3 "$SCRIPT_DIR/fedguard_lint.py" --root "$REPO_ROOT"
fi

if [ "$RUN_THREAD_SAFETY" -eq 1 ]; then
  echo "== clang thread-safety analysis =="
  if command -v clang++ >/dev/null 2>&1; then
    cmake -B build-tsa -S "$REPO_ROOT" \
      -DCMAKE_CXX_COMPILER=clang++ \
      -DFEDGUARD_THREAD_SAFETY=ON \
      -DFEDGUARD_BUILD_TESTS=OFF \
      -DFEDGUARD_BUILD_BENCH=OFF \
      -DFEDGUARD_BUILD_EXAMPLES=OFF
    cmake --build build-tsa -j
  else
    echo "WARNING: clang++ not found; skipping thread-safety analysis (the" >&2
    echo "         FEDGUARD_* annotations compile to no-ops under gcc)." >&2
  fi
fi

CMAKE_ARGS=()
if [ -n "$SANITIZE" ]; then
  CMAKE_ARGS+=("-DFEDGUARD_SANITIZE=$SANITIZE")
fi

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" "${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}"
cmake --build "$BUILD_DIR" -j

# The whole suite (the net label is part of tier-1, not an opt-in extra).
if [ -n "$KERNEL_ARCH" ]; then
  echo "== kernel tier for this run: $KERNEL_ARCH (FEDGUARD_KERNEL_ARCH) =="
  export FEDGUARD_KERNEL_ARCH="$KERNEL_ARCH"
fi
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Belt and braces: confirm the net label resolves to its three suites even if
# someone filters the main run.
ctest --test-dir "$BUILD_DIR" -L net -N

if [ "$SANITIZE" = "thread" ]; then
  # The TSan leg is only worth its cost if it covers the genuinely concurrent
  # paths: the end-to-end scenario sweep and the obs tracing/metrics suite.
  # `ctest -N` exits 0 even when a filter matches nothing, so assert a
  # non-zero match count explicitly. (tests/CMakeLists.txt scales every
  # TIMEOUT 4x under this preset — TSan's happens-before bookkeeping is the
  # costliest instrumentation in the matrix.)
  echo "== tsan leg coverage check: scenario label + test_obs =="
  ctest --test-dir "$BUILD_DIR" -L scenario -N | grep -q 'Total Tests: [1-9]' || {
    echo "ERROR: TSan leg resolves no scenario-labeled tests" >&2; exit 1; }
  ctest --test-dir "$BUILD_DIR" -R '^test_obs$' -N | grep -q 'Total Tests: [1-9]' || {
    echo "ERROR: TSan leg does not include test_obs" >&2; exit 1; }
fi

if [ "$RUN_OBS" -eq 1 ]; then
  echo "== observability overhead gate =="
  "$BUILD_DIR"/bench/bench_obs --benchmark_out=BENCH_obs.json \
                               --benchmark_out_format=json
  python3 "$SCRIPT_DIR/check_obs_overhead.py" BENCH_obs.json
fi

if [ "$RUN_ROBUSTNESS" -eq 1 ]; then
  echo "== robustness smoke gate =="
  # The scenario label is part of the main suite above; the standalone run
  # keeps its timings visible when iterating on the sweep itself.
  ctest --test-dir "$BUILD_DIR" -L scenario --output-on-failure
  "$BUILD_DIR"/bench/bench_robustness --quiet --matrix smoke \
      --kernel-arch serial --out BENCH_robustness.json
  python3 "$SCRIPT_DIR/check_robustness.py" BENCH_robustness.json \
      --baseline "$SCRIPT_DIR/robustness_baseline.json"
fi
