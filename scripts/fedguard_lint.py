#!/usr/bin/env python3
"""fedguard-lint: project-specific invariant checks that generic tools cannot
express. Layer 2 of the static-analysis gate (see docs/STATIC_ANALYSIS.md).

Rules
-----
rng                  All randomness must flow through util::rng. No std::rand,
                     srand, std::random_device, or raw standard-library engine
                     construction (mt19937 & friends) outside src/util/rng.*.
                     Anything else silently forks the reproducibility story.
unordered-iteration  No iteration over std::unordered_map / std::unordered_set
                     in src/defenses/, src/fl/, src/net/, or
                     src/util/serialize.* — bucket order is
                     implementation-defined, so iterating one in aggregation,
                     federation, or wire-framing code is a hidden
                     nondeterminism hazard.
stdout               Library code (src/) must not write to stdout directly
                     (std::cout, printf, puts, ...). Use util::logging so
                     verbosity and formatting stay centrally controlled.
                     src/util/logging.* is the one exempt location.
naked-new            No naked `new` / `delete` anywhere; use containers,
                     std::make_unique, or std::make_shared.
test-timeout         Every fedguard_add_test() call must carry a TIMEOUT so a
                     hung test can never wedge the suite (the rule that already
                     protects the `net` label, made universal).
config-docs          Every descriptor config key parsed in
                     src/core/config_file.cpp (including all fault_*/remote_*/
                     kernel_* keys) must be documented somewhere under docs/.
no-pointset-copy     No re-concatenation of ψ update vectors in src/defenses/
                     (insert(xxx.end(), ...psi...)). The round arena makes
                     sub-selection an index operation: build an UpdateView /
                     PointsView selection instead of copying point sets.
no-raw-stopwatch     No util::Stopwatch in src/fl/, src/net/, or src/defenses/.
                     Round-path timing must come from obs::now_ns() so trace
                     spans and RoundRecord::round_seconds share one clock
                     domain (Table V timing can never disagree with the trace).
span-category-docs   Every string-literal category passed to
                     FEDGUARD_TRACE_SPAN must appear in docs/OBSERVABILITY.md —
                     the span taxonomy is a documented contract, not folklore.
                     Dynamic categories (e.g. std::string{"agg."} + name())
                     are covered by the documented agg.<strategy> pattern.
                     Likewise every metric name (or static name prefix, when
                     the registration concatenates a label) passed to
                     Registry::counter/gauge/histogram in src/ must appear in
                     docs/OBSERVABILITY.md: a scrape endpoint exporting
                     undocumented series is folklore too.
no-raw-intrinsics    No raw SIMD intrinsics (<immintrin.h>, _mm*_ calls,
                     __m128/__m256/__m512 types) outside src/tensor/kernels/.
                     The kernel TUs are the only code compiled with widened
                     ISA flags behind the runtime cpuid gate; an intrinsic
                     anywhere else either fails to compile or, worse, sneaks
                     past the gate and SIGILLs on older hosts.
sweep-roster         Every attack name produced by the AttackType → string
                     table in src/attacks/attack.cpp and every strategy name
                     from the StrategyKind table in src/core/experiment.cpp
                     must appear in the sweep rosters in
                     src/scenario/matrix.cpp — a new attack or defense cannot
                     silently stay off the robustness leaderboard.
layering             The #include graph over src/ must respect the
                     architecture layer DAG (util -> parallel -> tensor ->
                     data/nn -> models -> attacks/defenses -> fl -> net ->
                     core -> scenario, with obs includable from every layer
                     above util) and contain no file-level include cycles.
                     A back-edge (e.g. tensor -> defenses) would silently
                     erode the layering that keeps the serial-kernel
                     determinism oracle auditable.
no-unannotated-mutex Every mutex member in src/ must be a util::Mutex /
                     util::SharedMutex (std::mutex carries no capability
                     attributes, so clang's thread-safety analysis cannot see
                     it) and must be named by at least one FEDGUARD_*
                     annotation (GUARDED_BY / PT_GUARDED_BY / REQUIRES /
                     ACQUIRE / EXCLUDES) in the same file — a lock nothing
                     declares a contract against protects nothing.
                     src/util/thread_annotations.hpp is the one exempt
                     location (it implements the wrappers).
no-const-cast-mutex  No const_cast on a mutex. A mutex locked from a const
                     method is synchronization state, not logical state:
                     declare it mutable.
lock-discipline      No raw .lock()/.unlock() calls in src/ outside the RAII
                     guards in src/util/thread_annotations.hpp. Manual
                     lock/unlock pairs leak on early return and exceptions
                     and are invisible to scoped-capability analysis.
no-blocking-socket   No blocking socket calls (::poll, send_all, recv_all,
                     receive_message, accept_within, SO_RCVTIMEO/SO_SNDTIMEO
                     deadlines) in src/net/reactor*/shard* files. The reactor
                     tier holds thousands of connections on one thread; a
                     single blocking call stalls every one of them. Use the
                     edge-triggered read_some/write_some state machines and
                     epoll timeouts instead.

Allowlist
---------
Append an inline annotation to the offending line (or place it on the line
directly above):

    legacy_call();  // fedguard-lint: allow(stdout) CLI banner, not library path

The justification text after the closing parenthesis is mandatory; an
allow() without one is itself reported. `allow(all)` suppresses every rule
for that line.

Usage: fedguard_lint.py [--root DIR] [--list-rules] [--verbose]
Exit status: 0 clean, 1 violations found, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SOURCE_ROOTS = ("src", "tests", "bench", "examples")
SOURCE_SUFFIXES = {".cpp", ".hpp", ".h", ".cc"}
# Fixture trees carry deliberate violations for tests/test_lint.py; they are
# skipped unless the scan root itself points inside one.
EXCLUDED_DIR_NAMES = {"lint_fixtures", "build"}

RULES = {
    "rng": "randomness outside util::rng",
    "unordered-iteration": "iteration over unordered container in deterministic code",
    "stdout": "direct stdout write in library code (use util::logging)",
    "naked-new": "naked new/delete (use RAII wrappers)",
    "test-timeout": "fedguard_add_test without a TIMEOUT",
    "config-docs": "config key referenced in code but not documented in docs/",
    "no-pointset-copy": "psi re-concatenation in a defense (use an UpdateView selection)",
    "no-raw-stopwatch": "util::Stopwatch in round-path code (use obs::now_ns)",
    "span-category-docs": "span category or metric name missing from docs/OBSERVABILITY.md",
    "no-raw-intrinsics": "raw SIMD intrinsics outside src/tensor/kernels/",
    "sweep-roster": "attack/strategy name missing from the scenario sweep roster",
    "layering": "include crosses the architecture layer DAG backwards (or cycles)",
    "no-unannotated-mutex": "mutex member with no FEDGUARD_* annotation naming it",
    "no-const-cast-mutex": "const_cast on a mutex (declare it mutable instead)",
    "lock-discipline": "raw .lock()/.unlock() outside the RAII guards",
    "no-blocking-socket": "blocking socket call in a reactor-tier file",
    "allow-justification": "fedguard-lint allow() without a justification",
}

# `//` in C++, `#` in CMake files.
ALLOW_RE = re.compile(
    r"(?://|#)\s*fedguard-lint:\s*allow\(([a-z-]+)\)\s*(.*?)\s*$"
)

RNG_FORBIDDEN = re.compile(
    r"\bstd::rand\b|\bsrand\s*\(|\brandom_device\b|\bmt19937(?:_64)?\b"
    r"|\bminstd_rand0?\b|\bdefault_random_engine\b|\branlux(?:24|48)\b|\bknuth_b\b"
)

STDOUT_FORBIDDEN = re.compile(
    r"std::cout\b|std::clog\b|(?<![\w.])printf\s*\(|\bputs\s*\("
    r"|\bfprintf\s*\(\s*stdout\b|\bfputs\s*\([^,)]*,\s*stdout\s*\)"
)

NAKED_NEW = re.compile(r"\bnew\s+[A-Za-z_:(<]|\bnew\s*\[|\bdelete\s*\[\s*\]|\bdelete\s+[A-Za-z_*(]")

UNORDERED_DECL = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<")
UNORDERED_SCOPE_DIRS = ("src/defenses", "src/fl", "src/net")
UNORDERED_SCOPE_FILES = ("src/util/serialize.cpp", "src/util/serialize.hpp")

CONFIG_KEY_RE = re.compile(r'key\s*==\s*"([a-z0-9_]+)"|values\.find\("([a-z0-9_]+)"\)')

# Appending psi data to a growing buffer inside a defense reintroduces the
# per-iteration point-set copies the round arena exists to eliminate.
POINTSET_COPY = re.compile(r"\.insert\s*\(\s*\w+\s*\.\s*end\s*\(\s*\)\s*,[^;]*psi")
POINTSET_SCOPE_DIR = "src/defenses/"

# Round-path code must time through obs::now_ns (the tracer clock) so spans
# and RoundRecord::round_seconds can never disagree by clock domain.
STOPWATCH_RE = re.compile(r"\butil::Stopwatch\b")
STOPWATCH_SCOPE_DIRS = ("src/fl", "src/net", "src/defenses")

# String-literal span categories; dynamic first arguments (no leading quote)
# are exempt and covered by the documented agg.<strategy> pattern.
SPAN_CATEGORY_RE = re.compile(r'FEDGUARD_TRACE_SPAN\s*\(\s*"([^"]+)"')

# String-literal metric registrations (registry.counter("...") etc.) in src/;
# the captured leading literal is the name (or its static prefix when the call
# concatenates a label). Fully dynamic names (with_origin_label(...)) carry no
# leading quote and are exempt — they share a documented literal prefix.
METRIC_NAME_RE = re.compile(
    r'\.\s*(?:counter|gauge|histogram)\s*\(\s*"([A-Za-z_][A-Za-z0-9_]*)')
METRIC_DOCS_SCOPE_DIR = "src/"

# Raw SIMD intrinsics are confined to the runtime-dispatched kernel TUs: the
# intrinsic headers, _mm*_ calls, and vector register types.
INTRINSICS_RE = re.compile(
    r"#\s*include\s*<[a-z0-9_]*intrin\.h>|#\s*include\s*<arm_neon\.h>"
    r"|\b_mm\d*_\w+\s*\(|\b__m(?:128|256|512)[di]?\b"
)
INTRINSICS_SCOPE_DIR = "src/tensor/kernels/"

# Enum → string tables whose names must all be reachable from the robustness
# sweep rosters (the greppable kAttackRoster/kDefenseRoster string tables in
# src/scenario/matrix.cpp). Patterns run over raw text: the names live inside
# string literals, and a case split across lines must still match.
SWEEP_CASE_SOURCES = (
    ("src/attacks/attack.cpp",
     re.compile(r'case\s+AttackType::\w+\s*:\s*\n?\s*return\s*"([a-z0-9_]+)"')),
    ("src/core/experiment.cpp",
     re.compile(r'case\s+StrategyKind::\w+\s*:\s*\n?\s*return\s*"([a-z0-9_]+)"')),
)
SWEEP_ROSTER_FILE = "src/scenario/matrix.cpp"

# ---- Architecture layering (rule: layering) ---------------------------------
# Rank order of the enforced layer DAG over src/. A file may include only its
# own directory, strictly lower ranks, and `obs` (the observability layer is
# includable from everywhere above util — it must stay reachable from any
# layer without creating an edge the DAG doesn't already have). `obs` itself
# may reach only util. Derived from the dependency structure the tree has
# maintained since the seed; see docs/STATIC_ANALYSIS.md for the diagram.
LAYER_RANK = {
    "util": 0,
    "parallel": 1,
    "tensor": 2,
    "data": 3,
    "nn": 3,
    "models": 4,
    "attacks": 5,
    "defenses": 5,
    "fl": 6,
    "net": 7,
    "core": 8,
    "scenario": 9,
}
OBS_LAYER = "obs"
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

# ---- Lock discipline (rules: no-unannotated-mutex, no-const-cast-mutex,
#      lock-discipline) -------------------------------------------------------
# The annotated wrappers (and their raw std::mutex internals) live here; the
# mutex rules exempt this one file.
THREAD_ANNOTATIONS_FILE = "src/util/thread_annotations.hpp"

MUTEX_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?"
    r"(std::mutex|std::shared_mutex|(?:util::)?(?:Mutex|SharedMutex))"
    r"\s+(\w+)\s*;")
CONST_CAST_MUTEX_RE = re.compile(r"const_cast\s*<[^<>;]*[Mm]utex[^<>;]*>")
RAW_LOCK_RE = re.compile(r"(?:\.|->)\s*(lock|unlock)\s*\(")

# -- no-blocking-socket (reactor-tier files must never block) -----------------
# Scope: src/net/ files whose basename starts with "reactor" or "shard" — the
# single-threaded event-loop tier. Any of these calls stalls every connection
# the loop holds.
BLOCKING_SOCKET_RE = re.compile(
    r"::poll\s*\(|\b(?:recv_all|send_all|receive_message|accept_within|"
    r"set_receive_timeout|set_send_timeout)\s*\(")


def in_reactor_scope(relpath: str) -> bool:
    if not relpath.startswith("src/net/"):
        return False
    basename = relpath.rsplit("/", 1)[-1]
    return basename.startswith("reactor") or basename.startswith("shard")


class Violation:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure,
    so token scans never match inside documentation or message text."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" " if c != "\n" else c)
        i += 1
    return "".join(out)


def parse_allows(lines: list[str], relpath: str) -> tuple[dict[int, set[str]], list[Violation]]:
    """Map line number -> allowed rules. An annotation covers its own line and
    the next line (so a comment can sit above the code it excuses)."""
    allows: dict[int, set[str]] = {}
    problems: list[Violation] = []
    for idx, line in enumerate(lines, start=1):
        match = ALLOW_RE.search(line)
        if not match:
            continue
        rule, justification = match.group(1), match.group(2)
        if rule != "all" and rule not in RULES:
            problems.append(Violation(relpath, idx, "allow-justification",
                                      f"allow() names unknown rule '{rule}'"))
            continue
        if not justification:
            problems.append(Violation(relpath, idx, "allow-justification",
                                      "allow() requires a one-line justification"))
            continue
        for covered in (idx, idx + 1):
            allows.setdefault(covered, set()).add(rule)
    return allows, problems


def allowed(allows: dict[int, set[str]], line: int, rule: str) -> bool:
    granted = allows.get(line, set())
    return rule in granted or "all" in granted


def in_unordered_scope(relpath: str) -> bool:
    return relpath in UNORDERED_SCOPE_FILES or any(
        relpath.startswith(d + "/") for d in UNORDERED_SCOPE_DIRS
    )


def check_source_file(path: Path, relpath: str) -> list[Violation]:
    text = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = text.splitlines()
    allows, violations = parse_allows(raw_lines, relpath)
    code_lines = strip_comments_and_strings(text).splitlines()

    # Names of unordered containers declared in this file, for the iteration
    # check (declaration and membership lookups are fine; iteration is not).
    unordered_names: set[str] = set()
    if in_unordered_scope(relpath):
        for line in code_lines:
            for match in re.finditer(
                    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{=]*>\s+(\w+)", line):
                unordered_names.add(match.group(1))

    for idx, line in enumerate(code_lines, start=1):
        if relpath not in ("src/util/rng.cpp", "src/util/rng.hpp"):
            match = RNG_FORBIDDEN.search(line)
            if match and not allowed(allows, idx, "rng"):
                violations.append(Violation(
                    relpath, idx, "rng",
                    f"'{match.group(0).strip()}' bypasses util::rng; derive an Rng "
                    "from the experiment seed instead"))

        if relpath.startswith("src/") and not relpath.startswith("src/util/logging."):
            match = STDOUT_FORBIDDEN.search(line)
            if match and not allowed(allows, idx, "stdout"):
                violations.append(Violation(
                    relpath, idx, "stdout",
                    f"'{match.group(0).strip()}' writes to stdout from library code; "
                    "use util::log_info/log_debug"))

        match = NAKED_NEW.search(line)
        if match and not allowed(allows, idx, "naked-new"):
            violations.append(Violation(
                relpath, idx, "naked-new",
                f"'{match.group(0).strip()}' is a naked allocation; use a container "
                "or std::make_unique"))

        if relpath.startswith(POINTSET_SCOPE_DIR):
            match = POINTSET_COPY.search(line)
            if match and not allowed(allows, idx, "no-pointset-copy"):
                violations.append(Violation(
                    relpath, idx, "no-pointset-copy",
                    "re-concatenating psi vectors copies the point set; select "
                    "rows through an UpdateView/PointsView index selection instead"))

        if not relpath.startswith(INTRINSICS_SCOPE_DIR):
            match = INTRINSICS_RE.search(line)
            if match and not allowed(allows, idx, "no-raw-intrinsics"):
                violations.append(Violation(
                    relpath, idx, "no-raw-intrinsics",
                    f"'{match.group(0).strip()}' uses raw SIMD intrinsics outside "
                    "src/tensor/kernels/; go through the tensor::kernels dispatch "
                    "table so the cpuid gate stays the single point of ISA selection"))

        if relpath.startswith("src/") and relpath != THREAD_ANNOTATIONS_FILE:
            match = CONST_CAST_MUTEX_RE.search(line)
            if match and not allowed(allows, idx, "no-const-cast-mutex"):
                violations.append(Violation(
                    relpath, idx, "no-const-cast-mutex",
                    f"'{match.group(0).strip()}' casts constness off a mutex; a "
                    "lock taken from a const method is synchronization state — "
                    "declare the mutex mutable"))

            match = RAW_LOCK_RE.search(line)
            if match and not allowed(allows, idx, "lock-discipline"):
                violations.append(Violation(
                    relpath, idx, "lock-discipline",
                    f"raw .{match.group(1)}() call; manual lock/unlock leaks on "
                    "early return and is invisible to scoped-capability "
                    "analysis — use util::MutexLock (or another RAII guard)"))

        if in_reactor_scope(relpath):
            match = BLOCKING_SOCKET_RE.search(line)
            if match and not allowed(allows, idx, "no-blocking-socket"):
                violations.append(Violation(
                    relpath, idx, "no-blocking-socket",
                    f"'{match.group(0).strip()}' blocks the reactor thread — one "
                    "stalled call freezes every connection this loop holds; use "
                    "the non-blocking read_some/write_some state machines and "
                    "epoll timeouts instead"))

        if any(relpath.startswith(d + "/") for d in STOPWATCH_SCOPE_DIRS):
            match = STOPWATCH_RE.search(line)
            if match and not allowed(allows, idx, "no-raw-stopwatch"):
                violations.append(Violation(
                    relpath, idx, "no-raw-stopwatch",
                    "util::Stopwatch in round-path code forks the clock domain; "
                    "time with obs::now_ns() so spans and round_seconds agree"))

        if in_unordered_scope(relpath):
            hit = None
            range_for = re.search(r"\bfor\s*\(.*:\s*([^)]+)\)", line)
            if range_for:
                expr = range_for.group(1).strip()
                expr_head = re.split(r"[.\->\[(]", expr)[0].strip()
                if "unordered" in expr or expr_head in unordered_names:
                    hit = f"range-for over unordered container '{expr}'"
            if hit is None:
                for name in unordered_names:
                    if re.search(rf"\b{re.escape(name)}\s*\.\s*c?(?:begin|end|rbegin|rend)\s*\(", line):
                        hit = f"iterator walk over unordered container '{name}'"
                        break
            if hit and not allowed(allows, idx, "unordered-iteration"):
                violations.append(Violation(
                    relpath, idx, "unordered-iteration",
                    hit + "; bucket order is implementation-defined — use std::map, "
                    "std::vector, or sort the keys first"))

    # Mutex members must be analyzable: util::Mutex (std::mutex carries no
    # capability attributes) and named by at least one FEDGUARD_* annotation
    # in this file, so every lock has a declared contract.
    if relpath.startswith("src/") and relpath != THREAD_ANNOTATIONS_FILE:
        stripped_text = "\n".join(code_lines)
        for idx, line in enumerate(code_lines, start=1):
            decl = MUTEX_DECL_RE.match(line)
            if decl is None or allowed(allows, idx, "no-unannotated-mutex"):
                continue
            mutex_type, name = decl.group(1), decl.group(2)
            if mutex_type.startswith("std::"):
                violations.append(Violation(
                    relpath, idx, "no-unannotated-mutex",
                    f"'{mutex_type} {name}' is invisible to clang thread-safety "
                    "analysis; declare it util::Mutex / util::SharedMutex "
                    "(src/util/thread_annotations.hpp) and annotate what it "
                    "guards"))
            elif not re.search(
                    rf"FEDGUARD_[A-Z_]+\s*\([^)]*\b{re.escape(name)}\b",
                    stripped_text):
                violations.append(Violation(
                    relpath, idx, "no-unannotated-mutex",
                    f"no FEDGUARD_* annotation names '{name}' in this file; a "
                    "lock nothing declares a contract against protects nothing "
                    "(add FEDGUARD_GUARDED_BY/REQUIRES uses, or allow() with "
                    "the reason the guarded resource cannot be named)"))

    return violations


def layer_of(relpath: str) -> str | None:
    """src/<layer>/... -> <layer>; None for files outside a known layer."""
    parts = relpath.split("/")
    if len(parts) < 3 or parts[0] != "src":
        return None
    if parts[1] in LAYER_RANK or parts[1] == OBS_LAYER:
        return parts[1]
    return None


def check_layering(root: Path) -> list[Violation]:
    """Architecture DAG over the #include graph of src/ (rule: layering).

    Two passes: (1) every quoted include must stay within the including
    file's own layer, a strictly lower-ranked layer, or obs (obs itself may
    reach only util); (2) the file-level include graph must be acyclic — a
    cycle is a layering failure even when every edge individually points
    down, and the offending chain is printed."""
    violations: list[Violation] = []
    sources: dict[str, list[str]] = {}  # relpath -> raw lines
    for path, relpath in iter_source_files(root):
        if layer_of(relpath) is not None:
            sources[relpath] = path.read_text(
                encoding="utf-8", errors="replace").splitlines()

    # Pass 1: directory-level DAG.
    edges: dict[str, list[tuple[int, str]]] = {}  # relpath -> [(line, include)]
    for relpath in sorted(sources):
        lines = sources[relpath]
        allows, _ = parse_allows(lines, relpath)  # allow problems reported once
        from_layer = layer_of(relpath)
        edges[relpath] = []
        for idx, line in enumerate(lines, start=1):
            match = INCLUDE_RE.match(line)
            if not match:
                continue
            include = match.group(1)
            edges[relpath].append((idx, include))
            to_layer = include.split("/", 1)[0]
            if to_layer not in LAYER_RANK and to_layer != OBS_LAYER:
                continue  # relative or third-party include; not a layer edge
            if to_layer == from_layer:
                continue
            if to_layer == OBS_LAYER:
                if from_layer != "util":
                    continue  # obs is includable from every layer above util
            elif from_layer == OBS_LAYER:
                if to_layer == "util":
                    continue  # obs sits directly above util
            elif LAYER_RANK[to_layer] < LAYER_RANK[from_layer]:
                continue
            if allowed(allows, idx, "layering"):
                continue
            violations.append(Violation(
                relpath, idx, "layering",
                f'#include "{include}" is a back-edge: layer \'{from_layer}\' '
                f"must not depend on '{to_layer}' (enforced DAG: "
                "util -> parallel -> tensor -> data/nn -> models -> "
                "attacks/defenses -> fl -> net -> core -> scenario; obs "
                "reachable from every layer above util)"))

    # Pass 2: file-level cycles, over includes that resolve inside src/.
    graph: dict[str, list[tuple[int, str]]] = {}
    for relpath, incs in edges.items():
        graph[relpath] = [(idx, "src/" + inc) for idx, inc in incs
                          if "src/" + inc in sources]
    WHITE, GREY, BLACK = 0, 1, 2
    color = dict.fromkeys(graph, WHITE)
    stack: list[str] = []

    def visit(node: str) -> None:
        color[node] = GREY
        stack.append(node)
        for idx, target in graph[node]:
            if color[target] == GREY:
                chain = stack[stack.index(target):] + [target]
                violations.append(Violation(
                    node, idx, "layering",
                    "include cycle: " + " -> ".join(chain)))
            elif color[target] == WHITE:
                visit(target)
        stack.pop()
        color[node] = BLACK

    for node in sorted(graph):
        if color[node] == WHITE:
            visit(node)
    return violations


def check_test_timeouts(root: Path) -> list[Violation]:
    violations: list[Violation] = []
    cmake = root / "tests" / "CMakeLists.txt"
    if not cmake.is_file():
        return violations
    relpath = "tests/CMakeLists.txt"
    lines = cmake.read_text(encoding="utf-8").splitlines()
    allows, problems = parse_allows(lines, relpath)
    violations.extend(problems)
    # Each fedguard_add_test(...) call (possibly spanning lines) must name
    # TIMEOUT. The function definition itself is skipped.
    idx = 0
    while idx < len(lines):
        line = lines[idx].split("#")[0]
        call = re.search(r"^\s*fedguard_add_test\s*\(", line)
        if not call:
            idx += 1
            continue
        start = idx
        depth = 0
        body = []
        while idx < len(lines):
            chunk = lines[idx].split("#")[0]
            depth += chunk.count("(") - chunk.count(")")
            body.append(chunk)
            idx += 1
            if depth <= 0:
                break
        body_text = "\n".join(body)
        if "TIMEOUT" not in body_text and not allowed(allows, start + 1, "test-timeout"):
            name = re.search(r"fedguard_add_test\s*\(\s*(\w+)", body_text)
            violations.append(Violation(
                relpath, start + 1, "test-timeout",
                f"fedguard_add_test({name.group(1) if name else '?'}) has no TIMEOUT; "
                "a hung test would wedge the suite"))
    return violations


def check_config_docs(root: Path) -> list[Violation]:
    violations: list[Violation] = []
    config_cpp = root / "src" / "core" / "config_file.cpp"
    if not config_cpp.is_file():
        return violations
    relpath = "src/core/config_file.cpp"
    lines = config_cpp.read_text(encoding="utf-8").splitlines()
    allows, problems = parse_allows(lines, relpath)
    violations.extend(problems)

    docs_text = ""
    docs_dir = root / "docs"
    if docs_dir.is_dir():
        for doc in sorted(docs_dir.glob("**/*.md")):
            docs_text += doc.read_text(encoding="utf-8", errors="replace")

    for idx, line in enumerate(lines, start=1):
        for match in CONFIG_KEY_RE.finditer(line):
            key = match.group(1) or match.group(2)
            if key in docs_text:
                continue
            if allowed(allows, idx, "config-docs"):
                continue
            violations.append(Violation(
                relpath, idx, "config-docs",
                f"descriptor key '{key}' is parsed here but documented nowhere "
                "under docs/ (add it to docs/CONFIG_REFERENCE.md)"))
    return violations


def check_span_categories(root: Path) -> list[Violation]:
    """Every string-literal FEDGUARD_TRACE_SPAN category — and every metric
    name (or static name prefix) registered on a Registry in src/ — must be
    listed in docs/OBSERVABILITY.md. Scans RAW lines — both live inside string
    literals, which the token scans deliberately blank out."""
    violations: list[Violation] = []
    doc = root / "docs" / "OBSERVABILITY.md"
    doc_text = doc.read_text(encoding="utf-8", errors="replace") if doc.is_file() else ""
    for path, relpath in iter_source_files(root):
        text = path.read_text(encoding="utf-8", errors="replace")
        scan_metrics = relpath.startswith(METRIC_DOCS_SCOPE_DIR)
        if "FEDGUARD_TRACE_SPAN" not in text and not scan_metrics:
            continue
        raw_lines = text.splitlines()
        # Allow problems are already reported by check_source_file.
        allows, _ = parse_allows(raw_lines, relpath)
        for idx, line in enumerate(raw_lines, start=1):
            for match in SPAN_CATEGORY_RE.finditer(line):
                category = match.group(1)
                if category in doc_text:
                    continue
                if allowed(allows, idx, "span-category-docs"):
                    continue
                violations.append(Violation(
                    relpath, idx, "span-category-docs",
                    f"span category '{category}' is not part of the documented "
                    "taxonomy in docs/OBSERVABILITY.md"))
            if not scan_metrics:
                continue
            for match in METRIC_NAME_RE.finditer(line):
                name = match.group(1)
                if name in doc_text:
                    continue
                if allowed(allows, idx, "span-category-docs"):
                    continue
                violations.append(Violation(
                    relpath, idx, "span-category-docs",
                    f"metric '{name}' is registered here but missing from the "
                    "documented metric reference in docs/OBSERVABILITY.md"))
    return violations


def check_sweep_roster(root: Path) -> list[Violation]:
    """Every name the enum → string tables can produce must appear (as a
    quoted literal) in the sweep roster tables — otherwise a new attack or
    defense ships without ever being exercised by the robustness sweep."""
    violations: list[Violation] = []
    roster_path = root / SWEEP_ROSTER_FILE
    if not roster_path.is_file():
        return violations
    roster_text = roster_path.read_text(encoding="utf-8", errors="replace")
    for relpath, pattern in SWEEP_CASE_SOURCES:
        path = root / relpath
        if not path.is_file():
            continue
        text = path.read_text(encoding="utf-8", errors="replace")
        # Allow problems are already reported by check_source_file.
        allows, _ = parse_allows(text.splitlines(), relpath)
        for match in pattern.finditer(text):
            name = match.group(1)
            line_no = text.count("\n", 0, match.start()) + 1
            if f'"{name}"' in roster_text:
                continue
            if allowed(allows, line_no, "sweep-roster"):
                continue
            violations.append(Violation(
                relpath, line_no, "sweep-roster",
                f"'{name}' has an enum → string mapping but no entry in the "
                f"sweep rosters in {SWEEP_ROSTER_FILE}; add it so the "
                "robustness leaderboard covers it (or allow() it with a reason)"))
    return violations


def iter_source_files(root: Path):
    for top in SOURCE_ROOTS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES or not path.is_file():
                continue
            rel = path.relative_to(root)
            if any(part in EXCLUDED_DIR_NAMES for part in rel.parts):
                continue
            yield path, rel.as_posix()


def run(root: Path, verbose: bool = False) -> list[Violation]:
    violations: list[Violation] = []
    count = 0
    for path, relpath in iter_source_files(root):
        count += 1
        violations.extend(check_source_file(path, relpath))
    violations.extend(check_test_timeouts(root))
    violations.extend(check_config_docs(root))
    violations.extend(check_span_categories(root))
    violations.extend(check_sweep_roster(root))
    violations.extend(check_layering(root))
    if verbose:
        print(f"fedguard-lint: scanned {count} source files under {root}", file=sys.stderr)
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="fedguard_lint.py",
                                     description="FedGuard project invariant linter")
    parser.add_argument("--root", default=None,
                        help="repository root to scan (default: parent of scripts/)")
    parser.add_argument("--list-rules", action="store_true", help="print rule ids and exit")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, summary in RULES.items():
            print(f"{rule:22s} {summary}")
        return 0

    root = Path(args.root).resolve() if args.root else Path(__file__).resolve().parent.parent
    if not root.is_dir():
        print(f"fedguard-lint: root {root} is not a directory", file=sys.stderr)
        return 2

    violations = run(root, verbose=args.verbose)
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"fedguard-lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
