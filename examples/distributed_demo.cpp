// Distributed deployment demo — the paper's testbed shape (§IV-E: one server
// process, clients as separate processes over ethernet).
//
// Run as separate processes:
//   terminal 1: ./distributed_demo --role server --port 7700 --clients 4 --rounds 6
//   terminal 2: ./distributed_demo --role client --id 0 --port 7700
//   ...         ./distributed_demo --role client --id 3 --port 7700 --attack sign_flip
//
// Or run the whole federation in one process with threads (default):
//   ./distributed_demo
//
// Chaos flags (see docs/ROBUSTNESS.md) inject seeded client-side faults so
// the fault-tolerance path can be watched live:
//   ./distributed_demo --drop 0.25 --disconnect 0.1 --fault-seed 7
// Fault kinds: --drop, --delay (+ --delay-ms), --truncate, --bitflip,
// --disconnect, --never-connect; each takes a per-round probability. The same
// --fault-seed replays the identical fault schedule.
//
// Two-tier topology (docs/SHARDING.md): --shards N runs N epoll-reactor edge
// aggregators under one root merger, with --clients-per-shard M TCP clients
// each. Shard-failure chaos kills a shard mid-run and demonstrates graceful
// degradation (the federation finishes on the surviving shards):
//   ./distributed_demo --shards 4 --clients-per-shard 3 --kill-shard 1 --kill-round 2
//
// Observability (server/demo roles; see docs/OBSERVABILITY.md):
//   --trace trace.json      Chrome trace_event output (open at ui.perfetto.dev)
//   --metrics metrics.prom  Prometheus text + per-round snapshots (.jsonl)
//   --metrics-port 9464     Live /metrics, /metrics.json and /healthz over
//                           HTTP: the root serves PORT, shard i serves
//                           PORT+1+i (every shard data port also answers
//                           scrapes). The sharded demo self-checks the
//                           endpoints mid-federation and prints a FAIL: line
//                           when a scrape does not come back healthy.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <thread>

#include "core/cli.hpp"
#include "core/report.hpp"
#include "data/partition.hpp"
#include "data/synthetic_mnist.hpp"
#include "defenses/fedguard.hpp"
#include "defenses/fedavg.hpp"
#include "net/remote.hpp"
#include "net/shard.hpp"
#include "net/socket.hpp"
#include "obs/exporter.hpp"
#include "util/logging.hpp"

namespace {

using namespace fedguard;

/// Build a RoundExporter from --trace/--metrics, or null when neither is set.
std::unique_ptr<obs::RoundExporter> exporter_from_options(
    const core::CliOptions& options) {
  obs::ObsOptions obs_options;
  obs_options.trace_path = options.get("trace", "");
  obs_options.metrics_path = options.get("metrics", "");
  if (!obs_options.enabled()) return nullptr;
  return std::make_unique<obs::RoundExporter>(obs_options);
}

constexpr std::size_t kTrainSamples = 800;
constexpr std::uint64_t kDataSeed = 77;

/// One-shot HTTP/1.0 scrape of 127.0.0.1:`port`; returns the raw response
/// ("" on connect/send/receive failure).
std::string http_get(std::uint16_t port, const std::string& path) {
  try {
    net::TcpStream stream = net::TcpStream::connect("127.0.0.1", port);
    stream.set_receive_timeout(std::chrono::milliseconds{2000});
    const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
    stream.send_all(std::as_bytes(std::span{request.data(), request.size()}));
    std::string response;
    std::byte chunk[512];
    std::size_t transferred = 0;
    while (stream.read_some(chunk, transferred) == net::IoStatus::Ready) {
      response.append(reinterpret_cast<const char*>(chunk), transferred);
    }
    return response;
  } catch (const std::exception&) {
    return "";
  }
}

/// Retry `path` on `port` until the predicate holds (the scrape races
/// federation startup) or ~4s elapse.
bool probe_until(std::uint16_t port, const std::string& path,
                 const std::string& needle) {
  for (int attempt = 0; attempt < 40; ++attempt) {
    const std::string response = http_get(port, path);
    if (response.find("200") != std::string::npos &&
        response.find(needle) != std::string::npos) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds{100});
  }
  return false;
}

models::CvaeSpec demo_cvae() {
  models::CvaeSpec spec;
  spec.hidden = 96;
  spec.latent = 2;
  return spec;
}

fl::ClientConfig demo_client_config() {
  fl::ClientConfig config;
  config.local_epochs = 2;
  config.batch_size = 16;
  config.cvae_epochs = 30;
  config.cvae_batch_size = 8;
  config.cvae_learning_rate = 3e-3f;
  return config;
}

net::FaultPlan plan_from_options(const core::CliOptions& options) {
  net::FaultPlan plan;
  plan.drop_probability = options.get_double("drop", 0.0);
  plan.delay_probability = options.get_double("delay", 0.0);
  plan.delay_ms = static_cast<std::size_t>(options.get_int("delay-ms", 20));
  plan.truncate_probability = options.get_double("truncate", 0.0);
  plan.bit_flip_probability = options.get_double("bitflip", 0.0);
  plan.disconnect_probability = options.get_double("disconnect", 0.0);
  plan.never_connect_probability = options.get_double("never-connect", 0.0);
  plan.seed = static_cast<std::uint64_t>(options.get_int("fault-seed", 1));
  return plan;
}

/// Every process derives the same deterministic partition, so a client only
/// needs its id to know its shard — no data ever crosses the network (the
/// FL premise).
std::unique_ptr<fl::Client> make_client(int id, std::size_t num_clients) {
  const data::Dataset train = data::generate_synthetic_mnist(kTrainSamples, kDataSeed);
  const data::Partition partition =
      data::dirichlet_partition(train, num_clients, 10.0, kDataSeed ^ 0xd17ULL);
  return std::make_unique<fl::Client>(
      id, train, partition[static_cast<std::size_t>(id)], demo_client_config(),
      models::ClassifierArch::Mlp, models::ImageGeometry{}, demo_cvae(),
      kDataSeed ^ (0xc11ULL + static_cast<std::uint64_t>(id)));
}

int run_server(const core::CliOptions& options) {
  const auto clients = static_cast<std::size_t>(options.get_int("clients", 4));
  const auto rounds = static_cast<std::size_t>(options.get_int("rounds", 6));
  const auto port = static_cast<std::uint16_t>(options.get_int("port", 7700));

  const data::Dataset test = data::generate_synthetic_mnist(200, kDataSeed ^ 0x7e57ULL);
  defenses::FedGuardConfig fg;
  fg.cvae_spec = demo_cvae();
  fg.total_samples = 100;
  defenses::FedGuardAggregator strategy{fg, models::ClassifierArch::Mlp,
                                        models::ImageGeometry{}, kDataSeed ^ 0xf9ULL};

  net::RemoteServerConfig config;
  config.port = port;
  config.expected_clients = clients;
  config.clients_per_round = std::max<std::size_t>(1, clients / 2 + 1);
  config.rounds = rounds;
  config.seed = kDataSeed;
  // Survive a chaos run: bound every wait, tolerate absent clients.
  config.accept_timeout_ms = static_cast<std::size_t>(options.get_int("accept-ms", 30000));
  config.round_timeout_ms = static_cast<std::size_t>(options.get_int("round-ms", 30000));
  config.min_clients = static_cast<std::size_t>(options.get_int("min-clients", 0));
  config.http_port = static_cast<std::uint16_t>(options.get_int("metrics-port", 0));
  net::RemoteServer server{config, strategy, test, models::ClassifierArch::Mlp,
                           models::ImageGeometry{}};
  std::printf("server listening on port %u, waiting for %zu clients...\n",
              static_cast<unsigned>(server.port()), clients);
  const auto exporter = exporter_from_options(options);
  const fl::RunHistory history = server.run();
  std::printf("\nfinal accuracy: %.2f%% (strategy %s)\n",
              history.rounds.back().test_accuracy * 100.0, history.strategy.c_str());
  core::print_fault_summary(std::cout, history);
  return 0;
}

int run_client(const core::CliOptions& options) {
  const int id = static_cast<int>(options.get_int("id", 0));
  const auto port = static_cast<std::uint16_t>(options.get_int("port", 7700));
  const std::string host = options.get("host", "127.0.0.1");
  const auto clients = static_cast<std::size_t>(options.get_int("clients", 4));

  auto client = make_client(id, clients);
  std::unique_ptr<attacks::ModelAttack> attack;
  const std::string attack_name = options.get("attack", "none");
  if (attack_name != "none") {
    attack = attacks::make_model_attack(attacks::attack_type_from_string(attack_name), {});
    if (attack) client->corrupt_with_model_attack(attack.get());
  }
  std::printf("client %d connecting to %s:%u%s\n", id, host.c_str(),
              static_cast<unsigned>(port), attack ? " (malicious)" : "");
  const net::FaultPlan plan = plan_from_options(options);
  net::FaultInjector injector{plan};
  net::RemoteClientOptions remote_options;
  if (plan.any()) remote_options.faults = &injector;
  // Separate-process clients ship their spans and counter deltas upstream so
  // the server's trace holds the whole federation (docs/OBSERVABILITY.md).
  remote_options.relay_telemetry = true;
  const std::size_t served = net::run_remote_client(host, port, *client, remote_options);
  std::printf("client %d served %zu rounds (%zu faults injected)\n", id, served,
              injector.total_injected());
  return 0;
}

int run_threaded_demo(const core::CliOptions& options) {
  std::printf("single-process demo: FedGuard server + 4 TCP clients (1 sign-flipper)\n\n");
  const net::FaultPlan plan = plan_from_options(options);
  net::FaultInjector injector{plan};
  if (plan.any()) {
    std::printf("chaos plan active (seed %llu): drop %.2f delay %.2f truncate %.2f "
                "bitflip %.2f disconnect %.2f never-connect %.2f\n\n",
                static_cast<unsigned long long>(plan.seed), plan.drop_probability,
                plan.delay_probability, plan.truncate_probability,
                plan.bit_flip_probability, plan.disconnect_probability,
                plan.never_connect_probability);
  }
  const data::Dataset test = data::generate_synthetic_mnist(200, kDataSeed ^ 0x7e57ULL);
  defenses::FedGuardConfig fg;
  fg.cvae_spec = demo_cvae();
  fg.total_samples = 100;
  defenses::FedGuardAggregator strategy{fg, models::ClassifierArch::Mlp,
                                        models::ImageGeometry{}, kDataSeed ^ 0xf9ULL};
  net::RemoteServerConfig config;
  config.port = 0;  // ephemeral
  config.expected_clients = 4;
  config.clients_per_round = 3;
  config.rounds = 6;
  config.seed = kDataSeed;
  if (plan.any()) {
    // Chaos runs need bounded waits and tolerance for absent clients.
    config.round_timeout_ms = 5000;
    config.accept_timeout_ms = 5000;
    config.min_clients = 1;
  }
  config.http_port = static_cast<std::uint16_t>(options.get_int("metrics-port", 0));
  net::RemoteServer server{config, strategy, test, models::ClassifierArch::Mlp,
                           models::ImageGeometry{}};
  const std::uint16_t port = server.port();

  const attacks::SignFlipAttack sign_flip;
  std::vector<std::unique_ptr<fl::Client>> clients;
  std::vector<std::thread> threads;
  // Build every client before spawning any thread: a later push_back can
  // reallocate `clients` while an earlier thread dereferences clients[id].
  for (int id = 0; id < 4; ++id) {
    clients.push_back(make_client(id, 4));
    if (id == 3) clients.back()->corrupt_with_model_attack(&sign_flip);
  }
  for (int id = 0; id < 4; ++id) {
    threads.emplace_back([&, id] {
      net::RemoteClientOptions remote_options;
      if (plan.any()) remote_options.faults = &injector;
      (void)net::run_remote_client("127.0.0.1", port, *clients[id], remote_options);
    });
  }
  const auto exporter = exporter_from_options(options);
  const fl::RunHistory history = server.run();
  for (auto& thread : threads) thread.join();

  for (const auto& round : history.rounds) {
    std::printf("round %zu: accuracy %5.1f%% | rejected malicious %zu/%zu | "
                "%.1f KB down over TCP\n",
                round.round, round.test_accuracy * 100.0, round.rejected_malicious,
                round.sampled_malicious,
                static_cast<double>(round.server_download_bytes) / 1e3);
  }
  if (plan.any()) {
    std::printf("\n%zu faults injected by the plan\n", injector.total_injected());
    core::print_fault_summary(std::cout, history);
  }
  return 0;
}

/// Two-tier federation in one process: N reactor shards + root merger, with
/// M TCP clients per shard connecting to their owner shard's port. With
/// --kill-shard/--kill-round the run doubles as a shard-failure chaos drill:
/// it asserts the federation degrades gracefully (all rounds complete, the
/// killed shard is the only casualty) instead of just hoping.
int run_sharded_demo(const core::CliOptions& options) {
  const auto shards = static_cast<std::size_t>(options.get_int("shards", 2));
  const auto per_shard =
      static_cast<std::size_t>(options.get_int("clients-per-shard", 2));
  const auto rounds = static_cast<std::size_t>(options.get_int("rounds", 4));
  const long long kill_shard = options.get_int("kill-shard", -1);
  const auto kill_round = static_cast<std::size_t>(options.get_int("kill-round", 1));
  const std::size_t num_clients = shards * per_shard;
  std::printf("two-tier demo: %zu shards x %zu clients, FedAvg root merge, %zu rounds\n",
              shards, per_shard, rounds);
  if (kill_shard >= 0) {
    std::printf("chaos: shard %lld dies at the start of round %zu\n", kill_shard,
                kill_round);
  }

  const data::Dataset test = data::generate_synthetic_mnist(200, kDataSeed ^ 0x7e57ULL);
  net::HierarchicalServerConfig config;
  config.shards = shards;
  config.expected_clients = num_clients;
  config.clients_per_round = std::max<std::size_t>(1, num_clients / 2 + 1);
  config.rounds = rounds;
  config.seed = kDataSeed;
  config.accept_timeout_ms = static_cast<std::size_t>(options.get_int("accept-ms", 30000));
  config.round_timeout_ms = static_cast<std::size_t>(options.get_int("round-ms", 30000));
  const auto metrics_port =
      static_cast<std::uint16_t>(options.get_int("metrics-port", 0));
  config.http_port = metrics_port;
  if (kill_shard >= 0) {
    config.shard_kill_predicate = [kill_shard, kill_round](std::size_t shard,
                                                           std::size_t round) {
      return shard == static_cast<std::size_t>(kill_shard) && round == kill_round;
    };
  }
  net::HierarchicalServer server{
      config, [] { return std::make_unique<defenses::FedAvgAggregator>(); }, test,
      models::ClassifierArch::Mlp, models::ImageGeometry{}};

  const attacks::SignFlipAttack sign_flip;
  std::vector<std::unique_ptr<fl::Client>> clients;
  std::vector<std::thread> threads;
  for (std::size_t id = 0; id < num_clients; ++id) {
    clients.push_back(make_client(static_cast<int>(id), num_clients));
    if (id + 1 == num_clients) clients.back()->corrupt_with_model_attack(&sign_flip);
  }
  for (std::size_t id = 0; id < num_clients; ++id) {
    const std::uint16_t port = server.shard_port(server.shard_of(id));
    threads.emplace_back([&clients, id, port] {
      (void)net::run_remote_client("127.0.0.1", port, *clients[id], {});
    });
  }
  const auto exporter = exporter_from_options(options);
  // Mid-federation scrape smoke check: while the rounds run, hit the root's
  // /healthz (standalone listener) and shard 0's data port /metrics (reactor
  // auto-detection) and record whether both answered healthy.
  std::atomic<bool> root_healthy{false};
  std::atomic<bool> shard_healthy{false};
  std::thread probe;
  if (metrics_port != 0) {
    const std::uint16_t shard0_port = server.shard_port(0);
    probe = std::thread{[&, shard0_port] {
      root_healthy = probe_until(metrics_port, "/healthz", "\"status\":\"ok\"");
      shard_healthy = probe_until(shard0_port, "/metrics", "net_shard_rounds_total");
    }};
  }
  const fl::RunHistory history = server.run();
  for (auto& thread : threads) thread.join();
  if (probe.joinable()) probe.join();
  if (metrics_port != 0) {
    if (!root_healthy) {
      std::printf("FAIL: root /healthz on port %u never answered healthy\n",
                  static_cast<unsigned>(metrics_port));
      return 1;
    }
    if (!shard_healthy) {
      std::printf("FAIL: shard 0 data-port /metrics scrape never answered\n");
      return 1;
    }
    std::printf("live telemetry verified mid-run (root /healthz + shard /metrics)\n");
  }

  for (const auto& round : history.rounds) {
    std::printf("round %zu: accuracy %5.1f%% | sampled %zu | stragglers %zu\n",
                round.round, round.test_accuracy * 100.0, round.sampled_clients,
                round.stragglers);
  }
  if (kill_shard >= 0) {
    // Graceful-degradation assertions: the run must survive a dead shard.
    const std::size_t expected_live = shards - 1;
    if (history.rounds.size() != rounds) {
      std::printf("FAIL: only %zu of %zu rounds completed after shard kill\n",
                  history.rounds.size(), rounds);
      return 1;
    }
    if (server.live_shards() > expected_live) {
      std::printf("FAIL: killed shard still reports alive\n");
      return 1;
    }
    const fl::RoundRecord& last = history.rounds.back();
    if (last.sampled_clients == 0) {
      std::printf("FAIL: final round sampled nobody\n");
      return 1;
    }
    // (run() has already shut the surviving shards down gracefully, so
    // live_shards() is 0 here by design; the assertions above checked the
    // degradation itself.)
    std::printf("\ngraceful degradation held: shard %lld died, %zu rounds "
                "completed on the survivors, final accuracy %.1f%%\n",
                kill_shard, history.rounds.size(), last.test_accuracy * 100.0);
  } else {
    std::printf("\nfinal accuracy: %.2f%% over %zu shards\n",
                history.rounds.back().test_accuracy * 100.0, shards);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const core::CliOptions options = core::CliOptions::parse(argc, argv);
  util::set_log_level(util::LogLevel::Warn);
  const std::string role = options.get("role", "demo");
  if (role == "server") return run_server(options);
  if (role == "client") return run_client(options);
  if (options.get_int("shards", 0) > 0) return run_sharded_demo(options);
  return run_threaded_demo(options);
}
