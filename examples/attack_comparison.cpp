// Attack/defense matchup explorer: pick any attack, any defense strategy, and
// any malicious fraction from the command line and watch the federation.
//
//   $ ./attack_comparison --attack sign_flip --strategy fedguard --fraction 0.5
//   $ ./attack_comparison --attack label_flip --strategy geomed --fraction 0.3 ...
//         --rounds 20 --csv run.csv
//
// Attacks:    none | same_value | sign_flip | additive_noise | label_flip
// Strategies: fedavg | geomed | krum | multi_krum | median | trimmed_mean |
//             norm_threshold | spectral | fedguard

#include <cstdio>

#include "core/cli.hpp"
#include "core/runner.hpp"
#include "util/logging.hpp"

int main(int argc, char** argv) {
  using namespace fedguard;
  const core::CliOptions options = core::CliOptions::parse(argc, argv);
  if (options.has("help")) {
    std::printf("usage: attack_comparison --attack A --strategy S --fraction F\n"
                "       [--rounds N] [--clients N] [--seed S] [--csv PATH] [--verbose]\n");
    return 0;
  }
  if (!options.has("verbose")) util::set_log_level(util::LogLevel::Warn);

  core::ExperimentConfig config = core::ExperimentConfig::small_scale();
  config.attack = attacks::attack_type_from_string(options.get("attack", "sign_flip"));
  config.strategy = core::strategy_kind_from_string(options.get("strategy", "fedguard"));
  config.malicious_fraction = options.get_double("fraction", 0.5);
  config.rounds = static_cast<std::size_t>(options.get_int("rounds", 12));
  config.num_clients = static_cast<std::size_t>(options.get_int("clients", 20));
  config.clients_per_round = std::max<std::size_t>(2, config.num_clients / 2);
  config.train_samples = config.num_clients * 100;
  config.seed = static_cast<std::uint64_t>(options.get_int("seed", 42));

  std::printf("attack=%s (%.0f%% malicious) vs strategy=%s | %zu clients, %zu rounds\n\n",
              attacks::to_string(config.attack), config.malicious_fraction * 100.0,
              core::to_string(config.strategy), config.num_clients, config.rounds);

  fl::RunHistory history = core::run_experiment(config);
  std::printf("round | accuracy | sampled(mal) | rejected(mal/benign)\n");
  for (const auto& round : history.rounds) {
    std::printf("%5zu | %7.2f%% | %7zu (%zu) | %8zu (%zu/%zu)\n", round.round,
                round.test_accuracy * 100.0, round.sampled_clients,
                round.sampled_malicious, round.rejected_clients,
                round.rejected_malicious, round.rejected_benign);
  }
  const auto tail = history.trailing_accuracy(config.rounds * 2 / 3);
  std::printf("\ntrailing accuracy: %.2f%% +- %.2f%%\n", tail.mean * 100.0,
              tail.stddev * 100.0);
  if (config.malicious_fraction > 0.0) {
    std::printf("detection: TPR %.2f, FPR %.2f\n", history.true_positive_rate(),
                history.false_positive_rate());
  }

  const std::string csv = options.get("csv", "");
  if (!csv.empty()) {
    history.write_csv(csv);
    std::printf("per-round series written to %s\n", csv.c_str());
  }
  return 0;
}
