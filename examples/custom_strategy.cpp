// Extending the framework: implement a custom AggregationStrategy through the
// public interface and run it inside the simulator next to the built-ins.
//
// The custom strategy below filters updates by cosine similarity to the
// current global model (a simple direction-consistency heuristic), then
// FedAvgs the survivors — a miniature member of the anomaly-detection family
// from the paper's related-work taxonomy (§II).

#include <cstdio>

#include "core/cli.hpp"
#include "core/runner.hpp"
#include "defenses/aggregation.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace {

using namespace fedguard;

/// Rejects updates whose delta from the global model points away from the
/// majority direction (cosine similarity to the mean delta below a
/// threshold).
class CosineFilterAggregator final : public defenses::AggregationStrategy {
 public:
  explicit CosineFilterAggregator(double threshold) : threshold_{threshold} {}

  defenses::AggregationResult aggregate(
      const defenses::AggregationContext& context,
      std::span<const defenses::ClientUpdate> updates) override {
    const std::size_t dim = defenses::validate_updates(updates);
    const auto global = context.global_parameters;

    // Deltas and their mean direction.
    std::vector<std::vector<float>> deltas(updates.size());
    std::vector<float> mean_delta(dim, 0.0f);
    for (std::size_t k = 0; k < updates.size(); ++k) {
      deltas[k].resize(dim);
      for (std::size_t i = 0; i < dim; ++i) {
        deltas[k][i] = updates[k].psi[i] - global[i];
        mean_delta[i] += deltas[k][i] / static_cast<float>(updates.size());
      }
    }

    defenses::AggregationResult result;
    std::vector<defenses::ClientUpdate> kept;
    for (std::size_t k = 0; k < updates.size(); ++k) {
      if (util::cosine_similarity(deltas[k], mean_delta) >= threshold_) {
        kept.push_back(updates[k]);
        result.accepted_clients.push_back(updates[k].client_id);
      } else {
        result.rejected_clients.push_back(updates[k].client_id);
      }
    }
    if (kept.empty()) kept.assign(updates.begin(), updates.end());
    result.parameters = defenses::weighted_mean(kept);
    return result;
  }

  [[nodiscard]] std::string name() const override { return "cosine_filter"; }

 private:
  double threshold_;
};

}  // namespace

int main(int argc, char** argv) {
  const core::CliOptions options = core::CliOptions::parse(argc, argv);
  util::set_log_level(util::LogLevel::Warn);

  core::ExperimentConfig config = core::ExperimentConfig::small_scale();
  config.num_clients = 16;
  config.clients_per_round = 8;
  config.train_samples = 1600;
  config.rounds = static_cast<std::size_t>(options.get_int("rounds", 10));
  config.attack = attacks::AttackType::SignFlip;
  config.malicious_fraction = 0.4;

  // Build the federation through the library, then swap in the custom
  // strategy: the Federation struct exposes every component.
  core::Federation federation = core::build_federation(config);
  CosineFilterAggregator custom{options.get_double("threshold", 0.0)};
  fl::ServerConfig server_config;
  server_config.clients_per_round = config.clients_per_round;
  server_config.rounds = config.rounds;
  server_config.seed = config.seed;
  fl::Server server{server_config, federation.clients, custom, federation.test_set,
                    config.arch, config.geometry()};

  std::printf("custom cosine-similarity filter vs 40%% sign flipping:\n");
  fl::RunHistory history = server.run();
  for (const auto& round : history.rounds) {
    std::printf("  round %2zu: accuracy %5.1f%%, rejected %zu (malicious %zu)\n",
                round.round, round.test_accuracy * 100.0, round.rejected_clients,
                round.rejected_malicious);
  }
  std::printf("\nfinal accuracy %.1f%% | detection TPR %.2f FPR %.2f\n",
              history.rounds.back().test_accuracy * 100.0,
              history.true_positive_rate(), history.false_positive_rate());
  std::printf("\n(compare: ./attack_comparison --attack sign_flip --strategy fedguard "
              "--fraction 0.4)\n");
  return 0;
}
