// Extending the framework: implement a custom AggregationStrategy through the
// public interface and run it inside the simulator next to the built-ins.
//
// The custom strategy below filters updates by cosine similarity to the
// current global model (a simple direction-consistency heuristic), then
// FedAvgs the survivors — a miniature member of the anomaly-detection family
// from the paper's related-work taxonomy (§II).

#include <cstdio>
#include <numeric>

#include "core/cli.hpp"
#include "core/runner.hpp"
#include "defenses/aggregation.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace {

using namespace fedguard;

/// Rejects updates whose delta from the global model points away from the
/// majority direction (cosine similarity to the mean delta below a
/// threshold). Custom strategies override the private do_aggregate hook and
/// read the round's uploads through the zero-copy UpdateView; selections are
/// index sub-views over the arena, never data copies.
class CosineFilterAggregator final : public defenses::AggregationStrategy {
 public:
  explicit CosineFilterAggregator(double threshold) : threshold_{threshold} {}

  [[nodiscard]] std::string name() const override { return "cosine_filter"; }

 private:
  void do_aggregate(const defenses::AggregationContext& context,
                    const defenses::UpdateView& updates,
                    defenses::AggregationResult& out) override {
    const std::size_t dim = updates.psi_dim();
    const auto global = context.global_parameters;

    // Deltas and their mean direction.
    std::vector<std::vector<float>> deltas(updates.count());
    std::vector<float> mean_delta(dim, 0.0f);
    for (std::size_t k = 0; k < updates.count(); ++k) {
      const std::span<const float> psi = updates.psi(k);
      deltas[k].resize(dim);
      for (std::size_t i = 0; i < dim; ++i) {
        deltas[k][i] = psi[i] - global[i];
        mean_delta[i] += deltas[k][i] / static_cast<float>(updates.count());
      }
    }

    std::vector<std::size_t> kept_slots;
    for (std::size_t k = 0; k < updates.count(); ++k) {
      if (util::cosine_similarity(deltas[k], mean_delta) >= threshold_) {
        kept_slots.push_back(k);
        out.accepted_clients.push_back(updates.meta(k).client_id);
      } else {
        out.rejected_clients.push_back(updates.meta(k).client_id);
      }
    }
    if (kept_slots.empty()) {
      kept_slots.resize(updates.count());
      std::iota(kept_slots.begin(), kept_slots.end(), std::size_t{0});
      out.accepted_clients.swap(out.rejected_clients);
      out.rejected_clients.clear();
    }
    std::vector<std::size_t> select_scratch;
    const defenses::UpdateView kept = updates.select(kept_slots, select_scratch);
    out.parameters = defenses::weighted_mean(kept);
  }

  double threshold_;
};

}  // namespace

int main(int argc, char** argv) {
  const core::CliOptions options = core::CliOptions::parse(argc, argv);
  util::set_log_level(util::LogLevel::Warn);

  core::ExperimentConfig config = core::ExperimentConfig::small_scale();
  config.num_clients = 16;
  config.clients_per_round = 8;
  config.train_samples = 1600;
  config.rounds = static_cast<std::size_t>(options.get_int("rounds", 10));
  config.attack = attacks::AttackType::SignFlip;
  config.malicious_fraction = 0.4;

  // Build the federation through the library, then swap in the custom
  // strategy: the Federation struct exposes every component.
  core::Federation federation = core::build_federation(config);
  CosineFilterAggregator custom{options.get_double("threshold", 0.0)};
  fl::ServerConfig server_config;
  server_config.clients_per_round = config.clients_per_round;
  server_config.rounds = config.rounds;
  server_config.seed = config.seed;
  fl::Server server{server_config, federation.clients, custom, federation.test_set,
                    config.arch, config.geometry()};

  std::printf("custom cosine-similarity filter vs 40%% sign flipping:\n");
  fl::RunHistory history = server.run();
  for (const auto& round : history.rounds) {
    std::printf("  round %2zu: accuracy %5.1f%%, rejected %zu (malicious %zu)\n",
                round.round, round.test_accuracy * 100.0, round.rejected_clients,
                round.rejected_malicious);
  }
  std::printf("\nfinal accuracy %.1f%% | detection TPR %.2f FPR %.2f\n",
              history.rounds.back().test_accuracy * 100.0,
              history.true_positive_rate(), history.false_positive_rate());
  std::printf("\n(compare: ./attack_comparison --attack sign_flip --strategy fedguard "
              "--fraction 0.4)\n");
  return 0;
}
