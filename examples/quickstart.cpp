// Quickstart: run a small federation twice — undefended FedAvg and FedGuard —
// under a 50% sign-flipping attack, and print what happens.
//
//   $ ./quickstart [--rounds N] [--clients N] [--seed S]
//
// This is the minimal end-to-end use of the public API:
//   ExperimentConfig -> run_experiment -> RunHistory.

#include <cstdio>

#include "core/cli.hpp"
#include "core/runner.hpp"
#include "util/logging.hpp"

int main(int argc, char** argv) {
  using namespace fedguard;
  const core::CliOptions options = core::CliOptions::parse(argc, argv);
  util::set_log_level(util::LogLevel::Warn);

  // Start from the reduced-scale preset and apply the attack scenario.
  core::ExperimentConfig config = core::ExperimentConfig::small_scale();
  config.num_clients = static_cast<std::size_t>(options.get_int("clients", 12));
  config.clients_per_round = config.num_clients / 2;
  config.rounds = static_cast<std::size_t>(options.get_int("rounds", 10));
  config.train_samples = config.num_clients * 100;
  config.seed = static_cast<std::uint64_t>(options.get_int("seed", 7));
  config.attack = attacks::AttackType::SignFlip;
  config.malicious_fraction = 0.5;

  std::printf("Federation: %zu clients (%zu sampled/round), %zu rounds, "
              "50%% of clients flip the sign of every uploaded weight.\n\n",
              config.num_clients, config.clients_per_round, config.rounds);

  for (const auto strategy : {core::StrategyKind::FedAvg, core::StrategyKind::FedGuard}) {
    config.strategy = strategy;
    std::printf("--- %s ---\n", core::to_string(strategy));
    const fl::RunHistory history = core::run_experiment(config);
    for (const auto& round : history.rounds) {
      std::printf("  round %2zu: accuracy %5.1f%%  (rejected %zu/%zu updates)\n",
                  round.round, round.test_accuracy * 100.0, round.rejected_clients,
                  round.sampled_clients);
    }
    std::printf("  => final accuracy %.1f%%, malicious detection rate %.0f%%\n\n",
                history.rounds.back().test_accuracy * 100.0,
                history.true_positive_rate() * 100.0);
  }
  std::printf("FedAvg averages the poisoned updates straight into the global model;\n"
              "FedGuard scores every update on CVAE-synthesized validation digits and\n"
              "aggregates only the ones that perform above the round average.\n");
  return 0;
}
