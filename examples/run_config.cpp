// Run an experiment from a descriptor file (configs/*.conf) — the repository
// equivalent of the paper's E2CLAB experiment descriptors (§IV-E).
//
//   $ ./run_config configs/signflip50_fedguard.conf [--csv out.csv]
//                  [--trace trace.json] [--metrics metrics.prom]
//                  [--metrics-port 9464]

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "core/cli.hpp"
#include "core/config_file.hpp"
#include "core/runner.hpp"

int main(int argc, char** argv) {
  using namespace fedguard;
  if (argc < 2 || std::string{argv[1]}.rfind("--", 0) == 0) {
    std::printf(
        "usage: run_config <descriptor.conf> [--csv PATH] [--trace PATH] "
        "[--metrics PATH] [--metrics-port PORT]\n");
    return 1;
  }
  const core::CliOptions options = core::CliOptions::parse(argc, argv);

  core::ExperimentConfig config;
  try {
    config = core::load_experiment_config(argv[1]);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  // CLI flags override the descriptor's obs_* keys.
  const std::string trace = options.get("trace", "");
  if (!trace.empty()) config.obs.trace_path = trace;
  const std::string metrics = options.get("metrics", "");
  if (!metrics.empty()) config.obs.metrics_path = metrics;
  const std::string metrics_port = options.get("metrics-port", "");
  if (!metrics_port.empty()) {
    try {
      const unsigned long port = std::stoul(metrics_port);
      if (port > 65535) throw std::out_of_range{"port"};
      config.obs.http_port = static_cast<std::uint16_t>(port);
    } catch (const std::exception&) {
      std::fprintf(stderr, "error: bad --metrics-port '%s'\n", metrics_port.c_str());
      return 1;
    }
  }

  std::printf("descriptor: %s\n  strategy=%s attack=%s malicious=%.0f%% N=%zu m=%zu R=%zu\n\n",
              argv[1], core::to_string(config.strategy), attacks::to_string(config.attack),
              config.malicious_fraction * 100.0, config.num_clients,
              config.clients_per_round, config.rounds);

  fl::RunHistory history = core::run_experiment(config);
  const auto tail = history.trailing_accuracy(config.rounds * 2 / 3);
  std::printf("\ntrailing accuracy: %.2f%% +- %.2f%%\n", tail.mean * 100.0,
              tail.stddev * 100.0);
  if (config.malicious_fraction > 0.0) {
    std::printf("detection: TPR %.2f, FPR %.2f\n", history.true_positive_rate(),
                history.false_positive_rate());
  }
  const std::string csv = options.get("csv", "");
  if (!csv.empty()) {
    history.write_csv(csv);
    std::printf("per-round series written to %s\n", csv.c_str());
  }
  if (!config.obs.trace_path.empty()) {
    std::printf("trace written to %s (open at ui.perfetto.dev)\n",
                config.obs.trace_path.c_str());
  }
  if (!config.obs.metrics_path.empty()) {
    std::printf("metrics written to %s (+ per-round snapshots at %s.jsonl)\n",
                config.obs.metrics_path.c_str(), config.obs.metrics_path.c_str());
  }
  return 0;
}
