// Dynamic datasets — the paper's §VI-C future-work scenario: clients receive
// a stream of new data over time. This example refreshes every client's local
// dataset mid-run and compares FedGuard with a stale (train-once) CVAE
// against FedGuard with periodic CVAE retraining
// (ClientConfig::cvae_retrain_interval).
//
//   $ ./streaming_clients [--rounds N] [--retrain K]

#include <cstdio>

#include "core/cli.hpp"
#include "core/runner.hpp"
#include "data/partition.hpp"
#include "data/synthetic_mnist.hpp"
#include "util/logging.hpp"

int main(int argc, char** argv) {
  using namespace fedguard;
  const core::CliOptions options = core::CliOptions::parse(argc, argv);
  util::set_log_level(util::LogLevel::Warn);

  const auto rounds = static_cast<std::size_t>(options.get_int("rounds", 12));
  const auto retrain = static_cast<std::size_t>(options.get_int("retrain", 3));

  for (const std::size_t retrain_interval : {std::size_t{0}, retrain}) {
    core::ExperimentConfig config = core::ExperimentConfig::small_scale();
    config.num_clients = 12;
    config.clients_per_round = 6;
    config.train_samples = 1200;
    config.rounds = rounds;
    config.strategy = core::StrategyKind::FedGuard;
    config.attack = attacks::AttackType::SignFlip;
    config.malicious_fraction = 0.5;
    config.client.cvae_retrain_interval = retrain_interval;

    core::Federation federation = core::build_federation(config);

    // A second wave of data arrives halfway through the run: every client's
    // partition is replaced with fresh samples (drawn with a new seed, so
    // the distribution drifts slightly through generator randomness).
    const data::Dataset second_wave =
        data::generate_synthetic_mnist(config.train_samples, config.seed ^ 0x5743ULL);
    const data::Partition new_partition = data::dirichlet_partition(
        second_wave, config.num_clients, config.dirichlet_alpha, config.seed ^ 0x99ULL);

    std::printf("--- FedGuard, CVAE retrain interval = %zu %s ---\n", retrain_interval,
                retrain_interval == 0 ? "(train once, paper default)" : "");
    fl::RunHistory history;
    history.strategy = "fedguard";
    for (std::size_t round = 0; round < config.rounds; ++round) {
      if (round == config.rounds / 2) {
        std::printf("  [data stream: all clients receive new local datasets]\n");
        for (std::size_t c = 0; c < federation.clients.size(); ++c) {
          federation.clients[c]->refresh_data(second_wave, new_partition[c]);
        }
      }
      const fl::RoundRecord record = federation.server->run_round(round);
      std::printf("  round %2zu: accuracy %5.1f%% (rejected malicious %zu/%zu)\n",
                  record.round, record.test_accuracy * 100.0, record.rejected_malicious,
                  record.sampled_malicious);
      history.rounds.push_back(record);
    }
    std::printf("  => detection TPR %.2f over the whole stream\n\n",
                history.true_positive_rate());
  }
  std::printf("With interval 0 the server keeps validating on decoders trained on the\n"
              "first data wave; periodic retraining keeps the synthetic validation\n"
              "data aligned with the stream at extra client compute cost.\n");
  return 0;
}
