// Controllable synthesis demo (paper §III-A): train a CVAE on synthetic
// digits, then ask its decoder for specific classes — the mechanism FedGuard
// uses to build labelled validation data at the server. Renders the generated
// digits as ASCII art and scores them with an independently trained
// classifier.
//
//   $ ./cvae_synthesis [--samples N] [--epochs E] [--digit D]

#include <cstdio>
#include <numeric>

#include "core/cli.hpp"
#include "data/synthetic_mnist.hpp"
#include "models/classifier.hpp"
#include "models/cvae.hpp"

namespace {

void print_ascii(std::span<const float> image, std::size_t size) {
  static const char* shades = " .:-=+*#%@";
  for (std::size_t y = 0; y < size; y += 2) {  // 2 rows per text line
    for (std::size_t x = 0; x < size; ++x) {
      const float v = 0.5f * (image[y * size + x] +
                              image[std::min(y + 1, size - 1) * size + x]);
      const int level = std::min(9, static_cast<int>(v * 10.0f));
      std::putchar(shades[level]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fedguard;
  const core::CliOptions options = core::CliOptions::parse(argc, argv);
  const auto sample_count = static_cast<std::size_t>(options.get_int("samples", 400));
  const auto epochs = static_cast<std::size_t>(options.get_int("epochs", 40));

  std::printf("Training a CVAE on %zu synthetic digits (%zu epochs)...\n", sample_count,
              epochs);
  const data::Dataset train = data::generate_synthetic_mnist(sample_count, 11);
  std::vector<std::size_t> all(train.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const tensor::Tensor flat = train.gather_flat(all);
  const std::vector<int> labels{train.labels().begin(), train.labels().end()};

  models::CvaeSpec spec;
  spec.hidden = 96;
  spec.latent = 2;
  models::Cvae cvae{spec, 13};
  const float final_loss = cvae.train(flat, labels, epochs, 8, 3e-3f);
  std::printf("final CVAE loss: %.1f\n\n", static_cast<double>(final_loss));

  // Independent judge of generation quality.
  models::Classifier judge{models::ClassifierArch::Mlp, models::ImageGeometry{}, 17};
  for (std::size_t epoch = 0; epoch < 12; ++epoch) {
    for (std::size_t start = 0; start + 16 <= train.size(); start += 16) {
      std::vector<std::size_t> idx(16);
      std::iota(idx.begin(), idx.end(), start);
      const auto batch = train.gather(idx);
      judge.train_batch(batch.images, batch.labels, 0.05f, 0.9f);
    }
  }

  util::Rng rng{19};
  if (options.has("digit")) {
    // Render a few variations of one conditioned class.
    const int digit = static_cast<int>(options.get_int("digit", 3));
    std::printf("decoder conditioned on class %d:\n\n", digit);
    const tensor::Tensor z = models::sample_standard_normal(3, spec.latent, rng);
    const std::vector<int> y(3, digit);
    const tensor::Tensor generated = cvae.decoder().decode(z, y);
    for (std::size_t i = 0; i < 3; ++i) {
      print_ascii(generated.row(i), 28);
      std::putchar('\n');
    }
  } else {
    // One sample per class plus an overall quality score.
    const tensor::Tensor z = models::sample_standard_normal(10, spec.latent, rng);
    std::vector<int> y(10);
    std::iota(y.begin(), y.end(), 0);
    const tensor::Tensor generated = cvae.decoder().decode(z, y);
    for (int digit = 0; digit < 10; ++digit) {
      std::printf("conditioned on %d:\n", digit);
      print_ascii(generated.row(static_cast<std::size_t>(digit)), 28);
      std::putchar('\n');
    }
  }

  // Score a large conditioned batch with the judge: how often does the
  // requested class come out? This is the property FedGuard's validation
  // data depends on.
  const std::size_t audit = 500;
  const tensor::Tensor z = models::sample_standard_normal(audit, spec.latent, rng);
  std::vector<int> y(audit);
  for (std::size_t i = 0; i < audit; ++i) y[i] = static_cast<int>(i % 10);
  const tensor::Tensor generated = cvae.decoder().decode(z, y);
  const tensor::Tensor images = generated.reshaped({audit, 1, 28, 28});
  std::printf("judge classifier agrees with the conditioning label on %.1f%% of %zu "
              "generated digits\n",
              judge.evaluate_accuracy(images, y) * 100.0, audit);
  return 0;
}
