// Real-MNIST pathway: when the original MNIST IDX files are on disk, run the
// paper's experiment on the actual dataset instead of the synthetic
// substitute (DESIGN.md §1).
//
//   $ ./mnist_real --data-dir /path/to/mnist ...
//         [--strategy fedguard] [--attack sign_flip] [--fraction 0.5]
//
// expects the standard file names inside --data-dir:
//   train-images-idx3-ubyte  train-labels-idx1-ubyte
//   t10k-images-idx3-ubyte   t10k-labels-idx1-ubyte
// Falls back to a notice (exit 0) when the files are absent so the example
// suite can run unattended in environments without the dataset.

#include <cstdio>

#include "core/cli.hpp"
#include "core/runner.hpp"
#include "data/idx_loader.hpp"
#include "util/logging.hpp"

int main(int argc, char** argv) {
  using namespace fedguard;
  const core::CliOptions options = core::CliOptions::parse(argc, argv);
  util::set_log_level(util::LogLevel::Warn);

  const std::string dir = options.get("data-dir", "./mnist");
  const std::string train_images = dir + "/train-images-idx3-ubyte";
  const std::string train_labels = dir + "/train-labels-idx1-ubyte";
  const std::string test_images = dir + "/t10k-images-idx3-ubyte";
  const std::string test_labels = dir + "/t10k-labels-idx1-ubyte";

  if (!data::idx_dataset_available(train_images, train_labels) ||
      !data::idx_dataset_available(test_images, test_labels)) {
    std::printf("MNIST IDX files not found under %s — nothing to do.\n"
                "Download the four files from the MNIST distribution and re-run:\n"
                "  %s/train-images-idx3-ubyte (+labels)\n"
                "  %s/t10k-images-idx3-ubyte (+labels)\n"
                "The rest of this repository runs on the synthetic substitute.\n",
                dir.c_str(), dir.c_str(), dir.c_str());
    return 0;
  }

  std::printf("loading MNIST from %s...\n", dir.c_str());
  data::Dataset train = data::load_idx_dataset(train_images, train_labels);
  data::Dataset test = data::load_idx_dataset(test_images, test_labels);
  std::printf("train %zu samples, test %zu samples\n", train.size(), test.size());

  // The server-side auxiliary dataset (Spectral / aux_audit baselines) is a
  // held-out slice of the test set, as commonly assumed by those methods.
  std::vector<std::size_t> aux_indices(1000);
  for (std::size_t i = 0; i < aux_indices.size(); ++i) aux_indices[i] = i;
  data::Dataset auxiliary = test.subset(aux_indices);

  core::ExperimentConfig config = core::ExperimentConfig::paper_scale();
  config.strategy = core::strategy_kind_from_string(options.get("strategy", "fedguard"));
  config.attack = attacks::attack_type_from_string(options.get("attack", "sign_flip"));
  config.malicious_fraction = options.get_double("fraction", 0.5);
  config.rounds = static_cast<std::size_t>(options.get_int("rounds", 50));
  config.num_clients = static_cast<std::size_t>(options.get_int("clients", 100));
  config.clients_per_round = static_cast<std::size_t>(options.get_int("sampled", 50));

  core::Federation federation = core::build_federation_with_data(
      config, std::move(train), std::move(test), std::move(auxiliary));
  fl::RunHistory history = federation.run();
  const auto tail = history.trailing_accuracy(40);  // the paper's window
  std::printf("\ntrailing-40 accuracy: %.2f%% +- %.2f%% (paper Table IV row: %s)\n",
              tail.mean * 100.0, tail.stddev * 100.0, core::to_string(config.strategy));
  return 0;
}
