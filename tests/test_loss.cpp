#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace fedguard::nn {
namespace {

using tensor::Tensor;

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogL) {
  const Tensor logits{{2, 4}, 0.0f};
  const std::vector<int> labels{0, 3};
  const LossResult loss = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(loss.value, std::log(4.0f), 1e-5f);
}

TEST(SoftmaxCrossEntropy, PerfectPredictionLowLoss) {
  Tensor logits{{1, 3}, 0.0f};
  logits.at(0, 1) = 20.0f;
  const std::vector<int> labels{1};
  EXPECT_LT(softmax_cross_entropy(logits, labels).value, 1e-4f);
}

TEST(SoftmaxCrossEntropy, GradientIsSoftmaxMinusOnehotOverBatch) {
  const Tensor logits = Tensor::from_data({1, 3}, {1.0f, 2.0f, 3.0f});
  const std::vector<int> labels{2};
  const LossResult loss = softmax_cross_entropy(logits, labels);
  // softmax(1,2,3)
  const float z = std::exp(1.0f) + std::exp(2.0f) + std::exp(3.0f);
  EXPECT_NEAR(loss.grad.at(0, 0), std::exp(1.0f) / z, 1e-5f);
  EXPECT_NEAR(loss.grad.at(0, 1), std::exp(2.0f) / z, 1e-5f);
  EXPECT_NEAR(loss.grad.at(0, 2), std::exp(3.0f) / z - 1.0f, 1e-5f);
}

TEST(SoftmaxCrossEntropy, GradientMatchesFiniteDifference) {
  util::Rng rng{7};
  Tensor logits{{3, 5}};
  for (auto& v : logits.data()) v = rng.uniform_float(-2.0f, 2.0f);
  const std::vector<int> labels{1, 4, 0};
  const LossResult loss = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + eps;
    const float up = softmax_cross_entropy(logits, labels).value;
    logits[i] = saved - eps;
    const float down = softmax_cross_entropy(logits, labels).value;
    logits[i] = saved;
    EXPECT_NEAR(loss.grad[i], (up - down) / (2.0f * eps), 1e-2f);
  }
}

TEST(SoftmaxCrossEntropy, LabelRangeChecked) {
  const Tensor logits{{1, 3}, 0.0f};
  const std::vector<int> bad{3};
  EXPECT_THROW((void)softmax_cross_entropy(logits, bad), std::invalid_argument);
  const std::vector<int> negative{-1};
  EXPECT_THROW((void)softmax_cross_entropy(logits, negative), std::invalid_argument);
}

TEST(CountCorrect, CountsArgmaxMatches) {
  const Tensor logits = Tensor::from_data({3, 2}, {1, 0, 0, 1, 5, 2});
  const std::vector<int> labels{0, 0, 0};
  EXPECT_EQ(count_correct(logits, labels), 2u);
}

TEST(BinaryCrossEntropy, KnownValue) {
  const Tensor p = Tensor::from_data({1, 2}, {0.9f, 0.2f});
  const Tensor t = Tensor::from_data({1, 2}, {1.0f, 0.0f});
  const LossResult loss = binary_cross_entropy(p, t);
  const float expected = -(std::log(0.9f) + std::log(0.8f));
  EXPECT_NEAR(loss.value, expected, 1e-5f);
}

TEST(BinaryCrossEntropy, GradientFiniteDifference) {
  util::Rng rng{11};
  Tensor p{{2, 4}};
  Tensor t{{2, 4}};
  for (auto& v : p.data()) v = rng.uniform_float(0.1f, 0.9f);
  for (auto& v : t.data()) v = rng.uniform_float(0.0f, 1.0f);
  const LossResult loss = binary_cross_entropy(p, t);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const float saved = p[i];
    p[i] = saved + eps;
    const float up = binary_cross_entropy(p, t).value;
    p[i] = saved - eps;
    const float down = binary_cross_entropy(p, t).value;
    p[i] = saved;
    EXPECT_NEAR(loss.grad[i], (up - down) / (2.0f * eps), 5e-2f) << i;
  }
}

TEST(BinaryCrossEntropy, ClampsExtremeProbabilities) {
  const Tensor p = Tensor::from_data({1, 2}, {0.0f, 1.0f});
  const Tensor t = Tensor::from_data({1, 2}, {1.0f, 0.0f});
  const LossResult loss = binary_cross_entropy(p, t);
  EXPECT_FALSE(std::isnan(loss.value));
  EXPECT_FALSE(std::isinf(loss.value));
}

TEST(GaussianKl, ZeroAtStandardNormal) {
  const Tensor mu{{2, 3}, 0.0f};
  const Tensor logvar{{2, 3}, 0.0f};
  const GaussianKlResult kl = gaussian_kl(mu, logvar);
  EXPECT_NEAR(kl.value, 0.0f, 1e-6f);
  for (const float g : kl.grad_mu.data()) EXPECT_NEAR(g, 0.0f, 1e-6f);
  for (const float g : kl.grad_logvar.data()) EXPECT_NEAR(g, 0.0f, 1e-6f);
}

TEST(GaussianKl, KnownValueAndPositivity) {
  // KL for mu=1, logvar=0 per dim: 0.5 * mu^2 = 0.5.
  const Tensor mu{{1, 2}, 1.0f};
  const Tensor logvar{{1, 2}, 0.0f};
  EXPECT_NEAR(gaussian_kl(mu, logvar).value, 1.0f, 1e-5f);
}

TEST(GaussianKl, GradientFiniteDifference) {
  util::Rng rng{13};
  Tensor mu{{2, 3}};
  Tensor logvar{{2, 3}};
  for (auto& v : mu.data()) v = rng.uniform_float(-1.0f, 1.0f);
  for (auto& v : logvar.data()) v = rng.uniform_float(-1.0f, 1.0f);
  const GaussianKlResult kl = gaussian_kl(mu, logvar);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < mu.size(); ++i) {
    float saved = mu[i];
    mu[i] = saved + eps;
    const float up = gaussian_kl(mu, logvar).value;
    mu[i] = saved - eps;
    const float down = gaussian_kl(mu, logvar).value;
    mu[i] = saved;
    EXPECT_NEAR(kl.grad_mu[i], (up - down) / (2.0f * eps), 1e-2f);

    saved = logvar[i];
    logvar[i] = saved + eps;
    const float up2 = gaussian_kl(mu, logvar).value;
    logvar[i] = saved - eps;
    const float down2 = gaussian_kl(mu, logvar).value;
    logvar[i] = saved;
    EXPECT_NEAR(kl.grad_logvar[i], (up2 - down2) / (2.0f * eps), 1e-2f);
  }
}

TEST(MeanSquaredError, ValueAndGradient) {
  const Tensor p = Tensor::from_data({1, 2}, {1.0f, 3.0f});
  const Tensor t = Tensor::from_data({1, 2}, {0.0f, 1.0f});
  const LossResult loss = mean_squared_error(p, t);
  EXPECT_NEAR(loss.value, (1.0f + 4.0f) / 2.0f, 1e-6f);
  EXPECT_NEAR(loss.grad[0], 2.0f * 1.0f / 2.0f, 1e-6f);
  EXPECT_NEAR(loss.grad[1], 2.0f * 2.0f / 2.0f, 1e-6f);
}

TEST(Losses, ShapeMismatchThrows) {
  const Tensor a{{2, 3}};
  const Tensor b{{3, 2}};
  EXPECT_THROW((void)binary_cross_entropy(a, b), std::invalid_argument);
  EXPECT_THROW((void)gaussian_kl(a, b), std::invalid_argument);
  EXPECT_THROW((void)mean_squared_error(a, b), std::invalid_argument);
  const std::vector<int> labels{0, 1, 2};
  EXPECT_THROW((void)softmax_cross_entropy(a, labels), std::invalid_argument);
}

}  // namespace
}  // namespace fedguard::nn
