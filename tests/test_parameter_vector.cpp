#include "nn/parameter_vector.hpp"

#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace fedguard::nn {
namespace {

Sequential make_net(std::uint64_t seed) {
  util::Rng rng{seed};
  Sequential net;
  net.emplace<Linear>(4, 6, rng);
  net.emplace<ReLU>();
  net.emplace<Linear>(6, 3, rng);
  return net;
}

TEST(ParameterVector, FlattenSizeMatchesParameterCount) {
  Sequential net = make_net(1);
  EXPECT_EQ(flatten_parameters(net).size(), net.parameter_count());
  EXPECT_EQ(net.parameter_count(), 4u * 6 + 6 + 6 * 3 + 3);
}

TEST(ParameterVector, RoundTripRestoresExactly) {
  Sequential net = make_net(2);
  const std::vector<float> original = flatten_parameters(net);

  // Perturb, then restore.
  std::vector<float> perturbed = original;
  for (auto& v : perturbed) v += 1.0f;
  unflatten_parameters(net, perturbed);
  EXPECT_EQ(flatten_parameters(net), perturbed);
  unflatten_parameters(net, original);
  EXPECT_EQ(flatten_parameters(net), original);
}

TEST(ParameterVector, TransfersBetweenIdenticalArchitectures) {
  Sequential a = make_net(3);
  Sequential b = make_net(4);
  EXPECT_NE(flatten_parameters(a), flatten_parameters(b));
  unflatten_parameters(b, flatten_parameters(a));
  EXPECT_EQ(flatten_parameters(a), flatten_parameters(b));

  // Functional equivalence after transfer.
  util::Rng rng{5};
  tensor::Tensor input{{2, 4}};
  for (auto& v : input.data()) v = rng.uniform_float(-1.0f, 1.0f);
  const tensor::Tensor out_a = a.forward(input);
  const tensor::Tensor out_b = b.forward(input);
  for (std::size_t i = 0; i < out_a.size(); ++i) EXPECT_FLOAT_EQ(out_a[i], out_b[i]);
}

TEST(ParameterVector, SizeMismatchThrows) {
  Sequential net = make_net(6);
  std::vector<float> too_short(net.parameter_count() - 1, 0.0f);
  EXPECT_THROW(unflatten_parameters(net, too_short), std::invalid_argument);
  std::vector<float> too_long(net.parameter_count() + 1, 0.0f);
  EXPECT_THROW(unflatten_parameters(net, too_long), std::invalid_argument);
}

TEST(ParameterVector, FlattenGradients) {
  Sequential net = make_net(7);
  net.zero_grad();
  const std::vector<float> zero_grads = flatten_gradients(net);
  EXPECT_EQ(zero_grads.size(), net.parameter_count());
  for (const float g : zero_grads) EXPECT_FLOAT_EQ(g, 0.0f);

  util::Rng rng{8};
  tensor::Tensor input{{3, 4}};
  for (auto& v : input.data()) v = rng.uniform_float(-1.0f, 1.0f);
  (void)net.forward(input);
  (void)net.backward(tensor::Tensor{{3, 3}, 1.0f});
  const std::vector<float> grads = flatten_gradients(net);
  bool any_nonzero = false;
  for (const float g : grads) any_nonzero |= g != 0.0f;
  EXPECT_TRUE(any_nonzero);
}

TEST(ParameterVector, WireBytesIncludesPrefix) {
  EXPECT_EQ(parameter_wire_bytes(0), 8u);
  EXPECT_EQ(parameter_wire_bytes(100), 8u + 400u);
}

TEST(ParameterVector, FlattenOrderIsDeclarationOrder) {
  util::Rng rng{9};
  Sequential net;
  auto& first = net.emplace<Linear>(2, 2, rng);
  net.emplace<Linear>(2, 1, rng);
  const std::vector<float> flat = flatten_parameters(net);
  // First 4 entries are the first layer's weight matrix.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(flat[i], first.weight().value[i]);
  }
}

}  // namespace
}  // namespace fedguard::nn
