#include "parallel/kernel_config.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace fedguard::parallel {
namespace {

class KernelConfigTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = kernel_config(); }
  void TearDown() override { set_kernel_config(saved_); }

 private:
  KernelConfig saved_;
};

TEST_F(KernelConfigTest, DefaultsAreSane) {
  set_kernel_config(KernelConfig{});
  const KernelConfig config = kernel_config();
  EXPECT_EQ(config.threads, 0u);  // auto
  EXPECT_GT(config.gemm_min_flops, 0u);
  EXPECT_GT(config.elementwise_min_size, 0u);
  EXPECT_GT(config.distance_min_elements, 0u);
  EXPECT_GE(kernel_threads(), 1u);
}

TEST_F(KernelConfigTest, SetAndGetRoundTrips) {
  KernelConfig config;
  config.threads = 3;
  config.gemm_min_flops = 123;
  config.elementwise_min_size = 456;
  config.distance_min_elements = 789;
  set_kernel_config(config);
  const KernelConfig readback = kernel_config();
  EXPECT_EQ(readback.threads, 3u);
  EXPECT_EQ(readback.gemm_min_flops, 123u);
  EXPECT_EQ(readback.elementwise_min_size, 456u);
  EXPECT_EQ(readback.distance_min_elements, 789u);
  EXPECT_EQ(kernel_threads(), 3u);
}

TEST(ThreadsFromEnvValue, ParsesLikeTheEnvOverride) {
  EXPECT_EQ(threads_from_env_value(nullptr), 0u);
  EXPECT_EQ(threads_from_env_value(""), 0u);
  EXPECT_EQ(threads_from_env_value("4"), 4u);
  EXPECT_EQ(threads_from_env_value("1"), 1u);
  EXPECT_EQ(threads_from_env_value("0"), 0u);
  EXPECT_EQ(threads_from_env_value("-2"), 0u);
  EXPECT_EQ(threads_from_env_value("abc"), 0u);
  EXPECT_EQ(threads_from_env_value("4x"), 0u);
}

TEST_F(KernelConfigTest, KernelPoolTracksConfiguredThreadCount) {
  KernelConfig config;
  config.threads = 2;
  set_kernel_config(config);
  EXPECT_EQ(kernel_pool().thread_count(), 2u);
  config.threads = 3;
  set_kernel_config(config);
  EXPECT_EQ(kernel_pool().thread_count(), 3u);
}

TEST_F(KernelConfigTest, ShouldParallelizeHonorsThresholdAndThreadCount) {
  KernelConfig config;
  config.threads = 4;
  set_kernel_config(config);
  EXPECT_TRUE(should_parallelize(1000, 100));
  EXPECT_FALSE(should_parallelize(99, 100));
  EXPECT_TRUE(should_parallelize(100, 100));  // threshold is inclusive

  config.threads = 1;
  set_kernel_config(config);
  EXPECT_FALSE(should_parallelize(1000, 100)) << "one thread never fans out";
}

TEST_F(KernelConfigTest, ShouldParallelizeFalseInsideWorker) {
  KernelConfig config;
  config.threads = 4;
  set_kernel_config(config);
  auto inside = kernel_pool().submit([] { return should_parallelize(1 << 30, 1); });
  EXPECT_FALSE(inside.get()) << "kernels nested inside a pool worker must stay serial";
}

TEST_F(KernelConfigTest, ParallelRangesCoverExactlyOnce) {
  KernelConfig config;
  config.threads = 4;
  set_kernel_config(config);
  for (const std::size_t count : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                                  std::size_t{1000}, std::size_t{1001}}) {
    for (const std::size_t grain : {std::size_t{1}, std::size_t{64}}) {
      std::vector<std::atomic<int>> hits(count);
      kernel_parallel_ranges(count, grain, [&hits](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "count=" << count << " grain=" << grain << " i=" << i;
      }
    }
  }
}

TEST_F(KernelConfigTest, ParallelRangesAlignToGrain) {
  KernelConfig config;
  config.threads = 4;
  set_kernel_config(config);
  const std::size_t grain = 64;
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  kernel_parallel_ranges(1000, grain, [&](std::size_t begin, std::size_t end) {
    const std::lock_guard<std::mutex> lock{mutex};
    ranges.emplace_back(begin, end);
  });
  ASSERT_FALSE(ranges.empty());
  std::set<std::size_t> begins;
  for (const auto& [begin, end] : ranges) {
    EXPECT_LT(begin, end);
    EXPECT_EQ(begin % grain, 0u) << "range start not grain-aligned";
    begins.insert(begin);
  }
  EXPECT_EQ(begins.size(), ranges.size()) << "overlapping ranges";
}

TEST_F(KernelConfigTest, ParallelRangesEmptyIsNoop) {
  int calls = 0;
  kernel_parallel_ranges(0, 16, [&calls](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace fedguard::parallel
