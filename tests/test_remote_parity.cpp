// Parity between the in-process simulator and the TCP deployment: with the
// same strategy, data, and global traffic semantics, both paths must defend
// the same attacks (the socket layer must not change the science).

#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "data/partition.hpp"
#include "data/synthetic_mnist.hpp"
#include "defenses/fedavg.hpp"
#include "fl/server.hpp"
#include "net/remote.hpp"
#include "util/logging.hpp"

namespace fedguard {
namespace {

struct ParityFixture : ::testing::Test {
  static void SetUpTestSuite() { util::set_log_level(util::LogLevel::Warn); }

  void SetUp() override {
    geometry = models::ImageGeometry{1, 28, 28, 10};
    train = data::generate_synthetic_mnist(320, 801);
    test = data::generate_synthetic_mnist(100, 802);
    partition = data::iid_partition(train.size(), 4, 803);
  }

  fl::ClientConfig client_config() const {
    fl::ClientConfig config;
    config.local_epochs = 1;
    config.batch_size = 16;
    config.train_cvae = false;
    return config;
  }

  models::CvaeSpec cvae_spec() const {
    models::CvaeSpec spec;
    spec.hidden = 32;
    spec.latent = 2;
    return spec;
  }

  std::vector<std::unique_ptr<fl::Client>> make_clients(std::uint64_t seed_base) const {
    std::vector<std::unique_ptr<fl::Client>> clients;
    for (std::size_t i = 0; i < 4; ++i) {
      clients.push_back(std::make_unique<fl::Client>(
          static_cast<int>(i), train, partition[i], client_config(),
          models::ClassifierArch::Mlp, geometry, cvae_spec(), seed_base + i));
    }
    return clients;
  }

  models::ImageGeometry geometry;
  data::Dataset train;
  data::Dataset test;
  data::Partition partition;
};

TEST_F(ParityFixture, LocalAndRemoteReachSimilarAccuracy) {
  constexpr std::size_t kRounds = 4;

  // Local in-process run.
  auto local_clients = make_clients(810);
  defenses::FedAvgAggregator local_strategy;
  fl::ServerConfig local_config;
  local_config.clients_per_round = 4;
  local_config.rounds = kRounds;
  local_config.seed = 811;
  fl::Server local_server{local_config, local_clients, local_strategy, test,
                          models::ClassifierArch::Mlp, geometry};
  const fl::RunHistory local = local_server.run();

  // Remote run over loopback with identically constructed clients.
  auto remote_clients = make_clients(810);
  defenses::FedAvgAggregator remote_strategy;
  net::RemoteServerConfig remote_config;
  remote_config.expected_clients = 4;
  remote_config.clients_per_round = 4;
  remote_config.rounds = kRounds;
  remote_config.seed = 811;
  net::RemoteServer remote_server{remote_config, remote_strategy, test,
                                  models::ClassifierArch::Mlp, geometry};
  const std::uint16_t port = remote_server.port();
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 4; ++i) {
    threads.emplace_back(
        [&, i] { (void)net::run_remote_client("127.0.0.1", port, *remote_clients[i]); });
  }
  const fl::RunHistory remote = remote_server.run();
  for (auto& thread : threads) thread.join();

  ASSERT_EQ(local.rounds.size(), remote.rounds.size());
  // m = N removes sampling variance; the remaining difference is client-local
  // shuffling order (per-client RNG state), so accuracies track closely.
  EXPECT_NEAR(local.rounds.back().test_accuracy, remote.rounds.back().test_accuracy, 0.15);
  EXPECT_GT(remote.rounds.back().test_accuracy, 0.5);
}

TEST_F(ParityFixture, FaultFreeRemoteMatchesLocalBitForBit) {
  // The socket layer must not change the science: with faults disabled, the
  // TCP path and the in-process path are the same computation, so per-round
  // accuracy and the final parameter vector agree exactly, not approximately.
  constexpr std::size_t kRounds = 3;

  auto local_clients = make_clients(830);
  defenses::FedAvgAggregator local_strategy;
  fl::ServerConfig local_config;
  local_config.clients_per_round = 2;  // exercise the sampling path too
  local_config.rounds = kRounds;
  local_config.seed = 831;
  fl::Server local_server{local_config, local_clients, local_strategy, test,
                          models::ClassifierArch::Mlp, geometry};
  const fl::RunHistory local = local_server.run();

  auto remote_clients = make_clients(830);
  defenses::FedAvgAggregator remote_strategy;
  net::RemoteServerConfig remote_config;
  remote_config.expected_clients = 4;
  remote_config.clients_per_round = 2;
  remote_config.rounds = kRounds;
  remote_config.seed = 831;
  net::RemoteServer remote_server{remote_config, remote_strategy, test,
                                  models::ClassifierArch::Mlp, geometry};
  const std::uint16_t port = remote_server.port();
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 4; ++i) {
    threads.emplace_back(
        [&, i] { (void)net::run_remote_client("127.0.0.1", port, *remote_clients[i]); });
  }
  const fl::RunHistory remote = remote_server.run();
  for (auto& thread : threads) thread.join();

  ASSERT_EQ(local.rounds.size(), remote.rounds.size());
  for (std::size_t r = 0; r < kRounds; ++r) {
    EXPECT_EQ(local.rounds[r].test_accuracy, remote.rounds[r].test_accuracy)
        << "round " << r;
    EXPECT_EQ(local.rounds[r].sampled_clients, remote.rounds[r].sampled_clients)
        << "round " << r;
  }
  const std::span<const float> local_params = local_server.global_parameters();
  const std::span<const float> remote_params = remote_server.global_parameters();
  ASSERT_EQ(local_params.size(), remote_params.size());
  for (std::size_t i = 0; i < local_params.size(); ++i) {
    ASSERT_EQ(local_params[i], remote_params[i]) << "parameter " << i;
  }
  EXPECT_EQ(remote.total_timeouts() + remote.total_dropouts() +
                remote.total_corrupt_frames(),
            0u);
}

TEST_F(ParityFixture, DropPlanMatchesInProcessStragglerPath) {
  // A drop-only fault plan and the in-process straggler hook wired to the
  // same injector produce the same responder sets, hence the same model.
  constexpr std::size_t kRounds = 3;
  net::FaultPlan plan;
  plan.drop_probability = 0.3;
  plan.seed = 840;
  const net::FaultInjector oracle{plan};

  auto local_clients = make_clients(841);
  defenses::FedAvgAggregator local_strategy;
  fl::ServerConfig local_config;
  local_config.clients_per_round = 3;
  local_config.rounds = kRounds;
  local_config.seed = 842;
  local_config.straggler_predicate = [&oracle](std::size_t client, std::size_t round) {
    return oracle.decide(static_cast<int>(client), round) == net::FaultKind::Drop;
  };
  fl::Server local_server{local_config, local_clients, local_strategy, test,
                          models::ClassifierArch::Mlp, geometry};
  const fl::RunHistory local = local_server.run();

  auto remote_clients = make_clients(841);
  defenses::FedAvgAggregator remote_strategy;
  net::RemoteServerConfig remote_config;
  remote_config.expected_clients = 4;
  remote_config.clients_per_round = 3;
  remote_config.rounds = kRounds;
  remote_config.seed = 842;
  remote_config.round_timeout_ms = 1500;
  remote_config.eject_after_failures = 0;  // the local path never ejects
  net::RemoteServer remote_server{remote_config, remote_strategy, test,
                                  models::ClassifierArch::Mlp, geometry};
  const std::uint16_t port = remote_server.port();
  net::FaultInjector injector{plan};
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      net::RemoteClientOptions options;
      options.faults = &injector;
      (void)net::run_remote_client("127.0.0.1", port, *remote_clients[i], options);
    });
  }
  const fl::RunHistory remote = remote_server.run();
  for (auto& thread : threads) thread.join();

  std::size_t total_dropped = 0;
  ASSERT_EQ(local.rounds.size(), remote.rounds.size());
  for (std::size_t r = 0; r < kRounds; ++r) {
    // The remote path records a drop as a timeout; the local path records the
    // same client as a straggler. Same responders, same accuracy.
    EXPECT_EQ(local.rounds[r].stragglers, remote.rounds[r].timeouts) << "round " << r;
    EXPECT_EQ(local.rounds[r].test_accuracy, remote.rounds[r].test_accuracy)
        << "round " << r;
    total_dropped += remote.rounds[r].timeouts;
  }
  ASSERT_GT(total_dropped, 0u) << "plan seed must actually drop someone";
  const std::span<const float> local_params = local_server.global_parameters();
  const std::span<const float> remote_params = remote_server.global_parameters();
  ASSERT_EQ(local_params.size(), remote_params.size());
  for (std::size_t i = 0; i < local_params.size(); ++i) {
    ASSERT_EQ(local_params[i], remote_params[i]) << "parameter " << i;
  }
}

TEST_F(ParityFixture, RemoteUploadTrafficMatchesFrameArithmetic) {
  auto clients = make_clients(820);
  defenses::FedAvgAggregator strategy;
  net::RemoteServerConfig config;
  config.expected_clients = 4;
  config.clients_per_round = 2;
  config.rounds = 1;
  config.seed = 821;
  net::RemoteServer server{config, strategy, test, models::ClassifierArch::Mlp, geometry};
  const std::uint16_t port = server.port();
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 4; ++i) {
    threads.emplace_back(
        [&, i] { (void)net::run_remote_client("127.0.0.1", port, *clients[i]); });
  }
  const fl::RunHistory history = server.run();
  for (auto& thread : threads) thread.join();

  // Download = 2 clients x exact RoundReply frame size (ψ only, no θ).
  models::Classifier reference{models::ClassifierArch::Mlp, geometry, 822};
  const std::size_t expected =
      2 * net::client_update_frame_bytes(reference.parameter_count(), 0);
  EXPECT_EQ(history.rounds[0].server_download_bytes, expected);
}

}  // namespace
}  // namespace fedguard
