// Scenario sweep harness: matrix enumeration, cell-id replay, roster
// completeness, and the reproducibility contract — the same matrix under
// serial kernels serializes to byte-identical JSON on every run, and the
// matrix seed is the only source of variation.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "scenario/matrix.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "tensor/kernels/kernel_arch.hpp"
#include "util/logging.hpp"

namespace fedguard::scenario {
namespace {

/// Two-cell micro matrix (FedAvg baseline + covert) small enough that a full
/// sweep takes a couple of seconds. Serial kernels + the default fp32 wire
/// path are the determinism contract pinned by docs/ROBUSTNESS_SWEEP.md.
SweepMatrix micro_matrix(std::uint64_t seed) {
  SweepMatrix matrix = smoke_matrix(seed);
  matrix.base.train_samples = 600;
  matrix.base.test_samples = 150;
  matrix.base.auxiliary_samples = 150;
  matrix.base.rounds = 3;
  matrix.base.kernel_arch = tensor::kernels::KernelArch::Serial;
  matrix.attack_axis = {attacks::AttackType::Covert};
  matrix.defense_axis = {core::StrategyKind::FedAvg};
  matrix.regime_axis = {DataRegime{data::PartitionScheme::Iid, 10.0}};
  matrix.fraction_axis = {0.4};
  matrix.shards_axis = {1};
  return matrix;
}

TEST(DataRegimeLabel, StableStrings) {
  EXPECT_EQ((DataRegime{data::PartitionScheme::Iid, 10.0}.label()), "iid");
  EXPECT_EQ((DataRegime{data::PartitionScheme::Shard, 10.0}.label()), "shard");
  EXPECT_EQ((DataRegime{data::PartitionScheme::Dirichlet, 0.5}.label()),
            "dirichlet-a0.5");
  EXPECT_EQ((DataRegime{data::PartitionScheme::QuantitySkew, 1.0}.label()),
            "quantity_skew-a1");
}

TEST(DataRegimeLabel, ParseSchemeAndAlpha) {
  EXPECT_EQ(parse_regime("iid").scheme, data::PartitionScheme::Iid);
  EXPECT_EQ(parse_regime("shard").scheme, data::PartitionScheme::Shard);
  const DataRegime dirichlet = parse_regime("dirichlet:0.5");
  EXPECT_EQ(dirichlet.scheme, data::PartitionScheme::Dirichlet);
  EXPECT_EQ(dirichlet.alpha, 0.5);
  const DataRegime skew = parse_regime("quantity_skew:1");
  EXPECT_EQ(skew.scheme, data::PartitionScheme::QuantitySkew);
  EXPECT_EQ(skew.alpha, 1.0);
  EXPECT_THROW((void)parse_regime("orbital"), std::invalid_argument);
  EXPECT_THROW((void)parse_regime("dirichlet:zero"), std::invalid_argument);
  EXPECT_THROW((void)parse_regime("dirichlet:-1"), std::invalid_argument);
}

TEST(CellId, FormatAndSeedAreStable) {
  Cell cell;
  cell.attack = attacks::AttackType::Covert;
  cell.defense = core::StrategyKind::Krum;
  cell.regime = DataRegime{data::PartitionScheme::Iid, 10.0};
  cell.malicious_fraction = 0.4;
  EXPECT_EQ(cell.id(), "covert+40/krum/iid");
  // The seed is a pure function of (matrix seed, id): same in, same out;
  // different matrix seed or different cell, different out.
  EXPECT_EQ(cell.cell_seed(42), cell.cell_seed(42));
  EXPECT_NE(cell.cell_seed(42), cell.cell_seed(43));
  Cell other = cell;
  other.defense = core::StrategyKind::Median;
  EXPECT_NE(other.cell_seed(42), cell.cell_seed(42));
}

TEST(SweepMatrixEnumerate, BaselinePerDefenseRegimeAndSorted) {
  SweepMatrix matrix = micro_matrix(7);
  matrix.defense_axis = {core::StrategyKind::FedAvg, core::StrategyKind::Krum};
  const auto cells = matrix.enumerate();
  // 2 defenses × (1 baseline + 1 attack×fraction) = 4 cells.
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_TRUE(std::is_sorted(cells.begin(), cells.end(),
                             [](const Cell& a, const Cell& b) { return a.id() < b.id(); }));
  std::size_t baselines = 0;
  for (const Cell& cell : cells) {
    if (cell.attack == attacks::AttackType::None) {
      ++baselines;
      EXPECT_EQ(cell.malicious_fraction, 0.0);
    }
  }
  EXPECT_EQ(baselines, 2u);
  std::set<std::string> ids;
  for (const Cell& cell : cells) ids.insert(cell.id());
  EXPECT_EQ(ids.size(), cells.size()) << "cell ids must be unique";

  // A shards axis multiplies the matrix; only the k > 1 cells carry the
  // /s<k> id suffix, so every single-tier id survives verbatim.
  matrix.shards_axis = {1, 2};
  const auto sharded = matrix.enumerate();
  ASSERT_EQ(sharded.size(), 8u);
  std::set<std::string> sharded_ids;
  for (const Cell& cell : sharded) {
    sharded_ids.insert(cell.id());
    EXPECT_EQ(cell.id().find("/s") != std::string::npos, cell.shards > 1)
        << cell.id();
  }
  EXPECT_EQ(sharded_ids.size(), sharded.size());
  for (const std::string& id : ids) EXPECT_TRUE(sharded_ids.count(id)) << id;
}

TEST(SweepMatrixEnumerate, CellConfigAppliesCoordinates) {
  const SweepMatrix matrix = micro_matrix(11);
  Cell cell;
  cell.attack = attacks::AttackType::SignFlip;
  cell.defense = core::StrategyKind::Median;
  cell.regime = DataRegime{data::PartitionScheme::Dirichlet, 0.5};
  cell.malicious_fraction = 0.3;
  const core::ExperimentConfig config = matrix.cell_config(cell);
  EXPECT_EQ(config.attack, attacks::AttackType::SignFlip);
  EXPECT_EQ(config.strategy, core::StrategyKind::Median);
  EXPECT_EQ(config.partition_scheme, data::PartitionScheme::Dirichlet);
  EXPECT_EQ(config.dirichlet_alpha, 0.5);
  EXPECT_EQ(config.malicious_fraction, 0.3);
  EXPECT_EQ(config.seed, cell.cell_seed(matrix.base.seed));
}

TEST(SweepRosters, CoverEveryAttackAndStrategy) {
  // The lint rule (sweep-roster) enforces this textually; this is the
  // semantic version — every enum value must be reachable from the sweep.
  const auto& attack_ros = attack_roster();
  for (const attacks::AttackType type : attacks::kAllAttackTypes) {
    EXPECT_NE(std::find(attack_ros.begin(), attack_ros.end(), type), attack_ros.end())
        << "attack missing from sweep roster: " << attacks::to_string(type);
  }
  EXPECT_EQ(attack_ros.size(), attacks::kAllAttackTypes.size());
  const auto& defense_ros = defense_roster();
  for (const core::StrategyKind kind : core::kAllStrategyKinds) {
    EXPECT_NE(std::find(defense_ros.begin(), defense_ros.end(), kind), defense_ros.end())
        << "strategy missing from sweep roster: " << core::to_string(kind);
  }
  EXPECT_EQ(defense_ros.size(), core::kAllStrategyKinds.size());
}

TEST(ApplyScenarioValues, ParsesAxesAndRejectsUnknownKeys) {
  SweepMatrix matrix = micro_matrix(1);
  std::map<std::string, std::string> values{
      {"scenario_attacks", "sign_flip, covert"},
      {"scenario_defenses", "krum,fedcpa"},
      {"scenario_regimes", "iid,dirichlet:0.5"},
      {"scenario_fractions", "0.2,0.4"},
      {"scenario_rounds", "5"},
      {"train_samples", "999"},  // non-scenario keys are ignored here
  };
  apply_scenario_values(matrix, values);
  ASSERT_EQ(matrix.attack_axis.size(), 2u);
  EXPECT_EQ(matrix.attack_axis[1], attacks::AttackType::Covert);
  ASSERT_EQ(matrix.defense_axis.size(), 2u);
  EXPECT_EQ(matrix.defense_axis[1], core::StrategyKind::FedCPA);
  ASSERT_EQ(matrix.regime_axis.size(), 2u);
  EXPECT_EQ(matrix.regime_axis[1].scheme, data::PartitionScheme::Dirichlet);
  ASSERT_EQ(matrix.fraction_axis.size(), 2u);
  EXPECT_EQ(matrix.base.rounds, 5u);

  std::map<std::string, std::string> bad{{"scenario_planets", "mars"}};
  EXPECT_THROW(apply_scenario_values(matrix, bad), std::invalid_argument);
  std::map<std::string, std::string> bad_fraction{{"scenario_fractions", "1.5"}};
  EXPECT_THROW(apply_scenario_values(matrix, bad_fraction), std::invalid_argument);
}

TEST(SweepDeterminism, SameSeedIsByteIdenticalDifferentSeedIsNot) {
  util::set_log_level(util::LogLevel::Warn);
  const SweepMatrix matrix = micro_matrix(42);
  const Leaderboard first = run_sweep(matrix, "micro");
  const Leaderboard second = run_sweep(matrix, "micro");
  const std::string json_first = to_json(first);
  const std::string json_second = to_json(second);
  EXPECT_EQ(json_first, json_second)
      << "same matrix + serial kernels must serialize byte-identically";

  const Leaderboard reseeded = run_sweep(micro_matrix(43), "micro");
  EXPECT_NE(to_json(reseeded), json_first)
      << "the matrix seed must actually reach the federations";
  util::set_log_level(util::LogLevel::Info);
}

TEST(SweepDeterminism, CellReplaysFromSeedAndIdAlone) {
  util::set_log_level(util::LogLevel::Warn);
  const SweepMatrix matrix = micro_matrix(42);
  const auto cells = matrix.enumerate();
  const auto covert = std::find_if(cells.begin(), cells.end(), [](const Cell& c) {
    return c.attack == attacks::AttackType::Covert;
  });
  ASSERT_NE(covert, cells.end());
  // A row replayed in isolation matches the same row inside the full sweep:
  // nothing about the run order or sibling cells leaks into a cell.
  const CellResult solo = run_cell(matrix, *covert);
  const Leaderboard board = run_sweep(matrix, "micro");
  const CellResult* swept = board.find(solo.cell_id);
  ASSERT_NE(swept, nullptr);
  EXPECT_EQ(solo.seed, swept->seed);
  EXPECT_EQ(solo.final_accuracy, swept->final_accuracy);
  EXPECT_EQ(solo.sampled_malicious, swept->sampled_malicious);
  EXPECT_EQ(solo.rejected_malicious, swept->rejected_malicious);
  EXPECT_EQ(solo.rejected_benign, swept->rejected_benign);
  util::set_log_level(util::LogLevel::Info);
}

TEST(LeaderboardJson, SchemaAndLookup) {
  Leaderboard board;
  board.matrix_name = "unit";
  board.seed = 9;
  board.rounds = 4;
  CellResult row;
  row.cell_id = "covert+40/krum/iid";
  row.attack = "covert";
  row.malicious_pct = 40;
  row.defense = "krum";
  row.regime = "iid";
  row.final_accuracy = 0.5;
  board.cells.push_back(row);
  const std::string json = to_json(board);
  EXPECT_NE(json.find("\"schema\": \"fedguard-robustness-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"cell\": \"covert+40/krum/iid\""), std::string::npos);
  EXPECT_NE(json.find("\"final_accuracy\": 0.500000"), std::string::npos);
  ASSERT_NE(board.find("covert+40/krum/iid"), nullptr);
  EXPECT_EQ(board.find("absent"), nullptr);
}

}  // namespace
}  // namespace fedguard::scenario
