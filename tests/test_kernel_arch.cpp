// Kernel-arch dispatch (tensor::kernels): parsing, availability, override
// semantics, and the equivalence oracle — every SIMD tier this CPU supports
// must agree with the serial determinism oracle on GEMM and the defense
// distance kernels, within reduction-reorder tolerance; the serial distance
// tier must agree with util::squared_distance bit-for-bit (it backs the
// pinned goldens in test_update_pipeline).

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "tensor/kernels/kernel_arch.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fedguard {
namespace {

namespace kernels = tensor::kernels;
using kernels::KernelArch;

// Every test must leave the process-wide dispatch override cleared, or later
// tests in the same binary would silently inherit a pinned tier.
struct KernelArchTest : ::testing::Test {
  void TearDown() override { kernels::set_kernel_arch(KernelArch::Auto); }
};

std::vector<float> random_values(std::size_t n, util::Rng& rng) {
  std::vector<float> values(n);
  for (auto& v : values) v = rng.uniform_float(-1.0f, 1.0f);
  return values;
}

std::vector<KernelArch> available_simd_tiers() {
  std::vector<KernelArch> tiers;
  for (const KernelArch arch : {KernelArch::Avx2, KernelArch::Avx512}) {
    if (kernels::kernel_arch_available(arch)) tiers.push_back(arch);
  }
  return tiers;
}

TEST_F(KernelArchTest, ParseAndToStringRoundTrip) {
  for (const KernelArch arch :
       {KernelArch::Auto, KernelArch::Serial, KernelArch::Avx2, KernelArch::Avx512}) {
    KernelArch parsed = KernelArch::Auto;
    ASSERT_TRUE(kernels::parse_kernel_arch(kernels::to_string(arch), parsed));
    EXPECT_EQ(parsed, arch);
  }
  KernelArch out = KernelArch::Serial;
  EXPECT_FALSE(kernels::parse_kernel_arch("sse9", out));
  EXPECT_EQ(out, KernelArch::Serial);
}

TEST_F(KernelArchTest, SerialAndAutoAlwaysAvailable) {
  EXPECT_TRUE(kernels::kernel_arch_available(KernelArch::Auto));
  EXPECT_TRUE(kernels::kernel_arch_available(KernelArch::Serial));
}

TEST_F(KernelArchTest, ExplicitOverrideWinsAndAutoClearsIt) {
  kernels::set_kernel_arch(KernelArch::Serial);
  EXPECT_EQ(kernels::requested_kernel_arch(), KernelArch::Serial);
  EXPECT_EQ(kernels::active_kernel_arch(), KernelArch::Serial);
  EXPECT_EQ(kernels::kernel_table().arch, KernelArch::Serial);

  kernels::set_kernel_arch(KernelArch::Auto);
  // Auto resolves (via env var or CPU detection) to a concrete, available tier.
  const KernelArch active = kernels::active_kernel_arch();
  EXPECT_NE(active, KernelArch::Auto);
  EXPECT_TRUE(kernels::kernel_arch_available(active));
}

TEST_F(KernelArchTest, UnavailableRequestDegradesDownTheChain) {
  // Requesting a tier is always legal; the active arch must end up available
  // even when the request itself is not supported on this CPU.
  for (const KernelArch arch : {KernelArch::Avx512, KernelArch::Avx2}) {
    kernels::set_kernel_arch(arch);
    const KernelArch active = kernels::active_kernel_arch();
    EXPECT_NE(active, KernelArch::Auto);
    EXPECT_TRUE(kernels::kernel_arch_available(active));
    if (kernels::kernel_arch_available(arch)) {
      EXPECT_EQ(active, arch);
    }
  }
}

TEST_F(KernelArchTest, SerialDistanceKernelBitMatchesUtil) {
  // The pinned pipeline goldens assume the serial tier reproduces the exact
  // pre-dispatch arithmetic (compiled with FP contraction off).
  kernels::set_kernel_arch(KernelArch::Serial);
  const kernels::KernelTable& table = kernels::kernel_table();
  ASSERT_EQ(table.arch, KernelArch::Serial);
  util::Rng rng{0xa17ull};
  for (const std::size_t n : {1u, 7u, 63u, 64u, 65u, 1003u}) {
    const std::vector<float> a = random_values(n, rng);
    const std::vector<float> b = random_values(n, rng);
    EXPECT_EQ(table.squared_distance(a.data(), b.data(), n),
              util::squared_distance(a, b))
        << "n=" << n;
  }
}

TEST_F(KernelArchTest, SimdDistanceKernelsMatchSerialWithinTolerance) {
  util::Rng rng{0xa18ull};
  const std::size_t sizes[] = {1, 5, 16, 17, 31, 257, 1003, 4099};
  for (const KernelArch arch : available_simd_tiers()) {
    kernels::set_kernel_arch(arch);
    const kernels::KernelTable table = kernels::kernel_table();
    ASSERT_EQ(table.arch, arch);
    kernels::set_kernel_arch(KernelArch::Serial);
    const kernels::KernelTable serial = kernels::kernel_table();
    for (const std::size_t n : sizes) {
      const std::vector<float> a = random_values(n, rng);
      const std::vector<float> b = random_values(n, rng);
      const double expect = serial.squared_distance(a.data(), b.data(), n);
      const double got = table.squared_distance(a.data(), b.data(), n);
      EXPECT_NEAR(got, expect, 1e-10 * static_cast<double>(n) + 1e-12)
          << kernels::to_string(arch) << " n=" << n;

      std::vector<double> center(n);
      for (auto& c : center) c = rng.uniform(-1.0, 1.0);
      const double expect_wide =
          serial.squared_distance_wide(a.data(), center.data(), n);
      const double got_wide = table.squared_distance_wide(a.data(), center.data(), n);
      EXPECT_NEAR(got_wide, expect_wide, 1e-10 * static_cast<double>(n) + 1e-12)
          << kernels::to_string(arch) << " wide n=" << n;
    }
  }
}

TEST_F(KernelArchTest, SimdGemmMatchesSerialOnOddShapes) {
  util::Rng rng{0xa19ull};
  struct Shape {
    std::size_t m, k, n;
  };
  // Deliberately awkward: prime edges, single rows/columns, and sizes around
  // the micro-kernel tile boundaries (mr=4/nr=16 scalar; 8/16-lane SIMD).
  const Shape shapes[] = {{1, 1, 1}, {7, 13, 17}, {4, 16, 16}, {5, 256, 3},
                          {67, 129, 65}, {33, 31, 130}};
  const std::vector<KernelArch> tiers = available_simd_tiers();
  if (tiers.empty()) GTEST_SKIP() << "no SIMD tier compiled in / supported";
  for (const Shape& shape : shapes) {
    const std::vector<float> a = random_values(shape.m * shape.k, rng);
    const std::vector<float> b = random_values(shape.k * shape.n, rng);
    std::vector<float> serial_c(shape.m * shape.n);
    kernels::set_kernel_arch(KernelArch::Serial);
    tensor::matmul(a.data(), b.data(), serial_c.data(), shape.m, shape.k, shape.n);
    for (const KernelArch arch : tiers) {
      kernels::set_kernel_arch(arch);
      std::vector<float> simd_c(shape.m * shape.n);
      tensor::matmul(a.data(), b.data(), simd_c.data(), shape.m, shape.k, shape.n);
      for (std::size_t i = 0; i < simd_c.size(); ++i) {
        const float tolerance =
            1e-5f * (std::abs(serial_c[i]) + static_cast<float>(shape.k) * 1e-3f);
        EXPECT_NEAR(simd_c[i], serial_c[i], tolerance)
            << kernels::to_string(arch) << " shape " << shape.m << "x" << shape.k << "x"
            << shape.n << " element " << i;
      }
    }
  }
}

TEST_F(KernelArchTest, SimdTransposedGemmVariantsMatchSerial) {
  // The trans_b path backs the classifier backward pass; check it against the
  // serial tier too (trans_a/_accumulate share the same row kernel).
  util::Rng rng{0xa1aull};
  const std::size_t m = 19, k = 37, n = 23;
  const std::vector<float> a = random_values(m * k, rng);
  const std::vector<float> bt = random_values(n * k, rng);  // B^T is [n, k]
  std::vector<float> serial_c(m * n);
  kernels::set_kernel_arch(KernelArch::Serial);
  tensor::matmul_trans_b(a.data(), bt.data(), serial_c.data(), m, k, n);
  for (const KernelArch arch : available_simd_tiers()) {
    kernels::set_kernel_arch(arch);
    std::vector<float> simd_c(m * n);
    tensor::matmul_trans_b(a.data(), bt.data(), simd_c.data(), m, k, n);
    for (std::size_t i = 0; i < simd_c.size(); ++i) {
      EXPECT_NEAR(simd_c[i], serial_c[i], 1e-4f) << kernels::to_string(arch) << " " << i;
    }
  }
}

}  // namespace
}  // namespace fedguard
