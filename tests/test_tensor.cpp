#include "tensor/tensor.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "tensor/init.hpp"

namespace fedguard::tensor {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.rank(), 0u);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
}

TEST(Tensor, ShapeConstructionAndFill) {
  Tensor t{{2, 3}, 1.5f};
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_EQ(t.size(), 6u);
  for (const float v : t.data()) EXPECT_FLOAT_EQ(v, 1.5f);
}

TEST(Tensor, FromDataValidatesSize) {
  EXPECT_NO_THROW((void)Tensor::from_data({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW((void)Tensor::from_data({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, TwoDimensionalAccess) {
  Tensor t = Tensor::from_data({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_FLOAT_EQ(t.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(t.at(0, 2), 2.0f);
  EXPECT_FLOAT_EQ(t.at(1, 0), 3.0f);
  t.at(1, 2) = 42.0f;
  EXPECT_FLOAT_EQ(t[5], 42.0f);
}

TEST(Tensor, FourDimensionalAccessRowMajor) {
  Tensor t{{2, 3, 4, 5}};
  t.at(1, 2, 3, 4) = 9.0f;
  // Flat index = ((1*3+2)*4+3)*5+4 = 119
  EXPECT_FLOAT_EQ(t[119], 9.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::from_data({2, 3}, {0, 1, 2, 3, 4, 5});
  t.reshape({3, 2});
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_FLOAT_EQ(t.at(2, 1), 5.0f);
  EXPECT_THROW(t.reshape({4, 2}), std::invalid_argument);
}

TEST(Tensor, ReshapedCopyLeavesOriginal) {
  Tensor t{{2, 2}, 1.0f};
  const Tensor r = t.reshaped({4});
  EXPECT_EQ(r.rank(), 1u);
  EXPECT_EQ(t.rank(), 2u);
}

TEST(Tensor, RowSpans) {
  Tensor t = Tensor::from_data({2, 3}, {0, 1, 2, 3, 4, 5});
  const auto row1 = t.row(1);
  ASSERT_EQ(row1.size(), 3u);
  EXPECT_FLOAT_EQ(row1[0], 3.0f);
  t.row(0)[1] = -1.0f;
  EXPECT_FLOAT_EQ(t.at(0, 1), -1.0f);
}

TEST(Tensor, FillAndZero) {
  Tensor t({3}, 7.0f);
  t.zero();
  for (const float v : t.data()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Tensor, ShapeString) {
  Tensor t{{2, 3, 4}};
  EXPECT_EQ(t.shape_string(), "[2, 3, 4]");
}

TEST(Tensor, SameShape) {
  Tensor a{{2, 3}};
  Tensor b{{2, 3}};
  Tensor c{{3, 2}};
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
}

TEST(TensorInit, UniformWithinBounds) {
  Tensor t{{1000}};
  util::Rng rng{5};
  init_uniform(t, rng, -0.25f, 0.25f);
  for (const float v : t.data()) {
    EXPECT_GE(v, -0.25f);
    EXPECT_LT(v, 0.25f);
  }
}

TEST(TensorInit, KaimingBound) {
  Tensor t{{1000}};
  util::Rng rng{6};
  init_kaiming_uniform(t, rng, 600);
  const float bound = std::sqrt(6.0f / 600.0f);
  for (const float v : t.data()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
}

TEST(TensorInit, NormalMoments) {
  Tensor t{{20000}};
  util::Rng rng{7};
  init_normal(t, rng, 1.0f, 2.0f);
  double sum = 0.0;
  for (const float v : t.data()) sum += v;
  EXPECT_NEAR(sum / static_cast<double>(t.size()), 1.0, 0.06);
}

}  // namespace
}  // namespace fedguard::tensor
