// Breakdown-point property sweeps: every robust aggregator is run against a
// crafted update set with a varying fraction of colluding outliers, checking
// that it resists below its theoretical breakdown point and (for the
// classical operators) breaks above it. This is the statistical core of the
// paper's §V-A discussion — "distance-based defenses are unable to defend in
// situations involving a majority of malicious peers".

#include <gtest/gtest.h>

#include <cmath>

#include "defenses/bulyan.hpp"
#include "defenses/fedavg.hpp"
#include "defenses/geomed.hpp"
#include "defenses/krum.hpp"
#include "defenses/median.hpp"
#include "defenses/trimmed_mean.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fedguard::defenses {
namespace {

constexpr std::size_t kCohort = 20;
constexpr std::size_t kDim = 16;
constexpr float kOutlierValue = 50.0f;

/// Cohort of kCohort updates: benign near 1.0 (small jitter), the first
/// `malicious` replaced by colluding outliers at kOutlierValue.
std::vector<ClientUpdate> make_cohort(std::size_t malicious, std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<ClientUpdate> updates(kCohort);
  for (std::size_t k = 0; k < kCohort; ++k) {
    updates[k].client_id = static_cast<int>(k);
    updates[k].num_samples = 100;
    updates[k].truly_malicious = k < malicious;
    updates[k].psi.resize(kDim);
    for (auto& v : updates[k].psi) {
      v = updates[k].truly_malicious ? kOutlierValue
                                     : 1.0f + rng.uniform_float(-0.05f, 0.05f);
    }
  }
  return updates;
}

/// Distance of the aggregate from the benign consensus at 1.0.
double aggregate_error(AggregationStrategy& strategy, std::size_t malicious,
                       std::uint64_t seed) {
  const auto updates = make_cohort(malicious, seed);
  const std::vector<float> global(kDim, 0.0f);
  AggregationContext context;
  context.global_parameters = global;
  const auto result = strategy.aggregate(context, updates);
  std::vector<float> benign(kDim, 1.0f);
  return util::l2_distance(result.parameters, benign) / std::sqrt(double(kDim));
}

class BreakdownSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BreakdownSweep, GeoMedResistsMinorityBreaksOnMajority) {
  const std::size_t malicious = GetParam();
  GeoMedAggregator geomed;
  const double error = aggregate_error(geomed, malicious, 42 + malicious);
  if (malicious < kCohort / 2) {
    EXPECT_LT(error, 1.0) << malicious << " outliers of " << kCohort;
  } else if (malicious > kCohort / 2) {
    // Majority of colluding identical outliers: GeoMed converges to them.
    EXPECT_GT(error, 10.0) << malicious << " outliers of " << kCohort;
  }
}

TEST_P(BreakdownSweep, CoordinateMedianSameBreakdown) {
  const std::size_t malicious = GetParam();
  CoordinateMedianAggregator median;
  const double error = aggregate_error(median, malicious, 43 + malicious);
  if (malicious < kCohort / 2) {
    EXPECT_LT(error, 1.0);
  } else if (malicious > kCohort / 2) {
    EXPECT_GT(error, 10.0);
  }
}

TEST_P(BreakdownSweep, FedAvgBreaksImmediately) {
  const std::size_t malicious = GetParam();
  if (malicious == 0) GTEST_SKIP();
  FedAvgAggregator fedavg;
  // Even a single gross outlier shifts the mean by (50-1)/20 ≈ 2.45.
  EXPECT_GT(aggregate_error(fedavg, malicious, 44 + malicious), 2.0);
}

TEST_P(BreakdownSweep, TrimmedMeanResistsUpToTrimFraction) {
  const std::size_t malicious = GetParam();
  TrimmedMeanAggregator trimmed{0.3};
  const double error = aggregate_error(trimmed, malicious, 45 + malicious);
  if (malicious <= 5) {  // 30% of 20 = 6 trimmed per side
    EXPECT_LT(error, 1.0) << malicious;
  }
}

TEST_P(BreakdownSweep, KrumResistsBelowItsAssumption) {
  const std::size_t malicious = GetParam();
  KrumAggregator krum{0.45, 1};
  const double error = aggregate_error(krum, malicious, 46 + malicious);
  if (malicious <= 8) {  // below the configured 45% assumption
    EXPECT_LT(error, 1.0) << malicious;
  }
}

TEST_P(BreakdownSweep, BulyanResistsBelowQuarter) {
  const std::size_t malicious = GetParam();
  BulyanAggregator bulyan{0.25};
  const double error = aggregate_error(bulyan, malicious, 47 + malicious);
  if (malicious <= kCohort / 4) {
    EXPECT_LT(error, 1.0) << malicious;
  }
}

INSTANTIATE_TEST_SUITE_P(MaliciousCounts, BreakdownSweep,
                         ::testing::Values(0u, 2u, 4u, 5u, 8u, 12u, 14u));

// The paper's headline property at the operator level: with EXACTLY 50%
// colluding attackers forming a cluster as tight as the benign one, every
// purely geometric operator is at the mercy of tie-breaking, while an
// accuracy-auditing filter (FedGuard; tested in test_fedguard_agg at the
// system level) still separates them.
TEST(BreakdownEdge, FiftyPercentIsGeometricallyAmbiguous) {
  GeoMedAggregator geomed;
  const auto updates = make_cohort(kCohort / 2, 99);
  const std::vector<float> global(kDim, 0.0f);
  AggregationContext context;
  context.global_parameters = global;
  const auto result = geomed.aggregate(context, updates);
  // The aggregate lands between the clusters — far from BOTH the benign
  // consensus and zero; the defense has no information to pick a side.
  const double to_benign =
      util::l2_distance(result.parameters, std::vector<float>(kDim, 1.0f));
  const double to_outliers =
      util::l2_distance(result.parameters, std::vector<float>(kDim, kOutlierValue));
  EXPECT_GT(to_benign + to_outliers,
            util::l2_distance(std::vector<float>(kDim, 1.0f),
                              std::vector<float>(kDim, kOutlierValue)) -
                1e-3);
}

}  // namespace
}  // namespace fedguard::defenses
