// Breakdown-point property sweeps: every robust aggregator is run against a
// crafted update set with a varying fraction of colluding outliers, checking
// that it resists below its theoretical breakdown point and (for the
// classical operators) breaks above it. This is the statistical core of the
// paper's §V-A discussion — "distance-based defenses are unable to defend in
// situations involving a majority of malicious peers".

#include <gtest/gtest.h>

#include <cmath>

#include "defenses/bulyan.hpp"
#include "defenses/fedavg.hpp"
#include "defenses/fedcpa.hpp"
#include "defenses/geomed.hpp"
#include "defenses/krum.hpp"
#include "defenses/median.hpp"
#include "defenses/trimmed_mean.hpp"
#include "scenario/matrix.hpp"
#include "scenario/runner.hpp"
#include "tensor/kernels/kernel_arch.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fedguard::defenses {
namespace {

constexpr std::size_t kCohort = 20;
constexpr std::size_t kDim = 16;
constexpr float kOutlierValue = 50.0f;

/// Cohort of kCohort updates: benign near 1.0 (small jitter), the first
/// `malicious` replaced by colluding outliers at kOutlierValue.
std::vector<ClientUpdate> make_cohort(std::size_t malicious, std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<ClientUpdate> updates(kCohort);
  for (std::size_t k = 0; k < kCohort; ++k) {
    updates[k].client_id = static_cast<int>(k);
    updates[k].num_samples = 100;
    updates[k].truly_malicious = k < malicious;
    updates[k].psi.resize(kDim);
    for (auto& v : updates[k].psi) {
      v = updates[k].truly_malicious ? kOutlierValue
                                     : 1.0f + rng.uniform_float(-0.05f, 0.05f);
    }
  }
  return updates;
}

/// Distance of the aggregate from the benign consensus at 1.0.
double aggregate_error(AggregationStrategy& strategy, std::size_t malicious,
                       std::uint64_t seed) {
  const auto updates = make_cohort(malicious, seed);
  const std::vector<float> global(kDim, 0.0f);
  AggregationContext context;
  context.global_parameters = global;
  const auto result = strategy.aggregate(context, updates);
  std::vector<float> benign(kDim, 1.0f);
  return util::l2_distance(result.parameters, benign) / std::sqrt(double(kDim));
}

class BreakdownSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BreakdownSweep, GeoMedResistsMinorityBreaksOnMajority) {
  const std::size_t malicious = GetParam();
  GeoMedAggregator geomed;
  const double error = aggregate_error(geomed, malicious, 42 + malicious);
  if (malicious < kCohort / 2) {
    EXPECT_LT(error, 1.0) << malicious << " outliers of " << kCohort;
  } else if (malicious > kCohort / 2) {
    // Majority of colluding identical outliers: GeoMed converges to them.
    EXPECT_GT(error, 10.0) << malicious << " outliers of " << kCohort;
  }
}

TEST_P(BreakdownSweep, CoordinateMedianSameBreakdown) {
  const std::size_t malicious = GetParam();
  CoordinateMedianAggregator median;
  const double error = aggregate_error(median, malicious, 43 + malicious);
  if (malicious < kCohort / 2) {
    EXPECT_LT(error, 1.0);
  } else if (malicious > kCohort / 2) {
    EXPECT_GT(error, 10.0);
  }
}

TEST_P(BreakdownSweep, FedAvgBreaksImmediately) {
  const std::size_t malicious = GetParam();
  if (malicious == 0) GTEST_SKIP();
  FedAvgAggregator fedavg;
  // Even a single gross outlier shifts the mean by (50-1)/20 ≈ 2.45.
  EXPECT_GT(aggregate_error(fedavg, malicious, 44 + malicious), 2.0);
}

TEST_P(BreakdownSweep, TrimmedMeanResistsUpToTrimFraction) {
  const std::size_t malicious = GetParam();
  TrimmedMeanAggregator trimmed{0.3};
  const double error = aggregate_error(trimmed, malicious, 45 + malicious);
  if (malicious <= 5) {  // 30% of 20 = 6 trimmed per side
    EXPECT_LT(error, 1.0) << malicious;
  }
}

TEST_P(BreakdownSweep, KrumResistsBelowItsAssumption) {
  const std::size_t malicious = GetParam();
  KrumAggregator krum{0.45, 1};
  const double error = aggregate_error(krum, malicious, 46 + malicious);
  if (malicious <= 8) {  // below the configured 45% assumption
    EXPECT_LT(error, 1.0) << malicious;
  }
}

TEST_P(BreakdownSweep, BulyanResistsBelowQuarter) {
  const std::size_t malicious = GetParam();
  BulyanAggregator bulyan{0.25};
  const double error = aggregate_error(bulyan, malicious, 47 + malicious);
  if (malicious <= kCohort / 4) {
    EXPECT_LT(error, 1.0) << malicious;
  }
}

INSTANTIATE_TEST_SUITE_P(MaliciousCounts, BreakdownSweep,
                         ::testing::Values(0u, 2u, 4u, 5u, 8u, 12u, 14u));

// The paper's headline property at the operator level: with EXACTLY 50%
// colluding attackers forming a cluster as tight as the benign one, every
// purely geometric operator is at the mercy of tie-breaking, while an
// accuracy-auditing filter (FedGuard; tested in test_fedguard_agg at the
// system level) still separates them.
TEST(BreakdownEdge, FiftyPercentIsGeometricallyAmbiguous) {
  GeoMedAggregator geomed;
  const auto updates = make_cohort(kCohort / 2, 99);
  const std::vector<float> global(kDim, 0.0f);
  AggregationContext context;
  context.global_parameters = global;
  const auto result = geomed.aggregate(context, updates);
  // The aggregate lands between the clusters — far from BOTH the benign
  // consensus and zero; the defense has no information to pick a side.
  const double to_benign =
      util::l2_distance(result.parameters, std::vector<float>(kDim, 1.0f));
  const double to_outliers =
      util::l2_distance(result.parameters, std::vector<float>(kDim, kOutlierValue));
  EXPECT_GT(to_benign + to_outliers,
            util::l2_distance(std::vector<float>(kDim, 1.0f),
                              std::vector<float>(kDim, kOutlierValue)) -
                1e-3);
}

// ---- Adaptive attacks: operator-level geometry ------------------------------

/// Covert cohort (arXiv 2101.11799 geometry): benign delta_k ~ N(1, 0.3) per
/// coordinate; each attacker submits the exact mirror −delta_k of its own
/// honest delta, so per-update norms are indistinguishable from benign.
std::vector<ClientUpdate> make_covert_cohort(std::size_t malicious, std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<ClientUpdate> updates(kCohort);
  for (std::size_t k = 0; k < kCohort; ++k) {
    updates[k].client_id = static_cast<int>(k);
    updates[k].num_samples = 100;
    updates[k].truly_malicious = k < malicious;
    updates[k].psi.resize(kDim);
    for (auto& v : updates[k].psi) {
      v = 1.0f + rng.uniform_float(-0.3f, 0.3f);
      if (updates[k].truly_malicious) v = -v;
    }
  }
  return updates;
}

TEST(CovertBreakdown, FedAvgDegradesLinearlyInAttackerFraction) {
  FedAvgAggregator fedavg;
  double previous = 0.0;
  for (const std::size_t malicious : {0u, 4u, 8u}) {
    const auto updates = make_covert_cohort(malicious, 100 + malicious);
    AggregationContext context;
    const std::vector<float> global(kDim, 0.0f);
    context.global_parameters = global;
    const auto result = fedavg.aggregate(context, updates);
    const double error = util::l2_distance(result.parameters,
                                           std::vector<float>(kDim, 1.0f)) /
                         std::sqrt(double(kDim));
    // Mean over the mirrored cohort is (1 − 2p)·benign: error ≈ 2p.
    EXPECT_NEAR(error, 2.0 * static_cast<double>(malicious) / kCohort, 0.15);
    EXPECT_GE(error, previous - 0.05);
    previous = error;
  }
}

TEST(CovertBreakdown, KrumAndFedCpaHoldBelowParity) {
  KrumAggregator krum{0.45, 1};
  // At kDim = 16 the default 5% critical fraction clamps to a single
  // coordinate and every similarity degenerates to 0; half the coordinates
  // is the regime the defense actually operates in on real models.
  FedCpaAggregator fedcpa{FedCpaConfig{0.5, 0.5}};
  for (const std::size_t malicious : {2u, 4u, 6u, 8u}) {
    const auto updates = make_covert_cohort(malicious, 200 + malicious);
    AggregationContext context;
    const std::vector<float> global(kDim, 0.0f);
    context.global_parameters = global;
    for (AggregationStrategy* strategy :
         std::initializer_list<AggregationStrategy*>{&krum, &fedcpa}) {
      const auto result = strategy->aggregate(context, updates);
      const double error = util::l2_distance(result.parameters,
                                             std::vector<float>(kDim, 1.0f)) /
                           std::sqrt(double(kDim));
      EXPECT_LT(error, 1.0) << strategy->name() << " with " << malicious
                            << " covert attackers of " << kCohort;
    }
  }
}

TEST(CovertBreakdown, FedCpaEjectsTheMirroredClique) {
  FedCpaAggregator fedcpa{FedCpaConfig{0.5, 0.5}};
  const auto updates = make_covert_cohort(6, 321);
  AggregationContext context;
  const std::vector<float> global(kDim, 0.0f);
  context.global_parameters = global;
  const auto result = fedcpa.aggregate(context, updates);
  const auto stats = compute_detection_stats(updates, result);
  // keep_fraction 0.5 rejects 10 of 20: all 6 mirrored attackers must be in
  // the rejected half (their consensus-gated similarity clamps to zero).
  EXPECT_EQ(stats.false_negatives, 0u);
  EXPECT_EQ(stats.true_positives, 6u);
}

/// Krum-evading cohort: benign updates scatter widely around the consensus at
/// 1.0; colluders place themselves in an ε-tight cluster just off the global
/// model (0.0), closer to each other than any benign pair is.
std::vector<ClientUpdate> make_krum_evade_cohort(std::size_t malicious,
                                                 std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<ClientUpdate> updates(kCohort);
  for (std::size_t k = 0; k < kCohort; ++k) {
    updates[k].client_id = static_cast<int>(k);
    updates[k].num_samples = 100;
    updates[k].truly_malicious = k < malicious;
    updates[k].psi.resize(kDim);
    for (auto& v : updates[k].psi) {
      v = updates[k].truly_malicious ? 0.05f + rng.uniform_float(-1e-4f, 1e-4f)
                                     : 1.0f + rng.uniform_float(-0.8f, 0.8f);
    }
  }
  return updates;
}

TEST(KrumEvadeBreakdown, TightColluderClusterDefeatsKrum) {
  KrumAggregator krum{0.45, 1};
  // Krum sums SQUARED distances over the n−f−2 nearest neighbours, so the
  // clique's free intra-cluster zeros only dominate once few cross-cluster
  // terms remain: at this geometry the crossover is m = 8 of 20 — exactly
  // the sweep's 40% adversary fraction. Below it Krum survives (and the
  // m ≤ 6 cases pass through KrumAndFedCpaHoldBelowParity's machinery).
  for (const std::size_t malicious : {8u, 10u}) {
    const double error = [&] {
      const auto updates = make_krum_evade_cohort(malicious, 400 + malicious);
      AggregationContext context;
      const std::vector<float> global(kDim, 0.0f);
      context.global_parameters = global;
      const auto result = krum.aggregate(context, updates);
      return util::l2_distance(result.parameters, std::vector<float>(kDim, 1.0f)) /
             std::sqrt(double(kDim));
    }();
    EXPECT_GT(error, 0.9) << malicious << " colluders of " << kCohort;
  }
}

TEST(KrumEvadeBreakdown, CoordinateMedianHolds) {
  CoordinateMedianAggregator median;
  const auto updates = make_krum_evade_cohort(6, 500);
  AggregationContext context;
  const std::vector<float> global(kDim, 0.0f);
  context.global_parameters = global;
  const auto result = median.aggregate(context, updates);
  const double error = util::l2_distance(result.parameters,
                                         std::vector<float>(kDim, 1.0f)) /
                       std::sqrt(double(kDim));
  EXPECT_LT(error, 0.5);
}

// ---- Adaptive attacks: federation-level breakdown ---------------------------
//
// Short seeded federations through the scenario harness; attacker-ejection
// precision/recall comes from the fl_* obs-registry counters (the same path
// the BENCH_robustness.json leaderboard reports).

scenario::SweepMatrix federation_matrix() {
  scenario::SweepMatrix matrix = scenario::smoke_matrix(/*seed=*/42);
  // Serial kernels: identical trajectories on every host, so the accuracy
  // and precision/recall floors below hold everywhere.
  matrix.base.kernel_arch = tensor::kernels::KernelArch::Serial;
  return matrix;
}

scenario::CellResult run_federation_cell(attacks::AttackType attack,
                                         core::StrategyKind defense,
                                         double fraction) {
  const scenario::SweepMatrix matrix = federation_matrix();
  scenario::Cell cell;
  cell.attack = attack;
  cell.defense = defense;
  cell.regime = scenario::DataRegime{data::PartitionScheme::Iid, 10.0};
  cell.malicious_fraction = fraction;
  util::set_log_level(util::LogLevel::Warn);
  const scenario::CellResult result = scenario::run_cell(matrix, cell);
  util::set_log_level(util::LogLevel::Info);
  return result;
}

TEST(AdaptiveFederationBreakdown, CovertDegradesFedAvgButNotTheRobustTrio) {
  const auto fedavg =
      run_federation_cell(attacks::AttackType::Covert, core::StrategyKind::FedAvg, 0.4);
  const auto krum =
      run_federation_cell(attacks::AttackType::Covert, core::StrategyKind::Krum, 0.4);
  const auto fedcpa =
      run_federation_cell(attacks::AttackType::Covert, core::StrategyKind::FedCPA, 0.4);
  const auto fedguard =
      run_federation_cell(attacks::AttackType::Covert, core::StrategyKind::FedGuard, 0.4);

  // Averaging has no defense against the mirrored gradient-ascent updates:
  // the effective step shrinks to (1 − 2p) of honest progress.
  EXPECT_LT(fedavg.final_accuracy, 0.55);
  EXPECT_GT(krum.final_accuracy, fedavg.final_accuracy + 0.10);
  EXPECT_GT(fedcpa.final_accuracy, fedavg.final_accuracy + 0.25);
  EXPECT_GT(fedguard.final_accuracy, fedavg.final_accuracy + 0.25);

  // Ejection quality pinned from the obs counters: FedAvg never rejects
  // (recall 0 with sampled attackers), the filtering defenses actually catch
  // the mirrored updates.
  EXPECT_GT(fedavg.sampled_malicious, 0u);
  EXPECT_EQ(fedavg.rejected_malicious, 0u);
  EXPECT_EQ(fedavg.rejected_benign, 0u);
  EXPECT_DOUBLE_EQ(fedavg.ejection_recall, 0.0);
  EXPECT_GT(fedguard.ejection_precision, 0.8);
  EXPECT_GT(fedguard.ejection_recall, 0.85);
  EXPECT_GT(fedcpa.ejection_recall, 0.6);
}

TEST(AdaptiveFederationBreakdown, KrumEvadeDefeatsKrumButNotFedGuard) {
  const auto krum = run_federation_cell(attacks::AttackType::KrumEvade,
                                        core::StrategyKind::Krum, 0.4);
  const auto krum_baseline =
      run_federation_cell(attacks::AttackType::None, core::StrategyKind::Krum, 0.0);
  const auto fedguard = run_federation_cell(attacks::AttackType::KrumEvade,
                                            core::StrategyKind::FedGuard, 0.4);

  // The ε-tight colluding cluster wins the neighbour-sum score whenever
  // enough colluders are sampled; Krum then re-publishes a near-stale model.
  EXPECT_LT(krum.final_accuracy, krum_baseline.final_accuracy - 0.15);
  // FedGuard holds accuracy. Note it does NOT need high ejection recall
  // here: the evading updates sit ε from the current global, so the ones it
  // accepts merely dilute the round mean instead of poisoning it — the
  // attack is harmless against any defense it cannot steer.
  EXPECT_GT(fedguard.final_accuracy, krum.final_accuracy + 0.15);
}

}  // namespace
}  // namespace fedguard::defenses
