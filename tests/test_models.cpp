#include "models/classifier.hpp"

#include <gtest/gtest.h>

#include "data/synthetic_mnist.hpp"
#include "models/common.hpp"
#include "models/cvae.hpp"

namespace fedguard::models {
namespace {

TEST(PaperCnn, WeightCountMatchesTableII) {
  // Table II reports weight-only parameter counts: conv1 800, conv2 51,200,
  // fc1 1,605,632, fc2 5,120 -> 1,662,752 total.
  Classifier classifier{ClassifierArch::PaperCnn, ImageGeometry{}, 1};
  EXPECT_EQ(classifier.network().weight_parameter_count(), 1662752u);
}

TEST(PaperCnn, ForwardShape) {
  Classifier classifier{ClassifierArch::PaperCnn, ImageGeometry{}, 2};
  const tensor::Tensor images{{2, 1, 28, 28}, 0.5f};
  const tensor::Tensor logits = classifier.forward(images);
  EXPECT_EQ(logits.shape(), (std::vector<std::size_t>{2, 10}));
}

TEST(CvaeTableIII, ParameterCountMatches) {
  // Table III: encoder 318,000 + 8,020 + 8,020; decoder 12,400 + 318,394;
  // total 664,834 (biases included).
  Cvae cvae{CvaeSpec{}, 3};
  EXPECT_EQ(cvae.parameter_count(), 664834u);
  // Decoder alone: 12,400 + 318,394.
  EXPECT_EQ(cvae.decoder().parameter_count(), 330794u);
}

TEST(CvaeTableIII, SizesInMegabytesMatchTable) {
  Cvae cvae{CvaeSpec{}, 4};
  const double decoder_mb =
      static_cast<double>(cvae.decoder().parameter_count()) * 4.0 / 1e6;
  EXPECT_NEAR(decoder_mb, 1.32, 0.02);  // Table III: decoder 1.32 MB
  const double total_mb = static_cast<double>(cvae.parameter_count()) * 4.0 / 1e6;
  EXPECT_NEAR(total_mb, 2.66, 0.02);  // Table III: total 2.66 MB
}

TEST(Classifier, ArchStringRoundTrip) {
  for (const auto arch :
       {ClassifierArch::PaperCnn, ClassifierArch::TinyCnn, ClassifierArch::Mlp}) {
    EXPECT_EQ(classifier_arch_from_string(to_string(arch)), arch);
  }
  EXPECT_THROW((void)classifier_arch_from_string("bogus"), std::invalid_argument);
}

TEST(Classifier, TinyCnnAndMlpForwardShapes) {
  const ImageGeometry g{1, 28, 28, 10};
  for (const auto arch : {ClassifierArch::TinyCnn, ClassifierArch::Mlp}) {
    Classifier classifier{arch, g, 5};
    const tensor::Tensor images{{3, 1, 28, 28}, 0.1f};
    EXPECT_EQ(classifier.forward(images).shape(), (std::vector<std::size_t>{3, 10}));
  }
}

TEST(Classifier, DeterministicInitFromSeed) {
  Classifier a{ClassifierArch::Mlp, ImageGeometry{}, 42};
  Classifier b{ClassifierArch::Mlp, ImageGeometry{}, 42};
  Classifier c{ClassifierArch::Mlp, ImageGeometry{}, 43};
  EXPECT_EQ(a.parameters_flat(), b.parameters_flat());
  EXPECT_NE(a.parameters_flat(), c.parameters_flat());
}

TEST(Classifier, LearnsSyntheticDigits) {
  const data::Dataset train = data::generate_synthetic_mnist(400, 10);
  const data::Dataset test = data::generate_synthetic_mnist(200, 11);
  Classifier classifier{ClassifierArch::Mlp, ImageGeometry{}, 6};

  std::vector<std::size_t> all(train.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const data::Dataset::Batch full = train.gather(all);

  const double before = classifier.evaluate_accuracy(full.images, full.labels);
  for (int epoch = 0; epoch < 20; ++epoch) {
    for (std::size_t start = 0; start + 32 <= train.size(); start += 32) {
      std::vector<std::size_t> idx(32);
      for (std::size_t i = 0; i < 32; ++i) idx[i] = start + i;
      const data::Dataset::Batch batch = train.gather(idx);
      classifier.train_batch(batch.images, batch.labels, 0.05f, 0.9f);
    }
  }
  std::vector<std::size_t> test_idx(test.size());
  for (std::size_t i = 0; i < test_idx.size(); ++i) test_idx[i] = i;
  const data::Dataset::Batch test_batch = test.gather(test_idx);
  const double after = classifier.evaluate_accuracy(test_batch.images, test_batch.labels);
  EXPECT_LE(before, 0.35);
  EXPECT_GE(after, 0.85) << "MLP should learn the synthetic digit task";
}

TEST(Classifier, ParameterRoundTripPreservesOutputs) {
  Classifier a{ClassifierArch::TinyCnn, ImageGeometry{}, 7};
  Classifier b{ClassifierArch::TinyCnn, ImageGeometry{}, 8};
  b.load_parameters_flat(a.parameters_flat());
  const tensor::Tensor images{{2, 1, 28, 28}, 0.3f};
  const tensor::Tensor out_a = a.forward(images);
  const tensor::Tensor out_b = b.forward(images);
  for (std::size_t i = 0; i < out_a.size(); ++i) EXPECT_FLOAT_EQ(out_a[i], out_b[i]);
}

TEST(ModelsCommon, OneHot) {
  const std::vector<int> labels{0, 2};
  const tensor::Tensor encoded = one_hot(labels, 3);
  EXPECT_EQ(encoded.shape(), (std::vector<std::size_t>{2, 3}));
  EXPECT_FLOAT_EQ(encoded.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(encoded.at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(encoded.at(1, 2), 1.0f);
  const std::vector<int> bad{5};
  EXPECT_THROW((void)one_hot(bad, 3), std::invalid_argument);
}

TEST(ModelsCommon, ConcatAndSplitColumns) {
  const tensor::Tensor a = tensor::Tensor::from_data({2, 2}, {1, 2, 3, 4});
  const tensor::Tensor b = tensor::Tensor::from_data({2, 1}, {5, 6});
  const tensor::Tensor joined = concat_columns(a, b);
  EXPECT_EQ(joined.shape(), (std::vector<std::size_t>{2, 3}));
  EXPECT_FLOAT_EQ(joined.at(0, 2), 5.0f);
  EXPECT_FLOAT_EQ(joined.at(1, 0), 3.0f);

  tensor::Tensor left, right;
  split_columns(joined, 2, left, right);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(left[i], a[i]);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_FLOAT_EQ(right[i], b[i]);
}

class GeometrySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GeometrySweep, MlpHandlesVariousImageSizes) {
  const std::size_t size = GetParam();
  const ImageGeometry g{1, size, size, 10};
  Classifier classifier{ClassifierArch::Mlp, g, 9};
  const tensor::Tensor images{{2, 1, size, size}, 0.5f};
  EXPECT_EQ(classifier.forward(images).dim(1), 10u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeometrySweep, ::testing::Values(8u, 14u, 20u, 28u));

}  // namespace
}  // namespace fedguard::models
