// Two-tier aggregation contract tests.
//
// Exact path (FedAvg): shard partials merged at the root must reproduce the
// single-tier weighted mean bit for bit — at shards=1 by construction (the
// fold order equals the batch order), at shards>1 as a pinned golden (only
// the double-precision numerator bracketing differs, which for these fixed
// fixtures never crosses a float rounding boundary).
//
// Metadata path (Krum / FedGuard): the selector runs per cohort, so its
// f-budget and threshold apply per shard and the accept set legitimately
// diverges from the unsharded run. These tests pin that divergence (the
// robustness cost that docs/SHARDING.md quantifies) instead of pretending
// the paths are equivalent.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <thread>
#include <vector>

#include "data/partition.hpp"
#include "data/synthetic_mnist.hpp"
#include "defenses/fedavg.hpp"
#include "defenses/fedguard.hpp"
#include "defenses/krum.hpp"
#include "fl/server.hpp"
#include "net/remote.hpp"
#include "net/shard.hpp"
#include "util/logging.hpp"

namespace fedguard {
namespace {

using defenses::AggregationContext;
using defenses::AggregationResult;
using defenses::ShardPartial;
using defenses::UpdateMatrix;
using defenses::UpdateView;

/// Deterministic, sign-mixed row values (no RNG: the goldens must not depend
/// on library random streams).
void fill_row(std::span<float> psi, std::size_t row) {
  for (std::size_t i = 0; i < psi.size(); ++i) {
    const int k = static_cast<int>((row * 31 + i * 7 + 3) % 23) - 11;
    psi[i] = 0.125f * static_cast<float>(k) + 0.01f * static_cast<float>(row);
  }
}

/// The contiguous owner partition used by both tiers: slot -> floor(slot*S/n).
std::vector<std::vector<std::size_t>> partition_slots(std::size_t count,
                                                      std::size_t shards) {
  std::vector<std::vector<std::size_t>> cohorts(shards);
  for (std::size_t slot = 0; slot < count; ++slot) {
    cohorts[slot * shards / count].push_back(slot);
  }
  return cohorts;
}

/// Run the two-tier path: one partial per cohort, then the root merge.
void two_tier_aggregate(defenses::AggregationStrategy& strategy,
                        const AggregationContext& context, const UpdateMatrix& matrix,
                        std::size_t shards, AggregationResult& out) {
  const auto cohorts = partition_slots(matrix.count(), shards);
  std::vector<ShardPartial> partials(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    if (cohorts[s].empty()) {
      partials[s].clear();
      continue;
    }
    const UpdateView view{matrix, cohorts[s]};
    strategy.partial_aggregate_into(context, view, s, partials[s]);
  }
  strategy.merge_partials_into(context, partials, out);
}

TEST(ShardedFedAvg, PartialMergeBitIdenticalAcrossShardCounts) {
  constexpr std::size_t kClients = 10;
  constexpr std::size_t kDim = 33;
  UpdateMatrix matrix;
  matrix.reset(kClients, kDim);
  for (std::size_t r = 0; r < kClients; ++r) {
    fill_row(matrix.psi(r), r);
    matrix.meta(r).client_id = static_cast<int>(r);
    matrix.meta(r).num_samples = 10 + r % 5;
  }
  std::vector<float> global(kDim, 0.0f);
  AggregationContext context;
  context.global_parameters = global;

  defenses::FedAvgAggregator reference;
  ASSERT_TRUE(reference.supports_exact_merge());
  AggregationResult single;
  reference.aggregate_into(context, UpdateView{matrix}, single);

  for (const std::size_t shards : {1u, 2u, 3u, 5u}) {
    defenses::FedAvgAggregator sharded;
    AggregationResult merged;
    two_tier_aggregate(sharded, context, matrix, shards, merged);
    ASSERT_EQ(merged.parameters.size(), single.parameters.size()) << "shards=" << shards;
    for (std::size_t i = 0; i < single.parameters.size(); ++i) {
      ASSERT_EQ(merged.parameters[i], single.parameters[i])
          << "shards=" << shards << " parameter " << i;
    }
    EXPECT_EQ(merged.accepted_clients.size(), kClients) << "shards=" << shards;
    EXPECT_TRUE(merged.rejected_clients.empty()) << "shards=" << shards;
  }
}

TEST(ShardedFedAvg, ZeroWeightFallbackMergesGlobally) {
  // All-zero sample counts trip the plain-mean fallback; the root must apply
  // it globally (over the merged plain sums), matching the single-tier mean.
  constexpr std::size_t kClients = 7;
  constexpr std::size_t kDim = 12;
  UpdateMatrix matrix;
  matrix.reset(kClients, kDim);
  for (std::size_t r = 0; r < kClients; ++r) {
    fill_row(matrix.psi(r), r);
    matrix.meta(r).client_id = static_cast<int>(r);
    matrix.meta(r).num_samples = 0;
  }
  std::vector<float> global(kDim, 0.0f);
  AggregationContext context;
  context.global_parameters = global;

  defenses::FedAvgAggregator reference;
  AggregationResult single;
  reference.aggregate_into(context, UpdateView{matrix}, single);

  defenses::FedAvgAggregator sharded;
  AggregationResult merged;
  two_tier_aggregate(sharded, context, matrix, 3, merged);
  ASSERT_EQ(merged.parameters.size(), single.parameters.size());
  for (std::size_t i = 0; i < single.parameters.size(); ++i) {
    ASSERT_EQ(merged.parameters[i], single.parameters[i]) << "parameter " << i;
  }
}

TEST(ShardedFedAvg, DeadShardsAreSkippedInMerge) {
  constexpr std::size_t kDim = 6;
  UpdateMatrix matrix;
  matrix.reset(2, kDim);
  for (std::size_t r = 0; r < 2; ++r) {
    fill_row(matrix.psi(r), r);
    matrix.meta(r).client_id = static_cast<int>(r);
    matrix.meta(r).num_samples = 5;
  }
  std::vector<float> global(kDim, 0.0f);
  AggregationContext context;
  context.global_parameters = global;

  defenses::FedAvgAggregator strategy;
  std::vector<ShardPartial> partials(3);  // shard 1 and 2 are dead (cleared)
  strategy.partial_aggregate_into(context, UpdateView{matrix}, 0, partials[0]);
  partials[1].clear();
  partials[2].clear();
  AggregationResult merged;
  strategy.merge_partials_into(context, partials, merged);

  AggregationResult single;
  strategy.aggregate_into(context, UpdateView{matrix}, single);
  ASSERT_EQ(merged.parameters.size(), single.parameters.size());
  for (std::size_t i = 0; i < kDim; ++i) {
    // One live shard: adding its sum to a zero accumulator reproduces the
    // single-tier fold exactly.
    ASSERT_EQ(merged.parameters[i], single.parameters[i]) << "parameter " << i;
  }

  // All shards dead -> nothing mergeable -> typed failure, not a zero model.
  for (auto& partial : partials) partial.clear();
  AggregationResult empty;
  EXPECT_THROW(strategy.merge_partials_into(context, partials, empty),
               std::invalid_argument);
}

TEST(ShardedKrum, AcceptSetDivergesFromUnsharded) {
  // 8 clients, one far outlier per shard-half (slots 2 and 6). Unsharded
  // Krum accepts exactly one (the best-scored) client; per-shard Krum accepts
  // one PER cohort, so the merged accept set has two members — the f-budget
  // now applies per shard, and the selection provably diverges.
  constexpr std::size_t kClients = 8;
  constexpr std::size_t kDim = 8;
  UpdateMatrix matrix;
  matrix.reset(kClients, kDim);
  for (std::size_t r = 0; r < kClients; ++r) {
    auto psi = matrix.psi(r);
    for (std::size_t i = 0; i < kDim; ++i) {
      psi[i] = 0.1f * static_cast<float>(i) + 0.01f * static_cast<float>(r);
    }
    if (r == 2 || r == 6) {
      for (float& v : psi) v += 25.0f;  // poisoned: far off the benign cluster
      matrix.meta(r).truly_malicious = true;
    }
    matrix.meta(r).client_id = static_cast<int>(r);
    matrix.meta(r).num_samples = 10;
  }
  std::vector<float> global(kDim, 0.0f);
  AggregationContext context;
  context.global_parameters = global;

  defenses::KrumAggregator unsharded{0.25, 1};
  ASSERT_FALSE(unsharded.supports_exact_merge());
  AggregationResult single;
  unsharded.aggregate_into(context, UpdateView{matrix}, single);
  ASSERT_EQ(single.accepted_clients.size(), 1u);

  defenses::KrumAggregator sharded{0.25, 1};
  AggregationResult merged;
  two_tier_aggregate(sharded, context, matrix, 2, merged);
  ASSERT_EQ(merged.accepted_clients.size(), 2u);

  // Divergence golden: the sharded accept set is strictly larger, and both
  // paths still reject the planted outliers.
  std::vector<int> single_accept = single.accepted_clients;
  std::vector<int> merged_accept = merged.accepted_clients;
  std::sort(single_accept.begin(), single_accept.end());
  std::sort(merged_accept.begin(), merged_accept.end());
  EXPECT_NE(single_accept, merged_accept);
  for (const int outlier : {2, 6}) {
    EXPECT_TRUE(std::count(single.rejected_clients.begin(), single.rejected_clients.end(),
                           outlier))
        << "unsharded kept outlier " << outlier;
    EXPECT_TRUE(std::count(merged.rejected_clients.begin(), merged.rejected_clients.end(),
                           outlier))
        << "sharded kept outlier " << outlier;
  }
  EXPECT_EQ(merged.parameters.size(), kDim);
}

TEST(ShardedFedGuard, AcceptSetDivergesFromUnsharded) {
  // FedGuard keeps clients scoring >= mean(ACC on D_syn); sharding makes the
  // threshold per-cohort. The fixture plants a mediocre client (slot 6) in
  // the cohort that also holds both poisoned clients: the poisoned scores
  // drag that cohort's mean low enough to accept the mediocre update, while
  // the global mean (dominated by five good clients) rejects it.
  util::set_log_level(util::LogLevel::Warn);
  const models::ImageGeometry geometry{1, 12, 12, 10};
  data::SyntheticMnistOptions data_options;
  data_options.image_size = 12;
  const data::Dataset train = data::generate_synthetic_mnist(240, 901, data_options);

  models::CvaeSpec spec;
  spec.input_dim = 144;
  spec.num_classes = 10;
  spec.hidden = 32;
  spec.latent = 2;
  models::Cvae cvae{spec, 902};
  std::vector<std::size_t> all(train.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const tensor::Tensor flat = train.gather_flat(all);
  const std::vector<int> labels(train.labels().begin(), train.labels().end());
  cvae.train(flat, labels, 20, 16, 3e-3f);
  const std::vector<float> theta = cvae.decoder().parameters_flat();

  models::Classifier good{models::ClassifierArch::Mlp, geometry, 903};
  for (int epoch = 0; epoch < 8; ++epoch) {
    for (std::size_t start = 0; start + 32 <= train.size(); start += 32) {
      std::vector<std::size_t> idx(32);
      std::iota(idx.begin(), idx.end(), start);
      const auto batch = train.gather(idx);
      good.train_batch(batch.images, batch.labels, 0.05f, 0.9f);
    }
  }
  const std::vector<float> good_psi = good.parameters_flat();
  models::Classifier fresh{models::ClassifierArch::Mlp, geometry, 904};
  const std::vector<float> fresh_psi = fresh.parameters_flat();
  std::vector<float> mediocre_psi(good_psi.size());
  for (std::size_t i = 0; i < good_psi.size(); ++i) {
    mediocre_psi[i] = 0.32f * good_psi[i] + 0.68f * fresh_psi[i];
  }
  std::vector<float> poisoned_psi(good_psi.size(), 3.0f);

  // Slots 0..4 good, slot 6 mediocre, slots 5 and 7 poisoned. The contiguous
  // partition puts 5..7 (and one good client) into shard 1.
  constexpr std::size_t kClients = 8;
  UpdateMatrix matrix;
  matrix.reset(kClients, good_psi.size(), theta.size());
  for (std::size_t r = 0; r < kClients; ++r) {
    std::span<const float> source{good_psi};
    if (r == 6) source = mediocre_psi;
    if (r == 5 || r == 7) source = poisoned_psi;
    std::copy(source.begin(), source.end(), matrix.psi(r).begin());
    auto row = matrix.row(r);
    std::copy(theta.begin(), theta.end(), row.theta.begin());
    matrix.meta(r).client_id = static_cast<int>(r);
    matrix.meta(r).num_samples = 30;
    matrix.meta(r).theta_count = theta.size();
    matrix.meta(r).truly_malicious = r == 5 || r == 7;
  }
  std::vector<float> global(good_psi.size(), 0.0f);
  AggregationContext context;
  context.global_parameters = global;

  defenses::FedGuardConfig fg;
  fg.cvae_spec = spec;
  fg.total_samples = 80;
  defenses::FedGuardAggregator unsharded{fg, models::ClassifierArch::Mlp, geometry, 905};
  AggregationResult single;
  unsharded.aggregate_into(context, UpdateView{matrix}, single);

  defenses::FedGuardAggregator sharded{fg, models::ClassifierArch::Mlp, geometry, 905};
  AggregationResult merged;
  two_tier_aggregate(sharded, context, matrix, 2, merged);

  const auto& scores = unsharded.last_scores();
  ASSERT_EQ(scores.size(), kClients);
  std::printf("fedguard scores:");
  for (const double s : scores) std::printf(" %.3f", s);
  std::printf("  threshold %.3f\n", unsharded.last_threshold());

  // Both paths must still reject the hard-poisoned updates...
  for (const int poisoned : {5, 7}) {
    EXPECT_TRUE(std::count(single.rejected_clients.begin(), single.rejected_clients.end(),
                           poisoned))
        << "unsharded kept poisoned " << poisoned;
    EXPECT_TRUE(std::count(merged.rejected_clients.begin(), merged.rejected_clients.end(),
                           poisoned))
        << "sharded kept poisoned " << poisoned;
  }
  // ...but the mediocre client flips: rejected against the global threshold,
  // accepted against its degraded cohort's threshold.
  EXPECT_TRUE(
      std::count(single.rejected_clients.begin(), single.rejected_clients.end(), 6));
  EXPECT_TRUE(
      std::count(merged.accepted_clients.begin(), merged.accepted_clients.end(), 6));
  std::vector<int> single_accept = single.accepted_clients;
  std::vector<int> merged_accept = merged.accepted_clients;
  std::sort(single_accept.begin(), single_accept.end());
  std::sort(merged_accept.begin(), merged_accept.end());
  EXPECT_NE(single_accept, merged_accept);
}

// ---------------------------------------------------------------------------
// Federation-level goldens: the in-process two-tier simulation and the socket
// deployment agree with each other and (for FedAvg) with single-tier.

struct ShardedFederationFixture : ::testing::Test {
  static void SetUpTestSuite() { util::set_log_level(util::LogLevel::Warn); }

  void SetUp() override {
    geometry = models::ImageGeometry{1, 28, 28, 10};
    train = data::generate_synthetic_mnist(320, 911);
    test = data::generate_synthetic_mnist(100, 912);
    partition = data::iid_partition(train.size(), 4, 913);
  }

  std::vector<std::unique_ptr<fl::Client>> make_clients(std::uint64_t seed_base) const {
    fl::ClientConfig config;
    config.local_epochs = 1;
    config.batch_size = 16;
    config.train_cvae = false;
    models::CvaeSpec spec;
    spec.hidden = 32;
    spec.latent = 2;
    std::vector<std::unique_ptr<fl::Client>> clients;
    for (std::size_t i = 0; i < 4; ++i) {
      clients.push_back(std::make_unique<fl::Client>(static_cast<int>(i), train,
                                                     partition[i], config,
                                                     models::ClassifierArch::Mlp, geometry,
                                                     spec, seed_base + i));
    }
    return clients;
  }

  fl::RunHistory run_in_process(std::size_t shards, std::uint64_t seed_base,
                                std::uint64_t seed, std::vector<float>& params_out) {
    auto clients = make_clients(seed_base);
    defenses::FedAvgAggregator strategy;
    fl::ServerConfig config;
    config.clients_per_round = 4;
    config.rounds = 3;
    config.seed = seed;
    config.shards = shards;
    fl::Server server{config, clients, strategy, test, models::ClassifierArch::Mlp,
                      geometry};
    fl::RunHistory history = server.run();
    params_out.assign(server.global_parameters().begin(),
                      server.global_parameters().end());
    return history;
  }

  models::ImageGeometry geometry;
  data::Dataset train;
  data::Dataset test;
  data::Partition partition;
};

TEST_F(ShardedFederationFixture, InProcessTwoTierMatchesSingleTierBitForBit) {
  std::vector<float> single_params;
  std::vector<float> sharded_params;
  const fl::RunHistory single = run_in_process(1, 920, 921, single_params);
  const fl::RunHistory sharded = run_in_process(3, 920, 921, sharded_params);

  ASSERT_EQ(single.rounds.size(), sharded.rounds.size());
  for (std::size_t r = 0; r < single.rounds.size(); ++r) {
    EXPECT_EQ(single.rounds[r].test_accuracy, sharded.rounds[r].test_accuracy)
        << "round " << r;
  }
  ASSERT_EQ(single_params.size(), sharded_params.size());
  for (std::size_t i = 0; i < single_params.size(); ++i) {
    ASSERT_EQ(single_params[i], sharded_params[i]) << "parameter " << i;
  }
}

TEST_F(ShardedFederationFixture, TwoTierSocketMatchesInProcessBitForBit) {
  constexpr std::size_t kShards = 2;
  std::vector<float> local_params;
  const fl::RunHistory local = run_in_process(kShards, 930, 931, local_params);

  auto remote_clients = make_clients(930);
  net::HierarchicalServerConfig config;
  config.shards = kShards;
  config.expected_clients = 4;
  config.clients_per_round = 4;
  config.rounds = 3;
  config.seed = 931;
  net::HierarchicalServer server{
      config, [] { return std::make_unique<defenses::FedAvgAggregator>(); }, test,
      models::ClassifierArch::Mlp, geometry};
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 4; ++i) {
    const std::uint16_t port = server.shard_port(server.shard_of(i));
    threads.emplace_back(
        [&, i, port] { (void)net::run_remote_client("127.0.0.1", port, *remote_clients[i]); });
  }
  const fl::RunHistory remote = server.run();
  for (auto& thread : threads) thread.join();

  ASSERT_EQ(local.rounds.size(), remote.rounds.size());
  for (std::size_t r = 0; r < local.rounds.size(); ++r) {
    EXPECT_EQ(local.rounds[r].test_accuracy, remote.rounds[r].test_accuracy)
        << "round " << r;
    EXPECT_EQ(local.rounds[r].sampled_clients, remote.rounds[r].sampled_clients)
        << "round " << r;
  }
  const std::span<const float> remote_params = server.global_parameters();
  ASSERT_EQ(local_params.size(), remote_params.size());
  for (std::size_t i = 0; i < local_params.size(); ++i) {
    ASSERT_EQ(local_params[i], remote_params[i]) << "parameter " << i;
  }
}

TEST_F(ShardedFederationFixture, ShardKillDegradesGracefully) {
  auto clients = make_clients(940);
  net::HierarchicalServerConfig config;
  config.shards = 2;
  config.expected_clients = 4;
  config.clients_per_round = 4;
  config.rounds = 3;
  config.seed = 941;
  config.round_timeout_ms = 8000;
  config.shard_kill_predicate = [](std::size_t shard, std::size_t round) {
    return shard == 1 && round == 1;
  };
  net::HierarchicalServer server{
      config, [] { return std::make_unique<defenses::FedAvgAggregator>(); }, test,
      models::ClassifierArch::Mlp, geometry};
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 4; ++i) {
    const std::uint16_t port = server.shard_port(server.shard_of(i));
    threads.emplace_back(
        [&, i, port] { (void)net::run_remote_client("127.0.0.1", port, *clients[i]); });
  }
  const fl::RunHistory history = server.run();
  for (auto& thread : threads) thread.join();

  // Every round completes on the survivors; the dead shard's cohort (clients
  // 2 and 3 under the contiguous partition) shows up as stragglers.
  ASSERT_EQ(history.rounds.size(), 3u);
  EXPECT_EQ(history.rounds[0].stragglers, 0u);
  for (std::size_t r = 1; r < 3; ++r) {
    EXPECT_EQ(history.rounds[r].sampled_clients, 4u) << "round " << r;
    EXPECT_EQ(history.rounds[r].stragglers, 2u) << "round " << r;
    EXPECT_GT(history.rounds[r].test_accuracy, 0.0) << "round " << r;
  }
}

}  // namespace
}  // namespace fedguard
