#include "nn/extra_layers.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "nn/checkpoint.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace fedguard::nn {
namespace {

using tensor::Tensor;

Tensor random_tensor(std::vector<std::size_t> shape, util::Rng& rng, float lo = -1.0f,
                     float hi = 1.0f) {
  Tensor t{std::move(shape)};
  for (auto& v : t.data()) v = rng.uniform_float(lo, hi);
  return t;
}

// Generic finite-difference input-gradient check (no parameters here).
void check_input_gradient(Module& module, Tensor input, util::Rng& rng,
                          float tolerance = 2e-2f) {
  const Tensor probe = module.forward(input);
  Tensor weights = random_tensor(probe.shape(), rng);

  (void)module.forward(input);
  const Tensor grad_input = module.backward(weights);

  auto loss = [&]() {
    const Tensor out = module.forward(input);
    double total = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      total += static_cast<double>(out[i]) * weights[i];
    }
    return total;
  };
  const float eps = 1e-3f;
  const std::size_t stride = std::max<std::size_t>(1, input.size() / 32);
  for (std::size_t i = 0; i < input.size(); i += stride) {
    const float saved = input[i];
    input[i] = saved + eps;
    const double up = loss();
    input[i] = saved - eps;
    const double down = loss();
    input[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    const double scale = std::max({std::abs(numeric),
                                   static_cast<double>(std::abs(grad_input[i])), 1.0});
    EXPECT_NEAR(grad_input[i], numeric, tolerance * scale) << "index " << i;
  }
}

TEST(LeakyReLU, ForwardValues) {
  LeakyReLU layer{0.1f};
  const Tensor input = Tensor::from_data({1, 4}, {-2.0f, -0.5f, 0.5f, 2.0f});
  const Tensor out = layer.forward(input);
  EXPECT_FLOAT_EQ(out[0], -0.2f);
  EXPECT_FLOAT_EQ(out[1], -0.05f);
  EXPECT_FLOAT_EQ(out[2], 0.5f);
  EXPECT_FLOAT_EQ(out[3], 2.0f);
}

TEST(LeakyReLU, GradientCheck) {
  util::Rng rng{201};
  LeakyReLU layer{0.1f};
  Tensor input = random_tensor({3, 8}, rng);
  for (auto& v : input.data()) {
    if (std::abs(v) < 0.05f) v = 0.3f;  // stay away from the kink
  }
  check_input_gradient(layer, input, rng);
}

TEST(Softmax, RowsSumToOne) {
  Softmax layer;
  util::Rng rng{202};
  const Tensor out = layer.forward(random_tensor({4, 7}, rng, -3.0f, 3.0f));
  for (std::size_t r = 0; r < 4; ++r) {
    float total = 0.0f;
    for (const float v : out.row(r)) {
      total += v;
      EXPECT_GT(v, 0.0f);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(Softmax, GradientCheck) {
  util::Rng rng{203};
  Softmax layer;
  check_input_gradient(layer, random_tensor({3, 5}, rng, -2.0f, 2.0f), rng);
}

TEST(AvgPool2d, ForwardValues) {
  AvgPool2d pool{2};
  const Tensor input = Tensor::from_data({1, 1, 2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
  const Tensor out = pool.forward(input);
  ASSERT_EQ(out.shape(), (std::vector<std::size_t>{1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(out[0], (1 + 2 + 5 + 6) / 4.0f);
  EXPECT_FLOAT_EQ(out[1], (3 + 4 + 7 + 8) / 4.0f);
}

TEST(AvgPool2d, GradientCheck) {
  util::Rng rng{204};
  AvgPool2d pool{2};
  check_input_gradient(pool, random_tensor({2, 2, 4, 4}, rng), rng);
}

TEST(AvgPool2d, RejectsBadInput) {
  AvgPool2d pool{4};
  const Tensor too_small{{1, 1, 2, 2}};
  EXPECT_THROW((void)pool.forward(too_small), std::invalid_argument);
  EXPECT_THROW((void)AvgPool2d(0), std::invalid_argument);
}

// ---- Checkpointing -----------------------------------------------------------

Sequential make_net(std::uint64_t seed) {
  util::Rng rng{seed};
  Sequential net;
  net.emplace<Linear>(5, 8, rng);
  net.emplace<LeakyReLU>(0.05f);
  net.emplace<Linear>(8, 3, rng);
  return net;
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  const std::string path = "/tmp/fedguard_ckpt_test.bin";
  Sequential a = make_net(11);
  Sequential b = make_net(12);
  save_checkpoint(path, a);
  load_checkpoint(path, b);

  util::Rng rng{13};
  const Tensor input = random_tensor({2, 5}, rng);
  const Tensor out_a = a.forward(input);
  const Tensor out_b = b.forward(input);
  for (std::size_t i = 0; i < out_a.size(); ++i) EXPECT_FLOAT_EQ(out_a[i], out_b[i]);
  std::remove(path.c_str());
}

TEST(Checkpoint, MismatchedArchitectureRejected) {
  const std::string path = "/tmp/fedguard_ckpt_test2.bin";
  Sequential a = make_net(14);
  save_checkpoint(path, a);

  util::Rng rng{15};
  Sequential wrong_shape;
  wrong_shape.emplace<Linear>(5, 9, rng);  // different out dim
  wrong_shape.emplace<LeakyReLU>(0.05f);
  wrong_shape.emplace<Linear>(9, 3, rng);
  EXPECT_THROW(load_checkpoint(path, wrong_shape), std::invalid_argument);

  Sequential wrong_count;
  wrong_count.emplace<Linear>(5, 8, rng);
  EXPECT_THROW(load_checkpoint(path, wrong_count), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileThrows) {
  Sequential net = make_net(16);
  EXPECT_THROW(load_checkpoint("/no/such/checkpoint.bin", net), std::runtime_error);
}

TEST(Checkpoint, CorruptMagicRejected) {
  const std::string path = "/tmp/fedguard_ckpt_test3.bin";
  {
    std::ofstream file{path, std::ios::binary};
    const std::uint32_t bogus = 0x12345678;
    file.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  }
  Sequential net = make_net(17);
  EXPECT_THROW(load_checkpoint(path, net), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fedguard::nn
