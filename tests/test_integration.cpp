// End-to-end federations at miniature scale, asserting the paper's *relative*
// claims: FedGuard defends where FedAvg (and distance-based defenses)
// collapse, and clean training converges.

#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "data/synthetic_mnist.hpp"
#include "util/logging.hpp"

namespace fedguard::core {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig config = ExperimentConfig::small_scale();
  // ~100 samples per client: enough for each client's CVAE to see every
  // class (~10 samples each) so the synthetic validation data is usable.
  config.train_samples = 1000;
  config.test_samples = 200;
  config.auxiliary_samples = 250;
  config.num_clients = 10;
  config.clients_per_round = 6;
  config.rounds = 8;
  // Client training and CVAE settings inherit the validated small_scale
  // recipe (3 local epochs at lr 0.1; CVAE 40 epochs at lr 3e-3, latent 2).
  config.fedguard_total_samples = 100;
  config.spectral.pretrain_rounds = 3;
  config.spectral.pretrain_clients = 5;
  config.spectral.vae_epochs = 40;
  config.seed = 1234;
  return config;
}

double final_accuracy(const fl::RunHistory& history) {
  return history.trailing_accuracy(3).mean;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { util::set_log_level(util::LogLevel::Warn); }
};

TEST_F(IntegrationTest, FedAvgConvergesWithoutAttack) {
  ExperimentConfig config = tiny_config();
  config.strategy = StrategyKind::FedAvg;
  const fl::RunHistory history = run_experiment(config);
  ASSERT_EQ(history.rounds.size(), config.rounds);
  EXPECT_GT(final_accuracy(history), 0.75);
  EXPECT_EQ(history.attack, "none");
}

TEST_F(IntegrationTest, FedAvgCollapsesUnderSignFlip) {
  ExperimentConfig config = tiny_config();
  config.strategy = StrategyKind::FedAvg;
  config.attack = attacks::AttackType::SignFlip;
  config.malicious_fraction = 0.5;
  const fl::RunHistory history = run_experiment(config);
  EXPECT_LT(final_accuracy(history), 0.5)
      << "undefended FedAvg must fail at 50% sign flipping (paper Table IV)";
}

TEST_F(IntegrationTest, FedGuardDefendsSignFlipAtFiftyPercent) {
  ExperimentConfig config = tiny_config();
  config.strategy = StrategyKind::FedGuard;
  config.attack = attacks::AttackType::SignFlip;
  config.malicious_fraction = 0.5;
  const fl::RunHistory history = run_experiment(config);
  EXPECT_GT(final_accuracy(history), 0.7)
      << "FedGuard must survive 50% sign flipping (paper Table IV)";
  EXPECT_GT(history.true_positive_rate(), 0.8)
      << "poisoned updates should be detected nearly always";
}

TEST_F(IntegrationTest, FedGuardDefendsSameValueAtFiftyPercent) {
  ExperimentConfig config = tiny_config();
  config.strategy = StrategyKind::FedGuard;
  config.attack = attacks::AttackType::SameValue;
  config.malicious_fraction = 0.5;
  const fl::RunHistory history = run_experiment(config);
  EXPECT_GT(final_accuracy(history), 0.7);
  EXPECT_GT(history.true_positive_rate(), 0.9);
  EXPECT_LT(history.false_positive_rate(), 0.5);
}

TEST_F(IntegrationTest, FedGuardDefendsAdditiveNoise) {
  ExperimentConfig config = tiny_config();
  config.strategy = StrategyKind::FedGuard;
  config.attack = attacks::AttackType::AdditiveNoise;
  config.malicious_fraction = 0.5;
  const fl::RunHistory history = run_experiment(config);
  EXPECT_GT(final_accuracy(history), 0.7);
}

TEST_F(IntegrationTest, FedAvgCollapsesUnderAdditiveNoise) {
  ExperimentConfig config = tiny_config();
  config.strategy = StrategyKind::FedAvg;
  config.attack = attacks::AttackType::AdditiveNoise;
  config.malicious_fraction = 0.5;
  const fl::RunHistory history = run_experiment(config);
  EXPECT_LT(final_accuracy(history), 0.5);
}

TEST_F(IntegrationTest, FedGuardHandlesLabelFlipAtThirtyPercent) {
  ExperimentConfig config = tiny_config();
  config.strategy = StrategyKind::FedGuard;
  config.attack = attacks::AttackType::LabelFlip;
  config.malicious_fraction = 0.3;
  const fl::RunHistory history = run_experiment(config);
  EXPECT_GT(final_accuracy(history), 0.7);
}

TEST_F(IntegrationTest, GeoMedFailsAgainstColludingMajority) {
  // Distance-based defense vs 50% colluding same-value attackers: the
  // poisoned cluster is as tight as the benign one, so GeoMed cannot win
  // (paper §V-A discussion).
  ExperimentConfig config = tiny_config();
  config.strategy = StrategyKind::GeoMed;
  config.attack = attacks::AttackType::SameValue;
  config.malicious_fraction = 0.5;
  const fl::RunHistory history = run_experiment(config);
  EXPECT_LT(final_accuracy(history), 0.6);
}

TEST_F(IntegrationTest, SpectralDefendsSameValue) {
  ExperimentConfig config = tiny_config();
  config.strategy = StrategyKind::Spectral;
  config.attack = attacks::AttackType::SameValue;
  config.malicious_fraction = 0.5;
  const fl::RunHistory history = run_experiment(config);
  EXPECT_GT(final_accuracy(history), 0.7);
  EXPECT_GT(history.true_positive_rate(), 0.8);
}

TEST_F(IntegrationTest, ServerLearningRateSlowsButStabilizes) {
  ExperimentConfig fast = tiny_config();
  fast.strategy = StrategyKind::FedAvg;
  fast.rounds = 3;
  ExperimentConfig slow = fast;
  slow.server_learning_rate = 0.3f;
  const double fast_acc = run_experiment(fast).rounds.back().test_accuracy;
  const double slow_acc = run_experiment(slow).rounds.back().test_accuracy;
  EXPECT_LT(slow_acc, fast_acc) << "lower server lr must slow early convergence (Fig. 5)";
  EXPECT_GT(slow_acc, 0.1);
}

TEST_F(IntegrationTest, FedGuardTrafficIncludesDecoders) {
  ExperimentConfig fg_config = tiny_config();
  fg_config.strategy = StrategyKind::FedGuard;
  fg_config.rounds = 1;
  ExperimentConfig avg_config = tiny_config();
  avg_config.strategy = StrategyKind::FedAvg;
  avg_config.rounds = 1;
  const fl::RunHistory fedguard = run_experiment(fg_config);
  const fl::RunHistory fedavg = run_experiment(avg_config);
  EXPECT_EQ(fedguard.rounds[0].server_upload_bytes, fedavg.rounds[0].server_upload_bytes);
  EXPECT_GT(fedguard.rounds[0].server_download_bytes,
            fedavg.rounds[0].server_download_bytes)
      << "decoder transfer is FedGuard's only extra traffic (Table V)";
}

TEST_F(IntegrationTest, DeterministicRunsForSameSeed) {
  ExperimentConfig config = tiny_config();
  config.strategy = StrategyKind::FedAvg;
  config.rounds = 2;
  const fl::RunHistory a = run_experiment(config);
  const fl::RunHistory b = run_experiment(config);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_DOUBLE_EQ(a.rounds[r].test_accuracy, b.rounds[r].test_accuracy);
  }
}

TEST_F(IntegrationTest, MakeStrategyCoversAllKinds) {
  const ExperimentConfig base = tiny_config();
  const data::Dataset aux = data::generate_synthetic_mnist(50, 99);
  for (const auto kind :
       {StrategyKind::FedAvg, StrategyKind::GeoMed, StrategyKind::Krum,
        StrategyKind::MultiKrum, StrategyKind::Median, StrategyKind::TrimmedMean,
        StrategyKind::NormThreshold, StrategyKind::Bulyan, StrategyKind::AuxAudit,
        StrategyKind::Spectral, StrategyKind::FedGuard}) {
    ExperimentConfig config = base;
    config.strategy = kind;
    config.cvae.input_dim = config.geometry().pixels();
    const auto strategy = make_strategy(config, aux);
    ASSERT_NE(strategy, nullptr);
    EXPECT_EQ(strategy->name(), to_string(kind));
    EXPECT_EQ(strategy->wants_decoders(), kind == StrategyKind::FedGuard);
  }
}

}  // namespace
}  // namespace fedguard::core
