// Wire-protocol and distributed-federation tests (loopback TCP).

#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "data/partition.hpp"
#include "data/synthetic_mnist.hpp"
#include "defenses/fedavg.hpp"
#include "defenses/fedguard.hpp"
#include "net/remote.hpp"
#include "util/logging.hpp"

namespace fedguard::net {
namespace {

TEST(Messages, HelloRoundTrip) {
  const std::vector<std::byte> payload = encode_hello(42);
  EXPECT_EQ(decode_hello(payload), 42);
}

TEST(Messages, RoundRequestRoundTrip) {
  RoundRequest request;
  request.round = 7;
  request.want_decoder = true;
  request.global_parameters = {1.0f, -2.0f, 3.5f};
  const RoundRequest decoded = decode_round_request(encode_round_request(request));
  EXPECT_EQ(decoded.round, 7u);
  EXPECT_TRUE(decoded.want_decoder);
  EXPECT_EQ(decoded.global_parameters, request.global_parameters);
}

TEST(Messages, RoundReplyRoundTrip) {
  RoundReply reply;
  reply.round = 11;
  reply.update.client_id = 3;
  reply.update.num_samples = 120;
  reply.update.truly_malicious = true;
  reply.update.psi = {0.5f, 1.5f};
  reply.update.theta = {9.0f};
  const RoundReply decoded = decode_round_reply(encode_round_reply(reply));
  EXPECT_EQ(decoded.round, 11u);
  EXPECT_EQ(decoded.update.client_id, 3);
  EXPECT_EQ(decoded.update.num_samples, 120u);
  EXPECT_TRUE(decoded.update.truly_malicious);
  EXPECT_EQ(decoded.update.psi, reply.update.psi);
  EXPECT_EQ(decoded.update.theta, reply.update.theta);
}

TEST(Messages, TruncatedPayloadThrows) {
  const std::vector<std::byte> payload = encode_round_request({});
  const std::span<const std::byte> truncated{payload.data(), payload.size() / 2};
  try {
    (void)decode_round_request(truncated);
    FAIL() << "truncated payload must not decode";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.code(), DecodeErrorCode::Truncated);
  }
}

TEST(Messages, FrameBytesMatchEncoding) {
  RoundReply reply;
  reply.update.psi.assign(100, 0.0f);
  reply.update.theta.assign(40, 0.0f);
  const Message message{MessageType::RoundReply, encode_round_reply(reply)};
  EXPECT_EQ(encode_frame(message).size(), client_update_frame_bytes(100, 40));
}

// ---- Corrupt-frame decoding: every malformation is a typed error ---------------

std::vector<std::byte> sample_frame() {
  RoundRequest request;
  request.round = 3;
  request.global_parameters = {1.0f, 2.0f, 3.0f, 4.0f};
  return encode_frame({MessageType::RoundRequest, encode_round_request(request)});
}

DecodeErrorCode decode_failure(std::span<const std::byte> buffer) {
  try {
    (void)decode_frame(buffer);
  } catch (const DecodeError& e) {
    return e.code();
  }
  ADD_FAILURE() << "corrupt frame decoded without error";
  return DecodeErrorCode::BadMagic;
}

TEST(Messages, SaneFrameDecodes) {
  const std::vector<std::byte> frame = sample_frame();
  const Message decoded = decode_frame(frame);
  EXPECT_EQ(decoded.type, MessageType::RoundRequest);
  EXPECT_EQ(decode_round_request(decoded.payload).global_parameters.size(), 4u);
}

TEST(Messages, BadMagicIsTyped) {
  std::vector<std::byte> frame = sample_frame();
  frame[0] ^= std::byte{0xff};
  EXPECT_EQ(decode_failure(frame), DecodeErrorCode::BadMagic);
}

TEST(Messages, BadTypeIsTyped) {
  std::vector<std::byte> frame = sample_frame();
  frame[4] = std::byte{99};  // type field (little-endian u32 at offset 4)
  EXPECT_EQ(decode_failure(frame), DecodeErrorCode::BadType);
}

TEST(Messages, OversizedLengthIsTyped) {
  std::vector<std::byte> frame = sample_frame();
  // Length field (little-endian u64 at offset 8): claim ~2^63 payload bytes.
  for (std::size_t i = 8; i < 16; ++i) frame[i] = std::byte{0x7f};
  EXPECT_EQ(decode_failure(frame), DecodeErrorCode::Oversized);
}

TEST(Messages, FlippedCrcIsTyped) {
  std::vector<std::byte> frame = sample_frame();
  frame[16] ^= std::byte{0x01};  // CRC field (offset 16)
  EXPECT_EQ(decode_failure(frame), DecodeErrorCode::BadCrc);
}

TEST(Messages, FlippedPayloadBitIsTyped) {
  std::vector<std::byte> frame = sample_frame();
  frame[kFrameHeaderBytes + 5] ^= std::byte{0x10};
  EXPECT_EQ(decode_failure(frame), DecodeErrorCode::BadCrc);
}

TEST(Messages, TruncatedFrameIsTyped) {
  const std::vector<std::byte> frame = sample_frame();
  EXPECT_EQ(decode_failure({frame.data(), frame.size() - 3}),
            DecodeErrorCode::Truncated);
  EXPECT_EQ(decode_failure({frame.data(), kFrameHeaderBytes - 1}),
            DecodeErrorCode::Truncated);
}

TEST(Sockets, LoopbackSendReceive) {
  TcpListener listener{0};
  std::thread client_thread{[port = listener.port()] {
    TcpStream stream = TcpStream::connect("127.0.0.1", port);
    stream.send_message({MessageType::Hello, encode_hello(5)});
    const Message echo = stream.receive_message();
    EXPECT_EQ(echo.type, MessageType::Shutdown);
  }};
  TcpStream server_side = listener.accept();
  const Message hello = server_side.receive_message();
  EXPECT_EQ(hello.type, MessageType::Hello);
  EXPECT_EQ(decode_hello(hello.payload), 5);
  server_side.send_message({MessageType::Shutdown, {}});
  client_thread.join();
}

TEST(Sockets, ConnectToClosedPortFails) {
  // Bind then immediately free a port so nothing is listening.
  std::uint16_t dead_port;
  {
    TcpListener listener{0};
    dead_port = listener.port();
  }
  EXPECT_THROW((void)TcpStream::connect("127.0.0.1", dead_port), std::runtime_error);
}

TEST(Sockets, ReceiveDeadlineRaisesSocketTimeout) {
  TcpListener listener{0};
  TcpStream client = TcpStream::connect("127.0.0.1", listener.port());
  TcpStream server_side = listener.accept();
  server_side.set_receive_timeout(std::chrono::milliseconds{50});
  EXPECT_THROW((void)server_side.receive_message(), SocketTimeout);
  (void)client;
}

TEST(Sockets, PeerClosingMidPayloadIsTruncatedFrame) {
  TcpListener listener{0};
  std::thread client_thread{[port = listener.port()] {
    TcpStream stream = TcpStream::connect("127.0.0.1", port);
    const std::vector<std::byte> frame =
        encode_frame({MessageType::Hello, encode_hello(7)});
    stream.send_all({frame.data(), frame.size() - 2});  // full header, short payload
  }};  // stream closes here, mid-frame
  TcpStream server_side = listener.accept();
  server_side.set_receive_timeout(std::chrono::milliseconds{2000});
  try {
    (void)server_side.receive_message();
    FAIL() << "truncated frame must not decode";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.code(), DecodeErrorCode::Truncated);
  }
  client_thread.join();
}

TEST(Sockets, CorruptBytesOnWireAreTypedErrors) {
  TcpListener listener{0};
  std::thread client_thread{[port = listener.port()] {
    TcpStream stream = TcpStream::connect("127.0.0.1", port);
    std::vector<std::byte> frame = encode_frame({MessageType::Hello, encode_hello(7)});
    frame[kFrameHeaderBytes] ^= std::byte{0x01};  // payload bit flip
    stream.send_all(frame);
    const Message ack = stream.receive_message();  // connection must survive
    EXPECT_EQ(ack.type, MessageType::Shutdown);
  }};
  TcpStream server_side = listener.accept();
  server_side.set_receive_timeout(std::chrono::milliseconds{2000});
  try {
    (void)server_side.receive_message();
    FAIL() << "corrupt frame must not decode";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.code(), DecodeErrorCode::BadCrc);
  }
  // A CRC failure leaves the stream framed: the link is still usable.
  server_side.send_message({MessageType::Shutdown, {}});
  client_thread.join();
}

// ---- Full distributed federations over loopback --------------------------------

struct RemoteFixture : ::testing::Test {
  static void SetUpTestSuite() { util::set_log_level(util::LogLevel::Warn); }

  void SetUp() override {
    geometry = models::ImageGeometry{1, 28, 28, 10};
    train = data::generate_synthetic_mnist(400, 601);
    test = data::generate_synthetic_mnist(120, 602);
    partition = data::iid_partition(train.size(), 4, 603);
  }

  fl::ClientConfig client_config(bool with_cvae) const {
    fl::ClientConfig config;
    config.local_epochs = 1;
    config.batch_size = 16;
    config.train_cvae = with_cvae;
    config.cvae_epochs = 10;
    config.cvae_batch_size = 8;
    config.cvae_learning_rate = 3e-3f;
    return config;
  }

  models::CvaeSpec cvae_spec() const {
    models::CvaeSpec spec;
    spec.hidden = 48;
    spec.latent = 2;
    return spec;
  }

  models::ImageGeometry geometry;
  data::Dataset train;
  data::Dataset test;
  data::Partition partition;
};

TEST_F(RemoteFixture, FedAvgFederationOverTcp) {
  defenses::FedAvgAggregator strategy;
  RemoteServerConfig config;
  config.expected_clients = 4;
  config.clients_per_round = 4;
  config.rounds = 4;
  config.seed = 604;
  RemoteServer server{config, strategy, test, models::ClassifierArch::Mlp, geometry};
  const std::uint16_t port = server.port();

  std::vector<std::unique_ptr<fl::Client>> clients;
  std::vector<std::thread> threads;
  std::vector<std::size_t> rounds_served(4, 0);
  // Build every client before spawning any thread: a later push_back can
  // reallocate `clients` while an earlier thread dereferences clients[i].
  for (std::size_t i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<fl::Client>(
        static_cast<int>(i), train, partition[i], client_config(false),
        models::ClassifierArch::Mlp, geometry, cvae_spec(), 605 + i));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      rounds_served[i] = run_remote_client("127.0.0.1", port, *clients[i]);
    });
  }
  const fl::RunHistory history = server.run();
  for (auto& thread : threads) thread.join();

  ASSERT_EQ(history.rounds.size(), 4u);
  EXPECT_GT(history.rounds.back().test_accuracy, 0.5)
      << "distributed FedAvg should train the model";
  EXPECT_GT(history.rounds.back().server_download_bytes, 0u);
  std::size_t total_served = 0;
  for (const std::size_t n : rounds_served) total_served += n;
  EXPECT_EQ(total_served, 4u * 4u);  // every client sampled every round (m = N)
}

TEST_F(RemoteFixture, FedGuardRejectsMaliciousClientOverTcp) {
  defenses::FedGuardConfig fg;
  fg.cvae_spec = cvae_spec();
  fg.total_samples = 40;
  defenses::FedGuardAggregator strategy{fg, models::ClassifierArch::Mlp, geometry, 606};

  RemoteServerConfig config;
  config.expected_clients = 4;
  config.clients_per_round = 4;
  config.rounds = 3;
  config.seed = 607;
  RemoteServer server{config, strategy, test, models::ClassifierArch::Mlp, geometry};
  const std::uint16_t port = server.port();

  const attacks::SameValueAttack attack{1.0f};
  std::vector<std::unique_ptr<fl::Client>> clients;
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<fl::Client>(
        static_cast<int>(i), train, partition[i], client_config(true),
        models::ClassifierArch::Mlp, geometry, cvae_spec(), 608 + i));
    if (i == 3) clients.back()->corrupt_with_model_attack(&attack);
  }
  for (std::size_t i = 0; i < 4; ++i) {
    threads.emplace_back(
        [&, i] { (void)run_remote_client("127.0.0.1", port, *clients[i]); });
  }
  const fl::RunHistory history = server.run();
  for (auto& thread : threads) thread.join();

  // The poisoned client must be rejected in (at least) the later rounds and
  // the model must still train.
  std::size_t rejected_malicious = 0;
  for (const auto& round : history.rounds) rejected_malicious += round.rejected_malicious;
  EXPECT_GE(rejected_malicious, 2u);
  EXPECT_GT(history.rounds.back().test_accuracy, 0.4);
}

TEST_F(RemoteFixture, TrafficAsymmetryForDecoderStrategies) {
  // FedGuard's TCP download traffic must exceed its upload traffic by the
  // decoder bytes (Table V's asymmetry, now measured on real sockets).
  defenses::FedGuardConfig fg;
  fg.cvae_spec = cvae_spec();
  fg.total_samples = 20;
  defenses::FedGuardAggregator strategy{fg, models::ClassifierArch::Mlp, geometry, 609};

  RemoteServerConfig config;
  config.expected_clients = 2;
  config.clients_per_round = 2;
  config.rounds = 1;
  config.seed = 610;
  RemoteServer server{config, strategy, test, models::ClassifierArch::Mlp, geometry};
  const std::uint16_t port = server.port();

  std::vector<std::unique_ptr<fl::Client>> clients;
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 2; ++i) {
    clients.push_back(std::make_unique<fl::Client>(
        static_cast<int>(i), train, partition[i], client_config(true),
        models::ClassifierArch::Mlp, geometry, cvae_spec(), 611 + i));
  }
  for (std::size_t i = 0; i < 2; ++i) {
    threads.emplace_back(
        [&, i] { (void)run_remote_client("127.0.0.1", port, *clients[i]); });
  }
  const fl::RunHistory history = server.run();
  for (auto& thread : threads) thread.join();
  EXPECT_GT(history.rounds[0].server_download_bytes,
            history.rounds[0].server_upload_bytes);
}

// ---- Accept-phase fault tolerance ----------------------------------------------

TEST_F(RemoteFixture, AcceptDeadlineFailsLoudlyWhenClientsAreMissing) {
  // Regression: the server used to block forever when fewer than
  // expected_clients connected. Now the accept phase has a deadline and
  // reports the shortfall.
  defenses::FedAvgAggregator strategy;
  RemoteServerConfig config;
  config.expected_clients = 2;
  config.clients_per_round = 2;
  config.rounds = 1;
  config.seed = 620;
  config.accept_timeout_ms = 300;
  RemoteServer server{config, strategy, test, models::ClassifierArch::Mlp, geometry};

  const auto start = std::chrono::steady_clock::now();
  try {
    (void)server.run();
    FAIL() << "run() must fail when no clients connect";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("0 of 2"), std::string::npos) << e.what();
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds{10}) << "accept must respect its deadline";
}

TEST_F(RemoteFixture, MinClientsAllowsPartialFederation) {
  // With min_clients set, the run proceeds over whoever showed up.
  defenses::FedAvgAggregator strategy;
  RemoteServerConfig config;
  config.expected_clients = 3;
  config.clients_per_round = 3;
  config.rounds = 2;
  config.seed = 621;
  config.accept_timeout_ms = 500;
  config.min_clients = 1;
  RemoteServer server{config, strategy, test, models::ClassifierArch::Mlp, geometry};
  const std::uint16_t port = server.port();

  fl::Client client{0,        train,    partition[0], client_config(false),
                    models::ClassifierArch::Mlp, geometry, cvae_spec(), 622};
  std::thread client_thread{[&] { (void)run_remote_client("127.0.0.1", port, client); }};
  const fl::RunHistory history = server.run();
  client_thread.join();

  ASSERT_EQ(history.rounds.size(), 2u);
  for (const auto& record : history.rounds) {
    EXPECT_EQ(record.sampled_clients, 1u);  // the universe shrank to who joined
    EXPECT_EQ(record.dropouts + record.timeouts + record.corrupt_frames, 0u);
  }
}

}  // namespace
}  // namespace fedguard::net
