// Wire-protocol and distributed-federation tests (loopback TCP).

#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "data/partition.hpp"
#include "data/synthetic_mnist.hpp"
#include "defenses/fedavg.hpp"
#include "defenses/fedguard.hpp"
#include "net/remote.hpp"
#include "util/logging.hpp"

namespace fedguard::net {
namespace {

TEST(Messages, HelloRoundTrip) {
  const std::vector<std::byte> payload = encode_hello(42);
  EXPECT_EQ(decode_hello(payload), 42);
}

TEST(Messages, RoundRequestRoundTrip) {
  RoundRequest request;
  request.round = 7;
  request.want_decoder = true;
  request.global_parameters = {1.0f, -2.0f, 3.5f};
  const RoundRequest decoded = decode_round_request(encode_round_request(request));
  EXPECT_EQ(decoded.round, 7u);
  EXPECT_TRUE(decoded.want_decoder);
  EXPECT_EQ(decoded.global_parameters, request.global_parameters);
}

TEST(Messages, ClientUpdateRoundTrip) {
  defenses::ClientUpdate update;
  update.client_id = 3;
  update.num_samples = 120;
  update.truly_malicious = true;
  update.psi = {0.5f, 1.5f};
  update.theta = {9.0f};
  const defenses::ClientUpdate decoded =
      decode_client_update(encode_client_update(update));
  EXPECT_EQ(decoded.client_id, 3);
  EXPECT_EQ(decoded.num_samples, 120u);
  EXPECT_TRUE(decoded.truly_malicious);
  EXPECT_EQ(decoded.psi, update.psi);
  EXPECT_EQ(decoded.theta, update.theta);
}

TEST(Messages, TruncatedPayloadThrows) {
  const std::vector<std::byte> payload = encode_round_request({});
  const std::span<const std::byte> truncated{payload.data(), payload.size() / 2};
  EXPECT_THROW((void)decode_round_request(truncated), std::runtime_error);
}

TEST(Messages, FrameBytesMatchEncoding) {
  defenses::ClientUpdate update;
  update.psi.assign(100, 0.0f);
  update.theta.assign(40, 0.0f);
  const Message message{MessageType::RoundReply, encode_client_update(update)};
  EXPECT_EQ(encode_frame(message).size(), client_update_frame_bytes(100, 40));
}

TEST(Sockets, LoopbackSendReceive) {
  TcpListener listener{0};
  std::thread client_thread{[port = listener.port()] {
    TcpStream stream = TcpStream::connect("127.0.0.1", port);
    stream.send_message({MessageType::Hello, encode_hello(5)});
    const Message echo = stream.receive_message();
    EXPECT_EQ(echo.type, MessageType::Shutdown);
  }};
  TcpStream server_side = listener.accept();
  const Message hello = server_side.receive_message();
  EXPECT_EQ(hello.type, MessageType::Hello);
  EXPECT_EQ(decode_hello(hello.payload), 5);
  server_side.send_message({MessageType::Shutdown, {}});
  client_thread.join();
}

TEST(Sockets, ConnectToClosedPortFails) {
  // Bind then immediately free a port so nothing is listening.
  std::uint16_t dead_port;
  {
    TcpListener listener{0};
    dead_port = listener.port();
  }
  EXPECT_THROW((void)TcpStream::connect("127.0.0.1", dead_port), std::runtime_error);
}

// ---- Full distributed federations over loopback --------------------------------

struct RemoteFixture : ::testing::Test {
  static void SetUpTestSuite() { util::set_log_level(util::LogLevel::Warn); }

  void SetUp() override {
    geometry = models::ImageGeometry{1, 28, 28, 10};
    train = data::generate_synthetic_mnist(400, 601);
    test = data::generate_synthetic_mnist(120, 602);
    partition = data::iid_partition(train.size(), 4, 603);
  }

  fl::ClientConfig client_config(bool with_cvae) const {
    fl::ClientConfig config;
    config.local_epochs = 1;
    config.batch_size = 16;
    config.train_cvae = with_cvae;
    config.cvae_epochs = 10;
    config.cvae_batch_size = 8;
    config.cvae_learning_rate = 3e-3f;
    return config;
  }

  models::CvaeSpec cvae_spec() const {
    models::CvaeSpec spec;
    spec.hidden = 48;
    spec.latent = 2;
    return spec;
  }

  models::ImageGeometry geometry;
  data::Dataset train;
  data::Dataset test;
  data::Partition partition;
};

TEST_F(RemoteFixture, FedAvgFederationOverTcp) {
  defenses::FedAvgAggregator strategy;
  RemoteServerConfig config;
  config.expected_clients = 4;
  config.clients_per_round = 4;
  config.rounds = 4;
  config.seed = 604;
  RemoteServer server{config, strategy, test, models::ClassifierArch::Mlp, geometry};
  const std::uint16_t port = server.port();

  std::vector<std::unique_ptr<fl::Client>> clients;
  std::vector<std::thread> threads;
  std::vector<std::size_t> rounds_served(4, 0);
  for (std::size_t i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<fl::Client>(
        static_cast<int>(i), train, partition[i], client_config(false),
        models::ClassifierArch::Mlp, geometry, cvae_spec(), 605 + i));
    threads.emplace_back([&, i] {
      rounds_served[i] = run_remote_client("127.0.0.1", port, *clients[i]);
    });
  }
  const fl::RunHistory history = server.run();
  for (auto& thread : threads) thread.join();

  ASSERT_EQ(history.rounds.size(), 4u);
  EXPECT_GT(history.rounds.back().test_accuracy, 0.5)
      << "distributed FedAvg should train the model";
  EXPECT_GT(history.rounds.back().server_download_bytes, 0u);
  std::size_t total_served = 0;
  for (const std::size_t n : rounds_served) total_served += n;
  EXPECT_EQ(total_served, 4u * 4u);  // every client sampled every round (m = N)
}

TEST_F(RemoteFixture, FedGuardRejectsMaliciousClientOverTcp) {
  defenses::FedGuardConfig fg;
  fg.cvae_spec = cvae_spec();
  fg.total_samples = 40;
  defenses::FedGuardAggregator strategy{fg, models::ClassifierArch::Mlp, geometry, 606};

  RemoteServerConfig config;
  config.expected_clients = 4;
  config.clients_per_round = 4;
  config.rounds = 3;
  config.seed = 607;
  RemoteServer server{config, strategy, test, models::ClassifierArch::Mlp, geometry};
  const std::uint16_t port = server.port();

  const attacks::SameValueAttack attack{1.0f};
  std::vector<std::unique_ptr<fl::Client>> clients;
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<fl::Client>(
        static_cast<int>(i), train, partition[i], client_config(true),
        models::ClassifierArch::Mlp, geometry, cvae_spec(), 608 + i));
    if (i == 3) clients.back()->corrupt_with_model_attack(&attack);
    threads.emplace_back(
        [&, i] { (void)run_remote_client("127.0.0.1", port, *clients[i]); });
  }
  const fl::RunHistory history = server.run();
  for (auto& thread : threads) thread.join();

  // The poisoned client must be rejected in (at least) the later rounds and
  // the model must still train.
  std::size_t rejected_malicious = 0;
  for (const auto& round : history.rounds) rejected_malicious += round.rejected_malicious;
  EXPECT_GE(rejected_malicious, 2u);
  EXPECT_GT(history.rounds.back().test_accuracy, 0.4);
}

TEST_F(RemoteFixture, TrafficAsymmetryForDecoderStrategies) {
  // FedGuard's TCP download traffic must exceed its upload traffic by the
  // decoder bytes (Table V's asymmetry, now measured on real sockets).
  defenses::FedGuardConfig fg;
  fg.cvae_spec = cvae_spec();
  fg.total_samples = 20;
  defenses::FedGuardAggregator strategy{fg, models::ClassifierArch::Mlp, geometry, 609};

  RemoteServerConfig config;
  config.expected_clients = 2;
  config.clients_per_round = 2;
  config.rounds = 1;
  config.seed = 610;
  RemoteServer server{config, strategy, test, models::ClassifierArch::Mlp, geometry};
  const std::uint16_t port = server.port();

  std::vector<std::unique_ptr<fl::Client>> clients;
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 2; ++i) {
    clients.push_back(std::make_unique<fl::Client>(
        static_cast<int>(i), train, partition[i], client_config(true),
        models::ClassifierArch::Mlp, geometry, cvae_spec(), 611 + i));
    threads.emplace_back(
        [&, i] { (void)run_remote_client("127.0.0.1", port, *clients[i]); });
  }
  const fl::RunHistory history = server.run();
  for (auto& thread : threads) thread.join();
  EXPECT_GT(history.rounds[0].server_download_bytes,
            history.rounds[0].server_upload_bytes);
}

}  // namespace
}  // namespace fedguard::net
