#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <set>

namespace fedguard::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int differences = 0;
  for (int i = 0; i < 32; ++i) {
    if (a() != b()) ++differences;
  }
  EXPECT_GT(differences, 30);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  double total = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    total += u;
  }
  EXPECT_NEAR(total / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntBoundsAndCoverage) {
  Rng rng{11};
  std::array<int, 10> counts{};
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (const int c : counts) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng{13};
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, NormalMeanStddevParameters) {
  Rng rng{17};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.03);
}

TEST(Rng, GammaMeanEqualsShape) {
  Rng rng{19};
  for (const double shape : {0.5, 1.0, 4.0, 10.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.gamma(shape);
    EXPECT_NEAR(sum / n, shape, shape * 0.06) << "shape=" << shape;
  }
}

TEST(Rng, DirichletSumsToOne) {
  Rng rng{23};
  const std::vector<double> alpha(8, 2.5);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.dirichlet(alpha);
    ASSERT_EQ(sample.size(), alpha.size());
    const double total = std::accumulate(sample.begin(), sample.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9);
    for (const double v : sample) EXPECT_GE(v, 0.0);
  }
}

TEST(Rng, DirichletConcentrationControlsSpread) {
  // Higher alpha -> proportions closer to uniform (lower variance).
  Rng rng{29};
  auto mean_max = [&rng](double alpha) {
    const std::vector<double> alpha_vec(10, alpha);
    double total = 0.0;
    for (int i = 0; i < 300; ++i) {
      const auto p = rng.dirichlet(alpha_vec);
      total += *std::max_element(p.begin(), p.end());
    }
    return total / 300.0;
  };
  EXPECT_GT(mean_max(0.1), mean_max(100.0));
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng{31};
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.02);
}

TEST(Rng, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng{37};
  for (int trial = 0; trial < 20; ++trial) {
    const auto sample = rng.sample_without_replacement(100, 50);
    ASSERT_EQ(sample.size(), 50u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 50u);
    for (const auto v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng{41};
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementIsUniform) {
  Rng rng{43};
  std::array<int, 10> counts{};
  for (int trial = 0; trial < 5000; ++trial) {
    for (const auto v : rng.sample_without_replacement(10, 3)) ++counts[v];
  }
  for (const int c : counts) EXPECT_NEAR(c, 1500, 200);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent{47};
  Rng child_a = parent.fork(0);
  Rng child_b = parent.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child_a() == child_b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng{53};
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  auto shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, values);  // overwhelmingly likely
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng{59};
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanStableAcrossSeeds) {
  Rng rng{GetParam()};
  double total = 0.0;
  for (int i = 0; i < 10000; ++i) total += rng.uniform();
  EXPECT_NEAR(total / 10000.0, 0.5, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xffffffffULL,
                                           0xdeadbeefcafef00dULL));

}  // namespace
}  // namespace fedguard::util
