#include "defenses/spectral.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/synthetic_mnist.hpp"
#include "util/stats.hpp"

namespace fedguard::defenses {
namespace {

// Shared slow setup: a pre-trained Spectral aggregator plus a benign cohort.
class SpectralTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kImageSize = 28;

  void SetUp() override {
    geometry_ = models::ImageGeometry{1, kImageSize, kImageSize, 10};
    auxiliary_ = data::generate_synthetic_mnist(240, 61);

    SpectralConfig config;
    config.surrogate_dim = 512;
    config.pretrain_rounds = 3;
    config.pretrain_clients = 5;
    config.vae_epochs = 40;
    aggregator_ = std::make_unique<SpectralAggregator>(
        config, models::ClassifierArch::Mlp, geometry_, auxiliary_, 62);

    // Benign updates: locally trained models from a common init.
    models::Classifier init{models::ClassifierArch::Mlp, geometry_, 63};
    global_ = init.parameters_flat();
    const data::Dataset train = data::generate_synthetic_mnist(300, 64);
    for (int k = 0; k < 6; ++k) {
      models::Classifier classifier{models::ClassifierArch::Mlp, geometry_, 65};
      classifier.load_parameters_flat(global_);
      for (std::size_t start = 0; start + 32 <= train.size(); start += 32) {
        std::vector<std::size_t> idx(32);
        for (std::size_t i = 0; i < 32; ++i) idx[i] = (start + i) % train.size();
        const auto batch = train.gather(idx);
        classifier.train_batch(batch.images, batch.labels, 0.1f, 0.9f);
      }
      ClientUpdate update;
      update.client_id = k;
      update.psi = classifier.parameters_flat();
      update.num_samples = train.size();
      benign_.push_back(std::move(update));
    }
  }

  AggregationContext context() const {
    AggregationContext ctx;
    ctx.global_parameters = global_;
    return ctx;
  }

  models::ImageGeometry geometry_;
  data::Dataset auxiliary_;
  std::unique_ptr<SpectralAggregator> aggregator_;
  std::vector<float> global_;
  std::vector<ClientUpdate> benign_;
};

TEST_F(SpectralTest, PretrainsLazilyOnFirstRound) {
  EXPECT_FALSE(aggregator_->pretrained());
  (void)aggregator_->aggregate(context(), benign_);
  EXPECT_TRUE(aggregator_->pretrained());
  EXPECT_EQ(aggregator_->last_errors().size(), benign_.size());
}

TEST_F(SpectralTest, GrossOutlierGetsHighestErrorAndIsRejected) {
  std::vector<ClientUpdate> updates = benign_;
  ClientUpdate poisoned = benign_.front();
  poisoned.client_id = 99;
  poisoned.truly_malicious = true;
  std::fill(poisoned.psi.begin(), poisoned.psi.end(), 1.0f);  // same-value attack
  updates.push_back(poisoned);

  const auto result = aggregator_->aggregate(context(), updates);
  const auto& errors = aggregator_->last_errors();
  const std::size_t worst = static_cast<std::size_t>(
      std::max_element(errors.begin(), errors.end()) - errors.begin());
  EXPECT_EQ(updates[worst].client_id, 99);
  EXPECT_TRUE(std::find(result.rejected_clients.begin(), result.rejected_clients.end(),
                        99) != result.rejected_clients.end());
}

TEST_F(SpectralTest, AggregateReturnsCorrectDimension) {
  const auto result = aggregator_->aggregate(context(), benign_);
  EXPECT_EQ(result.parameters.size(), global_.size());
  EXPECT_EQ(result.accepted_clients.size() + result.rejected_clients.size(),
            benign_.size());
}

TEST_F(SpectralTest, MeanThresholdNeverRejectsEverything) {
  const auto result = aggregator_->aggregate(context(), benign_);
  EXPECT_FALSE(result.accepted_clients.empty());
}

TEST(Spectral, EmptyAuxiliaryRejected) {
  SpectralConfig config;
  EXPECT_THROW((void)SpectralAggregator(config, models::ClassifierArch::Mlp,
                                        models::ImageGeometry{}, data::Dataset{}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace fedguard::defenses
