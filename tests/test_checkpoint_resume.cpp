// Server checkpoint/resume and classifier confusion-matrix tests.

#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>

#include "data/partition.hpp"
#include "data/synthetic_mnist.hpp"
#include "defenses/fedavg.hpp"
#include "fl/server.hpp"
#include "util/logging.hpp"
#include "util/serialize.hpp"

namespace fedguard::fl {
namespace {

struct ResumeFixture : ::testing::Test {
  static void SetUpTestSuite() { util::set_log_level(util::LogLevel::Warn); }

  void SetUp() override {
    geometry = models::ImageGeometry{1, 28, 28, 10};
    train = data::generate_synthetic_mnist(240, 701);
    test = data::generate_synthetic_mnist(80, 702);
    const data::Partition partition = data::iid_partition(train.size(), 4, 703);
    ClientConfig config;
    config.local_epochs = 1;
    config.batch_size = 16;
    config.train_cvae = false;
    models::CvaeSpec cvae;
    cvae.hidden = 32;
    cvae.latent = 2;
    for (std::size_t i = 0; i < 4; ++i) {
      clients.push_back(std::make_unique<Client>(
          static_cast<int>(i), train, partition[i], config, models::ClassifierArch::Mlp,
          geometry, cvae, 704 + i));
    }
  }

  ServerConfig server_config() const {
    ServerConfig config;
    config.clients_per_round = 4;
    config.rounds = 2;
    config.seed = 705;
    return config;
  }

  models::ImageGeometry geometry;
  data::Dataset train;
  data::Dataset test;
  std::vector<std::unique_ptr<Client>> clients;
};

TEST_F(ResumeFixture, SaveLoadGlobalRoundTrip) {
  const std::string path = "/tmp/fedguard_global_test.bin";
  defenses::FedAvgAggregator strategy;
  Server trained{server_config(), clients, strategy, test, models::ClassifierArch::Mlp,
                 geometry};
  (void)trained.run_round(0);
  (void)trained.run_round(1);
  const double trained_accuracy = trained.evaluate_global();
  trained.save_global(path);

  // A fresh server (different init) restores the trained state exactly.
  defenses::FedAvgAggregator strategy2;
  ServerConfig fresh_config = server_config();
  fresh_config.seed = 999;
  Server resumed{fresh_config, clients, strategy2, test, models::ClassifierArch::Mlp,
                 geometry};
  EXPECT_NE(resumed.evaluate_global(), trained_accuracy);
  resumed.load_global(path);
  EXPECT_DOUBLE_EQ(resumed.evaluate_global(), trained_accuracy);
  const std::vector<float> a{trained.global_parameters().begin(),
                             trained.global_parameters().end()};
  const std::vector<float> b{resumed.global_parameters().begin(),
                             resumed.global_parameters().end()};
  EXPECT_EQ(a, b);
  std::remove(path.c_str());
}

TEST_F(ResumeFixture, LoadGlobalValidatesDimension) {
  const std::string path = "/tmp/fedguard_global_bad.bin";
  const std::vector<float> wrong(10, 0.0f);
  util::save_f32_vector(path, wrong);
  defenses::FedAvgAggregator strategy;
  Server server{server_config(), clients, strategy, test, models::ClassifierArch::Mlp,
                geometry};
  EXPECT_THROW(server.load_global(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fedguard::fl

namespace fedguard::models {
namespace {

TEST(ConfusionMatrix, RowSumsMatchLabelCountsAndDiagonalIsCorrect) {
  const data::Dataset train = data::generate_synthetic_mnist(400, 711);
  Classifier classifier{ClassifierArch::Mlp, ImageGeometry{}, 712};
  for (int epoch = 0; epoch < 12; ++epoch) {
    for (std::size_t start = 0; start + 16 <= train.size(); start += 16) {
      std::vector<std::size_t> idx(16);
      std::iota(idx.begin(), idx.end(), start);
      const auto batch = train.gather(idx);
      classifier.train_batch(batch.images, batch.labels, 0.05f, 0.9f);
    }
  }
  const data::Dataset test = data::generate_synthetic_mnist(200, 713);
  std::vector<std::size_t> all(test.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const auto batch = test.gather(all);
  const std::vector<std::size_t> matrix =
      classifier.confusion_matrix(batch.images, batch.labels);
  ASSERT_EQ(matrix.size(), 100u);

  // Row sums reproduce the per-class label counts.
  const auto histogram = test.class_histogram();
  std::size_t diagonal = 0;
  for (std::size_t t = 0; t < 10; ++t) {
    std::size_t row_sum = 0;
    for (std::size_t p = 0; p < 10; ++p) row_sum += matrix[t * 10 + p];
    EXPECT_EQ(row_sum, histogram[t]) << "class " << t;
    diagonal += matrix[t * 10 + t];
  }
  // Diagonal / total == overall accuracy.
  const double accuracy = classifier.evaluate_accuracy(batch.images, batch.labels);
  EXPECT_NEAR(static_cast<double>(diagonal) / static_cast<double>(test.size()), accuracy,
              1e-9);
  // A reasonably trained model is diagonal-dominant.
  EXPECT_GT(static_cast<double>(diagonal) / static_cast<double>(test.size()), 0.7);
}

}  // namespace
}  // namespace fedguard::models
