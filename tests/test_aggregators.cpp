#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>

#include "defenses/fedavg.hpp"
#include "defenses/geomed.hpp"
#include "defenses/krum.hpp"
#include "defenses/median.hpp"
#include "defenses/norm_threshold.hpp"
#include "defenses/trimmed_mean.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fedguard::defenses {
namespace {

ClientUpdate make_update(int id, std::vector<float> psi, std::size_t samples = 1,
                         bool malicious = false) {
  ClientUpdate update;
  update.client_id = id;
  update.psi = std::move(psi);
  update.num_samples = samples;
  update.truly_malicious = malicious;
  return update;
}

AggregationContext context_for(std::span<const float> global) {
  AggregationContext context;
  context.global_parameters = global;
  return context;
}

const std::vector<float> kZeroGlobal3{0.0f, 0.0f, 0.0f};

TEST(FedAvg, UnweightedMeanWithEqualSamples) {
  std::vector<ClientUpdate> updates;
  updates.push_back(make_update(0, {1.0f, 2.0f}, 10));
  updates.push_back(make_update(1, {3.0f, 4.0f}, 10));
  FedAvgAggregator fedavg;
  const auto result = fedavg.aggregate(context_for({}), updates);
  EXPECT_FLOAT_EQ(result.parameters[0], 2.0f);
  EXPECT_FLOAT_EQ(result.parameters[1], 3.0f);
  EXPECT_EQ(result.accepted_clients.size(), 2u);
  EXPECT_TRUE(result.rejected_clients.empty());
}

TEST(FedAvg, SampleCountWeighting) {
  std::vector<ClientUpdate> updates;
  updates.push_back(make_update(0, {0.0f}, 30));
  updates.push_back(make_update(1, {4.0f}, 10));
  FedAvgAggregator fedavg;
  const auto result = fedavg.aggregate(context_for({}), updates);
  EXPECT_FLOAT_EQ(result.parameters[0], 1.0f);  // (30*0 + 10*4)/40
}

TEST(FedAvg, ZeroWeightsFallBackToUnweighted) {
  std::vector<ClientUpdate> updates;
  updates.push_back(make_update(0, {2.0f}, 0));
  updates.push_back(make_update(1, {4.0f}, 0));
  FedAvgAggregator fedavg;
  EXPECT_FLOAT_EQ(fedavg.aggregate(context_for({}), updates).parameters[0], 3.0f);
}

TEST(Aggregation, ValidationErrors) {
  FedAvgAggregator fedavg;
  std::vector<ClientUpdate> empty;
  EXPECT_THROW((void)fedavg.aggregate(context_for({}), empty), std::invalid_argument);
  std::vector<ClientUpdate> mismatched;
  mismatched.push_back(make_update(0, {1.0f, 2.0f}));
  mismatched.push_back(make_update(1, {1.0f}));
  EXPECT_THROW((void)fedavg.aggregate(context_for({}), mismatched), std::invalid_argument);
}

TEST(GeoMed, MatchesMedianInOneDimension) {
  // In 1-D the geometric median is the ordinary median.
  const std::vector<float> points{1.0f, 2.0f, 100.0f};
  const std::vector<float> result = geometric_median(points, 3, 1, 200, 1e-9);
  EXPECT_NEAR(result[0], 2.0f, 0.05f);
}

TEST(GeoMed, RobustToMinorityOutlier) {
  // 4 benign points near the origin, 1 gross outlier: the geometric median
  // stays near the benign cluster while the mean is dragged away.
  std::vector<ClientUpdate> updates;
  updates.push_back(make_update(0, {0.1f, 0.0f}));
  updates.push_back(make_update(1, {-0.1f, 0.1f}));
  updates.push_back(make_update(2, {0.0f, -0.1f}));
  updates.push_back(make_update(3, {0.05f, 0.05f}));
  updates.push_back(make_update(4, {1000.0f, 1000.0f}, 1, true));
  GeoMedAggregator geomed;
  const auto result = geomed.aggregate(context_for({}), updates);
  EXPECT_LT(util::l2_norm(result.parameters), 1.0);
}

TEST(GeoMed, MinimizesDistanceSumBetterThanMean) {
  util::Rng rng{1};
  const std::size_t count = 9, dim = 5;
  std::vector<float> points(count * dim);
  for (auto& v : points) v = rng.uniform_float(-2.0f, 2.0f);
  const std::vector<float> median = geometric_median(points, count, dim);

  std::vector<float> mean(dim, 0.0f);
  for (std::size_t k = 0; k < count; ++k) {
    for (std::size_t i = 0; i < dim; ++i) mean[i] += points[k * dim + i];
  }
  for (auto& v : mean) v /= static_cast<float>(count);

  auto distance_sum = [&](std::span<const float> center) {
    double total = 0.0;
    for (std::size_t k = 0; k < count; ++k) {
      total += util::l2_distance({points.data() + k * dim, dim}, center);
    }
    return total;
  };
  EXPECT_LE(distance_sum(median), distance_sum(mean) + 1e-6);
}

TEST(GeoMed, ExactAtSamplePoint) {
  // Majority of identical points: median is that point.
  std::vector<float> points{1.0f, 1.0f, 1.0f, 1.0f, 9.0f, 9.0f};  // 3x(1,?) ...
  const std::vector<float> result = geometric_median(points, 3, 2);
  EXPECT_NEAR(result[0], 1.0f, 0.2f);
}

TEST(Krum, ScoresFavorClusterCore) {
  // 5 points: 4 clustered, 1 far away; the outlier must get the worst score.
  std::vector<float> points{0.0f, 0.1f, -0.1f, 0.05f, 50.0f};
  const std::vector<double> scores = krum_scores(points, 5, 1, 1);
  const std::size_t worst =
      static_cast<std::size_t>(std::max_element(scores.begin(), scores.end()) -
                               scores.begin());
  EXPECT_EQ(worst, 4u);
}

TEST(Krum, SelectsBenignUpdateUnderMinorityAttack) {
  std::vector<ClientUpdate> updates;
  updates.push_back(make_update(0, {1.0f, 1.0f}));
  updates.push_back(make_update(1, {1.1f, 0.9f}));
  updates.push_back(make_update(2, {0.9f, 1.1f}));
  updates.push_back(make_update(3, {1.05f, 1.0f}));
  updates.push_back(make_update(4, {-30.0f, 40.0f}, 1, true));
  KrumAggregator krum{0.25, 1};
  const auto result = krum.aggregate(context_for({}), updates);
  // Selected vector is one of the benign cluster members.
  EXPECT_NEAR(result.parameters[0], 1.0f, 0.2f);
  EXPECT_NEAR(result.parameters[1], 1.0f, 0.2f);
  ASSERT_EQ(result.accepted_clients.size(), 1u);
  EXPECT_NE(result.accepted_clients[0], 4);
  EXPECT_EQ(result.rejected_clients.size(), 4u);
}

TEST(MultiKrum, AveragesKBest) {
  std::vector<ClientUpdate> updates;
  updates.push_back(make_update(0, {1.0f}));
  updates.push_back(make_update(1, {1.2f}));
  updates.push_back(make_update(2, {0.8f}));
  updates.push_back(make_update(3, {100.0f}, 1, true));
  KrumAggregator multi_krum{0.25, 3};
  const auto result = multi_krum.aggregate(context_for({}), updates);
  EXPECT_NEAR(result.parameters[0], 1.0f, 0.15f);
  EXPECT_EQ(result.accepted_clients.size(), 3u);
}

TEST(Krum, HandlesTinyCohorts) {
  std::vector<ClientUpdate> updates;
  updates.push_back(make_update(0, {1.0f}));
  updates.push_back(make_update(1, {2.0f}));
  KrumAggregator krum{0.5, 1};
  EXPECT_NO_THROW((void)krum.aggregate(context_for({}), updates));
}

TEST(CoordinateMedian, OddAndEvenCounts) {
  const std::vector<float> odd{1.0f, 10.0f, 2.0f, 20.0f, 3.0f, 30.0f};  // 3 points, dim 2
  const std::vector<float> result = coordinate_median(odd, 3, 2);
  EXPECT_FLOAT_EQ(result[0], 2.0f);
  EXPECT_FLOAT_EQ(result[1], 20.0f);

  const std::vector<float> even{1.0f, 2.0f, 3.0f, 4.0f};  // 4 points, dim 1
  EXPECT_FLOAT_EQ(coordinate_median(even, 4, 1)[0], 2.5f);
}

TEST(CoordinateMedian, RobustToMinorityExtremes) {
  std::vector<ClientUpdate> updates;
  updates.push_back(make_update(0, {0.0f}));
  updates.push_back(make_update(1, {0.1f}));
  updates.push_back(make_update(2, {-0.1f}));
  updates.push_back(make_update(3, {1e6f}, 1, true));
  CoordinateMedianAggregator median;
  EXPECT_NEAR(median.aggregate(context_for({}), updates).parameters[0], 0.05f, 0.06f);
}

TEST(TrimmedMean, DropsExtremesSymmetrically) {
  const std::vector<float> points{-100.0f, 1.0f, 2.0f, 3.0f, 100.0f};
  EXPECT_FLOAT_EQ(trimmed_mean(points, 5, 1, 0.2)[0], 2.0f);
}

TEST(TrimmedMean, ZeroTrimIsMean) {
  const std::vector<float> points{1.0f, 2.0f, 3.0f};
  EXPECT_FLOAT_EQ(trimmed_mean(points, 3, 1, 0.0)[0], 2.0f);
}

TEST(TrimmedMean, InvalidFractionRejected) {
  EXPECT_THROW((void)TrimmedMeanAggregator(0.5), std::invalid_argument);
  EXPECT_THROW((void)TrimmedMeanAggregator(-0.1), std::invalid_argument);
}

TEST(NormThreshold, ClipsOversizedDeltas) {
  // Global at origin. 3 unit-norm benign deltas + 1 huge delta: the huge one
  // is scaled to the median norm, so the aggregate stays bounded.
  std::vector<ClientUpdate> updates;
  updates.push_back(make_update(0, {1.0f, 0.0f, 0.0f}));
  updates.push_back(make_update(1, {0.0f, 1.0f, 0.0f}));
  updates.push_back(make_update(2, {0.0f, 0.0f, 1.0f}));
  updates.push_back(make_update(3, {1000.0f, 0.0f, 0.0f}, 1, true));
  NormThresholdAggregator aggregator;
  const auto result = aggregator.aggregate(context_for(kZeroGlobal3), updates);
  EXPECT_LT(util::l2_norm(result.parameters), 1.0);
}

TEST(NormThreshold, SignFlipDefeatsIt) {
  // The paper's point: sign flips preserve norms, so the defense cannot
  // tell them apart and the poisoned mean survives.
  std::vector<ClientUpdate> updates;
  updates.push_back(make_update(0, {1.0f, 1.0f, 1.0f}));
  updates.push_back(make_update(1, {-1.0f, -1.0f, -1.0f}, 1, true));
  NormThresholdAggregator aggregator;
  const auto result = aggregator.aggregate(context_for(kZeroGlobal3), updates);
  EXPECT_NEAR(result.parameters[0], 0.0f, 1e-5f);  // attack cancelled the signal
}

TEST(DetectionStats, ConfusionMatrix) {
  std::vector<ClientUpdate> updates;
  updates.push_back(make_update(0, {1.0f}, 1, true));    // rejected -> TP
  updates.push_back(make_update(1, {1.0f}, 1, true));    // accepted -> FN
  updates.push_back(make_update(2, {1.0f}, 1, false));   // rejected -> FP
  updates.push_back(make_update(3, {1.0f}, 1, false));   // accepted -> TN
  AggregationResult result;
  result.rejected_clients = {0, 2};
  result.accepted_clients = {1, 3};
  const DetectionStats stats = compute_detection_stats(updates, result);
  EXPECT_EQ(stats.true_positives, 1u);
  EXPECT_EQ(stats.false_negatives, 1u);
  EXPECT_EQ(stats.false_positives, 1u);
  EXPECT_EQ(stats.true_negatives, 1u);
}

// ---- Property sweeps: invariances every aggregation operator must satisfy ----

enum class Op { FedAvg, GeoMed, Krum, Median, TrimmedMean };

std::unique_ptr<AggregationStrategy> make_op(Op op) {
  switch (op) {
    case Op::FedAvg: return std::make_unique<FedAvgAggregator>();
    case Op::GeoMed: return std::make_unique<GeoMedAggregator>();
    case Op::Krum: return std::make_unique<KrumAggregator>(0.25, 1);
    case Op::Median: return std::make_unique<CoordinateMedianAggregator>();
    case Op::TrimmedMean: return std::make_unique<TrimmedMeanAggregator>(0.2);
  }
  return nullptr;
}

class AggregatorProperties : public ::testing::TestWithParam<Op> {};

TEST_P(AggregatorProperties, PermutationInvariant) {
  util::Rng rng{77};
  std::vector<ClientUpdate> updates;
  for (int k = 0; k < 7; ++k) {
    std::vector<float> psi(6);
    for (auto& v : psi) v = rng.uniform_float(-1.0f, 1.0f);
    updates.push_back(make_update(k, std::move(psi)));
  }
  auto strategy = make_op(GetParam());
  const std::vector<float> global(6, 0.0f);
  const auto forward = strategy->aggregate(context_for(global), updates);
  std::reverse(updates.begin(), updates.end());
  const auto reversed = strategy->aggregate(context_for(global), updates);
  for (std::size_t i = 0; i < forward.parameters.size(); ++i) {
    EXPECT_NEAR(forward.parameters[i], reversed.parameters[i], 1e-4f);
  }
}

TEST_P(AggregatorProperties, IdenticalUpdatesReturnThatUpdate) {
  std::vector<ClientUpdate> updates;
  const std::vector<float> psi{0.5f, -1.5f, 2.0f};
  for (int k = 0; k < 5; ++k) updates.push_back(make_update(k, psi));
  auto strategy = make_op(GetParam());
  const std::vector<float> global(3, 0.0f);
  const auto result = strategy->aggregate(context_for(global), updates);
  for (std::size_t i = 0; i < psi.size(); ++i) {
    EXPECT_NEAR(result.parameters[i], psi[i], 1e-4f);
  }
}

TEST_P(AggregatorProperties, TranslationEquivariant) {
  util::Rng rng{78};
  std::vector<ClientUpdate> updates;
  for (int k = 0; k < 6; ++k) {
    std::vector<float> psi(4);
    for (auto& v : psi) v = rng.uniform_float(-1.0f, 1.0f);
    updates.push_back(make_update(k, std::move(psi)));
  }
  auto strategy = make_op(GetParam());
  const std::vector<float> global(4, 0.0f);
  const auto base = strategy->aggregate(context_for(global), updates);

  const float shift = 2.5f;
  for (auto& update : updates) {
    for (auto& v : update.psi) v += shift;
  }
  const auto shifted = strategy->aggregate(context_for(global), updates);
  for (std::size_t i = 0; i < base.parameters.size(); ++i) {
    EXPECT_NEAR(shifted.parameters[i], base.parameters[i] + shift, 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, AggregatorProperties,
                         ::testing::Values(Op::FedAvg, Op::GeoMed, Op::Krum, Op::Median,
                                           Op::TrimmedMean));

// ---- Zero-copy view API edge cases ------------------------------------------

UpdateMatrix arena_from(std::span<const ClientUpdate> updates) {
  UpdateMatrix arena;
  fill_update_matrix(arena, updates);
  return arena;
}

TEST(UpdateViewApi, MeanOfEmptySelectionThrows) {
  std::vector<ClientUpdate> updates;
  updates.push_back(make_update(0, {1.0f, 2.0f}));
  const UpdateMatrix arena = arena_from(updates);
  const UpdateView view{arena};
  EXPECT_THROW((void)mean_of(view, {}), std::invalid_argument);
}

TEST(UpdateViewApi, WeightedMeanZeroSamplesFallsBackToUnweighted) {
  std::vector<ClientUpdate> updates;
  updates.push_back(make_update(0, {2.0f}, 0));
  updates.push_back(make_update(1, {4.0f}, 0));
  const UpdateMatrix arena = arena_from(updates);
  const std::vector<float> mean = weighted_mean(UpdateView{arena});
  EXPECT_FLOAT_EQ(mean[0], 3.0f);
}

TEST(UpdateViewApi, SingleRowSelectionReturnsThatRow) {
  std::vector<ClientUpdate> updates;
  updates.push_back(make_update(0, {1.0f, -1.0f}, 3));
  updates.push_back(make_update(1, {7.0f, 9.0f}, 5));
  updates.push_back(make_update(2, {-4.0f, 2.0f}, 8));
  const UpdateMatrix arena = arena_from(updates);
  const UpdateView view{arena};

  const std::vector<std::size_t> only{1};
  const std::vector<float> picked = mean_of(view, only);
  EXPECT_FLOAT_EQ(picked[0], 7.0f);
  EXPECT_FLOAT_EQ(picked[1], 9.0f);

  // Sub-view selection keeps metadata and psi aligned with the arena row.
  std::vector<std::size_t> storage;
  const UpdateView sub = view.select(only, storage);
  ASSERT_EQ(sub.count(), 1u);
  EXPECT_EQ(sub.meta(0).client_id, 1);
  EXPECT_EQ(sub.meta(0).num_samples, 5u);
  EXPECT_FLOAT_EQ(weighted_mean(sub)[1], 9.0f);
}

TEST(UpdateViewApi, ComposedSelectionIndexesThroughParentView) {
  // A selection of a selection must resolve to the original arena rows.
  std::vector<ClientUpdate> updates;
  for (int k = 0; k < 5; ++k) {
    updates.push_back(make_update(k, {static_cast<float>(k), 0.0f}, 1));
  }
  const UpdateMatrix arena = arena_from(updates);
  const UpdateView view{arena};
  std::vector<std::size_t> outer_storage;
  const std::vector<std::size_t> outer{4, 2, 0};  // arena rows 4, 2, 0
  const UpdateView first = view.select(outer, outer_storage);
  std::vector<std::size_t> inner_storage;
  const std::vector<std::size_t> inner{1, 2};  // slots of `first` -> rows 2, 0
  const UpdateView second = first.select(inner, inner_storage);
  ASSERT_EQ(second.count(), 2u);
  EXPECT_EQ(second.meta(0).client_id, 2);
  EXPECT_EQ(second.meta(1).client_id, 0);
  EXPECT_FLOAT_EQ(second.psi(0)[0], 2.0f);
  EXPECT_FLOAT_EQ(second.psi(1)[0], 0.0f);
}

TEST(UpdateViewApi, MeanOfIteratesSelectionOrder) {
  // mean_of must accumulate in the caller-given order (Krum passes its
  // score-sorted order; bit-for-bit parity depends on it). With doubles the
  // sum is order-sensitive only through rounding, so instead verify the
  // selection indirection itself by selecting the same row twice.
  std::vector<ClientUpdate> updates;
  updates.push_back(make_update(0, {1.0f}, 1));
  updates.push_back(make_update(1, {4.0f}, 1));
  const UpdateMatrix arena = arena_from(updates);
  const UpdateView view{arena};
  const std::vector<std::size_t> twice{1, 1};
  EXPECT_FLOAT_EQ(mean_of(view, twice)[0], 4.0f);
  const std::vector<std::size_t> both{1, 0};
  EXPECT_FLOAT_EQ(mean_of(view, both)[0], 2.5f);
}

}  // namespace
}  // namespace fedguard::defenses
