#include "core/config_file.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/runner.hpp"

namespace fedguard::core {
namespace {

class ConfigFileTest : public ::testing::Test {
 protected:
  std::string write_file(const std::string& contents) {
    path_ = "/tmp/fedguard_config_test.conf";
    std::ofstream file{path_};
    file << contents;
    return path_;
  }

  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }

  std::string path_;
};

TEST_F(ConfigFileTest, ParsesKeyValuesCommentsAndBlankLines) {
  const auto values = parse_config_file(write_file(
      "# full-line comment\n"
      "strategy = fedguard\n"
      "\n"
      "rounds = 20   # trailing comment\n"
      "  malicious_fraction=0.5  \n"));
  EXPECT_EQ(values.size(), 3u);
  EXPECT_EQ(values.at("strategy"), "fedguard");
  EXPECT_EQ(values.at("rounds"), "20");
  EXPECT_EQ(values.at("malicious_fraction"), "0.5");
}

TEST_F(ConfigFileTest, MalformedLineThrows) {
  EXPECT_THROW((void)parse_config_file(write_file("this is not a key value pair\n")),
               std::runtime_error);
}

TEST_F(ConfigFileTest, MissingFileThrows) {
  EXPECT_THROW((void)parse_config_file("/no/such/file.conf"), std::runtime_error);
}

TEST_F(ConfigFileTest, AppliesEveryFieldKind) {
  const ExperimentConfig config = load_experiment_config(write_file(
      "scale = small\n"
      "strategy = geomed\n"
      "attack = label_flip\n"
      "malicious_fraction = 0.3\n"
      "rounds = 7\n"
      "num_clients = 18\n"
      "clients_per_round = 9\n"
      "server_learning_rate = 0.3\n"
      "local_epochs = 4\n"
      "learning_rate = 0.02\n"
      "proximal_mu = 0.1\n"
      "cvae_epochs = 25\n"
      "cvae_latent = 4\n"
      "arch = tiny_cnn\n"
      "fedguard_internal_operator = geomed\n"
      "track_per_class_accuracy = true\n"
      "straggler_probability = 0.25\n"
      "seed = 99\n"));
  EXPECT_EQ(config.strategy, StrategyKind::GeoMed);
  EXPECT_EQ(config.attack, attacks::AttackType::LabelFlip);
  EXPECT_DOUBLE_EQ(config.malicious_fraction, 0.3);
  EXPECT_EQ(config.rounds, 7u);
  EXPECT_EQ(config.num_clients, 18u);
  EXPECT_EQ(config.clients_per_round, 9u);
  EXPECT_FLOAT_EQ(config.server_learning_rate, 0.3f);
  EXPECT_EQ(config.client.local_epochs, 4u);
  EXPECT_FLOAT_EQ(config.client.learning_rate, 0.02f);
  EXPECT_FLOAT_EQ(config.client.proximal_mu, 0.1f);
  EXPECT_EQ(config.client.cvae_epochs, 25u);
  EXPECT_EQ(config.cvae.latent, 4u);
  EXPECT_EQ(config.arch, models::ClassifierArch::TinyCnn);
  EXPECT_EQ(config.fedguard_internal_operator, defenses::InternalOperator::GeoMed);
  EXPECT_TRUE(config.track_per_class_accuracy);
  EXPECT_DOUBLE_EQ(config.straggler_probability, 0.25);
  EXPECT_EQ(config.seed, 99u);
}

TEST_F(ConfigFileTest, PaperScaleSelectable) {
  const ExperimentConfig config =
      load_experiment_config(write_file("scale = paper\nrounds = 5\n"));
  EXPECT_EQ(config.num_clients, 100u);              // from the paper preset
  EXPECT_EQ(config.rounds, 5u);                     // overridden
  EXPECT_EQ(config.arch, models::ClassifierArch::PaperCnn);
}

TEST_F(ConfigFileTest, KernelKeysApply) {
  const ExperimentConfig config = load_experiment_config(
      write_file("kernel_threads = 2\n"
                 "kernel_gemm_min_flops = 4096\n"
                 "kernel_elementwise_min = 8192\n"
                 "kernel_distance_min = 512\n"));
  EXPECT_EQ(config.kernel.threads, 2u);
  EXPECT_EQ(config.kernel.gemm_min_flops, 4096u);
  EXPECT_EQ(config.kernel.elementwise_min_size, 8192u);
  EXPECT_EQ(config.kernel.distance_min_elements, 512u);
  EXPECT_THROW((void)load_experiment_config(write_file("kernel_threads = -1\n")),
               std::invalid_argument);
}

TEST_F(ConfigFileTest, RemoteAndFaultKeysApply) {
  const ExperimentConfig config = load_experiment_config(
      write_file("remote_accept_timeout_ms = 1500\n"
                 "remote_round_timeout_ms = 2500\n"
                 "remote_min_clients = 3\n"
                 "remote_eject_after_failures = 5\n"
                 "fault_seed = 77\n"
                 "fault_drop_probability = 0.25\n"
                 "fault_delay_probability = 0.1\n"
                 "fault_delay_ms = 40\n"
                 "fault_truncate_probability = 0.05\n"
                 "fault_bit_flip_probability = 0.02\n"
                 "fault_disconnect_probability = 0.03\n"
                 "fault_never_connect_probability = 0.01\n"));
  EXPECT_EQ(config.remote_accept_timeout_ms, 1500u);
  EXPECT_EQ(config.remote_round_timeout_ms, 2500u);
  EXPECT_EQ(config.remote_min_clients, 3u);
  EXPECT_EQ(config.remote_eject_after_failures, 5u);
  EXPECT_EQ(config.fault_plan.seed, 77u);
  EXPECT_DOUBLE_EQ(config.fault_plan.drop_probability, 0.25);
  EXPECT_DOUBLE_EQ(config.fault_plan.delay_probability, 0.1);
  EXPECT_EQ(config.fault_plan.delay_ms, 40u);
  EXPECT_DOUBLE_EQ(config.fault_plan.truncate_probability, 0.05);
  EXPECT_DOUBLE_EQ(config.fault_plan.bit_flip_probability, 0.02);
  EXPECT_DOUBLE_EQ(config.fault_plan.disconnect_probability, 0.03);
  EXPECT_DOUBLE_EQ(config.fault_plan.never_connect_probability, 0.01);
  EXPECT_TRUE(config.fault_plan.any());
  EXPECT_FALSE(ExperimentConfig{}.fault_plan.any());
}

TEST_F(ConfigFileTest, RemoteServerConfigMapsFromExperiment) {
  ExperimentConfig config;
  config.num_clients = 6;
  config.clients_per_round = 3;
  config.rounds = 9;
  config.seed = 11;
  config.remote_accept_timeout_ms = 750;
  config.remote_round_timeout_ms = 1234;
  config.remote_min_clients = 2;
  config.remote_eject_after_failures = 4;
  const net::RemoteServerConfig remote = remote_server_config(config, 7700);
  EXPECT_EQ(remote.port, 7700);
  EXPECT_EQ(remote.expected_clients, 6u);
  EXPECT_EQ(remote.clients_per_round, 3u);
  EXPECT_EQ(remote.rounds, 9u);
  EXPECT_EQ(remote.accept_timeout_ms, 750u);
  EXPECT_EQ(remote.round_timeout_ms, 1234u);
  EXPECT_EQ(remote.min_clients, 2u);
  EXPECT_EQ(remote.eject_after_failures, 4u);
  EXPECT_EQ(remote.seed, 11u ^ 0x5e12e5ULL);
}

TEST_F(ConfigFileTest, UnknownKeyRejected) {
  EXPECT_THROW((void)load_experiment_config(write_file("no_such_knob = 1\n")),
               std::invalid_argument);
}

TEST_F(ConfigFileTest, BadValuesRejected) {
  EXPECT_THROW((void)load_experiment_config(write_file("rounds = banana\n")),
               std::invalid_argument);
  EXPECT_THROW((void)load_experiment_config(write_file("track_per_class_accuracy = maybe\n")),
               std::invalid_argument);
  EXPECT_THROW((void)load_experiment_config(write_file("scale = huge\n")),
               std::invalid_argument);
  EXPECT_THROW((void)load_experiment_config(write_file("strategy = winning\n")),
               std::invalid_argument);
}

TEST_F(ConfigFileTest, RepositoryDescriptorsLoad) {
  // The checked-in example descriptors must stay valid.
  for (const char* path : {"configs/signflip50_fedguard.conf",
                           "configs/labelflip40_server_lr.conf",
                           "configs/paper_full.conf"}) {
    std::ifstream probe{path};
    if (!probe) GTEST_SKIP() << "run from the repository root to check descriptors";
    EXPECT_NO_THROW((void)load_experiment_config(path)) << path;
  }
}

}  // namespace
}  // namespace fedguard::core
