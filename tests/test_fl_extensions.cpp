// Tests of the FL simulator extensions: per-class accuracy tracking,
// straggler simulation, and FedProx wiring through the client config.

#include <gtest/gtest.h>

#include <numeric>

#include "core/runner.hpp"
#include "data/partition.hpp"
#include "data/synthetic_mnist.hpp"
#include "defenses/fedavg.hpp"
#include "fl/server.hpp"
#include "util/logging.hpp"

namespace fedguard::fl {
namespace {

struct ExtensionFixture : ::testing::Test {
  static void SetUpTestSuite() { util::set_log_level(util::LogLevel::Warn); }

  void SetUp() override {
    geometry = models::ImageGeometry{1, 28, 28, 10};
    train = data::generate_synthetic_mnist(300, 501);
    test = data::generate_synthetic_mnist(120, 502);
    const data::Partition partition = data::iid_partition(train.size(), 6, 503);
    ClientConfig client_config;
    client_config.local_epochs = 1;
    client_config.batch_size = 16;
    client_config.train_cvae = false;
    models::CvaeSpec cvae;
    cvae.hidden = 32;
    cvae.latent = 2;
    for (std::size_t i = 0; i < 6; ++i) {
      clients.push_back(std::make_unique<Client>(
          static_cast<int>(i), train, partition[i], client_config,
          models::ClassifierArch::Mlp, geometry, cvae, 504 + i));
    }
  }

  models::ImageGeometry geometry;
  data::Dataset train;
  data::Dataset test;
  std::vector<std::unique_ptr<Client>> clients;
};

TEST_F(ExtensionFixture, PerClassTrackingRecordsTenRecalls) {
  ServerConfig config;
  config.clients_per_round = 4;
  config.rounds = 2;
  config.seed = 505;
  config.track_per_class_accuracy = true;
  defenses::FedAvgAggregator strategy;
  Server server{config, clients, strategy, test, models::ClassifierArch::Mlp, geometry};
  const RoundRecord record = server.run_round(0);
  ASSERT_EQ(record.per_class_accuracy.size(), 10u);
  for (const double recall : record.per_class_accuracy) {
    EXPECT_GE(recall, 0.0);
    EXPECT_LE(recall, 1.0);
  }
  // Mean of per-class recalls should roughly track overall accuracy for a
  // near-balanced test set.
  double mean_recall = 0.0;
  for (const double recall : record.per_class_accuracy) mean_recall += recall / 10.0;
  EXPECT_NEAR(mean_recall, record.test_accuracy, 0.15);
}

TEST_F(ExtensionFixture, PerClassTrackingOffByDefault) {
  ServerConfig config;
  config.clients_per_round = 4;
  config.rounds = 1;
  config.seed = 506;
  defenses::FedAvgAggregator strategy;
  Server server{config, clients, strategy, test, models::ClassifierArch::Mlp, geometry};
  EXPECT_TRUE(server.run_round(0).per_class_accuracy.empty());
}

TEST_F(ExtensionFixture, StragglersReduceTrafficAndParticipation) {
  ServerConfig config;
  config.clients_per_round = 6;
  config.rounds = 1;
  config.seed = 507;
  config.straggler_probability = 0.5;
  defenses::FedAvgAggregator strategy;
  Server server{config, clients, strategy, test, models::ClassifierArch::Mlp, geometry};

  // Across several rounds, some stragglers must occur and traffic must scale
  // with responders only.
  std::size_t total_stragglers = 0;
  for (std::size_t round = 0; round < 6; ++round) {
    const RoundRecord record = server.run_round(round);
    total_stragglers += record.stragglers;
    const std::size_t responders = record.sampled_clients - record.stragglers;
    if (responders > 0) {
      EXPECT_EQ(record.server_upload_bytes % responders, 0u);
      EXPECT_GT(record.server_upload_bytes, 0u);
    } else {
      EXPECT_EQ(record.server_upload_bytes, 0u);
    }
  }
  EXPECT_GT(total_stragglers, 0u);
}

TEST_F(ExtensionFixture, AllStragglersLeaveModelUnchanged) {
  ServerConfig config;
  config.clients_per_round = 4;
  config.rounds = 1;
  config.seed = 508;
  config.straggler_probability = 1.0;
  defenses::FedAvgAggregator strategy;
  Server server{config, clients, strategy, test, models::ClassifierArch::Mlp, geometry};
  const std::vector<float> before{server.global_parameters().begin(),
                                  server.global_parameters().end()};
  const RoundRecord record = server.run_round(0);
  EXPECT_EQ(record.stragglers, 4u);
  const std::vector<float> after{server.global_parameters().begin(),
                                 server.global_parameters().end()};
  EXPECT_EQ(before, after);
  EXPECT_EQ(record.server_download_bytes, 0u);
}

}  // namespace
}  // namespace fedguard::fl

namespace fedguard::core {
namespace {

TEST(RunnerExtensions, FedProxThroughConfigConverges) {
  util::set_log_level(util::LogLevel::Warn);
  ExperimentConfig config = ExperimentConfig::small_scale();
  config.train_samples = 600;
  config.test_samples = 150;
  config.num_clients = 6;
  config.clients_per_round = 4;
  config.rounds = 5;
  config.strategy = StrategyKind::FedAvg;
  config.client.proximal_mu = 0.1f;
  const fl::RunHistory history = run_experiment(config);
  EXPECT_GT(history.rounds.back().test_accuracy, 0.6);
}

TEST(RunnerExtensions, StragglerConfigPropagates) {
  util::set_log_level(util::LogLevel::Warn);
  ExperimentConfig config = ExperimentConfig::small_scale();
  config.train_samples = 400;
  config.test_samples = 100;
  config.num_clients = 6;
  config.clients_per_round = 6;
  config.rounds = 4;
  config.strategy = StrategyKind::FedAvg;
  config.straggler_probability = 0.5;
  const fl::RunHistory history = run_experiment(config);
  std::size_t stragglers = 0;
  for (const auto& round : history.rounds) stragglers += round.stragglers;
  EXPECT_GT(stragglers, 0u);
}

TEST(RunnerExtensions, BulyanAndAuxAuditRunEndToEnd) {
  util::set_log_level(util::LogLevel::Warn);
  for (const auto kind : {StrategyKind::Bulyan, StrategyKind::AuxAudit}) {
    ExperimentConfig config = ExperimentConfig::small_scale();
    config.train_samples = 600;
    config.test_samples = 150;
    config.num_clients = 8;
    config.clients_per_round = 6;
    config.rounds = 5;
    config.strategy = kind;
    config.attack = attacks::AttackType::SameValue;
    config.malicious_fraction = 0.25;
    const fl::RunHistory history = run_experiment(config);
    EXPECT_GT(history.rounds.back().test_accuracy, 0.55) << to_string(kind);
  }
}

TEST(RunnerExtensions, FedGuardDefendsScalingAttack) {
  util::set_log_level(util::LogLevel::Warn);
  ExperimentConfig config = ExperimentConfig::small_scale();
  config.train_samples = 800;
  config.test_samples = 150;
  config.num_clients = 8;
  config.clients_per_round = 6;
  config.rounds = 6;
  config.strategy = StrategyKind::FedGuard;
  config.attack = attacks::AttackType::Scaling;
  config.scaling_boost = 10.0f;
  config.malicious_fraction = 0.25;
  const fl::RunHistory history = run_experiment(config);
  EXPECT_GT(history.trailing_accuracy(3).mean, 0.7);
  EXPECT_GT(history.true_positive_rate(), 0.5);
}

TEST(RunnerExtensions, FedAvgCollapsesUnderRandomUpdateAttack) {
  util::set_log_level(util::LogLevel::Warn);
  ExperimentConfig config = ExperimentConfig::small_scale();
  config.train_samples = 600;
  config.test_samples = 150;
  config.num_clients = 8;
  config.clients_per_round = 6;
  config.rounds = 5;
  config.strategy = StrategyKind::FedAvg;
  config.attack = attacks::AttackType::RandomUpdate;
  config.malicious_fraction = 0.5;
  const fl::RunHistory history = run_experiment(config);
  EXPECT_LT(history.trailing_accuracy(3).mean, 0.6);
}

TEST(RunnerExtensions, BalancedScoreMetricRuns) {
  util::set_log_level(util::LogLevel::Warn);
  ExperimentConfig config = ExperimentConfig::small_scale();
  config.train_samples = 800;
  config.test_samples = 150;
  config.num_clients = 8;
  config.clients_per_round = 6;
  config.rounds = 5;
  config.strategy = StrategyKind::FedGuard;
  config.fedguard_score_metric = defenses::FedGuardConfig::ScoreMetric::Balanced;
  config.attack = attacks::AttackType::LabelFlip;
  config.malicious_fraction = 0.3;
  const fl::RunHistory history = run_experiment(config);
  EXPECT_GT(history.trailing_accuracy(3).mean, 0.6);
}

TEST(RunnerExtensions, AuxAuditDefendsMajoritySameValue) {
  // The idealized PDGAN-style audit on real auxiliary data should match
  // FedGuard's behaviour on this attack (it is FedGuard's upper bound).
  util::set_log_level(util::LogLevel::Warn);
  ExperimentConfig config = ExperimentConfig::small_scale();
  config.train_samples = 800;
  config.test_samples = 150;
  config.num_clients = 8;
  config.clients_per_round = 6;
  config.rounds = 6;
  config.strategy = StrategyKind::AuxAudit;
  config.attack = attacks::AttackType::SameValue;
  config.malicious_fraction = 0.5;
  const fl::RunHistory history = run_experiment(config);
  EXPECT_GT(history.trailing_accuracy(3).mean, 0.7);
  EXPECT_GT(history.true_positive_rate(), 0.9);
}

}  // namespace
}  // namespace fedguard::core
