// Quantized ψ wire format (q8 / fp16): round-trip properties of the codec
// primitives in util/serialize, codec negotiation at the net::message layer,
// the NaN-laundering guarantee at the aggregation boundary, and two
// science-level checks — Krum still ejects attackers when honest uploads are
// q8-quantized, and a seeded smoke federation's accuracy drifts < 0.5 pp
// between fp32 and q8 transport.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <vector>

#include "core/runner.hpp"
#include "defenses/fedavg.hpp"
#include "defenses/krum.hpp"
#include "net/message.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace fedguard {
namespace {

using util::ByteReader;
using util::ByteWriter;
using util::WireCodec;

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

std::vector<float> random_values(std::size_t n, util::Rng& rng, float lo = -4.0f,
                                 float hi = 4.0f) {
  std::vector<float> values(n);
  for (auto& v : values) v = rng.uniform_float(lo, hi);
  return values;
}

/// Encode with write_q8_span, check the exact wire size, decode with
/// read_q8_into, and require the reader to land exactly at the end.
std::vector<float> q8_wire_roundtrip(std::span<const float> values, std::size_t chunk) {
  ByteWriter writer;
  writer.write_q8_span(values, chunk);
  EXPECT_EQ(writer.size(), util::q8_span_wire_size(values.size(), chunk));
  ByteReader reader{writer.bytes()};
  EXPECT_EQ(reader.read_u64(), values.size());
  std::vector<float> decoded(values.size());
  reader.read_q8_into(decoded);
  EXPECT_TRUE(reader.exhausted());
  return decoded;
}

/// Independent restatement of the encoder's scale contract: the per-chunk
/// scale is (max - min) / 255 computed in double, cast to float, and nudged
/// up until scale * 255 covers the range (so the top of the range never
/// clamps and the dequantization error stays <= scale / 2).
float expected_chunk_scale(std::span<const float> chunk) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const float v : chunk) {
    if (!std::isfinite(v)) return kNan;
    lo = std::min(lo, static_cast<double>(v));
    hi = std::max(hi, static_cast<double>(v));
  }
  if (chunk.empty() || hi == lo) return 0.0f;
  float scale = static_cast<float>((hi - lo) / 255.0);
  while (static_cast<double>(scale) * 255.0 < hi - lo) {
    scale = std::nextafter(scale, std::numeric_limits<float>::infinity());
  }
  return scale;
}

/// |decoded - original| <= scale / 2 for every element, chunk by chunk (plus
/// a relative-epsilon allowance for the final double-to-float cast in the
/// decoder).
void expect_within_half_scale(std::span<const float> values, std::span<const float> decoded,
                              std::size_t chunk) {
  ASSERT_EQ(values.size(), decoded.size());
  for (std::size_t base = 0; base < values.size(); base += chunk) {
    const std::size_t len = std::min(chunk, values.size() - base);
    const float scale = expected_chunk_scale(values.subspan(base, len));
    ASSERT_TRUE(std::isfinite(scale));
    for (std::size_t i = base; i < base + len; ++i) {
      const double bound = static_cast<double>(scale) * 0.5000001 +
                           std::abs(static_cast<double>(values[i])) * 1.2e-7;
      EXPECT_LE(std::abs(static_cast<double>(decoded[i]) - values[i]), bound)
          << "element " << i << " scale " << scale;
    }
  }
}

TEST(Q8Codec, RoundTripErrorBoundAcrossShapes) {
  util::Rng rng{0x9b1ull};
  // Lengths straddling the chunk boundary x chunk sizes including degenerate 1.
  const std::size_t lengths[] = {1, 5, 255, 256, 257, 1000, 4099};
  const std::size_t chunks[] = {1, 7, 256, 1024};
  for (const std::size_t n : lengths) {
    for (const std::size_t chunk : chunks) {
      const std::vector<float> values = random_values(n, rng);
      const std::vector<float> decoded = q8_wire_roundtrip(values, chunk);
      expect_within_half_scale(values, decoded, chunk);
    }
  }
}

TEST(Q8Codec, MixedMagnitudeChunksQuantizeIndependently) {
  // One chunk spans [-1000, 1000], the next [-1e-3, 1e-3]: per-chunk scaling
  // must give the small chunk ~2e-5 resolution instead of the ~8 resolution a
  // global scale would impose.
  util::Rng rng{0x9b2ull};
  const std::size_t chunk = 64;
  std::vector<float> values = random_values(chunk, rng, -1000.0f, 1000.0f);
  const std::vector<float> small = random_values(chunk, rng, -1e-3f, 1e-3f);
  values.insert(values.end(), small.begin(), small.end());
  const std::vector<float> decoded = q8_wire_roundtrip(values, chunk);
  expect_within_half_scale(values, decoded, chunk);
  for (std::size_t i = chunk; i < 2 * chunk; ++i) {
    EXPECT_LE(std::abs(decoded[i] - values[i]), 1e-5f);
  }
}

TEST(Q8Codec, ConstantChunksDecodeExactly) {
  for (const float constant : {0.0f, 1.0f, -3.75f, 2.5e20f}) {
    const std::vector<float> values(300, constant);
    const std::vector<float> decoded = q8_wire_roundtrip(values, 128);
    for (const float v : decoded) {
      EXPECT_EQ(v, constant);
    }
  }
}

TEST(Q8Codec, SingleElementChunksAreExact) {
  util::Rng rng{0x9b3ull};
  const std::vector<float> values = random_values(17, rng);
  const std::vector<float> decoded = q8_wire_roundtrip(values, 1);
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(decoded[i], values[i]) << i;  // every chunk is constant
  }
}

TEST(Q8Codec, EmptySpan) {
  const std::vector<float> empty;
  const std::vector<float> decoded = q8_wire_roundtrip(empty, 256);
  EXPECT_TRUE(decoded.empty());
}

TEST(Q8Codec, ExtremeMagnitudesDoNotOverflow) {
  // Range ~6.8e38 exceeds float max; the scale computation must go through
  // double to stay finite.
  const std::vector<float> values = {3.4e38f, -3.4e38f, 0.0f, 1.7e38f};
  const std::vector<float> decoded = q8_wire_roundtrip(values, 256);
  for (const float v : decoded) {
    EXPECT_TRUE(std::isfinite(v));
  }
  expect_within_half_scale(values, decoded, 256);
}

TEST(Q8Codec, NonFiniteChunkPoisonsOnlyItsOwnChunk) {
  util::Rng rng{0x9b4ull};
  const std::size_t chunk = 32;
  std::vector<float> values = random_values(3 * chunk, rng);
  values[4] = kNan;          // chunk 0
  values[chunk + 9] = kInf;  // chunk 1
  const std::vector<float> decoded = q8_wire_roundtrip(values, chunk);
  for (std::size_t i = 0; i < 2 * chunk; ++i) {
    EXPECT_TRUE(std::isnan(decoded[i])) << i;
  }
  const std::span<const float> clean{values};
  expect_within_half_scale(clean.subspan(2 * chunk), std::span<const float>{decoded}.subspan(2 * chunk),
                           chunk);
}

TEST(Q8Codec, SimulatedRoundtripMatchesWireBitForBit) {
  // The in-process federation uses quantize_roundtrip_q8 instead of encoding
  // a payload; local/remote parity requires bit-identical results.
  util::Rng rng{0x9b5ull};
  for (const std::size_t chunk : {1u, 64u, 256u}) {
    std::vector<float> simulated = random_values(777, rng);
    const std::vector<float> decoded = q8_wire_roundtrip(simulated, chunk);
    util::quantize_roundtrip_q8(simulated, chunk);
    ASSERT_EQ(simulated.size(), decoded.size());
    EXPECT_EQ(std::memcmp(simulated.data(), decoded.data(),
                          simulated.size() * sizeof(float)),
              0)
        << "chunk " << chunk;
  }
}

TEST(Q8Codec, ZeroChunkSizeIsRejected) {
  ByteWriter writer;
  const std::vector<float> values(4, 1.0f);
  EXPECT_THROW(writer.write_q8_span(values, 0), std::invalid_argument);
  // A crafted payload claiming chunk size 0 must not divide by zero either.
  ByteWriter crafted;
  crafted.write_u64(4);
  crafted.write_u32(0);
  ByteReader reader{crafted.bytes()};
  ASSERT_EQ(reader.read_u64(), 4u);
  std::vector<float> out(4);
  EXPECT_THROW(reader.read_q8_into(out), std::out_of_range);
}

// ---- fp16 --------------------------------------------------------------------

TEST(F16Codec, ExactForRepresentableValues) {
  for (const float v : {0.0f, -0.0f, 1.0f, -1.0f, 0.5f, -2.75f, 1024.0f, 65504.0f}) {
    EXPECT_EQ(util::f16_bits_to_f32(util::f32_to_f16_bits(v)), v) << v;
  }
}

TEST(F16Codec, RelativeErrorWithinHalfUlp) {
  util::Rng rng{0x9b6ull};
  for (int i = 0; i < 2000; ++i) {
    const float v = rng.uniform_float(-100.0f, 100.0f);
    const float back = util::f16_bits_to_f32(util::f32_to_f16_bits(v));
    // binary16 has a 10-bit mantissa: round-to-nearest error <= 2^-11 relative
    // for normals, absolute <= 2^-25 in the subnormal range.
    const double tolerance = std::abs(static_cast<double>(v)) * 0x1p-11 + 0x1p-25;
    EXPECT_LE(std::abs(static_cast<double>(back) - v), tolerance) << v;
  }
}

TEST(F16Codec, SpecialsAndOverflow) {
  EXPECT_EQ(util::f16_bits_to_f32(util::f32_to_f16_bits(kInf)), kInf);
  EXPECT_EQ(util::f16_bits_to_f32(util::f32_to_f16_bits(-kInf)), -kInf);
  EXPECT_TRUE(std::isnan(util::f16_bits_to_f32(util::f32_to_f16_bits(kNan))));
  EXPECT_EQ(util::f16_bits_to_f32(util::f32_to_f16_bits(1e30f)), kInf);  // > 65504
  EXPECT_EQ(util::f16_bits_to_f32(util::f32_to_f16_bits(-1e30f)), -kInf);
  // Subnormal half range: representable on a 2^-24 grid.
  const float tiny = 1e-7f;
  const float back = util::f16_bits_to_f32(util::f32_to_f16_bits(tiny));
  EXPECT_LE(std::abs(back - tiny), 0x1p-25f);
  // Below half the smallest subnormal: flushes to zero.
  EXPECT_EQ(util::f16_bits_to_f32(util::f32_to_f16_bits(1e-9f)), 0.0f);
}

TEST(F16Codec, SpanRoundTripAndWireSize) {
  util::Rng rng{0x9b7ull};
  std::vector<float> values = random_values(513, rng);
  values[7] = kNan;
  ByteWriter writer;
  writer.write_f16_span(values);
  EXPECT_EQ(writer.size(), util::f16_span_wire_size(values.size()));
  ByteReader reader{writer.bytes()};
  ASSERT_EQ(reader.read_u64(), values.size());
  std::vector<float> decoded(values.size());
  reader.read_f16_into(decoded);
  EXPECT_TRUE(reader.exhausted());
  EXPECT_TRUE(std::isnan(decoded[7]));
  // Simulated roundtrip matches the wire path bit-for-bit (NaN included —
  // both collapse to the same quiet NaN).
  std::vector<float> simulated = values;
  util::quantize_roundtrip_f16(simulated);
  EXPECT_EQ(std::memcmp(simulated.data(), decoded.data(), decoded.size() * sizeof(float)),
            0);
}

// ---- codec metadata ----------------------------------------------------------

TEST(WireCodecNames, ParseAndToStringRoundTrip) {
  for (const WireCodec codec : {WireCodec::Fp32, WireCodec::Q8, WireCodec::Fp16}) {
    WireCodec parsed = WireCodec::Fp32;
    ASSERT_TRUE(util::parse_wire_codec(util::to_string(codec), parsed));
    EXPECT_EQ(parsed, codec);
  }
  WireCodec out = WireCodec::Fp32;
  EXPECT_FALSE(util::parse_wire_codec("int4", out));
  EXPECT_EQ(out, WireCodec::Fp32);
}

TEST(WireCodecNames, Q8CompressionRatioMeetsTarget) {
  // Table V scale: ψ ~= 100k parameters. The acceptance bar is >= 3.5x.
  const std::size_t dim = 101770;
  const double fp32 = static_cast<double>(util::f32_vector_wire_size(dim));
  const double q8 =
      static_cast<double>(util::codec_span_wire_size(WireCodec::Q8, dim, 256));
  const double fp16 =
      static_cast<double>(util::codec_span_wire_size(WireCodec::Fp16, dim, 256));
  EXPECT_GE(fp32 / q8, 3.5);
  EXPECT_GE(fp32 / fp16, 1.99);
}

// ---- message-layer negotiation -----------------------------------------------

TEST(CodecNegotiation, RoundRequestCarriesTheOffer) {
  net::RoundRequest request;
  request.round = 5;
  request.want_decoder = true;
  request.psi_codec = WireCodec::Q8;
  request.psi_chunk = 64;
  request.global_parameters = {1.0f, -2.0f, 3.5f};
  const net::RoundRequest decoded =
      net::decode_round_request(net::encode_round_request(request));
  EXPECT_EQ(decoded.round, 5u);
  EXPECT_TRUE(decoded.want_decoder);
  EXPECT_EQ(decoded.psi_codec, WireCodec::Q8);
  EXPECT_EQ(decoded.psi_chunk, 64u);
  EXPECT_EQ(decoded.global_parameters, request.global_parameters);
}

net::RoundReply make_reply(WireCodec codec, std::size_t chunk, util::Rng& rng) {
  net::RoundReply reply;
  reply.round = 3;
  reply.psi_codec = codec;
  reply.psi_chunk = chunk;
  reply.update.client_id = 11;
  reply.update.num_samples = 120;
  reply.update.psi = random_values(1000, rng);
  reply.update.theta = random_values(37, rng);
  return reply;
}

TEST(CodecNegotiation, QuantizedReplyDecodesToTheSimulatedRoundtrip) {
  util::Rng rng{0x9b8ull};
  const net::RoundReply reply = make_reply(WireCodec::Q8, 128, rng);
  const net::RoundReply decoded = net::decode_round_reply(net::encode_round_reply(reply));
  EXPECT_EQ(decoded.psi_codec, WireCodec::Q8);
  EXPECT_EQ(decoded.update.client_id, 11);
  std::vector<float> expected = reply.update.psi;
  util::quantize_roundtrip_q8(expected, 128);
  EXPECT_EQ(decoded.update.psi, expected);      // bit-for-bit
  EXPECT_EQ(decoded.update.theta, reply.update.theta);  // θ stays fp32-exact
}

TEST(CodecNegotiation, QuantizedReplyFillsArenaRows) {
  util::Rng rng{0x9b9ull};
  const net::RoundReply reply = make_reply(WireCodec::Q8, 256, rng);
  defenses::UpdateMatrix arena;
  arena.reset(1, reply.update.psi.size(), reply.update.theta.size());
  const std::size_t round =
      net::decode_round_reply_into(net::encode_round_reply(reply), arena.row(0));
  EXPECT_EQ(round, 3u);
  std::vector<float> expected = reply.update.psi;
  util::quantize_roundtrip_q8(expected, 256);
  const std::span<const float> row = arena.psi(0);
  ASSERT_EQ(row.size(), expected.size());
  EXPECT_EQ(std::memcmp(row.data(), expected.data(), expected.size() * sizeof(float)), 0);
}

TEST(CodecNegotiation, LegacyFp32ReplySatisfiesAQ8OfferExactly) {
  // A client that ignores the server's q8 offer self-tags fp32; the decoder
  // follows the tag, so the federation interoperates and the upload stays
  // exact.
  util::Rng rng{0x9baull};
  const net::RoundReply reply = make_reply(WireCodec::Fp32, 256, rng);
  const net::RoundReply decoded = net::decode_round_reply(net::encode_round_reply(reply));
  EXPECT_EQ(decoded.psi_codec, WireCodec::Fp32);
  EXPECT_EQ(decoded.update.psi, reply.update.psi);
}

TEST(CodecNegotiation, UnknownCodecTagIsRejected) {
  util::Rng rng{0x9bbull};
  std::vector<std::byte> payload =
      net::encode_round_reply(make_reply(WireCodec::Fp32, 256, rng));
  // Payload layout: u64 round | u64 trace_id | u32 client | u64 samples |
  // u32 malicious | u32 codec tag | ψ | θ — the tag starts at byte 32.
  const std::uint32_t bogus = 7;
  std::memcpy(payload.data() + 32, &bogus, sizeof bogus);
  try {
    (void)net::decode_round_reply(payload);
    FAIL() << "bogus codec tag decoded";
  } catch (const net::DecodeError& error) {
    EXPECT_EQ(error.code(), net::DecodeErrorCode::BadCodec);
  }
}

TEST(CodecNegotiation, FrameBytesHelperMatchesEncodedFrames) {
  util::Rng rng{0x9bcull};
  for (const WireCodec codec : {WireCodec::Fp32, WireCodec::Q8, WireCodec::Fp16}) {
    const net::RoundReply reply = make_reply(codec, 64, rng);
    const std::vector<std::byte> frame = net::encode_frame(
        {net::MessageType::RoundReply, net::encode_round_reply(reply)});
    EXPECT_EQ(frame.size(),
              net::client_update_frame_bytes(reply.update.psi.size(),
                                             reply.update.theta.size(), codec, 64))
        << util::to_string(codec);
  }
}

// ---- aggregation-boundary semantics ------------------------------------------

TEST(QuantizedAggregation, NanPoisonedUploadStillRejectedAfterQuantization) {
  if (!util::asserts_enabled()) {
    GTEST_SKIP() << "FEDGUARD_CHECK_FINITE compiled out (FEDGUARD_ASSERTS=OFF)";
  }
  // Quantization must not launder a NaN upload into finite garbage: the chunk
  // dequantizes to NaN and the validate_view choke point still fires.
  util::Rng rng{0x9bdull};
  std::vector<defenses::ClientUpdate> updates(3);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    updates[i].client_id = static_cast<int>(i);
    updates[i].num_samples = 100;
    updates[i].psi = random_values(512, rng);
  }
  updates[1].psi[300] = kNan;
  for (auto& update : updates) {
    util::quantize_roundtrip_q8(update.psi, 256);
  }
  ASSERT_TRUE(std::isnan(updates[1].psi[300]));
  defenses::FedAvgAggregator fedavg;
  const std::vector<float> global(512, 0.0f);
  defenses::AggregationContext context;
  context.global_parameters = global;
  EXPECT_THROW((void)fedavg.aggregate(context, std::span<const defenses::ClientUpdate>{updates}),
               util::CheckError);
}

TEST(QuantizedAggregation, KrumStillEjectsAttackersUnderQ8HonestUploads) {
  // Robustness datapoint: quantization noise on honest updates (sigma ~
  // scale/2) must stay far below the attacker displacement Krum keys on.
  util::Rng rng{0x9beull};
  const std::size_t dim = 256;
  const std::vector<float> base = random_values(dim, rng, -0.5f, 0.5f);
  std::vector<defenses::ClientUpdate> updates(8);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    updates[i].client_id = static_cast<int>(i);
    updates[i].num_samples = 100;
    updates[i].psi = base;
  }
  for (std::size_t i = 0; i < 6; ++i) {  // honest: base + small local noise, then q8
    for (auto& v : updates[i].psi) {
      v += static_cast<float>(rng.normal(0.0, 0.05));
    }
    util::quantize_roundtrip_q8(updates[i].psi, 64);
  }
  for (std::size_t i = 6; i < 8; ++i) {  // attackers: same-value poisoning, fp32
    updates[i].truly_malicious = true;
    std::fill(updates[i].psi.begin(), updates[i].psi.end(), 5.0f);
  }
  defenses::KrumAggregator krum{0.25, 3};
  const std::vector<float> global(dim, 0.0f);
  defenses::AggregationContext context;
  context.global_parameters = global;
  const defenses::AggregationResult result =
      krum.aggregate(context, std::span<const defenses::ClientUpdate>{updates});
  for (const int attacker : {6, 7}) {
    EXPECT_NE(std::find(result.rejected_clients.begin(), result.rejected_clients.end(),
                        attacker),
              result.rejected_clients.end())
        << "attacker " << attacker << " survived Krum under q8 honest uploads";
  }
}

// ---- end-to-end drift gate ---------------------------------------------------

TEST(QuantizedFederation, AccuracyDriftVsFp32WithinHalfPoint) {
  util::set_log_level(util::LogLevel::Warn);
  core::ExperimentConfig config = core::ExperimentConfig::small_scale();
  config.strategy = core::StrategyKind::FedAvg;
  config.train_samples = 600;
  config.test_samples = 400;
  config.auxiliary_samples = 50;
  config.num_clients = 8;
  config.clients_per_round = 5;
  config.rounds = 6;
  config.seed = 777;

  config.wire_codec = WireCodec::Fp32;
  const double fp32 = core::run_experiment(config).trailing_accuracy(3).mean;
  config.wire_codec = WireCodec::Q8;
  config.wire_chunk_size = 256;
  const double q8 = core::run_experiment(config).trailing_accuracy(3).mean;

  EXPECT_GT(fp32, 0.2);  // the smoke run actually learned something
  EXPECT_NEAR(q8, fp32, 0.005) << "q8 transport drifted more than 0.5 pp";
}

}  // namespace
}  // namespace fedguard
