// Fixture: registers a metric whose name is absent from the fixture tree's
// docs/OBSERVABILITY.md, so span-category-docs must flag it. The documented
// name below is clean; the dynamic registration carries no leading literal
// and is exempt.
#include <string>

struct Registry {
  int counter(const std::string&) { return 0; }
  int gauge(const std::string&) { return 0; }
};

inline int documented(Registry& r) { return r.counter("net_frame_bytes_total"); }
inline int undocumented(Registry& r) { return r.gauge("obs_widget_depth"); }
inline int dynamic_name(Registry& r, const std::string& n) { return r.counter(n); }
