// Fixture: const_cast used to strip constness off a mutex in a const
// accessor. The fix is a mutable member; the mutex here is otherwise fully
// annotated so no-const-cast-mutex is the only rule that may fire.

#include "util/thread_annotations.hpp"

namespace fedguard::obs {

class ConstCaster {
 public:
  int value() const {
    const util::MutexLock lock{const_cast<util::Mutex&>(mutex_)};  // VIOLATION
    return value_;
  }

 private:
  util::Mutex mutex_;
  int value_ FEDGUARD_GUARDED_BY(mutex_) = 0;
};

}  // namespace fedguard::obs
