// Fixture: mutex declarations the thread-safety layer cannot analyze.
// no-unannotated-mutex must fire on the std::mutex member (libstdc++'s type
// carries no capability attributes, so clang TSA never sees it) and on the
// util::Mutex that no FEDGUARD_* annotation in this file names.

#include <mutex>

#include "util/thread_annotations.hpp"

namespace fedguard::obs {

class BadMutexes {
 private:
  std::mutex raw_mutex_;      // VIOLATION: invisible to thread-safety analysis
  util::Mutex orphan_mutex_;  // VIOLATION: nothing declares a contract on it
  util::Mutex good_mutex_;    // fine: guarded_value_ names it below
  int guarded_value_ FEDGUARD_GUARDED_BY(good_mutex_) = 0;
  // fedguard-lint: allow(no-unannotated-mutex) guards a C callback table whose entries TSA cannot name
  util::Mutex external_mutex_;
};

}  // namespace fedguard::obs
