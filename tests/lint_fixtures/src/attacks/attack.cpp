// Fixture: AttackType -> string table feeding the sweep-roster rule.
namespace fedguard::attacks {

enum class AttackType { SigFlipOk, GhostAttack, BenchOnly };

const char* to_string(AttackType type) {
  switch (type) {
    case AttackType::SigFlipOk: return "sig_flip_ok";  // in the roster: NOT flagged
    case AttackType::GhostAttack: return "ghost_attack";
    // ^ VIOLATION: mapped to a string but absent from the fixture rosters.
    // fedguard-lint: allow(sweep-roster) bench-only fixture attack, deliberately unsweepable
    case AttackType::BenchOnly: return "bench_only";
  }
  return "";
}

}  // namespace fedguard::attacks
