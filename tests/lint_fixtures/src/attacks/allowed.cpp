// Fixture: the allowlist mechanism itself.
#include <iostream>
#include <random>

namespace fedguard::attacks {

void fixture_allowed() {
  // A justified allow() suppresses the rule on the next line: NOT flagged.
  // fedguard-lint: allow(stdout) fixture exercising the allowlist mechanism
  std::cout << "suppressed";
  std::mt19937 engine{7};  // fedguard-lint: allow(rng) same-line annotation form
  (void)engine;
}

void fixture_bad_allow() {
  std::random_device device;  // fedguard-lint: allow(rng)
  // ^ TWO VIOLATIONS: the annotation carries no justification
  //   (allow-justification), and a rejected allow suppresses nothing, so the
  //   rng hit is reported as well.
  (void)device;
}

}  // namespace fedguard::attacks
