// Fixture: manual lock()/unlock() around guarded state. An early return or
// exception between the two calls leaks the lock, and scoped-capability
// analysis cannot track the pairing — lock-discipline demands an RAII guard.

#include "util/thread_annotations.hpp"

namespace fedguard::parallel {

class ManualLocker {
 public:
  void bump() {
    mutex_.lock();  // VIOLATION: use util::MutexLock
    ++count_;
    mutex_.unlock();  // VIOLATION
  }

 private:
  util::Mutex mutex_;
  int count_ FEDGUARD_GUARDED_BY(mutex_) = 0;
};

}  // namespace fedguard::parallel
