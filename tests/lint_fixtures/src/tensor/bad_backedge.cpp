// Fixture: a tensor-layer file reaching up into the defenses layer. The
// architecture DAG only permits includes that point at the same or a lower
// layer (util -> parallel -> tensor -> data/nn -> models -> attacks/defenses
// -> fl -> net -> core -> scenario), so this is a back-edge.

#include "defenses/krum.hpp"  // VIOLATION: tensor must not depend on defenses

namespace fedguard::tensor {

inline int backedge_marker() { return 1; }

}  // namespace fedguard::tensor
