#pragma once
// Fixture: second half of the include cycle rooted at cycle_a.hpp.

#include "nn/cycle_a.hpp"  // VIOLATION: closes the cycle a -> b -> a
