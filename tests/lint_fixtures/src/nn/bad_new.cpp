// Fixture: naked-new rule.
namespace fedguard::nn {

struct Node {
  int value = 0;
};

int fixture_naked_allocation() {
  Node* node = new Node{};  // VIOLATION: naked new
  const int value = node->value;
  delete node;  // VIOLATION: naked delete
  return value;
}

struct Pinned {
  // Deleted special members must NOT be flagged as naked delete.
  Pinned(const Pinned&) = delete;
  Pinned& operator=(const Pinned&) = delete;
};

}  // namespace fedguard::nn
