// Fixture: raw SIMD intrinsics outside src/tensor/kernels/ must be flagged
// (rule no-raw-intrinsics). Vector code belongs in the runtime-dispatched
// kernel TUs, where the cpuid gate guarantees the ISA is actually present.

#include <cstddef>

#include <immintrin.h>

void fixture_sum(const float* a, float* out, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  for (std::size_t i = 0; i + 8 <= n; i += 8) {
    acc = _mm256_add_ps(acc, _mm256_loadu_ps(a + i));
  }
  (void)acc;
  *out = 0.0f;
}
