#pragma once
// Fixture: first half of a deliberate include cycle (see cycle_b.hpp). Both
// edges stay inside the nn layer, so only the cycle detector can catch it;
// the finding is reported at the back-edge, i.e. cycle_b's include line.

#include "nn/cycle_b.hpp"
