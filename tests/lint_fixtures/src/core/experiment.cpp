// Fixture: StrategyKind -> string table feeding the sweep-roster rule.
namespace fedguard::core {

enum class StrategyKind { FedavgOk, GhostDefense };

const char* to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::FedavgOk: return "fedavg_ok";  // in the roster: NOT flagged
    case StrategyKind::GhostDefense: return "ghost_defense";
    // ^ VIOLATION: mapped to a string but absent from the fixture rosters.
  }
  return "";
}

}  // namespace fedguard::core
