// Fixture: config-docs rule. Key parsing mirrored from the real
// src/core/config_file.cpp shape; `fault_documented_knob` appears in
// docs/GUIDE.md, `fault_undocumented_knob` does not.
#include <string>

namespace fedguard::core {

int fixture_apply(const std::string& key) {
  if (key == "fault_documented_knob") return 1;
  if (key == "fault_undocumented_knob") return 2;  // VIOLATION: not in docs/
  return 0;
}

}  // namespace fedguard::core
