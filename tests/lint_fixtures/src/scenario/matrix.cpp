// Fixture: the sweep roster tables the sweep-roster rule resolves names
// against. Only the *_ok names from the fixture enum tables appear here.
namespace fedguard::scenario {

constexpr const char* kAttackRoster[] = {"sig_flip_ok"};
constexpr const char* kDefenseRoster[] = {"fedavg_ok"};

}  // namespace fedguard::scenario
