// Fixture: no-blocking-socket rule. Files under src/net/ named reactor* or
// shard* run the single-threaded event loop and must never issue a blocking
// socket call — one stalled call freezes every connection the loop holds.

namespace fedguard::net {

void fixture_reactor_loop(int fd) {
  ::poll(&fd, 1, 1000);             // VIOLATION: blocking poll in the reactor
  stream.read_some(buffer, moved);  // NOT flagged: edge-triggered fast path
  stream.recv_all(buffer);          // VIOLATION: blocking full-buffer receive
}

}  // namespace fedguard::net
