// Fixture: span-category-docs rule. Every string-literal span category must
// be listed in docs/OBSERVABILITY.md (this fixture tree documents only
// `net.frame`); dynamic category expressions are exempt — they are covered by
// the documented agg.<strategy> pattern.

namespace fedguard::net {

void fixture_spans() {
  FEDGUARD_TRACE_SPAN("net.frame", "send");   // NOT flagged: documented
  FEDGUARD_TRACE_SPAN("net.bogus", "send");   // VIOLATION: undocumented category
  FEDGUARD_TRACE_SPAN(std::string{"agg."} + name(), "x");  // NOT flagged: dynamic
}

}  // namespace fedguard::net
