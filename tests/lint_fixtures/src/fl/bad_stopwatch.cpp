// Fixture: no-raw-stopwatch rule. Round-path code must time through
// obs::now_ns() — the tracer clock — not util::Stopwatch, so trace spans and
// RoundRecord::round_seconds can never disagree by clock domain.

namespace fedguard::fl {

double fixture_time_round() {
  util::Stopwatch timer;  // VIOLATION: raw stopwatch in round-path code
  // fedguard-lint: allow(no-raw-stopwatch) fixture exercising the allowlist
  util::Stopwatch allowed_timer;  // NOT flagged: justified allow() above
  (void)timer;
  (void)allowed_timer;
  return 0.0;
}

}  // namespace fedguard::fl
