// Fixture: stdout rule. Library code must route output through util::logging.
#include <cstdio>
#include <iostream>

namespace fedguard::fl {

void fixture_stdout_write(int round) {
  std::cout << "round " << round << "\n";  // VIOLATION: std::cout in library code
  char buffer[32];
  // snprintf formats into a buffer without touching stdout: must NOT be flagged.
  std::snprintf(buffer, sizeof(buffer), "round %d", round);
}

}  // namespace fedguard::fl
