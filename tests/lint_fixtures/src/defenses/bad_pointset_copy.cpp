// Fixture: no-pointset-copy rule. Rebuilding a point set by appending psi
// vectors inside a defense copies the whole sub-matrix every iteration; the
// round arena makes this an index selection instead.
#include <cstddef>
#include <vector>

namespace fedguard::defenses {

struct FixtureUpdate {
  std::vector<float> psi;
};

std::vector<float> fixture_pointset_copy(const std::vector<FixtureUpdate>& updates) {
  std::vector<float> points;
  for (const auto& update : updates) {
    points.insert(points.end(), update.psi.begin(), update.psi.end());  // VIOLATION
  }
  // Appending non-psi data to a buffer is fine (synthetic pixels, labels...).
  std::vector<float> pixels;
  pixels.insert(pixels.end(), points.begin(), points.end());
  return points;
}

}  // namespace fedguard::defenses
