// Fixture: unordered-iteration rule. Iterating an unordered container in a
// defense is a determinism hazard; membership lookups alone are fine.
#include <string>
#include <unordered_map>

namespace fedguard::defenses {

int fixture_unordered_iteration() {
  std::unordered_map<std::string, int> scores;
  scores["a"] = 1;
  int total = 0;
  for (const auto& entry : scores) {  // VIOLATION: range-for over unordered
    total += entry.second;
  }
  for (auto it = scores.begin(); it != scores.end(); ++it) {  // VIOLATION: iterator walk
    total += it->second;
  }
  // A point lookup is deterministic and must NOT be flagged.
  return total + static_cast<int>(scores.count("a"));
}

}  // namespace fedguard::defenses
