// Fixture: rng rule. Raw standard-library engines fork the reproducibility
// story; everything must derive from util::Rng and the experiment seed.
#include <random>

namespace fedguard::models {

// Mentioning mt19937 in a comment must NOT be flagged.
int fixture_raw_engine() {
  std::mt19937 engine{42};  // VIOLATION: raw engine construction
  return static_cast<int>(engine());
}

}  // namespace fedguard::models
