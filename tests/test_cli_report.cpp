#include <gtest/gtest.h>

#include <sstream>

#include "core/cli.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"

namespace fedguard::core {
namespace {

TEST(Cli, ParsesKeyValuePairs) {
  const char* argv[] = {"prog", "--scale", "paper", "--rounds", "12", "--verbose"};
  const CliOptions options = CliOptions::parse(6, argv);
  EXPECT_TRUE(options.has("scale"));
  EXPECT_EQ(options.get("scale", "small"), "paper");
  EXPECT_EQ(options.get_int("rounds", 0), 12);
  EXPECT_TRUE(options.has("verbose"));
  EXPECT_EQ(options.get("verbose", ""), "1");
  EXPECT_EQ(options.get("missing", "fallback"), "fallback");
  EXPECT_EQ(options.get_int("missing", 7), 7);
}

TEST(Cli, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--alpha=0.5", "--name=x"};
  const CliOptions options = CliOptions::parse(3, argv);
  EXPECT_DOUBLE_EQ(options.get_double("alpha", 0.0), 0.5);
  EXPECT_EQ(options.get("name", ""), "x");
}

TEST(Cli, BooleanFlagBeforeAnotherFlag) {
  const char* argv[] = {"prog", "--quiet", "--rounds", "3"};
  const CliOptions options = CliOptions::parse(4, argv);
  EXPECT_EQ(options.get("quiet", ""), "1");
  EXPECT_EQ(options.get_int("rounds", 0), 3);
}

TEST(Experiment, StrategyStringRoundTrip) {
  for (const auto kind :
       {StrategyKind::FedAvg, StrategyKind::GeoMed, StrategyKind::Krum,
        StrategyKind::MultiKrum, StrategyKind::Median, StrategyKind::TrimmedMean,
        StrategyKind::NormThreshold, StrategyKind::Bulyan, StrategyKind::AuxAudit,
        StrategyKind::Spectral, StrategyKind::FedGuard}) {
    EXPECT_EQ(strategy_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW((void)strategy_kind_from_string("bogus"), std::invalid_argument);
}

TEST(Experiment, PresetsAreConsistent) {
  const ExperimentConfig small = ExperimentConfig::small_scale();
  EXPECT_LE(small.clients_per_round, small.num_clients);
  EXPECT_GT(small.rounds, 0u);

  const ExperimentConfig paper = ExperimentConfig::paper_scale();
  EXPECT_EQ(paper.num_clients, 100u);          // paper §IV-A
  EXPECT_EQ(paper.clients_per_round, 50u);     // m = 50
  EXPECT_EQ(paper.rounds, 50u);                // Fig. 4 x-axis
  EXPECT_EQ(paper.client.local_epochs, 5u);    // 5 local epochs
  EXPECT_EQ(paper.client.cvae_epochs, 30u);    // 30 CVAE epochs
  EXPECT_EQ(paper.fedguard_total_samples, 100u);  // t = 2m = 100
  EXPECT_DOUBLE_EQ(paper.dirichlet_alpha, 10.0);
  EXPECT_EQ(paper.arch, models::ClassifierArch::PaperCnn);
  EXPECT_EQ(paper.cvae.hidden, 400u);  // Table III
  EXPECT_EQ(paper.cvae.latent, 20u);
}

TEST(Report, FormatAccuracy) {
  util::TrailingStats stats;
  stats.mean = 0.9897;
  stats.stddev = 0.0017;
  EXPECT_EQ(format_accuracy(stats), "98.97% +- 0.17%");
}

TEST(Report, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KB");
  EXPECT_EQ(format_bytes(348.3e6), "348.3 MB");
  EXPECT_EQ(format_bytes(1.5e9), "1.50 GB");
}

TEST(Report, Table4Rendering) {
  std::ostringstream out;
  Table4Row row;
  row.strategy = "fedguard";
  row.cells.push_back({0.9897, 0.0022, 40});
  print_table4(out, {"Sign Flipping 50%"}, {row}, 40);
  const std::string text = out.str();
  EXPECT_NE(text.find("fedguard"), std::string::npos);
  EXPECT_NE(text.find("98.97%"), std::string::npos);
  EXPECT_NE(text.find("Sign Flipping 50%"), std::string::npos);
}

TEST(Report, Table5OverheadPercentages) {
  std::ostringstream out;
  std::vector<Table5Row> rows;
  rows.push_back({"fedavg", 348.3e6, 348.3e6, 3.76});
  rows.push_back({"fedguard", 349.3e6, 417.4e6, 6.86});
  print_table5(out, rows);
  const std::string text = out.str();
  EXPECT_NE(text.find("fedavg"), std::string::npos);
  EXPECT_NE(text.find("+20%"), std::string::npos);  // download overhead
  EXPECT_NE(text.find("+82%"), std::string::npos);  // time overhead
}

TEST(Report, AccuracySeriesAlignment) {
  std::ostringstream out;
  fl::RunHistory a;
  a.strategy = "fedavg";
  fl::RunHistory b;
  b.strategy = "fedguard";
  for (int r = 0; r < 3; ++r) {
    fl::RoundRecord record;
    record.round = static_cast<std::size_t>(r);
    record.test_accuracy = 0.5;
    a.rounds.push_back(record);
    if (r < 2) b.rounds.push_back(record);
  }
  print_accuracy_series(out, {a, b});
  const std::string text = out.str();
  EXPECT_NE(text.find("round,fedavg,fedguard"), std::string::npos);
  // Shorter series padded with an empty cell on the last round.
  EXPECT_NE(text.find("2,0.5000,"), std::string::npos);
}

}  // namespace
}  // namespace fedguard::core
