// Seeded fault-injection (chaos) tests for the distributed federation: every
// fault kind x strategy combination must complete all rounds, account for
// each injected fault exactly in the round records, and replay byte-identical
// from the same fault seed.

#include <gtest/gtest.h>

#include <array>
#include <thread>

#include "data/partition.hpp"
#include "data/synthetic_mnist.hpp"
#include "defenses/fedavg.hpp"
#include "defenses/fedguard.hpp"
#include "defenses/krum.hpp"
#include "net/fault_injector.hpp"
#include "net/remote.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace fedguard::net {
namespace {

enum class Strategy { FedAvg, Krum, FedGuard };

const char* to_label(Strategy strategy) {
  switch (strategy) {
    case Strategy::FedAvg: return "fedavg";
    case Strategy::Krum: return "krum";
    case Strategy::FedGuard: return "fedguard";
  }
  return "?";
}

struct ChaosResult {
  fl::RunHistory history;
  std::vector<float> final_parameters;
  std::array<std::size_t, kFaultKindCount> injected{};
};

struct ChaosFixture : ::testing::Test {
  static constexpr std::size_t kClients = 4;

  static void SetUpTestSuite() { util::set_log_level(util::LogLevel::Error); }

  void SetUp() override {
    geometry = models::ImageGeometry{1, 28, 28, 10};
    train = data::generate_synthetic_mnist(240, 901);
    test = data::generate_synthetic_mnist(80, 902);
    partition = data::iid_partition(train.size(), kClients, 903);
  }

  fl::ClientConfig client_config(bool with_cvae) const {
    fl::ClientConfig config;
    config.local_epochs = 1;
    config.batch_size = 16;
    config.train_cvae = with_cvae;
    config.cvae_epochs = 2;
    config.cvae_batch_size = 8;
    return config;
  }

  models::CvaeSpec cvae_spec() const {
    models::CvaeSpec spec;
    spec.hidden = 16;
    spec.latent = 2;
    return spec;
  }

  std::unique_ptr<defenses::AggregationStrategy> make_strategy(Strategy kind) const {
    switch (kind) {
      case Strategy::FedAvg: return std::make_unique<defenses::FedAvgAggregator>();
      case Strategy::Krum: return std::make_unique<defenses::KrumAggregator>(0.25, 2);
      case Strategy::FedGuard: {
        defenses::FedGuardConfig fg;
        fg.cvae_spec = cvae_spec();
        fg.total_samples = 20;
        return std::make_unique<defenses::FedGuardAggregator>(
            fg, models::ClassifierArch::Mlp, geometry, 904);
      }
    }
    throw std::logic_error{"unknown strategy"};
  }

  /// One full distributed run under `plan`. Everything seeded, nothing shared
  /// between invocations: calling this twice with the same arguments must
  /// produce identical results.
  ChaosResult run_chaos(Strategy kind, const FaultPlan& plan, std::size_t rounds = 3,
                        std::size_t round_timeout_ms = 4000) const {
    const bool with_cvae = kind == Strategy::FedGuard;
    auto strategy = make_strategy(kind);
    RemoteServerConfig config;
    config.expected_clients = kClients;
    config.clients_per_round = 3;
    config.rounds = rounds;
    config.seed = 905;
    config.round_timeout_ms = round_timeout_ms;
    config.min_clients = 1;  // tolerate never-connect plans
    config.accept_timeout_ms = plan.never_connect_probability > 0.0 ? 500 : 10000;
    RemoteServer server{config, *strategy, test, models::ClassifierArch::Mlp, geometry};
    const std::uint16_t port = server.port();

    FaultInjector injector{plan};
    std::vector<std::unique_ptr<fl::Client>> clients;
    std::vector<std::thread> threads;
    // Build every client before spawning any thread: a later push_back can
    // reallocate `clients` while an earlier thread dereferences clients[i].
    for (std::size_t i = 0; i < kClients; ++i) {
      clients.push_back(std::make_unique<fl::Client>(
          static_cast<int>(i), train, partition[i], client_config(with_cvae),
          models::ClassifierArch::Mlp, geometry, cvae_spec(), 906 + i));
    }
    for (std::size_t i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i] {
        RemoteClientOptions options;
        options.faults = &injector;
        options.reconnect_attempts = 6;  // enough for repeated truncate/disconnect
                                         // rejoins, short futile loop at run end
        options.backoff_ms = 10;
        (void)run_remote_client("127.0.0.1", port, *clients[i], options);
      });
    }
    ChaosResult result;
    result.history = server.run();
    for (auto& thread : threads) thread.join();
    const std::span<const float> parameters = server.global_parameters();
    result.final_parameters.assign(parameters.begin(), parameters.end());
    for (std::size_t k = 0; k < kFaultKindCount; ++k) {
      result.injected[k] = injector.injected(static_cast<FaultKind>(k));
    }
    return result;
  }

  models::ImageGeometry geometry;
  data::Dataset train;
  data::Dataset test;
  data::Partition partition;
};

/// Field-by-field history comparison, excluding wall-clock round_seconds.
void expect_histories_identical(const fl::RunHistory& a, const fl::RunHistory& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    const fl::RoundRecord& x = a.rounds[r];
    const fl::RoundRecord& y = b.rounds[r];
    EXPECT_EQ(x.round, y.round) << "round " << r;
    EXPECT_EQ(x.test_accuracy, y.test_accuracy) << "round " << r;
    EXPECT_EQ(x.sampled_clients, y.sampled_clients) << "round " << r;
    EXPECT_EQ(x.sampled_malicious, y.sampled_malicious) << "round " << r;
    EXPECT_EQ(x.stragglers, y.stragglers) << "round " << r;
    EXPECT_EQ(x.dropouts, y.dropouts) << "round " << r;
    EXPECT_EQ(x.timeouts, y.timeouts) << "round " << r;
    EXPECT_EQ(x.corrupt_frames, y.corrupt_frames) << "round " << r;
    EXPECT_EQ(x.ejected_clients, y.ejected_clients) << "round " << r;
    EXPECT_EQ(x.rejected_clients, y.rejected_clients) << "round " << r;
    EXPECT_EQ(x.rejected_malicious, y.rejected_malicious) << "round " << r;
    EXPECT_EQ(x.rejected_benign, y.rejected_benign) << "round " << r;
    EXPECT_EQ(x.server_upload_bytes, y.server_upload_bytes) << "round " << r;
    EXPECT_EQ(x.server_download_bytes, y.server_download_bytes) << "round " << r;
  }
}

// ---- Per-kind fault accounting (server records == injector counters) -----------

TEST_F(ChaosFixture, DropPlanIsCountedAsTimeouts) {
  FaultPlan plan;
  plan.drop_probability = 0.35;
  plan.seed = 910;
  const ChaosResult result = run_chaos(Strategy::FedAvg, plan, 3, 1500);
  ASSERT_EQ(result.history.rounds.size(), 3u);
  EXPECT_GT(result.injected[static_cast<std::size_t>(FaultKind::Drop)], 0u);
  EXPECT_EQ(result.history.total_timeouts(),
            result.injected[static_cast<std::size_t>(FaultKind::Drop)]);
  EXPECT_EQ(result.history.total_dropouts(), 0u);
  EXPECT_EQ(result.history.total_corrupt_frames(), 0u);
}

TEST_F(ChaosFixture, TruncatePlanIsCountedAsCorruptFrames) {
  FaultPlan plan;
  plan.truncate_probability = 0.4;
  plan.seed = 911;
  const ChaosResult result = run_chaos(Strategy::FedAvg, plan);
  ASSERT_EQ(result.history.rounds.size(), 3u);
  EXPECT_GT(result.injected[static_cast<std::size_t>(FaultKind::Truncate)], 0u);
  EXPECT_EQ(result.history.total_corrupt_frames(),
            result.injected[static_cast<std::size_t>(FaultKind::Truncate)]);
  EXPECT_EQ(result.history.total_timeouts(), 0u);
}

TEST_F(ChaosFixture, BitFlipPlanIsCountedAsCorruptFrames) {
  FaultPlan plan;
  plan.bit_flip_probability = 0.4;
  plan.seed = 912;
  const ChaosResult result = run_chaos(Strategy::FedAvg, plan);
  ASSERT_EQ(result.history.rounds.size(), 3u);
  EXPECT_GT(result.injected[static_cast<std::size_t>(FaultKind::BitFlip)], 0u);
  EXPECT_EQ(result.history.total_corrupt_frames(),
            result.injected[static_cast<std::size_t>(FaultKind::BitFlip)]);
  // The CRC catches the flip without desyncing the link: no disconnects.
  EXPECT_EQ(result.history.total_dropouts(), 0u);
  EXPECT_EQ(result.history.total_timeouts(), 0u);
}

TEST_F(ChaosFixture, DisconnectPlanIsCountedAsDropouts) {
  FaultPlan plan;
  plan.disconnect_probability = 0.35;
  plan.seed = 913;
  const ChaosResult result = run_chaos(Strategy::FedAvg, plan);
  ASSERT_EQ(result.history.rounds.size(), 3u);
  EXPECT_GT(result.injected[static_cast<std::size_t>(FaultKind::Disconnect)], 0u);
  EXPECT_EQ(result.history.total_dropouts(),
            result.injected[static_cast<std::size_t>(FaultKind::Disconnect)]);
  EXPECT_EQ(result.history.total_corrupt_frames(), 0u);
}

TEST_F(ChaosFixture, DelayPlanChangesNothingButTiming) {
  FaultPlan plan;
  plan.delay_probability = 0.5;
  plan.delay_ms = 50;
  plan.seed = 914;
  const ChaosResult delayed = run_chaos(Strategy::FedAvg, plan);
  ASSERT_EQ(delayed.history.rounds.size(), 3u);
  EXPECT_GT(delayed.injected[static_cast<std::size_t>(FaultKind::Delay)], 0u);
  EXPECT_EQ(delayed.history.total_timeouts() + delayed.history.total_dropouts() +
                delayed.history.total_corrupt_frames(),
            0u);
  // A delay that makes the deadline is invisible to the science: the run is
  // bit-identical to a fault-free one.
  const ChaosResult clean = run_chaos(Strategy::FedAvg, FaultPlan{});
  expect_histories_identical(delayed.history, clean.history);
  EXPECT_EQ(delayed.final_parameters, clean.final_parameters);
}

TEST_F(ChaosFixture, NeverConnectPlanShrinksTheFederation) {
  FaultPlan plan;
  plan.never_connect_probability = 0.45;
  plan.seed = 915;
  FaultInjector probe{plan};
  std::size_t absent = 0;
  for (std::size_t i = 0; i < kClients; ++i) {
    if (probe.never_connects(static_cast<int>(i))) ++absent;
  }
  ASSERT_GT(absent, 0u) << "seed must make at least one client stay away";
  ASSERT_LT(absent, kClients) << "seed must leave at least one client alive";

  const ChaosResult result = run_chaos(Strategy::FedAvg, plan);
  ASSERT_EQ(result.history.rounds.size(), 3u);
  EXPECT_EQ(result.injected[static_cast<std::size_t>(FaultKind::NeverConnect)], absent);
  for (const auto& record : result.history.rounds) {
    EXPECT_LE(record.sampled_clients, kClients - absent);
    EXPECT_EQ(record.dropouts + record.timeouts + record.corrupt_frames, 0u);
  }
}

// ---- The chaos matrix: fault kinds x strategies, each replayable from seed -----

TEST_F(ChaosFixture, ChaosMatrixCompletesAndReplaysFromSeed) {
  struct PlanSpec {
    const char* label;
    FaultPlan plan;
  };
  std::vector<PlanSpec> specs;
  {
    FaultPlan p;
    p.drop_probability = 0.3;
    p.seed = 920;
    specs.push_back({"drop", p});
  }
  {
    FaultPlan p;
    p.delay_probability = 0.4;
    p.delay_ms = 30;
    p.seed = 921;
    specs.push_back({"delay", p});
  }
  {
    FaultPlan p;
    p.truncate_probability = 0.3;
    p.seed = 922;
    specs.push_back({"truncate", p});
  }
  {
    FaultPlan p;
    p.bit_flip_probability = 0.3;
    p.seed = 923;
    specs.push_back({"bitflip", p});
  }
  {
    FaultPlan p;
    p.disconnect_probability = 0.3;
    p.seed = 924;
    specs.push_back({"disconnect", p});
  }

  for (const Strategy strategy : {Strategy::FedAvg, Strategy::Krum, Strategy::FedGuard}) {
    for (const PlanSpec& spec : specs) {
      SCOPED_TRACE(std::string{to_label(strategy)} + " x " + spec.label);
      const ChaosResult first = run_chaos(strategy, spec.plan, 2, 1500);
      const ChaosResult second = run_chaos(strategy, spec.plan, 2, 1500);
      ASSERT_EQ(first.history.rounds.size(), 2u);
      // Same seed, same faults, same records, same model.
      EXPECT_EQ(first.injected, second.injected);
      expect_histories_identical(first.history, second.history);
      EXPECT_EQ(first.final_parameters, second.final_parameters);
      // Every injected fault shows up in the round records, in the right
      // column: drops expire the deadline, truncation/bit-flips corrupt
      // frames, mid-header disconnects read as dropouts.
      EXPECT_EQ(first.history.total_timeouts(),
                first.injected[static_cast<std::size_t>(FaultKind::Drop)]);
      EXPECT_EQ(first.history.total_corrupt_frames(),
                first.injected[static_cast<std::size_t>(FaultKind::Truncate)] +
                    first.injected[static_cast<std::size_t>(FaultKind::BitFlip)]);
      EXPECT_EQ(first.history.total_dropouts(),
                first.injected[static_cast<std::size_t>(FaultKind::Disconnect)]);
    }
  }
}

// ---- Acceptance scenario: 25% dropout, all rounds complete ---------------------

TEST_F(ChaosFixture, QuarterDropoutRunCompletesAllRounds) {
  FaultPlan plan;
  plan.drop_probability = 0.25;
  plan.seed = 930;
  const ChaosResult result = run_chaos(Strategy::FedAvg, plan, 4, 1500);

  ASSERT_EQ(result.history.rounds.size(), 4u) << "dropouts must not abort the run";
  const std::size_t drops = result.injected[static_cast<std::size_t>(FaultKind::Drop)];
  ASSERT_GT(drops, 0u);
  EXPECT_EQ(result.history.total_timeouts(), drops);
  for (const auto& record : result.history.rounds) {
    // Aggregation ran over whoever responded; accuracy stays a valid number.
    EXPECT_GE(record.test_accuracy, 0.0);
    EXPECT_LE(record.test_accuracy, 1.0);
    EXPECT_LE(record.timeouts, record.sampled_clients);
  }
  // Replaying the seed reproduces the counts and the final model exactly.
  const ChaosResult replay = run_chaos(Strategy::FedAvg, plan, 4, 1500);
  EXPECT_EQ(replay.injected, result.injected);
  expect_histories_identical(result.history, replay.history);
  EXPECT_EQ(replay.final_parameters, result.final_parameters);
}

// ---- Ejection policy -----------------------------------------------------------

TEST_F(ChaosFixture, ClientFailingEveryRoundIsEjected) {
  // A plan that makes every (client, round) drop would stall all clients, so
  // drive the server directly: one client connects and then never answers.
  defenses::FedAvgAggregator strategy;
  RemoteServerConfig config;
  config.expected_clients = 1;
  config.clients_per_round = 1;
  config.rounds = 4;
  config.seed = 940;
  config.round_timeout_ms = 200;
  config.readmit_timeout_ms = 100;
  config.eject_after_failures = 2;
  RemoteServer server{config, strategy, test, models::ClassifierArch::Mlp, geometry};
  const std::uint16_t port = server.port();

  std::thread silent_client{[port] {
    TcpStream stream = TcpStream::connect("127.0.0.1", port);
    stream.send_message({MessageType::Hello, encode_hello(0)});
    // Swallow requests without ever answering until the server gives up on us.
    try {
      for (;;) (void)stream.receive_message();
    } catch (const std::exception&) {
    }
  }};
  const fl::RunHistory history = server.run();
  silent_client.join();

  ASSERT_EQ(history.rounds.size(), 4u);
  EXPECT_EQ(history.total_ejected(), 1u);
  EXPECT_EQ(history.rounds[0].timeouts, 1u);
  EXPECT_EQ(history.rounds[1].timeouts, 1u);
  EXPECT_EQ(history.rounds[1].ejected_clients, 1u);
  // Once ejected the client is out of the sampling universe: later rounds
  // run over an empty federation and keep the model unchanged.
  EXPECT_EQ(history.rounds[2].sampled_clients, 0u);
  EXPECT_EQ(history.rounds[3].sampled_clients, 0u);
  EXPECT_EQ(history.rounds[2].test_accuracy, history.rounds[3].test_accuracy);
}

// ---- Registry as the single source of truth -----------------------------------

// RoundRecord's fault and traffic fields are per-round deltas of the obs
// registry counters (net_dropouts_total etc.), so summing the records must
// reproduce the counter deltas exactly — under a seeded chaos matrix that
// exercises dropouts, timeouts, and corrupt frames at once.
TEST_F(ChaosFixture, HistoryFaultTotalsMatchRegistryCounterDeltas) {
  FaultPlan plan;
  plan.drop_probability = 0.2;
  plan.truncate_probability = 0.15;
  plan.bit_flip_probability = 0.15;
  plan.disconnect_probability = 0.1;
  plan.seed = 950;

  obs::Registry& registry = obs::Registry::global();
  const std::uint64_t rounds0 = registry.counter_value("net_rounds_total");
  const std::uint64_t upload0 = registry.counter_value("net_upload_bytes_total");
  const std::uint64_t download0 = registry.counter_value("net_download_bytes_total");
  const std::uint64_t dropouts0 = registry.counter_value("net_dropouts_total");
  const std::uint64_t timeouts0 = registry.counter_value("net_timeouts_total");
  const std::uint64_t corrupt0 = registry.counter_value("net_corrupt_frames_total");
  const std::uint64_t ejected0 = registry.counter_value("net_ejected_clients_total");

  const ChaosResult result = run_chaos(Strategy::FedAvg, plan, 3, 1500);
  ASSERT_EQ(result.history.rounds.size(), 3u);

  EXPECT_EQ(registry.counter_value("net_rounds_total") - rounds0, 3u);
  EXPECT_EQ(registry.counter_value("net_dropouts_total") - dropouts0,
            result.history.total_dropouts());
  EXPECT_EQ(registry.counter_value("net_timeouts_total") - timeouts0,
            result.history.total_timeouts());
  EXPECT_EQ(registry.counter_value("net_corrupt_frames_total") - corrupt0,
            result.history.total_corrupt_frames());
  EXPECT_EQ(registry.counter_value("net_ejected_clients_total") - ejected0,
            result.history.total_ejected());

  std::size_t upload = 0;
  std::size_t download = 0;
  std::size_t faults = 0;
  for (const auto& record : result.history.rounds) {
    upload += record.server_upload_bytes;
    download += record.server_download_bytes;
    faults += record.dropouts + record.timeouts + record.corrupt_frames;
  }
  EXPECT_EQ(registry.counter_value("net_upload_bytes_total") - upload0, upload);
  EXPECT_EQ(registry.counter_value("net_download_bytes_total") - download0, download);
  ASSERT_GT(faults, 0u) << "the chaos plan must actually inject something";
}

}  // namespace
}  // namespace fedguard::net
