// Tests of the robust-aggregation extensions: Bulyan and the PDGAN-style
// auxiliary-dataset audit, plus the FedProx proximal client objective.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "data/synthetic_mnist.hpp"
#include "defenses/auxiliary_audit.hpp"
#include "defenses/bulyan.hpp"
#include "defenses/fedcpa.hpp"
#include "models/classifier.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fedguard::defenses {
namespace {

ClientUpdate make_update(int id, std::vector<float> psi, bool malicious = false) {
  ClientUpdate update;
  update.client_id = id;
  update.psi = std::move(psi);
  update.num_samples = 100;
  update.truly_malicious = malicious;
  return update;
}

AggregationContext zero_context(const std::vector<float>& global) {
  AggregationContext context;
  context.global_parameters = global;
  return context;
}

TEST(Bulyan, RobustToMinorityOutliers) {
  util::Rng rng{401};
  std::vector<ClientUpdate> updates;
  for (int k = 0; k < 6; ++k) {
    std::vector<float> psi(8);
    for (auto& v : psi) v = 1.0f + rng.uniform_float(-0.1f, 0.1f);
    updates.push_back(make_update(k, std::move(psi)));
  }
  // Two colluding extremes.
  updates.push_back(make_update(6, std::vector<float>(8, 100.0f), true));
  updates.push_back(make_update(7, std::vector<float>(8, 100.0f), true));

  BulyanAggregator bulyan{0.25};
  const std::vector<float> global(8, 0.0f);
  const auto result = bulyan.aggregate(zero_context(global), updates);
  for (const float v : result.parameters) EXPECT_NEAR(v, 1.0f, 0.2f);
}

TEST(Bulyan, IdenticalUpdatesPassThrough) {
  const std::vector<float> psi{0.5f, -1.0f, 2.0f};
  std::vector<ClientUpdate> updates;
  for (int k = 0; k < 5; ++k) updates.push_back(make_update(k, psi));
  BulyanAggregator bulyan{0.2};
  const std::vector<float> global(3, 0.0f);
  const auto result = bulyan.aggregate(zero_context(global), updates);
  for (std::size_t i = 0; i < psi.size(); ++i) {
    EXPECT_NEAR(result.parameters[i], psi[i], 1e-5f);
  }
}

TEST(Bulyan, HandlesTinyCohorts) {
  std::vector<ClientUpdate> updates;
  updates.push_back(make_update(0, {1.0f}));
  updates.push_back(make_update(1, {2.0f}));
  BulyanAggregator bulyan{0.4};
  const std::vector<float> global(1, 0.0f);
  EXPECT_NO_THROW((void)bulyan.aggregate(zero_context(global), updates));
}

TEST(Bulyan, SelectionExcludesOutlierIds) {
  std::vector<ClientUpdate> updates;
  for (int k = 0; k < 7; ++k) {
    updates.push_back(make_update(k, {static_cast<float>(k) * 0.01f}));
  }
  updates.push_back(make_update(7, {1e6f}, true));
  BulyanAggregator bulyan{0.2};
  const std::vector<float> global(1, 0.0f);
  const auto result = bulyan.aggregate(zero_context(global), updates);
  EXPECT_TRUE(std::find(result.rejected_clients.begin(), result.rejected_clients.end(), 7) !=
              result.rejected_clients.end());
}

// ---- Auxiliary audit (PDGAN-lite) ----------------------------------------------

struct AuxAuditFixture : ::testing::Test {
  void SetUp() override {
    geometry = models::ImageGeometry{1, 28, 28, 10};
    auxiliary = data::generate_synthetic_mnist(200, 402);
    const data::Dataset train = data::generate_synthetic_mnist(300, 403);
    models::Classifier good{models::ClassifierArch::Mlp, geometry, 404};
    for (int epoch = 0; epoch < 10; ++epoch) {
      for (std::size_t start = 0; start + 16 <= train.size(); start += 16) {
        std::vector<std::size_t> idx(16);
        std::iota(idx.begin(), idx.end(), start);
        const auto batch = train.gather(idx);
        good.train_batch(batch.images, batch.labels, 0.05f, 0.9f);
      }
    }
    good_psi = good.parameters_flat();
    global.assign(good_psi.size(), 0.0f);
  }

  models::ImageGeometry geometry;
  data::Dataset auxiliary;
  std::vector<float> good_psi;
  std::vector<float> global;
};

TEST_F(AuxAuditFixture, RejectsPoisonedUpdates) {
  AuxiliaryAuditAggregator audit{models::ClassifierArch::Mlp, geometry, auxiliary, 0, 405};
  std::vector<ClientUpdate> updates;
  updates.push_back(make_update(0, good_psi, false));
  updates.push_back(make_update(1, good_psi, false));
  updates.push_back(make_update(2, std::vector<float>(good_psi.size(), 1.0f), true));
  AggregationContext context = zero_context(global);
  context.round = 0;
  const auto result = audit.aggregate(context, updates);
  EXPECT_EQ(result.rejected_clients, (std::vector<int>{2}));
  EXPECT_GT(audit.last_scores()[0], audit.last_scores()[2] + 0.3);
}

TEST_F(AuxAuditFixture, WarmupPhaseAcceptsEverything) {
  // PDGAN's initialization window: no filtering before warmup ends.
  AuxiliaryAuditAggregator audit{models::ClassifierArch::Mlp, geometry, auxiliary,
                                 /*warmup_rounds=*/3, 406};
  std::vector<ClientUpdate> updates;
  updates.push_back(make_update(0, good_psi, false));
  updates.push_back(make_update(1, std::vector<float>(good_psi.size(), 1.0f), true));

  AggregationContext context = zero_context(global);
  context.round = 2;  // still inside warmup
  auto result = audit.aggregate(context, updates);
  EXPECT_TRUE(result.rejected_clients.empty());

  context.round = 3;  // warmup over: filtering active
  result = audit.aggregate(context, updates);
  EXPECT_EQ(result.rejected_clients, (std::vector<int>{1}));
}

TEST(AuxAudit, EmptyAuxiliaryRejected) {
  EXPECT_THROW((void)AuxiliaryAuditAggregator(models::ClassifierArch::Mlp,
                                              models::ImageGeometry{}, data::Dataset{}, 0,
                                              1),
               std::invalid_argument);
}

TEST(FedCpaSimilarity, IdenticalCriticalSetsScoreOne) {
  const std::vector<std::uint32_t> indices{1, 4, 7};
  const std::vector<float> values{0.5f, -2.0f, 1.5f};
  EXPECT_NEAR(FedCpaAggregator::critical_similarity(indices, values, indices, values),
              1.0, 1e-9);
}

TEST(FedCpaSimilarity, DisjointSetsScoreZero) {
  const std::vector<std::uint32_t> a{0, 1};
  const std::vector<std::uint32_t> b{2, 3};
  const std::vector<float> values{1.0f, 1.0f};
  EXPECT_EQ(FedCpaAggregator::critical_similarity(a, values, b, values), 0.0);
}

TEST(FedCpaSimilarity, OppositeSignsClampToZero) {
  // Same critical coordinates, mirrored values: raw cosine is -1, and the
  // clamp keeps the score at 0 instead of rewarding anti-correlation.
  const std::vector<std::uint32_t> indices{2, 5};
  const std::vector<float> values{1.0f, 2.0f};
  const std::vector<float> mirrored{-1.0f, -2.0f};
  EXPECT_EQ(FedCpaAggregator::critical_similarity(indices, values, indices, mirrored),
            0.0);
}

TEST(FedCpaSimilarity, PartialOverlapMatchesHandComputedCosine) {
  // Intersection is index 1 only: dot = 4*4 = 16 over full-set norms 5 * 5.
  const std::vector<std::uint32_t> a{0, 1};
  const std::vector<float> values_a{3.0f, 4.0f};
  const std::vector<std::uint32_t> b{1, 2};
  const std::vector<float> values_b{4.0f, 3.0f};
  EXPECT_NEAR(FedCpaAggregator::critical_similarity(a, values_a, b, values_b),
              16.0 / 25.0, 1e-9);
}

TEST(FedCpaSimilarity, ZeroNormOrEmptySetScoresZero) {
  const std::vector<std::uint32_t> indices{0, 1};
  const std::vector<float> zeros{0.0f, 0.0f};
  const std::vector<float> values{1.0f, 1.0f};
  EXPECT_EQ(FedCpaAggregator::critical_similarity(indices, zeros, indices, values), 0.0);
  EXPECT_EQ(FedCpaAggregator::critical_similarity({}, {}, indices, values), 0.0);
}

TEST(FedCpa, MedianGateRejectsAColludingMinorityClique) {
  // 10 benign clients move ~+1 per coordinate with jitter; 4 colluders submit
  // the *identical* poisoned vector. Their mutual pairwise similarity is 1 —
  // a pure popularity score would crown them — but they cannot move the
  // coordinate-wise median while a minority, so the consensus gate zeroes
  // their score and keep_fraction=0.5 drops all four.
  util::Rng rng{431};
  std::vector<ClientUpdate> updates;
  for (int k = 0; k < 10; ++k) {
    std::vector<float> psi(16);
    for (auto& v : psi) v = 1.0f + rng.uniform_float(-0.2f, 0.2f);
    updates.push_back(make_update(k, std::move(psi)));
  }
  for (int k = 10; k < 14; ++k) {
    updates.push_back(make_update(k, std::vector<float>(16, -2.0f), true));
  }
  FedCpaAggregator fedcpa{FedCpaConfig{0.5, 0.5}};
  const std::vector<float> global(16, 0.0f);
  const auto result = fedcpa.aggregate(zero_context(global), updates);
  EXPECT_EQ(result.accepted_clients.size(), 7u);
  for (const int rejected_required : {10, 11, 12, 13}) {
    EXPECT_TRUE(std::find(result.rejected_clients.begin(),
                          result.rejected_clients.end(),
                          rejected_required) != result.rejected_clients.end())
        << "colluder " << rejected_required << " was accepted";
  }
  // The aggregate tracks the benign direction, not the clique's.
  for (const float v : result.parameters) EXPECT_GT(v, 0.5f);
}

}  // namespace
}  // namespace fedguard::defenses

// ---- FedProx proximal objective ------------------------------------------------

namespace fedguard::models {
namespace {

TEST(FedProx, ProximalTermPullsTowardAnchor) {
  const data::Dataset train = data::generate_synthetic_mnist(200, 407);
  const ImageGeometry geometry{1, 28, 28, 10};

  auto local_drift = [&](float mu) {
    Classifier classifier{ClassifierArch::Mlp, geometry, 408};
    const std::vector<float> anchor = classifier.parameters_flat();
    for (int epoch = 0; epoch < 3; ++epoch) {
      for (std::size_t start = 0; start + 16 <= train.size(); start += 16) {
        std::vector<std::size_t> idx(16);
        std::iota(idx.begin(), idx.end(), start);
        const auto batch = train.gather(idx);
        classifier.train_batch(batch.images, batch.labels, 0.05f, 0.9f, mu, anchor);
      }
    }
    const std::vector<float> trained = classifier.parameters_flat();
    return util::l2_distance(trained, anchor);
  };

  const double free_drift = local_drift(0.0f);
  const double prox_drift = local_drift(1.0f);
  EXPECT_LT(prox_drift, free_drift * 0.8)
      << "the proximal term must keep local parameters near the anchor";
  EXPECT_GT(prox_drift, 0.0);
}

TEST(FedProx, ShortAnchorRejected) {
  const ImageGeometry geometry{1, 28, 28, 10};
  Classifier classifier{ClassifierArch::Mlp, geometry, 409};
  const tensor::Tensor images{{4, 1, 28, 28}, 0.5f};
  const std::vector<int> labels{0, 1, 2, 3};
  const std::vector<float> short_anchor(10, 0.0f);
  EXPECT_THROW(
      (void)classifier.train_batch(images, labels, 0.05f, 0.9f, 0.5f, short_anchor),
      std::invalid_argument);
}

}  // namespace
}  // namespace fedguard::models
