// Golden parity pin for the zero-copy update pipeline: the full round loop
// (in-process fl::Server and TCP net::RemoteServer with faults disabled) must
// reproduce these run histories bit-for-bit — accuracies (exact double bits),
// sampling/rejection counts, traffic bytes, and a hash of the final global
// parameter vector. The goldens were captured from the pre-arena pipeline
// (per-update ClientUpdate vectors, per-strategy re-concatenation), so any
// refactor of the update path that changes a single RNG draw or float
// summation order fails here.
//
// The pinned digests are exact only for the canonical build (Release, no
// sanitizers): sanitizer instrumentation and -O0 change float codegen
// (contraction, vectorization), which shifts low mantissa bits during
// training. Non-canonical builds skip the pins but still enforce the
// build-independent invariant — the in-process and remote pipelines agree
// bit-for-bit with each other (everything except the traffic columns, which
// legitimately differ by frame headers).
//
// Regenerate (only when a change is *supposed* to alter the science):
//   FEDGUARD_GOLDEN_PRINT=1 ./test_update_pipeline

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "data/partition.hpp"
#include "data/synthetic_mnist.hpp"
#include "defenses/fedavg.hpp"
#include "defenses/fedguard.hpp"
#include "defenses/geomed.hpp"
#include "defenses/krum.hpp"
#include "defenses/spectral.hpp"
#include "fl/server.hpp"
#include "net/remote.hpp"
#include "tensor/kernels/kernel_arch.hpp"
#include "util/logging.hpp"

namespace fedguard {
namespace {

constexpr std::size_t kClients = 4;
constexpr std::size_t kClientsPerRound = 3;  // < N: exercises the sampling path
constexpr std::size_t kRounds = 3;

#if defined(NDEBUG) && !defined(FEDGUARD_SANITIZE_ACTIVE)
constexpr bool kCanonicalBuild = true;  // matches the build the pins came from
#else
constexpr bool kCanonicalBuild = false;
#endif

std::string hex64(std::uint64_t bits) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(bits));
  return buf;
}

std::string double_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return hex64(bits);
}

// FNV-1a over the raw float bits: one flipped mantissa bit anywhere in the
// final global parameter vector changes the digest.
std::uint64_t param_digest(std::span<const float> params) {
  std::uint64_t h = 1469598103934665603ull;
  for (const float f : params) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &f, sizeof bits);
    for (int byte = 0; byte < 4; ++byte) {
      h ^= (bits >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

// Drop the per-round traffic columns (the only legitimate local/remote
// difference: the socket path charges real frame sizes, headers included).
std::string strip_traffic(const std::string& serialized) {
  std::string out;
  std::istringstream stream{serialized};
  std::string line;
  while (std::getline(stream, line)) {
    out += line.substr(0, line.find(" up="));
    out += '\n';
  }
  return out;
}

// First round's server download bytes out of a serialize() string (the ψ
// upload direction in paper terms; the codec-sensitive column).
std::uint64_t first_down_bytes(const std::string& serialized) {
  const std::size_t at = serialized.find(" down=");
  if (at == std::string::npos) return 0;
  return std::strtoull(serialized.c_str() + at + 6, nullptr, 10);
}

std::string serialize(const fl::RunHistory& history, std::span<const float> params) {
  std::string out;
  for (const auto& r : history.rounds) {
    out += "r" + std::to_string(r.round) + " acc=" + double_bits(r.test_accuracy) +
           " sampled=" + std::to_string(r.sampled_clients) +
           " mal=" + std::to_string(r.sampled_malicious) +
           " rej=" + std::to_string(r.rejected_clients) +
           " rejmal=" + std::to_string(r.rejected_malicious) +
           " rejben=" + std::to_string(r.rejected_benign) +
           " up=" + std::to_string(r.server_upload_bytes) +
           " down=" + std::to_string(r.server_download_bytes) + "\n";
  }
  out += "params=" + hex64(param_digest(params)) + "\n";
  return out;
}

// ---- Goldens (pre-refactor pipeline, Release, synthetic data) -----------------

const std::map<std::string, std::string>& golden_local() {
  static const std::map<std::string, std::string> goldens = {
      {"fedavg",
       "r0 acc=3fd0a3d70a3d70a4 sampled=3 mal=0 rej=0 rejmal=0 rejben=0 up=1221264 down=1221264\n"
       "r1 acc=3fe199999999999a sampled=3 mal=0 rej=0 rejmal=0 rejben=0 up=1221264 down=1221264\n"
       "r2 acc=3fe2e147ae147ae1 sampled=3 mal=0 rej=0 rejmal=0 rejben=0 up=1221264 down=1221264\n"
       "params=b405e49565a40bbb\n"},
      {"geomed",
       "r0 acc=3fd1eb851eb851ec sampled=3 mal=0 rej=0 rejmal=0 rejben=0 up=1221264 down=1221264\n"
       "r1 acc=3fe0a3d70a3d70a4 sampled=3 mal=0 rej=0 rejmal=0 rejben=0 up=1221264 down=1221264\n"
       "r2 acc=3fe3333333333333 sampled=3 mal=0 rej=0 rejmal=0 rejben=0 up=1221264 down=1221264\n"
       "params=27a70299719ecf00\n"},
      {"krum",
       "r0 acc=3fd7ae147ae147ae sampled=3 mal=0 rej=2 rejmal=0 rejben=2 up=1221264 down=1221264\n"
       "r1 acc=3fdae147ae147ae1 sampled=3 mal=0 rej=2 rejmal=0 rejben=2 up=1221264 down=1221264\n"
       "r2 acc=3fe0a3d70a3d70a4 sampled=3 mal=0 rej=2 rejmal=0 rejben=2 up=1221264 down=1221264\n"
       "params=e39449391e8bef09\n"},
      {"spectral",
       "r0 acc=3fdb851eb851eb85 sampled=3 mal=0 rej=1 rejmal=0 rejben=1 up=1221264 down=1221264\n"
       "r1 acc=3fe1eb851eb851ec sampled=3 mal=0 rej=1 rejmal=0 rejben=1 up=1221264 down=1221264\n"
       "r2 acc=3fdeb851eb851eb8 sampled=3 mal=0 rej=2 rejmal=0 rejben=2 up=1221264 down=1221264\n"
       "params=20273794b167e80e\n"},
      {"fedguard",
       "r0 acc=3fd3333333333333 sampled=3 mal=0 rej=1 rejmal=0 rejben=1 up=1221264 down=1695648\n"
       "r1 acc=3fdd70a3d70a3d71 sampled=3 mal=0 rej=1 rejmal=0 rejben=1 up=1221264 down=1695648\n"
       "r2 acc=3fe147ae147ae148 sampled=3 mal=0 rej=2 rejmal=0 rejben=2 up=1221264 down=1695648\n"
       "params=2f613987e00b6182\n"},
  };
  return goldens;
}

const std::map<std::string, std::string>& golden_remote() {
  // Accuracy bits and param digests are identical to the local goldens (the
  // socket layer must not change the science); only the traffic columns
  // differ — the remote path charges exact frame sizes, headers included (trace context adds 16 bytes per request, 8 per reply).
  static const std::map<std::string, std::string> goldens = {
      {"fedavg",
       "r0 acc=3fd0a3d70a3d70a4 sampled=3 mal=0 rej=0 rejmal=0 rejben=0 up=1221432 down=1221456\n"
       "r1 acc=3fe199999999999a sampled=3 mal=0 rej=0 rejmal=0 rejben=0 up=1221432 down=1221456\n"
       "r2 acc=3fe2e147ae147ae1 sampled=3 mal=0 rej=0 rejmal=0 rejben=0 up=1221432 down=1221456\n"
       "params=b405e49565a40bbb\n"},
      {"geomed",
       "r0 acc=3fd1eb851eb851ec sampled=3 mal=0 rej=0 rejmal=0 rejben=0 up=1221432 down=1221456\n"
       "r1 acc=3fe0a3d70a3d70a4 sampled=3 mal=0 rej=0 rejmal=0 rejben=0 up=1221432 down=1221456\n"
       "r2 acc=3fe3333333333333 sampled=3 mal=0 rej=0 rejmal=0 rejben=0 up=1221432 down=1221456\n"
       "params=27a70299719ecf00\n"},
      {"krum",
       "r0 acc=3fd7ae147ae147ae sampled=3 mal=0 rej=2 rejmal=0 rejben=2 up=1221432 down=1221456\n"
       "r1 acc=3fdae147ae147ae1 sampled=3 mal=0 rej=2 rejmal=0 rejben=2 up=1221432 down=1221456\n"
       "r2 acc=3fe0a3d70a3d70a4 sampled=3 mal=0 rej=2 rejmal=0 rejben=2 up=1221432 down=1221456\n"
       "params=e39449391e8bef09\n"},
      {"spectral",
       "r0 acc=3fdb851eb851eb85 sampled=3 mal=0 rej=1 rejmal=0 rejben=1 up=1221432 down=1221456\n"
       "r1 acc=3fe1eb851eb851ec sampled=3 mal=0 rej=1 rejmal=0 rejben=1 up=1221432 down=1221456\n"
       "r2 acc=3fdeb851eb851eb8 sampled=3 mal=0 rej=2 rejmal=0 rejben=2 up=1221432 down=1221456\n"
       "params=20273794b167e80e\n"},
      {"fedguard",
       "r0 acc=3fd3333333333333 sampled=3 mal=0 rej=1 rejmal=0 rejben=1 up=1221432 down=1695816\n"
       "r1 acc=3fdd70a3d70a3d71 sampled=3 mal=0 rej=1 rejmal=0 rejben=1 up=1221432 down=1695816\n"
       "r2 acc=3fe147ae147ae148 sampled=3 mal=0 rej=2 rejmal=0 rejben=2 up=1221432 down=1695816\n"
       "params=2f613987e00b6182\n"},
  };
  return goldens;
}

struct PipelineGoldenTest : ::testing::Test {
  static void SetUpTestSuite() {
    util::set_log_level(util::LogLevel::Warn);
    // The pinned digests come from the serial kernel tier (the determinism
    // oracle). Pin it unless the caller forces a tier explicitly (the
    // run_tier1_tests.sh --kernel-arch matrix leg does); under a SIMD tier
    // the pins are skipped in check() and only local/remote parity holds.
    if (std::getenv("FEDGUARD_KERNEL_ARCH") == nullptr) {
      tensor::kernels::set_kernel_arch(tensor::kernels::KernelArch::Serial);
    }
  }

  void SetUp() override {
    geometry = models::ImageGeometry{1, 28, 28, 10};
    train = data::generate_synthetic_mnist(320, 901);
    test = data::generate_synthetic_mnist(100, 902);
    partition = data::iid_partition(train.size(), kClients, 903);
    auxiliary = data::generate_synthetic_mnist(200, 904);
  }

  fl::ClientConfig client_config(bool with_cvae) const {
    fl::ClientConfig config;
    config.local_epochs = 1;
    config.batch_size = 16;
    config.train_cvae = with_cvae;
    config.cvae_epochs = 10;
    config.cvae_batch_size = 8;
    config.cvae_learning_rate = 3e-3f;
    return config;
  }

  models::CvaeSpec cvae_spec() const {
    models::CvaeSpec spec;
    spec.hidden = 48;
    spec.latent = 2;
    return spec;
  }

  std::unique_ptr<defenses::AggregationStrategy> make_strategy(const std::string& name) const {
    if (name == "fedavg") return std::make_unique<defenses::FedAvgAggregator>();
    if (name == "geomed") return std::make_unique<defenses::GeoMedAggregator>();
    if (name == "krum") return std::make_unique<defenses::KrumAggregator>();
    if (name == "spectral") {
      defenses::SpectralConfig config;
      config.surrogate_dim = 512;
      config.pretrain_rounds = 3;
      config.pretrain_clients = 5;
      config.vae_epochs = 40;
      return std::make_unique<defenses::SpectralAggregator>(
          config, models::ClassifierArch::Mlp, geometry, auxiliary, 921);
    }
    if (name == "fedguard") {
      defenses::FedGuardConfig config;
      config.cvae_spec = cvae_spec();
      config.total_samples = 20;
      return std::make_unique<defenses::FedGuardAggregator>(
          config, models::ClassifierArch::Mlp, geometry, 920);
    }
    ADD_FAILURE() << "unknown strategy " << name;
    return nullptr;
  }

  std::vector<std::unique_ptr<fl::Client>> make_clients(bool with_cvae) const {
    std::vector<std::unique_ptr<fl::Client>> clients;
    for (std::size_t i = 0; i < kClients; ++i) {
      clients.push_back(std::make_unique<fl::Client>(
          static_cast<int>(i), train, partition[i], client_config(with_cvae),
          models::ClassifierArch::Mlp, geometry, cvae_spec(), 940 + i));
    }
    return clients;
  }

  std::string run_local(const std::string& name,
                        util::WireCodec codec = util::WireCodec::Fp32) const {
    auto strategy = make_strategy(name);
    auto clients = make_clients(strategy->wants_decoders());
    fl::ServerConfig config;
    config.clients_per_round = kClientsPerRound;
    config.rounds = kRounds;
    config.seed = 930;
    config.psi_codec = codec;
    fl::Server server{config, clients, *strategy, test, models::ClassifierArch::Mlp,
                      geometry};
    const fl::RunHistory history = server.run();
    return serialize(history, server.global_parameters());
  }

  std::string run_remote(const std::string& name,
                         util::WireCodec codec = util::WireCodec::Fp32) const {
    auto strategy = make_strategy(name);
    auto clients = make_clients(strategy->wants_decoders());
    net::RemoteServerConfig config;
    config.expected_clients = kClients;
    config.clients_per_round = kClientsPerRound;
    config.rounds = kRounds;
    config.seed = 930;
    config.psi_codec = codec;
    net::RemoteServer server{config, *strategy, test, models::ClassifierArch::Mlp,
                             geometry};
    const std::uint16_t port = server.port();
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (std::size_t i = 0; i < kClients; ++i) {
      threads.emplace_back(
          [&, i] { (void)net::run_remote_client("127.0.0.1", port, *clients[i]); });
    }
    const fl::RunHistory history = server.run();
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(history.total_dropouts() + history.total_timeouts() +
                  history.total_corrupt_frames(),
              0u)
        << name << ": fault-free remote run saw faults; golden invalid";
    return serialize(history, server.global_parameters());
  }

  void check(const std::string& name, const std::string& path, const std::string& actual,
             const std::map<std::string, std::string>& goldens) const {
    if (std::getenv("FEDGUARD_GOLDEN_PRINT") != nullptr) {
      std::printf("GOLDEN[%s/%s] <<<\n%s>>>\n", name.c_str(), path.c_str(),
                  actual.c_str());
      std::fflush(stdout);
      return;
    }
    if (!kCanonicalBuild) return;  // pins only hold for the pinning build's codegen
    if (tensor::kernels::active_kernel_arch() != tensor::kernels::KernelArch::Serial) {
      return;  // SIMD tiers reorder distance reductions; only parity is pinned
    }
    const auto it = goldens.find(name);
    ASSERT_NE(it, goldens.end()) << name;
    EXPECT_EQ(actual, it->second) << name << "/" << path
                                  << ": run history diverged from the pinned pipeline";
  }

  models::ImageGeometry geometry;
  data::Dataset train;
  data::Dataset test;
  data::Dataset auxiliary;
  data::Partition partition;
};

TEST_F(PipelineGoldenTest, InProcessHistoriesMatchGoldens) {
  for (const auto& [name, golden] : golden_local()) {
    (void)golden;
    check(name, "local", run_local(name), golden_local());
  }
}

TEST_F(PipelineGoldenTest, Q8TransportKeepsLocalRemoteParity) {
  // Under the q8 ψ codec there are no pinned goldens (quantization
  // legitimately perturbs the science), but the in-process server's simulated
  // quantization roundtrip must reproduce the socket path's encode/decode
  // bit-for-bit — so local and remote histories still agree exactly, and the
  // ψ download shrinks by the codec's ~3.9x ratio in both meters.
  for (const std::string name : {"fedavg", "krum"}) {
    const std::string local_q8 = run_local(name, util::WireCodec::Q8);
    EXPECT_EQ(strip_traffic(local_q8), strip_traffic(run_remote(name, util::WireCodec::Q8)))
        << name << ": q8 in-process and remote pipelines diverged";
    EXPECT_GE(static_cast<double>(first_down_bytes(run_local(name))) /
                  static_cast<double>(first_down_bytes(local_q8)),
              3.5)
        << name << ": q8 ψ download did not shrink >= 3.5x";
  }
}

TEST_F(PipelineGoldenTest, RemoteHistoriesMatchGoldensAndLocalParity) {
  for (const auto& [name, golden] : golden_remote()) {
    (void)golden;
    const std::string remote = run_remote(name);
    check(name, "remote", remote, golden_remote());
    // Build-independent: the socket layer must not change the science.
    EXPECT_EQ(strip_traffic(run_local(name)), strip_traffic(remote))
        << name << ": in-process and remote pipelines diverged";
  }
}

}  // namespace
}  // namespace fedguard
