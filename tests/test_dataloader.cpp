#include "data/dataloader.hpp"

#include <gtest/gtest.h>

#include <map>

#include "data/synthetic_mnist.hpp"

namespace fedguard::data {
namespace {

TEST(DataLoader, IteratesAllSamplesOncePerEpoch) {
  const Dataset dataset = generate_synthetic_mnist(50, 1);
  std::vector<std::size_t> indices(dataset.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  DataLoader loader{dataset, indices, 8, 2};

  std::size_t seen = 0;
  Dataset::Batch batch;
  while (loader.next(batch)) {
    EXPECT_LE(batch.labels.size(), 8u);
    seen += batch.labels.size();
  }
  EXPECT_EQ(seen, 50u);
  EXPECT_EQ(loader.batches_per_epoch(), 7u);  // ceil(50/8)
}

TEST(DataLoader, LastBatchIsRemainder) {
  const Dataset dataset = generate_synthetic_mnist(10, 3);
  DataLoader loader{dataset, {0, 1, 2, 3, 4, 5, 6}, 3, 4};
  Dataset::Batch batch;
  std::vector<std::size_t> sizes;
  while (loader.next(batch)) sizes.push_back(batch.labels.size());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{3, 3, 1}));
}

TEST(DataLoader, EpochsReshuffle) {
  const Dataset dataset = generate_synthetic_mnist(64, 5);
  std::vector<std::size_t> indices(dataset.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  DataLoader loader{dataset, indices, 64, 6};

  auto epoch_labels = [&loader]() {
    Dataset::Batch batch;
    std::vector<int> labels;
    while (loader.next(batch)) {
      labels.insert(labels.end(), batch.labels.begin(), batch.labels.end());
    }
    return labels;
  };
  const std::vector<int> first = epoch_labels();
  loader.start_epoch();
  const std::vector<int> second = epoch_labels();
  EXPECT_NE(first, second);  // different order (overwhelmingly likely)
  // But the multiset of labels is identical.
  std::map<int, int> count_a, count_b;
  for (const int l : first) ++count_a[l];
  for (const int l : second) ++count_b[l];
  EXPECT_EQ(count_a, count_b);
}

TEST(DataLoader, SubsetOnlyTouchesGivenIndices) {
  const Dataset dataset = generate_synthetic_mnist(30, 7);
  const std::vector<std::size_t> subset{1, 5, 9};
  DataLoader loader{dataset, subset, 2, 8};
  Dataset::Batch batch;
  std::size_t seen = 0;
  while (loader.next(batch)) seen += batch.labels.size();
  EXPECT_EQ(seen, 3u);
  EXPECT_EQ(loader.sample_count(), 3u);
}

TEST(DataLoader, InvalidConstruction) {
  const Dataset dataset = generate_synthetic_mnist(5, 9);
  EXPECT_THROW((DataLoader{dataset, {0}, 0, 1}), std::invalid_argument);
  EXPECT_THROW((DataLoader{dataset, {99}, 2, 1}), std::out_of_range);
}

}  // namespace
}  // namespace fedguard::data
