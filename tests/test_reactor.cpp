// Reactor unit tests: frame round-trips, connection churn, idle sweeps,
// decode-error policy, and a 1k-socket smoke run. The reactor is
// single-threaded by design, so the tests pump poll_once() from the test
// thread and talk to it through plain blocking loopback sockets — no cross-
// thread state, which keeps the TSan leg quiet by construction.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <numeric>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "net/reactor.hpp"
#include "net/socket.hpp"
#include "util/logging.hpp"

namespace fedguard::net {
namespace {

using namespace std::chrono_literals;

Message hello_message(int client_id) {
  return Message{MessageType::Hello, encode_hello(client_id)};
}

struct ReactorFixture : ::testing::Test {
  static void SetUpTestSuite() { util::set_log_level(util::LogLevel::Warn); }

  void SetUp() override {
    Reactor::Callbacks callbacks;
    callbacks.on_accept = [this](Reactor::ConnectionId id) { accepted.push_back(id); };
    callbacks.on_message = [this](Reactor::ConnectionId id, Message&& message) {
      if (echo) reactor->send(id, message);
      messages.emplace_back(id, std::move(message));
    };
    callbacks.on_close = [this](Reactor::ConnectionId id) { closed.push_back(id); };
    callbacks.on_decode_error = [this](Reactor::ConnectionId, const DecodeError& error) {
      decode_errors.push_back(error.code());
      return keep_on_decode_error;
    };
    reactor = std::make_unique<Reactor>(std::move(callbacks));
    listener = std::make_unique<TcpListener>(0, 1024);
    reactor->listen(*listener);
  }

  /// Pump poll_once until `done` holds or the deadline passes.
  template <typename Pred>
  [[nodiscard]] bool pump_until(Pred done, std::chrono::milliseconds deadline = 20000ms) {
    const auto until = std::chrono::steady_clock::now() + deadline;
    while (!done()) {
      if (std::chrono::steady_clock::now() > until) return false;
      (void)reactor->poll_once(10ms);
    }
    return true;
  }

  [[nodiscard]] TcpStream connect_client() {
    return TcpStream::connect("127.0.0.1", listener->port());
  }

  std::vector<Reactor::ConnectionId> accepted;
  std::vector<Reactor::ConnectionId> closed;
  std::vector<std::pair<Reactor::ConnectionId, Message>> messages;
  std::vector<DecodeErrorCode> decode_errors;
  bool echo = false;
  bool keep_on_decode_error = false;
  std::unique_ptr<Reactor> reactor;
  std::unique_ptr<TcpListener> listener;
};

TEST_F(ReactorFixture, FrameRoundTripAndEcho) {
  echo = true;
  TcpStream client = connect_client();
  client.set_receive_timeout(20000ms);
  client.send_message(hello_message(7));

  ASSERT_TRUE(pump_until([&] { return messages.size() == 1; }));
  EXPECT_EQ(accepted.size(), 1u);
  EXPECT_EQ(messages[0].first, accepted[0]);
  EXPECT_EQ(messages[0].second.type, MessageType::Hello);
  EXPECT_EQ(decode_hello(messages[0].second.payload), 7);

  // Drain the echo out of the reactor's write queue, then read it back.
  ASSERT_TRUE(pump_until([&] { return reactor->pending_write_bytes() == 0; }));
  const Message reply = client.receive_message();
  EXPECT_EQ(reply.type, MessageType::Hello);
  EXPECT_EQ(decode_hello(reply.payload), 7);
}

TEST_F(ReactorFixture, ConnectionChurn) {
  // Repeated connect -> frame -> disconnect cycles: every registered
  // connection must fire on_close exactly once and ids must never repeat.
  constexpr std::size_t kCycles = 40;
  for (std::size_t i = 0; i < kCycles; ++i) {
    TcpStream client = connect_client();
    client.send_message(hello_message(static_cast<int>(i)));
    ASSERT_TRUE(pump_until([&] { return messages.size() == i + 1; })) << "cycle " << i;
    client.close();
    ASSERT_TRUE(pump_until([&] { return closed.size() == i + 1; })) << "cycle " << i;
  }
  EXPECT_EQ(reactor->connection_count(), 0u);
  EXPECT_EQ(accepted.size(), kCycles);
  ASSERT_EQ(closed.size(), kCycles);
  std::vector<Reactor::ConnectionId> unique_closed = closed;
  std::sort(unique_closed.begin(), unique_closed.end());
  unique_closed.erase(std::unique(unique_closed.begin(), unique_closed.end()),
                      unique_closed.end());
  EXPECT_EQ(unique_closed.size(), kCycles);
}

TEST_F(ReactorFixture, AdoptedConnectionSendsAndReceives) {
  // add_connection adopts an outbound stream (the bench harness path):
  // on_accept must NOT fire for it, but frames flow both ways.
  std::vector<Message> client_side;
  Reactor::Callbacks client_callbacks;
  client_callbacks.on_message = [&](Reactor::ConnectionId, Message&& message) {
    client_side.push_back(std::move(message));
  };
  Reactor client_reactor{std::move(client_callbacks)};

  echo = true;
  const Reactor::ConnectionId cid = client_reactor.add_connection(connect_client());
  EXPECT_EQ(client_reactor.connection_count(), 1u);
  ASSERT_TRUE(client_reactor.send(cid, hello_message(42)));

  const auto until = std::chrono::steady_clock::now() + 20000ms;
  while (client_side.empty() && std::chrono::steady_clock::now() < until) {
    (void)client_reactor.poll_once(5ms);
    (void)reactor->poll_once(5ms);
  }
  ASSERT_EQ(client_side.size(), 1u);
  EXPECT_EQ(decode_hello(client_side[0].payload), 42);
  EXPECT_TRUE(accepted.size() == 1u);  // server side accepted; client side adopted
}

TEST_F(ReactorFixture, SweepIdleClosesOnlyStaleConnections) {
  TcpStream silent = connect_client();
  TcpStream active = connect_client();
  ASSERT_TRUE(pump_until([&] { return accepted.size() == 2; }));

  std::this_thread::sleep_for(300ms);
  // Refresh the active connection's activity clock right before the sweep.
  active.send_message(hello_message(1));
  ASSERT_TRUE(pump_until([&] { return messages.size() == 1; }));

  const std::size_t swept = reactor->sweep_idle(250ms);
  EXPECT_EQ(swept, 1u);
  EXPECT_EQ(reactor->connection_count(), 1u);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0], messages[0].first == accepted[0] ? accepted[1] : accepted[0]);
}

TEST_F(ReactorFixture, BadCrcKeepsConnectionWhenAsked) {
  keep_on_decode_error = true;
  TcpStream client = connect_client();

  // Flip one payload byte after framing: header parses, CRC check fails, and
  // the stream stays in sync — so keep=true must preserve the link.
  std::vector<std::byte> frame = encode_frame(hello_message(9));
  frame.back() ^= std::byte{0x01};
  client.send_all(frame);
  ASSERT_TRUE(pump_until([&] { return decode_errors.size() == 1; }));
  EXPECT_EQ(decode_errors[0], DecodeErrorCode::BadCrc);
  EXPECT_TRUE(closed.empty());
  EXPECT_EQ(reactor->connection_count(), 1u);

  // The connection still works: a clean frame is delivered afterwards.
  client.send_message(hello_message(9));
  ASSERT_TRUE(pump_until([&] { return messages.size() == 1; }));
  EXPECT_EQ(decode_hello(messages[0].second.payload), 9);
}

TEST_F(ReactorFixture, BadMagicDropsConnectionDespiteKeepRequest) {
  keep_on_decode_error = true;  // only honoured for BadCrc/BadShape
  TcpStream client = connect_client();
  std::vector<std::byte> garbage(kFrameHeaderBytes, std::byte{0x5a});
  client.send_all(garbage);

  ASSERT_TRUE(pump_until([&] { return closed.size() == 1; }));
  ASSERT_EQ(decode_errors.size(), 1u);
  EXPECT_EQ(decode_errors[0], DecodeErrorCode::BadMagic);
  EXPECT_EQ(reactor->connection_count(), 0u);
}

TEST_F(ReactorFixture, SendToUnknownConnectionFails) {
  EXPECT_FALSE(reactor->send(9999, hello_message(0)));
  reactor->close_connection(9999);  // unknown ids are a no-op
  EXPECT_TRUE(closed.empty());
}

TEST_F(ReactorFixture, WakeInterruptsBlockedPoll) {
  std::thread waker{[&] {
    std::this_thread::sleep_for(50ms);
    reactor->wake();
  }};
  const auto start = std::chrono::steady_clock::now();
  (void)reactor->poll_once(10000ms);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  waker.join();
  EXPECT_LT(elapsed, 5000ms);
}

TEST_F(ReactorFixture, ThousandSocketSmoke) {
  // One reactor, one thread, 1000 concurrent framed connections: every hello
  // arrives, a broadcast reaches every peer, and teardown fires every
  // on_close. This is the shard tier's fan-in contract in miniature.
  constexpr std::size_t kClients = 1000;
  std::vector<TcpStream> clients;
  clients.reserve(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.push_back(connect_client());
    clients.back().send_message(hello_message(static_cast<int>(i)));
    // Interleave accepts so the kernel backlog never saturates.
    if (i % 64 == 0) (void)reactor->poll_once(0ms);
  }
  ASSERT_TRUE(pump_until([&] { return messages.size() == kClients; }, 120000ms));
  EXPECT_EQ(accepted.size(), kClients);
  EXPECT_EQ(reactor->connection_count(), kClients);

  long long id_sum = 0;
  for (const auto& [id, message] : messages) id_sum += decode_hello(message.payload);
  EXPECT_EQ(id_sum, static_cast<long long>(kClients * (kClients - 1) / 2));

  // Broadcast a shutdown to all connections and drain the write queues.
  for (Reactor::ConnectionId id : accepted) {
    EXPECT_TRUE(reactor->send(id, Message{MessageType::Shutdown, {}}));
  }
  ASSERT_TRUE(pump_until([&] { return reactor->pending_write_bytes() == 0; }, 120000ms));

  for (TcpStream& client : clients) client.close();
  ASSERT_TRUE(pump_until([&] { return closed.size() == kClients; }, 120000ms));
  EXPECT_EQ(reactor->connection_count(), 0u);
}

// ---- HTTP scrape auto-detection on the data port ------------------------------

obs::HttpResponder scrape_responder() {
  obs::HttpResponder responder;
  responder.metrics_text = [] { return std::string{"scrape_up 1\n"}; };
  responder.healthz = [] { return std::string{"{\"status\":\"ok\"}\n"}; };
  return responder;
}

struct HttpReactorFixture : ReactorFixture {
  void SetUp() override {
    ReactorFixture::SetUp();
    reactor->set_http_responder(scrape_responder());
  }

  /// Pump the reactor while draining `stream` until the peer closes it
  /// (HTTP/1.0 close-after-response) or the deadline passes.
  std::string pump_response(TcpStream& stream,
                            std::chrono::milliseconds deadline = 20000ms) {
    stream.set_nonblocking(true);
    std::string response;
    const auto until = std::chrono::steady_clock::now() + deadline;
    while (std::chrono::steady_clock::now() < until) {
      (void)reactor->poll_once(5ms);
      std::byte chunk[2048];
      std::size_t transferred = 0;
      const IoStatus status = stream.read_some(chunk, transferred);
      if (status == IoStatus::Ready) {
        response.append(reinterpret_cast<const char*>(chunk), transferred);
      } else if (status == IoStatus::Closed) {
        return response;  // server closed after the flush, as HTTP/1.0 must
      }
    }
    ADD_FAILURE() << "server never closed the scrape connection";
    return response;
  }

  void send_text(TcpStream& stream, std::string_view text) {
    stream.send_all(std::as_bytes(std::span{text.data(), text.size()}));
  }
};

TEST_F(HttpReactorFixture, ScrapeOnDataPortAnswersAndCloses) {
  TcpStream scraper = connect_client();
  send_text(scraper, "GET /metrics HTTP/1.0\r\n\r\n");
  const std::string response = pump_response(scraper);
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_NE(response.find("scrape_up 1"), std::string::npos);
  ASSERT_TRUE(pump_until([&] { return closed.size() == 1; }));
  EXPECT_EQ(reactor->connection_count(), 0u);
  EXPECT_TRUE(messages.empty()) << "a scrape is not framed traffic";
}

TEST_F(HttpReactorFixture, SlowScraperTricklingBytesStillGetsAnswered) {
  TcpStream scraper = connect_client();
  // One byte at a time across poll iterations: the detector must commit to
  // HTTP on a matching prefix and keep accumulating through NeedMore. The
  // response fires as soon as the request LINE is complete, so trickle
  // exactly that much — more bytes would race the server's close.
  const std::string request = "GET /healthz HTTP/1.0\r\n";
  for (const char byte : request) {
    send_text(scraper, {&byte, 1});
    (void)reactor->poll_once(5ms);
  }
  const std::string response = pump_response(scraper);
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);
}

TEST_F(HttpReactorFixture, ScrapeMidFrameDoesNotDisturbFramedTraffic) {
  echo = true;
  TcpStream framed = connect_client();
  // Park half a frame on the framed connection...
  const std::vector<std::byte> frame = encode_frame(hello_message(7));
  framed.send_all(std::span{frame.data(), frame.size() / 2});
  (void)reactor->poll_once(5ms);
  // ...answer a full scrape in the middle...
  TcpStream scraper = connect_client();
  send_text(scraper, "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(pump_response(scraper).find("scrape_up 1"), std::string::npos);
  // ...then finish the frame: it must still decode and echo.
  framed.send_all(std::span{frame.data() + frame.size() / 2,
                            frame.size() - frame.size() / 2});
  ASSERT_TRUE(pump_until([&] { return messages.size() == 1; }));
  EXPECT_EQ(messages[0].second.type, MessageType::Hello);
  const Message reply = framed.receive_message();
  EXPECT_EQ(reply.type, MessageType::Hello);
}

TEST_F(HttpReactorFixture, OversizedRequestIsDroppedWithoutAnswer) {
  TcpStream framed = connect_client();
  TcpStream scraper = connect_client();
  // A matching method prefix followed by 8 KiB of junk and no terminator:
  // parse must report Bad at the size cap and the reactor must drop only
  // this connection.
  send_text(scraper, "GET /" + std::string(8192, 'a'));
  ASSERT_TRUE(pump_until([&] { return closed.size() == 1; }));
  EXPECT_EQ(reactor->connection_count(), 1u) << "framed peer survives";
  const std::vector<std::byte> frame = encode_frame(hello_message(3));
  framed.send_all(std::span{frame.data(), frame.size()});
  ASSERT_TRUE(pump_until([&] { return messages.size() == 1; }));
}

TEST_F(HttpReactorFixture, NonHttpGarbageStillDiesByFrameRules) {
  TcpStream garbage = connect_client();
  // First byte rules out GET/HEAD, so this stays on the frame path and dies
  // on bad magic once a header's worth of bytes arrived.
  send_text(garbage, std::string(64, 'X'));
  ASSERT_TRUE(pump_until([&] { return closed.size() == 1; }));
  ASSERT_EQ(decode_errors.size(), 1u);
  EXPECT_EQ(decode_errors[0], DecodeErrorCode::BadMagic);
}

TEST_F(ReactorFixture, HttpRequestWithoutResponderDiesByFrameRules) {
  // No responder installed: "GET " is not sniffed, accumulates to a frame
  // header, and fails on magic — the pre-existing contract is unchanged.
  TcpStream scraper = connect_client();
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  scraper.send_all(std::as_bytes(std::span{request.data(), request.size()}));
  ASSERT_TRUE(pump_until([&] { return closed.size() == 1; }));
  ASSERT_EQ(decode_errors.size(), 1u);
  EXPECT_EQ(decode_errors[0], DecodeErrorCode::BadMagic);
}

}  // namespace
}  // namespace fedguard::net
