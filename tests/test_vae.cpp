#include "models/vae.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace fedguard::models {
namespace {

VaeSpec spec_for(std::size_t input_dim) {
  VaeSpec spec;
  spec.input_dim = input_dim;
  spec.hidden = 32;
  spec.latent = 4;
  return spec;
}

// In-distribution corpus: points near a low-dimensional structure
// (x = [t, 2t, -t, ...] plus small noise).
tensor::Tensor make_corpus(std::size_t count, std::size_t dim, util::Rng& rng) {
  tensor::Tensor data{{count, dim}};
  for (std::size_t n = 0; n < count; ++n) {
    const float t = rng.uniform_float(-1.0f, 1.0f);
    auto row = data.row(n);
    for (std::size_t i = 0; i < dim; ++i) {
      const float direction = (i % 2 == 0) ? 1.0f : -0.5f;
      row[i] = t * direction * static_cast<float>(1 + i % 3) +
               rng.uniform_float(-0.05f, 0.05f);
    }
  }
  return data;
}

TEST(Vae, RequiresInputDim) {
  VaeSpec bad;
  EXPECT_THROW((void)Vae(bad, 1), std::invalid_argument);
}

TEST(Vae, TrainingReducesLoss) {
  util::Rng rng{50};
  const tensor::Tensor corpus = make_corpus(128, 16, rng);
  Vae vae{spec_for(16), 51};
  const float first = vae.train_batch(corpus, 1e-3f);
  float last = 0.0f;
  for (int i = 0; i < 40; ++i) last = vae.train(corpus, 1, 32, 1e-3f);
  EXPECT_LT(last, first * 0.5f);
}

TEST(Vae, ReconstructionShape) {
  util::Rng rng{52};
  const tensor::Tensor corpus = make_corpus(8, 16, rng);
  Vae vae{spec_for(16), 53};
  EXPECT_EQ(vae.reconstruct(corpus).shape(), corpus.shape());
  EXPECT_EQ(vae.reconstruction_errors(corpus).size(), 8u);
}

TEST(Vae, OutlierHasHigherReconstructionError) {
  // Core of the SPECTRAL mechanism: after training on in-distribution
  // surrogates, a gross outlier must reconstruct worse.
  util::Rng rng{54};
  const tensor::Tensor corpus = make_corpus(256, 16, rng);
  Vae vae{spec_for(16), 55};
  vae.train(corpus, 60, 32, 1e-3f);

  const tensor::Tensor in_distribution = make_corpus(32, 16, rng);
  const std::vector<double> in_errors = vae.reconstruction_errors(in_distribution);

  tensor::Tensor outliers{{32, 16}};
  for (auto& v : outliers.data()) v = rng.uniform_float(5.0f, 10.0f);
  const std::vector<double> out_errors = vae.reconstruction_errors(outliers);

  EXPECT_GT(util::mean(std::span<const double>{out_errors}),
            4.0 * util::mean(std::span<const double>{in_errors}));
}

TEST(Vae, ErrorsAreNonNegative) {
  util::Rng rng{56};
  const tensor::Tensor corpus = make_corpus(16, 8, rng);
  Vae vae{spec_for(8), 57};
  for (const double e : vae.reconstruction_errors(corpus)) EXPECT_GE(e, 0.0);
}

TEST(Vae, InputShapeValidated) {
  Vae vae{spec_for(8), 58};
  const tensor::Tensor wrong{{2, 9}};
  EXPECT_THROW((void)vae.train_batch(wrong, 1e-3f), std::invalid_argument);
}

}  // namespace
}  // namespace fedguard::models
