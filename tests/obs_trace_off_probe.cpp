// Proof that FEDGUARD_TRACE=OFF compiles tracing away entirely.
//
// This translation unit includes obs/trace.hpp and uses FEDGUARD_TRACE_SPAN,
// but is deliberately built WITHOUT linking fedguard_obs — so it never sees
// the FEDGUARD_TRACE_ENABLED compile definition, exactly like every TU in a
// -DFEDGUARD_TRACE=OFF build. Linking succeeds only if the macro expanded to
// a no-op (obs::Span is defined out-of-line in fedguard_obs; a stray
// expansion would be an unresolved symbol). scripts/check_trace_off_symbols.sh
// additionally runs nm over the binary and asserts that no fedguard::obs
// symbol survives.

#include "obs/trace.hpp"

#if defined(FEDGUARD_TRACE_ENABLED)
#error "probe must be compiled without FEDGUARD_TRACE_ENABLED"
#endif

namespace {

// Mirrors a hot kernel entry: the macro must vanish, leaving only the math.
int traced_work(int iterations) {
  int acc = 0;
  for (int i = 0; i < iterations; ++i) {
    FEDGUARD_TRACE_SPAN("kernel.gemm", "probe");
    acc += i * i;
  }
  return acc;
}

}  // namespace

int main() {
  // 0+1+4+9 = 14; the exit status doubles as a sanity check for the script.
  return traced_work(4) == 14 ? 0 : 1;
}
