// FEDGUARD_ASSERTS layer: NaN/Inf-poisoned updates must be rejected with
// util::CheckError at the aggregator boundary (validate_updates and the
// FedGuard decoder intake), and tensor kernels must reject shape mismatches.
// The throwing checks are compiled in only under -DFEDGUARD_ASSERTS=ON
// (default in sanitizer builds); elsewhere the suites skip.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "defenses/aggregation.hpp"
#include "defenses/fedavg.hpp"
#include "defenses/fedguard.hpp"
#include "defenses/geomed.hpp"
#include "defenses/krum.hpp"
#include "models/cvae.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/check.hpp"

namespace fedguard {
namespace {

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

// ---- all_finite: always compiled, independent of FEDGUARD_ASSERTS ----------

TEST(AllFinite, AcceptsFiniteValues) {
  const std::vector<float> values{0.0f, -1.5f, 3.25f, 1e30f};
  EXPECT_TRUE(util::all_finite(std::span<const float>{values}));
  EXPECT_TRUE(util::all_finite(std::span<const float>{}));
}

TEST(AllFinite, RejectsNanAndInf) {
  const std::vector<float> with_nan{1.0f, kNan, 2.0f};
  const std::vector<float> with_inf{1.0f, -kInf};
  EXPECT_FALSE(util::all_finite(std::span<const float>{with_nan}));
  EXPECT_FALSE(util::all_finite(std::span<const float>{with_inf}));
}

TEST(AllFinite, DoubleOverload) {
  const std::vector<double> good{0.5, -2.0};
  const std::vector<double> bad{0.5, std::numeric_limits<double>::quiet_NaN()};
  EXPECT_TRUE(util::all_finite(std::span<const double>{good}));
  EXPECT_FALSE(util::all_finite(std::span<const double>{bad}));
}

// ---- Aggregator boundary ----------------------------------------------------

class AssertsEnabledTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!util::asserts_enabled()) {
      GTEST_SKIP() << "FEDGUARD_ASSERTS is off; throwing checks compiled out";
    }
  }

  static defenses::ClientUpdate update(int id, std::vector<float> psi) {
    defenses::ClientUpdate u;
    u.client_id = id;
    u.psi = std::move(psi);
    u.num_samples = 10;
    return u;
  }

  static defenses::AggregationContext context(std::span<const float> global) {
    defenses::AggregationContext ctx;
    ctx.global_parameters = global;
    return ctx;
  }
};

TEST_F(AssertsEnabledTest, ValidateUpdatesRejectsNanPsi) {
  const std::vector<defenses::ClientUpdate> updates{
      update(0, {1.0f, 2.0f, 3.0f}), update(1, {1.0f, kNan, 3.0f})};
  EXPECT_THROW((void)defenses::validate_updates(updates), util::CheckError);
}

TEST_F(AssertsEnabledTest, ValidateUpdatesAcceptsFinitePsi) {
  const std::vector<defenses::ClientUpdate> updates{
      update(0, {1.0f, 2.0f, 3.0f}), update(1, {-1.0f, 0.5f, 9.0f})};
  EXPECT_EQ(defenses::validate_updates(updates), 3u);
}

TEST_F(AssertsEnabledTest, FedAvgRejectsInfPsi) {
  defenses::FedAvgAggregator aggregator;
  const std::vector<float> global{0.0f, 0.0f, 0.0f};
  const std::vector<defenses::ClientUpdate> updates{
      update(0, {1.0f, 2.0f, 3.0f}), update(1, {kInf, 0.0f, 0.0f})};
  EXPECT_THROW((void)aggregator.aggregate(context(global), updates), util::CheckError);
}

TEST_F(AssertsEnabledTest, KrumRejectsNanPsi) {
  defenses::KrumAggregator aggregator{0.25, 1};
  const std::vector<float> global{0.0f, 0.0f};
  std::vector<defenses::ClientUpdate> updates;
  for (int id = 0; id < 5; ++id) {
    updates.push_back(update(id, {static_cast<float>(id), 1.0f}));
  }
  updates[3].psi[1] = kNan;
  EXPECT_THROW((void)aggregator.aggregate(context(global), updates), util::CheckError);
}

TEST_F(AssertsEnabledTest, GeoMedRejectsNanPsi) {
  defenses::GeoMedAggregator aggregator;
  const std::vector<float> global{0.0f, 0.0f};
  std::vector<defenses::ClientUpdate> updates;
  for (int id = 0; id < 4; ++id) {
    updates.push_back(update(id, {1.0f, static_cast<float>(id)}));
  }
  updates[0].psi[0] = -kNan;
  EXPECT_THROW((void)aggregator.aggregate(context(global), updates), util::CheckError);
}

TEST_F(AssertsEnabledTest, KrumScoresRejectNonFinitePoints) {
  std::vector<float> points(4 * 3, 0.25f);
  points[7] = kInf;
  EXPECT_THROW((void)defenses::krum_scores(points, 4, 3, 1), util::CheckError);
}

TEST_F(AssertsEnabledTest, GeometricMedianRejectsNonFinitePoints) {
  std::vector<float> points(3 * 2, 1.0f);
  points[2] = kNan;
  EXPECT_THROW((void)defenses::geometric_median(points, 3, 2), util::CheckError);
}

// The FedGuard path additionally validates the uploaded decoder parameters
// (theta) before any synthetic-sample generation.
class FedGuardThetaTest : public AssertsEnabledTest {
 protected:
  static models::CvaeSpec tiny_spec() {
    models::CvaeSpec spec;
    spec.input_dim = 16;
    spec.num_classes = 2;
    spec.hidden = 8;
    spec.latent = 2;
    return spec;
  }
};

TEST_F(FedGuardThetaTest, FedGuardRejectsNanTheta) {
  defenses::FedGuardConfig config;
  config.cvae_spec = tiny_spec();
  config.total_samples = 4;
  const models::ImageGeometry geometry{1, 4, 4, 2};
  defenses::FedGuardAggregator aggregator{config, models::ClassifierArch::Mlp,
                                          geometry, 99};

  models::CvaeDecoder reference{tiny_spec(), 99};
  std::vector<float> theta(reference.parameter_count(), 0.01f);
  theta[theta.size() / 2] = kNan;

  std::vector<defenses::ClientUpdate> updates{update(0, {1.0f, 2.0f}),
                                              update(1, {0.5f, 1.5f})};
  updates[0].theta.assign(reference.parameter_count(), 0.01f);
  updates[1].theta = theta;

  const std::vector<float> global{0.0f, 0.0f};
  EXPECT_THROW((void)aggregator.aggregate(context(global), updates), util::CheckError);
}

// ---- Tensor kernel shape checks --------------------------------------------

TEST_F(AssertsEnabledTest, AddRejectsLengthMismatch) {
  const std::vector<float> a{1.0f, 2.0f, 3.0f};
  const std::vector<float> b{1.0f, 2.0f};
  std::vector<float> out(3, 0.0f);
  EXPECT_THROW(tensor::add(a, b, out), util::CheckError);
}

TEST_F(AssertsEnabledTest, AxpyRejectsLengthMismatch) {
  const std::vector<float> x{1.0f, 2.0f};
  std::vector<float> out(3, 0.0f);
  EXPECT_THROW(tensor::axpy(0.5f, x, out), util::CheckError);
}

TEST_F(AssertsEnabledTest, MatmulRejectsRankMismatch) {
  tensor::Tensor a({2, 3, 1});
  tensor::Tensor b({3, 2});
  tensor::Tensor c({2, 2});
  EXPECT_THROW(tensor::matmul(a, b, c), util::CheckError);
}

TEST_F(AssertsEnabledTest, SoftmaxRejectsNonFiniteLogits) {
  tensor::Tensor logits({1, 3});
  logits.data()[1] = kNan;
  tensor::Tensor out({1, 3});
  EXPECT_THROW(tensor::softmax_rows(logits, out), util::CheckError);
}

}  // namespace
}  // namespace fedguard
