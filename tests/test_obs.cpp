// Observability layer: Chrome-trace structural invariants (balanced B/E,
// per-tid monotonic timestamps, drop-whole overflow), histogram bucket math
// against a hand-computed oracle, Prometheus/JSON exposition, and registry
// determinism — the Table V traffic counters must not depend on how many
// kernel threads computed the updates.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/runner.hpp"
#include "net/socket.hpp"
#include "net/telemetry_http.hpp"
#include "obs/exporter.hpp"
#include "obs/http_exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/process_stats.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace fedguard::obs {
namespace {

// ---- Trace-file parsing helpers ----------------------------------------------

struct ParsedEvent {
  std::string name;
  std::string category;
  char phase = '?';
  double ts_us = 0.0;
  int tid = -1;
};

std::string extract_string(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto begin = line.find(needle);
  if (begin == std::string::npos) return "";
  const auto end = line.find('"', begin + needle.size());
  return line.substr(begin + needle.size(), end - begin - needle.size());
}

double extract_number(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto begin = line.find(needle);
  if (begin == std::string::npos) return -1.0;
  return std::stod(line.substr(begin + needle.size()));
}

/// Parse the one-event-per-line trace file written by TraceSession.
std::vector<ParsedEvent> parse_trace_file(const std::string& path) {
  std::ifstream file{path};
  EXPECT_TRUE(file.is_open()) << "trace file missing: " << path;
  std::vector<ParsedEvent> events;
  std::string line;
  while (std::getline(file, line)) {
    if (line.find("\"ph\"") == std::string::npos) continue;  // header/footer
    ParsedEvent event;
    event.name = extract_string(line, "name");
    event.category = extract_string(line, "cat");
    const std::string phase = extract_string(line, "ph");
    event.phase = phase.empty() ? '?' : phase[0];
    event.ts_us = extract_number(line, "ts");
    event.tid = static_cast<int>(extract_number(line, "tid"));
    events.push_back(std::move(event));
  }
  return events;
}

std::string temp_path(const char* stem) {
  return ::testing::TempDir() + stem;
}

class ObsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { util::set_log_level(util::LogLevel::Warn); }
};

// ---- Chrome-trace structural invariants ---------------------------------------

TEST_F(ObsTest, TraceEventsAreBalancedAndMonotonicPerThread) {
  const std::string path = temp_path("trace_balanced.json");
  {
    TraceSession session{path};
    ASSERT_TRUE(TraceSession::active());
    auto burst = [] {
      for (int i = 0; i < 20; ++i) {
        Span outer{"round", "outer"};
        Span inner{"pool.task", "inner"};
      }
    };
    std::thread a{burst};
    std::thread b{burst};
    burst();
    a.join();
    b.join();
    EXPECT_EQ(session.dropped_spans(), 0u);
  }  // destructor flushes and uninstalls
  ASSERT_FALSE(TraceSession::active());

  const std::vector<ParsedEvent> events = parse_trace_file(path);
  ASSERT_EQ(events.size(), 3u * 20u * 2u * 2u) << "3 threads x 20 x 2 spans x B/E";

  // Per tid: B/E nest like parentheses (never negative, ends at zero), E
  // closes the span the matching B opened, and timestamps never go backwards.
  std::map<int, std::vector<std::string>> stacks;
  std::map<int, double> last_ts;
  for (const ParsedEvent& event : events) {
    ASSERT_GE(event.tid, 0);
    ASSERT_GE(event.ts_us, 0.0);
    if (last_ts.count(event.tid) != 0) {
      EXPECT_GE(event.ts_us, last_ts[event.tid])
          << "timestamps must be monotonic within tid " << event.tid;
    }
    last_ts[event.tid] = event.ts_us;
    auto& stack = stacks[event.tid];
    if (event.phase == 'B') {
      stack.push_back(event.name);
    } else {
      ASSERT_EQ(event.phase, 'E');
      ASSERT_FALSE(stack.empty()) << "E without matching B on tid " << event.tid;
      EXPECT_EQ(stack.back(), event.name) << "spans must close LIFO";
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }
}

TEST_F(ObsTest, OverflowDropsWholeSpansAndKeepsTraceBalanced) {
  const std::string path = temp_path("trace_overflow.json");
  std::uint64_t dropped = 0;
  {
    // Capacity 4 events = two complete spans; the rest must drop whole.
    TraceSession session{path, 4};
    for (int i = 0; i < 10; ++i) Span span{"round", "tiny"};
    dropped = session.dropped_spans();
  }
  EXPECT_EQ(dropped, 8u);
  const std::vector<ParsedEvent> events = parse_trace_file(path);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[1].phase, 'E');
  EXPECT_EQ(events[2].phase, 'B');
  EXPECT_EQ(events[3].phase, 'E');
}

TEST_F(ObsTest, SpansAreNoOpsWithoutAnActiveSession) {
  ASSERT_FALSE(TraceSession::active());
  Span span{"round", "orphan"};  // must not crash or allocate a buffer
  SUCCEED();
}

// ---- Histogram oracle ----------------------------------------------------------

TEST_F(ObsTest, HistogramBucketsMatchHandComputedOracle) {
  Registry registry;  // local instance: immune to other tests' instruments
  const std::vector<double> bounds{1.0, 2.0, 5.0};
  Histogram hist = registry.histogram("oracle_seconds", bounds);
  for (const double v : {0.5, 1.0, 1.5, 2.0, 3.0, 10.0}) hist.observe(v);

  // le is inclusive (Prometheus): 1.0 lands in le="1", 2.0 in le="2".
  EXPECT_EQ(hist.bucket_counts(), (std::vector<std::uint64_t>{2, 2, 1, 1}));
  EXPECT_EQ(hist.count(), 6u);
  EXPECT_DOUBLE_EQ(hist.sum(), 18.0);

  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("# TYPE oracle_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("oracle_seconds_bucket{le=\"1\"} 2"), std::string::npos);
  EXPECT_NE(text.find("oracle_seconds_bucket{le=\"2\"} 4"), std::string::npos);
  EXPECT_NE(text.find("oracle_seconds_bucket{le=\"5\"} 5"), std::string::npos);
  EXPECT_NE(text.find("oracle_seconds_bucket{le=\"+Inf\"} 6"), std::string::npos);
  EXPECT_NE(text.find("oracle_seconds_sum 18"), std::string::npos);
  EXPECT_NE(text.find("oracle_seconds_count 6"), std::string::npos);
}

TEST_F(ObsTest, LabeledHistogramSplicesLeIntoExistingBlock) {
  Registry registry;
  // 0.25 is exactly representable, so the le label renders without a
  // 17-digit decimal tail.
  const std::vector<double> bounds{0.25};
  Histogram hist = registry.histogram("net_client_rtt_seconds{client=\"3\"}", bounds);
  hist.observe(0.05);
  const std::string text = registry.prometheus_text();
  EXPECT_NE(
      text.find("net_client_rtt_seconds_bucket{client=\"3\",le=\"0.25\"} 1"),
      std::string::npos);
  EXPECT_NE(text.find("net_client_rtt_seconds_sum{client=\"3\"}"), std::string::npos);
  EXPECT_NE(text.find("net_client_rtt_seconds_count{client=\"3\"} 1"),
            std::string::npos);
}

TEST_F(ObsTest, CountersAndGaugesKeepLabelIdentity) {
  Registry registry;
  Counter a = registry.counter("frames_total{client=\"0\"}");
  Counter b = registry.counter("frames_total{client=\"1\"}");
  a.add(3);
  b.add(5);
  EXPECT_EQ(registry.counter_value("frames_total{client=\"0\"}"), 3u);
  EXPECT_EQ(registry.counter_value("frames_total{client=\"1\"}"), 5u);
  EXPECT_EQ(registry.counter_value("frames_total{client=\"9\"}"), 0u);

  Gauge depth = registry.gauge("queue_depth");
  depth.add(4);
  depth.sub(1);
  EXPECT_EQ(depth.value(), 3);
  depth.set(-2);
  EXPECT_EQ(depth.value(), -2);
}

TEST_F(ObsTest, InertHandlesAreSafeNoOps) {
  Counter counter;
  Gauge gauge;
  Histogram hist;
  counter.add(7);
  gauge.set(9);
  hist.observe(1.0);
  EXPECT_FALSE(counter.valid());
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_TRUE(hist.bucket_counts().empty());
}

TEST_F(ObsTest, DefaultBucketOverrideAppliesOnlyToLaterHistograms) {
  Registry registry;
  Histogram before = registry.histogram("h_before");
  registry.set_default_buckets({1.0, 2.0});
  Histogram after = registry.histogram("h_after");
  EXPECT_EQ(before.upper_bounds().size(), Registry::default_buckets().size());
  ASSERT_EQ(after.upper_bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(after.upper_bounds()[0], 1.0);
  EXPECT_THROW(registry.set_default_buckets({2.0, 1.0}), std::invalid_argument);
}

TEST_F(ObsTest, JsonSnapshotCarriesEveryInstrument) {
  Registry registry;
  registry.counter("c_total").add(2);
  registry.gauge("g_now").set(-4);
  const std::vector<double> bounds{1.0};
  registry.histogram("h_seconds", bounds).observe(0.5);
  const std::string json = registry.json_snapshot();
  EXPECT_NE(json.find("\"c_total\":2"), std::string::npos);
  EXPECT_NE(json.find("\"g_now\":-4"), std::string::npos);
  EXPECT_NE(json.find("\"h_seconds\":{\"le\":[1],\"counts\":[1,0],\"count\":1"),
            std::string::npos);
}

// ---- Bucket-spec parsing (obs_histogram_buckets descriptor key) ---------------

TEST_F(ObsTest, ParseHistogramBucketsAcceptsAscendingSpec) {
  const std::vector<double> bounds = parse_histogram_buckets("0.001,0.01,0.1,1");
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 0.001);
  EXPECT_DOUBLE_EQ(bounds[3], 1.0);
}

TEST_F(ObsTest, ParseHistogramBucketsRejectsBadSpecs) {
  EXPECT_THROW((void)parse_histogram_buckets(""), std::invalid_argument);
  EXPECT_THROW((void)parse_histogram_buckets("1,garbage"), std::invalid_argument);
  EXPECT_THROW((void)parse_histogram_buckets("2,1"), std::invalid_argument);
}

// ---- Round exporter ------------------------------------------------------------

TEST_F(ObsTest, RoundExporterWritesMetricsTraceAndJsonl) {
  ObsOptions options;
  options.trace_path = temp_path("exporter_trace.json");
  options.metrics_path = temp_path("exporter_metrics.prom");
  options.flush_every_rounds = 1;
  ASSERT_TRUE(options.enabled());
  {
    RoundExporter exporter{options};
    { Span span{"round", "round:0"}; }
    round_tick(0);
    round_tick(1);
  }
  std::ifstream prom{options.metrics_path};
  ASSERT_TRUE(prom.is_open());
  std::ifstream jsonl{options.metrics_path + ".jsonl"};
  ASSERT_TRUE(jsonl.is_open());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(jsonl, line)) {
    ++lines;
    EXPECT_EQ(line.find("{\"round\":"), 0u);
    EXPECT_NE(line.find("\"metrics\":{"), std::string::npos);
  }
  EXPECT_EQ(lines, 2u);
  const std::vector<ParsedEvent> events = parse_trace_file(options.trace_path);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].category, "round");
}

// ---- Registry determinism across kernel thread counts -------------------------

struct TrafficDeltas {
  std::uint64_t rounds = 0;
  std::uint64_t upload = 0;
  std::uint64_t download = 0;
  std::uint64_t sampled = 0;
  std::uint64_t from_history_upload = 0;
  std::uint64_t from_history_download = 0;
};

TrafficDeltas run_and_measure(std::size_t kernel_threads) {
  core::ExperimentConfig config = core::ExperimentConfig::small_scale();
  config.train_samples = 320;
  config.test_samples = 80;
  config.auxiliary_samples = 40;
  config.num_clients = 4;
  config.clients_per_round = 2;
  config.rounds = 2;
  config.client.local_epochs = 1;
  config.strategy = core::StrategyKind::FedAvg;
  config.seed = 4242;
  config.kernel.threads = kernel_threads;

  Registry& registry = Registry::global();
  const std::uint64_t rounds0 = registry.counter_value("fl_rounds_total");
  const std::uint64_t upload0 = registry.counter_value("fl_upload_bytes_total");
  const std::uint64_t download0 = registry.counter_value("fl_download_bytes_total");
  const std::uint64_t sampled0 = registry.counter_value("fl_sampled_clients_total");

  const fl::RunHistory history = core::run_experiment(config);

  TrafficDeltas deltas;
  deltas.rounds = registry.counter_value("fl_rounds_total") - rounds0;
  deltas.upload = registry.counter_value("fl_upload_bytes_total") - upload0;
  deltas.download = registry.counter_value("fl_download_bytes_total") - download0;
  deltas.sampled = registry.counter_value("fl_sampled_clients_total") - sampled0;
  for (const fl::RoundRecord& record : history.rounds) {
    deltas.from_history_upload += record.server_upload_bytes;
    deltas.from_history_download += record.server_download_bytes;
  }
  return deltas;
}

TEST_F(ObsTest, TrafficCountersAreDeterministicAcrossKernelThreads) {
  const TrafficDeltas one = run_and_measure(1);
  const TrafficDeltas four = run_and_measure(4);

  EXPECT_EQ(one.rounds, 2u);
  EXPECT_EQ(four.rounds, 2u);
  EXPECT_EQ(one.sampled, 4u) << "2 rounds x 2 clients";
  EXPECT_EQ(one.upload, four.upload)
      << "Table V traffic must not depend on kernel parallelism";
  EXPECT_EQ(one.download, four.download);
  EXPECT_EQ(one.sampled, four.sampled);
  // RoundRecord traffic fields are views over the registry counters: summing
  // the per-round deltas reproduces the counter totals bit-for-bit.
  EXPECT_EQ(one.upload, one.from_history_upload);
  EXPECT_EQ(one.download, one.from_history_download);
  EXPECT_EQ(four.upload, four.from_history_upload);
  EXPECT_EQ(four.download, four.from_history_download);
}

// ---- Quantile estimation -------------------------------------------------------

TEST_F(ObsTest, EstimateQuantileMatchesHandMath) {
  // Buckets (0,1], (1,2], (2,4], (4,+Inf) with counts 2, 2, 4, 0: total 8.
  const std::vector<double> bounds{1.0, 2.0, 4.0};
  const std::vector<std::uint64_t> counts{2, 2, 4, 0};
  // p50 → rank 4 → 2nd hit inside (1,2] (cumulative 2 before it):
  // 1 + (4-2)/2 * (2-1) = 2.0.
  EXPECT_DOUBLE_EQ(estimate_quantile(bounds, counts, 0.50), 2.0);
  // p25 → rank 2 → last hit of (0,1]: 0 + 2/2 * 1 = 1.0.
  EXPECT_DOUBLE_EQ(estimate_quantile(bounds, counts, 0.25), 1.0);
  // p100 clamps to the last finite upper bound even with an empty +Inf tail.
  EXPECT_DOUBLE_EQ(estimate_quantile(bounds, counts, 1.0), 4.0);
  // No observations → 0.
  const std::vector<std::uint64_t> empty{0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(estimate_quantile(bounds, empty, 0.5), 0.0);
}

TEST_F(ObsTest, JsonSnapshotCarriesQuantilesAfterSum) {
  Registry registry;
  Histogram hist = registry.histogram("q_seconds", std::vector<double>{1.0, 2.0});
  hist.observe(0.5);
  hist.observe(1.5);
  const std::string json = registry.json_snapshot();
  // The pinned prefix (le/counts/count/sum) stays first; quantiles follow.
  const auto sum_pos = json.find("\"sum\":");
  const auto p50_pos = json.find("\"p50\":");
  ASSERT_NE(sum_pos, std::string::npos);
  ASSERT_NE(p50_pos, std::string::npos);
  EXPECT_LT(sum_pos, p50_pos);
  EXPECT_NE(json.find("\"p90\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

// ---- zero_all vs concurrent scrape ---------------------------------------------

TEST_F(ObsTest, ZeroAllNeverExposesHalfZeroedSnapshot) {
  // Contract (documented on Registry::zero_all): a scrape sees either the
  // fully pre-reset or the fully post-reset registry, never a mix. All cells
  // hold the same value, so any exposition mixing states is detectable.
  Registry registry;
  std::vector<Counter> counters;
  counters.reserve(16);
  for (int i = 0; i < 16; ++i) {
    counters.push_back(registry.counter("race_c" + std::to_string(i) + "_total"));
  }
  std::atomic<bool> stop{false};
  std::atomic<int> mixed{0};
  std::thread scraper{[&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto values = registry.counter_values();
      bool any_set = false;
      bool any_zero = false;
      for (const auto& [name, value] : values) {
        (value != 0 ? any_set : any_zero) = true;
      }
      if (any_set && any_zero) mixed.fetch_add(1, std::memory_order_relaxed);
    }
  }};
  for (int iteration = 0; iteration < 200; ++iteration) {
    for (auto& counter : counters) counter.add(7);
    registry.zero_all();
  }
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  EXPECT_EQ(mixed.load(), 0) << "scrape observed a half-zeroed registry";
}

// ---- Cross-process trace plumbing ----------------------------------------------

TEST_F(ObsTest, TraceFileCarriesTraceContextArgs) {
  const std::string path = temp_path("ctx_trace.json");
  {
    TraceSession session{path};
    set_trace_context({make_trace_id(42, 3), 0, 3});
    { Span span{"round", "round:3"}; }
    set_trace_context({});
  }
  std::ifstream file{path};
  std::string text{std::istreambuf_iterator<char>{file}, {}};
  char expected[32];
  std::snprintf(expected, sizeof expected, "%016llx",
                static_cast<unsigned long long>(make_trace_id(42, 3)));
  EXPECT_NE(text.find(std::string{"\"trace_id\":\""} + expected), std::string::npos);
  EXPECT_NE(text.find("\"round\":3"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsTest, MakeTraceIdIsSeedAndRoundSensitive) {
  EXPECT_NE(make_trace_id(1, 0), make_trace_id(1, 1));
  EXPECT_NE(make_trace_id(1, 0), make_trace_id(2, 0));
  EXPECT_EQ(make_trace_id(7, 5), make_trace_id(7, 5));
  EXPECT_NE(make_trace_id(0, 0), 0u) << "trace id 0 means 'none'";
}

TEST_F(ObsTest, TakeEventsIngestRoundTripKeepsForeignPidLane) {
  std::vector<TraceEventRecord> shipped;
  {
    // Relay-only producer (empty path): events are only consumable via
    // take_events, nothing is written at destruction.
    TraceSession producer{std::string{}};
    producer.set_pid(1234);
    { Span span{"layer.forward", "0:linear"}; }
    shipped = producer.take_events();
    ASSERT_EQ(shipped.size(), 2u);  // B + E
    EXPECT_EQ(shipped[0].pid, 1234);
    EXPECT_TRUE(producer.take_events().empty()) << "take_events drains";
  }
  EXPECT_FALSE(ingest_into_active_session(shipped))
      << "no active session: events are dropped, not crashed on";

  const std::string path = temp_path("ingest_trace.json");
  {
    TraceSession consumer{path};
    EXPECT_TRUE(ingest_into_active_session(shipped));
  }
  std::ifstream file{path};
  std::string text{std::istreambuf_iterator<char>{file}, {}};
  EXPECT_NE(text.find("\"pid\":1234"), std::string::npos)
      << "ingested events keep the sender's pid lane";
  EXPECT_NE(text.find("0:linear"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsTest, CounterDeltaTrackerReturnsGrowthSinceLastTake) {
  Registry registry;
  Counter counter = registry.counter("delta_total");
  counter.add(5);
  CounterDeltaTracker tracker;
  auto first = tracker.take(registry);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].second, 5u);
  EXPECT_TRUE(tracker.take(registry).empty()) << "no growth, no entries";
  counter.add(3);
  auto second = tracker.take(registry);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].first, "delta_total");
  EXPECT_EQ(second[0].second, 3u);
}

TEST_F(ObsTest, ProcessStatsProbeSamplesInvariantGauges) {
  ProcessStatsProbe probe;
  Registry& registry = Registry::global();
  const std::uint64_t samples0 =
      registry.counter_value("obs_alloc_probe_samples_total");
  probe.sample();
  EXPECT_EQ(registry.counter_value("obs_alloc_probe_samples_total"), samples0 + 1);
#if defined(__unix__)
  const std::string json = registry.json_snapshot();
  const auto pos = json.find("\"obs_rss_bytes\":");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_GT(std::stoll(json.substr(pos + 16)), 0) << "RSS reads nonzero on unix";
#endif
}

// ---- HTTP exposition units -----------------------------------------------------

std::span<const std::byte> bytes_of(std::string_view text) {
  return std::as_bytes(std::span{text.data(), text.size()});
}

TEST_F(ObsTest, LooksLikeHttpAcceptsPrefixesAndRejectsFrames) {
  EXPECT_TRUE(looks_like_http(bytes_of("G")));
  EXPECT_TRUE(looks_like_http(bytes_of("GET /")));
  EXPECT_TRUE(looks_like_http(bytes_of("HEAD /metrics")));
  EXPECT_FALSE(looks_like_http(bytes_of("MNGF")));  // frame magic on the wire
  EXPECT_FALSE(looks_like_http(bytes_of("POST /")));
  EXPECT_FALSE(looks_like_http(bytes_of("GEX")));
}

TEST_F(ObsTest, ParseHttpRequestLifecycle) {
  EXPECT_EQ(parse_http_request(bytes_of("GET /metr")).status,
            HttpParseStatus::NeedMore);
  const HttpRequest ready = parse_http_request(bytes_of("GET /metrics HTTP/1.0\r\n\r\n"));
  EXPECT_EQ(ready.status, HttpParseStatus::Ready);
  EXPECT_EQ(ready.path, "/metrics");
  EXPECT_EQ(parse_http_request(bytes_of("PUT /x HTTP/1.0\r\n\r\n")).status,
            HttpParseStatus::Bad);
  // Oversized preamble with no request-line terminator: Bad, not NeedMore.
  const std::string oversized = "GET /" + std::string(kMaxHttpRequestBytes, 'a');
  EXPECT_EQ(parse_http_request(bytes_of(oversized)).status, HttpParseStatus::Bad);
}

TEST_F(ObsTest, HttpResponseForRoutesEndpoints) {
  HttpResponder responder;
  responder.metrics_text = [] { return std::string{"up 1\n"}; };
  const std::string ok = http_response_for(responder, "/metrics");
  EXPECT_NE(ok.find("200"), std::string::npos);
  EXPECT_NE(ok.find("up 1"), std::string::npos);
  EXPECT_NE(http_response_for(responder, "/nope").find("404"), std::string::npos);
  // /metrics.json has no callback wired: 503, not a crash.
  EXPECT_NE(http_response_for(responder, "/metrics.json").find("503"),
            std::string::npos);
}

TEST_F(ObsTest, HealthzJsonReportsProgressCounters) {
  Registry& registry = Registry::global();
  Counter rounds = registry.counter("healthz_rounds_total");
  Counter degraded = registry.counter("healthz_degraded_total");
  rounds.add(4);
  degraded.add(1);
  const std::string body =
      healthz_json("healthz_rounds_total", "healthz_degraded_total");
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(body.find("\"rounds_completed\":4"), std::string::npos);
  EXPECT_NE(body.find("\"degraded_rounds\":1"), std::string::npos);
  // Empty degraded-counter name omits the field entirely.
  EXPECT_EQ(healthz_json("healthz_rounds_total", "").find("degraded"),
            std::string::npos);
}

TEST_F(ObsTest, TelemetryHttpServerAnswersLiveScrapes) {
  Counter marker = Registry::global().counter("live_scrape_marker_total");
  marker.add(9);
  net::TelemetryHttpServer server{
      0, net::make_registry_responder("live_scrape_marker_total", "")};
  ASSERT_NE(server.port(), 0) << "ephemeral bind must report the real port";

  const auto scrape = [&](const std::string& path) {
    net::TcpStream stream = net::TcpStream::connect("127.0.0.1", server.port());
    stream.set_receive_timeout(std::chrono::milliseconds{5000});
    const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
    stream.send_all(std::as_bytes(std::span{request.data(), request.size()}));
    std::string response;
    std::byte chunk[2048];
    std::size_t transferred = 0;
    while (stream.read_some(chunk, transferred) == net::IoStatus::Ready) {
      response.append(reinterpret_cast<const char*>(chunk), transferred);
    }
    return response;
  };

  const std::string metrics = scrape("/metrics");
  EXPECT_NE(metrics.find("200"), std::string::npos);
  EXPECT_NE(metrics.find("live_scrape_marker_total 9"), std::string::npos);
  const std::string health = scrape("/healthz");
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.find("\"rounds_completed\":9"), std::string::npos);
  EXPECT_NE(scrape("/nope").find("404"), std::string::npos);
}

}  // namespace
}  // namespace fedguard::obs
