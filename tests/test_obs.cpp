// Observability layer: Chrome-trace structural invariants (balanced B/E,
// per-tid monotonic timestamps, drop-whole overflow), histogram bucket math
// against a hand-computed oracle, Prometheus/JSON exposition, and registry
// determinism — the Table V traffic counters must not depend on how many
// kernel threads computed the updates.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/runner.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace fedguard::obs {
namespace {

// ---- Trace-file parsing helpers ----------------------------------------------

struct ParsedEvent {
  std::string name;
  std::string category;
  char phase = '?';
  double ts_us = 0.0;
  int tid = -1;
};

std::string extract_string(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto begin = line.find(needle);
  if (begin == std::string::npos) return "";
  const auto end = line.find('"', begin + needle.size());
  return line.substr(begin + needle.size(), end - begin - needle.size());
}

double extract_number(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto begin = line.find(needle);
  if (begin == std::string::npos) return -1.0;
  return std::stod(line.substr(begin + needle.size()));
}

/// Parse the one-event-per-line trace file written by TraceSession.
std::vector<ParsedEvent> parse_trace_file(const std::string& path) {
  std::ifstream file{path};
  EXPECT_TRUE(file.is_open()) << "trace file missing: " << path;
  std::vector<ParsedEvent> events;
  std::string line;
  while (std::getline(file, line)) {
    if (line.find("\"ph\"") == std::string::npos) continue;  // header/footer
    ParsedEvent event;
    event.name = extract_string(line, "name");
    event.category = extract_string(line, "cat");
    const std::string phase = extract_string(line, "ph");
    event.phase = phase.empty() ? '?' : phase[0];
    event.ts_us = extract_number(line, "ts");
    event.tid = static_cast<int>(extract_number(line, "tid"));
    events.push_back(std::move(event));
  }
  return events;
}

std::string temp_path(const char* stem) {
  return ::testing::TempDir() + stem;
}

class ObsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { util::set_log_level(util::LogLevel::Warn); }
};

// ---- Chrome-trace structural invariants ---------------------------------------

TEST_F(ObsTest, TraceEventsAreBalancedAndMonotonicPerThread) {
  const std::string path = temp_path("trace_balanced.json");
  {
    TraceSession session{path};
    ASSERT_TRUE(TraceSession::active());
    auto burst = [] {
      for (int i = 0; i < 20; ++i) {
        Span outer{"round", "outer"};
        Span inner{"pool.task", "inner"};
      }
    };
    std::thread a{burst};
    std::thread b{burst};
    burst();
    a.join();
    b.join();
    EXPECT_EQ(session.dropped_spans(), 0u);
  }  // destructor flushes and uninstalls
  ASSERT_FALSE(TraceSession::active());

  const std::vector<ParsedEvent> events = parse_trace_file(path);
  ASSERT_EQ(events.size(), 3u * 20u * 2u * 2u) << "3 threads x 20 x 2 spans x B/E";

  // Per tid: B/E nest like parentheses (never negative, ends at zero), E
  // closes the span the matching B opened, and timestamps never go backwards.
  std::map<int, std::vector<std::string>> stacks;
  std::map<int, double> last_ts;
  for (const ParsedEvent& event : events) {
    ASSERT_GE(event.tid, 0);
    ASSERT_GE(event.ts_us, 0.0);
    if (last_ts.count(event.tid) != 0) {
      EXPECT_GE(event.ts_us, last_ts[event.tid])
          << "timestamps must be monotonic within tid " << event.tid;
    }
    last_ts[event.tid] = event.ts_us;
    auto& stack = stacks[event.tid];
    if (event.phase == 'B') {
      stack.push_back(event.name);
    } else {
      ASSERT_EQ(event.phase, 'E');
      ASSERT_FALSE(stack.empty()) << "E without matching B on tid " << event.tid;
      EXPECT_EQ(stack.back(), event.name) << "spans must close LIFO";
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }
}

TEST_F(ObsTest, OverflowDropsWholeSpansAndKeepsTraceBalanced) {
  const std::string path = temp_path("trace_overflow.json");
  std::uint64_t dropped = 0;
  {
    // Capacity 4 events = two complete spans; the rest must drop whole.
    TraceSession session{path, 4};
    for (int i = 0; i < 10; ++i) Span span{"round", "tiny"};
    dropped = session.dropped_spans();
  }
  EXPECT_EQ(dropped, 8u);
  const std::vector<ParsedEvent> events = parse_trace_file(path);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[1].phase, 'E');
  EXPECT_EQ(events[2].phase, 'B');
  EXPECT_EQ(events[3].phase, 'E');
}

TEST_F(ObsTest, SpansAreNoOpsWithoutAnActiveSession) {
  ASSERT_FALSE(TraceSession::active());
  Span span{"round", "orphan"};  // must not crash or allocate a buffer
  SUCCEED();
}

// ---- Histogram oracle ----------------------------------------------------------

TEST_F(ObsTest, HistogramBucketsMatchHandComputedOracle) {
  Registry registry;  // local instance: immune to other tests' instruments
  const std::vector<double> bounds{1.0, 2.0, 5.0};
  Histogram hist = registry.histogram("oracle_seconds", bounds);
  for (const double v : {0.5, 1.0, 1.5, 2.0, 3.0, 10.0}) hist.observe(v);

  // le is inclusive (Prometheus): 1.0 lands in le="1", 2.0 in le="2".
  EXPECT_EQ(hist.bucket_counts(), (std::vector<std::uint64_t>{2, 2, 1, 1}));
  EXPECT_EQ(hist.count(), 6u);
  EXPECT_DOUBLE_EQ(hist.sum(), 18.0);

  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("# TYPE oracle_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("oracle_seconds_bucket{le=\"1\"} 2"), std::string::npos);
  EXPECT_NE(text.find("oracle_seconds_bucket{le=\"2\"} 4"), std::string::npos);
  EXPECT_NE(text.find("oracle_seconds_bucket{le=\"5\"} 5"), std::string::npos);
  EXPECT_NE(text.find("oracle_seconds_bucket{le=\"+Inf\"} 6"), std::string::npos);
  EXPECT_NE(text.find("oracle_seconds_sum 18"), std::string::npos);
  EXPECT_NE(text.find("oracle_seconds_count 6"), std::string::npos);
}

TEST_F(ObsTest, LabeledHistogramSplicesLeIntoExistingBlock) {
  Registry registry;
  // 0.25 is exactly representable, so the le label renders without a
  // 17-digit decimal tail.
  const std::vector<double> bounds{0.25};
  Histogram hist = registry.histogram("net_client_rtt_seconds{client=\"3\"}", bounds);
  hist.observe(0.05);
  const std::string text = registry.prometheus_text();
  EXPECT_NE(
      text.find("net_client_rtt_seconds_bucket{client=\"3\",le=\"0.25\"} 1"),
      std::string::npos);
  EXPECT_NE(text.find("net_client_rtt_seconds_sum{client=\"3\"}"), std::string::npos);
  EXPECT_NE(text.find("net_client_rtt_seconds_count{client=\"3\"} 1"),
            std::string::npos);
}

TEST_F(ObsTest, CountersAndGaugesKeepLabelIdentity) {
  Registry registry;
  Counter a = registry.counter("frames_total{client=\"0\"}");
  Counter b = registry.counter("frames_total{client=\"1\"}");
  a.add(3);
  b.add(5);
  EXPECT_EQ(registry.counter_value("frames_total{client=\"0\"}"), 3u);
  EXPECT_EQ(registry.counter_value("frames_total{client=\"1\"}"), 5u);
  EXPECT_EQ(registry.counter_value("frames_total{client=\"9\"}"), 0u);

  Gauge depth = registry.gauge("queue_depth");
  depth.add(4);
  depth.sub(1);
  EXPECT_EQ(depth.value(), 3);
  depth.set(-2);
  EXPECT_EQ(depth.value(), -2);
}

TEST_F(ObsTest, InertHandlesAreSafeNoOps) {
  Counter counter;
  Gauge gauge;
  Histogram hist;
  counter.add(7);
  gauge.set(9);
  hist.observe(1.0);
  EXPECT_FALSE(counter.valid());
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_TRUE(hist.bucket_counts().empty());
}

TEST_F(ObsTest, DefaultBucketOverrideAppliesOnlyToLaterHistograms) {
  Registry registry;
  Histogram before = registry.histogram("h_before");
  registry.set_default_buckets({1.0, 2.0});
  Histogram after = registry.histogram("h_after");
  EXPECT_EQ(before.upper_bounds().size(), Registry::default_buckets().size());
  ASSERT_EQ(after.upper_bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(after.upper_bounds()[0], 1.0);
  EXPECT_THROW(registry.set_default_buckets({2.0, 1.0}), std::invalid_argument);
}

TEST_F(ObsTest, JsonSnapshotCarriesEveryInstrument) {
  Registry registry;
  registry.counter("c_total").add(2);
  registry.gauge("g_now").set(-4);
  const std::vector<double> bounds{1.0};
  registry.histogram("h_seconds", bounds).observe(0.5);
  const std::string json = registry.json_snapshot();
  EXPECT_NE(json.find("\"c_total\":2"), std::string::npos);
  EXPECT_NE(json.find("\"g_now\":-4"), std::string::npos);
  EXPECT_NE(json.find("\"h_seconds\":{\"le\":[1],\"counts\":[1,0],\"count\":1"),
            std::string::npos);
}

// ---- Bucket-spec parsing (obs_histogram_buckets descriptor key) ---------------

TEST_F(ObsTest, ParseHistogramBucketsAcceptsAscendingSpec) {
  const std::vector<double> bounds = parse_histogram_buckets("0.001,0.01,0.1,1");
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 0.001);
  EXPECT_DOUBLE_EQ(bounds[3], 1.0);
}

TEST_F(ObsTest, ParseHistogramBucketsRejectsBadSpecs) {
  EXPECT_THROW((void)parse_histogram_buckets(""), std::invalid_argument);
  EXPECT_THROW((void)parse_histogram_buckets("1,garbage"), std::invalid_argument);
  EXPECT_THROW((void)parse_histogram_buckets("2,1"), std::invalid_argument);
}

// ---- Round exporter ------------------------------------------------------------

TEST_F(ObsTest, RoundExporterWritesMetricsTraceAndJsonl) {
  ObsOptions options;
  options.trace_path = temp_path("exporter_trace.json");
  options.metrics_path = temp_path("exporter_metrics.prom");
  options.flush_every_rounds = 1;
  ASSERT_TRUE(options.enabled());
  {
    RoundExporter exporter{options};
    { Span span{"round", "round:0"}; }
    round_tick(0);
    round_tick(1);
  }
  std::ifstream prom{options.metrics_path};
  ASSERT_TRUE(prom.is_open());
  std::ifstream jsonl{options.metrics_path + ".jsonl"};
  ASSERT_TRUE(jsonl.is_open());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(jsonl, line)) {
    ++lines;
    EXPECT_EQ(line.find("{\"round\":"), 0u);
    EXPECT_NE(line.find("\"metrics\":{"), std::string::npos);
  }
  EXPECT_EQ(lines, 2u);
  const std::vector<ParsedEvent> events = parse_trace_file(options.trace_path);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].category, "round");
}

// ---- Registry determinism across kernel thread counts -------------------------

struct TrafficDeltas {
  std::uint64_t rounds = 0;
  std::uint64_t upload = 0;
  std::uint64_t download = 0;
  std::uint64_t sampled = 0;
  std::uint64_t from_history_upload = 0;
  std::uint64_t from_history_download = 0;
};

TrafficDeltas run_and_measure(std::size_t kernel_threads) {
  core::ExperimentConfig config = core::ExperimentConfig::small_scale();
  config.train_samples = 320;
  config.test_samples = 80;
  config.auxiliary_samples = 40;
  config.num_clients = 4;
  config.clients_per_round = 2;
  config.rounds = 2;
  config.client.local_epochs = 1;
  config.strategy = core::StrategyKind::FedAvg;
  config.seed = 4242;
  config.kernel.threads = kernel_threads;

  Registry& registry = Registry::global();
  const std::uint64_t rounds0 = registry.counter_value("fl_rounds_total");
  const std::uint64_t upload0 = registry.counter_value("fl_upload_bytes_total");
  const std::uint64_t download0 = registry.counter_value("fl_download_bytes_total");
  const std::uint64_t sampled0 = registry.counter_value("fl_sampled_clients_total");

  const fl::RunHistory history = core::run_experiment(config);

  TrafficDeltas deltas;
  deltas.rounds = registry.counter_value("fl_rounds_total") - rounds0;
  deltas.upload = registry.counter_value("fl_upload_bytes_total") - upload0;
  deltas.download = registry.counter_value("fl_download_bytes_total") - download0;
  deltas.sampled = registry.counter_value("fl_sampled_clients_total") - sampled0;
  for (const fl::RoundRecord& record : history.rounds) {
    deltas.from_history_upload += record.server_upload_bytes;
    deltas.from_history_download += record.server_download_bytes;
  }
  return deltas;
}

TEST_F(ObsTest, TrafficCountersAreDeterministicAcrossKernelThreads) {
  const TrafficDeltas one = run_and_measure(1);
  const TrafficDeltas four = run_and_measure(4);

  EXPECT_EQ(one.rounds, 2u);
  EXPECT_EQ(four.rounds, 2u);
  EXPECT_EQ(one.sampled, 4u) << "2 rounds x 2 clients";
  EXPECT_EQ(one.upload, four.upload)
      << "Table V traffic must not depend on kernel parallelism";
  EXPECT_EQ(one.download, four.download);
  EXPECT_EQ(one.sampled, four.sampled);
  // RoundRecord traffic fields are views over the registry counters: summing
  // the per-round deltas reproduces the counter totals bit-for-bit.
  EXPECT_EQ(one.upload, one.from_history_upload);
  EXPECT_EQ(one.download, one.from_history_download);
  EXPECT_EQ(four.upload, four.from_history_upload);
  EXPECT_EQ(four.download, four.from_history_download);
}

}  // namespace
}  // namespace fedguard::obs
