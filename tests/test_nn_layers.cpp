// Finite-difference gradient verification for every layer: the definitive
// correctness check of the manual backprop implementation.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/maxpool2d.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace fedguard::nn {
namespace {

using tensor::Tensor;

// Scalar objective: L = sum(w .* f(x)) with fixed random weights w, so that
// dL/dout = w and gradients are easy to seed.
struct GradCheck {
  static constexpr float kEps = 1e-3f;
  static constexpr float kTolerance = 2e-2f;  // relative, float32 FD noise

  static Tensor random_tensor(std::vector<std::size_t> shape, util::Rng& rng,
                              float lo = -1.0f, float hi = 1.0f) {
    Tensor t{std::move(shape)};
    for (auto& v : t.data()) v = rng.uniform_float(lo, hi);
    return t;
  }

  static double loss(Module& module, const Tensor& input, const Tensor& weights) {
    const Tensor out = module.forward(input);
    double total = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      total += static_cast<double>(out[i]) * weights[i];
    }
    return total;
  }

  // Verify dL/dinput and dL/dparams against central finite differences.
  static void run(Module& module, Tensor input, util::Rng& rng) {
    const Tensor probe = module.forward(input);
    Tensor weights = random_tensor(probe.shape(), rng);

    module.zero_grad();
    (void)module.forward(input);
    const Tensor grad_input = module.backward(weights);
    ASSERT_TRUE(grad_input.same_shape(input));

    auto check = [&](float analytic, float& slot, const char* what, std::size_t index) {
      const float saved = slot;
      slot = saved + kEps;
      const double up = loss(module, input, weights);
      slot = saved - kEps;
      const double down = loss(module, input, weights);
      slot = saved;
      const double numeric = (up - down) / (2.0 * kEps);
      const double scale = std::max({std::abs(numeric), std::abs((double)analytic), 1.0});
      EXPECT_NEAR(analytic, numeric, kTolerance * scale)
          << what << " index " << index;
    };

    // Subsample coordinates for large tensors to keep tests fast.
    const std::size_t input_stride = std::max<std::size_t>(1, input.size() / 24);
    for (std::size_t i = 0; i < input.size(); i += input_stride) {
      check(grad_input[i], input[i], "input", i);
    }
    for (Parameter* p : module.parameters()) {
      const std::size_t stride = std::max<std::size_t>(1, p->size() / 24);
      for (std::size_t i = 0; i < p->size(); i += stride) {
        check(p->grad[i], p->value[i], p->name.c_str(), i);
      }
    }
  }
};

TEST(GradCheckLayer, Linear) {
  util::Rng rng{101};
  Linear layer{7, 5, rng};
  GradCheck::run(layer, GradCheck::random_tensor({3, 7}, rng), rng);
}

TEST(GradCheckLayer, LinearNoBias) {
  util::Rng rng{102};
  Linear layer{4, 6, rng, /*with_bias=*/false};
  EXPECT_EQ(layer.parameters().size(), 1u);
  GradCheck::run(layer, GradCheck::random_tensor({2, 4}, rng), rng);
}

TEST(GradCheckLayer, Conv2dValid) {
  util::Rng rng{103};
  Conv2d layer{2, 3, 3, 6, 6, rng, /*padding=*/0};
  GradCheck::run(layer, GradCheck::random_tensor({2, 2, 6, 6}, rng), rng);
}

TEST(GradCheckLayer, Conv2dPadded) {
  util::Rng rng{104};
  Conv2d layer{1, 4, 5, 8, 8, rng, /*padding=*/2};
  GradCheck::run(layer, GradCheck::random_tensor({2, 1, 8, 8}, rng), rng);
}

TEST(GradCheckLayer, ReLU) {
  util::Rng rng{105};
  ReLU layer;
  // Keep inputs away from the kink at 0 for a clean finite difference.
  Tensor input = GradCheck::random_tensor({4, 9}, rng);
  for (auto& v : input.data()) {
    if (std::abs(v) < 0.05f) v = 0.2f;
  }
  GradCheck::run(layer, input, rng);
}

TEST(GradCheckLayer, Sigmoid) {
  util::Rng rng{106};
  Sigmoid layer;
  GradCheck::run(layer, GradCheck::random_tensor({3, 8}, rng, -2.0f, 2.0f), rng);
}

TEST(GradCheckLayer, Tanh) {
  util::Rng rng{107};
  Tanh layer;
  GradCheck::run(layer, GradCheck::random_tensor({3, 8}, rng, -2.0f, 2.0f), rng);
}

TEST(GradCheckLayer, MaxPool) {
  util::Rng rng{108};
  MaxPool2d layer{2};
  // Distinct values avoid argmax ties that break finite differences.
  Tensor input{{1, 2, 4, 4}};
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<float>(i) * 0.1f + rng.uniform_float(0.0f, 0.01f);
  }
  GradCheck::run(layer, input, rng);
}

TEST(GradCheckLayer, SequentialMlp) {
  util::Rng rng{109};
  Sequential net;
  net.emplace<Linear>(6, 10, rng);
  net.emplace<ReLU>();
  net.emplace<Linear>(10, 4, rng);
  Tensor input = GradCheck::random_tensor({3, 6}, rng);
  // Nudge ReLU pre-activations away from zero indirectly by larger inputs.
  for (auto& v : input.data()) v *= 2.0f;
  GradCheck::run(net, input, rng);
}

TEST(GradCheckLayer, SequentialConvStack) {
  util::Rng rng{110};
  Sequential net;
  net.emplace<Conv2d>(1, 3, 3, 6, 6, rng, 1);
  net.emplace<Sigmoid>();  // smooth activation keeps the FD check clean
  net.emplace<MaxPool2d>(2);
  net.emplace<Flatten>();
  net.emplace<Linear>(3 * 3 * 3, 5, rng);
  GradCheck::run(net, GradCheck::random_tensor({2, 1, 6, 6}, rng), rng);
}

TEST(Layer, MaxPoolForwardValues) {
  MaxPool2d pool{2};
  const Tensor input = Tensor::from_data(
      {1, 1, 4, 4}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  const Tensor out = pool.forward(input);
  ASSERT_EQ(out.shape(), (std::vector<std::size_t>{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out[0], 6.0f);
  EXPECT_FLOAT_EQ(out[1], 8.0f);
  EXPECT_FLOAT_EQ(out[2], 14.0f);
  EXPECT_FLOAT_EQ(out[3], 16.0f);
}

TEST(Layer, MaxPoolDropsPartialWindows) {
  MaxPool2d pool{2};
  const Tensor input{{1, 1, 5, 5}, 1.0f};
  const Tensor out = pool.forward(input);
  EXPECT_EQ(out.dim(2), 2u);
  EXPECT_EQ(out.dim(3), 2u);
}

TEST(Layer, FlattenRoundTrip) {
  Flatten flatten;
  const Tensor input{{2, 3, 4, 5}, 1.0f};
  const Tensor out = flatten.forward(input);
  EXPECT_EQ(out.shape(), (std::vector<std::size_t>{2, 60}));
  const Tensor back = flatten.backward(out);
  EXPECT_EQ(back.shape(), input.shape());
}

TEST(Layer, LinearShapeValidation) {
  util::Rng rng{111};
  Linear layer{4, 2, rng};
  const Tensor bad{{3, 5}};
  EXPECT_THROW((void)layer.forward(bad), std::invalid_argument);
}

TEST(Layer, DropoutEvalModeIsIdentity) {
  util::Rng rng{112};
  Dropout dropout{0.5, rng};
  dropout.set_training(false);
  const Tensor input = GradCheck::random_tensor({4, 10}, rng);
  const Tensor out = dropout.forward(input);
  for (std::size_t i = 0; i < input.size(); ++i) EXPECT_FLOAT_EQ(out[i], input[i]);
}

TEST(Layer, DropoutTrainingDropsAndRescales) {
  util::Rng rng{113};
  Dropout dropout{0.5, rng};
  dropout.set_training(true);
  const Tensor input{{1, 10000}, 1.0f};
  const Tensor out = dropout.forward(input);
  std::size_t zeros = 0;
  double total = 0.0;
  for (const float v : out.data()) {
    if (v == 0.0f) ++zeros;
    else EXPECT_FLOAT_EQ(v, 2.0f);  // inverted dropout rescale
    total += v;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.5, 0.05);
  EXPECT_NEAR(total / 10000.0, 1.0, 0.1);  // expectation preserved
}

TEST(Layer, SequentialParameterAggregation) {
  util::Rng rng{114};
  Sequential net;
  net.emplace<Linear>(3, 4, rng);
  net.emplace<ReLU>();
  net.emplace<Linear>(4, 2, rng);
  EXPECT_EQ(net.parameters().size(), 4u);  // 2 weights + 2 biases
  EXPECT_EQ(net.parameter_count(), 3u * 4 + 4 + 4 * 2 + 2);
  EXPECT_EQ(net.weight_parameter_count(), 3u * 4 + 4 * 2);
}

TEST(Layer, ZeroGradClearsAllGradients) {
  util::Rng rng{115};
  Linear layer{3, 2, rng};
  const Tensor input = GradCheck::random_tensor({2, 3}, rng);
  (void)layer.forward(input);
  (void)layer.backward(Tensor{{2, 2}, 1.0f});
  bool any_nonzero = false;
  for (Parameter* p : layer.parameters()) {
    for (const float g : p->grad.data()) any_nonzero |= g != 0.0f;
  }
  EXPECT_TRUE(any_nonzero);
  layer.zero_grad();
  for (Parameter* p : layer.parameters()) {
    for (const float g : p->grad.data()) EXPECT_FLOAT_EQ(g, 0.0f);
  }
}

}  // namespace
}  // namespace fedguard::nn
