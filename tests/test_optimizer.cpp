#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fedguard::nn {
namespace {

// Minimize f(x) = 0.5 * ||x - target||^2 by hand-feeding gradients.
struct Quadratic {
  Parameter param;
  std::vector<float> target;

  explicit Quadratic(std::vector<float> target_values)
      : param{{target_values.size()}, "x"}, target{std::move(target_values)} {}

  void fill_gradient() {
    for (std::size_t i = 0; i < target.size(); ++i) {
      param.grad[i] = param.value[i] - target[i];
    }
  }

  [[nodiscard]] double distance() const {
    double total = 0.0;
    for (std::size_t i = 0; i < target.size(); ++i) {
      const double d = param.value[i] - target[i];
      total += d * d;
    }
    return std::sqrt(total);
  }
};

TEST(Sgd, ConvergesOnQuadratic) {
  Quadratic problem{{1.0f, -2.0f, 3.0f}};
  Sgd sgd{{&problem.param}, 0.1f};
  for (int step = 0; step < 200; ++step) {
    sgd.zero_grad();
    problem.fill_gradient();
    sgd.step();
  }
  EXPECT_LT(problem.distance(), 1e-4);
}

TEST(Sgd, SingleStepExactValue) {
  Quadratic problem{{2.0f}};
  problem.param.value[0] = 0.0f;
  Sgd sgd{{&problem.param}, 0.5f};
  problem.fill_gradient();  // grad = -2
  sgd.step();
  EXPECT_FLOAT_EQ(problem.param.value[0], 1.0f);
}

TEST(Sgd, MomentumAcceleratesAlongConsistentGradient) {
  // With constant gradient g, velocity accumulates: after 2 steps the total
  // displacement with momentum 0.9 is lr*g*(1 + 1.9) vs 2*lr*g without.
  Parameter with_momentum{{1}, "a"};
  Parameter without_momentum{{1}, "b"};
  Sgd fast{{&with_momentum}, 0.1f, 0.9f};
  Sgd slow{{&without_momentum}, 0.1f};
  for (int step = 0; step < 3; ++step) {
    with_momentum.grad[0] = 1.0f;
    without_momentum.grad[0] = 1.0f;
    fast.step();
    slow.step();
  }
  EXPECT_LT(with_momentum.value[0], without_momentum.value[0]);
}

TEST(Sgd, WeightDecayShrinksParameters) {
  Parameter param{{1}, "x"};
  param.value[0] = 1.0f;
  Sgd sgd{{&param}, 0.1f, 0.0f, /*weight_decay=*/0.5f};
  param.grad[0] = 0.0f;
  sgd.step();
  EXPECT_FLOAT_EQ(param.value[0], 1.0f - 0.1f * 0.5f);
}

TEST(Sgd, LearningRateAdjustable) {
  Sgd sgd{{}, 0.1f};
  sgd.set_learning_rate(0.01f);
  EXPECT_FLOAT_EQ(sgd.learning_rate(), 0.01f);
}

TEST(Adam, ConvergesOnQuadratic) {
  Quadratic problem{{0.5f, -1.5f, 2.5f, 0.0f}};
  Adam adam{{&problem.param}, 0.05f};
  for (int step = 0; step < 500; ++step) {
    adam.zero_grad();
    problem.fill_gradient();
    adam.step();
  }
  EXPECT_LT(problem.distance(), 1e-2);
}

TEST(Adam, FirstStepIsLearningRateSized) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  Parameter param{{1}, "x"};
  param.value[0] = 0.0f;
  Adam adam{{&param}, 0.1f};
  param.grad[0] = 3.7f;
  adam.step();
  EXPECT_NEAR(param.value[0], -0.1f, 1e-3f);
}

TEST(Adam, HandlesSparseZeroGradients) {
  Parameter param{{2}, "x"};
  param.value[0] = 1.0f;
  param.value[1] = 1.0f;
  Adam adam{{&param}, 0.1f};
  for (int step = 0; step < 10; ++step) {
    param.grad[0] = 1.0f;
    param.grad[1] = 0.0f;  // never updated coordinate must stay put
    adam.step();
  }
  EXPECT_LT(param.value[0], 1.0f);
  EXPECT_FLOAT_EQ(param.value[1], 1.0f);
}

TEST(Optimizer, ZeroGradClears) {
  Parameter param{{3}, "x"};
  Sgd sgd{{&param}, 0.1f};
  param.grad.fill(5.0f);
  sgd.zero_grad();
  for (const float g : param.grad.data()) EXPECT_FLOAT_EQ(g, 0.0f);
}

class SgdLearningRateSweep : public ::testing::TestWithParam<float> {};

TEST_P(SgdLearningRateSweep, StableForReasonableRates) {
  Quadratic problem{{1.0f, 1.0f}};
  Sgd sgd{{&problem.param}, GetParam()};
  for (int step = 0; step < 400; ++step) {
    sgd.zero_grad();
    problem.fill_gradient();
    sgd.step();
  }
  EXPECT_LT(problem.distance(), 0.05);
}

INSTANTIATE_TEST_SUITE_P(Rates, SgdLearningRateSweep,
                         ::testing::Values(0.01f, 0.05f, 0.1f, 0.5f, 1.0f));

}  // namespace
}  // namespace fedguard::nn
