// Unit tests of the FedGuard aggregation operator in isolation: trained CVAE
// decoders + a mix of good and poisoned classifier updates.

#include "defenses/fedguard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "data/synthetic_mnist.hpp"

namespace fedguard::defenses {
namespace {

models::CvaeSpec small_cvae() {
  models::CvaeSpec spec;
  spec.input_dim = 784;
  spec.num_classes = 10;
  spec.hidden = 96;
  spec.latent = 2;  // tiny latent: prior samples stay on-manifold (DESIGN.md §1)
  return spec;
}

class FedGuardAggTest : public ::testing::Test {
 protected:
  void SetUp() override {
    geometry_ = models::ImageGeometry{1, 28, 28, 10};
    train_ = data::generate_synthetic_mnist(400, 71);

    // One benign CVAE decoder shared by all honest updates (trained once to
    // keep the fixture fast; distinct decoders are exercised in the
    // integration tests).
    models::Cvae cvae{small_cvae(), 72};
    std::vector<std::size_t> all(train_.size());
    std::iota(all.begin(), all.end(), std::size_t{0});
    const tensor::Tensor flat = train_.gather_flat(all);
    std::vector<int> labels(train_.labels().begin(), train_.labels().end());
    cvae.train(flat, labels, 25, 8, 3e-3f);
    benign_theta_ = cvae.decoder().parameters_flat();

    // A well-trained classifier (benign ψ)...
    models::Classifier good{models::ClassifierArch::Mlp, geometry_, 73};
    for (int epoch = 0; epoch < 10; ++epoch) {
      for (std::size_t start = 0; start + 32 <= train_.size(); start += 32) {
        std::vector<std::size_t> idx(32);
        for (std::size_t i = 0; i < 32; ++i) idx[i] = start + i;
        const auto batch = train_.gather(idx);
        good.train_batch(batch.images, batch.labels, 0.05f, 0.9f);
      }
    }
    good_psi_ = good.parameters_flat();
    global_.assign(good_psi_.size(), 0.0f);
  }

  ClientUpdate update_with(int id, std::vector<float> psi, bool malicious) const {
    ClientUpdate update;
    update.client_id = id;
    update.psi = std::move(psi);
    update.theta = benign_theta_;
    update.num_samples = 100;
    update.truly_malicious = malicious;
    return update;
  }

  FedGuardAggregator make_aggregator(FedGuardConfig config = {}) const {
    config.cvae_spec = small_cvae();
    if (config.total_samples == 100 && config.class_alpha.empty()) {
      config.total_samples = 80;
    }
    return FedGuardAggregator{config, models::ClassifierArch::Mlp, geometry_, 74};
  }

  AggregationContext context() const {
    AggregationContext ctx;
    ctx.global_parameters = global_;
    return ctx;
  }

  models::ImageGeometry geometry_;
  data::Dataset train_;
  std::vector<float> benign_theta_;
  std::vector<float> good_psi_;
  std::vector<float> global_;
};

TEST_F(FedGuardAggTest, RejectsSameValuePoisonedUpdates) {
  std::vector<ClientUpdate> updates;
  for (int k = 0; k < 3; ++k) updates.push_back(update_with(k, good_psi_, false));
  for (int k = 3; k < 6; ++k) {
    std::vector<float> poisoned(good_psi_.size(), 1.0f);
    updates.push_back(update_with(k, std::move(poisoned), true));
  }
  FedGuardAggregator aggregator = make_aggregator();
  const auto result = aggregator.aggregate(context(), updates);

  for (int k = 3; k < 6; ++k) {
    EXPECT_TRUE(std::find(result.rejected_clients.begin(), result.rejected_clients.end(),
                          k) != result.rejected_clients.end())
        << "poisoned client " << k << " must be rejected";
  }
  for (int k = 0; k < 3; ++k) {
    EXPECT_TRUE(std::find(result.accepted_clients.begin(), result.accepted_clients.end(),
                          k) != result.accepted_clients.end())
        << "benign client " << k << " must be accepted";
  }
  // Aggregate equals the benign mean (all benign ψ identical here).
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(result.parameters[i], good_psi_[i], 1e-4f);
  }
}

TEST_F(FedGuardAggTest, RejectsSignFlippedUpdates) {
  std::vector<ClientUpdate> updates;
  for (int k = 0; k < 2; ++k) updates.push_back(update_with(k, good_psi_, false));
  for (int k = 2; k < 4; ++k) {
    std::vector<float> flipped = good_psi_;
    for (auto& v : flipped) v = -v;
    updates.push_back(update_with(k, std::move(flipped), true));
  }
  FedGuardAggregator aggregator = make_aggregator();
  const auto result = aggregator.aggregate(context(), updates);
  EXPECT_EQ(result.rejected_clients.size(), 2u);
  for (const int id : result.rejected_clients) EXPECT_GE(id, 2);
}

TEST_F(FedGuardAggTest, ScoresExposeAccuracyGap) {
  std::vector<ClientUpdate> updates;
  updates.push_back(update_with(0, good_psi_, false));
  std::vector<float> noise_psi = good_psi_;
  util::Rng rng{75};
  for (auto& v : noise_psi) v += static_cast<float>(rng.normal(0.0, 1.0));
  updates.push_back(update_with(1, std::move(noise_psi), true));

  FedGuardAggregator aggregator = make_aggregator();
  (void)aggregator.aggregate(context(), updates);
  const auto& scores = aggregator.last_scores();
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_GT(scores[0], scores[1] + 0.3)
      << "benign update must score far higher on synthetic validation data";
  EXPECT_GT(aggregator.last_threshold(), 0.0);
}

TEST_F(FedGuardAggTest, AllBenignAcceptsEveryoneAboveOrAtMean) {
  std::vector<ClientUpdate> updates;
  for (int k = 0; k < 4; ++k) updates.push_back(update_with(k, good_psi_, false));
  FedGuardAggregator aggregator = make_aggregator();
  const auto result = aggregator.aggregate(context(), updates);
  // Identical scores -> everyone == mean -> all accepted.
  EXPECT_EQ(result.accepted_clients.size(), 4u);
  EXPECT_TRUE(result.rejected_clients.empty());
}

TEST_F(FedGuardAggTest, PerDecoderModeGeneratesLargerValidationSet) {
  // Functional smoke test of the tuneable-overhead knob: both modes defend.
  for (const auto mode : {FedGuardConfig::SampleMode::Split,
                          FedGuardConfig::SampleMode::PerDecoder}) {
    FedGuardConfig config;
    config.sample_mode = mode;
    config.total_samples = 40;
    FedGuardAggregator aggregator = make_aggregator(config);
    std::vector<ClientUpdate> updates;
    updates.push_back(update_with(0, good_psi_, false));
    updates.push_back(update_with(1, good_psi_, false));
    std::vector<float> poisoned(good_psi_.size(), 1.0f);
    updates.push_back(update_with(2, std::move(poisoned), true));
    const auto result = aggregator.aggregate(context(), updates);
    EXPECT_EQ(result.rejected_clients, (std::vector<int>{2}));
  }
}

TEST_F(FedGuardAggTest, InternalOperatorsAllDefend) {
  for (const auto op :
       {InternalOperator::FedAvg, InternalOperator::GeoMed, InternalOperator::Median}) {
    FedGuardConfig config;
    config.internal_operator = op;
    FedGuardAggregator aggregator = make_aggregator(config);
    std::vector<ClientUpdate> updates;
    for (int k = 0; k < 3; ++k) updates.push_back(update_with(k, good_psi_, false));
    std::vector<float> poisoned(good_psi_.size(), 1.0f);
    updates.push_back(update_with(3, std::move(poisoned), true));
    const auto result = aggregator.aggregate(context(), updates);
    EXPECT_EQ(result.rejected_clients, (std::vector<int>{3})) << to_string(op);
    for (std::size_t i = 0; i < 10; ++i) {
      EXPECT_NEAR(result.parameters[i], good_psi_[i], 1e-3f) << to_string(op);
    }
  }
}

TEST_F(FedGuardAggTest, DecoderDimensionMismatchThrows) {
  FedGuardAggregator aggregator = make_aggregator();
  std::vector<ClientUpdate> updates;
  ClientUpdate bad = update_with(0, good_psi_, false);
  bad.theta.resize(bad.theta.size() - 1);
  updates.push_back(std::move(bad));
  EXPECT_THROW((void)aggregator.aggregate(context(), updates), std::invalid_argument);
}

TEST(FedGuardConfigValidation, BadConfigsRejected) {
  models::ImageGeometry geometry{1, 28, 28, 10};
  FedGuardConfig config;
  config.cvae_spec = small_cvae();
  config.total_samples = 0;
  EXPECT_THROW(
      (void)FedGuardAggregator(config, models::ClassifierArch::Mlp, geometry, 1),
      std::invalid_argument);

  FedGuardConfig mismatch;
  mismatch.cvae_spec = small_cvae();
  mismatch.cvae_spec.input_dim = 100;  // != 784 pixels
  EXPECT_THROW(
      (void)FedGuardAggregator(mismatch, models::ClassifierArch::Mlp, geometry, 1),
      std::invalid_argument);

  FedGuardConfig bad_alpha;
  bad_alpha.cvae_spec = small_cvae();
  bad_alpha.class_alpha = {0.5, 0.5};  // wrong cardinality
  EXPECT_THROW(
      (void)FedGuardAggregator(bad_alpha, models::ClassifierArch::Mlp, geometry, 1),
      std::invalid_argument);
}

}  // namespace
}  // namespace fedguard::defenses
