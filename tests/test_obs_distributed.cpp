// Federation-wide live telemetry, pinned end to end (CTest label: net):
//
// One 2-shard socket federation must simultaneously (a) answer GET /metrics
// and GET /healthz live mid-run — on the root's standalone listener AND on a
// shard data port, where the reactor auto-detects HTTP among MNGF frames —
// (b) accept a crafted TelemetryReport frame from a foreign process (here: a
// raw TcpStream posing as one) and fold its spans into the root trace under
// a foreign pid lane, surviving a bad-CRC report on the same link, and (c)
// write a single trace file in which root, shard, and client spans are all
// correlated under the same per-round trace id.
//
// The relay producer/consumer machinery is additionally pinned at the unit
// level (codec round trip, rebase window, origin-labelled counters) because
// the in-process harness shares one TraceSession across every tier — client
// threads see an active session and therefore never open the relay-only
// session a real out-of-process client would (see RemoteClientOptions).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifdef __unix__
#include <unistd.h>
#endif

#include "data/partition.hpp"
#include "data/synthetic_mnist.hpp"
#include "defenses/fedavg.hpp"
#include "fl/client.hpp"
#include "net/message.hpp"
#include "net/remote.hpp"
#include "net/shard.hpp"
#include "net/socket.hpp"
#include "net/telemetry_relay.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace fedguard {
namespace {

std::string temp_path(const std::string& stem) {
  return ::testing::TempDir() + stem;
}

std::string hex_trace_id(std::uint64_t trace_id) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(trace_id));
  return buffer;
}

/// One blocking GET exchange against a local exposition endpoint; empty on
/// any failure (connection refused while the server is still binding, etc.).
std::string http_get(std::uint16_t port, const std::string& path) {
  try {
    net::TcpStream stream = net::TcpStream::connect("127.0.0.1", port);
    stream.set_receive_timeout(std::chrono::milliseconds{2000});
    const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
    stream.send_all(std::as_bytes(std::span{request.data(), request.size()}));
    std::string response;
    std::byte chunk[512];
    std::size_t transferred = 0;
    while (stream.read_some(chunk, transferred) == net::IoStatus::Ready) {
      response.append(reinterpret_cast<const char*>(chunk), transferred);
    }
    return response;
  } catch (const std::exception&) {
    return "";
  }
}

/// Poll an endpoint until the response carries `needle` (and a 200 status).
/// Returns the winning response body, or "" after ~6 seconds of refusals.
std::string probe_until(std::uint16_t port, const std::string& path,
                        const std::string& needle) {
  for (int attempt = 0; attempt < 60; ++attempt) {
    const std::string response = http_get(port, path);
    if (response.find("200") != std::string::npos &&
        response.find(needle) != std::string::npos) {
      return response;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds{100});
  }
  return "";
}

struct ObsDistributedFixture : ::testing::Test {
  static void SetUpTestSuite() { util::set_log_level(util::LogLevel::Warn); }

  void SetUp() override {
    geometry = models::ImageGeometry{1, 28, 28, 10};
    train = data::generate_synthetic_mnist(320, 911);
    test = data::generate_synthetic_mnist(100, 912);
    partition = data::iid_partition(train.size(), 4, 913);
  }

  std::vector<std::unique_ptr<fl::Client>> make_clients(std::uint64_t seed_base) const {
    fl::ClientConfig config;
    config.local_epochs = 1;
    config.batch_size = 16;
    config.train_cvae = false;
    models::CvaeSpec spec;
    spec.hidden = 32;
    spec.latent = 2;
    std::vector<std::unique_ptr<fl::Client>> clients;
    for (std::size_t i = 0; i < 4; ++i) {
      clients.push_back(std::make_unique<fl::Client>(static_cast<int>(i), train,
                                                     partition[i], config,
                                                     models::ClassifierArch::Mlp, geometry,
                                                     spec, seed_base + i));
    }
    return clients;
  }

  models::ImageGeometry geometry;
  data::Dataset train;
  data::Dataset test;
  data::Partition partition;
};

constexpr std::uint32_t kForeignPid = 34567;
constexpr std::uint32_t kForeignClientId = 9;

net::TelemetryFrame crafted_report(std::uint64_t trace_id) {
  net::TelemetryFrame report;
  report.sender_pid = kForeignPid;
  report.sender_id = kForeignClientId;
  report.round = 0;
  report.trace_id = trace_id;
  report.events.push_back({"relay_probe", "client.train", 0, trace_id, 0, 1, 'B'});
  report.events.push_back({"relay_probe", "client.train", 250000, trace_id, 0, 1, 'E'});
  report.counter_deltas.emplace_back("relay_probe_steps_total", 11);
  return report;
}

TEST_F(ObsDistributedFixture, TwoTierFederationServesScrapesAndCorrelatesTrace) {
  const std::string trace_path = temp_path("obs_distributed_trace.json");
  std::remove(trace_path.c_str());

  constexpr std::uint64_t kSeed = 931;
  const std::uint64_t round0_trace_id = obs::make_trace_id(kSeed, 0);

  auto clients = make_clients(930);
  net::HierarchicalServerConfig config;
  config.shards = 2;
  config.expected_clients = 4;
  config.clients_per_round = 4;
  config.rounds = 3;
  config.seed = kSeed;

  // Shard exposition ports derive from http_port (+1+i), so an ephemeral
  // root port is impossible; probe a small pid-salted range instead.
  std::unique_ptr<net::HierarchicalServer> server;
#ifdef __unix__
  std::uint16_t base = static_cast<std::uint16_t>(21000 + (::getpid() % 17000));
#else
  std::uint16_t base = 23451;
#endif
  for (int attempt = 0; attempt < 8 && !server; ++attempt) {
    config.http_port = static_cast<std::uint16_t>(base + attempt * 16);
    try {
      server = std::make_unique<net::HierarchicalServer>(
          config, [] { return std::make_unique<defenses::FedAvgAggregator>(); }, test,
          models::ClassifierArch::Mlp, geometry);
    } catch (const std::exception&) {
      // Port collision — try the next candidate block.
    }
  }
  ASSERT_TRUE(server) << "could not bind a telemetry port block";

  const std::uint16_t shard0_data_port = server->shard_port(0);
  auto& registry = obs::Registry::global();
  const std::string reports_counter = "net_shard_telemetry_reports_total{shard=\"0\"}";
  const std::uint64_t reports_before = registry.counter_value(reports_counter);

  // Mid-run liveness probes + the crafted-relay exchange run concurrently
  // with the federation; results are read only after join().
  std::string root_healthz;
  std::string shard_data_metrics;
  std::string root_metrics_json;
  std::string root_404;
  std::atomic<bool> relay_counted{false};
  std::atomic<bool> relay_survived_bad_crc{false};

  // The root session must be installed BEFORE any client thread starts:
  // relay_telemetry clients open their own relay-only session when none is
  // active, and whichever session comes first owns the process. Scoped so the
  // flush-on-destruction happens before the file is parsed.
  auto session = std::make_unique<obs::TraceSession>(trace_path);

  std::thread probe{[&] {
    root_healthz = probe_until(config.http_port, "/healthz", "\"status\":\"ok\"");
    shard_data_metrics =
        probe_until(shard0_data_port, "/metrics", "net_shard_rounds_total");
    root_metrics_json = probe_until(config.http_port, "/metrics.json",
                                    "net_shard_telemetry_reports_total");
    root_404 = http_get(config.http_port, "/nope");

    // Pose as an out-of-process relaying client: one valid TelemetryReport,
    // one with a flipped payload byte (CRC failure must keep the link), then
    // a second valid one over the SAME stream.
    try {
      net::TcpStream stream = net::TcpStream::connect("127.0.0.1", shard0_data_port);
      const auto payload = net::encode_telemetry_report(crafted_report(round0_trace_id));
      std::vector<std::byte> frame =
          net::encode_frame({net::MessageType::TelemetryReport, payload});
      stream.send_all(frame);
      for (int i = 0; i < 40 && registry.counter_value(reports_counter) <
                                    reports_before + 1; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds{50});
      }
      relay_counted = registry.counter_value(reports_counter) >= reports_before + 1;

      std::vector<std::byte> corrupt = frame;
      corrupt[net::kFrameHeaderBytes] ^= std::byte{0xFF};
      stream.send_all(corrupt);
      stream.send_all(frame);
      for (int i = 0; i < 40 && registry.counter_value(reports_counter) <
                                    reports_before + 2; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds{50});
      }
      relay_survived_bad_crc =
          registry.counter_value(reports_counter) >= reports_before + 2;
    } catch (const std::exception&) {
      // Leave the flags false; the assertions below report the failure.
    }
  }};

  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 4; ++i) {
    const std::uint16_t port = server->shard_port(server->shard_of(i));
    threads.emplace_back([&, i, port] {
      // relay_telemetry is a no-op here (the root session above is active in
      // this process), mirroring how a real deployment's flag is harmless for
      // co-located clients.
      net::RemoteClientOptions options;
      options.relay_telemetry = true;
      (void)net::run_remote_client("127.0.0.1", port, *clients[i], options);
    });
  }

  const fl::RunHistory history = server->run();
  EXPECT_EQ(history.rounds.size(), 3u);
  for (auto& thread : threads) thread.join();
  probe.join();
  session.reset();  // flush + write the merged trace

  // (a) Live exposition answered mid-run on both serving paths.
  EXPECT_NE(root_healthz.find("\"rounds_completed\""), std::string::npos)
      << "root /healthz never came up: " << root_healthz;
  EXPECT_NE(shard_data_metrics.find("net_shard_rounds_total"), std::string::npos)
      << "shard data port never answered /metrics";
  EXPECT_NE(root_metrics_json.find("net_shard_telemetry_reports_total"),
            std::string::npos)
      << "root /metrics.json never answered";
  EXPECT_NE(root_404.find("404"), std::string::npos) << root_404;

  // (b) The crafted foreign report was counted, and a bad-CRC report did not
  // cost the link (the second valid report landed on the same stream).
  EXPECT_TRUE(relay_counted.load());
  EXPECT_TRUE(relay_survived_bad_crc.load());
  EXPECT_EQ(registry.counter_value(net::with_origin_label(
                "relay_probe_steps_total", kForeignClientId)),
            22u);  // 11 per accepted report, twice

  // (c) The written trace correlates root / shard / client / layer spans —
  // and the relayed foreign lane — under round 0's trace id.
  std::ifstream file{trace_path};
  ASSERT_TRUE(file.is_open()) << trace_path;
  const std::string needle = "\"trace_id\":\"" + hex_trace_id(round0_trace_id) + "\"";
  std::set<std::string> correlated;
  bool foreign_lane = false;
  std::string line;
  while (std::getline(file, line)) {
    if (line.find(needle) == std::string::npos) continue;
    for (const char* category : {"net.shard", "client.train", "layer.forward", "round"}) {
      if (line.find(std::string{"\"cat\":\""} + category) != std::string::npos) {
        correlated.insert(category);
      }
    }
    if (line.find("\"pid\":" + std::to_string(kForeignPid)) != std::string::npos) {
      foreign_lane = true;
    }
  }
  EXPECT_TRUE(correlated.count("net.shard")) << "no shard span under round 0 id";
  EXPECT_TRUE(correlated.count("client.train")) << "no client span under round 0 id";
  EXPECT_TRUE(correlated.count("layer.forward")) << "no layer span under round 0 id";
  EXPECT_TRUE(foreign_lane) << "relayed events lost their foreign pid lane";

  std::remove(trace_path.c_str());
}

TEST(TelemetryRelay, WireRoundTripPreservesReport) {
  const net::TelemetryFrame report = crafted_report(obs::make_trace_id(5, 2));
  const auto payload = net::encode_telemetry_report(report);
  const net::TelemetryFrame decoded = net::decode_telemetry_report(payload);

  EXPECT_EQ(decoded.sender_pid, report.sender_pid);
  EXPECT_EQ(decoded.sender_id, report.sender_id);
  EXPECT_EQ(decoded.round, report.round);
  EXPECT_EQ(decoded.trace_id, report.trace_id);
  ASSERT_EQ(decoded.events.size(), report.events.size());
  for (std::size_t i = 0; i < report.events.size(); ++i) {
    EXPECT_EQ(decoded.events[i].name, report.events[i].name);
    EXPECT_EQ(decoded.events[i].category, report.events[i].category);
    EXPECT_EQ(decoded.events[i].rel_ts_ns, report.events[i].rel_ts_ns);
    EXPECT_EQ(decoded.events[i].trace_id, report.events[i].trace_id);
    EXPECT_EQ(decoded.events[i].phase, report.events[i].phase);
  }
  ASSERT_EQ(decoded.counter_deltas, report.counter_deltas);
}

TEST(TelemetryRelay, RebaseAnchorsWindowEndAtArrival) {
  net::TelemetryFrame report = crafted_report(obs::make_trace_id(6, 1));
  const std::uint64_t arrival = obs::now_ns();
  const std::vector<obs::TraceEventRecord> rebased =
      net::rebase_telemetry_events(report, arrival);

  ASSERT_EQ(rebased.size(), 2u);
  // The report spans [0, 250000] relative ns; the rebased window must END at
  // arrival and preserve the 250µs width and the foreign pid lane.
  EXPECT_EQ(rebased.back().ts_ns, arrival);
  EXPECT_EQ(rebased.back().ts_ns - rebased.front().ts_ns, 250000u);
  EXPECT_EQ(rebased.front().pid, static_cast<int>(kForeignPid));
  EXPECT_EQ(rebased.front().trace_id, report.trace_id);
}

TEST(TelemetryRelay, OriginLabelSplicesIntoExistingBlock) {
  EXPECT_EQ(net::with_origin_label("client_steps_total", 3),
            "client_steps_total{origin=\"c3\"}");
  // A reporter whose counter already carries labels keeps them.
  const std::string spliced =
      net::with_origin_label("net_shard_rounds_total{shard=\"1\"}", 4);
  EXPECT_NE(spliced.find("shard=\"1\""), std::string::npos) << spliced;
  EXPECT_NE(spliced.find("origin=\"c4\""), std::string::npos) << spliced;
}

}  // namespace
}  // namespace fedguard
