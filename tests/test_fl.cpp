#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <fstream>
#include <cstdio>

#include "data/partition.hpp"
#include "data/synthetic_mnist.hpp"
#include "defenses/fedavg.hpp"
#include "fl/client.hpp"
#include "fl/metrics.hpp"
#include "fl/server.hpp"
#include "attacks/label_flip.hpp"
#include "nn/parameter_vector.hpp"

namespace fedguard::fl {
namespace {

models::CvaeSpec small_cvae() {
  models::CvaeSpec spec;
  spec.hidden = 48;
  spec.latent = 6;
  return spec;
}

ClientConfig fast_client_config(bool train_cvae) {
  ClientConfig config;
  config.local_epochs = 1;
  config.batch_size = 16;
  config.learning_rate = 0.05f;
  config.cvae_epochs = 2;
  config.cvae_batch_size = 16;
  config.train_cvae = train_cvae;
  return config;
}

struct FlFixture : ::testing::Test {
  void SetUp() override {
    geometry = models::ImageGeometry{1, 28, 28, 10};
    dataset = data::generate_synthetic_mnist(200, 81);
    indices.resize(60);
    std::iota(indices.begin(), indices.end(), std::size_t{0});
  }

  models::ImageGeometry geometry;
  data::Dataset dataset;
  std::vector<std::size_t> indices;
};

TEST_F(FlFixture, ClientUpdateHasExpectedShape) {
  Client client{0, dataset, indices, fast_client_config(true),
                models::ClassifierArch::Mlp, geometry, small_cvae(), 82};
  models::Classifier reference{models::ClassifierArch::Mlp, geometry, 83};
  const std::vector<float> global = reference.parameters_flat();

  const defenses::ClientUpdate update = client.run_round(global, 0);
  EXPECT_EQ(update.client_id, 0);
  EXPECT_EQ(update.psi.size(), global.size());
  EXPECT_EQ(update.num_samples, 60u);
  EXPECT_FALSE(update.truly_malicious);
  EXPECT_FALSE(update.theta.empty());
  EXPECT_TRUE(client.cvae_trained());
  // Local training must actually move the parameters.
  EXPECT_NE(update.psi, global);
}

TEST_F(FlFixture, CvaeTrainedOnlyOnce) {
  Client client{0, dataset, indices, fast_client_config(true),
                models::ClassifierArch::Mlp, geometry, small_cvae(), 84};
  models::Classifier reference{models::ClassifierArch::Mlp, geometry, 85};
  const std::vector<float> global = reference.parameters_flat();
  const auto first = client.run_round(global, 0);
  const auto second = client.run_round(global, 1);
  // Static partition -> same decoder parameters both rounds (footnote 5).
  EXPECT_EQ(first.theta, second.theta);
}

TEST_F(FlFixture, CvaeSkippedWhenDisabled) {
  Client client{0, dataset, indices, fast_client_config(false),
                models::ClassifierArch::Mlp, geometry, small_cvae(), 86};
  models::Classifier reference{models::ClassifierArch::Mlp, geometry, 87};
  const auto update = client.run_round(reference.parameters_flat(), 0);
  EXPECT_TRUE(update.theta.empty());
  EXPECT_FALSE(client.cvae_trained());
}

TEST_F(FlFixture, ModelAttackAppliedToUpload) {
  Client client{0, dataset, indices, fast_client_config(false),
                models::ClassifierArch::Mlp, geometry, small_cvae(), 88};
  const attacks::SameValueAttack attack{1.0f};
  client.corrupt_with_model_attack(&attack);
  EXPECT_TRUE(client.malicious());

  models::Classifier reference{models::ClassifierArch::Mlp, geometry, 89};
  const auto update = client.run_round(reference.parameters_flat(), 0);
  EXPECT_TRUE(update.truly_malicious);
  for (const float v : update.psi) EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST_F(FlFixture, LabelFlipCorruptsLocalData) {
  Client client{0, dataset, indices, fast_client_config(false),
                models::ClassifierArch::Mlp, geometry, small_cvae(), 90};
  const auto before = client.local_data().class_histogram();
  client.corrupt_with_label_flip(attacks::default_flip_pairs());
  EXPECT_TRUE(client.malicious());
  const auto after = client.local_data().class_histogram();
  EXPECT_EQ(after[5], before[7]);
  EXPECT_EQ(after[7], before[5]);
  EXPECT_EQ(after[4], before[2]);
  EXPECT_EQ(after[2], before[4]);
}

// ---- Server ------------------------------------------------------------------

struct ServerFixture : ::testing::Test {
  void SetUp() override {
    geometry = models::ImageGeometry{1, 28, 28, 10};
    train = data::generate_synthetic_mnist(300, 91);
    test = data::generate_synthetic_mnist(100, 92);
    const data::Partition partition = data::iid_partition(train.size(), 6, 93);
    for (std::size_t i = 0; i < 6; ++i) {
      clients.push_back(std::make_unique<Client>(
          static_cast<int>(i), train, partition[i], fast_client_config(false),
          models::ClassifierArch::Mlp, geometry, small_cvae(), 94 + i));
    }
  }

  ServerConfig server_config(std::size_t m, std::size_t rounds, float lr = 1.0f) const {
    ServerConfig config;
    config.clients_per_round = m;
    config.rounds = rounds;
    config.server_learning_rate = lr;
    config.seed = 95;
    return config;
  }

  models::ImageGeometry geometry;
  data::Dataset train;
  data::Dataset test;
  std::vector<std::unique_ptr<Client>> clients;
};

TEST_F(ServerFixture, RoundRecordsTrafficAndSampling) {
  defenses::FedAvgAggregator strategy;
  Server server{server_config(4, 1), clients, strategy, test,
                models::ClassifierArch::Mlp, geometry};
  const RoundRecord record = server.run_round(0);
  EXPECT_EQ(record.sampled_clients, 4u);
  const std::size_t psi_wire =
      nn::parameter_wire_bytes(server.global_parameters().size());
  EXPECT_EQ(record.server_upload_bytes, 4 * psi_wire);
  // FedAvg never requests decoders: symmetric traffic.
  EXPECT_EQ(record.server_download_bytes, record.server_upload_bytes);
  EXPECT_GE(record.test_accuracy, 0.0);
  EXPECT_LE(record.test_accuracy, 1.0);
  EXPECT_GT(record.round_seconds, 0.0);
}

TEST_F(ServerFixture, TrainingImprovesAccuracy) {
  defenses::FedAvgAggregator strategy;
  Server server{server_config(6, 8), clients, strategy, test,
                models::ClassifierArch::Mlp, geometry};
  const double before = server.evaluate_global();
  const RunHistory history = server.run();
  EXPECT_EQ(history.rounds.size(), 8u);
  EXPECT_GT(history.rounds.back().test_accuracy, before + 0.3)
      << "federated training should lift accuracy well above the random init";
}

TEST_F(ServerFixture, ServerLearningRateDampensUpdate) {
  // η = 0: the global model must not move.
  defenses::FedAvgAggregator strategy;
  Server server{server_config(4, 1, 0.0f), clients, strategy, test,
                models::ClassifierArch::Mlp, geometry};
  const std::vector<float> before{server.global_parameters().begin(),
                                  server.global_parameters().end()};
  (void)server.run_round(0);
  const std::vector<float> after{server.global_parameters().begin(),
                                 server.global_parameters().end()};
  EXPECT_EQ(before, after);
}

TEST_F(ServerFixture, PartialServerLearningRateInterpolates) {
  defenses::FedAvgAggregator strategy_full;
  defenses::FedAvgAggregator strategy_half;
  Server full{server_config(4, 1, 1.0f), clients, strategy_full, test,
              models::ClassifierArch::Mlp, geometry};
  Server half{server_config(4, 1, 0.5f), clients, strategy_half, test,
              models::ClassifierArch::Mlp, geometry};
  const std::vector<float> init{full.global_parameters().begin(),
                                full.global_parameters().end()};
  (void)full.run_round(0);
  (void)half.run_round(0);
  // Same seed -> same sampled clients; with stochastic local shuffles the
  // updates differ slightly, so compare displacement magnitudes instead.
  double full_move = 0.0, half_move = 0.0;
  for (std::size_t i = 0; i < init.size(); ++i) {
    full_move += std::abs(full.global_parameters()[i] - init[i]);
    half_move += std::abs(half.global_parameters()[i] - init[i]);
  }
  EXPECT_LT(half_move, full_move);
  EXPECT_GT(half_move, 0.0);
}

TEST_F(ServerFixture, InvalidConfigRejected) {
  defenses::FedAvgAggregator strategy;
  EXPECT_THROW((Server{server_config(0, 1), clients, strategy, test,
                       models::ClassifierArch::Mlp, geometry}),
               std::invalid_argument);
  EXPECT_THROW((Server{server_config(7, 1), clients, strategy, test,
                       models::ClassifierArch::Mlp, geometry}),
               std::invalid_argument);
}

// ---- Metrics -------------------------------------------------------------------

TEST(RunHistory, SeriesAndRates) {
  RunHistory history;
  history.strategy = "fedavg";
  for (int r = 0; r < 5; ++r) {
    RoundRecord record;
    record.round = static_cast<std::size_t>(r);
    record.test_accuracy = 0.2 * (r + 1);
    record.sampled_clients = 10;
    record.sampled_malicious = 4;
    record.rejected_malicious = 3;
    record.rejected_benign = 1;
    record.rejected_clients = 4;
    history.rounds.push_back(record);
  }
  EXPECT_EQ(history.accuracy_series().size(), 5u);
  EXPECT_NEAR(history.trailing_accuracy(2).mean, 0.9, 1e-9);
  EXPECT_NEAR(history.true_positive_rate(), 15.0 / 20.0, 1e-9);
  EXPECT_NEAR(history.false_positive_rate(), 5.0 / 30.0, 1e-9);
}

TEST(RunHistory, CsvRoundTripHasHeaderAndRows) {
  RunHistory history;
  history.strategy = "fedavg";
  history.attack = "none";
  RoundRecord record;
  record.round = 0;
  record.test_accuracy = 0.5;
  history.rounds.push_back(record);
  const std::string path = "/tmp/fedguard_history_test.csv";
  history.write_csv(path);
  std::ifstream file{path};
  std::string line;
  std::size_t lines = 0;
  while (std::getline(file, line)) ++lines;
  EXPECT_EQ(lines, 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fedguard::fl
