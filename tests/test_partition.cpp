#include "data/partition.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "data/synthetic_mnist.hpp"

namespace fedguard::data {
namespace {

std::size_t total_samples(const Partition& partition) {
  std::size_t total = 0;
  for (const auto& client : partition) total += client.size();
  return total;
}

bool is_exact_cover(const Partition& partition, std::size_t dataset_size) {
  std::set<std::size_t> seen;
  for (const auto& client : partition) {
    for (const std::size_t i : client) {
      if (i >= dataset_size || !seen.insert(i).second) return false;
    }
  }
  return seen.size() == dataset_size;
}

TEST(DirichletPartition, ExactCoverOfDataset) {
  const Dataset dataset = generate_synthetic_mnist(500, 1);
  const Partition partition = dirichlet_partition(dataset, 20, 10.0, 2);
  EXPECT_EQ(partition.size(), 20u);
  EXPECT_EQ(total_samples(partition), 500u);
  EXPECT_TRUE(is_exact_cover(partition, 500));
}

TEST(DirichletPartition, EveryClientHasData) {
  const Dataset dataset = generate_synthetic_mnist(300, 3);
  // Very low alpha concentrates mass; backfill must still give everyone >= 1.
  const Partition partition = dirichlet_partition(dataset, 30, 0.05, 4);
  for (const auto& client : partition) EXPECT_GE(client.size(), 1u);
}

TEST(DirichletPartition, HighAlphaIsMoreBalancedThanLowAlpha) {
  const Dataset dataset = generate_synthetic_mnist(1000, 5);
  auto imbalance = [&dataset](double alpha) {
    const Partition p = dirichlet_partition(dataset, 10, alpha, 6);
    std::size_t largest = 0, smallest = dataset.size();
    for (const auto& client : p) {
      largest = std::max(largest, client.size());
      smallest = std::min(smallest, client.size());
    }
    return static_cast<double>(largest) / static_cast<double>(std::max<std::size_t>(1, smallest));
  };
  EXPECT_LT(imbalance(100.0), imbalance(0.1));
}

TEST(DirichletPartition, DeterministicForSeed) {
  const Dataset dataset = generate_synthetic_mnist(200, 7);
  EXPECT_EQ(dirichlet_partition(dataset, 8, 10.0, 9),
            dirichlet_partition(dataset, 8, 10.0, 9));
  EXPECT_NE(dirichlet_partition(dataset, 8, 10.0, 9),
            dirichlet_partition(dataset, 8, 10.0, 10));
}

TEST(DirichletPartition, InvalidArgumentsThrow) {
  const Dataset dataset = generate_synthetic_mnist(50, 11);
  EXPECT_THROW((void)dirichlet_partition(dataset, 0, 10.0, 1), std::invalid_argument);
  EXPECT_THROW((void)dirichlet_partition(dataset, 5, 0.0, 1), std::invalid_argument);
}

class DirichletAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(DirichletAlphaSweep, CoverAndMinimumHoldAcrossAlpha) {
  const Dataset dataset = generate_synthetic_mnist(400, 13);
  const Partition partition = dirichlet_partition(dataset, 16, GetParam(), 14);
  EXPECT_TRUE(is_exact_cover(partition, 400));
  for (const auto& client : partition) EXPECT_GE(client.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Alphas, DirichletAlphaSweep,
                         ::testing::Values(0.05, 0.5, 1.0, 10.0, 100.0));

TEST(IidPartition, RoundRobinBalance) {
  const Partition partition = iid_partition(103, 10, 15);
  EXPECT_EQ(total_samples(partition), 103u);
  for (const auto& client : partition) {
    EXPECT_GE(client.size(), 10u);
    EXPECT_LE(client.size(), 11u);
  }
  EXPECT_TRUE(is_exact_cover(partition, 103));
}

TEST(ShardPartition, PathologicalClassConcentration) {
  const Dataset dataset = generate_synthetic_mnist(1000, 17);
  const Partition partition = shard_partition(dataset, 10, 2, 18);
  EXPECT_TRUE(is_exact_cover(partition, 1000));
  // With 2 shards per client over sorted labels, most clients see few classes.
  const auto histogram = partition_class_histogram(dataset, partition);
  std::size_t clients_with_few_classes = 0;
  for (const auto& client_histogram : histogram) {
    std::size_t classes_present = 0;
    for (const std::size_t count : client_histogram) {
      if (count > 0) ++classes_present;
    }
    if (classes_present <= 4) ++clients_with_few_classes;
  }
  EXPECT_GE(clients_with_few_classes, 8u);
}

TEST(ShardPartition, TooManyShardsThrows) {
  const Dataset dataset = generate_synthetic_mnist(10, 19);
  EXPECT_THROW((void)shard_partition(dataset, 10, 5, 20), std::invalid_argument);
}

TEST(QuantitySkewPartition, ExactCoverAndEveryoneFed) {
  const Partition partition = quantity_skew_partition(500, 20, 0.1, 23);
  EXPECT_EQ(partition.size(), 20u);
  EXPECT_TRUE(is_exact_cover(partition, 500));
  for (const auto& client : partition) EXPECT_GE(client.size(), 1u);
}

TEST(QuantitySkewPartition, LowAlphaSkewsSizesHighAlphaBalances) {
  auto size_spread = [](double alpha) {
    const Partition p = quantity_skew_partition(2000, 10, alpha, 24);
    std::size_t largest = 0, smallest = 2000;
    for (const auto& client : p) {
      largest = std::max(largest, client.size());
      smallest = std::min(smallest, client.size());
    }
    return static_cast<double>(largest) /
           static_cast<double>(std::max<std::size_t>(1, smallest));
  };
  EXPECT_LT(size_spread(100.0), size_spread(0.1));
}

TEST(QuantitySkewPartition, LabelsStayIidUnderSkew) {
  // Sizes skew but each client draws from a label-shuffled pool, so a large
  // client's label mix tracks the dataset's (unlike the Dirichlet scheme,
  // which skews the labels themselves).
  const Dataset dataset = generate_synthetic_mnist(2000, 25);
  const Partition partition =
      quantity_skew_partition(dataset.size(), 10, 0.5, 26);
  const auto global = dataset.class_histogram();
  const auto histogram = partition_class_histogram(dataset, partition);
  for (std::size_t c = 0; c < partition.size(); ++c) {
    if (partition[c].size() < 400) continue;  // small clients are too noisy
    for (std::size_t label = 0; label < 10; ++label) {
      const double global_share =
          static_cast<double>(global[label]) / static_cast<double>(dataset.size());
      const double client_share = static_cast<double>(histogram[c][label]) /
                                  static_cast<double>(partition[c].size());
      EXPECT_NEAR(client_share, global_share, 0.08);
    }
  }
}

TEST(QuantitySkewPartition, DeterministicForSeedAndInvalidArgsThrow) {
  EXPECT_EQ(quantity_skew_partition(300, 8, 1.0, 27),
            quantity_skew_partition(300, 8, 1.0, 27));
  EXPECT_NE(quantity_skew_partition(300, 8, 1.0, 27),
            quantity_skew_partition(300, 8, 1.0, 28));
  EXPECT_THROW((void)quantity_skew_partition(300, 0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW((void)quantity_skew_partition(300, 8, 0.0, 1), std::invalid_argument);
  EXPECT_THROW((void)quantity_skew_partition(5, 8, 1.0, 1), std::invalid_argument);
}

TEST(PartitionScheme_, NamesRoundTripAndParseErrorEnumerates) {
  for (const PartitionScheme scheme :
       {PartitionScheme::Iid, PartitionScheme::Dirichlet, PartitionScheme::Shard,
        PartitionScheme::QuantitySkew}) {
    EXPECT_EQ(partition_scheme_from_string(to_string(scheme)), scheme);
  }
  try {
    (void)partition_scheme_from_string("orbital");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    for (const char* name : {"iid", "dirichlet", "shard", "quantity_skew"}) {
      EXPECT_NE(message.find(name), std::string::npos) << name;
    }
  }
}

TEST(MakePartition, DispatchesToTheNamedScheme) {
  const Dataset dataset = generate_synthetic_mnist(400, 29);
  PartitionOptions options;
  options.num_clients = 8;
  options.seed = 30;
  options.scheme = PartitionScheme::QuantitySkew;
  options.alpha = 0.5;
  EXPECT_EQ(make_partition(dataset, options),
            quantity_skew_partition(dataset.size(), 8, 0.5, 30));
  options.scheme = PartitionScheme::Iid;
  EXPECT_EQ(make_partition(dataset, options), iid_partition(dataset.size(), 8, 30));
  options.scheme = PartitionScheme::Shard;
  options.shards_per_client = 2;
  EXPECT_EQ(make_partition(dataset, options), shard_partition(dataset, 8, 2, 30));
}

TEST(PartitionHistogram, CountsMatchLabels) {
  const Dataset dataset = generate_synthetic_mnist(100, 21);
  const Partition partition = iid_partition(dataset.size(), 4, 22);
  const auto histogram = partition_class_histogram(dataset, partition);
  ASSERT_EQ(histogram.size(), 4u);
  std::vector<std::size_t> totals(10, 0);
  for (const auto& client : histogram) {
    for (std::size_t c = 0; c < 10; ++c) totals[c] += client[c];
  }
  EXPECT_EQ(totals, dataset.class_histogram());
}

}  // namespace
}  // namespace fedguard::data
