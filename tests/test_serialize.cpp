#include "util/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/csv.hpp"

namespace fedguard::util {
namespace {

TEST(Serialize, RoundTripScalars) {
  ByteWriter writer;
  writer.write_u32(0xdeadbeefu);
  writer.write_u64(0x0123456789abcdefULL);
  writer.write_f32(3.25f);
  writer.write_string("hello");

  ByteReader reader{writer.bytes()};
  EXPECT_EQ(reader.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(reader.read_u64(), 0x0123456789abcdefULL);
  EXPECT_FLOAT_EQ(reader.read_f32(), 3.25f);
  EXPECT_EQ(reader.read_string(), "hello");
  EXPECT_TRUE(reader.exhausted());
}

TEST(Serialize, RoundTripFloatSpan) {
  const std::vector<float> values{1.0f, -2.5f, 3.75f, 0.0f};
  ByteWriter writer;
  writer.write_f32_span(values);
  EXPECT_EQ(writer.size(), f32_vector_wire_size(values.size()));

  ByteReader reader{writer.bytes()};
  const auto count = reader.read_u64();
  EXPECT_EQ(count, values.size());
  EXPECT_EQ(reader.read_f32_vector(count), values);
}

TEST(Serialize, ReaderUnderrunThrows) {
  ByteWriter writer;
  writer.write_u32(1);
  ByteReader reader{writer.bytes()};
  (void)reader.read_u32();
  EXPECT_THROW((void)reader.read_u64(), std::out_of_range);
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() / "fedguard_vec_test.bin";
  const std::vector<float> values{0.5f, 1.5f, -2.0f};
  save_f32_vector(path, values);
  EXPECT_EQ(load_f32_vector(path), values);
  std::remove(path.c_str());
}

TEST(Serialize, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_f32_vector("/nonexistent/path/vec.bin"), std::runtime_error);
}

TEST(Csv, EscapeRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WriterProducesHeaderAndRows) {
  const std::string path = std::filesystem::temp_directory_path() / "fedguard_csv_test.csv";
  {
    CsvWriter csv{path, {"a", "b"}};
    csv.write_row({"1", "x,y"});
  }
  std::ifstream file{path};
  std::string line;
  std::getline(file, line);
  EXPECT_EQ(line, "a,b");
  std::getline(file, line);
  EXPECT_EQ(line, "1,\"x,y\"");
  std::remove(path.c_str());
}

TEST(Csv, RowWidthMismatchThrows) {
  const std::string path = std::filesystem::temp_directory_path() / "fedguard_csv_test2.csv";
  CsvWriter csv{path, {"a", "b"}};
  EXPECT_THROW(csv.write_row({"only_one"}), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Csv, NumericCells) {
  EXPECT_EQ(CsvWriter::cell(std::size_t{42}), "42");
  EXPECT_EQ(CsvWriter::cell(-7), "-7");
  EXPECT_EQ(CsvWriter::cell(0.5), "0.5");
}

}  // namespace
}  // namespace fedguard::util
