#include "util/svg_plot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace fedguard::util {
namespace {

TEST(SvgPlot, EscapesSpecialCharacters) {
  EXPECT_EQ(svg_escape("a<b>&c"), "a&lt;b&gt;&amp;c");
  EXPECT_EQ(svg_escape("plain"), "plain");
}

TEST(SvgPlot, RenderContainsStructure) {
  LinePlot plot{"My Title", "round", "accuracy"};
  plot.add_series("fedguard", {0.1, 0.5, 0.9});
  plot.add_series("fedavg", {0.1, 0.2, 0.1});
  const std::string svg = plot.render(640, 360);

  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("My Title"), std::string::npos);
  EXPECT_NE(svg.find("fedguard"), std::string::npos);
  EXPECT_NE(svg.find("fedavg"), std::string::npos);
  EXPECT_NE(svg.find("width=\"640\""), std::string::npos);
  // Two series -> two polylines.
  std::size_t polylines = 0;
  for (std::size_t pos = svg.find("<polyline"); pos != std::string::npos;
       pos = svg.find("<polyline", pos + 1)) {
    ++polylines;
  }
  EXPECT_EQ(polylines, 2u);
}

TEST(SvgPlot, HigherValuesMapToSmallerY) {
  LinePlot plot{"t", "x", "y"};
  plot.set_y_range(0.0, 1.0);
  plot.add_series("s", {0.0, 1.0});
  const std::string svg = plot.render();
  const auto points_pos = svg.find("points=\"");
  ASSERT_NE(points_pos, std::string::npos);
  const auto end = svg.find('"', points_pos + 8);
  const std::string points = svg.substr(points_pos + 8, end - points_pos - 8);
  // "x0,y0 x1,y1 " — parse the two y values.
  float x0, y0, x1, y1;
  ASSERT_EQ(std::sscanf(points.c_str(), "%f,%f %f,%f", &x0, &y0, &x1, &y1), 4);
  EXPECT_GT(y0, y1) << "value 1.0 must be drawn above value 0.0 (smaller y)";
  EXPECT_LT(x0, x1);
}

TEST(SvgPlot, TitleIsEscaped) {
  LinePlot plot{"a<b", "x", "y"};
  plot.add_series("s", {0.0, 1.0});
  EXPECT_NE(plot.render().find("a&lt;b"), std::string::npos);
}

TEST(SvgPlot, SaveWritesFile) {
  const std::string path = "/tmp/fedguard_plot_test.svg";
  LinePlot plot{"t", "x", "y"};
  plot.add_series("s", {0.5, 0.6, 0.7});
  plot.save(path);
  std::ifstream file{path};
  ASSERT_TRUE(file.good());
  std::string first_line;
  std::getline(file, first_line);
  EXPECT_NE(first_line.find("<svg"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SvgPlot, InvalidRangeRejected) {
  LinePlot plot{"t", "x", "y"};
  EXPECT_THROW(plot.set_y_range(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(plot.set_y_range(2.0, 1.0), std::invalid_argument);
}

TEST(SvgPlot, EmptyPlotStillRenders) {
  LinePlot plot{"empty", "x", "y"};
  const std::string svg = plot.render();
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_EQ(plot.series_count(), 0u);
}

TEST(SvgPlot, SingletonSeriesRendersLegendWithoutPolyline) {
  LinePlot plot{"t", "x", "y"};
  plot.add_series("one_point", {0.5});
  const std::string svg = plot.render();
  EXPECT_EQ(svg.find("<polyline"), std::string::npos);
  EXPECT_NE(svg.find("one_point"), std::string::npos);
}

}  // namespace
}  // namespace fedguard::util
