#include "models/cvae.hpp"

#include <gtest/gtest.h>

#include "data/synthetic_mnist.hpp"

namespace fedguard::models {
namespace {

CvaeSpec small_spec() {
  CvaeSpec spec;
  spec.input_dim = 784;
  spec.num_classes = 10;
  spec.hidden = 96;
  spec.latent = 2;  // tiny latent keeps prior samples on-manifold at small n
  return spec;
}

// Small training corpus reused across tests.
struct CvaeFixture : ::testing::Test {
  void SetUp() override {
    dataset = data::generate_synthetic_mnist(300, 21);
    std::vector<std::size_t> all(dataset.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    images = dataset.gather_flat(all);
    labels.assign(dataset.labels().begin(), dataset.labels().end());
  }

  data::Dataset dataset;
  tensor::Tensor images;
  std::vector<int> labels;
};

TEST_F(CvaeFixture, TrainingReducesLoss) {
  Cvae cvae{small_spec(), 31};
  const CvaeLoss first = cvae.train_batch(images, labels, 1e-3f);
  float last = 0.0f;
  for (int epoch = 0; epoch < 6; ++epoch) {
    last = cvae.train(images, labels, 1, 32, 1e-3f);
  }
  EXPECT_LT(last, first.total * 0.8f) << "CVAE loss should drop substantially";
}

TEST_F(CvaeFixture, DecoderSynthesizesInUnitRange) {
  Cvae cvae{small_spec(), 32};
  cvae.train(images, labels, 3, 32, 1e-3f);
  util::Rng rng{33};
  const tensor::Tensor z = sample_standard_normal(20, small_spec().latent, rng);
  std::vector<int> y(20);
  for (std::size_t i = 0; i < 20; ++i) y[i] = static_cast<int>(i % 10);
  const tensor::Tensor generated = cvae.decoder().decode(z, y);
  EXPECT_EQ(generated.shape(), (std::vector<std::size_t>{20, 784}));
  for (const float v : generated.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST_F(CvaeFixture, ConditioningControlsGeneratedClass) {
  // After training, samples decoded with label c should be closer (in pixel
  // space) to the class-c training mean than to most other class means.
  Cvae cvae{small_spec(), 34};
  cvae.train(images, labels, 30, 8, 3e-3f);

  // Class means of the training data.
  std::vector<std::vector<double>> class_mean(10, std::vector<double>(784, 0.0));
  std::vector<std::size_t> class_count(10, 0);
  for (std::size_t n = 0; n < labels.size(); ++n) {
    const auto row = images.row(n);
    auto& mean = class_mean[static_cast<std::size_t>(labels[n])];
    for (std::size_t i = 0; i < 784; ++i) mean[i] += row[i];
    ++class_count[static_cast<std::size_t>(labels[n])];
  }
  for (std::size_t c = 0; c < 10; ++c) {
    for (auto& v : class_mean[c]) v /= static_cast<double>(class_count[c]);
  }

  util::Rng rng{35};
  int wins = 0, trials = 0;
  for (int target = 0; target < 10; ++target) {
    const tensor::Tensor z = sample_standard_normal(8, small_spec().latent, rng);
    const std::vector<int> y(8, target);
    const tensor::Tensor generated = cvae.decoder().decode(z, y);
    for (std::size_t s = 0; s < 8; ++s) {
      const auto row = generated.row(s);
      double own = 0.0;
      std::vector<double> distances(10, 0.0);
      for (int c = 0; c < 10; ++c) {
        double d2 = 0.0;
        for (std::size_t i = 0; i < 784; ++i) {
          const double d = row[i] - class_mean[static_cast<std::size_t>(c)][i];
          d2 += d * d;
        }
        distances[static_cast<std::size_t>(c)] = d2;
        if (c == target) own = d2;
      }
      int beaten = 0;
      for (int c = 0; c < 10; ++c) {
        if (c != target && own < distances[static_cast<std::size_t>(c)]) ++beaten;
      }
      if (beaten >= 7) ++wins;  // closer to own class than to >= 7 of 9 others
      ++trials;
    }
  }
  EXPECT_GT(static_cast<double>(wins) / trials, 0.6)
      << "conditional generation should mostly land near the conditioned class";
}

TEST(CvaeDecoder, FlatParameterRoundTrip) {
  const CvaeSpec spec = small_spec();
  CvaeDecoder a{spec, 36};
  CvaeDecoder b{spec, 37};
  const std::vector<float> theta = a.parameters_flat();
  EXPECT_EQ(theta.size(), a.parameter_count());
  b.load_parameters_flat(theta);

  util::Rng rng{38};
  const tensor::Tensor z = sample_standard_normal(4, spec.latent, rng);
  const std::vector<int> y{0, 1, 2, 3};
  const tensor::Tensor out_a = a.decode(z, y);
  const tensor::Tensor out_b = b.decode(z, y);
  for (std::size_t i = 0; i < out_a.size(); ++i) EXPECT_FLOAT_EQ(out_a[i], out_b[i]);
}

TEST(CvaeDecoder, RejectsBadLatentShape) {
  CvaeDecoder decoder{small_spec(), 39};
  const tensor::Tensor z{{2, 5}};  // wrong latent dim
  const std::vector<int> y{0, 1};
  EXPECT_THROW((void)decoder.decode(z, y), std::invalid_argument);
}

TEST(Cvae, EncodeShapes) {
  const CvaeSpec spec = small_spec();
  Cvae cvae{spec, 40};
  const tensor::Tensor images{{5, spec.input_dim}, 0.5f};
  const std::vector<int> labels{0, 1, 2, 3, 4};
  const Cvae::Encoding enc = cvae.encode(images, labels);
  EXPECT_EQ(enc.mu.shape(), (std::vector<std::size_t>{5, spec.latent}));
  EXPECT_EQ(enc.logvar.shape(), (std::vector<std::size_t>{5, spec.latent}));
}

TEST(Cvae, ReconstructShape) {
  const CvaeSpec spec = small_spec();
  Cvae cvae{spec, 41};
  const tensor::Tensor images{{3, spec.input_dim}, 0.5f};
  const std::vector<int> labels{1, 2, 3};
  EXPECT_EQ(cvae.reconstruct(images, labels).shape(),
            (std::vector<std::size_t>{3, spec.input_dim}));
}

TEST(CvaeSampling, StandardNormalMoments) {
  util::Rng rng{42};
  const tensor::Tensor z = sample_standard_normal(5000, 4, rng);
  double sum = 0.0, sum2 = 0.0;
  for (const float v : z.data()) {
    sum += v;
    sum2 += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(z.size());
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(CvaeSampling, CategoricalLabelsRespectAlpha) {
  util::Rng rng{43};
  const std::vector<double> alpha{0.5, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  const std::vector<int> labels = sample_categorical_labels(1000, alpha, rng);
  for (const int label : labels) EXPECT_LT(label, 2);
}

TEST(CvaeSampling, UniformAlphaCoversAllClasses) {
  util::Rng rng{44};
  const std::vector<double> alpha(10, 0.1);
  const std::vector<int> labels = sample_categorical_labels(2000, alpha, rng);
  std::vector<int> counts(10, 0);
  for (const int label : labels) ++counts[static_cast<std::size_t>(label)];
  for (const int c : counts) EXPECT_GT(c, 100);
}

}  // namespace
}  // namespace fedguard::models
