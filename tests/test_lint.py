#!/usr/bin/env python3
"""Golden test for scripts/fedguard_lint.py (CTest label: lint).

Runs the linter over tests/lint_fixtures/ — a miniature repo tree carrying at
least one deliberate violation per rule plus allowlisted lines — and checks
the exact finding set; then runs it over the real repository, which must be
clean (the linter is a merge gate)."""

import subprocess
import sys
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
LINT = REPO_ROOT / "scripts" / "fedguard_lint.py"
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"

EXPECTED_FIXTURE_FINDINGS = {
    ("src/attacks/allowed.cpp", 16, "allow-justification"),
    ("src/attacks/allowed.cpp", 16, "rng"),  # a rejected allow suppresses nothing
    ("src/attacks/attack.cpp", 9, "sweep-roster"),
    ("src/core/config_file.cpp", 10, "config-docs"),
    ("src/core/experiment.cpp", 9, "sweep-roster"),
    ("src/defenses/bad_pointset_copy.cpp", 16, "no-pointset-copy"),
    ("src/defenses/bad_unordered.cpp", 12, "unordered-iteration"),
    ("src/defenses/bad_unordered.cpp", 15, "unordered-iteration"),
    ("src/fl/bad_stdout.cpp", 8, "stdout"),
    ("src/fl/bad_stopwatch.cpp", 8, "no-raw-stopwatch"),
    ("src/models/bad_random.cpp", 9, "rng"),
    ("src/net/bad_span.cpp", 10, "span-category-docs"),
    ("src/obs/bad_metric.cpp", 13, "span-category-docs"),  # undocumented metric
    ("src/net/reactor_blocking.cpp", 8, "no-blocking-socket"),
    ("src/net/reactor_blocking.cpp", 10, "no-blocking-socket"),
    ("src/nn/bad_intrinsics.cpp", 7, "no-raw-intrinsics"),
    ("src/nn/bad_intrinsics.cpp", 10, "no-raw-intrinsics"),
    ("src/nn/bad_intrinsics.cpp", 12, "no-raw-intrinsics"),
    ("src/nn/bad_new.cpp", 9, "naked-new"),
    ("src/nn/bad_new.cpp", 11, "naked-new"),
    # Cycles are reported once, at the include line that closes them (the DFS
    # roots at the lexicographically first file of the cycle).
    ("src/nn/cycle_b.hpp", 4, "layering"),
    ("src/obs/bad_const_cast.cpp", 12, "no-const-cast-mutex"),
    ("src/obs/bad_mutex.cpp", 14, "no-unannotated-mutex"),  # std::mutex
    ("src/obs/bad_mutex.cpp", 15, "no-unannotated-mutex"),  # no annotation
    ("src/parallel/bad_lock.cpp", 12, "lock-discipline"),
    ("src/parallel/bad_lock.cpp", 14, "lock-discipline"),
    ("src/tensor/bad_backedge.cpp", 6, "layering"),
    ("tests/CMakeLists.txt", 7, "test-timeout"),
}


def run_lint(*args):
    return subprocess.run([sys.executable, str(LINT), *args],
                          capture_output=True, text=True, timeout=90)


def parse_findings(stdout):
    findings = set()
    for line in stdout.splitlines():
        path, line_no, rest = line.split(":", 2)
        rule = rest.split("[", 1)[1].split("]", 1)[0]
        findings.add((path, int(line_no), rule))
    return findings


class FedguardLintGolden(unittest.TestCase):
    def test_fixture_tree_yields_exact_findings(self):
        result = run_lint("--root", str(FIXTURES))
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertEqual(parse_findings(result.stdout), EXPECTED_FIXTURE_FINDINGS)

    def test_allowlisted_lines_are_suppressed(self):
        # allowed.cpp line 10 (std::cout) and line 11 (mt19937) carry justified
        # allow() annotations and must not appear in the findings.
        result = run_lint("--root", str(FIXTURES))
        findings = parse_findings(result.stdout)
        self.assertNotIn(("src/attacks/allowed.cpp", 10, "stdout"), findings)
        self.assertNotIn(("src/attacks/allowed.cpp", 11, "rng"), findings)
        # attack.cpp line 12 ("bench_only") sits under a justified
        # allow(sweep-roster) on the line above it.
        self.assertNotIn(("src/attacks/attack.cpp", 12, "sweep-roster"), findings)
        # bad_mutex.cpp line 19 (external_mutex_) sits under a justified
        # allow(no-unannotated-mutex) annotation.
        self.assertNotIn(("src/obs/bad_mutex.cpp", 19, "no-unannotated-mutex"),
                         findings)

    def test_repository_is_clean(self):
        result = run_lint("--root", str(REPO_ROOT))
        self.assertEqual(result.returncode, 0,
                         "fedguard-lint must pass on the repo:\n" + result.stdout)

    def test_list_rules_names_every_rule(self):
        result = run_lint("--list-rules")
        self.assertEqual(result.returncode, 0)
        for rule in ("rng", "unordered-iteration", "stdout", "naked-new",
                     "test-timeout", "config-docs", "no-pointset-copy",
                     "no-raw-stopwatch", "span-category-docs",
                     "no-raw-intrinsics", "sweep-roster", "layering",
                     "no-unannotated-mutex", "no-const-cast-mutex",
                     "lock-discipline", "no-blocking-socket"):
            self.assertIn(rule, result.stdout)


if __name__ == "__main__":
    unittest.main()
