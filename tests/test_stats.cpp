#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace fedguard::util {
namespace {

TEST(Stats, MeanBasic) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(std::span<const double>{v}), 2.5);
}

TEST(Stats, MeanEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::span<const double>{}), 0.0);
}

TEST(Stats, StddevSampleDenominator) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // population stddev is 2; sample stddev = sqrt(32/7)
  EXPECT_NEAR(stddev(std::span<const double>{v}), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, StddevDegenerateCases) {
  const std::vector<double> single{5.0};
  EXPECT_DOUBLE_EQ(stddev(std::span<const double>{single}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::span<const double>{}), 0.0);
}

TEST(Stats, VariancePopulation) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(variance(std::span<const double>{v}), 4.0, 1e-12);
}

TEST(Stats, MedianOddEven) {
  const std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(std::span<const double>{odd}), 2.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(std::span<const double>{even}), 2.5);
}

TEST(Stats, MedianFloatOverload) {
  const std::vector<float> v{10.0f, 0.0f, 5.0f};
  EXPECT_FLOAT_EQ(median(std::span<const float>{v}), 5.0f);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> v{0.0, 1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(std::span<const double>{v}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(std::span<const double>{v}, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(std::span<const double>{v}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile(std::span<const double>{v}, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(quantile(std::span<const double>{v}, 0.125), 0.5);
}

TEST(Stats, MinMax) {
  const std::vector<double> v{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_value(std::span<const double>{v}), -1.0);
  EXPECT_DOUBLE_EQ(max_value(std::span<const double>{v}), 7.0);
}

TEST(Stats, TrailingStatsWindow) {
  // Series 0..9; trailing 4 -> {6,7,8,9}.
  std::vector<double> series(10);
  for (int i = 0; i < 10; ++i) series[static_cast<std::size_t>(i)] = i;
  const TrailingStats stats = trailing_stats(series, 4);
  EXPECT_EQ(stats.count, 4u);
  EXPECT_DOUBLE_EQ(stats.mean, 7.5);
  EXPECT_NEAR(stats.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, TrailingStatsShortSeriesUsesAll) {
  const std::vector<double> series{1.0, 2.0};
  const TrailingStats stats = trailing_stats(series, 40);
  EXPECT_EQ(stats.count, 2u);
  EXPECT_DOUBLE_EQ(stats.mean, 1.5);
}

TEST(Stats, L2NormAndDistance) {
  const std::vector<float> a{3.0f, 4.0f};
  const std::vector<float> b{0.0f, 0.0f};
  EXPECT_DOUBLE_EQ(l2_norm(a), 5.0);
  EXPECT_DOUBLE_EQ(l2_distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
}

TEST(Stats, DotAndCosine) {
  const std::vector<float> a{1.0f, 0.0f};
  const std::vector<float> b{0.0f, 1.0f};
  const std::vector<float> c{2.0f, 0.0f};
  EXPECT_DOUBLE_EQ(dot(a, b), 0.0);
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(cosine_similarity(a, c), 1.0);
  const std::vector<float> zero{0.0f, 0.0f};
  EXPECT_DOUBLE_EQ(cosine_similarity(a, zero), 0.0);
}

}  // namespace
}  // namespace fedguard::util
