#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace fedguard::parallel {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool{2};
  auto future = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool{2};
  auto future = pool.submit([]() -> int { throw std::runtime_error{"boom"}; });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, RunBatchExecutesAll) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(64);
  pool.run_batch(64, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RunBatchRethrowsFirstError) {
  ThreadPool pool{2};
  EXPECT_THROW(pool.run_batch(8,
                              [](std::size_t i) {
                                if (i == 3) throw std::logic_error{"bad"};
                              }),
               std::logic_error);
}

TEST(ThreadPool, SingleThreadedPoolRunsSerially) {
  ThreadPool pool{1};
  std::vector<int> order;
  pool.run_batch(5, [&order](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, CoversExactRange) {
  ThreadPool pool{3};
  std::vector<std::atomic<int>> hits(100);
  parallel_for(pool, 10, 90, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 10 && i < 90) ? 1 : 0) << "i=" << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool{2};
  int calls = 0;
  parallel_for(pool, 5, 5, [&calls](std::size_t) { ++calls; });
  parallel_for(pool, 7, 3, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

// Regression: run_batch(0) must return without touching the queue mutex, so
// it stays safe (and cheap) even when called from a worker of the same pool
// while the pool is under load.
TEST(ThreadPool, EmptyBatchIsNoopEvenFromWorker) {
  ThreadPool pool{2};
  int calls = 0;
  pool.run_batch(0, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  auto nested = pool.submit([&pool] {
    // Would deadlock if the empty batch enqueued work and waited on it.
    pool.run_batch(0, [](std::size_t) {});
    return 1;
  });
  EXPECT_EQ(nested.get(), 1);
}

// Regression: an inverted range (begin > end) must behave exactly like an
// empty one — no tasks, no wraparound from unsigned subtraction.
TEST(ParallelFor, InvertedRangeDoesNotWrapAround) {
  ThreadPool pool{4};
  std::atomic<int> calls{0};
  parallel_for(pool, 1000, 0, [&calls](std::size_t) { calls.fetch_add(1); });
  parallel_for(pool, std::numeric_limits<std::size_t>::max(), 1,
               [&calls](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, InWorkerThreadFlagSetInsideWorkers) {
  EXPECT_FALSE(in_worker_thread());
  ThreadPool pool{2};
  auto inside = pool.submit([] { return in_worker_thread(); });
  EXPECT_TRUE(inside.get());
  // Still false on the caller's thread afterwards.
  EXPECT_FALSE(in_worker_thread());
}

TEST(ParallelFor, SumMatchesSerial) {
  ThreadPool pool{4};
  std::atomic<long long> total{0};
  parallel_for(pool, 0, 1000, [&total](std::size_t i) {
    total.fetch_add(static_cast<long long>(i));
  });
  EXPECT_EQ(total.load(), 999LL * 1000 / 2);
}

TEST(GlobalPool, IsSingletonAndUsable) {
  ThreadPool& a = global_pool();
  ThreadPool& b = global_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.thread_count(), 1u);
  auto future = a.submit([] { return 7; });
  EXPECT_EQ(future.get(), 7);
}

}  // namespace
}  // namespace fedguard::parallel
