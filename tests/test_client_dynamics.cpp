// Tests of the dynamic-dataset extensions (paper §VI-C future work):
// client data refresh and periodic CVAE retraining.

#include <gtest/gtest.h>

#include <numeric>

#include "attacks/label_flip.hpp"
#include "data/synthetic_mnist.hpp"
#include "fl/client.hpp"

namespace fedguard::fl {
namespace {

models::CvaeSpec small_cvae() {
  models::CvaeSpec spec;
  spec.hidden = 48;
  spec.latent = 2;
  return spec;
}

ClientConfig fast_config(std::size_t retrain_interval) {
  ClientConfig config;
  config.local_epochs = 1;
  config.batch_size = 16;
  config.cvae_epochs = 2;
  config.cvae_batch_size = 16;
  config.train_cvae = true;
  config.cvae_retrain_interval = retrain_interval;
  return config;
}

struct DynamicsFixture : ::testing::Test {
  void SetUp() override {
    geometry = models::ImageGeometry{1, 28, 28, 10};
    first_wave = data::generate_synthetic_mnist(150, 301);
    second_wave = data::generate_synthetic_mnist(150, 302);
    indices.resize(60);
    std::iota(indices.begin(), indices.end(), std::size_t{0});
    reference = std::make_unique<models::Classifier>(models::ClassifierArch::Mlp,
                                                     geometry, 303);
    global = reference->parameters_flat();
  }

  models::ImageGeometry geometry;
  data::Dataset first_wave;
  data::Dataset second_wave;
  std::vector<std::size_t> indices;
  std::unique_ptr<models::Classifier> reference;
  std::vector<float> global;
};

TEST_F(DynamicsFixture, RefreshReplacesLocalData) {
  Client client{0, first_wave, indices, fast_config(0), models::ClassifierArch::Mlp,
                geometry, small_cvae(), 304};
  const auto before = client.local_data().class_histogram();
  client.refresh_data(second_wave, indices);
  EXPECT_EQ(client.num_samples(), 60u);
  // Different data wave -> (almost surely) different pixel content.
  bool any_different = false;
  for (std::size_t i = 0; i < 60; ++i) {
    const auto a = client.local_data().image(i);
    const auto b = first_wave.image(indices[i]);
    for (std::size_t p = 0; p < a.size(); ++p) {
      if (a[p] != b[p]) {
        any_different = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_different);
  (void)before;
}

TEST_F(DynamicsFixture, RefreshReappliesLabelFlip) {
  Client client{0, first_wave, indices, fast_config(0), models::ClassifierArch::Mlp,
                geometry, small_cvae(), 305};
  client.corrupt_with_label_flip(attacks::default_flip_pairs());
  client.refresh_data(second_wave, indices);
  // Flipped labels in the refreshed data must match flipping applied directly.
  data::Dataset expected = second_wave.subset(indices);
  attacks::apply_label_flip(expected, attacks::default_flip_pairs());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(client.local_data().label(i), expected.label(i));
  }
  EXPECT_TRUE(client.malicious());
}

TEST_F(DynamicsFixture, TrainOnceKeepsDecoderAcrossRefresh) {
  Client client{0, first_wave, indices, fast_config(0), models::ClassifierArch::Mlp,
                geometry, small_cvae(), 306};
  const auto first = client.run_round(global, 0);
  client.refresh_data(second_wave, indices);
  const auto second = client.run_round(global, 1);
  // interval 0 = paper default: decoder trained exactly once, even after a
  // data refresh.
  EXPECT_EQ(first.theta, second.theta);
}

TEST_F(DynamicsFixture, RetrainIntervalRefreshesDecoder) {
  Client client{0, first_wave, indices, fast_config(2), models::ClassifierArch::Mlp,
                geometry, small_cvae(), 307};
  const auto round0 = client.run_round(global, 0);
  const auto round1 = client.run_round(global, 1);
  EXPECT_EQ(round0.theta, round1.theta);  // not yet due (interval 2)
  const auto round2 = client.run_round(global, 2);
  EXPECT_NE(round0.theta, round2.theta);  // retrained after 2 participations
  const auto round3 = client.run_round(global, 3);
  EXPECT_EQ(round2.theta, round3.theta);  // cached again until next interval
}

TEST_F(DynamicsFixture, RetrainTracksRefreshedData) {
  Client stale{0, first_wave, indices, fast_config(0), models::ClassifierArch::Mlp,
               geometry, small_cvae(), 308};
  Client fresh{1, first_wave, indices, fast_config(1), models::ClassifierArch::Mlp,
               geometry, small_cvae(), 308};
  (void)stale.run_round(global, 0);
  (void)fresh.run_round(global, 0);
  stale.refresh_data(second_wave, indices);
  fresh.refresh_data(second_wave, indices);
  const auto stale_update = stale.run_round(global, 1);
  const auto fresh_update = fresh.run_round(global, 1);
  // Only the retraining client's decoder changes after new data arrives.
  Client baseline{2, first_wave, indices, fast_config(0), models::ClassifierArch::Mlp,
                  geometry, small_cvae(), 308};
  const auto baseline_update = baseline.run_round(global, 0);
  EXPECT_EQ(stale_update.theta, baseline_update.theta);
  EXPECT_NE(fresh_update.theta, baseline_update.theta);
}

}  // namespace
}  // namespace fedguard::fl
