#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "parallel/kernel_config.hpp"
#include "util/rng.hpp"

namespace fedguard::tensor {
namespace {

/// Restores the process-wide kernel config when the test scope ends, so
/// threshold/thread overrides cannot leak into other tests.
class KernelConfigGuard {
 public:
  KernelConfigGuard() : saved_{parallel::kernel_config()} {}
  ~KernelConfigGuard() { parallel::set_kernel_config(saved_); }

 private:
  parallel::KernelConfig saved_;
};

TEST(Ops, MatmulAgainstHandComputed) {
  const Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b = Tensor::from_data({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c{{2, 2}};
  matmul(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Ops, MatmulDimensionChecks) {
  const Tensor a{{2, 3}};
  const Tensor b{{4, 2}};
  Tensor c{{2, 2}};
  EXPECT_THROW(matmul(a, b, c), std::invalid_argument);
  const Tensor b_ok{{3, 5}};
  Tensor c_bad{{2, 4}};
  EXPECT_THROW(matmul(a, b_ok, c_bad), std::invalid_argument);
}

// Property: the three transpose variants agree with explicit transposition.
class GemmVariants : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmVariants, TransposeVariantsConsistent) {
  const auto [m, k, n] = GetParam();
  util::Rng rng{99};
  auto random_tensor = [&rng](std::size_t r, std::size_t c) {
    Tensor t{{r, c}};
    for (auto& v : t.data()) v = rng.uniform_float(-1.0f, 1.0f);
    return t;
  };
  auto transpose = [](const Tensor& t) {
    Tensor out{{t.dim(1), t.dim(0)}};
    for (std::size_t i = 0; i < t.dim(0); ++i)
      for (std::size_t j = 0; j < t.dim(1); ++j) out.at(j, i) = t.at(i, j);
    return out;
  };

  const Tensor a = random_tensor(static_cast<std::size_t>(m), static_cast<std::size_t>(k));
  const Tensor b = random_tensor(static_cast<std::size_t>(k), static_cast<std::size_t>(n));
  Tensor reference{{static_cast<std::size_t>(m), static_cast<std::size_t>(n)}};
  matmul(a, b, reference);

  // A^T path
  Tensor via_trans_a{reference.shape()};
  matmul_trans_a(transpose(a), b, via_trans_a);
  // B^T path
  Tensor via_trans_b{reference.shape()};
  matmul_trans_b(a, transpose(b), via_trans_b);

  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(via_trans_a[i], reference[i], 1e-4f);
    EXPECT_NEAR(via_trans_b[i], reference[i], 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmVariants,
                         ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                                           std::make_tuple(5, 7, 3), std::make_tuple(8, 8, 8),
                                           std::make_tuple(1, 16, 9)));

// ---- Oracle tests for the blocked / parallel GEMM paths ---------------------
//
// A textbook triple loop is the reference. Shapes are chosen to exercise the
// tiling edges: 1x1x1, dimensions below one micro-tile, dimensions that cross
// kMc=64 / kKc=256 / kNc=512 by one, tall-skinny and short-fat panels.

void naive_matmul(const std::vector<float>& a, const std::vector<float>& b,
                  std::vector<float>& c, std::size_t m, std::size_t k, std::size_t n) {
  c.assign(m * n, 0.0f);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float a_ip = a[i * k + p];
      for (std::size_t j = 0; j < n; ++j) c[i * n + j] += a_ip * b[p * n + j];
    }
  }
}

std::vector<float> random_buffer(std::size_t size, util::Rng& rng) {
  std::vector<float> buffer(size);
  for (auto& v : buffer) v = rng.uniform_float(-1.0f, 1.0f);
  return buffer;
}

void expect_near_rel(const std::vector<float>& actual, const std::vector<float>& expected,
                     float rel_tol) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const float tol = rel_tol * std::max(1.0f, std::abs(expected[i]));
    ASSERT_NEAR(actual[i], expected[i], tol) << "index " << i;
  }
}

class GemmOracle : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmOracle, BlockedMatchesNaiveSerialAndParallel) {
  const auto [mi, ki, ni] = GetParam();
  const auto m = static_cast<std::size_t>(mi);
  const auto k = static_cast<std::size_t>(ki);
  const auto n = static_cast<std::size_t>(ni);
  util::Rng rng{2026};
  const std::vector<float> a = random_buffer(m * k, rng);
  const std::vector<float> b = random_buffer(k * n, rng);
  std::vector<float> reference;
  naive_matmul(a, b, reference, m, k, n);

  // Transposed operands for the variant kernels.
  std::vector<float> a_t(k * m), b_t(n * k);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t p = 0; p < k; ++p) a_t[p * m + i] = a[i * k + p];
  for (std::size_t p = 0; p < k; ++p)
    for (std::size_t j = 0; j < n; ++j) b_t[j * k + p] = b[p * n + j];

  KernelConfigGuard guard;
  std::vector<float> serial_out;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    parallel::KernelConfig config;
    config.threads = threads;
    config.gemm_min_flops = 1;  // force the parallel dispatch path when threads > 1
    parallel::set_kernel_config(config);

    std::vector<float> c(m * n);
    matmul(a.data(), b.data(), c.data(), m, k, n);
    expect_near_rel(c, reference, 1e-4f);

    std::vector<float> c_ta(m * n);
    matmul_trans_a(a_t.data(), b.data(), c_ta.data(), m, k, n);
    expect_near_rel(c_ta, reference, 1e-4f);

    std::vector<float> c_tb(m * n);
    matmul_trans_b(a.data(), b_t.data(), c_tb.data(), m, k, n);
    expect_near_rel(c_tb, reference, 1e-4f);

    // Thread-count invariance must be exact, not approximate: the blocked
    // kernels accumulate every C element in the same order regardless of the
    // row partitioning.
    if (threads == 1) {
      serial_out = c;
    } else {
      ASSERT_EQ(c, serial_out) << "parallel GEMM diverged from single-threaded result";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmOracle,
    ::testing::Values(std::make_tuple(1, 1, 1),      // degenerate
                      std::make_tuple(3, 5, 7),      // below one micro-tile
                      std::make_tuple(4, 16, 16),    // exactly one micro-tile row
                      std::make_tuple(65, 257, 33),  // crosses kMc and kKc by one
                      std::make_tuple(200, 3, 2),    // tall-skinny
                      std::make_tuple(2, 3, 530),    // short-fat, crosses kNc
                      std::make_tuple(31, 64, 10)));  // classifier head shape

TEST(Ops, MatmulDeterministicAcrossRuns) {
  util::Rng rng{7};
  const std::size_t m = 37, k = 129, n = 23;
  const std::vector<float> a = random_buffer(m * k, rng);
  const std::vector<float> b = random_buffer(k * n, rng);
  std::vector<float> first(m * n), again(m * n);
  matmul(a.data(), b.data(), first.data(), m, k, n);
  for (int run = 0; run < 3; ++run) {
    matmul(a.data(), b.data(), again.data(), m, k, n);
    ASSERT_EQ(again, first) << "run " << run;
  }
}

TEST(Ops, ParallelElementwiseMatchesSerial) {
  util::Rng rng{11};
  const std::size_t size = 100003;  // odd size, above the forced threshold
  const std::vector<float> a = random_buffer(size, rng);
  const std::vector<float> b = random_buffer(size, rng);

  KernelConfigGuard guard;
  parallel::KernelConfig serial_config;
  serial_config.threads = 1;
  parallel::set_kernel_config(serial_config);
  std::vector<float> expected_add(size), expected_axpy = a;
  add(a, b, expected_add);
  axpy(0.5f, b, expected_axpy);
  const float expected_sum = sum(a);

  parallel::KernelConfig parallel_config;
  parallel_config.threads = 4;
  parallel_config.elementwise_min_size = 1;
  parallel::set_kernel_config(parallel_config);
  std::vector<float> out(size);
  add(a, b, out);
  EXPECT_EQ(out, expected_add);
  out = a;
  axpy(0.5f, b, out);
  EXPECT_EQ(out, expected_axpy);
  // sum() reduces fixed-size chunks in a fixed order: bit-identical too.
  EXPECT_EQ(sum(a), expected_sum);
}

TEST(Ops, BatchedIm2ColMatchesPerSample) {
  util::Rng rng{31};
  const ConvGeometry g{2, 7, 6, 3, 1};
  const std::size_t pixels = g.out_h() * g.out_w();
  const std::size_t count = 3;
  const std::vector<float> images =
      random_buffer(count * g.in_channels * g.in_h * g.in_w, rng);
  std::vector<float> batched(g.patch_size() * count * pixels);
  im2col_batch(images, g, count, batched.data());
  for (std::size_t s = 0; s < count; ++s) {
    std::vector<float> sample(images.begin() + static_cast<std::ptrdiff_t>(
                                  s * g.in_channels * g.in_h * g.in_w),
                              images.begin() + static_cast<std::ptrdiff_t>(
                                  (s + 1) * g.in_channels * g.in_h * g.in_w));
    Tensor cols;
    im2col(sample, g, cols);
    for (std::size_t r = 0; r < g.patch_size(); ++r) {
      for (std::size_t c = 0; c < pixels; ++c) {
        ASSERT_EQ(batched[r * count * pixels + s * pixels + c], cols.at(r, c))
            << "sample " << s << " row " << r << " col " << c;
      }
    }
  }
}

TEST(Ops, MatmulTransAAccumulates) {
  const Tensor a = Tensor::from_data({1, 2}, {1, 2});  // A [k=1, m=2]
  const Tensor b = Tensor::from_data({1, 3}, {1, 1, 1});
  Tensor c{{2, 3}, 10.0f};
  matmul_trans_a_accumulate(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(c.at(1, 2), 12.0f);
}

TEST(Ops, ElementwiseOperations) {
  const std::vector<float> a{1, 2, 3};
  const std::vector<float> b{4, 5, 6};
  std::vector<float> out(3);
  add(a, b, out);
  EXPECT_EQ(out, (std::vector<float>{5, 7, 9}));
  sub(a, b, out);
  EXPECT_EQ(out, (std::vector<float>{-3, -3, -3}));
  hadamard(a, b, out);
  EXPECT_EQ(out, (std::vector<float>{4, 10, 18}));
  out = a;
  axpy(2.0f, b, out);
  EXPECT_EQ(out, (std::vector<float>{9, 12, 15}));
  scale(out, 0.5f);
  EXPECT_EQ(out, (std::vector<float>{4.5f, 6.0f, 7.5f}));
}

TEST(Ops, SumAndArgmax) {
  const std::vector<float> v{1.0f, 5.0f, 3.0f, 5.0f};
  EXPECT_FLOAT_EQ(sum(v), 14.0f);
  EXPECT_EQ(argmax(v), 1u);  // first of the ties
}

TEST(Ops, RowHelpers) {
  Tensor rows = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  std::vector<float> acc(3, 0.0f);
  add_rows_into(rows, acc);
  EXPECT_EQ(acc, (std::vector<float>{5, 7, 9}));
  const std::vector<float> bias{10, 20, 30};
  add_bias_rows(rows, bias);
  EXPECT_FLOAT_EQ(rows.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(rows.at(1, 2), 36.0f);
}

TEST(Ops, SoftmaxRowsSumToOneAndOrder) {
  const Tensor logits = Tensor::from_data({2, 3}, {1, 2, 3, 1000, 1001, 1002});
  Tensor probs;
  softmax_rows(logits, probs);
  for (std::size_t r = 0; r < 2; ++r) {
    float total = 0.0f;
    for (const float v : probs.row(r)) total += v;
    EXPECT_NEAR(total, 1.0f, 1e-5f);
    EXPECT_LT(probs.at(r, 0), probs.at(r, 1));
    EXPECT_LT(probs.at(r, 1), probs.at(r, 2));
  }
  // Numerical stability: huge logits must not produce NaN.
  for (const float v : probs.data()) EXPECT_FALSE(std::isnan(v));
}

TEST(Ops, LogSoftmaxMatchesLogOfSoftmax) {
  const Tensor logits = Tensor::from_data({1, 4}, {0.1f, -0.3f, 2.0f, 0.7f});
  Tensor probs, log_probs;
  softmax_rows(logits, probs);
  log_softmax_rows(logits, log_probs);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(log_probs[i], std::log(probs[i]), 1e-5f);
  }
}

TEST(Ops, Im2ColNoPaddingKnownValues) {
  // 1 channel, 3x3 image, 2x2 kernel -> 4 patches of size 4.
  const std::vector<float> image{0, 1, 2, 3, 4, 5, 6, 7, 8};
  const ConvGeometry g{1, 3, 3, 2, 0};
  Tensor cols;
  im2col(image, g, cols);
  ASSERT_EQ(cols.dim(0), 4u);
  ASSERT_EQ(cols.dim(1), 4u);
  // Patch row 0 = top-left kernel element over output pixels {0,1,3,4}.
  EXPECT_FLOAT_EQ(cols.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(cols.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(cols.at(0, 2), 3.0f);
  EXPECT_FLOAT_EQ(cols.at(0, 3), 4.0f);
  // Patch row 3 = bottom-right kernel element over {4,5,7,8}.
  EXPECT_FLOAT_EQ(cols.at(3, 0), 4.0f);
  EXPECT_FLOAT_EQ(cols.at(3, 3), 8.0f);
}

TEST(Ops, Im2ColPaddingProducesZerosAtBorder) {
  const std::vector<float> image{1, 1, 1, 1};  // 2x2 all-ones
  const ConvGeometry g{1, 2, 2, 3, 1};         // 3x3 kernel, pad 1 -> out 2x2
  Tensor cols;
  im2col(image, g, cols);
  ASSERT_EQ(cols.dim(0), 9u);
  ASSERT_EQ(cols.dim(1), 4u);
  // Top-left kernel element at output (0,0) reads padded zero.
  EXPECT_FLOAT_EQ(cols.at(0, 0), 0.0f);
  // Center kernel element always reads the image.
  EXPECT_FLOAT_EQ(cols.at(4, 0), 1.0f);
  EXPECT_FLOAT_EQ(cols.at(4, 3), 1.0f);
}

TEST(Ops, Col2ImIsAdjointOfIm2Col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y (adjoint property that
  // guarantees correct convolution gradients).
  util::Rng rng{123};
  const ConvGeometry g{2, 5, 6, 3, 1};
  std::vector<float> x(g.in_channels * g.in_h * g.in_w);
  for (auto& v : x) v = rng.uniform_float(-1.0f, 1.0f);
  Tensor cols;
  im2col(x, g, cols);
  Tensor y{cols.shape()};
  for (auto& v : y.data()) v = rng.uniform_float(-1.0f, 1.0f);

  double lhs = 0.0;
  for (std::size_t i = 0; i < cols.size(); ++i) {
    lhs += static_cast<double>(cols[i]) * y[i];
  }
  std::vector<float> x_grad(x.size(), 0.0f);
  col2im_accumulate(y, g, x_grad);
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    rhs += static_cast<double>(x[i]) * x_grad[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Ops, ConvGeometryOutputSizes) {
  const ConvGeometry same{1, 28, 28, 5, 2};
  EXPECT_EQ(same.out_h(), 28u);
  EXPECT_EQ(same.out_w(), 28u);
  EXPECT_EQ(same.patch_size(), 25u);
  const ConvGeometry valid{3, 10, 8, 3, 0};
  EXPECT_EQ(valid.out_h(), 8u);
  EXPECT_EQ(valid.out_w(), 6u);
  EXPECT_EQ(valid.patch_size(), 27u);
}

}  // namespace
}  // namespace fedguard::tensor
