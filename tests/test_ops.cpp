#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace fedguard::tensor {
namespace {

TEST(Ops, MatmulAgainstHandComputed) {
  const Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b = Tensor::from_data({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c{{2, 2}};
  matmul(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Ops, MatmulDimensionChecks) {
  const Tensor a{{2, 3}};
  const Tensor b{{4, 2}};
  Tensor c{{2, 2}};
  EXPECT_THROW(matmul(a, b, c), std::invalid_argument);
  const Tensor b_ok{{3, 5}};
  Tensor c_bad{{2, 4}};
  EXPECT_THROW(matmul(a, b_ok, c_bad), std::invalid_argument);
}

// Property: the three transpose variants agree with explicit transposition.
class GemmVariants : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmVariants, TransposeVariantsConsistent) {
  const auto [m, k, n] = GetParam();
  util::Rng rng{99};
  auto random_tensor = [&rng](std::size_t r, std::size_t c) {
    Tensor t{{r, c}};
    for (auto& v : t.data()) v = rng.uniform_float(-1.0f, 1.0f);
    return t;
  };
  auto transpose = [](const Tensor& t) {
    Tensor out{{t.dim(1), t.dim(0)}};
    for (std::size_t i = 0; i < t.dim(0); ++i)
      for (std::size_t j = 0; j < t.dim(1); ++j) out.at(j, i) = t.at(i, j);
    return out;
  };

  const Tensor a = random_tensor(static_cast<std::size_t>(m), static_cast<std::size_t>(k));
  const Tensor b = random_tensor(static_cast<std::size_t>(k), static_cast<std::size_t>(n));
  Tensor reference{{static_cast<std::size_t>(m), static_cast<std::size_t>(n)}};
  matmul(a, b, reference);

  // A^T path
  Tensor via_trans_a{reference.shape()};
  matmul_trans_a(transpose(a), b, via_trans_a);
  // B^T path
  Tensor via_trans_b{reference.shape()};
  matmul_trans_b(a, transpose(b), via_trans_b);

  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(via_trans_a[i], reference[i], 1e-4f);
    EXPECT_NEAR(via_trans_b[i], reference[i], 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmVariants,
                         ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                                           std::make_tuple(5, 7, 3), std::make_tuple(8, 8, 8),
                                           std::make_tuple(1, 16, 9)));

TEST(Ops, MatmulTransAAccumulates) {
  const Tensor a = Tensor::from_data({1, 2}, {1, 2});  // A [k=1, m=2]
  const Tensor b = Tensor::from_data({1, 3}, {1, 1, 1});
  Tensor c{{2, 3}, 10.0f};
  matmul_trans_a_accumulate(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(c.at(1, 2), 12.0f);
}

TEST(Ops, ElementwiseOperations) {
  const std::vector<float> a{1, 2, 3};
  const std::vector<float> b{4, 5, 6};
  std::vector<float> out(3);
  add(a, b, out);
  EXPECT_EQ(out, (std::vector<float>{5, 7, 9}));
  sub(a, b, out);
  EXPECT_EQ(out, (std::vector<float>{-3, -3, -3}));
  hadamard(a, b, out);
  EXPECT_EQ(out, (std::vector<float>{4, 10, 18}));
  out = a;
  axpy(2.0f, b, out);
  EXPECT_EQ(out, (std::vector<float>{9, 12, 15}));
  scale(out, 0.5f);
  EXPECT_EQ(out, (std::vector<float>{4.5f, 6.0f, 7.5f}));
}

TEST(Ops, SumAndArgmax) {
  const std::vector<float> v{1.0f, 5.0f, 3.0f, 5.0f};
  EXPECT_FLOAT_EQ(sum(v), 14.0f);
  EXPECT_EQ(argmax(v), 1u);  // first of the ties
}

TEST(Ops, RowHelpers) {
  Tensor rows = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  std::vector<float> acc(3, 0.0f);
  add_rows_into(rows, acc);
  EXPECT_EQ(acc, (std::vector<float>{5, 7, 9}));
  const std::vector<float> bias{10, 20, 30};
  add_bias_rows(rows, bias);
  EXPECT_FLOAT_EQ(rows.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(rows.at(1, 2), 36.0f);
}

TEST(Ops, SoftmaxRowsSumToOneAndOrder) {
  const Tensor logits = Tensor::from_data({2, 3}, {1, 2, 3, 1000, 1001, 1002});
  Tensor probs;
  softmax_rows(logits, probs);
  for (std::size_t r = 0; r < 2; ++r) {
    float total = 0.0f;
    for (const float v : probs.row(r)) total += v;
    EXPECT_NEAR(total, 1.0f, 1e-5f);
    EXPECT_LT(probs.at(r, 0), probs.at(r, 1));
    EXPECT_LT(probs.at(r, 1), probs.at(r, 2));
  }
  // Numerical stability: huge logits must not produce NaN.
  for (const float v : probs.data()) EXPECT_FALSE(std::isnan(v));
}

TEST(Ops, LogSoftmaxMatchesLogOfSoftmax) {
  const Tensor logits = Tensor::from_data({1, 4}, {0.1f, -0.3f, 2.0f, 0.7f});
  Tensor probs, log_probs;
  softmax_rows(logits, probs);
  log_softmax_rows(logits, log_probs);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(log_probs[i], std::log(probs[i]), 1e-5f);
  }
}

TEST(Ops, Im2ColNoPaddingKnownValues) {
  // 1 channel, 3x3 image, 2x2 kernel -> 4 patches of size 4.
  const std::vector<float> image{0, 1, 2, 3, 4, 5, 6, 7, 8};
  const ConvGeometry g{1, 3, 3, 2, 0};
  Tensor cols;
  im2col(image, g, cols);
  ASSERT_EQ(cols.dim(0), 4u);
  ASSERT_EQ(cols.dim(1), 4u);
  // Patch row 0 = top-left kernel element over output pixels {0,1,3,4}.
  EXPECT_FLOAT_EQ(cols.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(cols.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(cols.at(0, 2), 3.0f);
  EXPECT_FLOAT_EQ(cols.at(0, 3), 4.0f);
  // Patch row 3 = bottom-right kernel element over {4,5,7,8}.
  EXPECT_FLOAT_EQ(cols.at(3, 0), 4.0f);
  EXPECT_FLOAT_EQ(cols.at(3, 3), 8.0f);
}

TEST(Ops, Im2ColPaddingProducesZerosAtBorder) {
  const std::vector<float> image{1, 1, 1, 1};  // 2x2 all-ones
  const ConvGeometry g{1, 2, 2, 3, 1};         // 3x3 kernel, pad 1 -> out 2x2
  Tensor cols;
  im2col(image, g, cols);
  ASSERT_EQ(cols.dim(0), 9u);
  ASSERT_EQ(cols.dim(1), 4u);
  // Top-left kernel element at output (0,0) reads padded zero.
  EXPECT_FLOAT_EQ(cols.at(0, 0), 0.0f);
  // Center kernel element always reads the image.
  EXPECT_FLOAT_EQ(cols.at(4, 0), 1.0f);
  EXPECT_FLOAT_EQ(cols.at(4, 3), 1.0f);
}

TEST(Ops, Col2ImIsAdjointOfIm2Col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y (adjoint property that
  // guarantees correct convolution gradients).
  util::Rng rng{123};
  const ConvGeometry g{2, 5, 6, 3, 1};
  std::vector<float> x(g.in_channels * g.in_h * g.in_w);
  for (auto& v : x) v = rng.uniform_float(-1.0f, 1.0f);
  Tensor cols;
  im2col(x, g, cols);
  Tensor y{cols.shape()};
  for (auto& v : y.data()) v = rng.uniform_float(-1.0f, 1.0f);

  double lhs = 0.0;
  for (std::size_t i = 0; i < cols.size(); ++i) {
    lhs += static_cast<double>(cols[i]) * y[i];
  }
  std::vector<float> x_grad(x.size(), 0.0f);
  col2im_accumulate(y, g, x_grad);
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    rhs += static_cast<double>(x[i]) * x_grad[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Ops, ConvGeometryOutputSizes) {
  const ConvGeometry same{1, 28, 28, 5, 2};
  EXPECT_EQ(same.out_h(), 28u);
  EXPECT_EQ(same.out_w(), 28u);
  EXPECT_EQ(same.patch_size(), 25u);
  const ConvGeometry valid{3, 10, 8, 3, 0};
  EXPECT_EQ(valid.out_h(), 8u);
  EXPECT_EQ(valid.out_w(), 6u);
  EXPECT_EQ(valid.patch_size(), 27u);
}

}  // namespace
}  // namespace fedguard::tensor
