#include "data/dataset.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/idx_loader.hpp"
#include "data/synthetic_mnist.hpp"
#include "util/stats.hpp"

namespace fedguard::data {
namespace {

TEST(Dataset, ConstructionValidation) {
  tensor::Tensor images{{2, 1, 4, 4}};
  EXPECT_NO_THROW((void)Dataset(images, {0, 1}, 10));
  EXPECT_THROW((void)Dataset(images, {0}, 10), std::invalid_argument);
  EXPECT_THROW((void)Dataset(images, {0, 10}, 10), std::invalid_argument);
  tensor::Tensor flat{{2, 16}};
  EXPECT_THROW((void)Dataset(flat, {0, 1}, 10), std::invalid_argument);
}

TEST(Dataset, GatherAndSubset) {
  tensor::Tensor images{{3, 1, 2, 2}};
  for (std::size_t i = 0; i < images.size(); ++i) images[i] = static_cast<float>(i);
  const Dataset dataset{std::move(images), {0, 1, 2}, 10};

  const std::vector<std::size_t> indices{2, 0};
  const Dataset::Batch batch = dataset.gather(indices);
  EXPECT_EQ(batch.images.shape(), (std::vector<std::size_t>{2, 1, 2, 2}));
  EXPECT_EQ(batch.labels, (std::vector<int>{2, 0}));
  EXPECT_FLOAT_EQ(batch.images[0], 8.0f);  // sample 2 starts at flat index 8

  const Dataset sub = dataset.subset(indices);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.label(0), 2);
  EXPECT_FLOAT_EQ(sub.image(1)[0], 0.0f);
}

TEST(Dataset, GatherFlat) {
  tensor::Tensor images{{2, 1, 2, 2}};
  for (std::size_t i = 0; i < images.size(); ++i) images[i] = static_cast<float>(i);
  const Dataset dataset{std::move(images), {3, 4}, 10};
  const std::vector<std::size_t> indices{1};
  const tensor::Tensor flat = dataset.gather_flat(indices);
  EXPECT_EQ(flat.shape(), (std::vector<std::size_t>{1, 4}));
  EXPECT_FLOAT_EQ(flat[0], 4.0f);
}

TEST(Dataset, ClassHistogram) {
  tensor::Tensor images{{4, 1, 1, 1}};
  const Dataset dataset{std::move(images), {0, 1, 1, 3}, 5};
  EXPECT_EQ(dataset.class_histogram(), (std::vector<std::size_t>{1, 2, 0, 1, 0}));
}

TEST(SyntheticMnist, ShapeAndRange) {
  const Dataset dataset = generate_synthetic_mnist(100, 1);
  EXPECT_EQ(dataset.size(), 100u);
  EXPECT_EQ(dataset.height(), 28u);
  EXPECT_EQ(dataset.width(), 28u);
  EXPECT_EQ(dataset.num_classes(), 10u);
  for (const float v : dataset.images().data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(SyntheticMnist, BalancedClassDistribution) {
  const Dataset dataset = generate_synthetic_mnist(500, 2);
  const auto histogram = dataset.class_histogram();
  for (const std::size_t c : histogram) EXPECT_EQ(c, 50u);
}

TEST(SyntheticMnist, PerClassCountsRespected) {
  std::vector<std::size_t> counts{5, 0, 3, 0, 0, 7, 0, 0, 0, 1};
  const Dataset dataset = generate_synthetic_mnist_per_class(counts, 3);
  EXPECT_EQ(dataset.size(), 16u);
  const auto histogram = dataset.class_histogram();
  for (std::size_t c = 0; c < 10; ++c) EXPECT_EQ(histogram[c], counts[c]);
}

TEST(SyntheticMnist, DeterministicForSeed) {
  const Dataset a = generate_synthetic_mnist(50, 7);
  const Dataset b = generate_synthetic_mnist(50, 7);
  const Dataset c = generate_synthetic_mnist(50, 8);
  ASSERT_EQ(a.size(), b.size());
  bool identical_ab = true, identical_ac = true;
  for (std::size_t i = 0; i < a.images().size(); ++i) {
    identical_ab &= a.images()[i] == b.images()[i];
    identical_ac &= a.images()[i] == c.images()[i];
  }
  EXPECT_TRUE(identical_ab);
  EXPECT_FALSE(identical_ac);
}

TEST(SyntheticMnist, ClassesAreVisuallyDistinct) {
  // Mean images of different classes should be far apart relative to the
  // within-class spread — the property that makes the task learnable.
  const Dataset dataset = generate_synthetic_mnist(600, 9);
  std::vector<std::vector<double>> means(10, std::vector<double>(dataset.pixels(), 0.0));
  std::vector<std::size_t> counts(10, 0);
  for (std::size_t n = 0; n < dataset.size(); ++n) {
    const auto image = dataset.image(n);
    auto& mean = means[static_cast<std::size_t>(dataset.label(n))];
    for (std::size_t i = 0; i < image.size(); ++i) mean[i] += image[i];
    ++counts[static_cast<std::size_t>(dataset.label(n))];
  }
  for (std::size_t c = 0; c < 10; ++c) {
    for (auto& v : means[c]) v /= static_cast<double>(counts[c]);
  }
  for (std::size_t a = 0; a < 10; ++a) {
    for (std::size_t b = a + 1; b < 10; ++b) {
      double d2 = 0.0;
      for (std::size_t i = 0; i < means[a].size(); ++i) {
        const double d = means[a][i] - means[b][i];
        d2 += d * d;
      }
      EXPECT_GT(std::sqrt(d2), 1.0) << "classes " << a << " and " << b
                                    << " too similar";
    }
  }
}

TEST(SyntheticMnist, RenderDigitRejectsBadDigit) {
  util::Rng rng{10};
  EXPECT_THROW((void)render_digit(10, rng), std::invalid_argument);
  EXPECT_THROW((void)render_digit(-1, rng), std::invalid_argument);
}

TEST(SyntheticMnist, CustomImageSize) {
  SyntheticMnistOptions options;
  options.image_size = 14;
  const Dataset dataset = generate_synthetic_mnist(20, 11, options);
  EXPECT_EQ(dataset.height(), 14u);
  EXPECT_EQ(dataset.pixels(), 196u);
}

// ---- IDX loader (round-trip through a handcrafted file pair) -----------------

void write_be_u32(std::ofstream& out, std::uint32_t value) {
  const unsigned char bytes[4] = {
      static_cast<unsigned char>(value >> 24), static_cast<unsigned char>(value >> 16),
      static_cast<unsigned char>(value >> 8), static_cast<unsigned char>(value)};
  out.write(reinterpret_cast<const char*>(bytes), 4);
}

struct IdxFiles {
  std::string images_path;
  std::string labels_path;

  IdxFiles() {
    const auto dir = std::filesystem::temp_directory_path();
    images_path = dir / "fedguard_test_images.idx3";
    labels_path = dir / "fedguard_test_labels.idx1";
    std::ofstream images{images_path, std::ios::binary};
    write_be_u32(images, 0x00000803);
    write_be_u32(images, 2);  // two 2x3 images
    write_be_u32(images, 2);
    write_be_u32(images, 3);
    const unsigned char pixels[12] = {0, 51, 102, 153, 204, 255, 10, 20, 30, 40, 50, 60};
    images.write(reinterpret_cast<const char*>(pixels), 12);

    std::ofstream labels{labels_path, std::ios::binary};
    write_be_u32(labels, 0x00000801);
    write_be_u32(labels, 2);
    const unsigned char values[2] = {7, 3};
    labels.write(reinterpret_cast<const char*>(values), 2);
  }

  ~IdxFiles() {
    std::remove(images_path.c_str());
    std::remove(labels_path.c_str());
  }
};

TEST(IdxLoader, ParsesHandcraftedFiles) {
  const IdxFiles files;
  EXPECT_TRUE(idx_dataset_available(files.images_path, files.labels_path));
  const Dataset dataset = load_idx_dataset(files.images_path, files.labels_path);
  EXPECT_EQ(dataset.size(), 2u);
  EXPECT_EQ(dataset.height(), 2u);
  EXPECT_EQ(dataset.width(), 3u);
  EXPECT_EQ(dataset.label(0), 7);
  EXPECT_EQ(dataset.label(1), 3);
  EXPECT_FLOAT_EQ(dataset.image(0)[0], 0.0f);
  EXPECT_FLOAT_EQ(dataset.image(0)[5], 1.0f);
  EXPECT_NEAR(dataset.image(1)[0], 10.0f / 255.0f, 1e-6f);
}

TEST(IdxLoader, MissingFilesReported) {
  EXPECT_FALSE(idx_dataset_available("/no/such/images", "/no/such/labels"));
  EXPECT_THROW((void)load_idx_dataset("/no/such/images", "/no/such/labels"),
               std::runtime_error);
}

TEST(IdxLoader, BadMagicRejected) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string bad_path = dir / "fedguard_bad.idx";
  {
    std::ofstream bad{bad_path, std::ios::binary};
    write_be_u32(bad, 0x12345678);
    write_be_u32(bad, 0);
  }
  EXPECT_FALSE(idx_dataset_available(bad_path, bad_path));
  std::remove(bad_path.c_str());
}

}  // namespace
}  // namespace fedguard::data
