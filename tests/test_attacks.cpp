#include "attacks/attack.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "attacks/covert.hpp"
#include "attacks/label_flip.hpp"
#include "data/synthetic_mnist.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fedguard::attacks {
namespace {

TEST(AttackType, StringRoundTripCoversEveryType) {
  for (const auto type : kAllAttackTypes) {
    EXPECT_EQ(attack_type_from_string(to_string(type)), type);
  }
  EXPECT_THROW((void)attack_type_from_string("nope"), std::invalid_argument);
}

TEST(AttackType, ParseErrorEnumeratesValidNames) {
  try {
    (void)attack_type_from_string("nope");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("'nope'"), std::string::npos) << message;
    // Every valid spelling must be listed, so the error is self-correcting.
    for (const auto type : kAllAttackTypes) {
      EXPECT_NE(message.find(to_string(type)), std::string::npos)
          << "missing '" << to_string(type) << "' in: " << message;
    }
  }
}

TEST(AttackType, ModelVsDataClassification) {
  EXPECT_TRUE(is_model_attack(AttackType::SameValue));
  EXPECT_TRUE(is_model_attack(AttackType::SignFlip));
  EXPECT_TRUE(is_model_attack(AttackType::AdditiveNoise));
  EXPECT_TRUE(is_model_attack(AttackType::Covert));
  EXPECT_TRUE(is_model_attack(AttackType::KrumEvade));
  EXPECT_FALSE(is_model_attack(AttackType::LabelFlip));
  EXPECT_FALSE(is_model_attack(AttackType::None));
}

TEST(SameValueAttack, SetsEveryWeightToConstant) {
  std::vector<float> update{1.0f, -2.0f, 3.0f};
  SameValueAttack attack{1.0f};  // paper: c = 1
  attack.apply(update, {}, 0);
  for (const float v : update) EXPECT_FLOAT_EQ(v, 1.0f);

  SameValueAttack custom{-0.5f};
  custom.apply(update, {}, 0);
  for (const float v : update) EXPECT_FLOAT_EQ(v, -0.5f);
}

TEST(SignFlipAttack, NegatesAndPreservesMagnitude) {
  std::vector<float> update{1.0f, -2.0f, 0.0f, 3.5f};
  const double norm_before = util::l2_norm(update);
  SignFlipAttack attack;
  attack.apply(update, {}, 0);
  EXPECT_FLOAT_EQ(update[0], -1.0f);
  EXPECT_FLOAT_EQ(update[1], 2.0f);
  EXPECT_FLOAT_EQ(update[2], 0.0f);
  EXPECT_FLOAT_EQ(update[3], -3.5f);
  // The property that defeats norm-threshold defenses (paper §IV-B).
  EXPECT_DOUBLE_EQ(util::l2_norm(update), norm_before);
}

TEST(SignFlipAttack, IsInvolution) {
  std::vector<float> update{0.3f, -0.7f};
  const std::vector<float> original = update;
  SignFlipAttack attack;
  attack.apply(update, {}, 0);
  attack.apply(update, {}, 0);
  EXPECT_EQ(update, original);
}

TEST(AdditiveNoiseAttack, ColludersProduceIdenticalNoise) {
  // TM-5: malicious clients agree on the same Gaussian noise.
  const std::vector<float> base(64, 0.5f);
  std::vector<float> a = base, b = base;
  AdditiveNoiseAttack attacker_a{1.0, /*collusion_seed=*/77};
  AdditiveNoiseAttack attacker_b{1.0, /*collusion_seed=*/77};
  attacker_a.apply(a, {}, 3);
  attacker_b.apply(b, {}, 3);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, base);
}

TEST(AdditiveNoiseAttack, NoiseVariesAcrossRounds) {
  const std::vector<float> base(64, 0.0f);
  std::vector<float> round3 = base, round4 = base;
  AdditiveNoiseAttack attack{1.0, 77};
  attack.apply(round3, {}, 3);
  attack.apply(round4, {}, 4);
  EXPECT_NE(round3, round4);
}

TEST(AdditiveNoiseAttack, NoiseScaleMatchesStddev) {
  std::vector<float> update(20000, 0.0f);
  AdditiveNoiseAttack attack{0.5, 123};
  attack.apply(update, {}, 0);
  double sum2 = 0.0;
  for (const float v : update) sum2 += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(sum2 / static_cast<double>(update.size())), 0.5, 0.02);
}

TEST(MakeModelAttack, FactoryMapping) {
  const ModelAttackOptions options;
  EXPECT_NE(make_model_attack(AttackType::SameValue, options), nullptr);
  EXPECT_NE(make_model_attack(AttackType::SignFlip, options), nullptr);
  EXPECT_NE(make_model_attack(AttackType::AdditiveNoise, options), nullptr);
  EXPECT_NE(make_model_attack(AttackType::Scaling, options), nullptr);
  EXPECT_NE(make_model_attack(AttackType::RandomUpdate, options), nullptr);
  EXPECT_NE(make_model_attack(AttackType::Covert, options), nullptr);
  EXPECT_NE(make_model_attack(AttackType::KrumEvade, options), nullptr);
  EXPECT_EQ(make_model_attack(AttackType::None, options), nullptr);
  EXPECT_EQ(make_model_attack(AttackType::LabelFlip, options), nullptr);
}

TEST(ScalingAttack, BoostsDeltaFromGlobal) {
  const std::vector<float> global{1.0f, 2.0f};
  std::vector<float> update{1.5f, 1.0f};  // deltas +0.5, -1.0
  ScalingAttack attack{4.0f};
  attack.apply(update, global, 0);
  EXPECT_FLOAT_EQ(update[0], 1.0f + 4.0f * 0.5f);
  EXPECT_FLOAT_EQ(update[1], 2.0f + 4.0f * -1.0f);
}

TEST(ScalingAttack, SurvivesAveragingByDesign) {
  // With boost = cohort size, averaging one scaled update with (m-1) copies
  // of the global model reproduces the attacker's target exactly.
  const std::size_t m = 5;
  const std::vector<float> global{0.0f};
  const std::vector<float> target{1.0f};
  std::vector<float> scaled = target;
  ScalingAttack attack{static_cast<float>(m)};
  attack.apply(scaled, global, 0);
  const float average = (scaled[0] + static_cast<float>(m - 1) * global[0]) /
                        static_cast<float>(m);
  EXPECT_FLOAT_EQ(average, target[0]);
}

TEST(RandomUpdateAttack, ReplacesWithNoiseOfGivenScale) {
  std::vector<float> update(20000, 123.0f);
  RandomUpdateAttack attack{0.25, 7};
  attack.apply(update, {}, 0);
  double sum = 0.0, sum2 = 0.0;
  for (const float v : update) {
    sum += v;
    sum2 += static_cast<double>(v) * v;
  }
  EXPECT_NEAR(sum / static_cast<double>(update.size()), 0.0, 0.01);
  EXPECT_NEAR(std::sqrt(sum2 / static_cast<double>(update.size())), 0.25, 0.01);
}

TEST(RandomUpdateAttack, NotCoordinatedAcrossSeeds) {
  std::vector<float> a(32, 0.0f), b(32, 0.0f);
  RandomUpdateAttack attacker_a{1.0, 1};
  RandomUpdateAttack attacker_b{1.0, 2};
  attacker_a.apply(a, {}, 0);
  attacker_b.apply(b, {}, 0);
  EXPECT_NE(a, b);
}

TEST(CovertPoison, MirrorsDeltaThroughGlobal) {
  const std::vector<float> global{1.0f, -2.0f, 0.5f};
  std::vector<float> update{1.4f, -2.6f, 0.5f};  // deltas +0.4, -0.6, 0.0
  CovertPoisonAttack attack{1.0f};
  attack.apply(update, global, 0);
  EXPECT_FLOAT_EQ(update[0], 0.6f);
  EXPECT_FLOAT_EQ(update[1], -1.4f);
  EXPECT_FLOAT_EQ(update[2], 0.5f);
}

TEST(CovertPoison, StealthOnePreservesDeltaNorm) {
  // The evasion property: at stealth 1 the poisoned delta has exactly the
  // honest delta's norm, so norm-threshold defenses see nothing.
  util::Rng rng{8};
  std::vector<float> global(128), update(128);
  for (std::size_t i = 0; i < global.size(); ++i) {
    global[i] = rng.uniform_float(-1.0f, 1.0f);
    update[i] = global[i] + rng.uniform_float(-0.2f, 0.2f);
  }
  std::vector<float> delta_before(128);
  for (std::size_t i = 0; i < global.size(); ++i) delta_before[i] = update[i] - global[i];
  CovertPoisonAttack attack{1.0f};
  attack.apply(update, global, 3);
  std::vector<float> delta_after(128);
  for (std::size_t i = 0; i < global.size(); ++i) delta_after[i] = update[i] - global[i];
  EXPECT_NEAR(util::l2_norm(delta_after), util::l2_norm(delta_before), 1e-4);
  // ...and points exactly the other way.
  for (std::size_t i = 0; i < global.size(); ++i) {
    EXPECT_NEAR(delta_after[i], -delta_before[i], 1e-5);
  }
}

TEST(CovertPoison, StealthScalesTheMirror) {
  const std::vector<float> global{0.0f};
  std::vector<float> update{1.0f};
  CovertPoisonAttack attack{0.5f};
  attack.apply(update, global, 0);
  EXPECT_FLOAT_EQ(update[0], -0.5f);
}

TEST(KrumEvade, ColludersLandInTightClusterOnSharedRay) {
  // Two colluders with very different honest updates end up on the same unit
  // direction from the global model, separated only by epsilon times their
  // delta-norm difference — far tighter than any benign pair.
  util::Rng rng{21};
  std::vector<float> global(256);
  for (auto& v : global) v = rng.uniform_float(-1.0f, 1.0f);
  std::vector<float> a(256), b(256);
  for (std::size_t i = 0; i < global.size(); ++i) {
    a[i] = global[i] + rng.uniform_float(-0.3f, 0.3f);
    b[i] = global[i] + rng.uniform_float(-0.3f, 0.3f);
  }
  const double honest_gap = util::l2_distance(a, b);
  const double epsilon = 0.05;
  KrumEvadeAttack attacker_a{epsilon, /*collusion_seed=*/7};
  KrumEvadeAttack attacker_b{epsilon, /*collusion_seed=*/7};
  attacker_a.apply(a, global, 2);
  attacker_b.apply(b, global, 2);
  const double collusion_gap = util::l2_distance(a, b);
  EXPECT_LT(collusion_gap, 0.05 * honest_gap);
  // The cluster sits within epsilon-scaled reach of the global model.
  double delta_norm = 0.0;
  for (std::size_t i = 0; i < global.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(global[i]);
    delta_norm += d * d;
  }
  EXPECT_LT(std::sqrt(delta_norm), 10.0 * epsilon);
}

TEST(KrumEvade, DirectionVariesAcrossRoundsAndSeeds) {
  const std::vector<float> global(64, 0.0f);
  std::vector<float> round2(64, 1.0f), round3(64, 1.0f), other_seed(64, 1.0f);
  KrumEvadeAttack attack{0.1, 9};
  attack.apply(round2, global, 2);
  attack.apply(round3, global, 3);
  KrumEvadeAttack rival{0.1, 10};
  rival.apply(other_seed, global, 2);
  EXPECT_NE(round2, round3);
  EXPECT_NE(round2, other_seed);
}

TEST(MaliciousMask, ExactCount) {
  for (const double fraction : {0.0, 0.3, 0.5, 1.0}) {
    const auto mask = make_malicious_mask(100, fraction, 5);
    const auto count = static_cast<std::size_t>(
        std::count(mask.begin(), mask.end(), true));
    EXPECT_EQ(count, static_cast<std::size_t>(fraction * 100));
  }
}

TEST(MaliciousMask, DeterministicAndSeedDependent) {
  EXPECT_EQ(make_malicious_mask(50, 0.4, 9), make_malicious_mask(50, 0.4, 9));
  EXPECT_NE(make_malicious_mask(50, 0.4, 9), make_malicious_mask(50, 0.4, 10));
}

TEST(MaliciousMask, FractionValidated) {
  EXPECT_THROW((void)make_malicious_mask(10, -0.1, 1), std::invalid_argument);
  EXPECT_THROW((void)make_malicious_mask(10, 1.1, 1), std::invalid_argument);
}

TEST(LabelFlip, DefaultPairsMatchPaper) {
  const auto pairs = default_flip_pairs();
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (std::pair<int, int>{5, 7}));
  EXPECT_EQ(pairs[1], (std::pair<int, int>{4, 2}));
}

TEST(LabelFlip, SwapsBothDirections) {
  const std::vector<std::size_t> counts{0, 0, 3, 0, 2, 4, 0, 1, 0, 0};
  data::Dataset dataset = data::generate_synthetic_mnist_per_class(counts, 6);
  const std::size_t changed = apply_label_flip(dataset, default_flip_pairs());
  EXPECT_EQ(changed, 3u + 2u + 4u + 1u);
  const auto histogram = dataset.class_histogram();
  EXPECT_EQ(histogram[5], 1u);  // old 7s
  EXPECT_EQ(histogram[7], 4u);  // old 5s
  EXPECT_EQ(histogram[4], 3u);  // old 2s
  EXPECT_EQ(histogram[2], 2u);  // old 4s
}

TEST(LabelFlip, UntouchedClassesPreserved) {
  const std::vector<std::size_t> counts{2, 3, 0, 1, 0, 0, 4, 0, 5, 6};
  data::Dataset dataset = data::generate_synthetic_mnist_per_class(counts, 7);
  const auto before = dataset.class_histogram();
  apply_label_flip(dataset, default_flip_pairs());
  const auto after = dataset.class_histogram();
  for (const std::size_t c : {0u, 1u, 3u, 6u, 8u, 9u}) EXPECT_EQ(after[c], before[c]);
}

TEST(LabelFlip, IsInvolution) {
  data::Dataset dataset = data::generate_synthetic_mnist(100, 8);
  const std::vector<int> original(dataset.labels().begin(), dataset.labels().end());
  apply_label_flip(dataset, default_flip_pairs());
  apply_label_flip(dataset, default_flip_pairs());
  const std::vector<int> restored(dataset.labels().begin(), dataset.labels().end());
  EXPECT_EQ(restored, original);
}

}  // namespace
}  // namespace fedguard::attacks
