// Round-pipeline benchmarks for the zero-copy UpdateMatrix refactor.
//
// BM_RoundPipeline* measures the server-side cost of one federated round
// minus client training: producers write ψ (and θ for FedGuard) into the
// round arena, the strategy aggregates through the UpdateView, and the
// result is η-blended into the global buffer. The *Legacy variants emulate
// the pre-arena ownership model — every client materializes an owning
// ClientUpdate and the strategy re-copies the point set before aggregating —
// quantifying exactly the copy traffic the refactor removed.
//
// BM_BulyanElimination isolates Bulyan's stage-1 elimination loop, whose old
// implementation rebuilt the remaining [n, dim] point matrix once per
// iteration (quadratic copying); the view path rebuilds only the O(n) row
// index list. Numbers land in BENCH_update_pipeline.json via
// scripts/run_all_benches.sh (see docs/PERFORMANCE.md).

#include <benchmark/benchmark.h>

#include <cstring>
#include <numeric>

#include "defenses/bulyan.hpp"
#include "defenses/fedavg.hpp"
#include "defenses/fedguard.hpp"
#include "defenses/krum.hpp"
#include "defenses/update_matrix.hpp"
#include "models/classifier.hpp"
#include "models/cvae.hpp"
#include "util/rng.hpp"

namespace {

using namespace fedguard;

constexpr std::uint64_t kSeed = 42;

/// Pre-trained-looking flat ψ vectors, one per client (stand-ins for the
/// output of local training, so the benchmark isolates the server-side path).
std::vector<std::vector<float>> make_psi_sources(std::size_t count, std::size_t dim) {
  util::Rng rng{kSeed};
  std::vector<std::vector<float>> sources(count);
  for (auto& psi : sources) {
    psi.resize(dim);
    for (auto& v : psi) v = rng.uniform_float(-1.0f, 1.0f);
  }
  return sources;
}

/// One zero-copy round: fill arena rows in place (the producer write),
/// aggregate through the identity view, blend into the global buffer.
void run_round_arena(benchmark::State& state, defenses::AggregationStrategy& strategy,
                     std::size_t dim, std::span<const float> theta_template) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto sources = make_psi_sources(count, dim);
  const std::size_t theta_dim = strategy.wants_decoders() ? theta_template.size() : 0;

  defenses::UpdateMatrix arena;
  defenses::AggregationResult result;
  std::vector<float> global(dim, 0.0f);
  defenses::AggregationContext context;
  for (auto _ : state) {
    arena.reset(count, dim, theta_dim);
    for (std::size_t k = 0; k < count; ++k) {
      const defenses::UpdateRow row = arena.row(k);
      std::memcpy(row.psi.data(), sources[k].data(), dim * sizeof(float));
      row.meta->client_id = static_cast<int>(k);
      row.meta->num_samples = 100;
      row.meta->theta_count = theta_dim;
      if (theta_dim > 0) {
        std::memcpy(row.theta.data(), theta_template.data(), theta_dim * sizeof(float));
      }
    }
    context.global_parameters = global;
    strategy.aggregate_into(context, defenses::UpdateView{arena}, result);
    for (std::size_t i = 0; i < dim; ++i) {
      global[i] += 0.5f * (result.parameters[i] - global[i]);
    }
    benchmark::DoNotOptimize(global.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * dim));
}

/// The pre-refactor ownership model: each client's upload materializes an
/// owning ClientUpdate, and the strategy's compat entry point re-copies every
/// ψ into its internal point set before aggregating.
void run_round_legacy(benchmark::State& state, defenses::AggregationStrategy& strategy,
                      std::size_t dim, std::span<const float> theta_template) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto sources = make_psi_sources(count, dim);
  const bool want_theta = strategy.wants_decoders();

  std::vector<float> global(dim, 0.0f);
  defenses::AggregationContext context;
  for (auto _ : state) {
    std::vector<defenses::ClientUpdate> updates(count);
    for (std::size_t k = 0; k < count; ++k) {
      updates[k].client_id = static_cast<int>(k);
      updates[k].num_samples = 100;
      updates[k].psi.assign(sources[k].begin(), sources[k].end());
      if (want_theta) {
        updates[k].theta.assign(theta_template.begin(), theta_template.end());
      }
    }
    context.global_parameters = global;
    const defenses::AggregationResult result = strategy.aggregate(context, updates);
    for (std::size_t i = 0; i < dim; ++i) {
      global[i] += 0.5f * (result.parameters[i] - global[i]);
    }
    benchmark::DoNotOptimize(global.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * dim));
}

// ψ dimension ≈ 100k: the Mlp classifier on MNIST geometry, so the FedGuard
// variant can actually load the vectors into its scratch classifier.
const models::ImageGeometry kGeometry{1, 28, 28, 10};

std::size_t mlp_dim() {
  static const std::size_t dim = [] {
    models::Classifier probe{models::ClassifierArch::Mlp, kGeometry, kSeed};
    return probe.parameter_count();
  }();
  return dim;
}

models::CvaeSpec bench_cvae_spec() {
  models::CvaeSpec spec;
  spec.hidden = 64;
  spec.latent = 8;
  return spec;
}

const std::vector<float>& theta_template() {
  static const std::vector<float> theta = [] {
    models::CvaeDecoder decoder{bench_cvae_spec(), kSeed};
    return decoder.parameters_flat();
  }();
  return theta;
}

defenses::FedGuardConfig fedguard_config() {
  defenses::FedGuardConfig config;
  config.cvae_spec = bench_cvae_spec();
  config.total_samples = 50;
  return config;
}

void BM_RoundPipelineFedAvg(benchmark::State& state) {
  defenses::FedAvgAggregator strategy;
  run_round_arena(state, strategy, mlp_dim(), {});
}
void BM_RoundPipelineFedAvgLegacy(benchmark::State& state) {
  defenses::FedAvgAggregator strategy;
  run_round_legacy(state, strategy, mlp_dim(), {});
}
void BM_RoundPipelineKrum(benchmark::State& state) {
  defenses::KrumAggregator strategy{0.25, 1};
  run_round_arena(state, strategy, mlp_dim(), {});
}
void BM_RoundPipelineKrumLegacy(benchmark::State& state) {
  defenses::KrumAggregator strategy{0.25, 1};
  run_round_legacy(state, strategy, mlp_dim(), {});
}
void BM_RoundPipelineFedGuard(benchmark::State& state) {
  defenses::FedGuardAggregator strategy{fedguard_config(), models::ClassifierArch::Mlp,
                                        kGeometry, kSeed};
  run_round_arena(state, strategy, mlp_dim(), theta_template());
}
void BM_RoundPipelineFedGuardLegacy(benchmark::State& state) {
  defenses::FedGuardAggregator strategy{fedguard_config(), models::ClassifierArch::Mlp,
                                        kGeometry, kSeed};
  run_round_legacy(state, strategy, mlp_dim(), theta_template());
}

void pipeline_args(benchmark::internal::Benchmark* bench) {
  bench->Arg(20)->Arg(50)->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_RoundPipelineFedAvg)->Apply(pipeline_args);
BENCHMARK(BM_RoundPipelineFedAvgLegacy)->Apply(pipeline_args);
BENCHMARK(BM_RoundPipelineKrum)->Apply(pipeline_args);
BENCHMARK(BM_RoundPipelineKrumLegacy)->Apply(pipeline_args);
BENCHMARK(BM_RoundPipelineFedGuard)->Apply(pipeline_args);
BENCHMARK(BM_RoundPipelineFedGuardLegacy)->Apply(pipeline_args);

// ---- Bulyan stage-1 elimination: selection views vs per-iteration rebuild ---

/// The post-refactor loop, as BulyanAggregator runs it: the pairwise distance
/// matrix is computed once over the arena, then every elimination iteration
/// re-scores the remaining candidates by lookup through the index list.
void BM_BulyanElimination(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  const auto sources = make_psi_sources(count, dim);
  defenses::UpdateMatrix arena;
  arena.reset(count, dim);
  for (std::size_t k = 0; k < count; ++k) {
    std::memcpy(arena.psi(k).data(), sources[k].data(), dim * sizeof(float));
  }
  const defenses::UpdateView updates{arena};
  const auto f = static_cast<std::size_t>(0.2 * static_cast<double>(count));
  const std::size_t selection_size = (count > 2 * f) ? count - 2 * f : 1;

  std::vector<double> distance2;
  std::vector<std::size_t> remaining, selected;
  for (auto _ : state) {
    defenses::pairwise_squared_distances(updates.points(), distance2);
    remaining.resize(count);
    std::iota(remaining.begin(), remaining.end(), std::size_t{0});
    selected.clear();
    while (selected.size() < selection_size && remaining.size() > 1) {
      const std::vector<double> scores =
          defenses::krum_scores_from_distances(distance2, count, remaining, f);
      const std::size_t best = static_cast<std::size_t>(
          std::min_element(scores.begin(), scores.end()) - scores.begin());
      selected.push_back(remaining[best]);
      remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best));
    }
    benchmark::DoNotOptimize(selected.data());
  }
}

/// The pre-refactor loop (src/defenses/bulyan.cpp before the arena): every
/// iteration re-concatenates the remaining rows into a fresh flat buffer.
void BM_BulyanEliminationLegacy(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  const auto sources = make_psi_sources(count, dim);
  const auto f = static_cast<std::size_t>(0.2 * static_cast<double>(count));
  const std::size_t selection_size = (count > 2 * f) ? count - 2 * f : 1;

  std::vector<std::size_t> remaining, selected;
  std::vector<float> points;
  for (auto _ : state) {
    remaining.resize(count);
    std::iota(remaining.begin(), remaining.end(), std::size_t{0});
    selected.clear();
    while (selected.size() < selection_size && remaining.size() > 1) {
      points.clear();
      for (const std::size_t idx : remaining) {
        points.insert(points.end(), sources[idx].begin(), sources[idx].end());
      }
      const std::vector<double> scores =
          defenses::krum_scores(points, remaining.size(), dim, f);
      const std::size_t best = static_cast<std::size_t>(
          std::min_element(scores.begin(), scores.end()) - scores.begin());
      selected.push_back(remaining[best]);
      remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best));
    }
    benchmark::DoNotOptimize(selected.data());
  }
}

void bulyan_args(benchmark::internal::Benchmark* bench) {
  bench->Args({20, 100000})->Args({50, 100000})->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_BulyanElimination)->Apply(bulyan_args);
BENCHMARK(BM_BulyanEliminationLegacy)->Apply(bulyan_args);

}  // namespace
