// Reproduces Table V of the paper: per-round server traffic and training
// time for every strategy.
//
// Two tables are produced:
//  (1) Measured at the benchmark scale: traffic is byte-exact for the
//      configured models; timing is wall-clock on this machine, with
//      overhead percentages relative to FedAvg — the paper's comparison.
//  (2) Projected at the paper's exact scale (m=50, Table II classifier,
//      Table III CVAE): traffic is computed analytically from serialized
//      parameter sizes. The paper reports FedAvg 348.3 MB up/down and
//      FedGuard +20% downloads / +10% total; the projection reproduces the
//      same ratios from first principles.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "models/cvae.hpp"
#include "nn/parameter_vector.hpp"

int main(int argc, char** argv) {
  using namespace fedguard;
  const core::CliOptions options = core::CliOptions::parse(argc, argv);
  core::ExperimentConfig base = bench::config_from_cli(options);
  if (!options.has("rounds")) base.rounds = std::min<std::size_t>(base.rounds, 6);

  std::printf("=== Table V: system overhead (measured at scale=%s, N=%zu, m=%zu, R=%zu) ===\n\n",
              options.get("scale", "small").c_str(), base.num_clients,
              base.clients_per_round, base.rounds);

  // Measured table: one clean run per strategy (the paper measures overhead
  // in the same federated workload for all strategies).
  const bench::Scenario clean{"No Attack", attacks::AttackType::None, 0.0};
  std::vector<core::Table5Row> measured;
  for (const core::StrategyKind strategy : bench::paper_strategies()) {
    const fl::RunHistory history = bench::run_cell(base, strategy, clean);
    core::Table5Row row;
    row.strategy = core::to_string(strategy);
    row.upload_bytes = history.mean_upload_bytes();
    row.download_bytes = history.mean_download_bytes();
    // Median = steady-state round cost: FedGuard clients pay their one-time
    // CVAE training in the first rounds only (static partitions, paper
    // footnote 5).
    row.seconds_per_round = history.median_round_seconds();
    measured.push_back(row);
  }
  core::print_table5(std::cout, measured);

  // Projected table at the paper's parameter counts.
  std::printf("\n=== Table V projection at paper scale (m=50, Table II/III models) ===\n\n");
  models::Classifier paper_classifier{models::ClassifierArch::PaperCnn,
                                      models::ImageGeometry{}, 1};
  models::CvaeDecoder paper_decoder{models::CvaeSpec{}, 1};
  const double psi_mb =
      static_cast<double>(nn::parameter_wire_bytes(paper_classifier.parameter_count()));
  const double theta_mb =
      static_cast<double>(nn::parameter_wire_bytes(paper_decoder.parameter_count()));
  const double m = 50.0;

  std::vector<core::Table5Row> projected;
  for (const core::StrategyKind strategy : bench::paper_strategies()) {
    core::Table5Row row;
    row.strategy = core::to_string(strategy);
    row.upload_bytes = m * psi_mb;
    row.download_bytes =
        m * psi_mb + (strategy == core::StrategyKind::FedGuard ? m * theta_mb : 0.0);
    row.seconds_per_round = 0.0;  // timing not projectable; see measured table
    projected.push_back(row);
  }
  core::print_table5(std::cout, projected);
  std::printf("\n(paper: FedAvg 348.3 MB per direction; FedGuard downloads +20%%,\n"
              " total +10%%. Classifier wire size here: %.2f MB; decoder: %.2f MB.)\n",
              psi_mb / 1e6, theta_mb / 1e6);

  // Architecture inventory (paper Tables II and III).
  std::printf("\nModel inventory:\n");
  std::printf("  Table II classifier: %zu parameters (%zu weight-only, paper reports 1,662,752)\n",
              paper_classifier.parameter_count(),
              paper_classifier.network().weight_parameter_count());
  models::Cvae paper_cvae{models::CvaeSpec{}, 1};
  std::printf("  Table III CVAE: %zu parameters (paper reports 664,834); decoder %zu\n",
              paper_cvae.parameter_count(), paper_decoder.parameter_count());
  return 0;
}
