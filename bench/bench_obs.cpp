// Observability overhead gate: the same m=50, d=100k server round measured
// three ways — with no TraceSession installed (spans are one relaxed atomic
// load each; the registry instruments still run, as they do in every build),
// fully traced into a real trace file, and untraced with a live HTTP
// /metrics endpoint plus one continuously polling scraper attached.
// BENCH_obs.json captures all three; scripts/check_obs_overhead.py fails the
// tier-1 `--obs` gate when the traced or scraped round costs more than 3%
// extra over the untraced baseline (see docs/OBSERVABILITY.md).

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>

#include "defenses/fedavg.hpp"
#include "defenses/update_matrix.hpp"
#include "net/socket.hpp"
#include "net/telemetry_http.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace {

using namespace fedguard;

constexpr std::size_t kClients = 50;   // paper: m = 50 sampled per round
constexpr std::size_t kDim = 100000;   // ψ dimension ≈ the Mlp classifier

std::vector<std::vector<float>> make_psi_sources() {
  util::Rng rng{42};
  std::vector<std::vector<float>> sources(kClients);
  for (auto& psi : sources) {
    psi.resize(kDim);
    for (auto& v : psi) v = rng.uniform_float(-1.0f, 1.0f);
  }
  return sources;
}

/// One server-side round body with the production instrumentation pattern:
/// round-phase spans, traffic counters, and a round-latency observation. The
/// only difference between the two benchmark variants is whether a
/// TraceSession is installed while it runs.
void run_obs_round(benchmark::State& state, bool traced) {
  const auto sources = make_psi_sources();
  defenses::FedAvgAggregator strategy;
  defenses::UpdateMatrix arena;
  defenses::AggregationResult result;
  std::vector<float> global(kDim, 0.0f);
  defenses::AggregationContext context;
  obs::Registry& registry = obs::Registry::global();
  obs::Counter upload = registry.counter("bench_obs_upload_bytes_total");
  obs::Histogram round_seconds = registry.histogram("bench_obs_round_seconds");

  std::unique_ptr<obs::TraceSession> session;
  const std::string trace_path = "bench_obs_trace.json";
  if (traced) {
    // Big enough that no span is dropped at realistic iteration counts (the
    // drop path is cheaper than the append path and would flatter the gate).
    session = std::make_unique<obs::TraceSession>(trace_path, 1u << 20);
  }

  for (auto _ : state) {
    const std::uint64_t start_ns = obs::now_ns();
    FEDGUARD_TRACE_SPAN("round", "round:bench");
    {
      FEDGUARD_TRACE_SPAN("round", "collect");
      arena.reset(kClients, kDim);
      for (std::size_t k = 0; k < kClients; ++k) {
        const defenses::UpdateRow row = arena.row(k);
        std::memcpy(row.psi.data(), sources[k].data(), kDim * sizeof(float));
        row.meta->client_id = static_cast<int>(k);
        row.meta->num_samples = 100;
      }
      upload.add(kClients * kDim * sizeof(float));
    }
    {
      FEDGUARD_TRACE_SPAN("round", "aggregate");
      context.global_parameters = global;
      strategy.aggregate_into(context, defenses::UpdateView{arena}, result);
    }
    for (std::size_t i = 0; i < kDim; ++i) {
      global[i] += 0.5f * (result.parameters[i] - global[i]);
    }
    round_seconds.observe(static_cast<double>(obs::now_ns() - start_ns) * 1e-9);
    benchmark::DoNotOptimize(global.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kClients * kDim));
  if (session != nullptr) {
    session.reset();  // flush + uninstall before unlinking the file
    std::remove(trace_path.c_str());
  }
}

void BM_ObsRoundUntraced(benchmark::State& state) { run_obs_round(state, false); }
void BM_ObsRoundTraced(benchmark::State& state) { run_obs_round(state, true); }

/// One full GET /metrics exchange against the live exposition server.
void scrape_once(std::uint16_t port) {
  try {
    net::TcpStream stream = net::TcpStream::connect("127.0.0.1", port);
    stream.set_receive_timeout(std::chrono::milliseconds{1000});
    constexpr char kRequest[] = "GET /metrics HTTP/1.0\r\n\r\n";
    stream.send_all(std::as_bytes(std::span{kRequest, sizeof(kRequest) - 1}));
    std::byte chunk[4096];
    std::size_t transferred = 0;
    while (stream.read_some(chunk, transferred) == net::IoStatus::Ready) {
    }
  } catch (const std::exception&) {
    // A scrape lost to shutdown races is fine; the gate measures round cost.
  }
}

/// The live-exposition overhead leg: the same untraced round body while a
/// TelemetryHttpServer answers a continuously polling scraper. This is the
/// deployed steady state (Prometheus attached), so the same 3% budget as the
/// traced leg applies (scripts/check_obs_overhead.py).
void BM_ObsRoundScraped(benchmark::State& state) {
  net::TelemetryHttpServer server{
      0, net::make_registry_responder("bench_obs_upload_bytes_total", "")};
  std::atomic<bool> stop{false};
  std::thread scraper{[&server, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      scrape_once(server.port());
      std::this_thread::sleep_for(std::chrono::milliseconds{10});
    }
  }};
  run_obs_round(state, false);
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
}

// Medians over repetitions keep the 3% gate stable on a loaded 1-core box.
BENCHMARK(BM_ObsRoundUntraced)
    ->Unit(benchmark::kMillisecond)
    ->Repetitions(5)
    ->ReportAggregatesOnly(true);
BENCHMARK(BM_ObsRoundTraced)
    ->Unit(benchmark::kMillisecond)
    ->Repetitions(5)
    ->ReportAggregatesOnly(true);
BENCHMARK(BM_ObsRoundScraped)
    ->Unit(benchmark::kMillisecond)
    ->Repetitions(5)
    ->ReportAggregatesOnly(true);

}  // namespace
