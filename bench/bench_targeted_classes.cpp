// Per-class damage analysis of the targeted label-flipping attack (paper
// §IV-B: "a targeted attack which aims at making the model misclassify a
// subset of classes. The overall performance of the resulting model is less
// affected than in untargeted attack scenarios").
//
// Runs the 30% label-flip scenario with per-class accuracy tracking and
// reports trailing recall on the flipped classes (5, 7, 4, 2) against the
// untouched classes for each strategy. Expected shape: undefended strategies
// keep a high overall accuracy but bleed recall on exactly the flipped
// classes; FedGuard preserves both.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fedguard;
  const core::CliOptions options = core::CliOptions::parse(argc, argv);
  core::ExperimentConfig base = bench::config_from_cli(options);
  base.track_per_class_accuracy = true;
  const std::size_t window = base.rounds * 2 / 3;

  const bench::Scenario scenario{"Label Flipping 30%", attacks::AttackType::LabelFlip, 0.3};
  const std::vector<std::size_t> flipped_classes{5, 7, 4, 2};
  const std::vector<std::size_t> clean_classes{0, 1, 3, 6, 8, 9};

  std::printf("=== Targeted-attack per-class analysis (%s, N=%zu, m=%zu, R=%zu) ===\n\n",
              scenario.name.c_str(), base.num_clients, base.clients_per_round,
              base.rounds);
  std::printf("%-12s | %-10s | %-18s | %-18s | %-8s\n", "strategy", "overall",
              "flipped classes", "untouched classes", "gap");
  std::printf("%s\n", std::string(78, '-').c_str());

  for (const auto strategy : {core::StrategyKind::FedAvg, core::StrategyKind::GeoMed,
                              core::StrategyKind::FedGuard}) {
    const fl::RunHistory history = bench::run_cell(base, strategy, scenario);
    const double overall = history.trailing_accuracy(window).mean;
    auto mean_recall = [&](const std::vector<std::size_t>& classes) {
      double total = 0.0;
      for (const std::size_t c : classes) {
        total += history.trailing_class_accuracy(c, window);
      }
      return total / static_cast<double>(classes.size());
    };
    const double flipped = mean_recall(flipped_classes);
    const double clean = mean_recall(clean_classes);
    std::printf("%-12s | %8.2f%% | %16.2f%% | %16.2f%% | %6.1f pts\n",
                core::to_string(strategy), overall * 100.0, flipped * 100.0,
                clean * 100.0, (clean - flipped) * 100.0);
  }
  std::printf("\n(positive gap = recall lost specifically on the attacked class pairs\n"
              " 5<->7 and 4<->2; the attack is invisible in the overall column)\n");
  return 0;
}
