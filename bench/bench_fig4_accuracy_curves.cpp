// Reproduces Fig. 4 of the paper: test-accuracy-vs-round curves for the five
// strategies (FedAvg, GeoMed, Krum, Spectral, FedGuard) under each attack
// scenario (additive noise 50%, label flip 30%, sign flip 50%, same value
// 50%) plus the no-attack reference.
//
// Expected shape (paper §V-A): FedGuard tracks the no-attack curve in every
// scenario; Spectral survives additive-noise and same-value but not
// sign-flip; FedAvg/GeoMed/Krum collapse under the 50%-malicious untargeted
// attacks.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "util/svg_plot.hpp"

int main(int argc, char** argv) {
  using namespace fedguard;
  const core::CliOptions options = core::CliOptions::parse(argc, argv);
  const core::ExperimentConfig base = bench::config_from_cli(options);
  const std::string csv_prefix = options.get("csv", "");
  const std::string svg_prefix = options.get("svg", "");

  std::printf("=== Fig. 4: accuracy curves (scale=%s, N=%zu, m=%zu, R=%zu) ===\n",
              options.get("scale", "small").c_str(), base.num_clients,
              base.clients_per_round, base.rounds);

  for (const bench::Scenario& scenario : bench::paper_scenarios()) {
    std::printf("\n--- scenario: %s ---\n", scenario.name.c_str());
    std::vector<fl::RunHistory> runs;
    for (const core::StrategyKind strategy : bench::paper_strategies()) {
      fl::RunHistory history = bench::run_cell(base, strategy, scenario);
      if (!csv_prefix.empty()) {
        std::string path = csv_prefix + "_" + history.strategy + "_";
        for (const char c : scenario.name) path += (c == ' ' || c == '%') ? '_' : c;
        history.write_csv(path + ".csv");
      }
      runs.push_back(std::move(history));
    }
    core::print_accuracy_series(std::cout, runs);

    if (!svg_prefix.empty()) {
      util::LinePlot plot{"Fig. 4 — " + scenario.name, "federated round",
                          "test accuracy"};
      plot.set_y_range(0.0, 1.0);
      for (const auto& run : runs) plot.add_series(run.strategy, run.accuracy_series());
      std::string path = svg_prefix + "_";
      for (const char c : scenario.name) path += (c == ' ' || c == '%') ? '_' : c;
      plot.save(path + ".svg");
      std::printf("(figure written to %s.svg)\n", path.c_str());
    }
  }
  return 0;
}
