// Connection-scaling bench for the sharded reactor tier: how many concurrent
// framed clients a federation sustains, single-tier (RemoteServer's
// poll-everything loop) vs two-tier (4 epoll shards + root merger).
//
// The clients are simulated: one client-side Reactor holds every outbound
// socket and answers each RoundRequest with a canned RoundReply (encoded once
// per round, shared across the fleet) — no local training, so the measured
// cost is connection handling and frame fan-in/fan-out, which is what the
// reactor refactor changes. Results go to BENCH_reactor.json via
// scripts/run_all_benches.sh.
//
// Flags (core::CliOptions --key value):
//   --clients N   fleet size (default 2048)
//   --shards S    shard count of the two-tier scenario (default 4)
//   --rounds R    rounds per scenario (default 2)
//   --seed S      (default 42)
//   --out PATH    JSON artifact (default BENCH_reactor.json)
//   --quiet       suppress per-round logging

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/cli.hpp"
#include "data/synthetic_mnist.hpp"
#include "defenses/fedavg.hpp"
#include "net/reactor.hpp"
#include "net/remote.hpp"
#include "net/shard.hpp"
#include "util/logging.hpp"

namespace {

using namespace fedguard;

/// One reactor holding the whole simulated fleet. Canned protocol: Hello on
/// connect, echo every RoundRequest with a shared pre-encoded RoundReply.
class CannedFleet {
 public:
  CannedFleet() {
    net::Reactor::Callbacks callbacks;
    callbacks.on_message = [this](net::Reactor::ConnectionId id, net::Message&& message) {
      handle(id, std::move(message));
    };
    reactor_ = std::make_unique<net::Reactor>(std::move(callbacks));
  }

  void add_client(std::uint16_t port, int client_id) {
    const auto id = reactor_->add_connection(net::TcpStream::connect("127.0.0.1", port));
    reactor_->send(id, net::Message{net::MessageType::Hello, net::encode_hello(client_id)});
    if (++added_ % 64 == 0) (void)reactor_->poll_once(std::chrono::milliseconds{0});
  }

  /// Drain queued hellos so the servers can finish registration.
  void flush() {
    while (reactor_->pending_write_bytes() != 0) {
      (void)reactor_->poll_once(std::chrono::milliseconds{5});
    }
  }

  /// Serve canned replies until `done` flips (the server run finished).
  void serve(const std::atomic<bool>& done) {
    while (!done.load(std::memory_order_acquire)) {
      (void)reactor_->poll_once(std::chrono::milliseconds{5});
    }
  }

  [[nodiscard]] std::size_t replies_sent() const noexcept { return replies_sent_; }

 private:
  void handle(net::Reactor::ConnectionId id, net::Message&& message) {
    if (message.type != net::MessageType::RoundRequest) return;
    const net::RoundRequest request = net::decode_round_request(message.payload);
    if (canned_round_ != request.round || canned_.payload.empty()) {
      net::RoundReply reply;
      reply.round = request.round;
      reply.update.client_id = -1;  // servers map replies by connection, not id
      reply.update.num_samples = 1;
      reply.update.psi.assign(request.global_parameters.size(), 0.001f);
      canned_ = net::Message{net::MessageType::RoundReply, net::encode_round_reply(reply)};
      canned_round_ = request.round;
    }
    (void)reactor_->send(id, canned_);
    ++replies_sent_;
  }

  std::unique_ptr<net::Reactor> reactor_;
  net::Message canned_;
  std::size_t canned_round_ = static_cast<std::size_t>(-1);
  std::size_t added_ = 0;
  std::size_t replies_sent_ = 0;
};

struct ScenarioResult {
  std::string topology;
  std::size_t shards = 1;
  std::size_t clients = 0;
  std::size_t rounds = 0;
  double total_seconds = 0.0;
  double mean_round_seconds = 0.0;
  double replies_per_second = 0.0;
  std::size_t stragglers = 0;
  bool completed = false;
};

ScenarioResult summarize(const std::string& topology, std::size_t shards,
                         std::size_t clients, std::size_t rounds,
                         const fl::RunHistory& history, double total_seconds) {
  ScenarioResult result;
  result.topology = topology;
  result.shards = shards;
  result.clients = clients;
  result.rounds = rounds;
  result.total_seconds = total_seconds;
  result.completed = history.rounds.size() == rounds;
  double round_seconds = 0.0;
  std::size_t replies = 0;
  for (const auto& record : history.rounds) {
    round_seconds += record.round_seconds;
    result.stragglers += record.stragglers;
    replies += record.sampled_clients - record.stragglers;
  }
  if (!history.rounds.empty()) {
    result.mean_round_seconds = round_seconds / static_cast<double>(history.rounds.size());
  }
  if (round_seconds > 0.0) {
    result.replies_per_second = static_cast<double>(replies) / round_seconds;
  }
  return result;
}

ScenarioResult run_single_tier(std::size_t clients, std::size_t rounds,
                               std::uint64_t seed, const data::Dataset& test,
                               models::ImageGeometry geometry) {
  defenses::FedAvgAggregator strategy;
  net::RemoteServerConfig config;
  config.expected_clients = clients;
  config.clients_per_round = clients;
  config.rounds = rounds;
  config.seed = seed;
  config.accept_timeout_ms = 120000;
  config.round_timeout_ms = 120000;
  config.eject_after_failures = 0;
  net::RemoteServer server{config, strategy, test, models::ClassifierArch::Mlp, geometry};
  const std::uint16_t port = server.port();

  const auto start = std::chrono::steady_clock::now();
  std::atomic<bool> done{false};
  fl::RunHistory history;
  // The accept phase runs inside run(), so the server thread must be live
  // before the fleet connects (the kernel backlog alone cannot hold it).
  std::thread server_thread{[&] {
    history = server.run();
    done.store(true, std::memory_order_release);
  }};
  CannedFleet fleet;
  for (std::size_t i = 0; i < clients; ++i) {
    fleet.add_client(port, static_cast<int>(i));
  }
  fleet.flush();
  fleet.serve(done);
  server_thread.join();
  const double total =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return summarize("single-tier", 1, clients, rounds, history, total);
}

ScenarioResult run_two_tier(std::size_t clients, std::size_t shards, std::size_t rounds,
                            std::uint64_t seed, const data::Dataset& test,
                            models::ImageGeometry geometry) {
  net::HierarchicalServerConfig config;
  config.shards = shards;
  config.expected_clients = clients;
  config.clients_per_round = clients;
  config.rounds = rounds;
  config.seed = seed;
  config.accept_timeout_ms = 120000;
  config.round_timeout_ms = 120000;
  net::HierarchicalServer server{
      config, [] { return std::make_unique<defenses::FedAvgAggregator>(); }, test,
      models::ClassifierArch::Mlp, geometry};

  const auto start = std::chrono::steady_clock::now();
  CannedFleet fleet;
  for (std::size_t i = 0; i < clients; ++i) {
    fleet.add_client(server.shard_port(server.shard_of(i)), static_cast<int>(i));
  }
  fleet.flush();
  std::atomic<bool> done{false};
  fl::RunHistory history;
  std::thread server_thread{[&] {
    history = server.run();
    done.store(true, std::memory_order_release);
  }};
  fleet.serve(done);
  server_thread.join();
  const double total =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return summarize("two-tier", shards, clients, rounds, history, total);
}

std::string fmt(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.4f", value);
  return buffer;
}

std::string to_json(const std::vector<ScenarioResult>& results) {
  std::string out;
  out += "{\n  \"schema\": \"fedguard-reactor-bench-v1\",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    out += "    {\"topology\": \"" + r.topology + "\",";
    out += " \"shards\": " + std::to_string(r.shards) + ",";
    out += " \"clients\": " + std::to_string(r.clients) + ",";
    out += " \"rounds\": " + std::to_string(r.rounds) + ",";
    out += " \"completed\": " + std::string{r.completed ? "true" : "false"} + ",\n";
    out += "     \"total_seconds\": " + fmt(r.total_seconds) + ",";
    out += " \"mean_round_seconds\": " + fmt(r.mean_round_seconds) + ",";
    out += " \"replies_per_second\": " + fmt(r.replies_per_second) + ",";
    out += " \"stragglers\": " + std::to_string(r.stragglers) + "}";
    out += i + 1 < results.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const core::CliOptions options = core::CliOptions::parse(argc, argv);
  const auto clients = static_cast<std::size_t>(options.get_int("clients", 2048));
  const auto shards = static_cast<std::size_t>(options.get_int("shards", 4));
  const auto rounds = static_cast<std::size_t>(options.get_int("rounds", 2));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 42));
  const std::string out_path = options.get("out", "BENCH_reactor.json");
  if (options.has("quiet")) util::set_log_level(util::LogLevel::Warn);

  // Tiny eval task: the bench measures connection scaling, not learning.
  const models::ImageGeometry geometry{1, 8, 8, 10};
  data::SyntheticMnistOptions data_options;
  data_options.image_size = 8;
  const data::Dataset test = data::generate_synthetic_mnist(64, seed ^ 0x7e57ULL, data_options);

  std::vector<ScenarioResult> results;
  std::printf("reactor scaling bench: %zu simulated clients, %zu rounds\n", clients, rounds);
  results.push_back(run_single_tier(clients, rounds, seed, test, geometry));
  results.push_back(run_two_tier(clients, shards, rounds, seed, test, geometry));

  bool ok = true;
  for (const ScenarioResult& r : results) {
    std::printf("  %-11s shards=%zu clients=%zu total %.2fs mean round %.3fs "
                "replies/s %.0f stragglers %zu%s\n",
                r.topology.c_str(), r.shards, r.clients, r.total_seconds,
                r.mean_round_seconds, r.replies_per_second, r.stragglers,
                r.completed ? "" : "  [INCOMPLETE]");
    ok = ok && r.completed && r.stragglers == 0;
  }

  std::FILE* file = std::fopen(out_path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 2;
  }
  const std::string json = to_json(results);
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  std::printf("connection-scaling numbers written to %s\n", out_path.c_str());
  return ok ? 0 : 1;
}
