// Reproduces Table IV of the paper: mean accuracy +- standard deviation over
// the trailing window of rounds (the paper averages the last 40 of 50 rounds;
// at reduced scale we use the trailing 2/3 of the run), for every strategy x
// attack scenario.
//
// Expected shape (paper Table IV):
//   - FedGuard is the only strategy above 90% in ALL four attack columns;
//   - Spectral matches it on additive-noise and same-value but collapses on
//     sign-flip;
//   - FedAvg/GeoMed/Krum sit near random accuracy (~10%) under the
//     50%-malicious untargeted attacks while remaining competitive under the
//     targeted 30% label flip;
//   - every strategy matches the no-attack reference when no attack runs.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  using namespace fedguard;
  const core::CliOptions options = core::CliOptions::parse(argc, argv);
  const core::ExperimentConfig base = bench::config_from_cli(options);
  const auto window = static_cast<std::size_t>(
      options.get_int("window", static_cast<std::int64_t>(base.rounds * 2 / 3)));

  std::printf("=== Table IV: trailing accuracy (scale=%s, N=%zu, m=%zu, R=%zu, window=%zu) ===\n\n",
              options.get("scale", "small").c_str(), base.num_clients,
              base.clients_per_round, base.rounds, window);

  const std::vector<bench::Scenario> scenarios = bench::paper_scenarios();
  std::vector<std::string> scenario_names;
  for (const auto& scenario : scenarios) scenario_names.push_back(scenario.name);

  std::vector<core::Table4Row> rows;
  std::vector<fl::RunHistory> fedguard_runs;
  for (const core::StrategyKind strategy : bench::paper_strategies()) {
    core::Table4Row row;
    row.strategy = core::to_string(strategy);
    for (const auto& scenario : scenarios) {
      const fl::RunHistory history = bench::run_cell(base, strategy, scenario);
      row.cells.push_back(history.trailing_accuracy(window));
      if (strategy == core::StrategyKind::FedGuard) fedguard_runs.push_back(history);
    }
    rows.push_back(std::move(row));
  }
  core::print_table4(std::cout, scenario_names, rows, window);

  std::printf("\nFedGuard detection rates per scenario (not in the paper's table,\n"
              "but the mechanism behind its row):\n");
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    std::printf("  %-20s TPR %.2f  FPR %.2f\n", scenarios[s].name.c_str(),
                fedguard_runs[s].true_positive_rate(),
                fedguard_runs[s].false_positive_rate());
  }
  return 0;
}
