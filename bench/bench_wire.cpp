// ψ wire-codec micro-bench: encode/decode cost and bytes-per-round for the
// three reply codecs (fp32 / q8 / fp16) at the paper's Table V traffic shape
// — m = 50 clients per round, ψ ≈ 100k parameters. run_all_benches.sh merges
// the JSON report into BENCH_wire.json; the wire_* counters carry the
// byte accounting (per ψ, per round, and the compression ratio vs fp32),
// which must agree with the traffic meters in fl::Server / net::RemoteServer
// (both charge util::codec_span_wire_size for the ψ direction).

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace {

using namespace fedguard;
using util::WireCodec;

constexpr std::size_t kPsiDim = 101770;       // paper-scale CNN ψ (~100k params)
constexpr std::size_t kClientsPerRound = 50;  // paper m
constexpr std::size_t kChunk = util::kDefaultQ8ChunkSize;

std::vector<float> random_psi(std::uint64_t seed) {
  std::vector<float> psi(kPsiDim);
  util::Rng rng{seed};
  for (auto& v : psi) v = rng.uniform_float(-0.5f, 0.5f);
  return psi;
}

void encode_psi(util::ByteWriter& writer, WireCodec codec, std::span<const float> psi) {
  switch (codec) {
    case WireCodec::Q8: writer.write_q8_span(psi, kChunk); return;
    case WireCodec::Fp16: writer.write_f16_span(psi); return;
    case WireCodec::Fp32: break;
  }
  writer.write_f32_span(psi);
}

void set_wire_counters(benchmark::State& state, WireCodec codec) {
  const auto bytes =
      static_cast<double>(util::codec_span_wire_size(codec, kPsiDim, kChunk));
  state.counters["wire_bytes_psi"] = bytes;
  state.counters["wire_bytes_round_m50"] = bytes * kClientsPerRound;
  state.counters["wire_ratio_vs_fp32"] =
      static_cast<double>(util::f32_vector_wire_size(kPsiDim)) / bytes;
}

void BM_WireEncode(benchmark::State& state, WireCodec codec) {
  const std::vector<float> psi = random_psi(21);
  for (auto _ : state) {
    util::ByteWriter writer;
    encode_psi(writer, codec, psi);
    benchmark::DoNotOptimize(writer.bytes().data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(util::codec_span_wire_size(codec, kPsiDim, kChunk)));
  set_wire_counters(state, codec);
}
BENCHMARK_CAPTURE(BM_WireEncode, fp32, WireCodec::Fp32)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_WireEncode, q8, WireCodec::Q8)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_WireEncode, fp16, WireCodec::Fp16)->Unit(benchmark::kMicrosecond);

void BM_WireDecode(benchmark::State& state, WireCodec codec) {
  const std::vector<float> psi = random_psi(22);
  util::ByteWriter writer;
  encode_psi(writer, codec, psi);
  std::vector<float> out(kPsiDim);
  for (auto _ : state) {
    util::ByteReader reader{writer.bytes()};
    if (reader.read_u64() != kPsiDim) {
      state.SkipWithError("psi count mismatch");
      break;
    }
    switch (codec) {
      case WireCodec::Q8: reader.read_q8_into(out); break;
      case WireCodec::Fp16: reader.read_f16_into(out); break;
      case WireCodec::Fp32: reader.read_f32_into(out); break;
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(writer.size()));
  set_wire_counters(state, codec);
}
BENCHMARK_CAPTURE(BM_WireDecode, fp32, WireCodec::Fp32)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_WireDecode, q8, WireCodec::Q8)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_WireDecode, fp16, WireCodec::Fp16)->Unit(benchmark::kMicrosecond);

// The in-process federation's substitute for encode+decode: the simulated
// quantization roundtrip applied to one arena ψ row.
void BM_WireSimulatedRoundtrip(benchmark::State& state, WireCodec codec) {
  const std::vector<float> psi = random_psi(23);
  std::vector<float> row = psi;
  for (auto _ : state) {
    row = psi;
    util::quantize_roundtrip(codec, row, kChunk);
    benchmark::DoNotOptimize(row.data());
  }
  set_wire_counters(state, codec);
}
BENCHMARK_CAPTURE(BM_WireSimulatedRoundtrip, q8, WireCodec::Q8)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_WireSimulatedRoundtrip, fp16, WireCodec::Fp16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
