// Robustness leaderboard harness: runs a scenario sweep matrix (attack ×
// defense × data regime × malicious fraction; see docs/ROBUSTNESS_SWEEP.md)
// and writes the BENCH_robustness.json leaderboard artifact that
// scripts/check_robustness.py gates against the committed baseline.
//
// Flags (core::CliOptions --key value):
//   --matrix smoke|default|full   matrix preset (default: smoke)
//   --config PATH                 descriptor file: base-config keys plus the
//                                 scenario_* axis overrides, applied on top
//                                 of the preset
//   --seed N                      matrix seed (default 42)
//   --rounds N                    rounds per cell override
//   --cell ID[,ID...]             replay just these cells by id (e.g.
//                                 "covert+40/fedguard/iid") — the (matrix
//                                 seed, cell id) pair fully determines a
//                                 cell's run, so the emitted rows are
//                                 bit-identical to the same rows of the full
//                                 sweep and merge back in cleanly with
//                                 scripts/merge_robustness.py. Each attack
//                                 cell's none+0 baseline cell is run too so
//                                 baseline_accuracy/attack_success carry the
//                                 same linked values the sweep would emit.
//   --out PATH                    leaderboard path (default BENCH_robustness.json)
//   --kernel-arch TIER            auto|serial|avx2|avx512 — pin serial for the
//                                 bit-identical reproducibility contract
//   --quiet                       suppress per-round logging (cell lines stay)

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/cli.hpp"
#include "core/config_file.hpp"
#include "scenario/matrix.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "tensor/kernels/kernel_arch.hpp"
#include "util/logging.hpp"

int main(int argc, char** argv) {
  using namespace fedguard;
  const core::CliOptions options = core::CliOptions::parse(argc, argv);
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 42));
  const std::string matrix_name = options.get("matrix", "smoke");

  scenario::SweepMatrix matrix;
  if (matrix_name == "smoke") matrix = scenario::smoke_matrix(seed);
  else if (matrix_name == "default") matrix = scenario::default_matrix(seed);
  else if (matrix_name == "full") matrix = scenario::full_matrix(seed);
  else {
    std::fprintf(stderr, "unknown --matrix '%s' (smoke|default|full)\n",
                 matrix_name.c_str());
    return 2;
  }

  if (options.has("config")) {
    const auto values = core::parse_config_file(options.get("config", ""));
    std::map<std::string, std::string> base_values;
    for (const auto& [key, value] : values) {
      if (key.rfind("scenario_", 0) != 0) base_values[key] = value;
    }
    core::apply_config_values(matrix.base, base_values);
    scenario::apply_scenario_values(matrix, values);
    matrix.base.seed = seed;  // --seed stays authoritative for replay
  }
  if (options.has("rounds")) {
    matrix.base.rounds = static_cast<std::size_t>(options.get_int("rounds", 6));
  }
  if (options.has("kernel-arch")) {
    tensor::kernels::KernelArch arch{};
    const std::string tier = options.get("kernel-arch", "auto");
    if (!tensor::kernels::parse_kernel_arch(tier, arch)) {
      std::fprintf(stderr, "unknown --kernel-arch '%s' (auto|serial|avx2|avx512)\n",
                   tier.c_str());
      return 2;
    }
    matrix.base.kernel_arch = arch;
  }
  if (options.has("quiet")) util::set_log_level(util::LogLevel::Warn);

  scenario::Leaderboard board;
  if (options.has("cell")) {
    // Targeted replay: run only the named cells. Cell seeds derive from
    // (matrix seed, cell id), so these rows match the full sweep's exactly.
    const std::vector<scenario::Cell> all = matrix.enumerate();
    board.matrix_name = matrix_name;
    board.seed = matrix.base.seed;
    board.rounds = matrix.base.rounds;
    std::string ids = options.get("cell", "");
    for (std::size_t begin = 0; begin <= ids.size();) {
      std::size_t comma = ids.find(',', begin);
      if (comma == std::string::npos) comma = ids.size();
      const std::string id = ids.substr(begin, comma - begin);
      begin = comma + 1;
      if (id.empty()) continue;
      const auto it = std::find_if(all.begin(), all.end(), [&](const auto& c) {
        return c.id() == id;
      });
      if (it == all.end()) {
        std::fprintf(stderr, "--cell '%s' is not in matrix '%s'\n", id.c_str(),
                     matrix_name.c_str());
        return 2;
      }
      const bool seen = std::any_of(
          board.cells.begin(), board.cells.end(),
          [&](const auto& row) { return row.cell_id == id; });
      if (!seen) board.cells.push_back(scenario::run_cell(matrix, *it));
    }
    // Pull in each attack cell's none+0 baseline so the linked
    // baseline_accuracy/attack_success fields match the full sweep's rows.
    const std::size_t requested = board.cells.size();
    for (std::size_t i = 0; i < requested; ++i) {
      if (board.cells[i].attack == "none") continue;
      const std::string baseline_id =
          "none+0/" + board.cells[i].defense + "/" + board.cells[i].regime;
      const bool seen = std::any_of(
          board.cells.begin(), board.cells.end(),
          [&](const auto& row) { return row.cell_id == baseline_id; });
      if (seen) continue;
      const auto it = std::find_if(all.begin(), all.end(), [&](const auto& c) {
        return c.id() == baseline_id;
      });
      if (it != all.end()) board.cells.push_back(scenario::run_cell(matrix, *it));
    }
    for (auto& row : board.cells) {
      const auto it = std::find_if(
          board.cells.begin(), board.cells.end(), [&](const auto& candidate) {
            return candidate.attack == "none" &&
                   candidate.defense == row.defense &&
                   candidate.regime == row.regime;
          });
      if (it == board.cells.end()) continue;
      row.baseline_accuracy = it->final_accuracy;
      if (row.attack != "none" && it->final_accuracy > 0.0) {
        row.attack_success = std::max(
            0.0, (it->final_accuracy - row.final_accuracy) / it->final_accuracy);
      }
    }
    std::sort(board.cells.begin(), board.cells.end(),
              [](const auto& a, const auto& b) { return a.cell_id < b.cell_id; });
    std::printf("=== robustness replay: matrix=%s, %zu cell(s), seed=%llu ===\n",
                matrix_name.c_str(), board.cells.size(),
                static_cast<unsigned long long>(board.seed));
  } else {
    const std::size_t cell_count = matrix.enumerate().size();
    std::printf("=== robustness sweep: matrix=%s, %zu cells, seed=%llu, R=%zu ===\n",
                matrix_name.c_str(), cell_count,
                static_cast<unsigned long long>(matrix.base.seed),
                matrix.base.rounds);
    board = scenario::run_sweep(matrix, matrix_name);
  }
  scenario::print_leaderboard(std::cout, board);

  const std::string out_path = options.get("out", "BENCH_robustness.json");
  scenario::write_json(board, out_path);
  std::printf("leaderboard -> %s (%zu cells)\n", out_path.c_str(), board.cells.size());
  return 0;
}
