// Reproduces Fig. 5 of the paper: the impact of the server learning rate on
// FedGuard's stability at 40% label-flipping malicious peers.
//
// Expected shape (paper §V-A "Testing FedGuard limits"): with η = 1 the run
// occasionally destabilizes when a malicious-majority round slips through;
// with η = 0.3 convergence is slower but the dips are damped.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "util/stats.hpp"
#include "util/svg_plot.hpp"

int main(int argc, char** argv) {
  using namespace fedguard;
  const core::CliOptions options = core::CliOptions::parse(argc, argv);
  core::ExperimentConfig base = bench::config_from_cli(options);
  // Fig. 5 uses a longer horizon than the other figures so the slow-η run
  // has time to converge.
  if (!options.has("rounds")) base.rounds = base.rounds * 3 / 2;

  const bench::Scenario scenario{"Label Flipping 40%", attacks::AttackType::LabelFlip, 0.4};
  std::printf("=== Fig. 5: FedGuard server learning rate ablation (%s, R=%zu) ===\n\n",
              scenario.name.c_str(), base.rounds);

  std::vector<fl::RunHistory> runs;
  for (const float eta : {1.0f, 0.3f}) {
    core::ExperimentConfig config = base;
    config.server_learning_rate = eta;
    fl::RunHistory history = bench::run_cell(config, core::StrategyKind::FedGuard, scenario);
    history.strategy = "fedguard-lr-" + std::to_string(eta).substr(0, 3);
    const std::string csv = options.get("csv", "");
    if (!csv.empty()) history.write_csv(csv + "_" + history.strategy + ".csv");
    runs.push_back(std::move(history));
  }
  core::print_accuracy_series(std::cout, runs);

  if (options.has("svg")) {
    util::LinePlot plot{"Fig. 5 — server learning rate (40% label flip)",
                        "federated round", "test accuracy"};
    plot.set_y_range(0.0, 1.0);
    for (const auto& run : runs) plot.add_series(run.strategy, run.accuracy_series());
    const std::string path = options.get("svg", "fig5") + ".svg";
    plot.save(path);
    std::printf("(figure written to %s)\n", path.c_str());
  }

  // Stability summary: worst round-over-round accuracy drop per run.
  std::printf("\nStability summary:\n");
  for (const auto& run : runs) {
    double worst_drop = 0.0;
    for (std::size_t r = 1; r < run.rounds.size(); ++r) {
      worst_drop = std::max(worst_drop, run.rounds[r - 1].test_accuracy -
                                            run.rounds[r].test_accuracy);
    }
    const util::TrailingStats tail = run.trailing_accuracy(run.rounds.size() * 2 / 3);
    std::printf("  %-16s trailing %.2f%% +- %.2f%%, worst round-to-round drop %.2f%%\n",
                run.strategy.c_str(), tail.mean * 100.0, tail.stddev * 100.0,
                worst_drop * 100.0);
  }
  return 0;
}
