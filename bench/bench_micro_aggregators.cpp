// Micro-benchmarks of the aggregation operators: throughput as a function of
// cohort size and parameter dimension. Relevant to the paper's Table V
// discussion — Krum's pairwise distances dominate as m grows, GeoMed's
// Weiszfeld iterations cost a small multiple of FedAvg, the medians sort per
// coordinate.

#include <benchmark/benchmark.h>

#include "defenses/fedavg.hpp"
#include "defenses/fedguard.hpp"
#include "defenses/geomed.hpp"
#include "defenses/krum.hpp"
#include "defenses/median.hpp"
#include "defenses/trimmed_mean.hpp"
#include "parallel/kernel_config.hpp"
#include "util/rng.hpp"

namespace {

using namespace fedguard;

std::vector<defenses::ClientUpdate> make_updates(std::size_t count, std::size_t dim,
                                                 std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<defenses::ClientUpdate> updates(count);
  for (std::size_t k = 0; k < count; ++k) {
    updates[k].client_id = static_cast<int>(k);
    updates[k].num_samples = 100;
    updates[k].psi.resize(dim);
    for (auto& v : updates[k].psi) v = rng.uniform_float(-1.0f, 1.0f);
  }
  return updates;
}

template <typename Strategy, typename... Args>
void run_aggregator(benchmark::State& state, Args&&... args) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  const auto updates = make_updates(count, dim, 42);
  const std::vector<float> global(dim, 0.0f);
  Strategy strategy{std::forward<Args>(args)...};
  defenses::AggregationContext context;
  context.global_parameters = global;
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy.aggregate(context, updates));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * dim));
}

void BM_FedAvg(benchmark::State& state) {
  run_aggregator<defenses::FedAvgAggregator>(state);
}
void BM_GeoMed(benchmark::State& state) {
  run_aggregator<defenses::GeoMedAggregator>(state);
}
void BM_Krum(benchmark::State& state) {
  run_aggregator<defenses::KrumAggregator>(state, 0.25, std::size_t{1});
}
void BM_CoordinateMedian(benchmark::State& state) {
  run_aggregator<defenses::CoordinateMedianAggregator>(state);
}
void BM_TrimmedMean(benchmark::State& state) {
  run_aggregator<defenses::TrimmedMeanAggregator>(state, 0.2);
}

void aggregator_args(benchmark::internal::Benchmark* bench) {
  // (clients per round, parameter dimension). m=50 matches the paper.
  bench->Args({10, 100000})->Args({50, 100000})->Args({50, 500000})->Args({100, 100000});
  bench->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_FedAvg)->Apply(aggregator_args);
BENCHMARK(BM_GeoMed)->Apply(aggregator_args);
BENCHMARK(BM_Krum)->Apply(aggregator_args);
BENCHMARK(BM_CoordinateMedian)->Apply(aggregator_args);
BENCHMARK(BM_TrimmedMean)->Apply(aggregator_args);

// The pairwise-distance matrix in isolation, with an explicit kernel thread
// count as the LAST argument (0 thresholds so the parallel path always
// engages; threads = 1 measures the serial loop through the same dispatch).
void BM_KrumPairwise(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  parallel::KernelConfig config;
  config.threads = static_cast<std::size_t>(state.range(2));
  config.distance_min_elements = 1;
  parallel::set_kernel_config(config);
  util::Rng rng{7};
  std::vector<float> points(count * dim);
  for (auto& v : points) v = rng.uniform_float(-1.0f, 1.0f);
  const std::size_t f = count / 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(defenses::krum_scores(points, count, dim, f));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * count * dim / 2));
  parallel::set_kernel_config(parallel::KernelConfig{});
}
BENCHMARK(BM_KrumPairwise)
    ->Args({50, 100000, 1})
    ->Args({50, 100000, 4})
    ->Args({100, 100000, 1})
    ->Args({100, 100000, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
