// Data-heterogeneity ablation — the paper's "Imbalanced datasets" future-work
// direction (§VI-C): how does FedGuard hold up as the Dirichlet concentration
// α shrinks (clients see fewer classes, their CVAEs synthesize narrower
// validation data)?
//
// Expected shape: robust near the paper's α = 10; degraded detection as
// α -> 0 because most decoders produce unusable samples for classes they
// never saw — the limiting factor the paper calls out in §VI-B.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fedguard;
  const core::CliOptions options = core::CliOptions::parse(argc, argv);
  core::ExperimentConfig base = bench::config_from_cli(options);
  if (!options.has("rounds")) base.rounds = std::min<std::size_t>(base.rounds, 8);
  const std::size_t window = base.rounds * 2 / 3;

  const bench::Scenario label_flip{"Label Flipping 30%", attacks::AttackType::LabelFlip,
                                   0.3};
  std::printf("=== Heterogeneity ablation: FedGuard vs Dirichlet alpha (%s) ===\n\n",
              label_flip.name.c_str());
  std::printf("%-8s | %-12s | %-22s | %-10s | %-10s\n", "alpha", "strategy",
              "trailing accuracy", "TPR", "FPR");
  std::printf("%s\n", std::string(75, '-').c_str());
  for (const double alpha : {0.1, 1.0, 10.0, 100.0}) {
    for (const auto strategy : {core::StrategyKind::FedAvg, core::StrategyKind::FedGuard}) {
      core::ExperimentConfig config = base;
      config.dirichlet_alpha = alpha;
      const fl::RunHistory history = bench::run_cell(config, strategy, label_flip);
      const auto tail = history.trailing_accuracy(window);
      std::printf("%-8.1f | %-12s | %8.2f%% +- %6.2f%% | %-10.2f | %-10.2f\n", alpha,
                  core::to_string(strategy), tail.mean * 100.0, tail.stddev * 100.0,
                  history.true_positive_rate(), history.false_positive_rate());
    }
  }
  return 0;
}
