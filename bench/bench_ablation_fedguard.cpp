// Ablations of FedGuard's design knobs (DESIGN.md experiment index):
//  (a) internal aggregation operator — FedAvg vs GeoMed vs coordinate median
//      over the surviving updates (paper §VI-C "Future works");
//  (b) validation-set size t — the "tuneable overhead" claim (§VI-A): more
//      synthetic samples cost more server compute but stabilize scoring;
//  (c) malicious-fraction sweep under label flipping — FedGuard's designed
//      50% limit (§V-A "Testing FedGuard limits").

#include <cstdio>

#include "bench_common.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace fedguard;
  const core::CliOptions options = core::CliOptions::parse(argc, argv);
  core::ExperimentConfig base = bench::config_from_cli(options);
  // 12 FedGuard federations run below; keep each short by default.
  if (!options.has("rounds")) base.rounds = std::min<std::size_t>(base.rounds, 8);
  const std::size_t window = base.rounds * 2 / 3;

  std::printf("=== FedGuard ablations (scale=%s, N=%zu, m=%zu, R=%zu) ===\n",
              options.get("scale", "small").c_str(), base.num_clients,
              base.clients_per_round, base.rounds);

  const bench::Scenario sign_flip{"Sign Flipping 50%", attacks::AttackType::SignFlip, 0.5};

  std::printf("\n(a) internal aggregation operator under %s:\n", sign_flip.name.c_str());
  for (const auto op : {defenses::InternalOperator::FedAvg,
                        defenses::InternalOperator::GeoMed,
                        defenses::InternalOperator::Median}) {
    core::ExperimentConfig config = base;
    config.fedguard_internal_operator = op;
    const fl::RunHistory history =
        bench::run_cell(config, core::StrategyKind::FedGuard, sign_flip);
    const auto tail = history.trailing_accuracy(window);
    std::printf("  internal=%-8s trailing acc %.2f%% +- %.2f%%  TPR %.2f\n",
                defenses::to_string(op), tail.mean * 100.0, tail.stddev * 100.0,
                history.true_positive_rate());
  }

  std::printf("\n(b) validation-set size t (tuneable overhead) under %s:\n",
              sign_flip.name.c_str());
  for (const std::size_t t : {20ul, 50ul, 100ul, 200ul}) {
    core::ExperimentConfig config = base;
    config.fedguard_total_samples = t;
    const util::Stopwatch stopwatch;
    const fl::RunHistory history =
        bench::run_cell(config, core::StrategyKind::FedGuard, sign_flip);
    const auto tail = history.trailing_accuracy(window);
    std::printf("  t=%-4zu trailing acc %.2f%% +- %.2f%%  TPR %.2f  run %.1fs\n", t,
                tail.mean * 100.0, tail.stddev * 100.0, history.true_positive_rate(),
                stopwatch.seconds());
  }

  std::printf("\n(c) malicious-fraction sweep, label flipping (50%% design limit):\n");
  for (const double fraction : {0.2, 0.3, 0.4, 0.5, 0.6}) {
    const bench::Scenario scenario{"Label Flipping", attacks::AttackType::LabelFlip,
                                   fraction};
    const fl::RunHistory history =
        bench::run_cell(base, core::StrategyKind::FedGuard, scenario);
    const auto tail = history.trailing_accuracy(window);
    std::printf("  malicious=%.0f%%  trailing acc %.2f%% +- %.2f%%  TPR %.2f  FPR %.2f\n",
                fraction * 100.0, tail.mean * 100.0, tail.stddev * 100.0,
                history.true_positive_rate(), history.false_positive_rate());
  }

  std::printf("\n(d) scoring metric under Label Flipping 40%% (targeted detection):\n");
  for (const auto metric : {defenses::FedGuardConfig::ScoreMetric::Accuracy,
                            defenses::FedGuardConfig::ScoreMetric::Balanced}) {
    core::ExperimentConfig config = base;
    config.fedguard_score_metric = metric;
    const bench::Scenario scenario{"Label Flipping 40%", attacks::AttackType::LabelFlip,
                                   0.4};
    const fl::RunHistory history =
        bench::run_cell(config, core::StrategyKind::FedGuard, scenario);
    const auto tail = history.trailing_accuracy(window);
    std::printf("  metric=%-9s trailing acc %.2f%% +- %.2f%%  TPR %.2f  FPR %.2f\n",
                metric == defenses::FedGuardConfig::ScoreMetric::Balanced ? "balanced"
                                                                          : "accuracy",
                tail.mean * 100.0, tail.stddev * 100.0, history.true_positive_rate(),
                history.false_positive_rate());
  }

  std::printf("\n(e) extension attacks (scaling / random update), 40%% malicious:\n");
  for (const auto attack : {attacks::AttackType::Scaling, attacks::AttackType::RandomUpdate}) {
    for (const auto strategy :
         {core::StrategyKind::FedAvg, core::StrategyKind::NormThreshold,
          core::StrategyKind::FedGuard}) {
      const bench::Scenario scenario{attacks::to_string(attack), attack, 0.4};
      const fl::RunHistory history = bench::run_cell(base, strategy, scenario);
      const auto tail = history.trailing_accuracy(window);
      std::printf("  %-14s vs %-14s trailing acc %.2f%% +- %.2f%%\n",
                  attacks::to_string(attack), core::to_string(strategy),
                  tail.mean * 100.0, tail.stddev * 100.0);
    }
  }
  return 0;
}
