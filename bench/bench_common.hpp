#pragma once
// Shared machinery for the table/figure reproduction harnesses.
//
// Every harness accepts:
//   --scale small|paper   (default small: minutes on one CPU core)
//   --rounds N            override round count
//   --clients N           override population size
//   --sampled M           override clients per round
//   --seed S
//   --csv PATH            dump per-round series for plotting
//   --quiet               suppress per-round logging

#include <string>
#include <vector>

#include "core/cli.hpp"
#include "core/experiment.hpp"
#include "core/runner.hpp"
#include "util/logging.hpp"

namespace fedguard::bench {

/// One attack scenario column of Fig. 4 / Table IV.
struct Scenario {
  std::string name;
  attacks::AttackType attack;
  double malicious_fraction;
};

/// The paper's four attack scenarios plus the no-attack reference
/// (Section IV-B; Fig. 4 panels and Table IV columns).
inline std::vector<Scenario> paper_scenarios() {
  return {
      {"Additive Noise 50%", attacks::AttackType::AdditiveNoise, 0.5},
      {"Label Flipping 30%", attacks::AttackType::LabelFlip, 0.3},
      {"Sign Flipping 50%", attacks::AttackType::SignFlip, 0.5},
      {"Same Value 50%", attacks::AttackType::SameValue, 0.5},
      {"No Attack", attacks::AttackType::None, 0.0},
  };
}

/// The five strategies compared in the paper's evaluation (Section IV-C).
inline std::vector<core::StrategyKind> paper_strategies() {
  return {core::StrategyKind::FedAvg, core::StrategyKind::GeoMed,
          core::StrategyKind::Krum, core::StrategyKind::Spectral,
          core::StrategyKind::FedGuard};
}

/// Resolve the base ExperimentConfig from --scale and the common overrides.
inline core::ExperimentConfig config_from_cli(const core::CliOptions& options) {
  core::ExperimentConfig config = options.get("scale", "small") == "paper"
                                      ? core::ExperimentConfig::paper_scale()
                                      : core::ExperimentConfig::small_scale();
  config.rounds = static_cast<std::size_t>(
      options.get_int("rounds", static_cast<std::int64_t>(config.rounds)));
  config.num_clients = static_cast<std::size_t>(
      options.get_int("clients", static_cast<std::int64_t>(config.num_clients)));
  config.clients_per_round = static_cast<std::size_t>(
      options.get_int("sampled", static_cast<std::int64_t>(config.clients_per_round)));
  config.seed = static_cast<std::uint64_t>(
      options.get_int("seed", static_cast<std::int64_t>(config.seed)));
  if (options.has("quiet")) util::set_log_level(util::LogLevel::Warn);
  return config;
}

/// Run one (strategy, scenario) cell.
inline fl::RunHistory run_cell(core::ExperimentConfig config, core::StrategyKind strategy,
                               const Scenario& scenario) {
  config.strategy = strategy;
  config.attack = scenario.attack;
  config.malicious_fraction = scenario.malicious_fraction;
  return core::run_experiment(config);
}

}  // namespace fedguard::bench
