// Micro-benchmarks of the numeric substrate: GEMM variants, im2col, and full
// layer forward/backward passes at the shapes used by the paper's models.

#include <benchmark/benchmark.h>

#include <string>

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "parallel/kernel_config.hpp"
#include "tensor/kernels/kernel_arch.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace {

using namespace fedguard;
using tensor::Tensor;

Tensor random_tensor(std::vector<std::size_t> shape, std::uint64_t seed) {
  Tensor t{std::move(shape)};
  util::Rng rng{seed};
  for (auto& v : t.data()) v = rng.uniform_float(-1.0f, 1.0f);
  return t;
}

// Convention for threaded benches: the LAST benchmark argument is the kernel
// thread count; the serial-fallback thresholds are zeroed so the parallel
// dispatch path is always measured (threads = 1 still runs the serial loop
// nest — kernel_parallel_ranges collapses a single chunk).
void set_kernel_threads(std::size_t threads) {
  parallel::KernelConfig config;
  config.threads = threads;
  config.gemm_min_flops = 1;
  config.elementwise_min_size = 1;
  config.distance_min_elements = 1;
  parallel::set_kernel_config(config);
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  set_kernel_threads(static_cast<std::size_t>(state.range(1)));
  const Tensor a = random_tensor({n, n}, 1);
  const Tensor b = random_tensor({n, n}, 2);
  Tensor c{{n, n}};
  for (auto _ : state) {
    tensor::matmul(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
  parallel::set_kernel_config(parallel::KernelConfig{});
}
BENCHMARK(BM_Matmul)
    ->Args({64, 1})
    ->Args({128, 1})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Unit(benchmark::kMicrosecond);

// Per-ISA-tier GEMM rows: the same 256^3 single-thread shape pinned to each
// kernel tier this CPU supports, so BENCH_kernels.json tracks the SIMD
// speedup (acceptance bar: widest tier >= 2x the serial GFLOP/s). The tier
// is encoded as an op-name suffix (BM_Matmul_serial / _avx2 / _avx512);
// merge_kernel_bench.py turns it into the kernel_arch record field.
void BM_MatmulKernelArch(benchmark::State& state, tensor::kernels::KernelArch arch) {
  const auto n = static_cast<std::size_t>(state.range(0));
  set_kernel_threads(static_cast<std::size_t>(state.range(1)));
  tensor::kernels::set_kernel_arch(arch);
  const Tensor a = random_tensor({n, n}, 1);
  const Tensor b = random_tensor({n, n}, 2);
  Tensor c{{n, n}};
  for (auto _ : state) {
    tensor::matmul(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
  tensor::kernels::set_kernel_arch(tensor::kernels::KernelArch::Auto);
  parallel::set_kernel_config(parallel::KernelConfig{});
}

const int register_arch_gemm = [] {
  namespace kernels = fedguard::tensor::kernels;
  for (const kernels::KernelArch arch : {kernels::KernelArch::Serial,
                                         kernels::KernelArch::Avx2,
                                         kernels::KernelArch::Avx512}) {
    if (!kernels::kernel_arch_available(arch)) continue;
    const std::string name =
        std::string{"BM_Matmul_"} + std::string{kernels::to_string(arch)};
    benchmark::RegisterBenchmark(name.c_str(),
                                 [arch](benchmark::State& s) { BM_MatmulKernelArch(s, arch); })
        ->Args({256, 1})
        ->Unit(benchmark::kMicrosecond);
  }
  return 0;
}();

void BM_MatmulTransA(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  set_kernel_threads(static_cast<std::size_t>(state.range(1)));
  const Tensor a = random_tensor({n, n}, 14);
  const Tensor b = random_tensor({n, n}, 15);
  Tensor c{{n, n}};
  for (auto _ : state) {
    tensor::matmul_trans_a(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
  parallel::set_kernel_config(parallel::KernelConfig{});
}
BENCHMARK(BM_MatmulTransA)->Args({256, 1})->Args({256, 4})->Unit(benchmark::kMicrosecond);

void BM_MatmulTransB(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  set_kernel_threads(static_cast<std::size_t>(state.range(1)));
  const Tensor a = random_tensor({n, n}, 3);
  const Tensor b = random_tensor({n, n}, 4);
  Tensor c{{n, n}};
  for (auto _ : state) {
    tensor::matmul_trans_b(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
  parallel::set_kernel_config(parallel::KernelConfig{});
}
BENCHMARK(BM_MatmulTransB)
    ->Args({64, 1})
    ->Args({256, 1})
    ->Args({256, 4})
    ->Unit(benchmark::kMicrosecond);

void BM_Im2Col(benchmark::State& state) {
  // The paper CNN's first layer geometry: 1x28x28, 5x5 kernel, pad 2.
  const tensor::ConvGeometry g{1, 28, 28, 5, 2};
  const Tensor image = random_tensor({g.in_channels, g.in_h, g.in_w}, 5);
  Tensor columns;
  for (auto _ : state) {
    tensor::im2col(image.data(), g, columns);
    benchmark::DoNotOptimize(columns.raw());
  }
}
BENCHMARK(BM_Im2Col)->Unit(benchmark::kMicrosecond);

void BM_Conv2dForward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng{6};
  nn::Conv2d conv{1, 32, 5, 28, 28, rng, 2};
  const Tensor input = random_tensor({batch, 1, 28, 28}, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(input).raw());
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(1)->Arg(16)->Unit(benchmark::kMicrosecond);

void BM_Conv2dBackward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng{8};
  nn::Conv2d conv{1, 32, 5, 28, 28, rng, 2};
  const Tensor input = random_tensor({batch, 1, 28, 28}, 9);
  const Tensor output = conv.forward(input);
  const Tensor grad = random_tensor(output.shape(), 10);
  for (auto _ : state) {
    conv.zero_grad();
    benchmark::DoNotOptimize(conv.backward(grad).raw());
  }
}
BENCHMARK(BM_Conv2dBackward)->Arg(1)->Arg(16)->Unit(benchmark::kMicrosecond);

void BM_LinearForward(benchmark::State& state) {
  // The paper CNN's dominant FC layer: 3136 -> 512.
  util::Rng rng{11};
  nn::Linear linear{3136, 512, rng};
  const Tensor input = random_tensor({32, 3136}, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linear.forward(input).raw());
  }
}
BENCHMARK(BM_LinearForward)->Unit(benchmark::kMicrosecond);

void BM_Axpy(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  set_kernel_threads(static_cast<std::size_t>(state.range(1)));
  const Tensor x = random_tensor({size}, 16);
  Tensor y = random_tensor({size}, 17);
  for (auto _ : state) {
    tensor::axpy(0.001f, x.data(), y.data());
    benchmark::DoNotOptimize(y.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * size));
  parallel::set_kernel_config(parallel::KernelConfig{});
}
BENCHMARK(BM_Axpy)
    ->Args({1 << 16, 1})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 4})
    ->Unit(benchmark::kMicrosecond);

void BM_SoftmaxRows(benchmark::State& state) {
  const Tensor logits = random_tensor({256, 10}, 13);
  Tensor probs;
  for (auto _ : state) {
    tensor::softmax_rows(logits, probs);
    benchmark::DoNotOptimize(probs.raw());
  }
}
BENCHMARK(BM_SoftmaxRows)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
