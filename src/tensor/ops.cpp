#include "tensor/ops.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace fedguard::tensor {

namespace {
void check_matmul(std::size_t am, std::size_t ak, std::size_t bk, std::size_t bn,
                  const Tensor& c) {
  if (ak != bk) throw std::invalid_argument{"matmul: inner dimension mismatch"};
  if (c.rank() != 2 || c.dim(0) != am || c.dim(1) != bn) {
    throw std::invalid_argument{"matmul: output shape mismatch"};
  }
}
}  // namespace

void matmul(const Tensor& a, const Tensor& b, Tensor& c) {
  assert(a.rank() == 2 && b.rank() == 2);
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  check_matmul(m, k, b.dim(0), n, c);
  c.zero();
  const float* A = a.raw();
  const float* B = b.raw();
  float* C = c.raw();
  // ikj loop order: unit-stride access on B and C rows.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float a_ip = A[i * k + p];
      if (a_ip == 0.0f) continue;
      const float* b_row = B + p * n;
      float* c_row = C + i * n;
      for (std::size_t j = 0; j < n; ++j) c_row[j] += a_ip * b_row[j];
    }
  }
}

void matmul_trans_a(const Tensor& a, const Tensor& b, Tensor& c) {
  c.zero();
  matmul_trans_a_accumulate(a, b, c);
}

void matmul_trans_a_accumulate(const Tensor& a, const Tensor& b, Tensor& c) {
  assert(a.rank() == 2 && b.rank() == 2);
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  check_matmul(m, k, b.dim(0), n, c);
  const float* A = a.raw();
  const float* B = b.raw();
  float* C = c.raw();
  // C[i,j] += sum_p A[p,i] * B[p,j]
  for (std::size_t p = 0; p < k; ++p) {
    const float* a_row = A + p * m;
    const float* b_row = B + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float a_pi = a_row[i];
      if (a_pi == 0.0f) continue;
      float* c_row = C + i * n;
      for (std::size_t j = 0; j < n; ++j) c_row[j] += a_pi * b_row[j];
    }
  }
}

void matmul_trans_b(const Tensor& a, const Tensor& b, Tensor& c) {
  assert(a.rank() == 2 && b.rank() == 2);
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  check_matmul(m, k, b.dim(1), n, c);
  const float* A = a.raw();
  const float* B = b.raw();
  float* C = c.raw();
  // C[i,j] = dot(A_row_i, B_row_j) — both unit stride.
  for (std::size_t i = 0; i < m; ++i) {
    const float* a_row = A + i * k;
    float* c_row = C + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* b_row = B + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      c_row[j] = acc;
    }
  }
}

void axpy(float alpha, std::span<const float> x, std::span<float> out) noexcept {
  assert(x.size() == out.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] += alpha * x[i];
}

void add(std::span<const float> a, std::span<const float> b, std::span<float> out) noexcept {
  assert(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
}

void sub(std::span<const float> a, std::span<const float> b, std::span<float> out) noexcept {
  assert(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
}

void hadamard(std::span<const float> a, std::span<const float> b,
              std::span<float> out) noexcept {
  assert(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
}

void scale(std::span<float> x, float alpha) noexcept {
  for (auto& v : x) v *= alpha;
}

float sum(std::span<const float> x) noexcept {
  double total = 0.0;
  for (const float v : x) total += v;
  return static_cast<float>(total);
}

std::size_t argmax(std::span<const float> x) noexcept {
  assert(!x.empty());
  return static_cast<std::size_t>(std::max_element(x.begin(), x.end()) - x.begin());
}

void add_rows_into(const Tensor& rows, std::span<float> out) noexcept {
  assert(rows.rank() == 2 && rows.dim(1) == out.size());
  for (std::size_t r = 0; r < rows.dim(0); ++r) {
    const auto row = rows.row(r);
    for (std::size_t c = 0; c < out.size(); ++c) out[c] += row[c];
  }
}

void add_bias_rows(Tensor& rows, std::span<const float> bias) noexcept {
  assert(rows.rank() == 2 && rows.dim(1) == bias.size());
  for (std::size_t r = 0; r < rows.dim(0); ++r) {
    auto row = rows.row(r);
    for (std::size_t c = 0; c < bias.size(); ++c) row[c] += bias[c];
  }
}

void softmax_rows(const Tensor& logits, Tensor& out) {
  assert(logits.rank() == 2);
  if (!out.same_shape(logits)) out = Tensor{logits.shape()};
  for (std::size_t r = 0; r < logits.dim(0); ++r) {
    const auto in = logits.row(r);
    auto dst = out.row(r);
    const float max_logit = *std::max_element(in.begin(), in.end());
    float total = 0.0f;
    for (std::size_t c = 0; c < in.size(); ++c) {
      dst[c] = std::exp(in[c] - max_logit);
      total += dst[c];
    }
    const float inv = 1.0f / total;
    for (auto& v : dst) v *= inv;
  }
}

void log_softmax_rows(const Tensor& logits, Tensor& out) {
  assert(logits.rank() == 2);
  if (!out.same_shape(logits)) out = Tensor{logits.shape()};
  for (std::size_t r = 0; r < logits.dim(0); ++r) {
    const auto in = logits.row(r);
    auto dst = out.row(r);
    const float max_logit = *std::max_element(in.begin(), in.end());
    float total = 0.0f;
    for (const float v : in) total += std::exp(v - max_logit);
    const float log_norm = max_logit + std::log(total);
    for (std::size_t c = 0; c < in.size(); ++c) dst[c] = in[c] - log_norm;
  }
}

void im2col(std::span<const float> image, const ConvGeometry& g, Tensor& columns) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t pixels = oh * ow;
  assert(image.size() == g.in_channels * g.in_h * g.in_w);
  if (columns.rank() != 2 || columns.dim(0) != g.patch_size() || columns.dim(1) != pixels) {
    columns = Tensor{{g.patch_size(), pixels}};
  }
  const auto pad = static_cast<std::ptrdiff_t>(g.padding);
  float* out = columns.raw();
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    const float* channel = image.data() + c * g.in_h * g.in_w;
    for (std::size_t kh = 0; kh < g.kernel; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel; ++kw) {
        const std::size_t patch_row = (c * g.kernel + kh) * g.kernel + kw;
        float* dst = out + patch_row * pixels;
        for (std::size_t y = 0; y < oh; ++y) {
          const std::ptrdiff_t src_y =
              static_cast<std::ptrdiff_t>(y + kh) - pad;
          if (src_y < 0 || src_y >= static_cast<std::ptrdiff_t>(g.in_h)) {
            std::fill(dst + y * ow, dst + (y + 1) * ow, 0.0f);
            continue;
          }
          const float* src_row = channel + static_cast<std::size_t>(src_y) * g.in_w;
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t src_x =
                static_cast<std::ptrdiff_t>(x + kw) - pad;
            dst[y * ow + x] =
                (src_x < 0 || src_x >= static_cast<std::ptrdiff_t>(g.in_w))
                    ? 0.0f
                    : src_row[static_cast<std::size_t>(src_x)];
          }
        }
      }
    }
  }
}

void col2im_accumulate(const Tensor& columns, const ConvGeometry& g,
                       std::span<float> image_grad) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t pixels = oh * ow;
  assert(columns.rank() == 2 && columns.dim(0) == g.patch_size() && columns.dim(1) == pixels);
  assert(image_grad.size() == g.in_channels * g.in_h * g.in_w);
  const auto pad = static_cast<std::ptrdiff_t>(g.padding);
  const float* in = columns.raw();
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    float* channel = image_grad.data() + c * g.in_h * g.in_w;
    for (std::size_t kh = 0; kh < g.kernel; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel; ++kw) {
        const std::size_t patch_row = (c * g.kernel + kh) * g.kernel + kw;
        const float* src = in + patch_row * pixels;
        for (std::size_t y = 0; y < oh; ++y) {
          const std::ptrdiff_t dst_y =
              static_cast<std::ptrdiff_t>(y + kh) - pad;
          if (dst_y < 0 || dst_y >= static_cast<std::ptrdiff_t>(g.in_h)) continue;
          float* dst_row = channel + static_cast<std::size_t>(dst_y) * g.in_w;
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t dst_x =
                static_cast<std::ptrdiff_t>(x + kw) - pad;
            if (dst_x < 0 || dst_x >= static_cast<std::ptrdiff_t>(g.in_w)) continue;
            dst_row[static_cast<std::size_t>(dst_x)] += src[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace fedguard::tensor
