#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/trace.hpp"
#include "parallel/kernel_config.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/kernels/kernel_arch.hpp"
#include "util/check.hpp"

namespace fedguard::tensor {

namespace {

void check_matmul(std::size_t am, std::size_t ak, std::size_t bk, std::size_t bn,
                  const Tensor& c) {
  if (ak != bk) throw std::invalid_argument{"matmul: inner dimension mismatch"};
  if (c.rank() != 2 || c.dim(0) != am || c.dim(1) != bn) {
    throw std::invalid_argument{"matmul: output shape mismatch"};
  }
}

// ---- Blocked GEMM ----------------------------------------------------------
//
// Classic MC/KC/NC cache blocking around an MR x NR register micro-kernel.
// No packing: at these sizes (hundreds, not tens of thousands) the blocked
// loop nest alone keeps the working set resident, and skipping the pack step
// keeps small layers cheap. The micro-kernel accumulates the full depth chunk
// in local accumulators so the compiler holds them in vector registers and
// auto-vectorizes the NR loop.
//
// A is addressed as element(i, p) = A[i * a_rs + p * a_cs], so the same
// driver serves matmul (a_rs = k, a_cs = 1) and matmul_trans_a
// (a_rs = 1, a_cs = m). B and C are always row-major with unit column stride.
//
// Determinism: every C element accumulates its k products in ascending p
// order regardless of blocking or row partitioning, so output is identical
// for any thread count and bit-stable across runs.

constexpr std::size_t kMr = 4;    // micro-tile rows
constexpr std::size_t kNr = 16;   // micro-tile cols (one AVX-512 / two AVX vectors)
constexpr std::size_t kMc = 64;   // rows per macro tile
constexpr std::size_t kKc = 256;  // depth chunk: A tile kMc x kKc = 64 KiB
constexpr std::size_t kNc = 512;  // cols per macro tile: B tile kKc x kNc = 512 KiB

void micro_kernel(const float* a, std::size_t a_rs, std::size_t a_cs, const float* b_panel,
                  std::size_t ldb, float* c_tile, std::size_t ldc, std::size_t mr,
                  std::size_t nr, std::size_t kc) {
  if (mr == kMr && nr == kNr) {
    float acc[kMr][kNr];
    for (std::size_t ii = 0; ii < kMr; ++ii) {
      for (std::size_t jj = 0; jj < kNr; ++jj) acc[ii][jj] = c_tile[ii * ldc + jj];
    }
    for (std::size_t p = 0; p < kc; ++p) {
      const float* b_row = b_panel + p * ldb;
      // Gather the column of A first; the jj-outer nest below is the shape
      // GCC turns into broadcast+FMA over full-width vectors (the ii-outer
      // form SLP-vectorizes across rows at 4 lanes instead — ~18x slower).
      float a_col[kMr];
      for (std::size_t ii = 0; ii < kMr; ++ii) a_col[ii] = a[ii * a_rs + p * a_cs];
      for (std::size_t jj = 0; jj < kNr; ++jj) {
        const float b_pj = b_row[jj];
        for (std::size_t ii = 0; ii < kMr; ++ii) acc[ii][jj] += a_col[ii] * b_pj;
      }
    }
    for (std::size_t ii = 0; ii < kMr; ++ii) {
      for (std::size_t jj = 0; jj < kNr; ++jj) c_tile[ii * ldc + jj] = acc[ii][jj];
    }
    return;
  }
  // Edge tile: same accumulators and per-element order, partial bounds.
  float acc[kMr][kNr];
  for (std::size_t ii = 0; ii < mr; ++ii) {
    for (std::size_t jj = 0; jj < nr; ++jj) acc[ii][jj] = c_tile[ii * ldc + jj];
  }
  for (std::size_t p = 0; p < kc; ++p) {
    const float* b_row = b_panel + p * ldb;
    float a_col[kMr];
    for (std::size_t ii = 0; ii < mr; ++ii) a_col[ii] = a[ii * a_rs + p * a_cs];
    for (std::size_t jj = 0; jj < nr; ++jj) {
      const float b_pj = b_row[jj];
      for (std::size_t ii = 0; ii < mr; ++ii) acc[ii][jj] += a_col[ii] * b_pj;
    }
  }
  for (std::size_t ii = 0; ii < mr; ++ii) {
    for (std::size_t jj = 0; jj < nr; ++jj) c_tile[ii * ldc + jj] = acc[ii][jj];
  }
}

/// Accumulates C[row_begin:row_end, :] += op(A) * B for one row slice. The
/// micro-tile geometry and kernel come from the runtime dispatch table; the
/// serial tier (kt.gemm_micro == nullptr) keeps the inlined scalar kernel
/// above as the determinism oracle.
void gemm_rows(const float* a, std::size_t a_rs, std::size_t a_cs, const float* b, float* c,
               std::size_t k, std::size_t n, std::size_t row_begin, std::size_t row_end,
               const kernels::KernelTable& kt) {
  const std::size_t tile_mr = kt.gemm_mr;
  const std::size_t tile_nr = kt.gemm_nr;
  for (std::size_t pc = 0; pc < k; pc += kKc) {
    const std::size_t kc = std::min(kKc, k - pc);
    for (std::size_t ic = row_begin; ic < row_end; ic += kMc) {
      const std::size_t mc = std::min(kMc, row_end - ic);
      for (std::size_t jc = 0; jc < n; jc += kNc) {
        const std::size_t nc = std::min(kNc, n - jc);
        for (std::size_t i = 0; i < mc; i += tile_mr) {
          const std::size_t mr = std::min(tile_mr, mc - i);
          for (std::size_t j = 0; j < nc; j += tile_nr) {
            const std::size_t nr = std::min(tile_nr, nc - j);
            if (kt.gemm_micro != nullptr) {
              kt.gemm_micro(a + (ic + i) * a_rs + pc * a_cs, a_rs, a_cs, b + pc * n + jc + j,
                            n, c + (ic + i) * n + jc + j, n, mr, nr, kc);
            } else {
              micro_kernel(a + (ic + i) * a_rs + pc * a_cs, a_rs, a_cs, b + pc * n + jc + j,
                           n, c + (ic + i) * n + jc + j, n, mr, nr, kc);
            }
          }
        }
      }
    }
  }
}

/// Row-partitioned parallel driver. Partitions align to kMc blocks so every
/// row is computed by exactly the same loop nest as the serial path.
void gemm_dispatch(const float* a, std::size_t a_rs, std::size_t a_cs, const float* b, float* c,
                   std::size_t m, std::size_t k, std::size_t n) {
  if (m == 0 || n == 0 || k == 0) return;
  const kernels::KernelTable& kt = kernels::kernel_table();
  const parallel::KernelConfig config = parallel::kernel_config();
  const std::size_t flops = 2 * m * k * n;
  if (!parallel::should_parallelize(flops, config.gemm_min_flops)) {
    gemm_rows(a, a_rs, a_cs, b, c, k, n, 0, m, kt);
    return;
  }
  parallel::kernel_parallel_ranges(m, kMc, [&](std::size_t row_begin, std::size_t row_end) {
    gemm_rows(a, a_rs, a_cs, b, c, k, n, row_begin, row_end, kt);
  });
}

// ---- A * B^T ---------------------------------------------------------------
//
// C[i,j] = dot(A row i, B row j): both operands are traversed unit-stride, so
// instead of transposing B we compute four dot products at a time with
// kLanes-wide partial sums that the compiler maps onto vector registers. The
// lanes are reduced in a fixed order, so output is deterministic and
// thread-count independent (rows are partitioned, never split).

constexpr std::size_t kLanes = 8;
constexpr std::size_t kDotCols = 4;

void gemm_tb_rows(const float* a, const float* b, float* c, std::size_t k, std::size_t n,
                  std::size_t row_begin, std::size_t row_end, kernels::GemmTbRowFn simd_row) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    if (simd_row != nullptr) {
      simd_row(a_row, b, c_row, k, n);
      continue;
    }
    std::size_t j = 0;
    for (; j + kDotCols <= n; j += kDotCols) {
      float acc[kDotCols][kLanes] = {};
      std::size_t p = 0;
      for (; p + kLanes <= k; p += kLanes) {
        for (std::size_t col = 0; col < kDotCols; ++col) {
          const float* b_row = b + (j + col) * k;
          for (std::size_t l = 0; l < kLanes; ++l) {
            acc[col][l] += a_row[p + l] * b_row[p + l];
          }
        }
      }
      for (; p < k; ++p) {
        for (std::size_t col = 0; col < kDotCols; ++col) {
          acc[col][0] += a_row[p] * b[(j + col) * k + p];
        }
      }
      for (std::size_t col = 0; col < kDotCols; ++col) {
        float total = 0.0f;
        for (std::size_t l = 0; l < kLanes; ++l) total += acc[col][l];
        c_row[j + col] = total;
      }
    }
    for (; j < n; ++j) {
      const float* b_row = b + j * k;
      float lanes[kLanes] = {};
      std::size_t p = 0;
      for (; p + kLanes <= k; p += kLanes) {
        for (std::size_t l = 0; l < kLanes; ++l) lanes[l] += a_row[p + l] * b_row[p + l];
      }
      for (; p < k; ++p) lanes[0] += a_row[p] * b_row[p];
      float total = 0.0f;
      for (std::size_t l = 0; l < kLanes; ++l) total += lanes[l];
      c_row[j] = total;
    }
  }
}

void gemm_tb_dispatch(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
                      std::size_t n) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    std::fill(c, c + m * n, 0.0f);
    return;
  }
  const kernels::GemmTbRowFn simd_row = kernels::kernel_table().gemm_tb_row;
  const parallel::KernelConfig config = parallel::kernel_config();
  const std::size_t flops = 2 * m * k * n;
  if (!parallel::should_parallelize(flops, config.gemm_min_flops)) {
    gemm_tb_rows(a, b, c, k, n, 0, m, simd_row);
    return;
  }
  parallel::kernel_parallel_ranges(m, 1, [&](std::size_t row_begin, std::size_t row_end) {
    gemm_tb_rows(a, b, c, k, n, row_begin, row_end, simd_row);
  });
}

/// True when a span op of `size` elements should fan out. The serial fast
/// path in each elementwise op below stays a plain loop — no std::function
/// is constructed unless the span crosses the threshold.
bool elementwise_parallel(std::size_t size) noexcept {
  return parallel::should_parallelize(size,
                                      parallel::kernel_config().elementwise_min_size);
}

constexpr std::size_t kElementwiseGrain = 4096;

}  // namespace

// ---- Raw-buffer GEMM -------------------------------------------------------

void matmul(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
            std::size_t n) {
  FEDGUARD_TRACE_SPAN("kernel.gemm", "matmul");
  std::fill(c, c + m * n, 0.0f);
  gemm_dispatch(a, k, 1, b, c, m, k, n);
}

void matmul_trans_a(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
                    std::size_t n) {
  FEDGUARD_TRACE_SPAN("kernel.gemm", "matmul_trans_a");
  std::fill(c, c + m * n, 0.0f);
  gemm_dispatch(a, 1, m, b, c, m, k, n);
}

void matmul_trans_a_accumulate(const float* a, const float* b, float* c, std::size_t m,
                               std::size_t k, std::size_t n) {
  FEDGUARD_TRACE_SPAN("kernel.gemm", "matmul_trans_a_accumulate");
  gemm_dispatch(a, 1, m, b, c, m, k, n);
}

void matmul_trans_b(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
                    std::size_t n) {
  FEDGUARD_TRACE_SPAN("kernel.gemm", "matmul_trans_b");
  gemm_tb_dispatch(a, b, c, m, k, n);
}

// ---- Tensor GEMM wrappers --------------------------------------------------

void matmul(const Tensor& a, const Tensor& b, Tensor& c) {
  FEDGUARD_CHECK(a.rank() == 2 && b.rank() == 2, "matmul: operands must be rank 2");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  check_matmul(m, k, b.dim(0), n, c);
  matmul(a.raw(), b.raw(), c.raw(), m, k, n);
}

void matmul_trans_a(const Tensor& a, const Tensor& b, Tensor& c) {
  FEDGUARD_CHECK(a.rank() == 2 && b.rank() == 2, "matmul: operands must be rank 2");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  check_matmul(m, k, b.dim(0), n, c);
  matmul_trans_a(a.raw(), b.raw(), c.raw(), m, k, n);
}

void matmul_trans_a_accumulate(const Tensor& a, const Tensor& b, Tensor& c) {
  FEDGUARD_CHECK(a.rank() == 2 && b.rank() == 2, "matmul: operands must be rank 2");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  check_matmul(m, k, b.dim(0), n, c);
  matmul_trans_a_accumulate(a.raw(), b.raw(), c.raw(), m, k, n);
}

void matmul_trans_b(const Tensor& a, const Tensor& b, Tensor& c) {
  FEDGUARD_CHECK(a.rank() == 2 && b.rank() == 2, "matmul: operands must be rank 2");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  check_matmul(m, k, b.dim(1), n, c);
  matmul_trans_b(a.raw(), b.raw(), c.raw(), m, k, n);
}

// ---- Elementwise -----------------------------------------------------------

void axpy(float alpha, std::span<const float> x, std::span<float> out) {
  FEDGUARD_CHECK(x.size() == out.size(), "axpy: length mismatch");
  const float* src = x.data();
  float* dst = out.data();
  const std::size_t size = x.size();
  if (!elementwise_parallel(size)) {
    for (std::size_t i = 0; i < size; ++i) dst[i] += alpha * src[i];
    return;
  }
  parallel::kernel_parallel_ranges(size, kElementwiseGrain,
                                   [=](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) dst[i] += alpha * src[i];
  });
}

void add(std::span<const float> a, std::span<const float> b, std::span<float> out) {
  FEDGUARD_CHECK(a.size() == b.size() && a.size() == out.size(), "add: length mismatch");
  const float* pa = a.data();
  const float* pb = b.data();
  float* dst = out.data();
  const std::size_t size = a.size();
  if (!elementwise_parallel(size)) {
    for (std::size_t i = 0; i < size; ++i) dst[i] = pa[i] + pb[i];
    return;
  }
  parallel::kernel_parallel_ranges(size, kElementwiseGrain,
                                   [=](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) dst[i] = pa[i] + pb[i];
  });
}

void sub(std::span<const float> a, std::span<const float> b, std::span<float> out) {
  FEDGUARD_CHECK(a.size() == b.size() && a.size() == out.size(), "sub: length mismatch");
  const float* pa = a.data();
  const float* pb = b.data();
  float* dst = out.data();
  const std::size_t size = a.size();
  if (!elementwise_parallel(size)) {
    for (std::size_t i = 0; i < size; ++i) dst[i] = pa[i] - pb[i];
    return;
  }
  parallel::kernel_parallel_ranges(size, kElementwiseGrain,
                                   [=](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) dst[i] = pa[i] - pb[i];
  });
}

void hadamard(std::span<const float> a, std::span<const float> b,
              std::span<float> out) {
  FEDGUARD_CHECK(a.size() == b.size() && a.size() == out.size(),
                 "hadamard: length mismatch");
  const float* pa = a.data();
  const float* pb = b.data();
  float* dst = out.data();
  const std::size_t size = a.size();
  if (!elementwise_parallel(size)) {
    for (std::size_t i = 0; i < size; ++i) dst[i] = pa[i] * pb[i];
    return;
  }
  parallel::kernel_parallel_ranges(size, kElementwiseGrain,
                                   [=](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) dst[i] = pa[i] * pb[i];
  });
}

void scale(std::span<float> x, float alpha) noexcept {
  float* dst = x.data();
  const std::size_t size = x.size();
  if (!elementwise_parallel(size)) {
    for (std::size_t i = 0; i < size; ++i) dst[i] *= alpha;
    return;
  }
  parallel::kernel_parallel_ranges(size, kElementwiseGrain,
                                   [=](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) dst[i] *= alpha;
  });
}

float sum(std::span<const float> x) noexcept {
  const parallel::KernelConfig config = parallel::kernel_config();
  if (!parallel::should_parallelize(x.size(), config.elementwise_min_size)) {
    double total = 0.0;
    for (const float v : x) total += v;
    return static_cast<float>(total);
  }
  // Fixed-size chunks with an ordered final reduction: the result depends on
  // the chunking, not on scheduling, so repeated runs agree exactly.
  constexpr std::size_t kChunk = std::size_t{1} << 14;
  const std::size_t chunks = (x.size() + kChunk - 1) / kChunk;
  std::vector<double> partials(chunks, 0.0);
  const float* src = x.data();
  const std::size_t size = x.size();
  parallel::parallel_for(parallel::kernel_pool(), 0, chunks, [&](std::size_t chunk) {
    const std::size_t begin = chunk * kChunk;
    const std::size_t end = std::min(size, begin + kChunk);
    double total = 0.0;
    for (std::size_t i = begin; i < end; ++i) total += src[i];
    partials[chunk] = total;
  });
  double total = 0.0;
  for (const double v : partials) total += v;
  return static_cast<float>(total);
}

std::size_t argmax(std::span<const float> x) {
  FEDGUARD_CHECK(!x.empty(), "argmax: empty input");
  return static_cast<std::size_t>(std::max_element(x.begin(), x.end()) - x.begin());
}

void add_rows_into(const Tensor& rows, std::span<float> out) {
  FEDGUARD_CHECK(rows.rank() == 2 && rows.dim(1) == out.size(),
                 "add_rows_into: shape mismatch");
  for (std::size_t r = 0; r < rows.dim(0); ++r) {
    const auto row = rows.row(r);
    for (std::size_t c = 0; c < out.size(); ++c) out[c] += row[c];
  }
}

void add_bias_rows(Tensor& rows, std::span<const float> bias) {
  FEDGUARD_CHECK(rows.rank() == 2 && rows.dim(1) == bias.size(),
                 "add_bias_rows: shape mismatch");
  for (std::size_t r = 0; r < rows.dim(0); ++r) {
    auto row = rows.row(r);
    for (std::size_t c = 0; c < bias.size(); ++c) row[c] += bias[c];
  }
}

void softmax_rows(const Tensor& logits, Tensor& out) {
  FEDGUARD_CHECK(logits.rank() == 2, "softmax_rows: logits must be rank 2");
  FEDGUARD_CHECK_FINITE(logits.data(), "softmax_rows: non-finite logit");
  if (!out.same_shape(logits)) out = Tensor{logits.shape()};
  for (std::size_t r = 0; r < logits.dim(0); ++r) {
    const auto in = logits.row(r);
    auto dst = out.row(r);
    const float max_logit = *std::max_element(in.begin(), in.end());
    float total = 0.0f;
    for (std::size_t c = 0; c < in.size(); ++c) {
      dst[c] = std::exp(in[c] - max_logit);
      total += dst[c];
    }
    const float inv = 1.0f / total;
    for (auto& v : dst) v *= inv;
  }
}

void log_softmax_rows(const Tensor& logits, Tensor& out) {
  FEDGUARD_CHECK(logits.rank() == 2, "log_softmax_rows: logits must be rank 2");
  FEDGUARD_CHECK_FINITE(logits.data(), "log_softmax_rows: non-finite logit");
  if (!out.same_shape(logits)) out = Tensor{logits.shape()};
  for (std::size_t r = 0; r < logits.dim(0); ++r) {
    const auto in = logits.row(r);
    auto dst = out.row(r);
    const float max_logit = *std::max_element(in.begin(), in.end());
    float total = 0.0f;
    for (const float v : in) total += std::exp(v - max_logit);
    const float log_norm = max_logit + std::log(total);
    for (std::size_t c = 0; c < in.size(); ++c) dst[c] = in[c] - log_norm;
  }
}

// ---- im2col / col2im -------------------------------------------------------

void im2col_strided(std::span<const float> image, const ConvGeometry& g, float* out,
                    std::size_t ld, std::size_t column_offset) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  FEDGUARD_CHECK(image.size() == g.in_channels * g.in_h * g.in_w,
                 "im2col_strided: image size mismatch");
  const auto pad = static_cast<std::ptrdiff_t>(g.padding);
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    const float* channel = image.data() + c * g.in_h * g.in_w;
    for (std::size_t kh = 0; kh < g.kernel; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel; ++kw) {
        const std::size_t patch_row = (c * g.kernel + kh) * g.kernel + kw;
        float* dst = out + patch_row * ld + column_offset;
        for (std::size_t y = 0; y < oh; ++y) {
          const std::ptrdiff_t src_y = static_cast<std::ptrdiff_t>(y + kh) - pad;
          if (src_y < 0 || src_y >= static_cast<std::ptrdiff_t>(g.in_h)) {
            std::fill(dst + y * ow, dst + (y + 1) * ow, 0.0f);
            continue;
          }
          const float* src_row = channel + static_cast<std::size_t>(src_y) * g.in_w;
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t src_x = static_cast<std::ptrdiff_t>(x + kw) - pad;
            dst[y * ow + x] = (src_x < 0 || src_x >= static_cast<std::ptrdiff_t>(g.in_w))
                                  ? 0.0f
                                  : src_row[static_cast<std::size_t>(src_x)];
          }
        }
      }
    }
  }
}

void im2col(std::span<const float> image, const ConvGeometry& g, Tensor& columns) {
  const std::size_t pixels = g.out_h() * g.out_w();
  if (columns.rank() != 2 || columns.dim(0) != g.patch_size() || columns.dim(1) != pixels) {
    columns = Tensor{{g.patch_size(), pixels}};
  }
  im2col_strided(image, g, columns.raw(), pixels, 0);
}

void im2col_batch(std::span<const float> images, const ConvGeometry& g, std::size_t count,
                  float* columns) {
  const std::size_t pixels = g.out_h() * g.out_w();
  const std::size_t image_size = g.in_channels * g.in_h * g.in_w;
  FEDGUARD_CHECK(images.size() == count * image_size, "im2col_batch: images size mismatch");
  const std::size_t ld = count * pixels;
  for (std::size_t s = 0; s < count; ++s) {
    im2col_strided(images.subspan(s * image_size, image_size), g, columns, ld, s * pixels);
  }
}

void col2im_strided_accumulate(const float* columns, std::size_t ld, std::size_t column_offset,
                               const ConvGeometry& g, std::span<float> image_grad) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  FEDGUARD_CHECK(image_grad.size() == g.in_channels * g.in_h * g.in_w,
                 "col2im_strided_accumulate: image_grad size mismatch");
  const auto pad = static_cast<std::ptrdiff_t>(g.padding);
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    float* channel = image_grad.data() + c * g.in_h * g.in_w;
    for (std::size_t kh = 0; kh < g.kernel; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel; ++kw) {
        const std::size_t patch_row = (c * g.kernel + kh) * g.kernel + kw;
        const float* src = columns + patch_row * ld + column_offset;
        for (std::size_t y = 0; y < oh; ++y) {
          const std::ptrdiff_t dst_y = static_cast<std::ptrdiff_t>(y + kh) - pad;
          if (dst_y < 0 || dst_y >= static_cast<std::ptrdiff_t>(g.in_h)) continue;
          float* dst_row = channel + static_cast<std::size_t>(dst_y) * g.in_w;
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t dst_x = static_cast<std::ptrdiff_t>(x + kw) - pad;
            if (dst_x < 0 || dst_x >= static_cast<std::ptrdiff_t>(g.in_w)) continue;
            dst_row[static_cast<std::size_t>(dst_x)] += src[y * ow + x];
          }
        }
      }
    }
  }
}

void col2im_accumulate(const Tensor& columns, const ConvGeometry& g,
                       std::span<float> image_grad) {
  const std::size_t pixels = g.out_h() * g.out_w();
  FEDGUARD_CHECK(columns.rank() == 2 && columns.dim(0) == g.patch_size() &&
                     columns.dim(1) == pixels,
                 "col2im_accumulate: columns shape mismatch");
  col2im_strided_accumulate(columns.raw(), pixels, 0, g, image_grad);
}

void col2im_batch_accumulate(const float* columns, const ConvGeometry& g, std::size_t count,
                             std::span<float> images_grad) {
  const std::size_t pixels = g.out_h() * g.out_w();
  const std::size_t image_size = g.in_channels * g.in_h * g.in_w;
  FEDGUARD_CHECK(images_grad.size() == count * image_size,
                 "col2im_batch_accumulate: images_grad size mismatch");
  const std::size_t ld = count * pixels;
  for (std::size_t s = 0; s < count; ++s) {
    col2im_strided_accumulate(columns, ld, s * pixels, g,
                              images_grad.subspan(s * image_size, image_size));
  }
}

}  // namespace fedguard::tensor
