#include "tensor/init.hpp"

#include <cmath>

namespace fedguard::tensor {

void init_uniform(Tensor& t, util::Rng& rng, float lo, float hi) {
  for (auto& v : t.data()) v = rng.uniform_float(lo, hi);
}

void init_normal(Tensor& t, util::Rng& rng, float mean, float stddev) {
  for (auto& v : t.data()) v = static_cast<float>(rng.normal(mean, stddev));
}

void init_kaiming_uniform(Tensor& t, util::Rng& rng, std::size_t fan_in) {
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in > 0 ? fan_in : 1));
  init_uniform(t, rng, -bound, bound);
}

void init_xavier_uniform(Tensor& t, util::Rng& rng, std::size_t fan_in, std::size_t fan_out) {
  const float denom = static_cast<float>(fan_in + fan_out > 0 ? fan_in + fan_out : 1);
  const float bound = std::sqrt(6.0f / denom);
  init_uniform(t, rng, -bound, bound);
}

}  // namespace fedguard::tensor
