// Serial reference kernels for the runtime dispatch table.
//
// This translation unit is compiled with -ffp-contract=off (see
// src/tensor/CMakeLists.txt): the loops below replace direct calls to
// util::squared_distance and the GeoMed Weiszfeld inner loop, both of which
// live in libraries built without FMA contraction, so the serial tier must
// perform the exact same IEEE multiply-then-add sequence to keep the
// aggregation golden digests bit-stable.

#include "tensor/kernels/kernel_impl.hpp"

namespace fedguard::tensor::kernels::serial {

double squared_distance(const float* a, const float* b, std::size_t n) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    total += d * d;
  }
  return total;
}

double squared_distance_wide(const float* point, const double* center, std::size_t n) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(point[i]) - center[i];
    total += d * d;
  }
  return total;
}

}  // namespace fedguard::tensor::kernels::serial
