#include "tensor/kernels/kernel_arch.hpp"

#include <atomic>
#include <cstdlib>

#include "tensor/kernels/kernel_impl.hpp"

namespace fedguard::tensor::kernels {

namespace {

// Dispatch state is deliberately lock-free (layer 4 of the static-analysis
// gate audits every lock): one relaxed atomic for the runtime override plus
// function-local statics (thread-safe one-time init per [stmt.dcl]) for the
// env/cpuid probes — a kernel launch never takes a mutex to pick its tier.

// Explicit override from the descriptor / set_kernel_arch(). Auto == unset.
std::atomic<KernelArch> g_override{KernelArch::Auto};

KernelArch env_arch() {
  // Read once: the environment is process-wide startup configuration, not a
  // runtime knob (same contract as FEDGUARD_THREADS). Unparseable values
  // fall back to Auto rather than aborting.
  static const KernelArch value = [] {
    KernelArch parsed = KernelArch::Auto;
    if (const char* text = std::getenv("FEDGUARD_KERNEL_ARCH")) {
      parse_kernel_arch(text, parsed);
    }
    return parsed;
  }();
  return value;
}

bool cpu_supports(KernelArch arch) {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  switch (arch) {
    case KernelArch::Avx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case KernelArch::Avx512:
      return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("fma");
    default:
      return true;
  }
#else
  return arch == KernelArch::Serial || arch == KernelArch::Auto;
#endif
}

constexpr KernelTable kSerialTable{
    KernelArch::Serial, nullptr,  4,       16, nullptr,
    &serial::squared_distance,    &serial::squared_distance_wide,
};

#if FEDGUARD_HAVE_AVX2
constexpr KernelTable kAvx2Table{
    KernelArch::Avx2,        &avx2::gemm_micro_6x16, 6, 16, &avx2::gemm_tb_row,
    &avx2::squared_distance, &avx2::squared_distance_wide,
};
#endif

#if FEDGUARD_HAVE_AVX512
constexpr KernelTable kAvx512Table{
    KernelArch::Avx512,        &avx512::gemm_micro_8x32, 8, 32, &avx512::gemm_tb_row,
    &avx512::squared_distance, &avx512::squared_distance_wide,
};
#endif

KernelArch best_available() {
  static const KernelArch value = [] {
    if (kernel_arch_available(KernelArch::Avx512)) return KernelArch::Avx512;
    if (kernel_arch_available(KernelArch::Avx2)) return KernelArch::Avx2;
    return KernelArch::Serial;
  }();
  return value;
}

/// Degrade an unavailable request down the chain instead of failing:
/// avx512 -> avx2 -> serial.
KernelArch resolve(KernelArch requested) {
  switch (requested) {
    case KernelArch::Auto:
      return best_available();
    case KernelArch::Avx512:
      if (kernel_arch_available(KernelArch::Avx512)) return KernelArch::Avx512;
      [[fallthrough]];
    case KernelArch::Avx2:
      if (kernel_arch_available(KernelArch::Avx2)) return KernelArch::Avx2;
      [[fallthrough]];
    default:
      return KernelArch::Serial;
  }
}

}  // namespace

bool parse_kernel_arch(std::string_view text, KernelArch& out) noexcept {
  if (text == "auto") out = KernelArch::Auto;
  else if (text == "serial") out = KernelArch::Serial;
  else if (text == "avx2") out = KernelArch::Avx2;
  else if (text == "avx512") out = KernelArch::Avx512;
  else return false;
  return true;
}

std::string_view to_string(KernelArch arch) noexcept {
  switch (arch) {
    case KernelArch::Auto: return "auto";
    case KernelArch::Serial: return "serial";
    case KernelArch::Avx2: return "avx2";
    case KernelArch::Avx512: return "avx512";
  }
  return "unknown";
}

bool kernel_arch_available(KernelArch arch) noexcept {
  switch (arch) {
    case KernelArch::Auto:
    case KernelArch::Serial:
      return true;
    case KernelArch::Avx2:
#if FEDGUARD_HAVE_AVX2
      return cpu_supports(KernelArch::Avx2);
#else
      return false;
#endif
    case KernelArch::Avx512:
#if FEDGUARD_HAVE_AVX512
      return cpu_supports(KernelArch::Avx512);
#else
      return false;
#endif
  }
  return false;
}

void set_kernel_arch(KernelArch arch) noexcept {
  g_override.store(arch, std::memory_order_relaxed);
}

KernelArch requested_kernel_arch() noexcept {
  const KernelArch forced = g_override.load(std::memory_order_relaxed);
  if (forced != KernelArch::Auto) return forced;
  return env_arch();
}

KernelArch active_kernel_arch() noexcept {
  return resolve(requested_kernel_arch());
}

const KernelTable& kernel_table() noexcept {
  switch (active_kernel_arch()) {
#if FEDGUARD_HAVE_AVX2
    case KernelArch::Avx2:
      return kAvx2Table;
#endif
#if FEDGUARD_HAVE_AVX512
    case KernelArch::Avx512:
      return kAvx512Table;
#endif
    default:
      return kSerialTable;
  }
}

}  // namespace fedguard::tensor::kernels
