// AVX2/FMA kernels for the runtime dispatch table. This file (and its AVX-512
// sibling) are the only translation units allowed to touch raw intrinsics
// (fedguard-lint rule `no-raw-intrinsics`); it is compiled with
// -mavx2 -mfma regardless of the library's baseline flags, and is only ever
// dispatched to after __builtin_cpu_supports() confirms the host ISA.

#include <immintrin.h>

#include "tensor/kernels/kernel_impl.hpp"

namespace fedguard::tensor::kernels::avx2 {

namespace {

// Edge tiles fall back to a scalar FMA loop. Each C element still accumulates
// its kc products in ascending p order through fused multiply-adds, the same
// per-element chain the full-width tile produces, so full and edge tiles are
// mutually consistent.
void gemm_edge(const float* a, std::size_t a_rs, std::size_t a_cs, const float* b_panel,
               std::size_t ldb, float* c_tile, std::size_t ldc, std::size_t mr,
               std::size_t nr, std::size_t kc) {
  for (std::size_t p = 0; p < kc; ++p) {
    const float* b_row = b_panel + p * ldb;
    for (std::size_t ii = 0; ii < mr; ++ii) {
      const float av = a[ii * a_rs + p * a_cs];
      float* c_row = c_tile + ii * ldc;
      for (std::size_t jj = 0; jj < nr; ++jj) {
        c_row[jj] = __builtin_fmaf(av, b_row[jj], c_row[jj]);
      }
    }
  }
}

}  // namespace

void gemm_micro_6x16(const float* a, std::size_t a_rs, std::size_t a_cs, const float* b_panel,
                     std::size_t ldb, float* c_tile, std::size_t ldc, std::size_t mr,
                     std::size_t nr, std::size_t kc) {
  if (mr != 6 || nr != 16) {
    gemm_edge(a, a_rs, a_cs, b_panel, ldb, c_tile, ldc, mr, nr, kc);
    return;
  }
  __m256 acc[6][2];
  for (std::size_t ii = 0; ii < 6; ++ii) {
    acc[ii][0] = _mm256_loadu_ps(c_tile + ii * ldc);
    acc[ii][1] = _mm256_loadu_ps(c_tile + ii * ldc + 8);
  }
  for (std::size_t p = 0; p < kc; ++p) {
    const float* b_row = b_panel + p * ldb;
    const __m256 b0 = _mm256_loadu_ps(b_row);
    const __m256 b1 = _mm256_loadu_ps(b_row + 8);
    for (std::size_t ii = 0; ii < 6; ++ii) {
      const __m256 av = _mm256_set1_ps(a[ii * a_rs + p * a_cs]);
      acc[ii][0] = _mm256_fmadd_ps(av, b0, acc[ii][0]);
      acc[ii][1] = _mm256_fmadd_ps(av, b1, acc[ii][1]);
    }
  }
  for (std::size_t ii = 0; ii < 6; ++ii) {
    _mm256_storeu_ps(c_tile + ii * ldc, acc[ii][0]);
    _mm256_storeu_ps(c_tile + ii * ldc + 8, acc[ii][1]);
  }
}

void gemm_tb_row(const float* a_row, const float* b, float* c_row, std::size_t k,
                 std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    const float* b_row = b + j * k;
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    std::size_t p = 0;
    for (; p + 16 <= k; p += 16) {
      acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a_row + p), _mm256_loadu_ps(b_row + p), acc0);
      acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a_row + p + 8), _mm256_loadu_ps(b_row + p + 8),
                             acc1);
    }
    for (; p + 8 <= k; p += 8) {
      acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a_row + p), _mm256_loadu_ps(b_row + p), acc0);
    }
    // Fixed-order reduction: lane 0..7 of (acc0 + acc1), then the scalar tail.
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, _mm256_add_ps(acc0, acc1));
    for (; p < k; ++p) lanes[0] = __builtin_fmaf(a_row[p], b_row[p], lanes[0]);
    float total = 0.0f;
    for (std::size_t l = 0; l < 8; ++l) total += lanes[l];
    c_row[j] = total;
  }
}

namespace {

// Shared shape of both distance kernels: widen 4 floats to doubles per step,
// accumulate (x - y)^2 into two alternating FMA chains, reduce the 8 lanes in
// a fixed order. Summation order differs from the serial kernel (which is a
// single sequential chain), so callers treat cross-arch results as equal only
// within tolerance — the equivalence oracle in tests/test_kernel_arch.cpp.
double reduce_lanes(__m256d acc0, __m256d acc1, double tail) {
  alignas(32) double lanes[8];
  _mm256_store_pd(lanes, acc0);
  _mm256_store_pd(lanes + 4, acc1);
  double total = 0.0;
  for (std::size_t l = 0; l < 8; ++l) total += lanes[l];
  return total + tail;
}

}  // namespace

double squared_distance(const float* a, const float* b, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i)),
                                     _mm256_cvtps_pd(_mm_loadu_ps(b + i)));
    const __m256d d1 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i + 4)),
                                     _mm256_cvtps_pd(_mm_loadu_ps(b + i + 4)));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    tail += d * d;
  }
  return reduce_lanes(acc0, acc1, tail);
}

double squared_distance_wide(const float* point, const double* center, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(point + i)),
                                     _mm256_loadu_pd(center + i));
    const __m256d d1 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(point + i + 4)),
                                     _mm256_loadu_pd(center + i + 4));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = static_cast<double>(point[i]) - center[i];
    tail += d * d;
  }
  return reduce_lanes(acc0, acc1, tail);
}

}  // namespace fedguard::tensor::kernels::avx2
