// AVX-512/FMA kernels for the runtime dispatch table. Compiled with
// -mavx512f -mfma; dispatched to only after __builtin_cpu_supports("avx512f").
// See kernel_avx2.cpp for the tier-wide conventions (edge-tile handling,
// fixed-order reductions, tolerance vs. the serial oracle).

#include <immintrin.h>

#include "tensor/kernels/kernel_impl.hpp"

namespace fedguard::tensor::kernels::avx512 {

namespace {

void gemm_edge(const float* a, std::size_t a_rs, std::size_t a_cs, const float* b_panel,
               std::size_t ldb, float* c_tile, std::size_t ldc, std::size_t mr,
               std::size_t nr, std::size_t kc) {
  for (std::size_t p = 0; p < kc; ++p) {
    const float* b_row = b_panel + p * ldb;
    for (std::size_t ii = 0; ii < mr; ++ii) {
      const float av = a[ii * a_rs + p * a_cs];
      float* c_row = c_tile + ii * ldc;
      for (std::size_t jj = 0; jj < nr; ++jj) {
        c_row[jj] = __builtin_fmaf(av, b_row[jj], c_row[jj]);
      }
    }
  }
}

}  // namespace

void gemm_micro_8x32(const float* a, std::size_t a_rs, std::size_t a_cs, const float* b_panel,
                     std::size_t ldb, float* c_tile, std::size_t ldc, std::size_t mr,
                     std::size_t nr, std::size_t kc) {
  if (mr != 8 || nr != 32) {
    gemm_edge(a, a_rs, a_cs, b_panel, ldb, c_tile, ldc, mr, nr, kc);
    return;
  }
  __m512 acc[8][2];
  for (std::size_t ii = 0; ii < 8; ++ii) {
    acc[ii][0] = _mm512_loadu_ps(c_tile + ii * ldc);
    acc[ii][1] = _mm512_loadu_ps(c_tile + ii * ldc + 16);
  }
  for (std::size_t p = 0; p < kc; ++p) {
    const float* b_row = b_panel + p * ldb;
    const __m512 b0 = _mm512_loadu_ps(b_row);
    const __m512 b1 = _mm512_loadu_ps(b_row + 16);
    for (std::size_t ii = 0; ii < 8; ++ii) {
      const __m512 av = _mm512_set1_ps(a[ii * a_rs + p * a_cs]);
      acc[ii][0] = _mm512_fmadd_ps(av, b0, acc[ii][0]);
      acc[ii][1] = _mm512_fmadd_ps(av, b1, acc[ii][1]);
    }
  }
  for (std::size_t ii = 0; ii < 8; ++ii) {
    _mm512_storeu_ps(c_tile + ii * ldc, acc[ii][0]);
    _mm512_storeu_ps(c_tile + ii * ldc + 16, acc[ii][1]);
  }
}

void gemm_tb_row(const float* a_row, const float* b, float* c_row, std::size_t k,
                 std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    const float* b_row = b + j * k;
    __m512 acc0 = _mm512_setzero_ps();
    __m512 acc1 = _mm512_setzero_ps();
    std::size_t p = 0;
    for (; p + 32 <= k; p += 32) {
      acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a_row + p), _mm512_loadu_ps(b_row + p), acc0);
      acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a_row + p + 16), _mm512_loadu_ps(b_row + p + 16),
                             acc1);
    }
    for (; p + 16 <= k; p += 16) {
      acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a_row + p), _mm512_loadu_ps(b_row + p), acc0);
    }
    alignas(64) float lanes[16];
    _mm512_store_ps(lanes, _mm512_add_ps(acc0, acc1));
    for (; p < k; ++p) lanes[0] = __builtin_fmaf(a_row[p], b_row[p], lanes[0]);
    float total = 0.0f;
    for (std::size_t l = 0; l < 16; ++l) total += lanes[l];
    c_row[j] = total;
  }
}

namespace {

double reduce_lanes(__m512d acc0, __m512d acc1, double tail) {
  alignas(64) double lanes[16];
  _mm512_store_pd(lanes, acc0);
  _mm512_store_pd(lanes + 8, acc1);
  double total = 0.0;
  for (std::size_t l = 0; l < 16; ++l) total += lanes[l];
  return total + tail;
}

}  // namespace

double squared_distance(const float* a, const float* b, std::size_t n) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512d d0 = _mm512_sub_pd(_mm512_cvtps_pd(_mm256_loadu_ps(a + i)),
                                     _mm512_cvtps_pd(_mm256_loadu_ps(b + i)));
    const __m512d d1 = _mm512_sub_pd(_mm512_cvtps_pd(_mm256_loadu_ps(a + i + 8)),
                                     _mm512_cvtps_pd(_mm256_loadu_ps(b + i + 8)));
    acc0 = _mm512_fmadd_pd(d0, d0, acc0);
    acc1 = _mm512_fmadd_pd(d1, d1, acc1);
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    tail += d * d;
  }
  return reduce_lanes(acc0, acc1, tail);
}

double squared_distance_wide(const float* point, const double* center, std::size_t n) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512d d0 = _mm512_sub_pd(_mm512_cvtps_pd(_mm256_loadu_ps(point + i)),
                                     _mm512_loadu_pd(center + i));
    const __m512d d1 = _mm512_sub_pd(_mm512_cvtps_pd(_mm256_loadu_ps(point + i + 8)),
                                     _mm512_loadu_pd(center + i + 8));
    acc0 = _mm512_fmadd_pd(d0, d0, acc0);
    acc1 = _mm512_fmadd_pd(d1, d1, acc1);
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = static_cast<double>(point[i]) - center[i];
    tail += d * d;
  }
  return reduce_lanes(acc0, acc1, tail);
}

}  // namespace fedguard::tensor::kernels::avx512
