#pragma once

#include <cstddef>
#include <string_view>

namespace fedguard::tensor::kernels {

// Runtime-selected ISA tier for the numeric hot loops (GEMM micro-kernels and
// the defense distance passes). `Serial` is the always-available determinism
// oracle — the same scalar loops the library shipped with — and the wider
// tiers are hand-written SIMD kernels compiled into dedicated translation
// units under src/tensor/kernels/ (the only directory where raw intrinsics
// are permitted; fedguard-lint rule `no-raw-intrinsics`).
//
// Selection order mirrors the thread-count knob: explicit set_kernel_arch()
// (descriptor key `kernel_arch`) > FEDGUARD_KERNEL_ARCH env var > Auto.
// Auto resolves to the widest tier both compiled in and supported by the CPU,
// and an unavailable explicit request degrades down the chain
// (avx512 -> avx2 -> serial) instead of failing.
enum class KernelArch { Auto = 0, Serial, Avx2, Avx512 };

/// GEMM register micro-kernel over an `mr x nr` tile of C (mr/nr may be the
/// partial edge sizes). Signature matches the scalar micro-kernel in ops.cpp:
/// A is addressed as a[ii * a_rs + p * a_cs], B/C row-major with unit column
/// stride, and every C element accumulates its kc products in ascending p
/// order so results are blocking- and thread-count independent.
using GemmMicroKernelFn = void (*)(const float* a, std::size_t a_rs, std::size_t a_cs,
                                   const float* b_panel, std::size_t ldb, float* c_tile,
                                   std::size_t ldc, std::size_t mr, std::size_t nr,
                                   std::size_t kc);

/// One C row of A * B^T: c_row[j] = dot(a_row, b + j * k) for j in [0, n).
using GemmTbRowFn = void (*)(const float* a_row, const float* b, float* c_row,
                             std::size_t k, std::size_t n);

/// sum((a[i] - b[i])^2) accumulated in double.
using SquaredDistanceFn = double (*)(const float* a, const float* b, std::size_t n);

/// sum((point[i] - center[i])^2) with a float point against a double center
/// (the GeoMed Weiszfeld inner loop).
using SquaredDistanceWideFn = double (*)(const float* point, const double* center,
                                         std::size_t n);

struct KernelTable {
  KernelArch arch = KernelArch::Serial;
  // nullptr selects the inlined scalar 4x16 micro-kernel in ops.cpp.
  GemmMicroKernelFn gemm_micro = nullptr;
  std::size_t gemm_mr = 4;
  std::size_t gemm_nr = 16;
  // nullptr selects the inlined lane-blocked dot loop in ops.cpp.
  GemmTbRowFn gemm_tb_row = nullptr;
  // Distance kernels are never null; the serial entries are compiled with
  // FP contraction off so they stay bit-identical to util::squared_distance
  // and the original GeoMed loop.
  SquaredDistanceFn squared_distance = nullptr;
  SquaredDistanceWideFn squared_distance_wide = nullptr;
};

/// Accepts "auto", "serial", "avx2", "avx512". Returns false (out untouched)
/// on anything else.
bool parse_kernel_arch(std::string_view text, KernelArch& out) noexcept;
std::string_view to_string(KernelArch arch) noexcept;

/// True when the tier is both compiled in and supported by this CPU.
/// Auto and Serial are always available.
bool kernel_arch_available(KernelArch arch) noexcept;

/// Explicit override (descriptor key). Auto clears the override so the env
/// var / CPU detection applies again.
void set_kernel_arch(KernelArch arch) noexcept;

/// The arch that would be requested before availability clamping:
/// override if set, else FEDGUARD_KERNEL_ARCH, else Auto.
KernelArch requested_kernel_arch() noexcept;

/// The resolved arch actually dispatched to (never Auto).
KernelArch active_kernel_arch() noexcept;

/// Dispatch table for the active arch. Cheap enough to fetch per kernel
/// launch (one relaxed atomic load plus a table lookup).
const KernelTable& kernel_table() noexcept;

}  // namespace fedguard::tensor::kernels
