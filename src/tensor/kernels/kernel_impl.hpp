#pragma once

// Internal declarations of the per-arch kernel entry points. Definitions live
// in kernel_serial.cpp / kernel_avx2.cpp / kernel_avx512.cpp, each compiled
// with its own ISA flags; this header stays intrinsic-free so kernel_arch.cpp
// can reference every tier without widening its own target ISA.

#include <cstddef>

namespace fedguard::tensor::kernels {

namespace serial {
double squared_distance(const float* a, const float* b, std::size_t n);
double squared_distance_wide(const float* point, const double* center, std::size_t n);
}  // namespace serial

namespace avx2 {
void gemm_micro_6x16(const float* a, std::size_t a_rs, std::size_t a_cs, const float* b_panel,
                     std::size_t ldb, float* c_tile, std::size_t ldc, std::size_t mr,
                     std::size_t nr, std::size_t kc);
void gemm_tb_row(const float* a_row, const float* b, float* c_row, std::size_t k,
                 std::size_t n);
double squared_distance(const float* a, const float* b, std::size_t n);
double squared_distance_wide(const float* point, const double* center, std::size_t n);
}  // namespace avx2

namespace avx512 {
void gemm_micro_8x32(const float* a, std::size_t a_rs, std::size_t a_cs, const float* b_panel,
                     std::size_t ldb, float* c_tile, std::size_t ldc, std::size_t mr,
                     std::size_t nr, std::size_t kc);
void gemm_tb_row(const float* a_row, const float* b, float* c_row, std::size_t k,
                 std::size_t n);
double squared_distance(const float* a, const float* b, std::size_t n);
double squared_distance_wide(const float* point, const double* center, std::size_t n);
}  // namespace avx512

}  // namespace fedguard::tensor::kernels
