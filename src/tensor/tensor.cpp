#include "tensor/tensor.hpp"

#include <algorithm>
#include <stdexcept>

namespace fedguard::tensor {

std::size_t Tensor::element_count(std::span<const std::size_t> shape) noexcept {
  std::size_t total = 1;
  for (const std::size_t d : shape) total *= d;
  return shape.empty() ? 0 : total;
}

Tensor::Tensor(std::vector<std::size_t> shape, float fill)
    : shape_{std::move(shape)}, data_(element_count(shape_), fill) {}

Tensor::Tensor(std::initializer_list<std::size_t> shape, float fill)
    : Tensor{std::vector<std::size_t>{shape}, fill} {}

Tensor Tensor::from_data(std::vector<std::size_t> shape, std::vector<float> data) {
  if (element_count(shape) != data.size()) {
    throw std::invalid_argument{"Tensor::from_data: shape/data size mismatch"};
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(data);
  return t;
}

float& Tensor::at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) noexcept {
  assert(rank() == 4 && n < shape_[0] && c < shape_[1] && h < shape_[2] && w < shape_[3]);
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const noexcept {
  assert(rank() == 4 && n < shape_[0] && c < shape_[1] && h < shape_[2] && w < shape_[3]);
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

void Tensor::reshape(std::vector<std::size_t> new_shape) {
  if (element_count(new_shape) != data_.size()) {
    throw std::invalid_argument{"Tensor::reshape: element count mismatch"};
  }
  shape_ = std::move(new_shape);
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  Tensor copy = *this;
  copy.reshape(std::move(new_shape));
  return copy;
}

void Tensor::fill(float value) noexcept { std::fill(data_.begin(), data_.end(), value); }

std::span<float> Tensor::row(std::size_t r) noexcept {
  assert(rank() == 2 && r < shape_[0]);
  return std::span<float>{data_}.subspan(r * shape_[1], shape_[1]);
}

std::span<const float> Tensor::row(std::size_t r) const noexcept {
  assert(rank() == 2 && r < shape_[0]);
  return std::span<const float>{data_}.subspan(r * shape_[1], shape_[1]);
}

std::string Tensor::shape_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(shape_[i]);
  }
  out += "]";
  return out;
}

}  // namespace fedguard::tensor
