#pragma once
// Numeric kernels over Tensor / float spans. These are the hot loops of the
// training substrate: GEMM variants, im2col for convolution, elementwise
// arithmetic, reductions, and row-wise softmax.

#include <span>

#include "tensor/tensor.hpp"

namespace fedguard::tensor {

// ---- GEMM -----------------------------------------------------------------
// All matrices are dense row-major. Output is overwritten unless the name
// says "accumulate".

/// C[m,n] = A[m,k] * B[k,n]
void matmul(const Tensor& a, const Tensor& b, Tensor& c);
/// C[m,n] = A[k,m]^T * B[k,n]
void matmul_trans_a(const Tensor& a, const Tensor& b, Tensor& c);
/// C[m,n] = A[m,k] * B[n,k]^T
void matmul_trans_b(const Tensor& a, const Tensor& b, Tensor& c);
/// C[m,n] += A[k,m]^T * B[k,n]  (used for weight-gradient accumulation)
void matmul_trans_a_accumulate(const Tensor& a, const Tensor& b, Tensor& c);

// ---- Elementwise ------------------------------------------------------------

/// out[i] += alpha * x[i]
void axpy(float alpha, std::span<const float> x, std::span<float> out) noexcept;
/// out[i] = a[i] + b[i]
void add(std::span<const float> a, std::span<const float> b, std::span<float> out) noexcept;
/// out[i] = a[i] - b[i]
void sub(std::span<const float> a, std::span<const float> b, std::span<float> out) noexcept;
/// out[i] = a[i] * b[i]
void hadamard(std::span<const float> a, std::span<const float> b, std::span<float> out) noexcept;
/// x[i] *= alpha
void scale(std::span<float> x, float alpha) noexcept;

// ---- Reductions -------------------------------------------------------------

[[nodiscard]] float sum(std::span<const float> x) noexcept;
/// Index of the maximum element (first on ties); requires non-empty input.
[[nodiscard]] std::size_t argmax(std::span<const float> x) noexcept;

/// Adds each row of `rows` [n, d] into `out` [d].
void add_rows_into(const Tensor& rows, std::span<float> out) noexcept;
/// Broadcast-add `bias` [d] onto every row of `rows` [n, d].
void add_bias_rows(Tensor& rows, std::span<const float> bias) noexcept;

// ---- Softmax ----------------------------------------------------------------

/// Row-wise numerically-stable softmax of logits [n, d] into out [n, d].
void softmax_rows(const Tensor& logits, Tensor& out);
/// Row-wise log-softmax of logits [n, d] into out [n, d].
void log_softmax_rows(const Tensor& logits, Tensor& out);

// ---- Convolution support ------------------------------------------------------

/// Geometry of a stride-1 2-D convolution with symmetric zero padding.
/// The paper's classifier (Table II) uses 5x5 kernels with padding 2
/// ("same" convolution: 28 -> 28 -> pool -> 14 -> 14 -> pool -> 7, giving the
/// reported 64*7*7 = 3136 flatten width).
struct ConvGeometry {
  std::size_t in_channels, in_h, in_w;
  std::size_t kernel;   // square kernel
  std::size_t padding;  // symmetric zero padding
  [[nodiscard]] std::size_t out_h() const noexcept { return in_h + 2 * padding - kernel + 1; }
  [[nodiscard]] std::size_t out_w() const noexcept { return in_w + 2 * padding - kernel + 1; }
  [[nodiscard]] std::size_t patch_size() const noexcept {
    return in_channels * kernel * kernel;
  }
};

/// im2col for one image: input [C, H, W] flattened span -> columns
/// [patch_size, out_h*out_w] (row-major), so conv becomes
/// W[out_c, patch] * cols[patch, pixels].
void im2col(std::span<const float> image, const ConvGeometry& g, Tensor& columns);

/// Inverse scatter-add of im2col: columns [patch_size, out_h*out_w] back into
/// image gradient [C, H, W] (accumulated into `image_grad`).
void col2im_accumulate(const Tensor& columns, const ConvGeometry& g,
                       std::span<float> image_grad);

}  // namespace fedguard::tensor
