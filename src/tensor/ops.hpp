#pragma once
// Numeric kernels over Tensor / float spans. These are the hot loops of the
// training substrate: GEMM variants, im2col for convolution, elementwise
// arithmetic, reductions, and row-wise softmax.

#include <span>

#include "tensor/tensor.hpp"

namespace fedguard::tensor {

// ---- GEMM -----------------------------------------------------------------
// All matrices are dense row-major. Output is overwritten unless the name
// says "accumulate". The kernels are cache-blocked and register-tiled, and
// fan out row-partitioned onto parallel::kernel_pool() above the
// parallel::KernelConfig::gemm_min_flops threshold (see docs/PERFORMANCE.md).
// Results are identical for any thread count.

/// C[m,n] = A[m,k] * B[k,n]
void matmul(const Tensor& a, const Tensor& b, Tensor& c);
/// C[m,n] = A[k,m]^T * B[k,n]
void matmul_trans_a(const Tensor& a, const Tensor& b, Tensor& c);
/// C[m,n] = A[m,k] * B[n,k]^T
void matmul_trans_b(const Tensor& a, const Tensor& b, Tensor& c);
/// C[m,n] += A[k,m]^T * B[k,n]  (used for weight-gradient accumulation)
void matmul_trans_a_accumulate(const Tensor& a, const Tensor& b, Tensor& c);

// Raw-buffer overloads of the same kernels, for callers (batched conv,
// scratch-buffer reuse) whose operands are slices of larger allocations
// rather than whole Tensors. No shape validation — sizes are trusted.

/// c[m,n] = a[m,k] * b[k,n]
void matmul(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
            std::size_t n);
/// c[m,n] = a[k,m]^T * b[k,n]
void matmul_trans_a(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
                    std::size_t n);
/// c[m,n] = a[m,k] * b[n,k]^T
void matmul_trans_b(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
                    std::size_t n);
/// c[m,n] += a[k,m]^T * b[k,n]
void matmul_trans_a_accumulate(const float* a, const float* b, float* c, std::size_t m,
                               std::size_t k, std::size_t n);

// ---- Elementwise ------------------------------------------------------------
// Shape agreement is enforced by FEDGUARD_CHECK (throws util::CheckError) in
// FEDGUARD_ASSERTS builds; unchecked otherwise.

/// out[i] += alpha * x[i]
void axpy(float alpha, std::span<const float> x, std::span<float> out);
/// out[i] = a[i] + b[i]
void add(std::span<const float> a, std::span<const float> b, std::span<float> out);
/// out[i] = a[i] - b[i]
void sub(std::span<const float> a, std::span<const float> b, std::span<float> out);
/// out[i] = a[i] * b[i]
void hadamard(std::span<const float> a, std::span<const float> b, std::span<float> out);
/// x[i] *= alpha
void scale(std::span<float> x, float alpha) noexcept;

// ---- Reductions -------------------------------------------------------------

[[nodiscard]] float sum(std::span<const float> x) noexcept;
/// Index of the maximum element (first on ties); requires non-empty input.
[[nodiscard]] std::size_t argmax(std::span<const float> x);

/// Adds each row of `rows` [n, d] into `out` [d].
void add_rows_into(const Tensor& rows, std::span<float> out);
/// Broadcast-add `bias` [d] onto every row of `rows` [n, d].
void add_bias_rows(Tensor& rows, std::span<const float> bias);

// ---- Softmax ----------------------------------------------------------------

/// Row-wise numerically-stable softmax of logits [n, d] into out [n, d].
void softmax_rows(const Tensor& logits, Tensor& out);
/// Row-wise log-softmax of logits [n, d] into out [n, d].
void log_softmax_rows(const Tensor& logits, Tensor& out);

// ---- Convolution support ------------------------------------------------------

/// Geometry of a stride-1 2-D convolution with symmetric zero padding.
/// The paper's classifier (Table II) uses 5x5 kernels with padding 2
/// ("same" convolution: 28 -> 28 -> pool -> 14 -> 14 -> pool -> 7, giving the
/// reported 64*7*7 = 3136 flatten width).
struct ConvGeometry {
  std::size_t in_channels, in_h, in_w;
  std::size_t kernel;   // square kernel
  std::size_t padding;  // symmetric zero padding
  [[nodiscard]] std::size_t out_h() const noexcept { return in_h + 2 * padding - kernel + 1; }
  [[nodiscard]] std::size_t out_w() const noexcept { return in_w + 2 * padding - kernel + 1; }
  [[nodiscard]] std::size_t patch_size() const noexcept {
    return in_channels * kernel * kernel;
  }
};

/// im2col for one image: input [C, H, W] flattened span -> columns
/// [patch_size, out_h*out_w] (row-major), so conv becomes
/// W[out_c, patch] * cols[patch, pixels].
void im2col(std::span<const float> image, const ConvGeometry& g, Tensor& columns);

/// im2col for one image into an externally laid-out column matrix whose rows
/// have leading dimension `ld`; this image's patch occupies columns
/// [column_offset, column_offset + out_h*out_w).
void im2col_strided(std::span<const float> image, const ConvGeometry& g, float* out,
                    std::size_t ld, std::size_t column_offset);

/// Batched im2col: `count` images [count, C, H, W] (flattened) into one
/// column matrix [patch_size, count * out_h*out_w], sample s occupying the
/// column range [s*pixels, (s+1)*pixels). One GEMM against this matrix
/// convolves the whole batch.
void im2col_batch(std::span<const float> images, const ConvGeometry& g, std::size_t count,
                  float* columns);

/// Inverse scatter-add of im2col: columns [patch_size, out_h*out_w] back into
/// image gradient [C, H, W] (accumulated into `image_grad`).
void col2im_accumulate(const Tensor& columns, const ConvGeometry& g,
                       std::span<float> image_grad);

/// col2im from one image's slice of an externally laid-out column matrix
/// (see im2col_strided), accumulated into `image_grad`.
void col2im_strided_accumulate(const float* columns, std::size_t ld,
                               std::size_t column_offset, const ConvGeometry& g,
                               std::span<float> image_grad);

/// Batched col2im: columns [patch_size, count * out_h*out_w] accumulated back
/// into `count` image gradients (flattened [count, C, H, W]).
void col2im_batch_accumulate(const float* columns, const ConvGeometry& g, std::size_t count,
                             std::span<float> images_grad);

}  // namespace fedguard::tensor
