#pragma once
// Weight initialization schemes. The paper does not pin initializers; we use
// the standard choices for the layer types involved (Kaiming for ReLU paths,
// Xavier for sigmoid/softmax outputs).

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace fedguard::tensor {

/// Uniform in [lo, hi).
void init_uniform(Tensor& t, util::Rng& rng, float lo, float hi);

/// Normal(mean, stddev).
void init_normal(Tensor& t, util::Rng& rng, float mean, float stddev);

/// Kaiming-He uniform for ReLU: U(-sqrt(6/fan_in), sqrt(6/fan_in)).
void init_kaiming_uniform(Tensor& t, util::Rng& rng, std::size_t fan_in);

/// Xavier-Glorot uniform: U(-sqrt(6/(fan_in+fan_out)), +...).
void init_xavier_uniform(Tensor& t, util::Rng& rng, std::size_t fan_in, std::size_t fan_out);

}  // namespace fedguard::tensor
