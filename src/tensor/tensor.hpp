#pragma once
// Dense row-major float32 tensor. This is the single numeric container used
// by the neural-network layers, the CVAE, and the aggregation operators.
//
// Deliberately simple by design: owning contiguous storage, no views or
// broadcasting engine. Layers operate on explicit shapes ([N, D] for dense
// layers, [N, C, H, W] for convolutions) and the hot loops (GEMM, im2col)
// live in ops.cpp.

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace fedguard::tensor {

class Tensor {
 public:
  /// Empty tensor (rank 0, no elements).
  Tensor() = default;

  /// Tensor of the given shape, filled with `fill`.
  explicit Tensor(std::vector<std::size_t> shape, float fill = 0.0f);
  Tensor(std::initializer_list<std::size_t> shape, float fill = 0.0f);

  /// Construct from existing data; data.size() must equal the shape product.
  [[nodiscard]] static Tensor from_data(std::vector<std::size_t> shape,
                                        std::vector<float> data);

  [[nodiscard]] const std::vector<std::size_t>& shape() const noexcept { return shape_; }
  [[nodiscard]] std::size_t rank() const noexcept { return shape_.size(); }
  [[nodiscard]] std::size_t dim(std::size_t axis) const noexcept {
    assert(axis < shape_.size());
    return shape_[axis];
  }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] std::span<float> data() noexcept { return data_; }
  [[nodiscard]] std::span<const float> data() const noexcept { return data_; }
  [[nodiscard]] float* raw() noexcept { return data_.data(); }
  [[nodiscard]] const float* raw() const noexcept { return data_.data(); }

  /// Flat element access.
  [[nodiscard]] float& operator[](std::size_t i) noexcept {
    assert(i < data_.size());
    return data_[i];
  }
  [[nodiscard]] float operator[](std::size_t i) const noexcept {
    assert(i < data_.size());
    return data_[i];
  }

  /// 2-D element access (row-major [rows, cols]).
  [[nodiscard]] float& at(std::size_t r, std::size_t c) noexcept {
    assert(rank() == 2 && r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
  }
  [[nodiscard]] float at(std::size_t r, std::size_t c) const noexcept {
    assert(rank() == 2 && r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
  }

  /// 4-D element access ([N, C, H, W]).
  [[nodiscard]] float& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) noexcept;
  [[nodiscard]] float at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const noexcept;

  /// In-place reshape; new shape must have the same element count.
  void reshape(std::vector<std::size_t> new_shape);
  /// Copy with a new shape (same element count).
  [[nodiscard]] Tensor reshaped(std::vector<std::size_t> new_shape) const;

  void fill(float value) noexcept;
  void zero() noexcept { fill(0.0f); }

  /// Row `r` of a rank-2 tensor as a span.
  [[nodiscard]] std::span<float> row(std::size_t r) noexcept;
  [[nodiscard]] std::span<const float> row(std::size_t r) const noexcept;

  [[nodiscard]] bool same_shape(const Tensor& other) const noexcept {
    return shape_ == other.shape_;
  }

  /// "[2, 3]"-style shape string for diagnostics.
  [[nodiscard]] std::string shape_string() const;

  /// Total elements for a shape vector.
  [[nodiscard]] static std::size_t element_count(std::span<const std::size_t> shape) noexcept;

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace fedguard::tensor
