#pragma once
// Experiment configuration — the single knob panel for every scenario in the
// paper's evaluation. Two presets are provided:
//
//   small_scale(): the default for benches/tests; same pipeline and dynamics
//                  at a size that regenerates every table/figure on one CPU
//                  core in minutes (reduced N/m/R, TinyCnn-class models).
//   paper_scale(): the paper's exact setup — N=100 clients, m=50 per round,
//                  R=50 rounds, Dirichlet(α=10), Table II classifier,
//                  Table III CVAE, 5 local epochs, 30 CVAE epochs, t=100.

#include <array>
#include <cstdint>
#include <string>

#include "attacks/attack.hpp"
#include "attacks/label_flip.hpp"
#include "data/partition.hpp"
#include "defenses/fedguard.hpp"
#include "defenses/spectral.hpp"
#include "fl/client.hpp"
#include "models/classifier.hpp"
#include "models/cvae.hpp"
#include "net/fault_injector.hpp"
#include "obs/exporter.hpp"
#include "parallel/kernel_config.hpp"
#include "tensor/kernels/kernel_arch.hpp"
#include "util/serialize.hpp"

namespace fedguard::core {

enum class StrategyKind {
  FedAvg,
  GeoMed,
  Krum,
  MultiKrum,
  Median,
  TrimmedMean,
  NormThreshold,
  Bulyan,
  AuxAudit,  // PDGAN-style auxiliary-dataset audit (idealized)
  Spectral,
  FedGuard,
  FedCPA,  // critical parameter analysis (arXiv 2308.09318)
};

/// Every StrategyKind, for exhaustive iteration (parse round-trip tests, the
/// scenario sweep roster). Extend in lockstep with the enum.
inline constexpr std::array<StrategyKind, 12> kAllStrategyKinds{
    StrategyKind::FedAvg,        StrategyKind::GeoMed,   StrategyKind::Krum,
    StrategyKind::MultiKrum,     StrategyKind::Median,   StrategyKind::TrimmedMean,
    StrategyKind::NormThreshold, StrategyKind::Bulyan,   StrategyKind::AuxAudit,
    StrategyKind::Spectral,      StrategyKind::FedGuard, StrategyKind::FedCPA,
};

[[nodiscard]] const char* to_string(StrategyKind kind) noexcept;
[[nodiscard]] StrategyKind strategy_kind_from_string(const std::string& text);

struct ExperimentConfig {
  // ---- Dataset --------------------------------------------------------------
  std::size_t train_samples = 2400;
  std::size_t test_samples = 600;
  std::size_t auxiliary_samples = 400;  // server-side public data (Spectral)
  std::size_t image_size = 28;
  double dirichlet_alpha = 10.0;  // paper: α = 10 (Hsu et al.)
  // Heterogeneity regime for the client split (descriptor key
  // partition_scheme); dirichlet_alpha doubles as the quantity-skew α.
  data::PartitionScheme partition_scheme = data::PartitionScheme::Dirichlet;
  std::size_t shards_per_client = 2;  // shard scheme only

  // ---- Federation ------------------------------------------------------------
  std::size_t num_clients = 24;        // paper: 100
  std::size_t clients_per_round = 8;   // paper: m = 50
  std::size_t rounds = 12;             // paper: R = 50
  float server_learning_rate = 1.0f;   // Fig. 5 ablates 0.3
  double straggler_probability = 0.0;  // sampled-client dropout simulation
  bool track_per_class_accuracy = false;  // targeted-attack analysis

  // ---- Client training --------------------------------------------------------
  fl::ClientConfig client;

  // ---- Models ----------------------------------------------------------------
  models::ClassifierArch arch = models::ClassifierArch::Mlp;
  models::CvaeSpec cvae;  // input_dim is forced to image pixels by the runner

  // ---- Attack scenario ---------------------------------------------------------
  attacks::AttackType attack = attacks::AttackType::None;
  double malicious_fraction = 0.0;
  float same_value_constant = 1.0f;  // paper: c = 1
  double noise_stddev = 1.0;         // additive noise / random update scale
  float scaling_boost = 10.0f;       // λ for the scaling (model replacement) attack
  float covert_stealth = 1.0f;       // covert attack norm budget (× honest delta)
  double krum_evade_epsilon = 0.05;  // krum_evade collusion offset (× honest delta)
  std::vector<std::pair<int, int>> flip_pairs = attacks::default_flip_pairs();

  // ---- Defense strategy ----------------------------------------------------------
  StrategyKind strategy = StrategyKind::FedGuard;
  std::size_t fedguard_total_samples = 100;  // t (paper: 2m = 100)
  defenses::FedGuardConfig::SampleMode fedguard_sample_mode =
      defenses::FedGuardConfig::SampleMode::Split;
  defenses::InternalOperator fedguard_internal_operator =
      defenses::InternalOperator::FedAvg;
  defenses::FedGuardConfig::ScoreMetric fedguard_score_metric =
      defenses::FedGuardConfig::ScoreMetric::Accuracy;
  double krum_byzantine_fraction = 0.25;
  std::size_t multi_krum_k = 3;
  double trimmed_mean_fraction = 0.2;
  double norm_threshold_multiplier = 1.0;
  double bulyan_byzantine_fraction = 0.2;
  std::size_t aux_audit_warmup_rounds = 0;  // PDGAN-style init phase length
  double fedcpa_top_fraction = 0.05;   // FedCPA critical-coordinate fraction
  double fedcpa_keep_fraction = 0.5;   // FedCPA kept-client fraction
  defenses::SpectralConfig spectral;

  // ---- Two-tier topology (ROADMAP item 2) --------------------------------------
  // Number of edge shard aggregators (descriptor key shards; 1 = single-tier).
  // The in-process server partitions sampled updates into per-shard cohorts
  // and runs the mergeable-accumulator seam; net::HierarchicalServer runs one
  // reactor thread per shard over real sockets with the same partition. See
  // docs/SHARDING.md. (Distinct from shards_per_client, the data-partition
  // scheme knob above.)
  std::size_t shards = 1;
  // Shard round deadline (socket topology; descriptor key shard_round_timeout_ms).
  std::size_t shard_round_timeout_ms = 30000;
  // Reactor cycle length / idle-connection sweep (descriptor keys
  // reactor_poll_timeout_ms / reactor_idle_timeout_ms; 0 idle = never sweep).
  std::size_t reactor_poll_timeout_ms = 20;
  std::size_t reactor_idle_timeout_ms = 0;

  // ---- Distributed federation (net::RemoteServer) ------------------------------
  // Deadlines/policy for the TCP deployment shape; ignored by the in-process
  // runner. See docs/ROBUSTNESS.md for the fault model these feed.
  std::size_t remote_accept_timeout_ms = 30000;
  std::size_t remote_round_timeout_ms = 30000;
  std::size_t remote_min_clients = 0;         // 0 = all expected
  std::size_t remote_eject_after_failures = 3;  // 0 = never eject
  // Seeded chaos plan for fault-injection runs (all probabilities default 0:
  // no faults). Replaying the same fault_seed reproduces the exact fault
  // schedule regardless of thread/socket timing.
  net::FaultPlan fault_plan;

  // ---- Compute kernels -------------------------------------------------------
  // Applied process-wide (parallel::set_kernel_config) when the federation is
  // built; keys kernel_threads / kernel_gemm_min_flops / kernel_elementwise_min
  // / kernel_distance_min in the descriptor. FEDGUARD_THREADS overrides a
  // kernel_threads of 0 (auto).
  parallel::KernelConfig kernel;
  // SIMD kernel tier (descriptor key kernel_arch: auto/serial/avx2/avx512);
  // applied process-wide via tensor::kernels::set_kernel_arch when the
  // federation is built. Auto defers to the FEDGUARD_KERNEL_ARCH env var and
  // then to the best tier the CPU supports.
  tensor::kernels::KernelArch kernel_arch = tensor::kernels::KernelArch::Auto;

  // ---- ψ-upload wire codec ---------------------------------------------------
  // Descriptor keys wire_codec (fp32/q8/fp16) and wire_chunk_size. Applied to
  // the in-process server (bit-identical simulated quantization roundtrip)
  // and the remote deployment (actual quantized reply frames) alike.
  util::WireCodec wire_codec = util::WireCodec::Fp32;
  std::size_t wire_chunk_size = util::kDefaultQ8ChunkSize;

  // ---- Observability ---------------------------------------------------------
  // Trace/metrics export for the run; keys obs_trace_path / obs_metrics_path /
  // obs_flush_every_rounds / obs_histogram_buckets in the descriptor (see
  // docs/OBSERVABILITY.md and docs/CONFIG_REFERENCE.md). Off by default.
  obs::ObsOptions obs;

  std::uint64_t seed = 42;

  /// Reduced-scale preset (the constructed default, spelled out).
  [[nodiscard]] static ExperimentConfig small_scale();
  /// The paper's exact configuration (GRID'5000 scale; hours on one core).
  [[nodiscard]] static ExperimentConfig paper_scale();

  /// Image geometry implied by the dataset fields.
  [[nodiscard]] models::ImageGeometry geometry() const noexcept {
    return models::ImageGeometry{1, image_size, image_size, 10};
  }
};

}  // namespace fedguard::core
