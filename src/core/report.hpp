#pragma once
// Plain-text reporters that render run histories in the layout of the
// paper's tables, so bench output can be compared against the paper
// side-by-side.

#include <iosfwd>
#include <string>
#include <vector>

#include "fl/metrics.hpp"

namespace fedguard::core {

/// "98.97% +- 0.17%" from a trailing-window statistic.
[[nodiscard]] std::string format_accuracy(const util::TrailingStats& stats);

/// Human-readable byte count ("348.3 MB").
[[nodiscard]] std::string format_bytes(double bytes);

/// Table IV layout: one row per strategy, one column per attack scenario,
/// each cell mean +- stddev of the trailing `window` rounds.
struct Table4Row {
  std::string strategy;
  std::vector<util::TrailingStats> cells;  // one per scenario column
};
void print_table4(std::ostream& out, const std::vector<std::string>& scenario_names,
                  const std::vector<Table4Row>& rows, std::size_t window);

/// Table V layout: per-strategy traffic and timing, with overhead percentages
/// relative to the first (FedAvg) row.
struct Table5Row {
  std::string strategy;
  double upload_bytes = 0.0;
  double download_bytes = 0.0;
  double seconds_per_round = 0.0;
};
void print_table5(std::ostream& out, const std::vector<Table5Row>& rows);

/// One accuracy-vs-round series per strategy, in CSV-ish aligned columns
/// (Fig. 4 / Fig. 5 data).
void print_accuracy_series(std::ostream& out, const std::vector<fl::RunHistory>& runs);

/// Fault-tolerance accounting for a distributed run: totals and a per-round
/// breakdown of timeouts / dropouts / corrupt frames / ejections recorded by
/// net::RemoteServer (all-zero rounds are elided from the breakdown).
void print_fault_summary(std::ostream& out, const fl::RunHistory& history);

}  // namespace fedguard::core
