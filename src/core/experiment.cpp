#include "core/experiment.hpp"

#include <stdexcept>

namespace fedguard::core {

const char* to_string(StrategyKind kind) noexcept {
  switch (kind) {
    case StrategyKind::FedAvg: return "fedavg";
    case StrategyKind::GeoMed: return "geomed";
    case StrategyKind::Krum: return "krum";
    case StrategyKind::MultiKrum: return "multi_krum";
    case StrategyKind::Median: return "median";
    case StrategyKind::TrimmedMean: return "trimmed_mean";
    case StrategyKind::NormThreshold: return "norm_threshold";
    case StrategyKind::Bulyan: return "bulyan";
    case StrategyKind::AuxAudit: return "aux_audit";
    case StrategyKind::Spectral: return "spectral";
    case StrategyKind::FedGuard: return "fedguard";
    case StrategyKind::FedCPA: return "fedcpa";
  }
  return "unknown";
}

StrategyKind strategy_kind_from_string(const std::string& text) {
  for (const StrategyKind kind : kAllStrategyKinds) {
    if (text == to_string(kind)) return kind;
  }
  std::string message = "unknown strategy: '" + text + "' (valid:";
  for (const StrategyKind kind : kAllStrategyKinds) {
    message += ' ';
    message += to_string(kind);
  }
  message += ')';
  throw std::invalid_argument{message};
}

ExperimentConfig ExperimentConfig::small_scale() {
  ExperimentConfig config;
  config.train_samples = 2400;
  config.test_samples = 600;
  config.auxiliary_samples = 400;
  config.num_clients = 24;
  config.clients_per_round = 8;
  config.rounds = 12;
  config.arch = models::ClassifierArch::Mlp;

  // lr 0.05 with momentum 0.9 is the stability sweet spot at this scale:
  // 0.1 slowly diverges over many local epochs.
  config.client.local_epochs = 3;
  config.client.batch_size = 16;
  config.client.learning_rate = 0.05f;
  config.client.momentum = 0.9f;
  config.client.cvae_epochs = 40;
  config.client.cvae_batch_size = 8;
  config.client.cvae_learning_rate = 3e-3f;

  // Scaled-down CVAE: keeps the Table III shape (shared hidden, two heads,
  // sigmoid output mirroring the conditioned input) at a size a client can
  // train on one core in under a second. The latent is deliberately tiny:
  // with ~100 samples per client a high-dimensional approximate posterior
  // never fills the N(0,1) prior, and prior samples decode to garbage; at
  // latent=2 the prior-sample digits classify at >0.9 (see DESIGN.md §1).
  config.cvae.input_dim = config.image_size * config.image_size;
  config.cvae.num_classes = 10;
  config.cvae.hidden = 96;
  config.cvae.latent = 2;

  config.fedguard_total_samples = 100;

  config.spectral.surrogate_dim = 1024;
  config.spectral.pretrain_rounds = 5;
  config.spectral.pretrain_clients = 8;
  config.spectral.vae_epochs = 60;
  return config;
}

ExperimentConfig ExperimentConfig::paper_scale() {
  ExperimentConfig config;
  // Full MNIST size: 60k train / 10k test in the original; the synthetic
  // substitute generates the same counts.
  config.train_samples = 60000;
  config.test_samples = 10000;
  config.auxiliary_samples = 2000;
  config.dirichlet_alpha = 10.0;
  config.num_clients = 100;
  config.clients_per_round = 50;
  config.rounds = 50;
  config.arch = models::ClassifierArch::PaperCnn;

  config.client.local_epochs = 5;   // paper §IV-A
  config.client.batch_size = 64;
  config.client.learning_rate = 0.05f;
  config.client.momentum = 0.9f;
  config.client.cvae_epochs = 30;   // paper §IV-D
  config.client.cvae_batch_size = 64;
  config.client.cvae_learning_rate = 1e-3f;

  // Table III CVAE.
  config.cvae = models::CvaeSpec{};

  config.fedguard_total_samples = 100;  // t = 2m = 100

  config.spectral.surrogate_dim = 5130;  // output layer of the Table II CNN
  config.spectral.pretrain_rounds = 8;
  config.spectral.pretrain_clients = 10;
  return config;
}

}  // namespace fedguard::core
