#include "core/config_file.hpp"

#include <fstream>
#include <stdexcept>

namespace fedguard::core {

namespace {

std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

std::size_t to_size(const std::string& value, const std::string& key) {
  try {
    const long long parsed = std::stoll(value);
    if (parsed < 0) throw std::invalid_argument{"negative"};
    return static_cast<std::size_t>(parsed);
  } catch (const std::exception&) {
    throw std::invalid_argument{"config: bad integer for '" + key + "': " + value};
  }
}

double to_double(const std::string& value, const std::string& key) {
  try {
    return std::stod(value);
  } catch (const std::exception&) {
    throw std::invalid_argument{"config: bad number for '" + key + "': " + value};
  }
}

bool to_bool(const std::string& value, const std::string& key) {
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  throw std::invalid_argument{"config: bad boolean for '" + key + "': " + value};
}

}  // namespace

std::map<std::string, std::string> parse_config_file(const std::string& path) {
  std::ifstream file{path};
  if (!file) throw std::runtime_error{"config: cannot open " + path};
  std::map<std::string, std::string> values;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(file, line)) {
    ++line_number;
    const auto comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto equals = trimmed.find('=');
    if (equals == std::string::npos) {
      throw std::runtime_error{"config: malformed line " + std::to_string(line_number) +
                               " in " + path + " (expected key = value)"};
    }
    const std::string key = trim(trimmed.substr(0, equals));
    const std::string value = trim(trimmed.substr(equals + 1));
    if (key.empty()) {
      throw std::runtime_error{"config: empty key at line " + std::to_string(line_number)};
    }
    values[key] = value;
  }
  return values;
}

void apply_config_values(ExperimentConfig& config,
                         const std::map<std::string, std::string>& values) {
  for (const auto& [key, value] : values) {
    if (key == "scale") continue;  // handled by load_experiment_config
    if (key == "train_samples") config.train_samples = to_size(value, key);
    else if (key == "test_samples") config.test_samples = to_size(value, key);
    else if (key == "auxiliary_samples") config.auxiliary_samples = to_size(value, key);
    else if (key == "image_size") config.image_size = to_size(value, key);
    else if (key == "dirichlet_alpha") config.dirichlet_alpha = to_double(value, key);
    else if (key == "partition_scheme")
      config.partition_scheme = data::partition_scheme_from_string(value);
    else if (key == "partition_shards_per_client")
      config.shards_per_client = to_size(value, key);
    else if (key == "num_clients") config.num_clients = to_size(value, key);
    else if (key == "clients_per_round") config.clients_per_round = to_size(value, key);
    else if (key == "rounds") config.rounds = to_size(value, key);
    else if (key == "server_learning_rate")
      config.server_learning_rate = static_cast<float>(to_double(value, key));
    else if (key == "straggler_probability")
      config.straggler_probability = to_double(value, key);
    else if (key == "track_per_class_accuracy")
      config.track_per_class_accuracy = to_bool(value, key);
    else if (key == "local_epochs") config.client.local_epochs = to_size(value, key);
    else if (key == "batch_size") config.client.batch_size = to_size(value, key);
    else if (key == "learning_rate")
      config.client.learning_rate = static_cast<float>(to_double(value, key));
    else if (key == "momentum")
      config.client.momentum = static_cast<float>(to_double(value, key));
    else if (key == "proximal_mu")
      config.client.proximal_mu = static_cast<float>(to_double(value, key));
    else if (key == "cvae_epochs") config.client.cvae_epochs = to_size(value, key);
    else if (key == "cvae_batch_size") config.client.cvae_batch_size = to_size(value, key);
    else if (key == "cvae_learning_rate")
      config.client.cvae_learning_rate = static_cast<float>(to_double(value, key));
    else if (key == "cvae_retrain_interval")
      config.client.cvae_retrain_interval = to_size(value, key);
    else if (key == "cvae_hidden") config.cvae.hidden = to_size(value, key);
    else if (key == "cvae_latent") config.cvae.latent = to_size(value, key);
    else if (key == "arch") config.arch = models::classifier_arch_from_string(value);
    else if (key == "attack") config.attack = attacks::attack_type_from_string(value);
    else if (key == "malicious_fraction")
      config.malicious_fraction = to_double(value, key);
    else if (key == "same_value_constant")
      config.same_value_constant = static_cast<float>(to_double(value, key));
    else if (key == "noise_stddev") config.noise_stddev = to_double(value, key);
    else if (key == "scaling_boost")
      config.scaling_boost = static_cast<float>(to_double(value, key));
    else if (key == "attack_covert_stealth")
      config.covert_stealth = static_cast<float>(to_double(value, key));
    else if (key == "attack_krum_evade_epsilon")
      config.krum_evade_epsilon = to_double(value, key);
    else if (key == "strategy") config.strategy = strategy_kind_from_string(value);
    else if (key == "fedguard_total_samples")
      config.fedguard_total_samples = to_size(value, key);
    else if (key == "fedguard_internal_operator") {
      if (value == "fedavg") config.fedguard_internal_operator = defenses::InternalOperator::FedAvg;
      else if (value == "geomed") config.fedguard_internal_operator = defenses::InternalOperator::GeoMed;
      else if (value == "median") config.fedguard_internal_operator = defenses::InternalOperator::Median;
      else throw std::invalid_argument{"config: unknown internal operator: " + value};
    }
    else if (key == "fedguard_score_metric") {
      if (value == "accuracy")
        config.fedguard_score_metric = defenses::FedGuardConfig::ScoreMetric::Accuracy;
      else if (value == "balanced")
        config.fedguard_score_metric = defenses::FedGuardConfig::ScoreMetric::Balanced;
      else throw std::invalid_argument{"config: unknown score metric: " + value};
    }
    else if (key == "krum_byzantine_fraction")
      config.krum_byzantine_fraction = to_double(value, key);
    else if (key == "multi_krum_k") config.multi_krum_k = to_size(value, key);
    else if (key == "trimmed_mean_fraction")
      config.trimmed_mean_fraction = to_double(value, key);
    else if (key == "bulyan_byzantine_fraction")
      config.bulyan_byzantine_fraction = to_double(value, key);
    else if (key == "aux_audit_warmup_rounds")
      config.aux_audit_warmup_rounds = to_size(value, key);
    else if (key == "fedcpa_top_fraction")
      config.fedcpa_top_fraction = to_double(value, key);
    else if (key == "fedcpa_keep_fraction")
      config.fedcpa_keep_fraction = to_double(value, key);
    else if (key == "shards") {
      config.shards = to_size(value, key);
      if (config.shards == 0) {
        throw std::invalid_argument{"config: shards must be positive"};
      }
    }
    else if (key == "shard_round_timeout_ms")
      config.shard_round_timeout_ms = to_size(value, key);
    else if (key == "reactor_poll_timeout_ms")
      config.reactor_poll_timeout_ms = to_size(value, key);
    else if (key == "reactor_idle_timeout_ms")
      config.reactor_idle_timeout_ms = to_size(value, key);
    else if (key == "remote_accept_timeout_ms")
      config.remote_accept_timeout_ms = to_size(value, key);
    else if (key == "remote_round_timeout_ms")
      config.remote_round_timeout_ms = to_size(value, key);
    else if (key == "remote_min_clients") config.remote_min_clients = to_size(value, key);
    else if (key == "remote_eject_after_failures")
      config.remote_eject_after_failures = to_size(value, key);
    else if (key == "fault_seed")
      config.fault_plan.seed = static_cast<std::uint64_t>(to_size(value, key));
    else if (key == "fault_drop_probability")
      config.fault_plan.drop_probability = to_double(value, key);
    else if (key == "fault_delay_probability")
      config.fault_plan.delay_probability = to_double(value, key);
    else if (key == "fault_delay_ms") config.fault_plan.delay_ms = to_size(value, key);
    else if (key == "fault_truncate_probability")
      config.fault_plan.truncate_probability = to_double(value, key);
    else if (key == "fault_bit_flip_probability")
      config.fault_plan.bit_flip_probability = to_double(value, key);
    else if (key == "fault_disconnect_probability")
      config.fault_plan.disconnect_probability = to_double(value, key);
    else if (key == "fault_never_connect_probability")
      config.fault_plan.never_connect_probability = to_double(value, key);
    else if (key == "kernel_arch") {
      tensor::kernels::KernelArch arch{};
      if (!tensor::kernels::parse_kernel_arch(value, arch)) {
        throw std::invalid_argument{"config: unknown kernel_arch '" + value +
                                    "' (auto/serial/avx2/avx512)"};
      }
      config.kernel_arch = arch;
    }
    else if (key == "wire_codec") {
      util::WireCodec codec{};
      if (!util::parse_wire_codec(value, codec)) {
        throw std::invalid_argument{"config: unknown wire_codec '" + value +
                                    "' (fp32/q8/fp16)"};
      }
      config.wire_codec = codec;
    }
    else if (key == "wire_chunk_size") {
      config.wire_chunk_size = to_size(value, key);
      if (config.wire_chunk_size == 0) {
        throw std::invalid_argument{"config: wire_chunk_size must be positive"};
      }
    }
    else if (key == "kernel_threads") config.kernel.threads = to_size(value, key);
    else if (key == "kernel_gemm_min_flops")
      config.kernel.gemm_min_flops = to_size(value, key);
    else if (key == "kernel_elementwise_min")
      config.kernel.elementwise_min_size = to_size(value, key);
    else if (key == "kernel_distance_min")
      config.kernel.distance_min_elements = to_size(value, key);
    else if (key == "obs_trace_path") config.obs.trace_path = value;
    else if (key == "obs_metrics_path") config.obs.metrics_path = value;
    else if (key == "obs_flush_every_rounds")
      config.obs.flush_every_rounds = to_size(value, key);
    else if (key == "obs_histogram_buckets")
      config.obs.histogram_buckets = obs::parse_histogram_buckets(value);
    else if (key == "obs_http_port") {
      const std::size_t port = to_size(value, key);
      if (port > 65535) {
        throw std::invalid_argument{"config: obs_http_port out of range"};
      }
      config.obs.http_port = static_cast<std::uint16_t>(port);
    }
    else if (key == "seed") config.seed = static_cast<std::uint64_t>(to_size(value, key));
    else throw std::invalid_argument{"config: unknown key '" + key + "'"};
  }
}

ExperimentConfig load_experiment_config(const std::string& path) {
  const auto values = parse_config_file(path);
  ExperimentConfig config;
  if (const auto it = values.find("scale"); it != values.end()) {
    if (it->second == "paper") config = ExperimentConfig::paper_scale();
    else if (it->second == "small") config = ExperimentConfig::small_scale();
    else throw std::invalid_argument{"config: unknown scale '" + it->second + "'"};
  } else {
    config = ExperimentConfig::small_scale();
  }
  apply_config_values(config, values);
  return config;
}

}  // namespace fedguard::core
