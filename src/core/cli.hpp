#pragma once
// Minimal command-line option parsing shared by the bench harnesses and
// examples. Flags are "--key value" pairs plus boolean "--key" switches.

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace fedguard::core {

class CliOptions {
 public:
  /// Parse argv; unknown flags are collected verbatim. Throws
  /// std::invalid_argument on a value-flag at end of argv.
  static CliOptions parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace fedguard::core
