#include "core/cli.hpp"

#include <stdexcept>

namespace fedguard::core {

CliOptions CliOptions::parse(int argc, const char* const* argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg{argv[i]};
    if (arg.rfind("--", 0) != 0) continue;  // skip positional args
    arg = arg.substr(2);
    // "--key=value" form.
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      options.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--key value" form, unless the next token is another flag / absent.
    if (i + 1 < argc && std::string{argv[i + 1]}.rfind("--", 0) != 0) {
      options.values_[arg] = argv[++i];
    } else {
      options.values_[arg] = "1";
    }
  }
  return options;
}

bool CliOptions::has(const std::string& key) const { return values_.contains(key); }

std::string CliOptions::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliOptions::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::stoll(it->second);
}

double CliOptions::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::stod(it->second);
}

}  // namespace fedguard::core
