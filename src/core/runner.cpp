#include "core/runner.hpp"

#include <stdexcept>

#include "data/partition.hpp"
#include "data/synthetic_mnist.hpp"
#include "defenses/auxiliary_audit.hpp"
#include "defenses/bulyan.hpp"
#include "defenses/fedavg.hpp"
#include "defenses/fedcpa.hpp"
#include "defenses/geomed.hpp"
#include "defenses/krum.hpp"
#include "defenses/median.hpp"
#include "defenses/norm_threshold.hpp"
#include "defenses/trimmed_mean.hpp"
#include "net/telemetry_http.hpp"
#include "tensor/kernels/kernel_arch.hpp"
#include "util/logging.hpp"

namespace fedguard::core {

std::unique_ptr<defenses::AggregationStrategy> make_strategy(const ExperimentConfig& config,
                                                             const data::Dataset& auxiliary) {
  switch (config.strategy) {
    case StrategyKind::FedAvg:
      return std::make_unique<defenses::FedAvgAggregator>();
    case StrategyKind::GeoMed:
      return std::make_unique<defenses::GeoMedAggregator>();
    case StrategyKind::Krum:
      return std::make_unique<defenses::KrumAggregator>(config.krum_byzantine_fraction, 1);
    case StrategyKind::MultiKrum:
      return std::make_unique<defenses::KrumAggregator>(config.krum_byzantine_fraction,
                                                        config.multi_krum_k);
    case StrategyKind::Median:
      return std::make_unique<defenses::CoordinateMedianAggregator>();
    case StrategyKind::TrimmedMean:
      return std::make_unique<defenses::TrimmedMeanAggregator>(config.trimmed_mean_fraction);
    case StrategyKind::NormThreshold:
      return std::make_unique<defenses::NormThresholdAggregator>(
          config.norm_threshold_multiplier);
    case StrategyKind::Bulyan:
      return std::make_unique<defenses::BulyanAggregator>(config.bulyan_byzantine_fraction);
    case StrategyKind::AuxAudit:
      return std::make_unique<defenses::AuxiliaryAuditAggregator>(
          config.arch, config.geometry(), auxiliary, config.aux_audit_warmup_rounds,
          config.seed ^ 0xa0d17ULL);
    case StrategyKind::Spectral:
      return std::make_unique<defenses::SpectralAggregator>(
          config.spectral, config.arch, config.geometry(), auxiliary,
          config.seed ^ 0x5bec7ea1ULL);
    case StrategyKind::FedCPA: {
      defenses::FedCpaConfig cpa;
      cpa.top_fraction = config.fedcpa_top_fraction;
      cpa.keep_fraction = config.fedcpa_keep_fraction;
      return std::make_unique<defenses::FedCpaAggregator>(cpa);
    }
    case StrategyKind::FedGuard: {
      defenses::FedGuardConfig fg;
      fg.cvae_spec = config.cvae;
      fg.total_samples = config.fedguard_total_samples;
      fg.sample_mode = config.fedguard_sample_mode;
      fg.internal_operator = config.fedguard_internal_operator;
      fg.score_metric = config.fedguard_score_metric;
      return std::make_unique<defenses::FedGuardAggregator>(fg, config.arch,
                                                            config.geometry(),
                                                            config.seed ^ 0xf3d9ULL);
    }
  }
  throw std::invalid_argument{"make_strategy: unknown strategy"};
}

fl::RunHistory Federation::run() {
  // Install the round exporter (if obs_* keys are set) for the duration of
  // the run; its destructor does the final metrics rewrite + trace flush
  // after every round (and pool task) has quiesced.
  std::unique_ptr<obs::RoundExporter> exporter;
  if (config.obs.enabled()) {
    exporter = std::make_unique<obs::RoundExporter>(config.obs);
  }
  // Live exposition (descriptor key obs_http_port / --metrics-port): the
  // in-process simulator has no reactor of its own, so scrapes get a
  // dedicated listener thread for the duration of the run.
  std::unique_ptr<net::TelemetryHttpServer> http_server;
  if (config.obs.http_port != 0) {
    http_server = std::make_unique<net::TelemetryHttpServer>(
        config.obs.http_port, net::make_registry_responder("fl_rounds_total", ""));
    util::log_info("telemetry: /metrics and /healthz live on port %u",
                   static_cast<unsigned>(http_server->port()));
  }
  fl::RunHistory history = server->run();
  history.attack = attacks::to_string(config.attack);
  history.malicious_fraction = config.malicious_fraction;
  return history;
}

Federation build_federation(ExperimentConfig config) {
  data::SyntheticMnistOptions data_options;
  data_options.image_size = config.image_size;
  data::Dataset train =
      data::generate_synthetic_mnist(config.train_samples, config.seed, data_options);
  data::Dataset test = data::generate_synthetic_mnist(config.test_samples,
                                                      config.seed ^ 0x7e57ULL, data_options);
  data::Dataset auxiliary = data::generate_synthetic_mnist(
      config.auxiliary_samples, config.seed ^ 0xa0c5ULL, data_options);
  return build_federation_with_data(std::move(config), std::move(train), std::move(test),
                                    std::move(auxiliary));
}

Federation build_federation_with_data(ExperimentConfig config, data::Dataset train_set,
                                      data::Dataset test_set, data::Dataset auxiliary_set) {
  if (train_set.height() != config.image_size || train_set.width() != config.image_size) {
    throw std::invalid_argument{"build_federation_with_data: image_size mismatch"};
  }
  // The descriptor's kernel section governs the numeric kernels everywhere in
  // this process (client SGD, CVAE synthesis, aggregation distance passes).
  parallel::set_kernel_config(config.kernel);
  tensor::kernels::set_kernel_arch(config.kernel_arch);
  // Force the CVAE to the task's pixel count (guards against preset mixing).
  config.cvae.input_dim = config.geometry().pixels();
  config.cvae.num_classes = config.geometry().num_classes;

  Federation fed;
  fed.train_set = std::move(train_set);
  fed.test_set = std::move(test_set);
  fed.auxiliary_set = std::move(auxiliary_set);

  // Heterogeneity split of the training data across the population (Alg. 1
  // line 10; Dirichlet(α) by default, descriptor key partition_scheme).
  data::PartitionOptions partition_options;
  partition_options.scheme = config.partition_scheme;
  partition_options.num_clients = config.num_clients;
  partition_options.alpha = config.dirichlet_alpha;
  partition_options.shards_per_client = config.shards_per_client;
  partition_options.seed = config.seed ^ 0xd17ULL;
  const data::Partition partition = data::make_partition(fed.train_set, partition_options);

  // Corruption: a uniform subset of floor(fraction * N) clients.
  const std::vector<bool> malicious = attacks::make_malicious_mask(
      config.num_clients, config.attack == attacks::AttackType::None ? 0.0
                                                                     : config.malicious_fraction,
      config.seed ^ 0xbadULL);
  attacks::ModelAttackOptions attack_options;
  attack_options.same_value_constant = config.same_value_constant;
  attack_options.noise_stddev = config.noise_stddev;
  attack_options.scaling_boost = config.scaling_boost;
  attack_options.covert_stealth = config.covert_stealth;
  attack_options.krum_evade_epsilon = config.krum_evade_epsilon;
  attack_options.collusion_seed = config.seed ^ 0xc011ULL;
  fed.model_attack = attacks::make_model_attack(config.attack, attack_options);

  fl::ClientConfig client_config = config.client;
  // Only FedGuard consumes decoders; other strategies skip CVAE training
  // entirely (their Table V rows have no CVAE cost).
  client_config.train_cvae = config.strategy == StrategyKind::FedGuard;

  fed.clients.reserve(config.num_clients);
  std::size_t malicious_count = 0;
  for (std::size_t i = 0; i < config.num_clients; ++i) {
    auto client = std::make_unique<fl::Client>(
        static_cast<int>(i), fed.train_set, partition[i], client_config, config.arch,
        config.geometry(), config.cvae, config.seed ^ (0xc11e27ULL + i));
    if (malicious[i]) {
      ++malicious_count;
      if (config.attack == attacks::AttackType::LabelFlip) {
        client->corrupt_with_label_flip(config.flip_pairs);
      } else if (fed.model_attack) {
        client->corrupt_with_model_attack(fed.model_attack.get());
      }
    }
    fed.clients.push_back(std::move(client));
  }
  util::log_info("federation: %zu clients (%zu malicious, attack=%s), strategy=%s",
                 config.num_clients, malicious_count, attacks::to_string(config.attack),
                 to_string(config.strategy));

  fed.strategy = make_strategy(config, fed.auxiliary_set);

  fl::ServerConfig server_config;
  server_config.clients_per_round = config.clients_per_round;
  server_config.rounds = config.rounds;
  server_config.server_learning_rate = config.server_learning_rate;
  server_config.seed = config.seed ^ 0x5e12e5ULL;
  server_config.straggler_probability = config.straggler_probability;
  server_config.track_per_class_accuracy = config.track_per_class_accuracy;
  server_config.psi_codec = config.wire_codec;
  server_config.psi_chunk = config.wire_chunk_size;
  server_config.shards = config.shards;
  fed.server = std::make_unique<fl::Server>(server_config, fed.clients, *fed.strategy,
                                            fed.test_set, config.arch, config.geometry());
  fed.config = std::move(config);
  return fed;
}

fl::RunHistory run_experiment(const ExperimentConfig& config) {
  Federation fed = build_federation(config);
  return fed.run();
}

net::RemoteServerConfig remote_server_config(const ExperimentConfig& config,
                                             std::uint16_t port) {
  net::RemoteServerConfig remote;
  remote.port = port;
  remote.expected_clients = config.num_clients;
  remote.clients_per_round = config.clients_per_round;
  remote.rounds = config.rounds;
  remote.server_learning_rate = config.server_learning_rate;
  remote.seed = config.seed ^ 0x5e12e5ULL;  // must match build_federation
  remote.accept_timeout_ms = config.remote_accept_timeout_ms;
  remote.round_timeout_ms = config.remote_round_timeout_ms;
  remote.min_clients = config.remote_min_clients;
  remote.eject_after_failures = config.remote_eject_after_failures;
  remote.psi_codec = config.wire_codec;
  remote.psi_chunk = config.wire_chunk_size;
  return remote;
}

net::HierarchicalServerConfig hierarchical_server_config(const ExperimentConfig& config) {
  net::HierarchicalServerConfig hier;
  hier.shards = config.shards;
  hier.expected_clients = config.num_clients;
  hier.clients_per_round = config.clients_per_round;
  hier.rounds = config.rounds;
  hier.server_learning_rate = config.server_learning_rate;
  hier.seed = config.seed ^ 0x5e12e5ULL;  // must match build_federation
  hier.accept_timeout_ms = config.remote_accept_timeout_ms;
  hier.round_timeout_ms = config.shard_round_timeout_ms;
  hier.reactor_poll_timeout_ms = config.reactor_poll_timeout_ms;
  hier.reactor_idle_timeout_ms = config.reactor_idle_timeout_ms;
  hier.psi_codec = config.wire_codec;
  hier.psi_chunk = config.wire_chunk_size;
  return hier;
}

}  // namespace fedguard::core
