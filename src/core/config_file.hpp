#pragma once
// Experiment descriptor files: a minimal INI-style "key = value" format so
// experiments are reproducible from a checked-in text file rather than
// command lines — the role E2CLAB's experiment descriptors play on the
// paper's testbed (§IV-E). See configs/*.conf for examples.
//
// Supported syntax: one `key = value` per line, `#` comments, blank lines.
// Unknown keys are an error (typos must not silently change an experiment).

#include <map>
#include <string>

#include "core/experiment.hpp"

namespace fedguard::core {

/// Parse an experiment descriptor into key/value pairs.
/// Throws std::runtime_error on I/O errors or malformed lines.
[[nodiscard]] std::map<std::string, std::string> parse_config_file(const std::string& path);

/// Apply a parsed descriptor onto a config (usually a preset). Throws
/// std::invalid_argument on unknown keys or unparseable values.
void apply_config_values(ExperimentConfig& config,
                         const std::map<std::string, std::string>& values);

/// Convenience: preset selected by the descriptor's `scale` key ("small",
/// default, or "paper"), then every other key applied on top.
[[nodiscard]] ExperimentConfig load_experiment_config(const std::string& path);

}  // namespace fedguard::core
