#include "core/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace fedguard::core {

std::string format_accuracy(const util::TrailingStats& stats) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2f%% +- %.2f%%", stats.mean * 100.0,
                stats.stddev * 100.0);
  return buffer;
}

std::string format_bytes(double bytes) {
  char buffer[64];
  if (bytes >= 1e9) {
    std::snprintf(buffer, sizeof(buffer), "%.2f GB", bytes / 1e9);
  } else if (bytes >= 1e6) {
    std::snprintf(buffer, sizeof(buffer), "%.1f MB", bytes / 1e6);
  } else if (bytes >= 1e3) {
    std::snprintf(buffer, sizeof(buffer), "%.1f KB", bytes / 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.0f B", bytes);
  }
  return buffer;
}

void print_table4(std::ostream& out, const std::vector<std::string>& scenario_names,
                  const std::vector<Table4Row>& rows, std::size_t window) {
  out << "Average accuracy and standard deviation over the last " << window
      << " rounds (cf. paper Table IV)\n";
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "%-16s", "Strategy");
  out << buffer;
  for (const auto& name : scenario_names) {
    std::snprintf(buffer, sizeof(buffer), " | %-24s", name.c_str());
    out << buffer;
  }
  out << "\n";
  out << std::string(16 + scenario_names.size() * 27, '-') << "\n";
  for (const auto& row : rows) {
    std::snprintf(buffer, sizeof(buffer), "%-16s", row.strategy.c_str());
    out << buffer;
    for (const auto& cell : row.cells) {
      std::snprintf(buffer, sizeof(buffer), " | %-24s", format_accuracy(cell).c_str());
      out << buffer;
    }
    out << "\n";
  }
}

void print_table5(std::ostream& out, const std::vector<Table5Row>& rows) {
  out << "System overhead of the defensive strategies (cf. paper Table V)\n";
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer), "%-16s | %-14s | %-22s | %-22s | %-20s",
                "Strategy", "Uploads/round", "Downloads/round", "Total comm/round",
                "Training time/round");
  out << buffer << "\n" << std::string(106, '-') << "\n";
  const double base_download = rows.empty() ? 0.0 : rows.front().download_bytes;
  const double base_total =
      rows.empty() ? 0.0 : rows.front().upload_bytes + rows.front().download_bytes;
  const double base_seconds = rows.empty() ? 0.0 : rows.front().seconds_per_round;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const double total = row.upload_bytes + row.download_bytes;
    std::string download = format_bytes(row.download_bytes);
    std::string total_text = format_bytes(total);
    char seconds_text[64];
    std::snprintf(seconds_text, sizeof(seconds_text), "%.2f s", row.seconds_per_round);
    std::string seconds{seconds_text};
    if (i > 0) {
      char pct[32];
      if (base_download > 0.0) {
        std::snprintf(pct, sizeof(pct), " (%+.0f%%)",
                      (row.download_bytes / base_download - 1.0) * 100.0);
        download += pct;
      }
      if (base_total > 0.0) {
        std::snprintf(pct, sizeof(pct), " (%+.0f%%)", (total / base_total - 1.0) * 100.0);
        total_text += pct;
      }
      if (base_seconds > 0.0) {
        std::snprintf(pct, sizeof(pct), " (%+.0f%%)",
                      (row.seconds_per_round / base_seconds - 1.0) * 100.0);
        seconds += pct;
      }
    }
    std::snprintf(buffer, sizeof(buffer), "%-16s | %-14s | %-22s | %-22s | %-20s",
                  row.strategy.c_str(), format_bytes(row.upload_bytes).c_str(),
                  download.c_str(), total_text.c_str(), seconds.c_str());
    out << buffer << "\n";
  }
}

void print_accuracy_series(std::ostream& out, const std::vector<fl::RunHistory>& runs) {
  if (runs.empty()) return;
  char buffer[64];
  out << "round";
  for (const auto& run : runs) {
    std::snprintf(buffer, sizeof(buffer), ",%s", run.strategy.c_str());
    out << buffer;
  }
  out << "\n";
  const std::size_t rounds =
      std::max_element(runs.begin(), runs.end(), [](const auto& a, const auto& b) {
        return a.rounds.size() < b.rounds.size();
      })->rounds.size();
  for (std::size_t r = 0; r < rounds; ++r) {
    out << r;
    for (const auto& run : runs) {
      if (r < run.rounds.size()) {
        std::snprintf(buffer, sizeof(buffer), ",%.4f", run.rounds[r].test_accuracy);
        out << buffer;
      } else {
        out << ",";
      }
    }
    out << "\n";
  }
}

void print_fault_summary(std::ostream& out, const fl::RunHistory& history) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "Fault summary (%zu rounds): %zu timeouts, %zu dropouts, "
                "%zu corrupt frames, %zu ejections",
                history.rounds.size(), history.total_timeouts(),
                history.total_dropouts(), history.total_corrupt_frames(),
                history.total_ejected());
  out << buffer << "\n";
  if (history.total_timeouts() + history.total_dropouts() +
          history.total_corrupt_frames() + history.total_ejected() ==
      0) {
    return;
  }
  std::snprintf(buffer, sizeof(buffer), "%-6s | %-8s | %-8s | %-8s | %-8s | %-9s",
                "round", "sampled", "timeout", "dropout", "corrupt", "ejected");
  out << buffer << "\n" << std::string(62, '-') << "\n";
  for (const auto& record : history.rounds) {
    if (record.timeouts + record.dropouts + record.corrupt_frames +
            record.ejected_clients ==
        0) {
      continue;  // keep the breakdown to the rounds where something happened
    }
    std::snprintf(buffer, sizeof(buffer), "%-6zu | %-8zu | %-8zu | %-8zu | %-8zu | %-9zu",
                  record.round, record.sampled_clients, record.timeouts, record.dropouts,
                  record.corrupt_frames, record.ejected_clients);
    out << buffer << "\n";
  }
}

}  // namespace fedguard::core
