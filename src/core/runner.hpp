#pragma once
// Experiment runner — the top-level entry point of the library. Builds the
// dataset, the client population (with the configured fraction corrupted),
// the defense strategy, and the server, then executes the federation.

#include <memory>

#include "core/experiment.hpp"
#include "defenses/aggregation.hpp"
#include "fl/metrics.hpp"
#include "fl/server.hpp"
#include "net/remote.hpp"
#include "net/shard.hpp"

namespace fedguard::core {

/// Build the aggregation strategy configured by `config`. `auxiliary` is the
/// server-side dataset required by Spectral (ignored by other strategies).
[[nodiscard]] std::unique_ptr<defenses::AggregationStrategy> make_strategy(
    const ExperimentConfig& config, const data::Dataset& auxiliary);

/// A fully wired federation, ready to run (exposed so examples/tests can
/// drive rounds manually or inspect clients).
struct Federation {
  data::Dataset train_set;
  data::Dataset test_set;
  data::Dataset auxiliary_set;
  std::unique_ptr<attacks::ModelAttack> model_attack;  // shared by malicious clients
  std::vector<std::unique_ptr<fl::Client>> clients;
  std::unique_ptr<defenses::AggregationStrategy> strategy;
  std::unique_ptr<fl::Server> server;
  ExperimentConfig config;

  [[nodiscard]] fl::RunHistory run();
};

/// Wire up a federation from a config (Alg. 1 Federation procedure), using
/// the synthetic dataset generator for train/test/auxiliary data.
[[nodiscard]] Federation build_federation(ExperimentConfig config);

/// Same wiring, but over caller-provided datasets (e.g. the real MNIST files
/// through data::load_idx_dataset). The config's *_samples fields are
/// ignored; image_size must match the data.
[[nodiscard]] Federation build_federation_with_data(ExperimentConfig config,
                                                    data::Dataset train_set,
                                                    data::Dataset test_set,
                                                    data::Dataset auxiliary_set);

/// Convenience: build and run in one call.
[[nodiscard]] fl::RunHistory run_experiment(const ExperimentConfig& config);

/// Map an ExperimentConfig onto the distributed server's knob panel (same
/// seed derivation as the in-process server so both paths sample identical
/// client subsets). `port` 0 picks an ephemeral port.
[[nodiscard]] net::RemoteServerConfig remote_server_config(const ExperimentConfig& config,
                                                           std::uint16_t port = 0);

/// Map an ExperimentConfig onto the two-tier topology's knob panel (seed
/// derivation matches the in-process server, so a HierarchicalServer run and
/// an fl::Server run with the same shards draw identical samples). Shard
/// listeners always bind ephemeral ports.
[[nodiscard]] net::HierarchicalServerConfig hierarchical_server_config(
    const ExperimentConfig& config);

}  // namespace fedguard::core
