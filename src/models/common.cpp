#include "models/common.hpp"

#include <cassert>
#include <stdexcept>

namespace fedguard::models {

tensor::Tensor one_hot(std::span<const int> labels, std::size_t num_classes) {
  tensor::Tensor out{{labels.size(), num_classes}};
  for (std::size_t n = 0; n < labels.size(); ++n) {
    const int label = labels[n];
    if (label < 0 || static_cast<std::size_t>(label) >= num_classes) {
      throw std::invalid_argument{"one_hot: label out of range"};
    }
    out.at(n, static_cast<std::size_t>(label)) = 1.0f;
  }
  return out;
}

tensor::Tensor concat_columns(const tensor::Tensor& a, const tensor::Tensor& b) {
  assert(a.rank() == 2 && b.rank() == 2 && a.dim(0) == b.dim(0));
  const std::size_t rows = a.dim(0);
  const std::size_t ca = a.dim(1), cb = b.dim(1);
  tensor::Tensor out{{rows, ca + cb}};
  for (std::size_t r = 0; r < rows; ++r) {
    auto dst = out.row(r);
    const auto ra = a.row(r);
    const auto rb = b.row(r);
    std::copy(ra.begin(), ra.end(), dst.begin());
    std::copy(rb.begin(), rb.end(), dst.begin() + static_cast<std::ptrdiff_t>(ca));
  }
  return out;
}

void split_columns(const tensor::Tensor& joined, std::size_t left_cols, tensor::Tensor& left,
                   tensor::Tensor& right) {
  assert(joined.rank() == 2 && left_cols <= joined.dim(1));
  const std::size_t rows = joined.dim(0);
  const std::size_t right_cols = joined.dim(1) - left_cols;
  left = tensor::Tensor{{rows, left_cols}};
  right = tensor::Tensor{{rows, right_cols}};
  for (std::size_t r = 0; r < rows; ++r) {
    const auto src = joined.row(r);
    std::copy(src.begin(), src.begin() + static_cast<std::ptrdiff_t>(left_cols),
              left.row(r).begin());
    std::copy(src.begin() + static_cast<std::ptrdiff_t>(left_cols), src.end(),
              right.row(r).begin());
  }
}

}  // namespace fedguard::models
