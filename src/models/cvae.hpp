#pragma once
// Conditional Variational AutoEncoder (Sohn et al. 2015) as configured in
// Table III of the paper:
//   encoder: Linear(794 -> 400) ReLU, then two heads Linear(400 -> 20) for
//            mu and log-variance;
//   decoder: Linear(30 -> 400) ReLU, Linear(400 -> 784+...) wait: 794?
//
// Table III lists the decoder output as 794 units; functionally only the
// leading 784 pixels are the reconstruction (the trailing 10 mirror the
// conditioning one-hot). We reproduce the 794-unit output so the parameter
// count matches the table (664,834 total), and reconstruct targets of
// x ++ one_hot(y), which trains the tail to reproduce the condition.
//
// The decoder is a detachable unit (CvaeDecoder) because FedGuard ships only
// decoder parameters θ to the server (Alg. 1 line 18).

#include <cstdint>
#include <memory>
#include <span>

#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace fedguard::models {

/// Dimensions of a CVAE instance. Defaults reproduce Table III.
struct CvaeSpec {
  std::size_t input_dim = 784;   // flattened image size
  std::size_t num_classes = 10;  // conditioning variable cardinality L
  std::size_t hidden = 400;
  std::size_t latent = 20;

  [[nodiscard]] std::size_t encoder_input() const noexcept { return input_dim + num_classes; }
  [[nodiscard]] std::size_t decoder_input() const noexcept { return latent + num_classes; }
  /// Decoder output mirrors the encoder input (x ++ one_hot(y)), per Table III.
  [[nodiscard]] std::size_t decoder_output() const noexcept { return encoder_input(); }
};

/// The conditional decoder D_theta : Z x Y -> X. Shippable to the server and
/// reconstructable from a flat parameter vector.
class CvaeDecoder {
 public:
  CvaeDecoder(const CvaeSpec& spec, std::uint64_t seed);

  /// Synthesize data: latent batch z [N, latent] + labels -> images
  /// [N, input_dim] in [0, 1] (the conditioning tail of the raw output is
  /// stripped).
  [[nodiscard]] tensor::Tensor decode(const tensor::Tensor& z, std::span<const int> labels);

  /// Raw forward on a pre-concatenated [N, latent+classes] input, returning
  /// the full [N, decoder_output] activation (used during CVAE training).
  [[nodiscard]] tensor::Tensor forward_raw(const tensor::Tensor& zy) {
    return network_.forward(zy);
  }
  [[nodiscard]] tensor::Tensor backward_raw(const tensor::Tensor& grad) {
    return network_.backward(grad);
  }

  [[nodiscard]] nn::Sequential& network() noexcept { return network_; }
  [[nodiscard]] const CvaeSpec& spec() const noexcept { return spec_; }

  [[nodiscard]] std::vector<float> parameters_flat() ;
  /// Span form of parameters_flat; `out` size must equal parameter_count().
  void copy_parameters_to(std::span<float> out);
  void load_parameters_flat(std::span<const float> flat);
  [[nodiscard]] std::size_t parameter_count();

 private:
  CvaeSpec spec_;
  nn::Sequential network_;
};

/// Result of one CVAE training pass.
struct CvaeLoss {
  float total = 0.0f;
  float reconstruction = 0.0f;
  float kl = 0.0f;
};

/// Full CVAE (encoder + decoder) with manual training wiring of the
/// reparameterization trick. Optimized with Adam as in the reference
/// implementation.
class Cvae {
 public:
  Cvae(const CvaeSpec& spec, std::uint64_t seed);

  /// One optimization step on a batch: images [N, input_dim] in [0,1],
  /// labels N ints. Returns the losses.
  CvaeLoss train_batch(const tensor::Tensor& images, std::span<const int> labels,
                       float learning_rate);

  /// Train `epochs` full passes over the data with shuffled mini-batches.
  /// Returns the mean total loss of the final epoch.
  float train(const tensor::Tensor& images, std::span<const int> labels, std::size_t epochs,
              std::size_t batch_size, float learning_rate);

  /// Encode a batch to (mu, logvar).
  struct Encoding {
    tensor::Tensor mu;
    tensor::Tensor logvar;
  };
  [[nodiscard]] Encoding encode(const tensor::Tensor& images, std::span<const int> labels);

  /// Reconstruct a batch (deterministic: z = mu).
  [[nodiscard]] tensor::Tensor reconstruct(const tensor::Tensor& images,
                                           std::span<const int> labels);

  [[nodiscard]] CvaeDecoder& decoder() noexcept { return decoder_; }
  [[nodiscard]] const CvaeSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::size_t parameter_count();

 private:
  CvaeSpec spec_;
  util::Rng rng_;
  nn::Linear encoder_hidden_;
  nn::ReLU encoder_act_;
  nn::Linear mu_head_;
  nn::Linear logvar_head_;
  CvaeDecoder decoder_;
  std::unique_ptr<nn::Adam> optimizer_;
  float optimizer_lr_ = 0.0f;

  [[nodiscard]] std::vector<nn::Parameter*> all_parameters();
};

/// Sample `count` latent vectors z ~ N(0, 1) of dimension `latent`.
[[nodiscard]] tensor::Tensor sample_standard_normal(std::size_t count, std::size_t latent,
                                                    util::Rng& rng);

/// Sample `count` labels y ~ Cat(L, alpha). `alpha` must have L entries (they
/// are normalized internally); pass a uniform vector for the paper's
/// class-balanced validation data.
[[nodiscard]] std::vector<int> sample_categorical_labels(std::size_t count,
                                                         std::span<const double> alpha,
                                                         util::Rng& rng);

}  // namespace fedguard::models
