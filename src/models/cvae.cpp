#include "models/cvae.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "models/common.hpp"
#include "nn/loss.hpp"
#include "nn/parameter_vector.hpp"

namespace fedguard::models {

CvaeDecoder::CvaeDecoder(const CvaeSpec& spec, std::uint64_t seed) : spec_{spec} {
  util::Rng rng{seed};
  network_.emplace<nn::Linear>(spec.decoder_input(), spec.hidden, rng);
  network_.emplace<nn::ReLU>();
  network_.emplace<nn::Linear>(spec.hidden, spec.decoder_output(), rng);
  network_.emplace<nn::Sigmoid>();
}

tensor::Tensor CvaeDecoder::decode(const tensor::Tensor& z, std::span<const int> labels) {
  if (z.rank() != 2 || z.dim(1) != spec_.latent || z.dim(0) != labels.size()) {
    throw std::invalid_argument{"CvaeDecoder::decode: latent shape mismatch"};
  }
  const tensor::Tensor zy = concat_columns(z, one_hot(labels, spec_.num_classes));
  const tensor::Tensor raw = network_.forward(zy);
  // Strip the conditioning tail; keep only the image reconstruction.
  tensor::Tensor images{{raw.dim(0), spec_.input_dim}};
  for (std::size_t n = 0; n < raw.dim(0); ++n) {
    const auto src = raw.row(n);
    std::copy(src.begin(), src.begin() + static_cast<std::ptrdiff_t>(spec_.input_dim),
              images.row(n).begin());
  }
  return images;
}

std::vector<float> CvaeDecoder::parameters_flat() { return nn::flatten_parameters(network_); }

void CvaeDecoder::copy_parameters_to(std::span<float> out) {
  nn::copy_parameters_to(network_, out);
}

void CvaeDecoder::load_parameters_flat(std::span<const float> flat) {
  nn::unflatten_parameters(network_, flat);
}

std::size_t CvaeDecoder::parameter_count() { return network_.parameter_count(); }

Cvae::Cvae(const CvaeSpec& spec, std::uint64_t seed)
    : spec_{spec},
      rng_{seed},
      encoder_hidden_{spec.encoder_input(), spec.hidden, rng_},
      mu_head_{spec.hidden, spec.latent, rng_},
      logvar_head_{spec.hidden, spec.latent, rng_},
      decoder_{spec, seed ^ 0xdec0deULL} {}

std::vector<nn::Parameter*> Cvae::all_parameters() {
  std::vector<nn::Parameter*> params;
  for (nn::Parameter* p : encoder_hidden_.parameters()) params.push_back(p);
  for (nn::Parameter* p : mu_head_.parameters()) params.push_back(p);
  for (nn::Parameter* p : logvar_head_.parameters()) params.push_back(p);
  for (nn::Parameter* p : decoder_.network().parameters()) params.push_back(p);
  return params;
}

std::size_t Cvae::parameter_count() {
  std::size_t total = 0;
  for (nn::Parameter* p : all_parameters()) total += p->size();
  return total;
}

Cvae::Encoding Cvae::encode(const tensor::Tensor& images, std::span<const int> labels) {
  if (images.rank() != 2 || images.dim(1) != spec_.input_dim ||
      images.dim(0) != labels.size()) {
    throw std::invalid_argument{"Cvae::encode: input shape mismatch"};
  }
  const tensor::Tensor xy = concat_columns(images, one_hot(labels, spec_.num_classes));
  const tensor::Tensor h = encoder_act_.forward(encoder_hidden_.forward(xy));
  Encoding enc;
  enc.mu = mu_head_.forward(h);
  enc.logvar = logvar_head_.forward(h);
  return enc;
}

tensor::Tensor Cvae::reconstruct(const tensor::Tensor& images, std::span<const int> labels) {
  const Encoding enc = encode(images, labels);
  return decoder_.decode(enc.mu, labels);
}

CvaeLoss Cvae::train_batch(const tensor::Tensor& images, std::span<const int> labels,
                           float learning_rate) {
  if (images.rank() != 2 || images.dim(1) != spec_.input_dim ||
      images.dim(0) != labels.size()) {
    throw std::invalid_argument{"Cvae::train_batch: input shape mismatch"};
  }
  if (!optimizer_ || optimizer_lr_ != learning_rate) {
    optimizer_ = std::make_unique<nn::Adam>(all_parameters(), learning_rate);
    optimizer_lr_ = learning_rate;
  }
  optimizer_->zero_grad();

  const std::size_t batch = images.dim(0);
  const tensor::Tensor y = one_hot(labels, spec_.num_classes);
  const tensor::Tensor xy = concat_columns(images, y);

  // ---- Forward ----
  const tensor::Tensor h = encoder_act_.forward(encoder_hidden_.forward(xy));
  const tensor::Tensor mu = mu_head_.forward(h);
  const tensor::Tensor logvar = logvar_head_.forward(h);

  // Reparameterization: z = mu + exp(0.5*logvar) * eps, eps ~ N(0,1).
  tensor::Tensor eps{{batch, spec_.latent}};
  for (auto& v : eps.data()) v = static_cast<float>(rng_.normal());
  tensor::Tensor z{{batch, spec_.latent}};
  for (std::size_t i = 0; i < z.size(); ++i) {
    z[i] = mu[i] + std::exp(0.5f * logvar[i]) * eps[i];
  }

  const tensor::Tensor zy = concat_columns(z, y);
  const tensor::Tensor reconstruction = decoder_.forward_raw(zy);

  // Target mirrors the decoder output layout: x ++ one_hot(y).
  const nn::LossResult bce = nn::binary_cross_entropy(reconstruction, xy);
  const nn::GaussianKlResult kl = nn::gaussian_kl(mu, logvar);

  // ---- Backward ----
  const tensor::Tensor grad_zy = decoder_.backward_raw(bce.grad);
  tensor::Tensor grad_z, grad_y_unused;
  split_columns(grad_zy, spec_.latent, grad_z, grad_y_unused);

  // dL/dmu = dz (z depends on mu with unit jacobian) + KL term.
  // dL/dlogvar = dz * 0.5*exp(0.5*logvar)*eps + KL term.
  tensor::Tensor grad_mu{{batch, spec_.latent}};
  tensor::Tensor grad_logvar{{batch, spec_.latent}};
  for (std::size_t i = 0; i < grad_z.size(); ++i) {
    grad_mu[i] = grad_z[i] + kl.grad_mu[i];
    grad_logvar[i] =
        grad_z[i] * 0.5f * std::exp(0.5f * logvar[i]) * eps[i] + kl.grad_logvar[i];
  }

  const tensor::Tensor grad_h_mu = mu_head_.backward(grad_mu);
  const tensor::Tensor grad_h_logvar = logvar_head_.backward(grad_logvar);
  tensor::Tensor grad_h{grad_h_mu.shape()};
  for (std::size_t i = 0; i < grad_h.size(); ++i) {
    grad_h[i] = grad_h_mu[i] + grad_h_logvar[i];
  }
  encoder_hidden_.backward(encoder_act_.backward(grad_h));

  optimizer_->step();

  CvaeLoss out;
  out.reconstruction = bce.value;
  out.kl = kl.value;
  out.total = bce.value + kl.value;
  return out;
}

float Cvae::train(const tensor::Tensor& images, std::span<const int> labels,
                  std::size_t epochs, std::size_t batch_size, float learning_rate) {
  const std::size_t count = images.dim(0);
  if (count == 0) return 0.0f;
  batch_size = std::min(batch_size, count);
  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), std::size_t{0});

  float last_epoch_loss = 0.0f;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    rng_.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < count; start += batch_size) {
      const std::size_t n = std::min(batch_size, count - start);
      tensor::Tensor batch_images{{n, spec_.input_dim}};
      std::vector<int> batch_labels(n);
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t src = order[start + i];
        const auto row = images.row(src);
        std::copy(row.begin(), row.end(), batch_images.row(i).begin());
        batch_labels[i] = labels[src];
      }
      epoch_loss += train_batch(batch_images, batch_labels, learning_rate).total;
      ++batches;
    }
    last_epoch_loss = static_cast<float>(epoch_loss / static_cast<double>(batches));
  }
  return last_epoch_loss;
}

tensor::Tensor sample_standard_normal(std::size_t count, std::size_t latent, util::Rng& rng) {
  tensor::Tensor z{{count, latent}};
  for (auto& v : z.data()) v = static_cast<float>(rng.normal());
  return z;
}

std::vector<int> sample_categorical_labels(std::size_t count, std::span<const double> alpha,
                                           util::Rng& rng) {
  std::vector<int> labels(count);
  for (auto& label : labels) {
    label = static_cast<int>(rng.categorical(alpha));
  }
  return labels;
}

}  // namespace fedguard::models
