#include "models/vae.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "nn/loss.hpp"

namespace fedguard::models {

Vae::Vae(const VaeSpec& spec, std::uint64_t seed)
    : spec_{spec},
      rng_{seed},
      encoder_hidden_{spec.input_dim, spec.hidden, rng_},
      mu_head_{spec.hidden, spec.latent, rng_},
      logvar_head_{spec.hidden, spec.latent, rng_},
      decoder_hidden_{spec.latent, spec.hidden, rng_},
      decoder_out_{spec.hidden, spec.input_dim, rng_} {
  if (spec.input_dim == 0) throw std::invalid_argument{"Vae: input_dim must be set"};
}

std::vector<nn::Parameter*> Vae::all_parameters() {
  std::vector<nn::Parameter*> params;
  for (nn::Linear* layer :
       {&encoder_hidden_, &mu_head_, &logvar_head_, &decoder_hidden_, &decoder_out_}) {
    for (nn::Parameter* p : layer->parameters()) params.push_back(p);
  }
  return params;
}

tensor::Tensor Vae::decode(const tensor::Tensor& z) {
  return decoder_out_.forward(decoder_act_.forward(decoder_hidden_.forward(z)));
}

float Vae::train_batch(const tensor::Tensor& batch, float learning_rate, float kl_weight) {
  if (batch.rank() != 2 || batch.dim(1) != spec_.input_dim) {
    throw std::invalid_argument{"Vae::train_batch: input shape mismatch"};
  }
  if (!optimizer_ || optimizer_lr_ != learning_rate) {
    optimizer_ = std::make_unique<nn::Adam>(all_parameters(), learning_rate);
    optimizer_lr_ = learning_rate;
  }
  optimizer_->zero_grad();

  const std::size_t n = batch.dim(0);
  const tensor::Tensor h = encoder_act_.forward(encoder_hidden_.forward(batch));
  const tensor::Tensor mu = mu_head_.forward(h);
  const tensor::Tensor logvar = logvar_head_.forward(h);

  tensor::Tensor eps{{n, spec_.latent}};
  for (auto& v : eps.data()) v = static_cast<float>(rng_.normal());
  tensor::Tensor z{{n, spec_.latent}};
  for (std::size_t i = 0; i < z.size(); ++i) {
    z[i] = mu[i] + std::exp(0.5f * logvar[i]) * eps[i];
  }

  const tensor::Tensor reconstruction = decode(z);
  const nn::LossResult mse = nn::mean_squared_error(reconstruction, batch);
  const nn::GaussianKlResult kl = nn::gaussian_kl(mu, logvar);

  const tensor::Tensor grad_z = decoder_hidden_.backward(
      decoder_act_.backward(decoder_out_.backward(mse.grad)));

  tensor::Tensor grad_mu{{n, spec_.latent}};
  tensor::Tensor grad_logvar{{n, spec_.latent}};
  for (std::size_t i = 0; i < grad_z.size(); ++i) {
    grad_mu[i] = grad_z[i] + kl_weight * kl.grad_mu[i];
    grad_logvar[i] = grad_z[i] * 0.5f * std::exp(0.5f * logvar[i]) * eps[i] +
                     kl_weight * kl.grad_logvar[i];
  }

  const tensor::Tensor grad_h_mu = mu_head_.backward(grad_mu);
  const tensor::Tensor grad_h_logvar = logvar_head_.backward(grad_logvar);
  tensor::Tensor grad_h{grad_h_mu.shape()};
  for (std::size_t i = 0; i < grad_h.size(); ++i) grad_h[i] = grad_h_mu[i] + grad_h_logvar[i];
  encoder_hidden_.backward(encoder_act_.backward(grad_h));

  optimizer_->step();
  return mse.value + kl_weight * kl.value;
}

float Vae::train(const tensor::Tensor& data, std::size_t epochs, std::size_t batch_size,
                 float learning_rate, float kl_weight) {
  const std::size_t count = data.dim(0);
  if (count == 0) return 0.0f;
  batch_size = std::min(batch_size, count);
  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), std::size_t{0});

  float last_epoch_loss = 0.0f;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    rng_.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < count; start += batch_size) {
      const std::size_t n = std::min(batch_size, count - start);
      tensor::Tensor batch{{n, spec_.input_dim}};
      for (std::size_t i = 0; i < n; ++i) {
        const auto row = data.row(order[start + i]);
        std::copy(row.begin(), row.end(), batch.row(i).begin());
      }
      epoch_loss += train_batch(batch, learning_rate, kl_weight);
      ++batches;
    }
    last_epoch_loss = static_cast<float>(epoch_loss / static_cast<double>(batches));
  }
  return last_epoch_loss;
}

tensor::Tensor Vae::reconstruct(const tensor::Tensor& batch) {
  const tensor::Tensor h = encoder_act_.forward(encoder_hidden_.forward(batch));
  const tensor::Tensor mu = mu_head_.forward(h);
  return decode(mu);
}

std::vector<double> Vae::reconstruction_errors(const tensor::Tensor& batch) {
  const tensor::Tensor reconstruction = reconstruct(batch);
  std::vector<double> errors(batch.dim(0));
  for (std::size_t n = 0; n < batch.dim(0); ++n) {
    const auto original = batch.row(n);
    const auto recon = reconstruction.row(n);
    double total = 0.0;
    for (std::size_t i = 0; i < original.size(); ++i) {
      const double d = static_cast<double>(original[i]) - static_cast<double>(recon[i]);
      total += d * d;
    }
    errors[n] = total / static_cast<double>(original.size());
  }
  return errors;
}

}  // namespace fedguard::models
