#pragma once
// Shared helpers for the model zoo: one-hot encoding and column-wise
// concatenation used by the conditional pathways of the CVAE.

#include <span>

#include "tensor/tensor.hpp"

namespace fedguard::models {

/// One-hot encode labels into [N, num_classes].
[[nodiscard]] tensor::Tensor one_hot(std::span<const int> labels, std::size_t num_classes);

/// Concatenate two rank-2 tensors along columns: [N, A] ++ [N, B] -> [N, A+B].
[[nodiscard]] tensor::Tensor concat_columns(const tensor::Tensor& a, const tensor::Tensor& b);

/// Split the column gradient of a concatenated tensor back into two parts.
void split_columns(const tensor::Tensor& joined, std::size_t left_cols, tensor::Tensor& left,
                   tensor::Tensor& right);

}  // namespace fedguard::models
