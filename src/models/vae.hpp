#pragma once
// Unconditional VAE over model-update surrogate vectors, used by the
// SPECTRAL baseline (Li et al., "Learning to Detect Malicious Clients for
// Robust Federated Learning"). The server pre-trains this VAE on surrogates
// of benign updates; at defense time, updates whose surrogate reconstructs
// poorly are excluded.
//
// Unlike the image CVAE, surrogates are unbounded reals, so the decoder
// output is linear and the reconstruction loss is MSE.

#include <cstdint>
#include <memory>
#include <span>

#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/optimizer.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace fedguard::models {

struct VaeSpec {
  std::size_t input_dim = 0;  // surrogate dimension (set from the model)
  std::size_t hidden = 64;
  std::size_t latent = 8;
};

class Vae {
 public:
  Vae(const VaeSpec& spec, std::uint64_t seed);

  /// One Adam step on a batch of surrogates [N, input_dim]; returns the
  /// total loss (MSE + KL weight * KL).
  float train_batch(const tensor::Tensor& batch, float learning_rate,
                    float kl_weight = 1e-3f);

  /// Train with shuffled mini-batches; returns final-epoch mean loss.
  float train(const tensor::Tensor& data, std::size_t epochs, std::size_t batch_size,
              float learning_rate, float kl_weight = 1e-3f);

  /// Deterministic reconstruction (z = mu) of a batch.
  [[nodiscard]] tensor::Tensor reconstruct(const tensor::Tensor& batch);

  /// Per-sample mean squared reconstruction error.
  [[nodiscard]] std::vector<double> reconstruction_errors(const tensor::Tensor& batch);

  [[nodiscard]] const VaeSpec& spec() const noexcept { return spec_; }

 private:
  VaeSpec spec_;
  util::Rng rng_;
  nn::Linear encoder_hidden_;
  nn::ReLU encoder_act_;
  nn::Linear mu_head_;
  nn::Linear logvar_head_;
  nn::Linear decoder_hidden_;
  nn::ReLU decoder_act_;
  nn::Linear decoder_out_;
  std::unique_ptr<nn::Adam> optimizer_;
  float optimizer_lr_ = 0.0f;

  [[nodiscard]] std::vector<nn::Parameter*> all_parameters();
  [[nodiscard]] tensor::Tensor decode(const tensor::Tensor& z);
};

}  // namespace fedguard::models
