#pragma once
// Classifier architectures for the federated learning task.
//
// PaperCnn reproduces Table II of the paper exactly: two ReLU 5x5
// convolutions (32 and 64 channels, padding 2 so the feature map halves only
// at the pools: 28 -> 14 -> 7), each followed by 2x2 max pooling, then a
// 512-unit ReLU FC layer and a 10-unit output layer. Weight-only parameter
// count is 1,662,752 as reported in the table (the table excludes biases).
//
// TinyCnn and Mlp are scale-reduced classifiers with the same interface, used
// by the default benchmark configurations so the full table/figure sweep
// regenerates on a single CPU core.

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "tensor/tensor.hpp"

namespace fedguard::models {

enum class ClassifierArch {
  PaperCnn,  // Table II: 1.66 M weights
  TinyCnn,   // 8/16-channel CNN for reduced-scale benchmarking
  Mlp,       // Flatten -> 128 ReLU -> classes
};

[[nodiscard]] const char* to_string(ClassifierArch arch) noexcept;
/// Parse "paper_cnn" / "tiny_cnn" / "mlp"; throws std::invalid_argument.
[[nodiscard]] ClassifierArch classifier_arch_from_string(const std::string& text);

/// Input image geometry of the learning task.
struct ImageGeometry {
  std::size_t channels = 1;
  std::size_t height = 28;
  std::size_t width = 28;
  std::size_t num_classes = 10;

  [[nodiscard]] std::size_t pixels() const noexcept { return channels * height * width; }
};

/// A classifier is a Sequential taking [N, C, H, W] images and producing
/// [N, num_classes] logits, with convenience training/eval helpers.
class Classifier {
 public:
  Classifier(ClassifierArch arch, ImageGeometry geometry, std::uint64_t seed);

  /// Logits for a batch of images [N, C, H, W].
  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& images) {
    return network_->forward(images);
  }

  /// One SGD step on a mini-batch; returns the batch loss. When
  /// `proximal_mu` > 0 a FedProx proximal term mu/2 * ||psi - anchor||^2 is
  /// added to the objective (Sahu et al. 2018; the paper's §VI-C mentions
  /// FedProx as a candidate internal operator) — `anchor` must then be a flat
  /// parameter vector of the same length as parameters_flat().
  float train_batch(const tensor::Tensor& images, std::span<const int> labels,
                    float learning_rate, float momentum = 0.0f,
                    float proximal_mu = 0.0f, std::span<const float> anchor = {});

  /// Fraction of correctly classified samples in [0, 1].
  [[nodiscard]] double evaluate_accuracy(const tensor::Tensor& images,
                                         std::span<const int> labels);

  /// Per-class recall: element c is the fraction of class-c samples
  /// classified correctly (0 if the class is absent from `labels`). Used for
  /// targeted-attack analysis (label flipping hits specific classes).
  [[nodiscard]] std::vector<double> evaluate_per_class(const tensor::Tensor& images,
                                                       std::span<const int> labels);

  /// Row-major confusion matrix [num_classes x num_classes]: entry (t, p) is
  /// the number of class-t samples predicted as class p. Shows exactly where
  /// a targeted label-flip attack moved the errors (5->7, 4->2).
  [[nodiscard]] std::vector<std::size_t> confusion_matrix(const tensor::Tensor& images,
                                                          std::span<const int> labels);

  [[nodiscard]] nn::Sequential& network() noexcept { return *network_; }
  [[nodiscard]] ClassifierArch arch() const noexcept { return arch_; }
  [[nodiscard]] const ImageGeometry& geometry() const noexcept { return geometry_; }

  [[nodiscard]] std::vector<float> parameters_flat();
  /// Zero-copy export: write the flat parameters into `out` (size must equal
  /// parameter_count() exactly). Fills round-arena rows without allocating.
  void copy_parameters_to(std::span<float> out);
  void load_parameters_flat(std::span<const float> flat);
  [[nodiscard]] std::size_t parameter_count();

 private:
  ClassifierArch arch_;
  ImageGeometry geometry_;
  std::unique_ptr<nn::Sequential> network_;
  // Momentum state must survive across train_batch calls within an epoch, so
  // the optimizer is owned lazily once the first training step happens.
  std::unique_ptr<nn::Sgd> optimizer_;
  float optimizer_lr_ = 0.0f;
  float optimizer_momentum_ = 0.0f;
};

/// Build the raw network for an architecture (used by Classifier and tests).
[[nodiscard]] std::unique_ptr<nn::Sequential> build_classifier_network(
    ClassifierArch arch, const ImageGeometry& geometry, std::uint64_t seed);

}  // namespace fedguard::models
