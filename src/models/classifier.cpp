#include "models/classifier.hpp"

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/maxpool2d.hpp"
#include "nn/optimizer.hpp"
#include "nn/parameter_vector.hpp"
#include "util/rng.hpp"

namespace fedguard::models {

const char* to_string(ClassifierArch arch) noexcept {
  switch (arch) {
    case ClassifierArch::PaperCnn: return "paper_cnn";
    case ClassifierArch::TinyCnn: return "tiny_cnn";
    case ClassifierArch::Mlp: return "mlp";
  }
  return "unknown";
}

ClassifierArch classifier_arch_from_string(const std::string& text) {
  if (text == "paper_cnn") return ClassifierArch::PaperCnn;
  if (text == "tiny_cnn") return ClassifierArch::TinyCnn;
  if (text == "mlp") return ClassifierArch::Mlp;
  throw std::invalid_argument{"unknown classifier arch: " + text};
}

std::unique_ptr<nn::Sequential> build_classifier_network(ClassifierArch arch,
                                                         const ImageGeometry& g,
                                                         std::uint64_t seed) {
  util::Rng rng{seed};
  auto net = std::make_unique<nn::Sequential>();
  switch (arch) {
    case ClassifierArch::PaperCnn: {
      // Table II. Padding-2 "same" convolutions; pooling halves 28->14->7.
      net->emplace<nn::Conv2d>(g.channels, 32, 5, g.height, g.width, rng, 2);
      net->emplace<nn::ReLU>();
      net->emplace<nn::MaxPool2d>(2);
      const std::size_t h2 = g.height / 2, w2 = g.width / 2;
      net->emplace<nn::Conv2d>(32, 64, 5, h2, w2, rng, 2);
      net->emplace<nn::ReLU>();
      net->emplace<nn::MaxPool2d>(2);
      net->emplace<nn::Flatten>();
      const std::size_t flat = 64 * (h2 / 2) * (w2 / 2);
      net->emplace<nn::Linear>(flat, 512, rng);
      net->emplace<nn::ReLU>();
      net->emplace<nn::Linear>(512, g.num_classes, rng);
      break;
    }
    case ClassifierArch::TinyCnn: {
      net->emplace<nn::Conv2d>(g.channels, 8, 5, g.height, g.width, rng, 2);
      net->emplace<nn::ReLU>();
      net->emplace<nn::MaxPool2d>(2);
      const std::size_t h2 = g.height / 2, w2 = g.width / 2;
      net->emplace<nn::Conv2d>(8, 16, 5, h2, w2, rng, 2);
      net->emplace<nn::ReLU>();
      net->emplace<nn::MaxPool2d>(2);
      net->emplace<nn::Flatten>();
      const std::size_t flat = 16 * (h2 / 2) * (w2 / 2);
      net->emplace<nn::Linear>(flat, 64, rng);
      net->emplace<nn::ReLU>();
      net->emplace<nn::Linear>(64, g.num_classes, rng);
      break;
    }
    case ClassifierArch::Mlp: {
      net->emplace<nn::Flatten>();
      net->emplace<nn::Linear>(g.pixels(), 128, rng);
      net->emplace<nn::ReLU>();
      net->emplace<nn::Linear>(128, g.num_classes, rng);
      break;
    }
  }
  return net;
}

Classifier::Classifier(ClassifierArch arch, ImageGeometry geometry, std::uint64_t seed)
    : arch_{arch},
      geometry_{geometry},
      network_{build_classifier_network(arch, geometry, seed)} {}

float Classifier::train_batch(const tensor::Tensor& images, std::span<const int> labels,
                              float learning_rate, float momentum, float proximal_mu,
                              std::span<const float> anchor) {
  if (!optimizer_ || optimizer_lr_ != learning_rate || optimizer_momentum_ != momentum) {
    optimizer_ = std::make_unique<nn::Sgd>(network_->parameters(), learning_rate, momentum);
    optimizer_lr_ = learning_rate;
    optimizer_momentum_ = momentum;
  }
  network_->set_training(true);
  optimizer_->zero_grad();
  const tensor::Tensor logits = network_->forward(images);
  const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
  network_->backward(loss.grad);
  if (proximal_mu > 0.0f) {
    // FedProx: d/dpsi [mu/2 ||psi - anchor||^2] = mu (psi - anchor).
    std::size_t offset = 0;
    for (nn::Parameter* p : network_->parameters()) {
      if (offset + p->size() > anchor.size()) {
        throw std::invalid_argument{"train_batch: proximal anchor too short"};
      }
      auto grad = p->grad.data();
      const auto value = p->value.data();
      for (std::size_t i = 0; i < grad.size(); ++i) {
        grad[i] += proximal_mu * (value[i] - anchor[offset + i]);
      }
      offset += p->size();
    }
  }
  optimizer_->step();
  return loss.value;
}

double Classifier::evaluate_accuracy(const tensor::Tensor& images,
                                     std::span<const int> labels) {
  if (labels.empty()) return 0.0;
  network_->set_training(false);
  const tensor::Tensor logits = network_->forward(images);
  network_->set_training(true);
  return static_cast<double>(nn::count_correct(logits, labels)) /
         static_cast<double>(labels.size());
}

std::vector<double> Classifier::evaluate_per_class(const tensor::Tensor& images,
                                                   std::span<const int> labels) {
  std::vector<std::size_t> correct(geometry_.num_classes, 0);
  std::vector<std::size_t> total(geometry_.num_classes, 0);
  network_->set_training(false);
  const tensor::Tensor logits = network_->forward(images);
  network_->set_training(true);
  for (std::size_t n = 0; n < labels.size(); ++n) {
    const auto label = static_cast<std::size_t>(labels[n]);
    ++total[label];
    if (tensor::argmax(logits.row(n)) == label) ++correct[label];
  }
  std::vector<double> recall(geometry_.num_classes, 0.0);
  for (std::size_t c = 0; c < recall.size(); ++c) {
    if (total[c] > 0) {
      recall[c] = static_cast<double>(correct[c]) / static_cast<double>(total[c]);
    }
  }
  return recall;
}

std::vector<std::size_t> Classifier::confusion_matrix(const tensor::Tensor& images,
                                                      std::span<const int> labels) {
  const std::size_t classes = geometry_.num_classes;
  std::vector<std::size_t> matrix(classes * classes, 0);
  network_->set_training(false);
  const tensor::Tensor logits = network_->forward(images);
  network_->set_training(true);
  for (std::size_t n = 0; n < labels.size(); ++n) {
    const auto truth = static_cast<std::size_t>(labels[n]);
    const std::size_t predicted = tensor::argmax(logits.row(n));
    ++matrix[truth * classes + predicted];
  }
  return matrix;
}

std::vector<float> Classifier::parameters_flat() { return nn::flatten_parameters(*network_); }

void Classifier::copy_parameters_to(std::span<float> out) {
  nn::copy_parameters_to(*network_, out);
}

void Classifier::load_parameters_flat(std::span<const float> flat) {
  nn::unflatten_parameters(*network_, flat);
}

std::size_t Classifier::parameter_count() { return network_->parameter_count(); }

}  // namespace fedguard::models
