#pragma once
// FedCPA — critical parameter analysis (Han et al. 2023, arXiv 2308.09318).
//
// Benign updates agree on WHICH coordinates matter and which way they move;
// poisoned updates either move different coordinates (noise, same-value) or
// move the same critical coordinates the other way (sign flip, covert
// gradient ascent). FedCPA scores each update by the similarity of its
// critical-parameter set to everyone else's and keeps the most mutually
// similar half:
//
//   1. critical set C_k = top-t coordinates of |ψ_k − ψ0| (t = top_fraction·d)
//   2. sim(a, b)   = clamped sparse cosine of the deltas restricted to
//                    C_a ∪ C_b (coords outside the other's set contribute
//                    only to the norm, so disjoint sets score 0 — Jaccard
//                    and sign agreement in one number)
//   3. score_k     = mean over j≠k of sim(k, j), gated by sim(k, m) where m
//                    is the coordinate-wise median delta: a colluding clique
//                    of near-identical poisoned updates has mutual sim ≈ 1
//                    but cannot move the median while it is a minority, so
//                    the gate zeroes the clique instead of crowning it.
//                    Keep the ceil(keep_fraction·n) highest, reject the rest.
//
// Unlike distance defenses it is invariant to delta magnitude (catching
// norm-constrained covert poisoning) and unlike norm thresholds it sees
// direction (catching sign flips that preserve magnitudes).

#include <cstdint>
#include <vector>

#include "defenses/aggregation.hpp"

namespace fedguard::defenses {

struct FedCpaConfig {
  double top_fraction = 0.05;   // fraction of coordinates deemed critical
  double keep_fraction = 0.5;   // fraction of clients kept per round
};

class FedCpaAggregator final : public AggregationStrategy {
 public:
  explicit FedCpaAggregator(const FedCpaConfig& config = {}) : config_{config} {}
  [[nodiscard]] std::string name() const override { return "fedcpa"; }

  /// Exposed for unit tests: pairwise critical-parameter similarity in [0, 1]
  /// between two sorted index sets with aligned delta values.
  [[nodiscard]] static double critical_similarity(std::span<const std::uint32_t> top_a,
                                                  std::span<const float> values_a,
                                                  std::span<const std::uint32_t> top_b,
                                                  std::span<const float> values_b);

 private:
  void do_aggregate(const AggregationContext& context, const UpdateView& updates,
                    AggregationResult& out) override;

  FedCpaConfig config_;
  // Round-persistent scratch (reused across rounds; sized on first use).
  std::vector<std::vector<std::uint32_t>> top_sets_;
  std::vector<std::vector<float>> top_values_;
  std::vector<std::uint32_t> index_scratch_;
  std::vector<float> median_delta_;
  std::vector<float> coord_scratch_;
  std::vector<std::uint32_t> median_set_;
  std::vector<float> median_values_;
  std::vector<double> scores_;
  std::vector<std::size_t> order_;
  std::vector<std::size_t> selected_;
  std::vector<double> accumulator_;
};

}  // namespace fedguard::defenses
