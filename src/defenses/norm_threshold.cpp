#include "defenses/norm_threshold.hpp"

#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace fedguard::defenses {

void NormThresholdAggregator::do_aggregate(const AggregationContext& context,
                                           const UpdateView& updates, AggregationResult& out) {
  const std::size_t dim = updates.psi_dim();
  if (context.global_parameters.size() != dim) {
    throw std::invalid_argument{"norm_threshold: global parameter dimension mismatch"};
  }
  const auto global = context.global_parameters;
  const std::size_t count = updates.count();

  // Delta norms in O(dim) memory: the float delta is recomputed per pass
  // below with identical rounding, so no [count, dim] delta matrix is ever
  // materialized.
  std::vector<double> norms(count);
  for (std::size_t k = 0; k < count; ++k) {
    const std::span<const float> psi = updates.psi(k);
    double total = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      const float delta = psi[i] - global[i];
      total += static_cast<double>(delta) * static_cast<double>(delta);
    }
    norms[k] = std::sqrt(total);
  }

  const double threshold = util::median(std::span<const double>{norms}) * threshold_multiplier_;

  // Clip oversized deltas to the threshold and average.
  std::vector<double> accumulator(dim, 0.0);
  for (std::size_t k = 0; k < count; ++k) {
    const double scale = (threshold > 0.0 && norms[k] > threshold) ? threshold / norms[k] : 1.0;
    const std::span<const float> psi = updates.psi(k);
    for (std::size_t i = 0; i < dim; ++i) {
      const float delta = psi[i] - global[i];
      accumulator[i] += static_cast<double>(delta) * scale;
    }
  }

  out.parameters.resize(dim);
  const double inv = 1.0 / static_cast<double>(count);
  for (std::size_t i = 0; i < dim; ++i) {
    out.parameters[i] = static_cast<float>(global[i] + accumulator[i] * inv);
  }
  for (std::size_t k = 0; k < count; ++k) {
    out.accepted_clients.push_back(updates.meta(k).client_id);
  }
}

}  // namespace fedguard::defenses
