#include "defenses/norm_threshold.hpp"

#include <stdexcept>

#include "util/stats.hpp"

namespace fedguard::defenses {

AggregationResult NormThresholdAggregator::aggregate(const AggregationContext& context,
                                                     std::span<const ClientUpdate> updates) {
  const std::size_t dim = validate_updates(updates);
  if (context.global_parameters.size() != dim) {
    throw std::invalid_argument{"norm_threshold: global parameter dimension mismatch"};
  }
  const auto global = context.global_parameters;

  // Deltas from the global model and their norms.
  std::vector<std::vector<float>> deltas(updates.size());
  std::vector<double> norms(updates.size());
  for (std::size_t k = 0; k < updates.size(); ++k) {
    deltas[k].resize(dim);
    for (std::size_t i = 0; i < dim; ++i) deltas[k][i] = updates[k].psi[i] - global[i];
    norms[k] = util::l2_norm(deltas[k]);
  }

  const double threshold = util::median(std::span<const double>{norms}) * threshold_multiplier_;

  // Clip oversized deltas to the threshold and average.
  std::vector<double> accumulator(dim, 0.0);
  for (std::size_t k = 0; k < updates.size(); ++k) {
    const double scale = (threshold > 0.0 && norms[k] > threshold) ? threshold / norms[k] : 1.0;
    for (std::size_t i = 0; i < dim; ++i) {
      accumulator[i] += static_cast<double>(deltas[k][i]) * scale;
    }
  }

  AggregationResult result;
  result.parameters.resize(dim);
  const double inv = 1.0 / static_cast<double>(updates.size());
  for (std::size_t i = 0; i < dim; ++i) {
    result.parameters[i] = static_cast<float>(global[i] + accumulator[i] * inv);
  }
  for (const auto& update : updates) result.accepted_clients.push_back(update.client_id);
  return result;
}

}  // namespace fedguard::defenses
