#pragma once
// Bulyan (El Mhamdi et al. 2018): a two-stage robust aggregator from the same
// family as the paper's Krum baseline. Stage 1 repeatedly applies Krum
// selection to build a set of n - 2f candidate updates; stage 2 aggregates
// them with a coordinate-wise trimmed mean around the median. Included as a
// robust-aggregation extension (the paper's related-work taxonomy, §II).

#include "defenses/aggregation.hpp"

namespace fedguard::defenses {

class BulyanAggregator final : public AggregationStrategy {
 public:
  /// `byzantine_estimate_fraction` = assumed f/n; clamped internally so both
  /// stages stay well-defined for small cohorts.
  explicit BulyanAggregator(double byzantine_estimate_fraction = 0.2)
      : byzantine_fraction_{byzantine_estimate_fraction} {}

  [[nodiscard]] std::string name() const override { return "bulyan"; }

 private:
  void do_aggregate(const AggregationContext& context, const UpdateView& updates,
                    AggregationResult& out) override;

  double byzantine_fraction_;
  std::vector<double> distance2_;  // round-persistent pairwise distance matrix
};

}  // namespace fedguard::defenses
