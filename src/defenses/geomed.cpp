#include "defenses/geomed.hpp"

#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace fedguard::defenses {

std::vector<float> geometric_median(std::span<const float> points, std::size_t count,
                                    std::size_t dim, std::size_t max_iterations,
                                    double tolerance) {
  if (count == 0 || dim == 0 || points.size() != count * dim) {
    throw std::invalid_argument{"geometric_median: bad dimensions"};
  }
  // Start from the arithmetic mean.
  std::vector<double> current(dim, 0.0);
  for (std::size_t k = 0; k < count; ++k) {
    for (std::size_t i = 0; i < dim; ++i) current[i] += points[k * dim + i];
  }
  for (auto& v : current) v /= static_cast<double>(count);

  std::vector<double> next(dim);
  for (std::size_t iteration = 0; iteration < max_iterations; ++iteration) {
    std::fill(next.begin(), next.end(), 0.0);
    double weight_total = 0.0;
    bool at_point = false;
    for (std::size_t k = 0; k < count; ++k) {
      double dist2 = 0.0;
      for (std::size_t i = 0; i < dim; ++i) {
        const double d = static_cast<double>(points[k * dim + i]) - current[i];
        dist2 += d * d;
      }
      const double dist = std::sqrt(dist2);
      if (dist < 1e-12) {
        // Weiszfeld is undefined exactly at a sample point; accept it as the
        // (local) solution — a sample point coinciding with the median is a
        // valid optimum for our purposes.
        at_point = true;
        break;
      }
      const double w = 1.0 / dist;
      weight_total += w;
      for (std::size_t i = 0; i < dim; ++i) next[i] += w * points[k * dim + i];
    }
    if (at_point) break;
    double movement2 = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      next[i] /= weight_total;
      const double d = next[i] - current[i];
      movement2 += d * d;
      current[i] = next[i];
    }
    if (std::sqrt(movement2) < tolerance) break;
  }

  std::vector<float> out(dim);
  for (std::size_t i = 0; i < dim; ++i) out[i] = static_cast<float>(current[i]);
  return out;
}

AggregationResult GeoMedAggregator::aggregate(const AggregationContext& /*context*/,
                                              std::span<const ClientUpdate> updates) {
  const std::size_t dim = validate_updates(updates);
  std::vector<float> points;
  points.reserve(updates.size() * dim);
  for (const auto& update : updates) {
    points.insert(points.end(), update.psi.begin(), update.psi.end());
  }
  AggregationResult result;
  result.parameters =
      geometric_median(points, updates.size(), dim, max_iterations_, tolerance_);
  // GeoMed uses every update (robustness comes from the operator itself).
  for (const auto& update : updates) result.accepted_clients.push_back(update.client_id);
  return result;
}

}  // namespace fedguard::defenses
