#include "defenses/geomed.hpp"

#include <cmath>
#include <stdexcept>

#include "parallel/kernel_config.hpp"
#include "tensor/kernels/kernel_arch.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace fedguard::defenses {

std::vector<float> geometric_median(const PointsView& points, std::size_t max_iterations,
                                    double tolerance) {
  const std::size_t count = points.count();
  const std::size_t dim = points.dim();
  if (count == 0 || dim == 0) {
    throw std::invalid_argument{"geometric_median: bad dimensions"};
  }
  for (std::size_t k = 0; k < count; ++k) {
    FEDGUARD_CHECK_FINITE(points.row(k), "geometric_median: non-finite input point");
  }
  // Start from the arithmetic mean.
  std::vector<double> current(dim, 0.0);
  for (std::size_t k = 0; k < count; ++k) {
    const std::span<const float> point = points.row(k);
    for (std::size_t i = 0; i < dim; ++i) current[i] += point[i];
  }
  for (auto& v : current) v /= static_cast<double>(count);

  // Each Weiszfeld iteration runs two data passes, both parallelized over the
  // kernel pool when count * dim crosses the distance threshold:
  //   1. per-point distances to the current estimate (independent per point),
  //   2. the weighted accumulation of `next`, partitioned over coordinate
  //      ranges — every coordinate sums the points in ascending k order, so
  //      the result is identical for any thread count.
  const parallel::KernelConfig config = parallel::kernel_config();
  const bool fan_out =
      parallel::should_parallelize(count * dim, config.distance_min_elements);

  // The per-point distance loop goes through the runtime kernel dispatch;
  // the serial tier is bit-identical to the original inline loop.
  const auto squared_distance_wide =
      tensor::kernels::kernel_table().squared_distance_wide;
  std::vector<double> next(dim);
  std::vector<double> weights(count);
  for (std::size_t iteration = 0; iteration < max_iterations; ++iteration) {
    const auto distance_pass = [&](std::size_t begin, std::size_t end) {
      for (std::size_t k = begin; k < end; ++k) {
        weights[k] =
            std::sqrt(squared_distance_wide(points.row(k).data(), current.data(), dim));
      }
    };
    if (fan_out) {
      parallel::kernel_parallel_ranges(count, 1, distance_pass);
    } else {
      distance_pass(0, count);
    }

    double weight_total = 0.0;
    bool at_point = false;
    for (std::size_t k = 0; k < count; ++k) {
      if (weights[k] < 1e-12) {
        // Weiszfeld is undefined exactly at a sample point; accept it as the
        // (local) solution — a sample point coinciding with the median is a
        // valid optimum for our purposes.
        at_point = true;
        break;
      }
      weights[k] = 1.0 / weights[k];
      weight_total += weights[k];
    }
    if (at_point) break;

    const auto accumulate_pass = [&](std::size_t begin, std::size_t end) {
      std::fill(next.begin() + static_cast<std::ptrdiff_t>(begin),
                next.begin() + static_cast<std::ptrdiff_t>(end), 0.0);
      for (std::size_t k = 0; k < count; ++k) {
        const double w = weights[k];
        const float* point = points.row(k).data();
        for (std::size_t i = begin; i < end; ++i) next[i] += w * point[i];
      }
    };
    if (fan_out) {
      parallel::kernel_parallel_ranges(dim, 256, accumulate_pass);
    } else {
      accumulate_pass(0, dim);
    }

    double movement2 = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      next[i] /= weight_total;
      const double d = next[i] - current[i];
      movement2 += d * d;
      current[i] = next[i];
    }
    if (std::sqrt(movement2) < tolerance) break;
  }

  std::vector<float> out(dim);
  for (std::size_t i = 0; i < dim; ++i) out[i] = static_cast<float>(current[i]);
  return out;
}

std::vector<float> geometric_median(std::span<const float> points, std::size_t count,
                                    std::size_t dim, std::size_t max_iterations,
                                    double tolerance) {
  if (count == 0 || dim == 0 || points.size() != count * dim) {
    throw std::invalid_argument{"geometric_median: bad dimensions"};
  }
  return geometric_median(PointsView{points, count, dim}, max_iterations, tolerance);
}

void GeoMedAggregator::do_aggregate(const AggregationContext& /*context*/,
                                    const UpdateView& updates, AggregationResult& out) {
  out.parameters = geometric_median(updates.points(), max_iterations_, tolerance_);
  // GeoMed uses every update (robustness comes from the operator itself).
  for (std::size_t k = 0; k < updates.count(); ++k) {
    out.accepted_clients.push_back(updates.meta(k).client_id);
  }
}

}  // namespace fedguard::defenses
