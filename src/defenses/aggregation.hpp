#pragma once
// Aggregation strategy interface shared by the FL server and all defenses.
//
// Per federated round the server hands the strategy the set of uploaded
// client updates; the strategy returns the new global parameter vector plus
// the accept/reject split it decided on (for diagnostics and the detection
// metrics reported by the benches).

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace fedguard::defenses {

/// One client's upload for a round. `psi` is the flat classifier parameter
/// vector after local training (possibly poisoned); `theta` is the flat CVAE
/// decoder parameter vector (only populated when the strategy requests
/// decoders, i.e. FedGuard).
struct ClientUpdate {
  int client_id = -1;
  std::vector<float> psi;
  std::vector<float> theta;
  std::size_t num_samples = 0;
  bool truly_malicious = false;  // ground truth, for detection metrics only
};

struct AggregationContext {
  std::size_t round = 0;
  /// Current global parameters (pre-round); same length as every psi.
  std::span<const float> global_parameters;
};

struct AggregationResult {
  std::vector<float> parameters;
  std::vector<int> accepted_clients;
  std::vector<int> rejected_clients;
};

class AggregationStrategy {
 public:
  virtual ~AggregationStrategy() = default;

  [[nodiscard]] virtual AggregationResult aggregate(const AggregationContext& context,
                                                    std::span<const ClientUpdate> updates) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// True if clients must also upload their CVAE decoder parameters
  /// (FedGuard only); drives the Table V traffic accounting.
  [[nodiscard]] virtual bool wants_decoders() const { return false; }
};

// ---- Shared helpers used by several strategies -------------------------------

/// Sample-count weighted arithmetic mean of the given updates' psi vectors.
/// Falls back to the unweighted mean when all counts are zero.
[[nodiscard]] std::vector<float> weighted_mean(std::span<const ClientUpdate> updates);

/// Unweighted mean of selected updates (by index into `updates`).
[[nodiscard]] std::vector<float> mean_of(std::span<const ClientUpdate> updates,
                                         std::span<const std::size_t> selected);

/// Throws std::invalid_argument unless all updates exist and share one
/// parameter dimension; returns that dimension.
std::size_t validate_updates(std::span<const ClientUpdate> updates);

/// Detection quality of a round's accept/reject split against ground truth.
struct DetectionStats {
  std::size_t true_positives = 0;   // malicious rejected
  std::size_t false_positives = 0;  // benign rejected
  std::size_t true_negatives = 0;   // benign accepted
  std::size_t false_negatives = 0;  // malicious accepted
};
[[nodiscard]] DetectionStats compute_detection_stats(std::span<const ClientUpdate> updates,
                                                     const AggregationResult& result);

}  // namespace fedguard::defenses
