#pragma once
// Aggregation strategy interface shared by the FL server and all defenses.
//
// Per federated round the server fills a round-scoped UpdateMatrix arena with
// the uploaded client updates and hands the strategy a view over it; the
// strategy writes the new global parameter vector plus the accept/reject
// split it decided on (for diagnostics and the detection metrics reported by
// the benches) into an AggregationResult the server reuses across rounds.
//
// Strategies implement the private do_aggregate() hook; the public entry
// points validate the view (dimension + NaN/Inf choke point) exactly once
// before dispatching. An owned-ClientUpdate overload is kept for tests and
// examples — it copies into an internal arena and runs the same view path.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "defenses/update_matrix.hpp"

namespace fedguard::defenses {

/// One client's upload for a round, in owned form (compatibility surface and
/// the remote client's wire representation). `psi` is the flat classifier
/// parameter vector after local training (possibly poisoned); `theta` is the
/// flat CVAE decoder parameter vector (only populated when the strategy
/// requests decoders, i.e. FedGuard). The zero-copy round loop stores the
/// same fields as arena rows + UpdateMeta instead.
struct ClientUpdate {
  int client_id = -1;
  std::vector<float> psi;
  std::vector<float> theta;
  std::size_t num_samples = 0;
  bool truly_malicious = false;  // ground truth, for detection metrics only
};

struct AggregationContext {
  std::size_t round = 0;
  /// Current global parameters (pre-round); same length as every psi.
  std::span<const float> global_parameters;
};

struct AggregationResult {
  std::vector<float> parameters;
  std::vector<int> accepted_clients;
  std::vector<int> rejected_clients;

  /// Empties all three vectors, keeping their capacity for reuse.
  void clear() noexcept {
    parameters.clear();
    accepted_clients.clear();
    rejected_clients.clear();
  }
};

class AggregationStrategy {
 public:
  virtual ~AggregationStrategy() = default;

  /// Zero-copy entry point: aggregate the viewed arena rows into `out`
  /// (cleared first; its buffers are reused across rounds by the server).
  /// Validates the view — uniform non-zero dimension, finite rows — before
  /// dispatching to the strategy body.
  void aggregate_into(const AggregationContext& context, const UpdateView& updates,
                      AggregationResult& out);

  [[nodiscard]] AggregationResult aggregate(const AggregationContext& context,
                                            const UpdateView& updates);

  /// Compatibility entry point over owned updates: validates them (exact
  /// legacy error behaviour, including ragged dimensions), copies into an
  /// internal arena, and runs the view path.
  [[nodiscard]] AggregationResult aggregate(const AggregationContext& context,
                                            std::span<const ClientUpdate> updates);

  [[nodiscard]] virtual std::string name() const = 0;

  /// True if clients must also upload their CVAE decoder parameters
  /// (FedGuard only); drives the Table V traffic accounting.
  [[nodiscard]] virtual bool wants_decoders() const { return false; }

  /// Flat decoder length each upload must carry when wants_decoders(); sizes
  /// the round arena's theta planes. 0 for strategies that ignore decoders.
  [[nodiscard]] virtual std::size_t decoder_parameter_count() const { return 0; }

 private:
  /// Strategy body. `updates` is non-empty with a validated uniform psi
  /// dimension; `out` arrives cleared.
  virtual void do_aggregate(const AggregationContext& context, const UpdateView& updates,
                            AggregationResult& out) = 0;

  UpdateMatrix compat_arena_;  // backs the span<ClientUpdate> overload
};

// ---- Shared helpers used by several strategies -------------------------------

/// Sample-count weighted arithmetic mean of the viewed psi rows, written into
/// `out` using `accumulator` as caller-owned scratch (both resized in place).
/// Falls back to the unweighted mean when all counts are zero.
void weighted_mean_into(const UpdateView& updates, std::vector<double>& accumulator,
                        std::vector<float>& out);
[[nodiscard]] std::vector<float> weighted_mean(const UpdateView& updates);

/// Unweighted mean of selected view slots (by index into `updates`), in the
/// caller-given slot order.
void mean_of_into(const UpdateView& updates, std::span<const std::size_t> selected,
                  std::vector<double>& accumulator, std::vector<float>& out);
[[nodiscard]] std::vector<float> mean_of(const UpdateView& updates,
                                         std::span<const std::size_t> selected);

/// Throws std::invalid_argument unless all updates exist and share one
/// parameter dimension; returns that dimension. (Owned-update form, used by
/// the compatibility aggregate overload.)
std::size_t validate_updates(std::span<const ClientUpdate> updates);

/// View form of validate_updates: non-empty, non-zero dimension, and (in
/// FEDGUARD_ASSERTS builds) every row finite. This is the single boundary at
/// which a NaN/Inf-poisoned upload is rejected before it can reach an
/// accumulator.
std::size_t validate_view(const UpdateView& updates);

/// Copy owned updates into `arena` (psi + theta planes + metadata). The theta
/// plane is sized to the largest theta present; per-row actual lengths land
/// in UpdateMeta::theta_count.
void fill_update_matrix(UpdateMatrix& arena, std::span<const ClientUpdate> updates);

/// Detection quality of a round's accept/reject split against ground truth.
struct DetectionStats {
  std::size_t true_positives = 0;   // malicious rejected
  std::size_t false_positives = 0;  // benign rejected
  std::size_t true_negatives = 0;   // benign accepted
  std::size_t false_negatives = 0;  // malicious accepted
};
[[nodiscard]] DetectionStats compute_detection_stats(std::span<const ClientUpdate> updates,
                                                     const AggregationResult& result);
[[nodiscard]] DetectionStats compute_detection_stats(const UpdateView& updates,
                                                     const AggregationResult& result);

}  // namespace fedguard::defenses
