#pragma once
// Aggregation strategy interface shared by the FL server and all defenses.
//
// Per federated round the server fills a round-scoped UpdateMatrix arena with
// the uploaded client updates and hands the strategy a view over it; the
// strategy writes the new global parameter vector plus the accept/reject
// split it decided on (for diagnostics and the detection metrics reported by
// the benches) into an AggregationResult the server reuses across rounds.
//
// Strategies implement the private do_aggregate() hook; the public entry
// points validate the view (dimension + NaN/Inf choke point) exactly once
// before dispatching. An owned-ClientUpdate overload is kept for tests and
// examples — it copies into an internal arena and runs the same view path.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "defenses/update_matrix.hpp"

namespace fedguard::defenses {

/// One client's upload for a round, in owned form (compatibility surface and
/// the remote client's wire representation). `psi` is the flat classifier
/// parameter vector after local training (possibly poisoned); `theta` is the
/// flat CVAE decoder parameter vector (only populated when the strategy
/// requests decoders, i.e. FedGuard). The zero-copy round loop stores the
/// same fields as arena rows + UpdateMeta instead.
struct ClientUpdate {
  int client_id = -1;
  std::vector<float> psi;
  std::vector<float> theta;
  std::size_t num_samples = 0;
  bool truly_malicious = false;  // ground truth, for detection metrics only
};

struct AggregationContext {
  std::size_t round = 0;
  /// Current global parameters (pre-round); same length as every psi.
  std::span<const float> global_parameters;
};

struct AggregationResult {
  std::vector<float> parameters;
  std::vector<int> accepted_clients;
  std::vector<int> rejected_clients;

  /// Empties all three vectors, keeping their capacity for reuse.
  void clear() noexcept {
    parameters.clear();
    accepted_clients.clear();
    rejected_clients.clear();
  }
};

/// One shard's contribution to a two-tier round: either an exact mergeable
/// accumulator (FedAvg — running weighted/plain ψ sums in double, fold order
/// = arena slot order) or routed selection metadata (every selector — the
/// shard-local aggregate plus its accept/reject split and strategy-specific
/// scores). The root merges partials with AggregationStrategy::
/// merge_partials_into; docs/SHARDING.md states the exact-merge vs
/// metadata-routing contract.
struct ShardPartial {
  std::size_t shard_id = 0;
  /// Rows folded into this partial (0 = the shard collected nothing and the
  /// root must skip it).
  std::size_t client_count = 0;
  /// Ground-truth malicious rows among them (round bookkeeping at the root).
  std::size_t malicious_count = 0;

  // ---- Exact path (supports_exact_merge() strategies) -----------------------
  bool exact = false;
  double weight_sum = 0.0;               // Σ num_samples (exact in double)
  std::vector<double> psi_weighted_sum;  // Σ w·ψ, folded in slot order
  /// Σ ψ, maintained alongside so the root can apply weighted_mean_into's
  /// all-weights-zero fallback globally (a shard cannot know the global
  /// total weight).
  std::vector<double> psi_plain_sum;

  // ---- Metadata-routing path (everything else) ------------------------------
  std::vector<float> parameters;  // shard-local aggregate
  /// Strategy-specific selection scores in cohort slot order (Krum distances
  /// sums, FedGuard synthetic-set accuracies); diagnostics for the root.
  std::vector<double> selection_scores;
  double selection_threshold = 0.0;

  // ---- Both paths -----------------------------------------------------------
  std::vector<int> accepted_clients;
  std::vector<int> rejected_clients;

  /// Empties every buffer, keeping capacity for round reuse.
  void clear() noexcept {
    shard_id = 0;
    client_count = 0;
    malicious_count = 0;
    exact = false;
    weight_sum = 0.0;
    psi_weighted_sum.clear();
    psi_plain_sum.clear();
    parameters.clear();
    selection_scores.clear();
    selection_threshold = 0.0;
    accepted_clients.clear();
    rejected_clients.clear();
  }
};

/// Fold one accepted update into an exact partial. Accumulation order and
/// arithmetic are byte-for-byte those of weighted_mean_into (products w·ψ are
/// exact in double), so folding a shard's rows in slot order and merging is
/// bit-identical to a single-tier weighted mean over the same rows whenever
/// there is one shard, and differs only by summation bracketing otherwise.
/// This is the dynamic-batching primitive: shards call it per reply, with no
/// per-round barrier.
void fold_exact_update(ShardPartial& partial, std::span<const float> psi,
                       const UpdateMeta& meta);

class AggregationStrategy {
 public:
  virtual ~AggregationStrategy() = default;

  /// Zero-copy entry point: aggregate the viewed arena rows into `out`
  /// (cleared first; its buffers are reused across rounds by the server).
  /// Validates the view — uniform non-zero dimension, finite rows — before
  /// dispatching to the strategy body.
  void aggregate_into(const AggregationContext& context, const UpdateView& updates,
                      AggregationResult& out);

  [[nodiscard]] AggregationResult aggregate(const AggregationContext& context,
                                            const UpdateView& updates);

  /// Compatibility entry point over owned updates: validates them (exact
  /// legacy error behaviour, including ragged dimensions), copies into an
  /// internal arena, and runs the view path.
  [[nodiscard]] AggregationResult aggregate(const AggregationContext& context,
                                            std::span<const ClientUpdate> updates);

  [[nodiscard]] virtual std::string name() const = 0;

  /// True if clients must also upload their CVAE decoder parameters
  /// (FedGuard only); drives the Table V traffic accounting.
  [[nodiscard]] virtual bool wants_decoders() const { return false; }

  /// Flat decoder length each upload must carry when wants_decoders(); sizes
  /// the round arena's theta planes. 0 for strategies that ignore decoders.
  [[nodiscard]] virtual std::size_t decoder_parameter_count() const { return 0; }

  // ---- Mergeable-accumulator seam (two-tier topology) -------------------------

  /// True when shard partials merge into exactly the single-tier result
  /// (FedAvg: a weighted mean is associative up to summation bracketing).
  /// Exact strategies may be folded incrementally per reply via
  /// fold_exact_update; selectors need the whole cohort and run locally.
  [[nodiscard]] virtual bool supports_exact_merge() const { return false; }

  /// Shard-tier entry point: aggregate one cohort's view into a ShardPartial
  /// (cleared first). Validates like aggregate_into. The default routes
  /// metadata: it runs the full strategy on the cohort and ships the local
  /// aggregate + accept/reject split upward; exact strategies override with
  /// accumulator folding instead.
  void partial_aggregate_into(const AggregationContext& context, const UpdateView& updates,
                              std::size_t shard_id, ShardPartial& out);

  /// Root-tier entry point: combine shard partials into the round result
  /// (cleared first). Partials with client_count == 0 (dead or empty shards)
  /// are skipped; throws std::invalid_argument when nothing is mergeable.
  void merge_partials_into(const AggregationContext& context,
                           std::span<const ShardPartial> partials, AggregationResult& out);

 protected:
  /// Default shard body (metadata routing): run do_aggregate on the cohort,
  /// move the result into the partial. Exposed so selector overrides can
  /// delegate and then attach their selection scores.
  virtual void do_partial_aggregate(const AggregationContext& context,
                                    const UpdateView& updates, ShardPartial& out);

  /// Default root body: exact partials are summed and divided once (global
  /// zero-weight fallback preserved); metadata partials are combined as the
  /// accepted-count-weighted mean of the shard-local aggregates, with
  /// accept/reject sets unioned in shard order.
  virtual void do_merge_partials(const AggregationContext& context,
                                 std::span<const ShardPartial> partials,
                                 AggregationResult& out);

 private:
  /// Strategy body. `updates` is non-empty with a validated uniform psi
  /// dimension; `out` arrives cleared.
  virtual void do_aggregate(const AggregationContext& context, const UpdateView& updates,
                            AggregationResult& out) = 0;

  UpdateMatrix compat_arena_;  // backs the span<ClientUpdate> overload
  // Round-persistent scratch for the default partial/merge bodies.
  AggregationResult partial_scratch_;
  std::vector<double> merge_accumulator_;
};

// ---- Shared helpers used by several strategies -------------------------------

/// Sample-count weighted arithmetic mean of the viewed psi rows, written into
/// `out` using `accumulator` as caller-owned scratch (both resized in place).
/// Falls back to the unweighted mean when all counts are zero.
void weighted_mean_into(const UpdateView& updates, std::vector<double>& accumulator,
                        std::vector<float>& out);
[[nodiscard]] std::vector<float> weighted_mean(const UpdateView& updates);

/// Unweighted mean of selected view slots (by index into `updates`), in the
/// caller-given slot order.
void mean_of_into(const UpdateView& updates, std::span<const std::size_t> selected,
                  std::vector<double>& accumulator, std::vector<float>& out);
[[nodiscard]] std::vector<float> mean_of(const UpdateView& updates,
                                         std::span<const std::size_t> selected);

/// Throws std::invalid_argument unless all updates exist and share one
/// parameter dimension; returns that dimension. (Owned-update form, used by
/// the compatibility aggregate overload.)
std::size_t validate_updates(std::span<const ClientUpdate> updates);

/// View form of validate_updates: non-empty, non-zero dimension, and (in
/// FEDGUARD_ASSERTS builds) every row finite. This is the single boundary at
/// which a NaN/Inf-poisoned upload is rejected before it can reach an
/// accumulator.
std::size_t validate_view(const UpdateView& updates);

/// Copy owned updates into `arena` (psi + theta planes + metadata). The theta
/// plane is sized to the largest theta present; per-row actual lengths land
/// in UpdateMeta::theta_count.
void fill_update_matrix(UpdateMatrix& arena, std::span<const ClientUpdate> updates);

/// Detection quality of a round's accept/reject split against ground truth.
struct DetectionStats {
  std::size_t true_positives = 0;   // malicious rejected
  std::size_t false_positives = 0;  // benign rejected
  std::size_t true_negatives = 0;   // benign accepted
  std::size_t false_negatives = 0;  // malicious accepted
};
[[nodiscard]] DetectionStats compute_detection_stats(std::span<const ClientUpdate> updates,
                                                     const AggregationResult& result);
[[nodiscard]] DetectionStats compute_detection_stats(const UpdateView& updates,
                                                     const AggregationResult& result);

}  // namespace fedguard::defenses
