#pragma once
// FEDGUARD — the paper's contribution (Algorithm 1, Section III-B).
//
// Per round, given active clients' classifier updates ψ_j and CVAE decoder
// parameters θ_j:
//   1. sample t latent vectors z ~ N(0,1) and t labels y ~ Cat(L, α);
//   2. synthesize the validation dataset D_syn from the uploaded decoders;
//   3. score every ψ_j by its accuracy on D_syn;
//   4. keep clients scoring at or above the mean accuracy and aggregate the
//      survivors with the internal operator (FedAvg by default; GeoMed and
//      coordinate-median are available per the paper's future-work note).
//
// The t samples can be distributed across the active decoders (the paper's
// configuration: t = 2m = 100 total synthetic digits) or generated in full by
// every decoder (SampleMode::PerDecoder), trading validation-data diversity
// for server compute — the paper's "tuneable overhead" knob.

#include <cstdint>
#include <memory>

#include "defenses/aggregation.hpp"
#include "models/classifier.hpp"
#include "models/cvae.hpp"
#include "util/rng.hpp"

namespace fedguard::defenses {

/// Internal aggregation operator applied to the surviving updates.
enum class InternalOperator { FedAvg, GeoMed, Median };
[[nodiscard]] const char* to_string(InternalOperator op) noexcept;

struct FedGuardConfig {
  models::CvaeSpec cvae_spec;            // must match the clients' CVAEs
  std::size_t total_samples = 100;       // t: size of D_syn in Split mode
  enum class SampleMode { Split, PerDecoder } sample_mode = SampleMode::Split;
  std::vector<double> class_alpha;       // Cat(L, alpha); empty = uniform
  InternalOperator internal_operator = InternalOperator::FedAvg;
  /// L_ACC choice (Alg. 1 line 5). Accuracy is the paper's metric; Balanced
  /// scores each update by its mean per-class recall on D_syn, which is more
  /// sensitive to targeted label flipping (an ablation of ours).
  enum class ScoreMetric { Accuracy, Balanced } score_metric = ScoreMetric::Accuracy;
};

class FedGuardAggregator final : public AggregationStrategy {
 public:
  FedGuardAggregator(FedGuardConfig config, models::ClassifierArch arch,
                     models::ImageGeometry geometry, std::uint64_t seed);
  ~FedGuardAggregator() override;

  [[nodiscard]] std::string name() const override { return "fedguard"; }
  [[nodiscard]] bool wants_decoders() const override { return true; }
  [[nodiscard]] std::size_t decoder_parameter_count() const override;

  /// Per-client accuracies on D_syn from the most recent round, in update
  /// order (diagnostics).
  [[nodiscard]] const std::vector<double>& last_scores() const noexcept {
    return last_scores_;
  }
  /// Mean-accuracy threshold of the most recent round.
  [[nodiscard]] double last_threshold() const noexcept { return last_threshold_; }

 protected:
  /// Metadata routing with diagnostics attached: each shard evaluates its
  /// own cohort's decoders against its own D_syn and ships the per-slot
  /// synthetic-set accuracies + acceptance threshold upward.
  void do_partial_aggregate(const AggregationContext& context, const UpdateView& updates,
                            ShardPartial& out) override;

 private:
  void do_aggregate(const AggregationContext& context, const UpdateView& updates,
                    AggregationResult& out) override;

  FedGuardConfig config_;
  models::ImageGeometry geometry_;
  util::Rng rng_;
  std::unique_ptr<models::Classifier> scratch_classifier_;
  std::unique_ptr<models::CvaeDecoder> scratch_decoder_;
  std::vector<double> last_scores_;
  double last_threshold_ = 0.0;
  // Round-persistent scratch.
  std::vector<std::size_t> kept_slots_;
  std::vector<std::size_t> select_scratch_;
  std::vector<double> accumulator_;
};

}  // namespace fedguard::defenses
