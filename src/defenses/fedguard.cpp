#include "defenses/fedguard.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "defenses/geomed.hpp"
#include "defenses/median.hpp"
#include "obs/trace.hpp"
#include "nn/loss.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace fedguard::defenses {

const char* to_string(InternalOperator op) noexcept {
  switch (op) {
    case InternalOperator::FedAvg: return "fedavg";
    case InternalOperator::GeoMed: return "geomed";
    case InternalOperator::Median: return "median";
  }
  return "unknown";
}

FedGuardAggregator::FedGuardAggregator(FedGuardConfig config, models::ClassifierArch arch,
                                       models::ImageGeometry geometry, std::uint64_t seed)
    : config_{std::move(config)},
      geometry_{geometry},
      rng_{seed},
      scratch_classifier_{std::make_unique<models::Classifier>(arch, geometry, seed)},
      scratch_decoder_{std::make_unique<models::CvaeDecoder>(config_.cvae_spec, seed)} {
  if (config_.cvae_spec.input_dim != geometry.pixels()) {
    throw std::invalid_argument{"FedGuardAggregator: CVAE input_dim != image pixels"};
  }
  if (config_.class_alpha.empty()) {
    config_.class_alpha.assign(config_.cvae_spec.num_classes,
                               1.0 / static_cast<double>(config_.cvae_spec.num_classes));
  }
  if (config_.class_alpha.size() != config_.cvae_spec.num_classes) {
    throw std::invalid_argument{"FedGuardAggregator: class_alpha size mismatch"};
  }
  if (config_.total_samples == 0) {
    throw std::invalid_argument{"FedGuardAggregator: total_samples must be > 0"};
  }
}

FedGuardAggregator::~FedGuardAggregator() = default;

std::size_t FedGuardAggregator::decoder_parameter_count() const {
  return scratch_decoder_->parameter_count();
}

void FedGuardAggregator::do_aggregate(const AggregationContext& /*context*/,
                                      const UpdateView& updates, AggregationResult& out) {
  const std::size_t decoder_dim = scratch_decoder_->parameter_count();
  for (std::size_t j = 0; j < updates.count(); ++j) {
    if (updates.meta(j).theta_count != decoder_dim) {
      throw std::invalid_argument{"FedGuardAggregator: decoder dimension mismatch"};
    }
    FEDGUARD_CHECK_FINITE(updates.theta(j),
                          "FedGuard: non-finite decoder parameters from client " +
                              std::to_string(updates.meta(j).client_id));
  }
  const std::size_t active = updates.count();
  const std::size_t latent = config_.cvae_spec.latent;

  // (1) Shared latent + conditioning samples [z_t], [y_t] (Alg. 1 lines 2-3).
  const std::size_t t = config_.total_samples;
  const tensor::Tensor z = models::sample_standard_normal(t, latent, rng_);
  const std::vector<int> y =
      models::sample_categorical_labels(t, config_.class_alpha, rng_);

  // (2) Synthesize D_syn from the uploaded decoders (Alg. 1 line 4).
  // Split mode: decoder j synthesizes the j-th slice of the shared samples
  // (|D_syn| = t). PerDecoder mode: every decoder synthesizes all t samples
  // (|D_syn| = |J| * t).
  std::vector<float> syn_pixels;
  std::vector<int> syn_labels;
  const std::size_t pixels = geometry_.pixels();
  auto decode_range = [&](std::span<const float> theta, std::size_t begin, std::size_t count) {
    scratch_decoder_->load_parameters_flat(theta);
    tensor::Tensor z_slice{{count, latent}};
    std::vector<int> y_slice(count);
    for (std::size_t i = 0; i < count; ++i) {
      const auto src = z.row(begin + i);
      std::copy(src.begin(), src.end(), z_slice.row(i).begin());
      y_slice[i] = y[begin + i];
    }
    const tensor::Tensor images = scratch_decoder_->decode(z_slice, y_slice);
    syn_pixels.insert(syn_pixels.end(), images.data().begin(), images.data().end());
    syn_labels.insert(syn_labels.end(), y_slice.begin(), y_slice.end());
  };

  {
    FEDGUARD_TRACE_SPAN("agg.fedguard", "decode");
    if (config_.sample_mode == FedGuardConfig::SampleMode::PerDecoder) {
      for (std::size_t j = 0; j < active; ++j) decode_range(updates.theta(j), 0, t);
    } else {
      // Distribute t samples over |J| decoders, remainder to the first ones.
      const std::size_t base = t / active;
      const std::size_t extra = t % active;
      std::size_t offset = 0;
      for (std::size_t j = 0; j < active; ++j) {
        const std::size_t count = base + (j < extra ? 1 : 0);
        if (count == 0) continue;
        decode_range(updates.theta(j), offset, count);
        offset += count;
      }
    }
  }

  const std::size_t syn_count = syn_labels.size();
  tensor::Tensor syn_images = tensor::Tensor::from_data(
      {syn_count, geometry_.channels, geometry_.height, geometry_.width},
      std::move(syn_pixels));

  // (3) Score each client's classifier on D_syn (Alg. 1 line 5).
  last_scores_.assign(active, 0.0);
  {
  FEDGUARD_TRACE_SPAN("agg.fedguard", "score");
  for (std::size_t j = 0; j < active; ++j) {
    scratch_classifier_->load_parameters_flat(updates.psi(j));
    if (config_.score_metric == FedGuardConfig::ScoreMetric::Balanced) {
      // Mean per-class recall over the classes present in D_syn: a targeted
      // attack that sacrifices a class pair cannot hide behind the other
      // classes' accuracy.
      const std::vector<double> recalls =
          scratch_classifier_->evaluate_per_class(syn_images, syn_labels);
      std::vector<bool> present(recalls.size(), false);
      for (const int label : syn_labels) present[static_cast<std::size_t>(label)] = true;
      double total = 0.0;
      std::size_t classes_present = 0;
      for (std::size_t c = 0; c < recalls.size(); ++c) {
        if (present[c]) {
          total += recalls[c];
          ++classes_present;
        }
      }
      last_scores_[j] = classes_present > 0 ? total / static_cast<double>(classes_present)
                                            : 0.0;
    } else {
      last_scores_[j] = scratch_classifier_->evaluate_accuracy(syn_images, syn_labels);
    }
  }
  }
  (void)pixels;

  // (4) Selective aggregation: keep ACC_j >= mean(ACC) (Alg. 1 lines 6-7).
  // The kept set is an index sub-view over the round arena — no update is
  // ever copied for the internal operator.
  FEDGUARD_TRACE_SPAN("agg.fedguard", "select");
  last_threshold_ = util::mean(std::span<const double>{last_scores_});
  kept_slots_.clear();
  for (std::size_t j = 0; j < active; ++j) {
    if (last_scores_[j] >= last_threshold_) {
      kept_slots_.push_back(j);
      out.accepted_clients.push_back(updates.meta(j).client_id);
    } else {
      out.rejected_clients.push_back(updates.meta(j).client_id);
    }
  }
  if (kept_slots_.empty()) {
    // Cannot happen with a finite mean (the max is always >= mean), but stay
    // defensive against NaN scores.
    kept_slots_.resize(active);
    std::iota(kept_slots_.begin(), kept_slots_.end(), std::size_t{0});
    out.accepted_clients.swap(out.rejected_clients);
    out.rejected_clients.clear();
  }
  const UpdateView kept = updates.select(kept_slots_, select_scratch_);

  switch (config_.internal_operator) {
    case InternalOperator::FedAvg:
      weighted_mean_into(kept, accumulator_, out.parameters);
      break;
    case InternalOperator::GeoMed:
      out.parameters = geometric_median(kept.points());
      break;
    case InternalOperator::Median:
      out.parameters = coordinate_median(kept.points());
      break;
  }
}

void FedGuardAggregator::do_partial_aggregate(const AggregationContext& context,
                                              const UpdateView& updates, ShardPartial& out) {
  AggregationStrategy::do_partial_aggregate(context, updates, out);
  out.selection_scores = last_scores_;
  out.selection_threshold = last_threshold_;
}

}  // namespace fedguard::defenses
