#include "defenses/fedguard.hpp"

#include <algorithm>
#include <stdexcept>

#include "defenses/geomed.hpp"
#include "defenses/median.hpp"
#include "nn/loss.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace fedguard::defenses {

const char* to_string(InternalOperator op) noexcept {
  switch (op) {
    case InternalOperator::FedAvg: return "fedavg";
    case InternalOperator::GeoMed: return "geomed";
    case InternalOperator::Median: return "median";
  }
  return "unknown";
}

FedGuardAggregator::FedGuardAggregator(FedGuardConfig config, models::ClassifierArch arch,
                                       models::ImageGeometry geometry, std::uint64_t seed)
    : config_{std::move(config)},
      geometry_{geometry},
      rng_{seed},
      scratch_classifier_{std::make_unique<models::Classifier>(arch, geometry, seed)},
      scratch_decoder_{std::make_unique<models::CvaeDecoder>(config_.cvae_spec, seed)} {
  if (config_.cvae_spec.input_dim != geometry.pixels()) {
    throw std::invalid_argument{"FedGuardAggregator: CVAE input_dim != image pixels"};
  }
  if (config_.class_alpha.empty()) {
    config_.class_alpha.assign(config_.cvae_spec.num_classes,
                               1.0 / static_cast<double>(config_.cvae_spec.num_classes));
  }
  if (config_.class_alpha.size() != config_.cvae_spec.num_classes) {
    throw std::invalid_argument{"FedGuardAggregator: class_alpha size mismatch"};
  }
  if (config_.total_samples == 0) {
    throw std::invalid_argument{"FedGuardAggregator: total_samples must be > 0"};
  }
}

FedGuardAggregator::~FedGuardAggregator() = default;

AggregationResult FedGuardAggregator::aggregate(const AggregationContext& /*context*/,
                                                std::span<const ClientUpdate> updates) {
  validate_updates(updates);
  const std::size_t decoder_dim = scratch_decoder_->parameter_count();
  for (const auto& update : updates) {
    if (update.theta.size() != decoder_dim) {
      throw std::invalid_argument{"FedGuardAggregator: decoder dimension mismatch"};
    }
    FEDGUARD_CHECK_FINITE(update.theta,
                          "FedGuard: non-finite decoder parameters from client " +
                              std::to_string(update.client_id));
  }
  const std::size_t active = updates.size();
  const std::size_t latent = config_.cvae_spec.latent;

  // (1) Shared latent + conditioning samples [z_t], [y_t] (Alg. 1 lines 2-3).
  const std::size_t t = config_.total_samples;
  const tensor::Tensor z = models::sample_standard_normal(t, latent, rng_);
  const std::vector<int> y =
      models::sample_categorical_labels(t, config_.class_alpha, rng_);

  // (2) Synthesize D_syn from the uploaded decoders (Alg. 1 line 4).
  // Split mode: decoder j synthesizes the j-th slice of the shared samples
  // (|D_syn| = t). PerDecoder mode: every decoder synthesizes all t samples
  // (|D_syn| = |J| * t).
  std::vector<float> syn_pixels;
  std::vector<int> syn_labels;
  const std::size_t pixels = geometry_.pixels();
  auto decode_range = [&](const ClientUpdate& update, std::size_t begin, std::size_t count) {
    scratch_decoder_->load_parameters_flat(update.theta);
    tensor::Tensor z_slice{{count, latent}};
    std::vector<int> y_slice(count);
    for (std::size_t i = 0; i < count; ++i) {
      const auto src = z.row(begin + i);
      std::copy(src.begin(), src.end(), z_slice.row(i).begin());
      y_slice[i] = y[begin + i];
    }
    const tensor::Tensor images = scratch_decoder_->decode(z_slice, y_slice);
    syn_pixels.insert(syn_pixels.end(), images.data().begin(), images.data().end());
    syn_labels.insert(syn_labels.end(), y_slice.begin(), y_slice.end());
  };

  if (config_.sample_mode == FedGuardConfig::SampleMode::PerDecoder) {
    for (const auto& update : updates) decode_range(update, 0, t);
  } else {
    // Distribute t samples over |J| decoders, remainder to the first ones.
    const std::size_t base = t / active;
    const std::size_t extra = t % active;
    std::size_t offset = 0;
    for (std::size_t j = 0; j < active; ++j) {
      const std::size_t count = base + (j < extra ? 1 : 0);
      if (count == 0) continue;
      decode_range(updates[j], offset, count);
      offset += count;
    }
  }

  const std::size_t syn_count = syn_labels.size();
  tensor::Tensor syn_images = tensor::Tensor::from_data(
      {syn_count, geometry_.channels, geometry_.height, geometry_.width},
      std::move(syn_pixels));

  // (3) Score each client's classifier on D_syn (Alg. 1 line 5).
  last_scores_.assign(active, 0.0);
  for (std::size_t j = 0; j < active; ++j) {
    scratch_classifier_->load_parameters_flat(updates[j].psi);
    if (config_.score_metric == FedGuardConfig::ScoreMetric::Balanced) {
      // Mean per-class recall over the classes present in D_syn: a targeted
      // attack that sacrifices a class pair cannot hide behind the other
      // classes' accuracy.
      const std::vector<double> recalls =
          scratch_classifier_->evaluate_per_class(syn_images, syn_labels);
      std::vector<bool> present(recalls.size(), false);
      for (const int label : syn_labels) present[static_cast<std::size_t>(label)] = true;
      double total = 0.0;
      std::size_t classes_present = 0;
      for (std::size_t c = 0; c < recalls.size(); ++c) {
        if (present[c]) {
          total += recalls[c];
          ++classes_present;
        }
      }
      last_scores_[j] = classes_present > 0 ? total / static_cast<double>(classes_present)
                                            : 0.0;
    } else {
      last_scores_[j] = scratch_classifier_->evaluate_accuracy(syn_images, syn_labels);
    }
  }
  (void)pixels;

  // (4) Selective aggregation: keep ACC_j >= mean(ACC) (Alg. 1 lines 6-7).
  last_threshold_ = util::mean(std::span<const double>{last_scores_});
  std::vector<ClientUpdate> kept;
  AggregationResult result;
  for (std::size_t j = 0; j < active; ++j) {
    if (last_scores_[j] >= last_threshold_) {
      kept.push_back(updates[j]);
      result.accepted_clients.push_back(updates[j].client_id);
    } else {
      result.rejected_clients.push_back(updates[j].client_id);
    }
  }
  if (kept.empty()) {
    // Cannot happen with a finite mean (the max is always >= mean), but stay
    // defensive against NaN scores.
    kept.assign(updates.begin(), updates.end());
    result.accepted_clients = result.rejected_clients;
    result.rejected_clients.clear();
  }

  switch (config_.internal_operator) {
    case InternalOperator::FedAvg:
      result.parameters = weighted_mean(kept);
      break;
    case InternalOperator::GeoMed: {
      const std::size_t dim = kept.front().psi.size();
      std::vector<float> points;
      points.reserve(kept.size() * dim);
      for (const auto& update : kept) {
        points.insert(points.end(), update.psi.begin(), update.psi.end());
      }
      result.parameters = geometric_median(points, kept.size(), dim);
      break;
    }
    case InternalOperator::Median: {
      const std::size_t dim = kept.front().psi.size();
      std::vector<float> points;
      points.reserve(kept.size() * dim);
      for (const auto& update : kept) {
        points.insert(points.end(), update.psi.begin(), update.psi.end());
      }
      result.parameters = coordinate_median(points, kept.size(), dim);
      break;
    }
  }
  return result;
}

}  // namespace fedguard::defenses
