#pragma once
// Auxiliary-dataset audit — a PDGAN-style baseline (Zhao et al. 2019) reduced
// to its essence. PDGAN trains a server-side GAN on an auxiliary dataset and
// audits each client's accuracy on generated data; since the generator only
// approximates the auxiliary data, auditing on the auxiliary dataset directly
// is the idealized upper bound of that family. Like PDGAN it requires
// server-side data (the assumption FedGuard removes) and supports an
// initialization phase during which no filtering happens (PDGAN reports
// 400-600 warm-up rounds; configurable here).
//
// Filtering rule mirrors FedGuard's selective aggregation: keep updates at or
// above the round's mean auxiliary accuracy, FedAvg the survivors.

#include <memory>

#include "data/dataset.hpp"
#include "defenses/aggregation.hpp"
#include "models/classifier.hpp"

namespace fedguard::defenses {

class AuxiliaryAuditAggregator final : public AggregationStrategy {
 public:
  /// `warmup_rounds`: rounds of plain FedAvg before auditing starts (PDGAN's
  /// initialization phase; 0 = audit from the first round).
  AuxiliaryAuditAggregator(models::ClassifierArch arch, models::ImageGeometry geometry,
                           data::Dataset auxiliary, std::size_t warmup_rounds = 0,
                           std::uint64_t seed = 1);
  ~AuxiliaryAuditAggregator() override;

  [[nodiscard]] std::string name() const override { return "aux_audit"; }

  [[nodiscard]] const std::vector<double>& last_scores() const noexcept {
    return last_scores_;
  }

 private:
  void do_aggregate(const AggregationContext& context, const UpdateView& updates,
                    AggregationResult& out) override;

  data::Dataset auxiliary_;
  std::size_t warmup_rounds_;
  std::unique_ptr<models::Classifier> scratch_;
  tensor::Tensor audit_images_;
  std::vector<int> audit_labels_;
  std::vector<double> last_scores_;
  // Round-persistent scratch.
  std::vector<std::size_t> kept_slots_;
  std::vector<std::size_t> select_scratch_;
  std::vector<double> accumulator_;
};

}  // namespace fedguard::defenses
