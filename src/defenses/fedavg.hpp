#pragma once
// FedAvg (McMahan et al. 2016): sample-count weighted average of all client
// updates. The undefended baseline.

#include "defenses/aggregation.hpp"

namespace fedguard::defenses {

class FedAvgAggregator final : public AggregationStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "fedavg"; }

 private:
  void do_aggregate(const AggregationContext& context, const UpdateView& updates,
                    AggregationResult& out) override;

  std::vector<double> accumulator_;  // round-persistent scratch
};

}  // namespace fedguard::defenses
