#pragma once
// FedAvg (McMahan et al. 2016): sample-count weighted average of all client
// updates. The undefended baseline.

#include "defenses/aggregation.hpp"

namespace fedguard::defenses {

class FedAvgAggregator final : public AggregationStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "fedavg"; }
  /// A weighted mean merges exactly across shards (up to summation
  /// bracketing): shards fold running ψ sums, the root divides once.
  [[nodiscard]] bool supports_exact_merge() const override { return true; }

 protected:
  void do_partial_aggregate(const AggregationContext& context, const UpdateView& updates,
                            ShardPartial& out) override;

 private:
  void do_aggregate(const AggregationContext& context, const UpdateView& updates,
                    AggregationResult& out) override;

  std::vector<double> accumulator_;  // round-persistent scratch
};

}  // namespace fedguard::defenses
