#pragma once
// FedAvg (McMahan et al. 2016): sample-count weighted average of all client
// updates. The undefended baseline.

#include "defenses/aggregation.hpp"

namespace fedguard::defenses {

class FedAvgAggregator final : public AggregationStrategy {
 public:
  AggregationResult aggregate(const AggregationContext& context,
                              std::span<const ClientUpdate> updates) override;
  [[nodiscard]] std::string name() const override { return "fedavg"; }
};

}  // namespace fedguard::defenses
