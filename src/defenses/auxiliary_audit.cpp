#include "defenses/auxiliary_audit.hpp"

#include <numeric>
#include <stdexcept>

#include "util/stats.hpp"

namespace fedguard::defenses {

AuxiliaryAuditAggregator::AuxiliaryAuditAggregator(models::ClassifierArch arch,
                                                   models::ImageGeometry geometry,
                                                   data::Dataset auxiliary,
                                                   std::size_t warmup_rounds,
                                                   std::uint64_t seed)
    : auxiliary_{std::move(auxiliary)},
      warmup_rounds_{warmup_rounds},
      scratch_{std::make_unique<models::Classifier>(arch, geometry, seed)} {
  if (auxiliary_.empty()) {
    throw std::invalid_argument{"AuxiliaryAuditAggregator: auxiliary dataset is empty"};
  }
  std::vector<std::size_t> all(auxiliary_.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  data::Dataset::Batch batch = auxiliary_.gather(all);
  audit_images_ = std::move(batch.images);
  audit_labels_ = std::move(batch.labels);
}

AuxiliaryAuditAggregator::~AuxiliaryAuditAggregator() = default;

AggregationResult AuxiliaryAuditAggregator::aggregate(const AggregationContext& context,
                                                      std::span<const ClientUpdate> updates) {
  validate_updates(updates);
  AggregationResult result;
  if (context.round < warmup_rounds_) {
    // PDGAN initialization phase: aggregate everything (the window during
    // which the system is vulnerable — paper §II / §VI-A).
    last_scores_.assign(updates.size(), 0.0);
    result.parameters = weighted_mean(updates);
    for (const auto& update : updates) result.accepted_clients.push_back(update.client_id);
    return result;
  }

  last_scores_.resize(updates.size());
  for (std::size_t k = 0; k < updates.size(); ++k) {
    scratch_->load_parameters_flat(updates[k].psi);
    last_scores_[k] = scratch_->evaluate_accuracy(audit_images_, audit_labels_);
  }
  const double threshold = util::mean(std::span<const double>{last_scores_});

  std::vector<ClientUpdate> kept;
  for (std::size_t k = 0; k < updates.size(); ++k) {
    if (last_scores_[k] >= threshold) {
      kept.push_back(updates[k]);
      result.accepted_clients.push_back(updates[k].client_id);
    } else {
      result.rejected_clients.push_back(updates[k].client_id);
    }
  }
  if (kept.empty()) {
    kept.assign(updates.begin(), updates.end());
    result.accepted_clients = result.rejected_clients;
    result.rejected_clients.clear();
  }
  result.parameters = weighted_mean(kept);
  return result;
}

}  // namespace fedguard::defenses
