#include "defenses/auxiliary_audit.hpp"

#include <numeric>
#include <stdexcept>

#include "util/stats.hpp"

namespace fedguard::defenses {

AuxiliaryAuditAggregator::AuxiliaryAuditAggregator(models::ClassifierArch arch,
                                                   models::ImageGeometry geometry,
                                                   data::Dataset auxiliary,
                                                   std::size_t warmup_rounds,
                                                   std::uint64_t seed)
    : auxiliary_{std::move(auxiliary)},
      warmup_rounds_{warmup_rounds},
      scratch_{std::make_unique<models::Classifier>(arch, geometry, seed)} {
  if (auxiliary_.empty()) {
    throw std::invalid_argument{"AuxiliaryAuditAggregator: auxiliary dataset is empty"};
  }
  std::vector<std::size_t> all(auxiliary_.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  data::Dataset::Batch batch = auxiliary_.gather(all);
  audit_images_ = std::move(batch.images);
  audit_labels_ = std::move(batch.labels);
}

AuxiliaryAuditAggregator::~AuxiliaryAuditAggregator() = default;

void AuxiliaryAuditAggregator::do_aggregate(const AggregationContext& context,
                                            const UpdateView& updates, AggregationResult& out) {
  const std::size_t count = updates.count();
  if (context.round < warmup_rounds_) {
    // PDGAN initialization phase: aggregate everything (the window during
    // which the system is vulnerable — paper §II / §VI-A).
    last_scores_.assign(count, 0.0);
    weighted_mean_into(updates, accumulator_, out.parameters);
    for (std::size_t k = 0; k < count; ++k) {
      out.accepted_clients.push_back(updates.meta(k).client_id);
    }
    return;
  }

  last_scores_.resize(count);
  for (std::size_t k = 0; k < count; ++k) {
    scratch_->load_parameters_flat(updates.psi(k));
    last_scores_[k] = scratch_->evaluate_accuracy(audit_images_, audit_labels_);
  }
  const double threshold = util::mean(std::span<const double>{last_scores_});

  kept_slots_.clear();
  for (std::size_t k = 0; k < count; ++k) {
    if (last_scores_[k] >= threshold) {
      kept_slots_.push_back(k);
      out.accepted_clients.push_back(updates.meta(k).client_id);
    } else {
      out.rejected_clients.push_back(updates.meta(k).client_id);
    }
  }
  if (kept_slots_.empty()) {
    kept_slots_.resize(count);
    std::iota(kept_slots_.begin(), kept_slots_.end(), std::size_t{0});
    out.accepted_clients.swap(out.rejected_clients);
    out.rejected_clients.clear();
  }
  const UpdateView kept = updates.select(kept_slots_, select_scratch_);
  weighted_mean_into(kept, accumulator_, out.parameters);
}

}  // namespace fedguard::defenses
