#pragma once
// SPECTRAL baseline (Li et al. 2020, "Learning to Detect Malicious Clients
// for Robust Federated Learning").
//
// Working principle (Section II of the FedGuard paper): an auxiliary dataset
// at the server is used to pre-train, centrally, a (variational) autoencoder
// over low-dimensional surrogates of benign model updates. During federated
// rounds every uploaded update's surrogate is encoded/decoded; updates whose
// reconstruction error exceeds the dynamic threshold (the mean of the round's
// errors) are excluded from FedAvg aggregation.
//
// Our surrogate is the output-layer slice of the flat parameter vector (the
// trailing coordinates), z-normalized with statistics from the pre-training
// corpus — the same spirit as the reference implementation's low-dimensional
// update features. Pre-training simulates benign federated rounds on shards
// of the auxiliary dataset, starting from the very initialization the real
// federation uses (the strategy trains lazily on its first aggregate call,
// which passes that initialization in the context).

#include <cstdint>
#include <memory>

#include "data/dataset.hpp"
#include "defenses/aggregation.hpp"
#include "models/classifier.hpp"
#include "models/vae.hpp"
#include "util/rng.hpp"

namespace fedguard::defenses {

struct SpectralConfig {
  std::size_t surrogate_dim = 1024;    // trailing slice of psi (clamped to dim)
  std::size_t pretrain_rounds = 6;     // simulated benign FL rounds
  std::size_t pretrain_clients = 8;    // shards of the auxiliary dataset
  std::size_t local_epochs = 1;        // per simulated client round
  std::size_t batch_size = 32;
  float local_learning_rate = 0.1f;
  float local_momentum = 0.9f;
  std::size_t vae_epochs = 60;
  std::size_t vae_hidden = 64;
  std::size_t vae_latent = 8;
  float vae_learning_rate = 1e-3f;
};

class SpectralAggregator final : public AggregationStrategy {
 public:
  /// `auxiliary` is the server-side public dataset the method assumes
  /// (simulated here; see DESIGN.md §1).
  SpectralAggregator(SpectralConfig config, models::ClassifierArch arch,
                     models::ImageGeometry geometry, data::Dataset auxiliary,
                     std::uint64_t seed);
  ~SpectralAggregator() override;

  [[nodiscard]] std::string name() const override { return "spectral"; }

  /// Reconstruction errors of the most recent round (diagnostics).
  [[nodiscard]] const std::vector<double>& last_errors() const noexcept {
    return last_errors_;
  }
  [[nodiscard]] bool pretrained() const noexcept { return vae_ != nullptr; }

 private:
  void do_aggregate(const AggregationContext& context, const UpdateView& updates,
                    AggregationResult& out) override;

  void pretrain(std::span<const float> initial_parameters);
  [[nodiscard]] std::vector<float> surrogate(std::span<const float> psi) const;
  [[nodiscard]] std::vector<float> normalized_surrogate(std::span<const float> psi) const;

  SpectralConfig config_;
  models::ClassifierArch arch_;
  models::ImageGeometry geometry_;
  data::Dataset auxiliary_;
  util::Rng rng_;
  std::unique_ptr<models::Classifier> scratch_;
  std::unique_ptr<models::Vae> vae_;
  std::vector<double> feature_mean_;
  std::vector<double> feature_stddev_;
  std::vector<double> last_errors_;
  std::size_t effective_surrogate_dim_ = 0;
  // Round-persistent scratch.
  std::vector<std::size_t> kept_slots_;
  std::vector<std::size_t> select_scratch_;
  std::vector<double> accumulator_;
};

}  // namespace fedguard::defenses
