#pragma once
// Norm-threshold defense (Sun et al., "Can you really backdoor federated
// learning?"): updates are measured as deltas from the current global model;
// deltas whose L2 norm exceeds the threshold (the median delta norm by
// default) are scaled down to the threshold, then averaged. The paper notes
// sign-flipping preserves norms and defeats this family — reproduced in our
// tests.

#include "defenses/aggregation.hpp"

namespace fedguard::defenses {

class NormThresholdAggregator final : public AggregationStrategy {
 public:
  /// threshold_multiplier scales the median delta norm used as the bound.
  explicit NormThresholdAggregator(double threshold_multiplier = 1.0)
      : threshold_multiplier_{threshold_multiplier} {}

  [[nodiscard]] std::string name() const override { return "norm_threshold"; }

 private:
  void do_aggregate(const AggregationContext& context, const UpdateView& updates,
                    AggregationResult& out) override;

  double threshold_multiplier_;
};

}  // namespace fedguard::defenses
