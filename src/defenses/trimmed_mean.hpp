#pragma once
// Coordinate-wise trimmed mean (Yin et al. 2018): drop the beta-fraction
// smallest and largest values of each coordinate, average the rest.

#include "defenses/aggregation.hpp"

namespace fedguard::defenses {

class TrimmedMeanAggregator final : public AggregationStrategy {
 public:
  /// `trim_fraction` in [0, 0.5): fraction trimmed from EACH side.
  explicit TrimmedMeanAggregator(double trim_fraction = 0.2);

  AggregationResult aggregate(const AggregationContext& context,
                              std::span<const ClientUpdate> updates) override;
  [[nodiscard]] std::string name() const override { return "trimmed_mean"; }

 private:
  double trim_fraction_;
};

/// Trimmed mean over a flattened [count, dim] point set.
[[nodiscard]] std::vector<float> trimmed_mean(std::span<const float> points, std::size_t count,
                                              std::size_t dim, double trim_fraction);

}  // namespace fedguard::defenses
