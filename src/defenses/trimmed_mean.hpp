#pragma once
// Coordinate-wise trimmed mean (Yin et al. 2018): drop the beta-fraction
// smallest and largest values of each coordinate, average the rest.

#include "defenses/aggregation.hpp"

namespace fedguard::defenses {

class TrimmedMeanAggregator final : public AggregationStrategy {
 public:
  /// `trim_fraction` in [0, 0.5): fraction trimmed from EACH side.
  explicit TrimmedMeanAggregator(double trim_fraction = 0.2);

  [[nodiscard]] std::string name() const override { return "trimmed_mean"; }

 private:
  void do_aggregate(const AggregationContext& context, const UpdateView& updates,
                    AggregationResult& out) override;

  double trim_fraction_;
};

/// Trimmed mean over the view's rows.
[[nodiscard]] std::vector<float> trimmed_mean(const PointsView& points, double trim_fraction);
/// Flattened [count, dim] form, kept for direct testing and external callers.
[[nodiscard]] std::vector<float> trimmed_mean(std::span<const float> points, std::size_t count,
                                              std::size_t dim, double trim_fraction);

}  // namespace fedguard::defenses
