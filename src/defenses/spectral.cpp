#include "defenses/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "data/dataloader.hpp"
#include "data/partition.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace fedguard::defenses {

SpectralAggregator::SpectralAggregator(SpectralConfig config, models::ClassifierArch arch,
                                       models::ImageGeometry geometry, data::Dataset auxiliary,
                                       std::uint64_t seed)
    : config_{config},
      arch_{arch},
      geometry_{geometry},
      auxiliary_{std::move(auxiliary)},
      rng_{seed},
      scratch_{std::make_unique<models::Classifier>(arch, geometry, seed)} {
  if (auxiliary_.empty()) {
    throw std::invalid_argument{"SpectralAggregator: auxiliary dataset is empty"};
  }
  effective_surrogate_dim_ = std::min(config_.surrogate_dim, scratch_->parameter_count());
}

SpectralAggregator::~SpectralAggregator() = default;

std::vector<float> SpectralAggregator::surrogate(std::span<const float> psi) const {
  // Trailing slice = the output layer (parameters are flattened in
  // declaration order, and every classifier arch ends with the output
  // Linear).
  return {psi.end() - static_cast<std::ptrdiff_t>(effective_surrogate_dim_), psi.end()};
}

std::vector<float> SpectralAggregator::normalized_surrogate(std::span<const float> psi) const {
  std::vector<float> s = surrogate(psi);
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i] = static_cast<float>((s[i] - feature_mean_[i]) / feature_stddev_[i]);
  }
  return s;
}

void SpectralAggregator::pretrain(std::span<const float> initial_parameters) {
  util::log_info("spectral: pre-training detection VAE (%zu simulated rounds, %zu shards)",
                 config_.pretrain_rounds, config_.pretrain_clients);
  // Shard the auxiliary dataset into simulated benign clients.
  const data::Partition shards =
      data::iid_partition(auxiliary_.size(), config_.pretrain_clients, rng_());

  std::vector<float> global(initial_parameters.begin(), initial_parameters.end());
  std::vector<std::vector<float>> surrogates;
  surrogates.reserve(config_.pretrain_rounds * config_.pretrain_clients);

  for (std::size_t round = 0; round < config_.pretrain_rounds; ++round) {
    std::vector<double> accumulator(global.size(), 0.0);
    for (std::size_t shard = 0; shard < shards.size(); ++shard) {
      scratch_->load_parameters_flat(global);
      data::DataLoader loader{auxiliary_, shards[shard], config_.batch_size, rng_()};
      for (std::size_t epoch = 0; epoch < config_.local_epochs; ++epoch) {
        loader.start_epoch();
        data::Dataset::Batch batch;
        while (loader.next(batch)) {
          scratch_->train_batch(batch.images, batch.labels, config_.local_learning_rate,
                                config_.local_momentum);
        }
      }
      const std::vector<float> trained = scratch_->parameters_flat();
      surrogates.push_back(surrogate(trained));
      for (std::size_t i = 0; i < global.size(); ++i) accumulator[i] += trained[i];
    }
    for (std::size_t i = 0; i < global.size(); ++i) {
      global[i] = static_cast<float>(accumulator[i] / static_cast<double>(shards.size()));
    }
  }

  // Normalization statistics over the pre-training corpus.
  const std::size_t dim = effective_surrogate_dim_;
  feature_mean_.assign(dim, 0.0);
  feature_stddev_.assign(dim, 0.0);
  for (const auto& s : surrogates) {
    for (std::size_t i = 0; i < dim; ++i) feature_mean_[i] += s[i];
  }
  for (auto& m : feature_mean_) m /= static_cast<double>(surrogates.size());
  for (const auto& s : surrogates) {
    for (std::size_t i = 0; i < dim; ++i) {
      const double d = s[i] - feature_mean_[i];
      feature_stddev_[i] += d * d;
    }
  }
  for (auto& sd : feature_stddev_) {
    sd = std::sqrt(sd / static_cast<double>(surrogates.size()));
    if (sd < 1e-8) sd = 1.0;  // constant feature: leave centered only
  }

  // Train the VAE on normalized surrogates.
  tensor::Tensor corpus{{surrogates.size(), dim}};
  for (std::size_t k = 0; k < surrogates.size(); ++k) {
    for (std::size_t i = 0; i < dim; ++i) {
      corpus.at(k, i) =
          static_cast<float>((surrogates[k][i] - feature_mean_[i]) / feature_stddev_[i]);
    }
  }
  models::VaeSpec spec;
  spec.input_dim = dim;
  spec.hidden = config_.vae_hidden;
  spec.latent = config_.vae_latent;
  vae_ = std::make_unique<models::Vae>(spec, rng_());
  const float final_loss = vae_->train(corpus, config_.vae_epochs,
                                       std::min<std::size_t>(16, surrogates.size()),
                                       config_.vae_learning_rate);
  util::log_info("spectral: VAE pre-training done (final loss %.4f, %zu surrogates)",
                 static_cast<double>(final_loss), surrogates.size());
}

void SpectralAggregator::do_aggregate(const AggregationContext& context,
                                      const UpdateView& updates, AggregationResult& out) {
  if (!vae_) pretrain(context.global_parameters);

  // Score every update by surrogate reconstruction error.
  const std::size_t count = updates.count();
  last_errors_.assign(count, 0.0);
  for (std::size_t k = 0; k < count; ++k) {
    const std::vector<float> s = normalized_surrogate(updates.psi(k));
    tensor::Tensor batch = tensor::Tensor::from_data({1, s.size()}, s);
    last_errors_[k] = vae_->reconstruction_errors(batch).front();
  }
  const double threshold = util::mean(std::span<const double>{last_errors_});

  // Keep updates at or below the dynamic threshold (mean of errors). The kept
  // set is an index sub-view over the round arena — no psi copies.
  kept_slots_.clear();
  for (std::size_t k = 0; k < count; ++k) {
    if (last_errors_[k] <= threshold) {
      kept_slots_.push_back(k);
      out.accepted_clients.push_back(updates.meta(k).client_id);
    } else {
      out.rejected_clients.push_back(updates.meta(k).client_id);
    }
  }
  if (kept_slots_.empty()) {
    // Degenerate round (all errors equal/above); fall back to FedAvg over all.
    kept_slots_.resize(count);
    std::iota(kept_slots_.begin(), kept_slots_.end(), std::size_t{0});
    out.accepted_clients.swap(out.rejected_clients);
    out.rejected_clients.clear();
  }
  const UpdateView kept = updates.select(kept_slots_, select_scratch_);
  weighted_mean_into(kept, accumulator_, out.parameters);
}

}  // namespace fedguard::defenses
