#include "defenses/bulyan.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "defenses/krum.hpp"
#include "parallel/kernel_config.hpp"

namespace fedguard::defenses {

void BulyanAggregator::do_aggregate(const AggregationContext& /*context*/,
                                    const UpdateView& updates, AggregationResult& out) {
  const std::size_t dim = updates.psi_dim();
  const std::size_t count = updates.count();

  auto f = static_cast<std::size_t>(byzantine_fraction_ * static_cast<double>(count));
  // Selection set size n - 2f, at least 1.
  std::size_t selection_size = (count > 2 * f) ? count - 2 * f : 1;

  // Stage 1: iterative Krum selection without replacement. Pairwise distances
  // never change between eliminations, so the O(n^2 d) matrix is computed once
  // up front; each iteration re-scores the remaining candidates by lookup —
  // only the O(n) row-index list shrinks, never the [n, dim] point data, and
  // no distance is ever recomputed.
  pairwise_squared_distances(updates.points(), distance2_);
  std::vector<std::size_t> remaining(count);
  std::iota(remaining.begin(), remaining.end(), std::size_t{0});
  std::vector<std::size_t> selected;
  while (selected.size() < selection_size && remaining.size() > 0) {
    if (remaining.size() == 1) {
      selected.push_back(remaining.front());
      remaining.clear();
      break;
    }
    const std::vector<double> scores =
        krum_scores_from_distances(distance2_, count, remaining, f);
    const std::size_t best = static_cast<std::size_t>(
        std::min_element(scores.begin(), scores.end()) - scores.begin());
    selected.push_back(remaining[best]);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best));
  }

  // Stage 2: per-coordinate, average the selection_size - 2f values closest
  // to the coordinate median (trimmed mean around the median). Coordinates
  // are independent, so the loop partitions over the kernel pool; each range
  // sorts into its own column buffer.
  std::size_t beta = (selected.size() > 2 * f) ? selected.size() - 2 * f : 1;
  out.parameters.resize(dim);
  std::vector<const float*> rows(selected.size());
  for (std::size_t k = 0; k < selected.size(); ++k) rows[k] = updates.psi(selected[k]).data();
  const auto trimmed_coordinates = [&](std::size_t begin, std::size_t end) {
    std::vector<float> column(selected.size());
    for (std::size_t i = begin; i < end; ++i) {
      for (std::size_t k = 0; k < selected.size(); ++k) {
        column[k] = rows[k][i];
      }
      std::sort(column.begin(), column.end());
      const float median_value = column[column.size() / 2];
      // Sort by distance to the median and average the closest beta.
      std::partial_sort(column.begin(), column.begin() + static_cast<std::ptrdiff_t>(beta),
                        column.end(), [median_value](float a, float b) {
                          return std::abs(a - median_value) < std::abs(b - median_value);
                        });
      double total = 0.0;
      for (std::size_t k = 0; k < beta; ++k) total += column[k];
      out.parameters[i] = static_cast<float>(total / static_cast<double>(beta));
    }
  };
  const parallel::KernelConfig kernel_cfg = parallel::kernel_config();
  if (parallel::should_parallelize(dim * selected.size(),
                                   kernel_cfg.distance_min_elements)) {
    parallel::kernel_parallel_ranges(dim, 1024, trimmed_coordinates);
  } else {
    trimmed_coordinates(0, dim);
  }

  for (std::size_t k = 0; k < count; ++k) {
    if (std::find(selected.begin(), selected.end(), k) != selected.end()) {
      out.accepted_clients.push_back(updates.meta(k).client_id);
    } else {
      out.rejected_clients.push_back(updates.meta(k).client_id);
    }
  }
}

}  // namespace fedguard::defenses
