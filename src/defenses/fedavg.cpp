#include "defenses/fedavg.hpp"

namespace fedguard::defenses {

AggregationResult FedAvgAggregator::aggregate(const AggregationContext& /*context*/,
                                              std::span<const ClientUpdate> updates) {
  AggregationResult result;
  result.parameters = weighted_mean(updates);
  result.accepted_clients.reserve(updates.size());
  for (const auto& update : updates) result.accepted_clients.push_back(update.client_id);
  return result;
}

}  // namespace fedguard::defenses
