#include "defenses/fedavg.hpp"

namespace fedguard::defenses {

void FedAvgAggregator::do_aggregate(const AggregationContext& /*context*/,
                                    const UpdateView& updates, AggregationResult& out) {
  weighted_mean_into(updates, accumulator_, out.parameters);
  out.accepted_clients.reserve(updates.count());
  for (std::size_t k = 0; k < updates.count(); ++k) {
    out.accepted_clients.push_back(updates.meta(k).client_id);
  }
}

}  // namespace fedguard::defenses
