#include "defenses/fedavg.hpp"

namespace fedguard::defenses {

void FedAvgAggregator::do_aggregate(const AggregationContext& /*context*/,
                                    const UpdateView& updates, AggregationResult& out) {
  weighted_mean_into(updates, accumulator_, out.parameters);
  out.accepted_clients.reserve(updates.count());
  for (std::size_t k = 0; k < updates.count(); ++k) {
    out.accepted_clients.push_back(updates.meta(k).client_id);
  }
}

void FedAvgAggregator::do_partial_aggregate(const AggregationContext& /*context*/,
                                            const UpdateView& updates, ShardPartial& out) {
  // Exact path: fold every cohort row in slot order. The shard tier uses the
  // same fold_exact_update primitive incrementally as replies arrive, so the
  // batch and streaming forms produce bit-identical accumulators.
  for (std::size_t k = 0; k < updates.count(); ++k) {
    fold_exact_update(out, updates.psi(k), updates.meta(k));
  }
}

}  // namespace fedguard::defenses
