#pragma once
// Round-scoped zero-copy storage for client uploads.
//
// One federated round produces an [count, psi_dim] matrix of flat parameter
// vectors (plus, for FedGuard, a [count, theta_dim] matrix of decoder
// vectors). `UpdateMatrix` owns both planes as contiguous row-major arenas
// with per-row metadata; producers (fl::Client, the RemoteServer frame
// decoder) write their assigned row in place, and consumers (every
// AggregationStrategy) read the rows through non-owning views:
//
//   UpdateMatrix  — the arena; reset() per round, capacity persists.
//   UpdateRow     — mutable handle to one row, handed to the producer.
//   UpdateView    — read-only row selection handed to a strategy; identity
//                   over the whole arena or an index sub-selection.
//   PointsView    — bare [n, d] point-set over psi rows, the shape the robust
//                   operators (krum_scores, geometric_median, ...) consume.
//
// Selections are index indirections, never data copies: Bulyan's elimination
// loop and FedGuard's kept-set operators filter indices instead of
// re-concatenating sub-matrices.

#include <cstddef>
#include <span>
#include <vector>

namespace fedguard::defenses {

/// Per-row metadata mirroring the owned ClientUpdate fields.
struct UpdateMeta {
  int client_id = -1;
  std::size_t num_samples = 0;
  bool truly_malicious = false;  // ground truth, for detection metrics only
  /// Actual decoder vector length written into the row's theta plane. May
  /// legitimately differ from UpdateMatrix::theta_dim() (a misconfigured
  /// client); strategies validate it against decoder_parameter_count().
  std::size_t theta_count = 0;
};

/// Mutable handle to one arena row, handed to whoever fills it. `theta` spans
/// the full capacity plane; the producer records the filled prefix length in
/// `meta->theta_count`.
struct UpdateRow {
  std::span<float> psi;
  std::span<float> theta;
  UpdateMeta* meta = nullptr;
};

class UpdateMatrix {
 public:
  /// Resize for a new round. Backing buffers only grow, so steady-state
  /// rounds (same count/dims) perform no heap allocation. Metadata is reset
  /// to defaults; the float planes are left uninitialised for producers.
  void reset(std::size_t count, std::size_t psi_dim, std::size_t theta_dim = 0);

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] std::size_t psi_dim() const noexcept { return psi_dim_; }
  [[nodiscard]] std::size_t theta_dim() const noexcept { return theta_dim_; }

  [[nodiscard]] std::span<float> psi(std::size_t row) noexcept {
    return {psi_storage_.data() + row * psi_dim_, psi_dim_};
  }
  [[nodiscard]] std::span<const float> psi(std::size_t row) const noexcept {
    return {psi_storage_.data() + row * psi_dim_, psi_dim_};
  }
  /// Filled prefix of the row's theta plane (meta.theta_count floats, clamped
  /// to capacity — a mismatching count is reported via meta, not read).
  [[nodiscard]] std::span<const float> theta(std::size_t row) const noexcept;
  [[nodiscard]] UpdateMeta& meta(std::size_t row) noexcept { return meta_[row]; }
  [[nodiscard]] const UpdateMeta& meta(std::size_t row) const noexcept { return meta_[row]; }

  [[nodiscard]] UpdateRow row(std::size_t r) noexcept;

  /// The whole psi arena, row-major [count * psi_dim].
  [[nodiscard]] std::span<const float> psi_data() const noexcept {
    return {psi_storage_.data(), count_ * psi_dim_};
  }

  /// Bytes reserved by the backing planes. Grow-only, so in steady state
  /// (same count/dims per round) this must plateau — the servers snapshot it
  /// into the obs_arena_capacity_bytes gauge, which the soak harness watches
  /// as a leak invariant.
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return psi_storage_.capacity() * sizeof(float) +
           theta_storage_.capacity() * sizeof(float) +
           meta_.capacity() * sizeof(UpdateMeta);
  }

 private:
  std::size_t count_ = 0;
  std::size_t psi_dim_ = 0;
  std::size_t theta_dim_ = 0;
  std::vector<float> psi_storage_;
  std::vector<float> theta_storage_;
  std::vector<UpdateMeta> meta_;
};

/// Read-only [count, dim] point-set: a contiguous buffer or an arbitrary row
/// selection over one (index indirection, no data copies).
class PointsView {
 public:
  /// Contiguous points: `flat` holds count*dim floats, row k at [k*dim, dim).
  PointsView(std::span<const float> flat, std::size_t count, std::size_t dim) noexcept
      : base_{flat}, count_{count}, dim_{dim} {}
  /// Row selection: logical row k is base row rows[k]. `rows` must outlive
  /// the view.
  PointsView(std::span<const float> base, std::size_t dim,
             std::span<const std::size_t> rows) noexcept
      : base_{base}, count_{rows.size()}, dim_{dim}, rows_{rows}, selected_{true} {}

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::span<const float> row(std::size_t k) const noexcept {
    return base_.subspan((selected_ ? rows_[k] : k) * dim_, dim_);
  }

 private:
  std::span<const float> base_;
  std::size_t count_ = 0;
  std::size_t dim_ = 0;
  std::span<const std::size_t> rows_;
  bool selected_ = false;
};

/// Non-owning selection of arena rows handed to an AggregationStrategy. The
/// identity view covers every arena row in order; sub-selections reference a
/// caller-owned index buffer that must outlive the view.
class UpdateView {
 public:
  explicit UpdateView(const UpdateMatrix& matrix) noexcept : matrix_{&matrix} {}
  UpdateView(const UpdateMatrix& matrix, std::span<const std::size_t> rows) noexcept
      : matrix_{&matrix}, rows_{rows}, selected_{true} {}

  [[nodiscard]] const UpdateMatrix& matrix() const noexcept { return *matrix_; }
  [[nodiscard]] std::size_t count() const noexcept {
    return selected_ ? rows_.size() : matrix_->count();
  }
  [[nodiscard]] std::size_t psi_dim() const noexcept { return matrix_->psi_dim(); }
  /// Arena row backing selection slot k.
  [[nodiscard]] std::size_t row_index(std::size_t k) const noexcept {
    return selected_ ? rows_[k] : k;
  }
  [[nodiscard]] std::span<const float> psi(std::size_t k) const noexcept {
    return matrix_->psi(row_index(k));
  }
  [[nodiscard]] std::span<const float> theta(std::size_t k) const noexcept {
    return matrix_->theta(row_index(k));
  }
  [[nodiscard]] const UpdateMeta& meta(std::size_t k) const noexcept {
    return matrix_->meta(row_index(k));
  }

  /// The psi rows as a point-set (contiguous for the identity view).
  [[nodiscard]] PointsView points() const noexcept;
  /// Compose a sub-selection: `slots` index THIS view. `storage` receives the
  /// composed arena-row indices backing the returned view and must stay alive
  /// (and unmodified) while the view is in use.
  [[nodiscard]] UpdateView select(std::span<const std::size_t> slots,
                                  std::vector<std::size_t>& storage) const;

 private:
  const UpdateMatrix* matrix_;
  std::span<const std::size_t> rows_;
  bool selected_ = false;
};

}  // namespace fedguard::defenses
