#pragma once
// Krum and Multi-Krum (Blanchard et al. 2017). Each update is scored by the
// sum of squared distances to its n - f - 2 nearest neighbours; Krum selects
// the single best-scored update as the global model, Multi-Krum averages the
// k best.

#include "defenses/aggregation.hpp"

namespace fedguard::defenses {

class KrumAggregator final : public AggregationStrategy {
 public:
  /// `byzantine_estimate_fraction` is the assumed fraction f/n of malicious
  /// updates; f is clamped so that n - f - 2 >= 1. `multi_k` = 1 gives plain
  /// Krum; larger values average the multi_k best-scored updates.
  explicit KrumAggregator(double byzantine_estimate_fraction = 0.25, std::size_t multi_k = 1)
      : byzantine_fraction_{byzantine_estimate_fraction}, multi_k_{multi_k} {}

  AggregationResult aggregate(const AggregationContext& context,
                              std::span<const ClientUpdate> updates) override;
  [[nodiscard]] std::string name() const override {
    return multi_k_ > 1 ? "multi_krum" : "krum";
  }

 private:
  double byzantine_fraction_;
  std::size_t multi_k_;
};

/// Krum scores for a flattened [count, dim] point set given the byzantine
/// count f (clamped internally). Exposed for direct testing.
[[nodiscard]] std::vector<double> krum_scores(std::span<const float> points, std::size_t count,
                                              std::size_t dim, std::size_t byzantine_count);

}  // namespace fedguard::defenses
