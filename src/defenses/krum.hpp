#pragma once
// Krum and Multi-Krum (Blanchard et al. 2017). Each update is scored by the
// sum of squared distances to its n - f - 2 nearest neighbours; Krum selects
// the single best-scored update as the global model, Multi-Krum averages the
// k best.

#include "defenses/aggregation.hpp"

namespace fedguard::defenses {

class KrumAggregator final : public AggregationStrategy {
 public:
  /// `byzantine_estimate_fraction` is the assumed fraction f/n of malicious
  /// updates; f is clamped so that n - f - 2 >= 1. `multi_k` = 1 gives plain
  /// Krum; larger values average the multi_k best-scored updates.
  explicit KrumAggregator(double byzantine_estimate_fraction = 0.25, std::size_t multi_k = 1)
      : byzantine_fraction_{byzantine_estimate_fraction}, multi_k_{multi_k} {}

  [[nodiscard]] std::string name() const override {
    return multi_k_ > 1 ? "multi_krum" : "krum";
  }

 protected:
  /// Metadata routing with scores attached: the shard runs Krum on its own
  /// cohort (so its f budget applies per shard, not globally — the
  /// robustness cost docs/SHARDING.md quantifies) and ships the per-slot
  /// Krum scores upward alongside the accept set.
  void do_partial_aggregate(const AggregationContext& context, const UpdateView& updates,
                            ShardPartial& out) override;

 private:
  void do_aggregate(const AggregationContext& context, const UpdateView& updates,
                    AggregationResult& out) override;

  double byzantine_fraction_;
  std::size_t multi_k_;
  // Round-persistent scratch.
  std::vector<double> scores_;
  std::vector<std::size_t> order_;
  std::vector<std::size_t> selected_;
  std::vector<double> accumulator_;
};

/// Krum scores for an [count, dim] point set given the byzantine count f
/// (clamped internally). The PointsView form reads rows through the view's
/// index indirection without materializing a sub-matrix.
[[nodiscard]] std::vector<double> krum_scores(const PointsView& points,
                                              std::size_t byzantine_count);
/// Flattened-buffer form, kept for direct testing and external callers.
[[nodiscard]] std::vector<double> krum_scores(std::span<const float> points, std::size_t count,
                                              std::size_t dim, std::size_t byzantine_count);

/// Fills `distance2` with the [count, count] pairwise squared-distance matrix
/// of the point set; each pair is computed exactly once (upper triangle,
/// mirrored). The O(n^2 d) part of Krum scoring, split out so iterated
/// selection (Bulyan stage 1) pays it once instead of per elimination round.
void pairwise_squared_distances(const PointsView& points, std::vector<double>& distance2);

/// Krum scores for the subset `rows` of a point set whose pairwise distances
/// were precomputed with pairwise_squared_distances (`stride` = the full point
/// count the matrix was built over). Looks distances up instead of recomputing
/// them; bit-identical to krum_scores over the materialized subset.
[[nodiscard]] std::vector<double> krum_scores_from_distances(
    std::span<const double> distance2, std::size_t stride,
    std::span<const std::size_t> rows, std::size_t byzantine_count);

}  // namespace fedguard::defenses
