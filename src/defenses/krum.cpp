#include "defenses/krum.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "obs/trace.hpp"
#include "parallel/kernel_config.hpp"
#include "tensor/kernels/kernel_arch.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace fedguard::defenses {

void pairwise_squared_distances(const PointsView& points, std::vector<double>& distance2) {
  const std::size_t count = points.count();
  const std::size_t dim = points.dim();
  if (count == 0 || dim == 0) {
    throw std::invalid_argument{"pairwise_squared_distances: bad dimensions"};
  }
  // The O(n^2 * d) hot spot. Rows of the upper triangle are partitioned
  // across the kernel pool; row `a` writes only entries [a][b] and [b][a] for
  // b > a, so partitions never collide, and each distance is computed exactly
  // once regardless of thread count. The inner loop goes through the runtime
  // kernel dispatch; the serial tier is bit-identical to
  // util::squared_distance.
  distance2.assign(count * count, 0.0);
  const auto squared_distance = tensor::kernels::kernel_table().squared_distance;
  const auto distance_row = [&](std::size_t a) {
    const std::span<const float> row_a = points.row(a);
    for (std::size_t b = a + 1; b < count; ++b) {
      const double d2 = squared_distance(row_a.data(), points.row(b).data(), dim);
      distance2[a * count + b] = d2;
      distance2[b * count + a] = d2;
    }
  };
  const std::size_t work = count * dim;
  const parallel::KernelConfig config = parallel::kernel_config();
  if (parallel::should_parallelize(work, config.distance_min_elements)) {
    parallel::kernel_parallel_ranges(count, 1, [&](std::size_t begin, std::size_t end) {
      for (std::size_t a = begin; a < end; ++a) distance_row(a);
    });
  } else {
    for (std::size_t a = 0; a < count; ++a) distance_row(a);
  }
}

std::vector<double> krum_scores_from_distances(std::span<const double> distance2,
                                               std::size_t stride,
                                               std::span<const std::size_t> rows,
                                               std::size_t byzantine_count) {
  const std::size_t count = rows.size();
  if (count == 0 || stride == 0 || distance2.size() != stride * stride) {
    throw std::invalid_argument{"krum_scores_from_distances: bad dimensions"};
  }
  for (const std::size_t r : rows) {
    if (r >= stride) {
      throw std::invalid_argument{"krum_scores_from_distances: row index out of range"};
    }
  }
  // Clamp f so each update has at least one neighbour in its score.
  std::size_t f = byzantine_count;
  if (count < 3) f = 0;
  else if (f + 2 >= count) f = count - 3;
  const std::size_t neighbours = count - f - 2 > 0 ? count - f - 2 : 1;

  // Per-update neighbour sums over the precomputed matrix. Candidate order
  // (and therefore the summation order after the partial sort) matches a
  // fresh krum_scores call over the materialized subset exactly.
  std::vector<double> scores(count, 0.0);
  const auto score_rows = [&](std::size_t begin, std::size_t end) {
    std::vector<double> row;
    for (std::size_t a = begin; a < end; ++a) {
      row.clear();
      for (std::size_t b = 0; b < count; ++b) {
        if (b != a) row.push_back(distance2[rows[a] * stride + rows[b]]);
      }
      const std::size_t k = std::min(neighbours, row.size());
      std::partial_sort(row.begin(), row.begin() + static_cast<std::ptrdiff_t>(k), row.end());
      scores[a] =
          std::accumulate(row.begin(), row.begin() + static_cast<std::ptrdiff_t>(k), 0.0);
    }
  };
  const parallel::KernelConfig config = parallel::kernel_config();
  if (parallel::should_parallelize(count * count, config.distance_min_elements)) {
    parallel::kernel_parallel_ranges(count, 1, score_rows);
  } else {
    score_rows(0, count);
  }
  return scores;
}

std::vector<double> krum_scores(const PointsView& points, std::size_t byzantine_count) {
  const std::size_t count = points.count();
  const std::size_t dim = points.dim();
  if (count == 0 || dim == 0) {
    throw std::invalid_argument{"krum_scores: bad dimensions"};
  }
  for (std::size_t k = 0; k < count; ++k) {
    FEDGUARD_CHECK_FINITE(points.row(k), "krum_scores: non-finite input point");
  }
  // These spans also fire when Bulyan reuses Krum's scorer; they stay in the
  // agg.krum category and nest under the caller's agg.<strategy> parent.
  std::vector<double> distance2;
  {
    FEDGUARD_TRACE_SPAN("agg.krum", "pairwise");
    pairwise_squared_distances(points, distance2);
  }
  FEDGUARD_TRACE_SPAN("agg.krum", "score");
  std::vector<std::size_t> rows(count);
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  return krum_scores_from_distances(distance2, count, rows, byzantine_count);
}

std::vector<double> krum_scores(std::span<const float> points, std::size_t count,
                                std::size_t dim, std::size_t byzantine_count) {
  if (count == 0 || dim == 0 || points.size() != count * dim) {
    throw std::invalid_argument{"krum_scores: bad dimensions"};
  }
  return krum_scores(PointsView{points, count, dim}, byzantine_count);
}

void KrumAggregator::do_aggregate(const AggregationContext& /*context*/,
                                  const UpdateView& updates, AggregationResult& out) {
  const std::size_t count = updates.count();
  const auto byzantine_count =
      static_cast<std::size_t>(byzantine_fraction_ * static_cast<double>(count));
  scores_ = krum_scores(updates.points(), byzantine_count);

  FEDGUARD_TRACE_SPAN("agg.krum", "pick");
  order_.resize(count);
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  std::sort(order_.begin(), order_.end(),
            [this](std::size_t a, std::size_t b) { return scores_[a] < scores_[b]; });

  const std::size_t keep = std::min(std::max<std::size_t>(multi_k_, 1), count);
  selected_.assign(order_.begin(), order_.begin() + static_cast<std::ptrdiff_t>(keep));
  mean_of_into(updates, selected_, accumulator_, out.parameters);
  for (std::size_t k = 0; k < count; ++k) {
    if (std::find(selected_.begin(), selected_.end(), k) != selected_.end()) {
      out.accepted_clients.push_back(updates.meta(k).client_id);
    } else {
      out.rejected_clients.push_back(updates.meta(k).client_id);
    }
  }
}

void KrumAggregator::do_partial_aggregate(const AggregationContext& context,
                                          const UpdateView& updates, ShardPartial& out) {
  AggregationStrategy::do_partial_aggregate(context, updates, out);
  out.selection_scores = scores_;  // do_aggregate just filled the scratch
}

}  // namespace fedguard::defenses
