#include "defenses/krum.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "parallel/kernel_config.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace fedguard::defenses {

std::vector<double> krum_scores(std::span<const float> points, std::size_t count,
                                std::size_t dim, std::size_t byzantine_count) {
  if (count == 0 || dim == 0 || points.size() != count * dim) {
    throw std::invalid_argument{"krum_scores: bad dimensions"};
  }
  FEDGUARD_CHECK_FINITE(points, "krum_scores: non-finite input point");
  // Clamp f so each update has at least one neighbour in its score.
  std::size_t f = byzantine_count;
  if (count < 3) f = 0;
  else if (f + 2 >= count) f = count - 3;
  const std::size_t neighbours = count - f - 2 > 0 ? count - f - 2 : 1;

  // Pairwise squared distances — the O(n^2 * d) hot spot. Rows of the upper
  // triangle are partitioned across the kernel pool; row `a` writes only
  // entries [a][b] and [b][a] for b > a, so partitions never collide, and
  // each distance is computed exactly once regardless of thread count.
  std::vector<double> distance2(count * count, 0.0);
  const auto distance_row = [&](std::size_t a) {
    for (std::size_t b = a + 1; b < count; ++b) {
      const double d2 = util::squared_distance(points.subspan(a * dim, dim),
                                               points.subspan(b * dim, dim));
      distance2[a * count + b] = d2;
      distance2[b * count + a] = d2;
    }
  };
  const std::size_t work = count * dim;
  const parallel::KernelConfig config = parallel::kernel_config();
  if (parallel::should_parallelize(work, config.distance_min_elements)) {
    parallel::kernel_parallel_ranges(count, 1, [&](std::size_t begin, std::size_t end) {
      for (std::size_t a = begin; a < end; ++a) distance_row(a);
    });
  } else {
    for (std::size_t a = 0; a < count; ++a) distance_row(a);
  }

  // Per-update neighbour sums (reads the finished distance matrix only).
  std::vector<double> scores(count, 0.0);
  const auto score_rows = [&](std::size_t begin, std::size_t end) {
    std::vector<double> row;
    for (std::size_t a = begin; a < end; ++a) {
      row.clear();
      for (std::size_t b = 0; b < count; ++b) {
        if (b != a) row.push_back(distance2[a * count + b]);
      }
      const std::size_t k = std::min(neighbours, row.size());
      std::partial_sort(row.begin(), row.begin() + static_cast<std::ptrdiff_t>(k), row.end());
      scores[a] =
          std::accumulate(row.begin(), row.begin() + static_cast<std::ptrdiff_t>(k), 0.0);
    }
  };
  if (parallel::should_parallelize(count * count, config.distance_min_elements)) {
    parallel::kernel_parallel_ranges(count, 1, score_rows);
  } else {
    score_rows(0, count);
  }
  return scores;
}

AggregationResult KrumAggregator::aggregate(const AggregationContext& /*context*/,
                                            std::span<const ClientUpdate> updates) {
  const std::size_t dim = validate_updates(updates);
  const std::size_t count = updates.size();
  std::vector<float> points;
  points.reserve(count * dim);
  for (const auto& update : updates) {
    points.insert(points.end(), update.psi.begin(), update.psi.end());
  }
  const auto byzantine_count =
      static_cast<std::size_t>(byzantine_fraction_ * static_cast<double>(count));
  const std::vector<double> scores = krum_scores(points, count, dim, byzantine_count);

  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&scores](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });

  const std::size_t keep = std::min(std::max<std::size_t>(multi_k_, 1), count);
  AggregationResult result;
  std::vector<std::size_t> selected(order.begin(),
                                    order.begin() + static_cast<std::ptrdiff_t>(keep));
  result.parameters = mean_of(updates, selected);
  for (std::size_t k = 0; k < count; ++k) {
    if (std::find(selected.begin(), selected.end(), k) != selected.end()) {
      result.accepted_clients.push_back(updates[k].client_id);
    } else {
      result.rejected_clients.push_back(updates[k].client_id);
    }
  }
  return result;
}

}  // namespace fedguard::defenses
