#include "defenses/update_matrix.hpp"

#include <algorithm>

namespace fedguard::defenses {

void UpdateMatrix::reset(std::size_t count, std::size_t psi_dim, std::size_t theta_dim) {
  count_ = count;
  psi_dim_ = psi_dim;
  theta_dim_ = theta_dim;
  psi_storage_.resize(count * psi_dim);
  theta_storage_.resize(count * theta_dim);
  meta_.assign(count, UpdateMeta{});
}

std::span<const float> UpdateMatrix::theta(std::size_t row) const noexcept {
  const std::size_t len = std::min(meta_[row].theta_count, theta_dim_);
  return {theta_storage_.data() + row * theta_dim_, len};
}

UpdateRow UpdateMatrix::row(std::size_t r) noexcept {
  return UpdateRow{psi(r), {theta_storage_.data() + r * theta_dim_, theta_dim_}, &meta_[r]};
}

PointsView UpdateView::points() const noexcept {
  if (!selected_) return PointsView{matrix_->psi_data(), matrix_->count(), matrix_->psi_dim()};
  return PointsView{matrix_->psi_data(), matrix_->psi_dim(), rows_};
}

UpdateView UpdateView::select(std::span<const std::size_t> slots,
                              std::vector<std::size_t>& storage) const {
  storage.resize(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) storage[i] = row_index(slots[i]);
  return UpdateView{*matrix_, storage};
}

}  // namespace fedguard::defenses
