#include "defenses/aggregation.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace fedguard::defenses {

std::size_t validate_updates(std::span<const ClientUpdate> updates) {
  if (updates.empty()) {
    throw std::invalid_argument{"aggregation: no updates"};
  }
  const std::size_t dim = updates.front().psi.size();
  if (dim == 0) throw std::invalid_argument{"aggregation: empty parameter vector"};
  for (const auto& update : updates) {
    if (update.psi.size() != dim) {
      throw std::invalid_argument{"aggregation: parameter dimension mismatch"};
    }
    FEDGUARD_CHECK_FINITE(update.psi, "aggregation: non-finite psi from client " +
                                          std::to_string(update.client_id));
  }
  return dim;
}

std::size_t validate_view(const UpdateView& updates) {
  if (updates.count() == 0) {
    throw std::invalid_argument{"aggregation: no updates"};
  }
  const std::size_t dim = updates.psi_dim();
  if (dim == 0) throw std::invalid_argument{"aggregation: empty parameter vector"};
  for (std::size_t k = 0; k < updates.count(); ++k) {
    // Every strategy entry funnels through here, so this is the single
    // boundary at which a NaN/Inf-poisoned upload is rejected before it can
    // reach an accumulator (FEDGUARD_ASSERTS builds only).
    FEDGUARD_CHECK_FINITE(updates.psi(k), "aggregation: non-finite psi from client " +
                                              std::to_string(updates.meta(k).client_id));
  }
  return dim;
}

void fill_update_matrix(UpdateMatrix& arena, std::span<const ClientUpdate> updates) {
  const std::size_t dim = updates.empty() ? 0 : updates.front().psi.size();
  std::size_t theta_dim = 0;
  for (const auto& update : updates) theta_dim = std::max(theta_dim, update.theta.size());
  arena.reset(updates.size(), dim, theta_dim);
  for (std::size_t k = 0; k < updates.size(); ++k) {
    const ClientUpdate& update = updates[k];
    UpdateRow row = arena.row(k);
    std::copy(update.psi.begin(), update.psi.end(), row.psi.begin());
    std::copy(update.theta.begin(), update.theta.end(), row.theta.begin());
    row.meta->client_id = update.client_id;
    row.meta->num_samples = update.num_samples;
    row.meta->truly_malicious = update.truly_malicious;
    row.meta->theta_count = update.theta.size();
  }
}

void AggregationStrategy::aggregate_into(const AggregationContext& context,
                                         const UpdateView& updates, AggregationResult& out) {
  // NVI choke point: every strategy's spans nest under one `agg.<name>`
  // parent here, so per-strategy sub-spans (FedGuard decode/score/select,
  // Krum pairwise/score/pick) decompose it in the trace for free.
  FEDGUARD_TRACE_SPAN(std::string{"agg."} + name(), "aggregate");
  {
    FEDGUARD_TRACE_SPAN(std::string{"agg."} + name(), "validate");
    (void)validate_view(updates);
  }
  out.clear();
  do_aggregate(context, updates, out);
}

AggregationResult AggregationStrategy::aggregate(const AggregationContext& context,
                                                 const UpdateView& updates) {
  AggregationResult out;
  aggregate_into(context, updates, out);
  return out;
}

AggregationResult AggregationStrategy::aggregate(const AggregationContext& context,
                                                 std::span<const ClientUpdate> updates) {
  (void)validate_updates(updates);  // ragged dims must throw before the copy below
  fill_update_matrix(compat_arena_, updates);
  AggregationResult out;
  aggregate_into(context, UpdateView{compat_arena_}, out);
  return out;
}

void weighted_mean_into(const UpdateView& updates, std::vector<double>& accumulator,
                        std::vector<float>& out) {
  if (updates.count() == 0) throw std::invalid_argument{"aggregation: no updates"};
  const std::size_t dim = updates.psi_dim();
  const std::size_t count = updates.count();
  double total_weight = 0.0;
  for (std::size_t k = 0; k < count; ++k) {
    total_weight += static_cast<double>(updates.meta(k).num_samples);
  }
  accumulator.assign(dim, 0.0);
  if (total_weight == 0.0) {
    for (std::size_t k = 0; k < count; ++k) {
      const std::span<const float> psi = updates.psi(k);
      for (std::size_t i = 0; i < dim; ++i) accumulator[i] += psi[i];
    }
    total_weight = static_cast<double>(count);
  } else {
    for (std::size_t k = 0; k < count; ++k) {
      const double w = static_cast<double>(updates.meta(k).num_samples);
      const std::span<const float> psi = updates.psi(k);
      for (std::size_t i = 0; i < dim; ++i) accumulator[i] += w * psi[i];
    }
  }
  out.resize(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    out[i] = static_cast<float>(accumulator[i] / total_weight);
  }
}

std::vector<float> weighted_mean(const UpdateView& updates) {
  std::vector<double> accumulator;
  std::vector<float> out;
  weighted_mean_into(updates, accumulator, out);
  return out;
}

void mean_of_into(const UpdateView& updates, std::span<const std::size_t> selected,
                  std::vector<double>& accumulator, std::vector<float>& out) {
  if (selected.empty()) throw std::invalid_argument{"mean_of: empty selection"};
  const std::size_t dim = updates.psi_dim();
  accumulator.assign(dim, 0.0);
  for (const std::size_t k : selected) {
    const std::span<const float> psi = updates.psi(k);
    for (std::size_t i = 0; i < dim; ++i) accumulator[i] += psi[i];
  }
  out.resize(dim);
  const double inv = 1.0 / static_cast<double>(selected.size());
  for (std::size_t i = 0; i < dim; ++i) out[i] = static_cast<float>(accumulator[i] * inv);
}

std::vector<float> mean_of(const UpdateView& updates, std::span<const std::size_t> selected) {
  std::vector<double> accumulator;
  std::vector<float> out;
  mean_of_into(updates, selected, accumulator, out);
  return out;
}

namespace {

template <typename RejectedFn>
DetectionStats tally_detection(std::size_t count, RejectedFn&& info) {
  DetectionStats stats;
  for (std::size_t k = 0; k < count; ++k) {
    const auto [malicious, was_rejected] = info(k);
    if (malicious && was_rejected) ++stats.true_positives;
    else if (malicious) ++stats.false_negatives;
    else if (was_rejected) ++stats.false_positives;
    else ++stats.true_negatives;
  }
  return stats;
}

bool contains_id(const std::vector<int>& ids, int id) {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

}  // namespace

DetectionStats compute_detection_stats(std::span<const ClientUpdate> updates,
                                       const AggregationResult& result) {
  return tally_detection(updates.size(), [&](std::size_t k) {
    return std::pair{updates[k].truly_malicious,
                     contains_id(result.rejected_clients, updates[k].client_id)};
  });
}

DetectionStats compute_detection_stats(const UpdateView& updates,
                                       const AggregationResult& result) {
  return tally_detection(updates.count(), [&](std::size_t k) {
    const UpdateMeta& meta = updates.meta(k);
    return std::pair{meta.truly_malicious, contains_id(result.rejected_clients, meta.client_id)};
  });
}

}  // namespace fedguard::defenses
