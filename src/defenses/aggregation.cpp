#include "defenses/aggregation.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace fedguard::defenses {

std::size_t validate_updates(std::span<const ClientUpdate> updates) {
  if (updates.empty()) {
    throw std::invalid_argument{"aggregation: no updates"};
  }
  const std::size_t dim = updates.front().psi.size();
  if (dim == 0) throw std::invalid_argument{"aggregation: empty parameter vector"};
  for (const auto& update : updates) {
    if (update.psi.size() != dim) {
      throw std::invalid_argument{"aggregation: parameter dimension mismatch"};
    }
    FEDGUARD_CHECK_FINITE(update.psi, "aggregation: non-finite psi from client " +
                                          std::to_string(update.client_id));
  }
  return dim;
}

std::size_t validate_view(const UpdateView& updates) {
  if (updates.count() == 0) {
    throw std::invalid_argument{"aggregation: no updates"};
  }
  const std::size_t dim = updates.psi_dim();
  if (dim == 0) throw std::invalid_argument{"aggregation: empty parameter vector"};
  for (std::size_t k = 0; k < updates.count(); ++k) {
    // Every strategy entry funnels through here, so this is the single
    // boundary at which a NaN/Inf-poisoned upload is rejected before it can
    // reach an accumulator (FEDGUARD_ASSERTS builds only).
    FEDGUARD_CHECK_FINITE(updates.psi(k), "aggregation: non-finite psi from client " +
                                              std::to_string(updates.meta(k).client_id));
  }
  return dim;
}

void fill_update_matrix(UpdateMatrix& arena, std::span<const ClientUpdate> updates) {
  const std::size_t dim = updates.empty() ? 0 : updates.front().psi.size();
  std::size_t theta_dim = 0;
  for (const auto& update : updates) theta_dim = std::max(theta_dim, update.theta.size());
  arena.reset(updates.size(), dim, theta_dim);
  for (std::size_t k = 0; k < updates.size(); ++k) {
    const ClientUpdate& update = updates[k];
    UpdateRow row = arena.row(k);
    std::copy(update.psi.begin(), update.psi.end(), row.psi.begin());
    std::copy(update.theta.begin(), update.theta.end(), row.theta.begin());
    row.meta->client_id = update.client_id;
    row.meta->num_samples = update.num_samples;
    row.meta->truly_malicious = update.truly_malicious;
    row.meta->theta_count = update.theta.size();
  }
}

void AggregationStrategy::aggregate_into(const AggregationContext& context,
                                         const UpdateView& updates, AggregationResult& out) {
  // NVI choke point: every strategy's spans nest under one `agg.<name>`
  // parent here, so per-strategy sub-spans (FedGuard decode/score/select,
  // Krum pairwise/score/pick) decompose it in the trace for free.
  FEDGUARD_TRACE_SPAN(std::string{"agg."} + name(), "aggregate");
  {
    FEDGUARD_TRACE_SPAN(std::string{"agg."} + name(), "validate");
    (void)validate_view(updates);
  }
  out.clear();
  do_aggregate(context, updates, out);
}

AggregationResult AggregationStrategy::aggregate(const AggregationContext& context,
                                                 const UpdateView& updates) {
  AggregationResult out;
  aggregate_into(context, updates, out);
  return out;
}

void fold_exact_update(ShardPartial& partial, std::span<const float> psi,
                       const UpdateMeta& meta) {
  const std::size_t dim = psi.size();
  if (partial.psi_weighted_sum.size() != dim) {
    partial.psi_weighted_sum.assign(dim, 0.0);
    partial.psi_plain_sum.assign(dim, 0.0);
  }
  // Exactly weighted_mean_into's two accumulation branches, applied to one
  // row: w·ψ products are exact in double (24-bit float significand times an
  // integer weight), so the only inexactness anywhere is the running
  // addition — which happens in the same slot order as the single-tier loop.
  const double w = static_cast<double>(meta.num_samples);
  for (std::size_t i = 0; i < dim; ++i) {
    partial.psi_weighted_sum[i] += w * static_cast<double>(psi[i]);
  }
  for (std::size_t i = 0; i < dim; ++i) {
    partial.psi_plain_sum[i] += static_cast<double>(psi[i]);
  }
  partial.weight_sum += w;
  partial.client_count += 1;
  if (meta.truly_malicious) partial.malicious_count += 1;
  partial.accepted_clients.push_back(meta.client_id);
  partial.exact = true;
}

void AggregationStrategy::partial_aggregate_into(const AggregationContext& context,
                                                 const UpdateView& updates,
                                                 std::size_t shard_id, ShardPartial& out) {
  FEDGUARD_TRACE_SPAN(std::string{"agg."} + name(), "partial");
  (void)validate_view(updates);
  out.clear();
  out.shard_id = shard_id;
  do_partial_aggregate(context, updates, out);
}

void AggregationStrategy::merge_partials_into(const AggregationContext& context,
                                              std::span<const ShardPartial> partials,
                                              AggregationResult& out) {
  FEDGUARD_TRACE_SPAN(std::string{"agg."} + name(), "merge");
  out.clear();
  do_merge_partials(context, partials, out);
}

void AggregationStrategy::do_partial_aggregate(const AggregationContext& context,
                                               const UpdateView& updates, ShardPartial& out) {
  partial_scratch_.clear();
  do_aggregate(context, updates, partial_scratch_);
  out.client_count = updates.count();
  for (std::size_t k = 0; k < updates.count(); ++k) {
    out.weight_sum += static_cast<double>(updates.meta(k).num_samples);
    if (updates.meta(k).truly_malicious) out.malicious_count += 1;
  }
  out.parameters = std::move(partial_scratch_.parameters);
  out.accepted_clients = std::move(partial_scratch_.accepted_clients);
  out.rejected_clients = std::move(partial_scratch_.rejected_clients);
}

void AggregationStrategy::do_merge_partials(const AggregationContext& /*context*/,
                                            std::span<const ShardPartial> partials,
                                            AggregationResult& out) {
  // Split the live partials by path. A single round never mixes paths (all
  // partials come from one strategy), but a degraded shard may contribute an
  // empty partial on either — those are skipped.
  std::size_t dim = 0;
  bool any_exact = false;
  bool any_metadata = false;
  for (const ShardPartial& partial : partials) {
    if (partial.client_count == 0) continue;
    if (partial.exact) {
      any_exact = true;
      dim = partial.psi_weighted_sum.size();
    } else {
      any_metadata = true;
      dim = partial.parameters.size();
    }
  }
  if ((!any_exact && !any_metadata) || dim == 0) {
    throw std::invalid_argument{"merge_partials: no mergeable shard partials"};
  }
  if (any_exact && any_metadata) {
    throw std::invalid_argument{"merge_partials: mixed exact/metadata partials"};
  }

  merge_accumulator_.assign(dim, 0.0);
  if (any_exact) {
    // Sum the shard accumulators then divide once: with one live shard this
    // is bit-identical to weighted_mean_into (adding a sum to 0.0 reproduces
    // it); with several, the divisor (an exact integer in double) matches
    // and only the numerator bracketing differs.
    double total_weight = 0.0;
    std::size_t total_count = 0;
    for (const ShardPartial& partial : partials) {
      if (partial.client_count == 0) continue;
      total_weight += partial.weight_sum;
      total_count += partial.client_count;
    }
    if (total_weight == 0.0) {
      for (const ShardPartial& partial : partials) {
        if (partial.client_count == 0) continue;
        for (std::size_t i = 0; i < dim; ++i) {
          merge_accumulator_[i] += partial.psi_plain_sum[i];
        }
      }
      total_weight = static_cast<double>(total_count);
    } else {
      for (const ShardPartial& partial : partials) {
        if (partial.client_count == 0) continue;
        for (std::size_t i = 0; i < dim; ++i) {
          merge_accumulator_[i] += partial.psi_weighted_sum[i];
        }
      }
    }
    out.parameters.resize(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      out.parameters[i] = static_cast<float>(merge_accumulator_[i] / total_weight);
    }
  } else {
    // Metadata routing: each shard already selected locally; the root trusts
    // the shard-local aggregates and combines them weighted by how many
    // clients each one accepted (a shard that rejected its whole cohort
    // still weighs 1 so its aggregate — by contract a usable fallback — is
    // not silently discarded).
    double total_weight = 0.0;
    for (const ShardPartial& partial : partials) {
      if (partial.client_count == 0) continue;
      if (partial.parameters.size() != dim) {
        throw std::invalid_argument{"merge_partials: shard parameter dimension mismatch"};
      }
      const double w = static_cast<double>(
          partial.accepted_clients.empty() ? 1 : partial.accepted_clients.size());
      total_weight += w;
      for (std::size_t i = 0; i < dim; ++i) {
        merge_accumulator_[i] += w * static_cast<double>(partial.parameters[i]);
      }
    }
    out.parameters.resize(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      out.parameters[i] = static_cast<float>(merge_accumulator_[i] / total_weight);
    }
  }
  for (const ShardPartial& partial : partials) {
    if (partial.client_count == 0) continue;
    out.accepted_clients.insert(out.accepted_clients.end(), partial.accepted_clients.begin(),
                                partial.accepted_clients.end());
    out.rejected_clients.insert(out.rejected_clients.end(), partial.rejected_clients.begin(),
                                partial.rejected_clients.end());
  }
}

AggregationResult AggregationStrategy::aggregate(const AggregationContext& context,
                                                 std::span<const ClientUpdate> updates) {
  (void)validate_updates(updates);  // ragged dims must throw before the copy below
  fill_update_matrix(compat_arena_, updates);
  AggregationResult out;
  aggregate_into(context, UpdateView{compat_arena_}, out);
  return out;
}

void weighted_mean_into(const UpdateView& updates, std::vector<double>& accumulator,
                        std::vector<float>& out) {
  if (updates.count() == 0) throw std::invalid_argument{"aggregation: no updates"};
  const std::size_t dim = updates.psi_dim();
  const std::size_t count = updates.count();
  double total_weight = 0.0;
  for (std::size_t k = 0; k < count; ++k) {
    total_weight += static_cast<double>(updates.meta(k).num_samples);
  }
  accumulator.assign(dim, 0.0);
  if (total_weight == 0.0) {
    for (std::size_t k = 0; k < count; ++k) {
      const std::span<const float> psi = updates.psi(k);
      for (std::size_t i = 0; i < dim; ++i) accumulator[i] += psi[i];
    }
    total_weight = static_cast<double>(count);
  } else {
    for (std::size_t k = 0; k < count; ++k) {
      const double w = static_cast<double>(updates.meta(k).num_samples);
      const std::span<const float> psi = updates.psi(k);
      for (std::size_t i = 0; i < dim; ++i) accumulator[i] += w * psi[i];
    }
  }
  out.resize(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    out[i] = static_cast<float>(accumulator[i] / total_weight);
  }
}

std::vector<float> weighted_mean(const UpdateView& updates) {
  std::vector<double> accumulator;
  std::vector<float> out;
  weighted_mean_into(updates, accumulator, out);
  return out;
}

void mean_of_into(const UpdateView& updates, std::span<const std::size_t> selected,
                  std::vector<double>& accumulator, std::vector<float>& out) {
  if (selected.empty()) throw std::invalid_argument{"mean_of: empty selection"};
  const std::size_t dim = updates.psi_dim();
  accumulator.assign(dim, 0.0);
  for (const std::size_t k : selected) {
    const std::span<const float> psi = updates.psi(k);
    for (std::size_t i = 0; i < dim; ++i) accumulator[i] += psi[i];
  }
  out.resize(dim);
  const double inv = 1.0 / static_cast<double>(selected.size());
  for (std::size_t i = 0; i < dim; ++i) out[i] = static_cast<float>(accumulator[i] * inv);
}

std::vector<float> mean_of(const UpdateView& updates, std::span<const std::size_t> selected) {
  std::vector<double> accumulator;
  std::vector<float> out;
  mean_of_into(updates, selected, accumulator, out);
  return out;
}

namespace {

template <typename RejectedFn>
DetectionStats tally_detection(std::size_t count, RejectedFn&& info) {
  DetectionStats stats;
  for (std::size_t k = 0; k < count; ++k) {
    const auto [malicious, was_rejected] = info(k);
    if (malicious && was_rejected) ++stats.true_positives;
    else if (malicious) ++stats.false_negatives;
    else if (was_rejected) ++stats.false_positives;
    else ++stats.true_negatives;
  }
  return stats;
}

bool contains_id(const std::vector<int>& ids, int id) {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

}  // namespace

DetectionStats compute_detection_stats(std::span<const ClientUpdate> updates,
                                       const AggregationResult& result) {
  return tally_detection(updates.size(), [&](std::size_t k) {
    return std::pair{updates[k].truly_malicious,
                     contains_id(result.rejected_clients, updates[k].client_id)};
  });
}

DetectionStats compute_detection_stats(const UpdateView& updates,
                                       const AggregationResult& result) {
  return tally_detection(updates.count(), [&](std::size_t k) {
    const UpdateMeta& meta = updates.meta(k);
    return std::pair{meta.truly_malicious, contains_id(result.rejected_clients, meta.client_id)};
  });
}

}  // namespace fedguard::defenses
