#include "defenses/aggregation.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace fedguard::defenses {

std::size_t validate_updates(std::span<const ClientUpdate> updates) {
  if (updates.empty()) {
    throw std::invalid_argument{"aggregation: no updates"};
  }
  const std::size_t dim = updates.front().psi.size();
  if (dim == 0) throw std::invalid_argument{"aggregation: empty parameter vector"};
  for (const auto& update : updates) {
    if (update.psi.size() != dim) {
      throw std::invalid_argument{"aggregation: parameter dimension mismatch"};
    }
    // Every defense funnels through here, so this is the single boundary at
    // which a NaN/Inf-poisoned upload is rejected before it can reach an
    // accumulator (FEDGUARD_ASSERTS builds only).
    FEDGUARD_CHECK_FINITE(update.psi, "aggregation: non-finite psi from client " +
                                          std::to_string(update.client_id));
  }
  return dim;
}

std::vector<float> weighted_mean(std::span<const ClientUpdate> updates) {
  const std::size_t dim = validate_updates(updates);
  double total_weight = 0.0;
  for (const auto& update : updates) {
    total_weight += static_cast<double>(update.num_samples);
  }
  std::vector<double> accumulator(dim, 0.0);
  if (total_weight == 0.0) {
    for (const auto& update : updates) {
      for (std::size_t i = 0; i < dim; ++i) accumulator[i] += update.psi[i];
    }
    total_weight = static_cast<double>(updates.size());
  } else {
    for (const auto& update : updates) {
      const double w = static_cast<double>(update.num_samples);
      for (std::size_t i = 0; i < dim; ++i) accumulator[i] += w * update.psi[i];
    }
  }
  std::vector<float> out(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    out[i] = static_cast<float>(accumulator[i] / total_weight);
  }
  return out;
}

std::vector<float> mean_of(std::span<const ClientUpdate> updates,
                           std::span<const std::size_t> selected) {
  if (selected.empty()) throw std::invalid_argument{"mean_of: empty selection"};
  const std::size_t dim = validate_updates(updates);
  std::vector<double> accumulator(dim, 0.0);
  for (const std::size_t k : selected) {
    for (std::size_t i = 0; i < dim; ++i) accumulator[i] += updates[k].psi[i];
  }
  std::vector<float> out(dim);
  const double inv = 1.0 / static_cast<double>(selected.size());
  for (std::size_t i = 0; i < dim; ++i) out[i] = static_cast<float>(accumulator[i] * inv);
  return out;
}

DetectionStats compute_detection_stats(std::span<const ClientUpdate> updates,
                                       const AggregationResult& result) {
  DetectionStats stats;
  const auto rejected = [&result](int id) {
    return std::find(result.rejected_clients.begin(), result.rejected_clients.end(), id) !=
           result.rejected_clients.end();
  };
  for (const auto& update : updates) {
    const bool was_rejected = rejected(update.client_id);
    if (update.truly_malicious && was_rejected) ++stats.true_positives;
    else if (update.truly_malicious) ++stats.false_negatives;
    else if (was_rejected) ++stats.false_positives;
    else ++stats.true_negatives;
  }
  return stats;
}

}  // namespace fedguard::defenses
