#include "defenses/trimmed_mean.hpp"

#include <algorithm>
#include <stdexcept>

namespace fedguard::defenses {

TrimmedMeanAggregator::TrimmedMeanAggregator(double trim_fraction)
    : trim_fraction_{trim_fraction} {
  if (trim_fraction < 0.0 || trim_fraction >= 0.5) {
    throw std::invalid_argument{"TrimmedMeanAggregator: trim_fraction must be in [0, 0.5)"};
  }
}

std::vector<float> trimmed_mean(const PointsView& points, double trim_fraction) {
  const std::size_t count = points.count();
  const std::size_t dim = points.dim();
  if (count == 0 || dim == 0) {
    throw std::invalid_argument{"trimmed_mean: bad dimensions"};
  }
  auto trim = static_cast<std::size_t>(trim_fraction * static_cast<double>(count));
  if (2 * trim >= count) trim = (count - 1) / 2;
  const std::size_t kept = count - 2 * trim;

  std::vector<float> out(dim);
  std::vector<float> column(count);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t k = 0; k < count; ++k) column[k] = points.row(k)[i];
    std::sort(column.begin(), column.end());
    double total = 0.0;
    for (std::size_t k = trim; k < count - trim; ++k) total += column[k];
    out[i] = static_cast<float>(total / static_cast<double>(kept));
  }
  return out;
}

std::vector<float> trimmed_mean(std::span<const float> points, std::size_t count,
                                std::size_t dim, double trim_fraction) {
  if (count == 0 || dim == 0 || points.size() != count * dim) {
    throw std::invalid_argument{"trimmed_mean: bad dimensions"};
  }
  return trimmed_mean(PointsView{points, count, dim}, trim_fraction);
}

void TrimmedMeanAggregator::do_aggregate(const AggregationContext& /*context*/,
                                         const UpdateView& updates, AggregationResult& out) {
  out.parameters = trimmed_mean(updates.points(), trim_fraction_);
  for (std::size_t k = 0; k < updates.count(); ++k) {
    out.accepted_clients.push_back(updates.meta(k).client_id);
  }
}

}  // namespace fedguard::defenses
