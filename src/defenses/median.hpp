#pragma once
// Coordinate-wise median aggregation (Yin et al. 2018). Robust-aggregation
// extension mentioned by the paper's related work; also available as
// FedGuard's internal operator.

#include "defenses/aggregation.hpp"

namespace fedguard::defenses {

class CoordinateMedianAggregator final : public AggregationStrategy {
 public:
  AggregationResult aggregate(const AggregationContext& context,
                              std::span<const ClientUpdate> updates) override;
  [[nodiscard]] std::string name() const override { return "median"; }
};

/// Coordinate-wise median over a flattened [count, dim] point set.
[[nodiscard]] std::vector<float> coordinate_median(std::span<const float> points,
                                                   std::size_t count, std::size_t dim);

}  // namespace fedguard::defenses
