#pragma once
// Coordinate-wise median aggregation (Yin et al. 2018). Robust-aggregation
// extension mentioned by the paper's related work; also available as
// FedGuard's internal operator.

#include "defenses/aggregation.hpp"

namespace fedguard::defenses {

class CoordinateMedianAggregator final : public AggregationStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "median"; }

 private:
  void do_aggregate(const AggregationContext& context, const UpdateView& updates,
                    AggregationResult& out) override;
};

/// Coordinate-wise median over the view's rows.
[[nodiscard]] std::vector<float> coordinate_median(const PointsView& points);
/// Flattened [count, dim] form, kept for direct testing and external callers.
[[nodiscard]] std::vector<float> coordinate_median(std::span<const float> points,
                                                   std::size_t count, std::size_t dim);

}  // namespace fedguard::defenses
