#pragma once
// Geometric median aggregation (Chen, Su & Xu 2018). The global update is
// the point minimizing the sum of Euclidean distances to all client updates,
// computed with Weiszfeld's iteration.

#include "defenses/aggregation.hpp"

namespace fedguard::defenses {

class GeoMedAggregator final : public AggregationStrategy {
 public:
  explicit GeoMedAggregator(std::size_t max_iterations = 50, double tolerance = 1e-6)
      : max_iterations_{max_iterations}, tolerance_{tolerance} {}

  [[nodiscard]] std::string name() const override { return "geomed"; }

 private:
  void do_aggregate(const AggregationContext& context, const UpdateView& updates,
                    AggregationResult& out) override;

  std::size_t max_iterations_;
  double tolerance_;
};

/// Weiszfeld iteration over the view's rows (index indirection, no
/// sub-matrix materialization).
[[nodiscard]] std::vector<float> geometric_median(const PointsView& points,
                                                  std::size_t max_iterations = 50,
                                                  double tolerance = 1e-6);
/// Flattened [count, dim] form, kept for direct testing and external callers.
[[nodiscard]] std::vector<float> geometric_median(std::span<const float> points,
                                                  std::size_t count, std::size_t dim,
                                                  std::size_t max_iterations = 50,
                                                  double tolerance = 1e-6);

}  // namespace fedguard::defenses
