#pragma once
// Geometric median aggregation (Chen, Su & Xu 2018). The global update is
// the point minimizing the sum of Euclidean distances to all client updates,
// computed with Weiszfeld's iteration.

#include "defenses/aggregation.hpp"

namespace fedguard::defenses {

class GeoMedAggregator final : public AggregationStrategy {
 public:
  explicit GeoMedAggregator(std::size_t max_iterations = 50, double tolerance = 1e-6)
      : max_iterations_{max_iterations}, tolerance_{tolerance} {}

  AggregationResult aggregate(const AggregationContext& context,
                              std::span<const ClientUpdate> updates) override;
  [[nodiscard]] std::string name() const override { return "geomed"; }

 private:
  std::size_t max_iterations_;
  double tolerance_;
};

/// Weiszfeld iteration over row vectors; exposed for direct testing.
/// `points` is a flattened [count, dim] array.
[[nodiscard]] std::vector<float> geometric_median(std::span<const float> points,
                                                  std::size_t count, std::size_t dim,
                                                  std::size_t max_iterations = 50,
                                                  double tolerance = 1e-6);

}  // namespace fedguard::defenses
