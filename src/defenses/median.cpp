#include "defenses/median.hpp"

#include <algorithm>
#include <stdexcept>

namespace fedguard::defenses {

std::vector<float> coordinate_median(std::span<const float> points, std::size_t count,
                                     std::size_t dim) {
  if (count == 0 || dim == 0 || points.size() != count * dim) {
    throw std::invalid_argument{"coordinate_median: bad dimensions"};
  }
  std::vector<float> out(dim);
  std::vector<float> column(count);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t k = 0; k < count; ++k) column[k] = points[k * dim + i];
    const std::size_t mid = count / 2;
    std::nth_element(column.begin(), column.begin() + static_cast<std::ptrdiff_t>(mid),
                     column.end());
    if (count % 2 == 1) {
      out[i] = column[mid];
    } else {
      const float upper = column[mid];
      std::nth_element(column.begin(), column.begin() + static_cast<std::ptrdiff_t>(mid) - 1,
                       column.end());
      out[i] = 0.5f * (column[mid - 1] + upper);
    }
  }
  return out;
}

AggregationResult CoordinateMedianAggregator::aggregate(
    const AggregationContext& /*context*/, std::span<const ClientUpdate> updates) {
  const std::size_t dim = validate_updates(updates);
  std::vector<float> points;
  points.reserve(updates.size() * dim);
  for (const auto& update : updates) {
    points.insert(points.end(), update.psi.begin(), update.psi.end());
  }
  AggregationResult result;
  result.parameters = coordinate_median(points, updates.size(), dim);
  for (const auto& update : updates) result.accepted_clients.push_back(update.client_id);
  return result;
}

}  // namespace fedguard::defenses
