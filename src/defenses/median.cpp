#include "defenses/median.hpp"

#include <algorithm>
#include <stdexcept>

namespace fedguard::defenses {

std::vector<float> coordinate_median(const PointsView& points) {
  const std::size_t count = points.count();
  const std::size_t dim = points.dim();
  if (count == 0 || dim == 0) {
    throw std::invalid_argument{"coordinate_median: bad dimensions"};
  }
  std::vector<float> out(dim);
  std::vector<float> column(count);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t k = 0; k < count; ++k) column[k] = points.row(k)[i];
    const std::size_t mid = count / 2;
    std::nth_element(column.begin(), column.begin() + static_cast<std::ptrdiff_t>(mid),
                     column.end());
    if (count % 2 == 1) {
      out[i] = column[mid];
    } else {
      const float upper = column[mid];
      std::nth_element(column.begin(), column.begin() + static_cast<std::ptrdiff_t>(mid) - 1,
                       column.end());
      out[i] = 0.5f * (column[mid - 1] + upper);
    }
  }
  return out;
}

std::vector<float> coordinate_median(std::span<const float> points, std::size_t count,
                                     std::size_t dim) {
  if (count == 0 || dim == 0 || points.size() != count * dim) {
    throw std::invalid_argument{"coordinate_median: bad dimensions"};
  }
  return coordinate_median(PointsView{points, count, dim});
}

void CoordinateMedianAggregator::do_aggregate(const AggregationContext& /*context*/,
                                              const UpdateView& updates,
                                              AggregationResult& out) {
  out.parameters = coordinate_median(updates.points());
  for (std::size_t k = 0; k < updates.count(); ++k) {
    out.accepted_clients.push_back(updates.meta(k).client_id);
  }
}

}  // namespace fedguard::defenses
