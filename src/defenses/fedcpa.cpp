#include "defenses/fedcpa.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/trace.hpp"

namespace fedguard::defenses {

double FedCpaAggregator::critical_similarity(std::span<const std::uint32_t> top_a,
                                             std::span<const float> values_a,
                                             std::span<const std::uint32_t> top_b,
                                             std::span<const float> values_b) {
  // Sparse cosine over C_a ∪ C_b: the dot product accumulates only on the
  // intersection (a coordinate critical for one update but not the other
  // contributes nothing), while the norms cover each full critical set — so
  // disjoint sets score 0 and opposed deltas (sign flip, covert mirror)
  // clamp to 0.
  std::size_t ia = 0;
  std::size_t ib = 0;
  double dot = 0.0;
  while (ia < top_a.size() && ib < top_b.size()) {
    if (top_a[ia] < top_b[ib]) {
      ++ia;
    } else if (top_b[ib] < top_a[ia]) {
      ++ib;
    } else {
      dot += static_cast<double>(values_a[ia]) * static_cast<double>(values_b[ib]);
      ++ia;
      ++ib;
    }
  }
  double norm_a = 0.0;
  for (const float v : values_a) norm_a += static_cast<double>(v) * static_cast<double>(v);
  double norm_b = 0.0;
  for (const float v : values_b) norm_b += static_cast<double>(v) * static_cast<double>(v);
  if (norm_a == 0.0 || norm_b == 0.0) return 0.0;
  const double cosine = dot / std::sqrt(norm_a * norm_b);
  return std::max(0.0, cosine);
}

void FedCpaAggregator::do_aggregate(const AggregationContext& context,
                                    const UpdateView& updates, AggregationResult& out) {
  const std::size_t count = updates.count();
  const std::size_t dim = updates.psi_dim();
  const std::span<const float> global = context.global_parameters;
  // Owned-update tests may aggregate without a matching global; deltas then
  // degrade to the raw parameters (ψ0 ≡ 0), which preserves every property
  // the similarity uses.
  const bool has_global = global.size() == dim;

  std::size_t top = static_cast<std::size_t>(
      config_.top_fraction * static_cast<double>(dim));
  top = std::clamp<std::size_t>(top, 1, dim);

  // Extract the sorted top-t critical index set and the aligned delta values
  // for an arbitrary delta(i) profile (per-client or the median consensus).
  const auto build_critical = [&](auto&& delta, std::vector<std::uint32_t>& set,
                                  std::vector<float>& values) {
    index_scratch_.resize(dim);
    std::iota(index_scratch_.begin(), index_scratch_.end(), std::uint32_t{0});
    std::nth_element(index_scratch_.begin(),
                     index_scratch_.begin() + static_cast<std::ptrdiff_t>(top - 1),
                     index_scratch_.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       const double da = std::fabs(delta(a));
                       const double db = std::fabs(delta(b));
                       // Index tiebreak keeps the set deterministic when
                       // magnitudes collide (e.g. the same-value attack).
                       if (da != db) return da > db;
                       return a < b;
                     });
    set.assign(index_scratch_.begin(),
               index_scratch_.begin() + static_cast<std::ptrdiff_t>(top));
    std::sort(set.begin(), set.end());
    values.resize(top);
    for (std::size_t i = 0; i < top; ++i) {
      values[i] = static_cast<float>(delta(set[i]));
    }
  };

  {
    FEDGUARD_TRACE_SPAN("agg.fedcpa", "critical");
    top_sets_.resize(count);
    top_values_.resize(count);
    for (std::size_t k = 0; k < count; ++k) {
      const std::span<const float> psi = updates.psi(k);
      build_critical(
          [&](std::uint32_t i) {
            const double base = has_global ? static_cast<double>(global[i]) : 0.0;
            return static_cast<double>(psi[i]) - base;
          },
          top_sets_[k], top_values_[k]);
    }
  }

  {
    FEDGUARD_TRACE_SPAN("agg.fedcpa", "similarity");
    // Consensus profile: coordinate-wise median delta across the cohort. A
    // minority clique of colluders cannot move it, so gating each score by
    // agreement with it keeps near-identical poisoned updates from crowning
    // each other through their mutual sim ≈ 1.
    median_delta_.resize(dim);
    coord_scratch_.resize(count);
    for (std::size_t i = 0; i < dim; ++i) {
      for (std::size_t k = 0; k < count; ++k) {
        const float base = has_global ? global[i] : 0.0f;
        coord_scratch_[k] = updates.psi(k)[i] - base;
      }
      const std::size_t mid = count / 2;
      std::nth_element(coord_scratch_.begin(),
                       coord_scratch_.begin() + static_cast<std::ptrdiff_t>(mid),
                       coord_scratch_.end());
      float median = coord_scratch_[mid];
      if (count % 2 == 0 && count > 0) {
        const float lower = *std::max_element(
            coord_scratch_.begin(),
            coord_scratch_.begin() + static_cast<std::ptrdiff_t>(mid));
        median = 0.5f * (lower + median);
      }
      median_delta_[i] = median;
    }
    build_critical([&](std::uint32_t i) { return static_cast<double>(median_delta_[i]); },
                   median_set_, median_values_);

    scores_.assign(count, 0.0);
    for (std::size_t a = 0; a < count; ++a) {
      for (std::size_t b = a + 1; b < count; ++b) {
        const double sim = critical_similarity(top_sets_[a], top_values_[a],
                                               top_sets_[b], top_values_[b]);
        scores_[a] += sim;
        scores_[b] += sim;
      }
    }
    if (count > 1) {
      for (auto& score : scores_) score /= static_cast<double>(count - 1);
    }
    for (std::size_t k = 0; k < count; ++k) {
      scores_[k] *= critical_similarity(top_sets_[k], top_values_[k],
                                        median_set_, median_values_);
    }
  }

  FEDGUARD_TRACE_SPAN("agg.fedcpa", "select");
  order_.resize(count);
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  std::sort(order_.begin(), order_.end(), [this](std::size_t a, std::size_t b) {
    if (scores_[a] != scores_[b]) return scores_[a] > scores_[b];
    return a < b;
  });
  const auto keep = std::clamp<std::size_t>(
      static_cast<std::size_t>(
          std::ceil(config_.keep_fraction * static_cast<double>(count))),
      1, count);
  selected_.assign(order_.begin(), order_.begin() + static_cast<std::ptrdiff_t>(keep));
  std::sort(selected_.begin(), selected_.end());

  mean_of_into(updates, selected_, accumulator_, out.parameters);
  for (std::size_t k = 0; k < count; ++k) {
    if (std::binary_search(selected_.begin(), selected_.end(), k)) {
      out.accepted_clients.push_back(updates.meta(k).client_id);
    } else {
      out.rejected_clients.push_back(updates.meta(k).client_id);
    }
  }
}

}  // namespace fedguard::defenses
