#pragma once
// Lock-cheap metrics registry: named Counter / Gauge / Histogram instruments
// backed by process-global atomic cells. Handles are pre-registered once
// (constructor or setup path) so the hot path is a single relaxed atomic add
// with no lock and no name lookup. The registry exposes its state two ways:
//
//   prometheus_text()  Prometheus-style text exposition (rewritten to the
//                      obs_metrics_path file by the round exporter);
//   json_snapshot()    one machine-readable JSON object, appended per round
//                      to <obs_metrics_path>.jsonl.
//
// Instrument names follow Prometheus conventions (`<subsystem>_<what>_total`
// for counters) and may carry a label block verbatim in the name, e.g.
// `net_client_rtt_seconds{client="3"}` — the registry treats the full string
// as the identity and splices histogram `le` labels into an existing block.
// See docs/OBSERVABILITY.md for the metric inventory.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/thread_annotations.hpp"

namespace fedguard::obs {

namespace detail {

inline void atomic_add_double(std::atomic<double>& cell, double delta) noexcept {
  double current = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(current, current + delta,
                                     std::memory_order_relaxed)) {
  }
}

struct CounterCell {
  std::atomic<std::uint64_t> value{0};
};

struct GaugeCell {
  std::atomic<std::int64_t> value{0};
};

struct HistogramCell {
  // Finite ascending bucket upper bounds; an implicit +Inf bucket follows.
  std::vector<double> upper_bounds;
  // counts[i] observations fell in bucket i (NOT cumulative; the exposition
  // layer accumulates into Prometheus' cumulative `le` form).
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts;
  std::atomic<std::uint64_t> total{0};
  std::atomic<double> sum{0.0};
};

}  // namespace detail

/// Monotonic counter handle. Default-constructed handles are inert (every
/// operation is a no-op); registry-issued handles stay valid for the process
/// lifetime — cells are never deallocated.
class Counter {
 public:
  Counter() noexcept = default;

  void add(std::uint64_t delta = 1) noexcept {
    if (cell_ != nullptr) cell_->value.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return cell_ == nullptr ? 0 : cell_->value.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool valid() const noexcept { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Counter(detail::CounterCell* cell) noexcept : cell_{cell} {}
  detail::CounterCell* cell_ = nullptr;
};

/// Up/down gauge handle (e.g. pool queue depth). Same inert-default semantics.
class Gauge {
 public:
  Gauge() noexcept = default;

  void add(std::int64_t delta) noexcept {
    if (cell_ != nullptr) cell_->value.fetch_add(delta, std::memory_order_relaxed);
  }
  void sub(std::int64_t delta) noexcept { add(-delta); }
  void set(std::int64_t value) noexcept {
    if (cell_ != nullptr) cell_->value.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return cell_ == nullptr ? 0 : cell_->value.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool valid() const noexcept { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(detail::GaugeCell* cell) noexcept : cell_{cell} {}
  detail::GaugeCell* cell_ = nullptr;
};

/// Fixed-bucket histogram handle. observe() is two relaxed atomic adds plus a
/// CAS on the running sum — no lock, no allocation.
class Histogram {
 public:
  Histogram() noexcept = default;

  void observe(double value) noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return cell_ == nullptr ? 0 : cell_->total.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return cell_ == nullptr ? 0.0 : cell_->sum.load(std::memory_order_relaxed);
  }
  /// Per-bucket (non-cumulative) counts, one entry per finite bound plus the
  /// trailing +Inf bucket. Empty for an inert handle.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::span<const double> upper_bounds() const noexcept {
    return cell_ == nullptr ? std::span<const double>{}
                            : std::span<const double>{cell_->upper_bounds};
  }
  [[nodiscard]] bool valid() const noexcept { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Histogram(detail::HistogramCell* cell) noexcept : cell_{cell} {}
  detail::HistogramCell* cell_ = nullptr;
};

/// Thread-safe instrument registry. Registration takes a mutex; issued
/// handles never do. Cells live until process exit (the registry only ever
/// grows), so handles can be cached in long-lived objects freely.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create by full name (including any label block).
  [[nodiscard]] Counter counter(const std::string& name);
  [[nodiscard]] Gauge gauge(const std::string& name);
  /// `upper_bounds` must be ascending; empty selects the default latency
  /// buckets (see default_buckets() / the obs_histogram_buckets key). Bounds
  /// of an already-registered histogram are never changed.
  [[nodiscard]] Histogram histogram(const std::string& name,
                                    std::span<const double> upper_bounds = {});

  /// Current value of a counter by name; 0 when it was never registered.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;

  /// Snapshot of every registered counter as (name, value), sorted by name.
  /// Feeds CounterDeltaTracker (telemetry relay) and ad-hoc health probes.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  counter_values() const;

  /// Replace the bucket bounds used when histogram() gets no explicit bounds
  /// (wired from the obs_histogram_buckets descriptor key). Affects only
  /// histograms registered afterwards.
  void set_default_buckets(std::vector<double> upper_bounds);
  [[nodiscard]] static const std::vector<double>& default_buckets();

  /// Prometheus text exposition of every instrument, names sorted.
  [[nodiscard]] std::string prometheus_text() const;
  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Histogram entries additionally carry "p50"/"p90"/"p99" quantile
  /// estimates (bucket-interpolated at exposition time, see
  /// estimate_quantile) so soak/latency gates read percentiles directly.
  [[nodiscard]] std::string json_snapshot() const;
  /// Rewrite `path` with prometheus_text(). Throws std::runtime_error on I/O
  /// failure.
  void write_prometheus(const std::string& path) const;

  /// Zero every registered cell (values only; handles stay valid). Test and
  /// bench isolation helper.
  ///
  /// Reset-vs-scrape contract: zero_all() holds mutex_ for the whole reset and
  /// every exposition (prometheus_text / json_snapshot / counter_value) holds
  /// the same mutex, so a scrape observes either the fully pre-reset or the
  /// fully post-reset state — never a half-zeroed snapshot (pinned by the
  /// ZeroAllNeverExposesHalfZeroedSnapshot regression in tests/test_obs.cpp).
  /// What stays relaxed: lock-free handle increments running concurrently with
  /// the reset may land before or after it per-cell, so a histogram hit by a
  /// concurrent observe() can transiently disagree between bucket counts and
  /// total; quiesce instrumented threads when exact zeroes matter.
  void zero_all();

  /// The process-wide registry every built-in instrument registers with.
  [[nodiscard]] static Registry& global();

 private:
  mutable util::Mutex mutex_;
  // std::map: exposition iterates in sorted-name order (deterministic output;
  // fedguard-lint forbids unordered iteration for exactly this reason). The
  // maps only ever grow, and the atomic cells they own are updated lock-free
  // by issued handles — mutex_ guards the map structure, not the cell values.
  std::map<std::string, std::unique_ptr<detail::CounterCell>> counters_
      FEDGUARD_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<detail::GaugeCell>> gauges_
      FEDGUARD_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<detail::HistogramCell>> histograms_
      FEDGUARD_GUARDED_BY(mutex_);
  std::vector<double> default_buckets_ FEDGUARD_GUARDED_BY(mutex_);
};

/// Estimate the q-quantile (q in [0, 1]) of a histogram from its finite
/// ascending `upper_bounds` and per-bucket (non-cumulative) `counts`
/// (bounds.size() + 1 entries, trailing +Inf bucket). Linear interpolation
/// inside the selected bucket, Prometheus-style: the first bucket
/// interpolates from 0, and a rank landing in the +Inf bucket reports the
/// highest finite bound. Returns 0 for an empty histogram.
[[nodiscard]] double estimate_quantile(std::span<const double> upper_bounds,
                                       std::span<const std::uint64_t> counts,
                                       double q) noexcept;

/// Tracks per-counter deltas between calls: take() returns every counter
/// whose value grew since the previous take() (first call returns all
/// non-zero counters). Used by the telemetry relay to ship per-round metric
/// deltas upward without resetting the registry.
class CounterDeltaTracker {
 public:
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> take(
      const Registry& registry);

 private:
  std::map<std::string, std::uint64_t> last_;
};

}  // namespace fedguard::obs
