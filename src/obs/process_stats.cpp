#include "obs/process_stats.hpp"

#include <cstdio>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#if defined(__unix__)
#include <unistd.h>
#endif

namespace fedguard::obs {

std::uint64_t read_rss_bytes() noexcept {
#if defined(__unix__)
  // /proc/self/statm: "size resident shared ..." in pages.
  std::FILE* file = std::fopen("/proc/self/statm", "r");
  if (file == nullptr) return 0;
  unsigned long long size_pages = 0;
  unsigned long long resident_pages = 0;
  const int fields = std::fscanf(file, "%llu %llu", &size_pages, &resident_pages);
  std::fclose(file);
  if (fields != 2) return 0;
  const long page_size = ::sysconf(_SC_PAGESIZE);
  if (page_size <= 0) return 0;
  return static_cast<std::uint64_t>(resident_pages) *
         static_cast<std::uint64_t>(page_size);
#else
  return 0;
#endif
}

std::uint64_t read_heap_allocated_bytes() noexcept {
#if defined(__GLIBC__) && __GLIBC__ >= 2 && __GLIBC_MINOR__ >= 33
  const struct mallinfo2 info = ::mallinfo2();
  return static_cast<std::uint64_t>(info.uordblks);
#else
  return 0;
#endif
}

ProcessStatsProbe::ProcessStatsProbe()
    : rss_bytes_{Registry::global().gauge("obs_rss_bytes")},
      heap_allocated_bytes_{
          Registry::global().gauge("obs_heap_allocated_bytes")},
      samples_{Registry::global().counter("obs_alloc_probe_samples_total")} {}

void ProcessStatsProbe::sample() noexcept {
  rss_bytes_.set(static_cast<std::int64_t>(read_rss_bytes()));
  heap_allocated_bytes_.set(
      static_cast<std::int64_t>(read_heap_allocated_bytes()));
  samples_.add(1);
}

}  // namespace fedguard::obs
