#pragma once
// Steady-state process invariant gauges for the soak harness (ROADMAP item
// 5): resident-set size, allocator heap footprint, and a sample counter,
// snapshotted once per round by the RoundExporter so a long-running
// federation's JSONL stream shows allocation growth (or, in a healthy
// steady state, the absence of it) without attaching a profiler.
//
// Gauges (see docs/OBSERVABILITY.md § Invariant gauges):
//   obs_rss_bytes                 resident set size from /proc/self/statm
//   obs_heap_allocated_bytes      glibc mallinfo2 in-use bytes (0 elsewhere)
//   obs_alloc_probe_samples_total samples taken (counter; proves liveness)
//
// The arena-capacity gauge (obs_arena_capacity_bytes) is set by the servers
// that own an UpdateMatrix arena, not here — capacity is their state.

#include <cstdint>

#include "obs/metrics.hpp"

namespace fedguard::obs {

/// Current resident set size in bytes (Linux /proc/self/statm; 0 when the
/// proc file is unavailable).
[[nodiscard]] std::uint64_t read_rss_bytes() noexcept;

/// Current allocator in-use bytes (glibc mallinfo2; 0 when unavailable).
[[nodiscard]] std::uint64_t read_heap_allocated_bytes() noexcept;

/// Pre-registered handles for the process gauges; sample() refreshes them.
/// Cheap enough (one /proc read + one mallinfo call) to run every round.
class ProcessStatsProbe {
 public:
  ProcessStatsProbe();

  void sample() noexcept;

 private:
  Gauge rss_bytes_;
  Gauge heap_allocated_bytes_;
  Counter samples_;
};

}  // namespace fedguard::obs
