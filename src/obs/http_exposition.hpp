#pragma once
// Minimal HTTP/1.0 exposition responder for live scraping of a running
// federation. This is deliberately transport-free: it parses a buffered
// request prefix and builds complete response byte strings, so it can be
// hosted both as auto-detected connections on the non-blocking net::Reactor
// (scrape a shard's data port mid-round) and behind the tiny standalone
// listener the in-process fl::Server path uses (net::TelemetryHttpServer).
//
// Served endpoints (anything else is a 404):
//   GET /metrics        Registry::prometheus_text()
//   GET /metrics.json   Registry::json_snapshot() (incl. p50/p90/p99)
//   GET /healthz        round progress + degraded-shard count JSON
//
// Scope: HTTP/1.0, GET/HEAD only, request headers ignored, response always
// closes the connection. That is exactly what `curl` and a Prometheus scrape
// need and nothing more; see docs/OBSERVABILITY.md § Live scrape endpoints.

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <string_view>

namespace fedguard::obs {

/// Hard ceiling on buffered request bytes before the request line ends; a
/// scraper that exceeds it is treated as garbage and dropped (keeps a
/// misbehaving peer from growing a reactor connection buffer unboundedly).
inline constexpr std::size_t kMaxHttpRequestBytes = 4096;

/// Body producers for the scrape endpoints. Callbacks run on the serving
/// thread (a reactor thread mid-round): they must be safe to call while the
/// federation runs — Registry expositions already are (registry mutex), and
/// healthz sources read counters the same way.
struct HttpResponder {
  std::function<std::string()> metrics_text;  // GET /metrics
  std::function<std::string()> metrics_json;  // GET /metrics.json
  std::function<std::string()> healthz;       // GET /healthz

  [[nodiscard]] bool enabled() const noexcept {
    return static_cast<bool>(metrics_text) ||
           static_cast<bool>(metrics_json) || static_cast<bool>(healthz);
  }
};

/// True when a buffered connection prefix looks like the start of an HTTP
/// GET/HEAD request rather than an FGNM frame. Callable with any prefix
/// length; a prefix shorter than the method token only matches when every
/// byte seen so far agrees with one.
[[nodiscard]] bool looks_like_http(std::span<const std::byte> prefix) noexcept;

enum class HttpParseStatus {
  NeedMore,  // request line incomplete, keep reading
  Ready,     // request line parsed; `path` is valid
  Bad,       // not HTTP / oversized / unsupported method — drop the peer
};

struct HttpRequest {
  HttpParseStatus status = HttpParseStatus::NeedMore;
  std::string path;
};

/// Parse the request line out of buffered bytes. Accepts "GET <path>
/// HTTP/1.x" and HEAD; the response is written as soon as the request line
/// is complete (headers that follow are irrelevant to a scrape and the
/// HTTP/1.0 close semantics make that safe).
[[nodiscard]] HttpRequest parse_http_request(
    std::span<const std::byte> data,
    std::size_t max_request_bytes = kMaxHttpRequestBytes);

/// Build a complete HTTP/1.0 response (status line + headers + body).
[[nodiscard]] std::string http_response(int status_code,
                                        std::string_view content_type,
                                        std::string_view body);

/// Route `path` through the responder: 200 with the endpoint body, 404 for
/// unknown paths, 503 when the endpoint's callback is not wired.
[[nodiscard]] std::string http_response_for(const HttpResponder& responder,
                                            const std::string& path);

/// Standard /healthz body derived from the global registry: round progress
/// from `rounds_counter`, degradation from `degraded_counter` (either may be
/// empty when the host has no such notion — the field is then omitted).
[[nodiscard]] std::string healthz_json(const std::string& rounds_counter,
                                       const std::string& degraded_counter);

}  // namespace fedguard::obs
