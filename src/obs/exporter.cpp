#include "obs/exporter.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <stdexcept>

#include "util/logging.hpp"

namespace fedguard::obs {

namespace {

std::atomic<RoundExporter*> g_exporter{nullptr};

}  // namespace

std::vector<double> parse_histogram_buckets(const std::string& spec) {
  std::vector<double> bounds;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      throw std::invalid_argument{"obs_histogram_buckets: bad bound '" + token +
                                  "'"};
    }
    if (!bounds.empty() && value <= bounds.back()) {
      throw std::invalid_argument{
          "obs_histogram_buckets: bounds must be strictly ascending"};
    }
    bounds.push_back(value);
    pos = comma + 1;
  }
  if (bounds.empty()) {
    throw std::invalid_argument{"obs_histogram_buckets: empty bucket list"};
  }
  return bounds;
}

RoundExporter::RoundExporter(ObsOptions options) : options_{std::move(options)} {
  if (!options_.histogram_buckets.empty()) {
    Registry::global().set_default_buckets(options_.histogram_buckets);
  }
  if (!options_.trace_path.empty()) {
    trace_ = std::make_unique<TraceSession>(options_.trace_path);
  }
  if (!options_.metrics_path.empty()) {
    // Truncate the per-round snapshot log so a rerun starts clean.
    std::ofstream{options_.metrics_path + ".jsonl", std::ios::trunc};
  }
  RoundExporter* expected = nullptr;
  installed_ = g_exporter.compare_exchange_strong(expected, this,
                                                 std::memory_order_release,
                                                 std::memory_order_relaxed);
  if (!installed_) {
    util::log_warn("obs: a RoundExporter is already installed; this one is inert");
  }
}

RoundExporter::~RoundExporter() {
  if (installed_) g_exporter.store(nullptr, std::memory_order_release);
  try {
    flush();
  } catch (const std::exception& e) {
    util::log_warn("obs: final exporter flush failed: %s", e.what());
  }
}

void RoundExporter::on_round_end(std::size_t round_index) {
  const util::MutexLock lock{io_mutex_};
  process_stats_.sample();
  if (!options_.metrics_path.empty()) {
    std::ofstream log{options_.metrics_path + ".jsonl", std::ios::app};
    if (log) {
      log << "{\"round\":" << round_index
          << ",\"metrics\":" << Registry::global().json_snapshot() << "}\n";
    }
  }
  if (options_.flush_every_rounds != 0 &&
      (round_index + 1) % options_.flush_every_rounds == 0) {
    flush_locked();
  }
}

void RoundExporter::flush() {
  const util::MutexLock lock{io_mutex_};
  flush_locked();
}

void RoundExporter::flush_locked() {
  if (!options_.metrics_path.empty()) {
    Registry::global().write_prometheus(options_.metrics_path);
  }
  if (trace_) trace_->flush();
}

void round_tick(std::size_t round_index) {
  RoundExporter* exporter = g_exporter.load(std::memory_order_acquire);
  if (exporter != nullptr) exporter->on_round_end(round_index);
}

}  // namespace fedguard::obs
