#pragma once
// Scoped tracer: RAII obs::Span instances record B/E (begin/end) event pairs
// into per-thread buffers owned by the active obs::TraceSession, which
// flushes them as Chrome trace_event JSON — load the file at ui.perfetto.dev
// or chrome://tracing. Span categories form a fixed taxonomy (`round`,
// `client.train`, `client.cvae`, `serialize`, `net.frame`, `agg.<strategy>`,
// `kernel.gemm`, `pool.task`) documented in docs/OBSERVABILITY.md;
// fedguard-lint (rule span-category-docs) keeps code and doc in sync.
//
// Cost model: with no session installed a span is one relaxed atomic load.
// With a session active, an append is a short critical section on the
// calling thread's own buffer mutex (contended only while flush() drains).
// Hot kernels use the FEDGUARD_TRACE_SPAN macro, which compiles to nothing
// when the FEDGUARD_TRACE CMake option is OFF — a disabled build carries
// zero tracing instructions (tests/obs_trace_off_probe.cpp pins this).
//
// Threading contract: install at most one session at a time, and destroy it
// only after every instrumented thread has quiesced (worker pools joined or
// idle). Both servers satisfy this by construction — the exporter outlives
// the run loop.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/thread_annotations.hpp"

namespace fedguard::obs {

/// Monotonic (steady_clock) timestamp in nanoseconds. The single time source
/// for span durations AND RoundRecord::round_seconds, so Table V timing and
/// trace spans can never disagree by clock domain.
[[nodiscard]] std::uint64_t now_ns() noexcept;

class Span;

/// Cross-process trace correlation context. The round driver (root server)
/// derives trace_id from (run seed, round) via make_trace_id, installs the
/// context process-wide for the duration of the round, and carries it to
/// remote processes inside RoundRequest frames; every Span recorded while a
/// context is installed is stamped with it (emitted as Perfetto args), which
/// is what lets one round's client/shard/root spans be correlated across
/// process boundaries. trace_id == 0 means "no context".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
  std::uint64_t round = 0;
};

/// Install / clear / read the process-wide trace context. Fields are stored
/// as independent relaxed atomics: rounds are sequenced by the driver, so a
/// racing reader at a round boundary sees a harmless mix of two adjacent
/// contexts at worst, never a torn value.
void set_trace_context(const TraceContext& context) noexcept;
void clear_trace_context() noexcept;
[[nodiscard]] TraceContext current_trace_context() noexcept;

/// Deterministic nonzero trace id for (seed, round): splitmix64 finalizer
/// over the pair, so every process in the federation derives the same id for
/// the same round without coordination.
[[nodiscard]] std::uint64_t make_trace_id(std::uint64_t seed,
                                          std::uint64_t round) noexcept;

/// One drained trace event in wire-friendly form: absolute ts_ns in the
/// recording process's clock domain (relay code rebases across hosts), pid 0
/// meaning "the owning session's lane". Produced by TraceSession::take_events
/// and consumed by TraceSession::ingest on the receiving side.
struct TraceEventRecord {
  std::string name;
  std::string category;
  std::uint64_t ts_ns = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t round = 0;
  int pid = 0;
  int tid = 0;
  char phase = 'B';
};

/// Owns the per-thread trace buffers and the output file for one recording.
/// Constructing installs the session process-wide (spans start recording);
/// destruction flushes and uninstalls.
class TraceSession {
 public:
  /// `events_per_thread` bounds each thread's buffer between flushes; a span
  /// that would overflow its thread's buffer is dropped whole (both B and E,
  /// so the written trace always stays balanced) and counted.
  explicit TraceSession(std::string path, std::size_t events_per_thread = 1 << 16);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Drain every thread buffer and rewrite the trace file with all events
  /// recorded so far. Safe to call while spans are being recorded, and safe
  /// to call from concurrent threads (flush_mutex_ serializes whole flushes).
  /// A session constructed with an empty path collects events without writing
  /// a file (relay-only mode: take_events is the sole consumer).
  void flush() FEDGUARD_EXCLUDES(flush_mutex_);

  /// Drain the thread buffers and move out every event accumulated since the
  /// previous take_events()/flush() — the telemetry-relay producer side.
  /// Taken events will NOT appear in this session's own trace file; use a
  /// relay-only (empty-path) session when the process also wants a local
  /// trace.
  [[nodiscard]] std::vector<TraceEventRecord> take_events()
      FEDGUARD_EXCLUDES(flush_mutex_);

  /// Append foreign events (already rebased into this process's now_ns()
  /// clock domain by the caller) to the merged timeline. Each event's pid
  /// lane is kept verbatim, which is how one root trace file shows client /
  /// shard / root lanes side by side.
  void ingest(std::span<const TraceEventRecord> events)
      FEDGUARD_EXCLUDES(flush_mutex_);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// Perfetto pid lane for locally recorded events (default 1; the
  /// distributed demo sets the real process id so merged traces keep one
  /// lane per process).
  void set_pid(int pid) noexcept { pid_ = pid; }
  [[nodiscard]] int pid() const noexcept { return pid_; }
  /// Spans dropped to buffer overflow since construction (0 in healthy runs;
  /// raise events_per_thread or flush more often otherwise).
  [[nodiscard]] std::uint64_t dropped_spans() const noexcept;
  /// True when some session is currently installed process-wide.
  [[nodiscard]] static bool active() noexcept;

 private:
  friend class Span;

  struct Event {
    std::string name;
    std::string category;
    std::uint64_t ts_ns = 0;
    std::uint64_t trace_id = 0;  // stamped from the installed TraceContext
    std::uint64_t round = 0;
    char phase = 'B';
    int pid = 0;  // 0 = this session's lane; ingested events carry their own
    int tid = 0;  // stamped from the owning buffer when drained
  };
  struct ThreadBuffer {
    // mutable: dropped_spans() aggregates over const sessions; the mutex is
    // synchronization state, not logical state.
    mutable util::Mutex mutex;
    std::vector<Event> events FEDGUARD_GUARDED_BY(mutex);
    // E slots reserved by not-yet-closed spans.
    std::size_t open_spans FEDGUARD_GUARDED_BY(mutex) = 0;
    std::uint64_t dropped FEDGUARD_GUARDED_BY(mutex) = 0;
    int tid FEDGUARD_GUARDED_BY(mutex) = 0;
  };

  [[nodiscard]] ThreadBuffer* buffer_for_current_thread()
      FEDGUARD_EXCLUDES(buffers_mutex_);
  void drain_buffers_locked() FEDGUARD_REQUIRES(flush_mutex_)
      FEDGUARD_EXCLUDES(buffers_mutex_);
  void write_file() FEDGUARD_REQUIRES(flush_mutex_);

  // Per-thread buffer cache, keyed by session epoch so a pointer from a
  // previous (destroyed) session can never be reused.
  static thread_local std::uint64_t t_buffer_epoch;
  static thread_local ThreadBuffer* t_buffer;

  std::string path_;
  std::size_t events_per_thread_;
  std::uint64_t epoch_ = 0;     // unique per session; keys thread-local caches
  std::uint64_t start_ns_ = 0;  // trace timestamps are relative to this
  int pid_ = 1;                 // Perfetto lane for locally recorded events
  bool installed_ = false;
  // Lock order: flush_mutex_ -> buffers_mutex_ -> ThreadBuffer::mutex.
  // mutable: dropped_spans() is a const observer that must still lock.
  mutable util::Mutex buffers_mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_
      FEDGUARD_GUARDED_BY(buffers_mutex_);
  util::Mutex flush_mutex_;
  // Drained events, in flush order.
  std::vector<Event> flushed_ FEDGUARD_GUARDED_BY(flush_mutex_);
};

/// Ingest foreign (relayed) events into the currently installed session, if
/// any; returns false when no session is active. Same quiescence contract as
/// Span: callers must not outlive the session (both servers tear down their
/// reactors before the exporter).
bool ingest_into_active_session(std::span<const TraceEventRecord> events);

/// RAII span: records a B event at construction and the matching E event at
/// destruction on the same thread. Near-free when no session is installed.
/// Categories must come from the documented taxonomy; prefer the
/// FEDGUARD_TRACE_SPAN macro so disabled builds compile the span away.
class Span {
 public:
  Span(std::string category, std::string name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceSession::ThreadBuffer* buffer_ = nullptr;
  std::string category_;
  std::string name_;
};

}  // namespace fedguard::obs

// Compile-time tracing switch (CMake option FEDGUARD_TRACE, default ON; the
// obs target publishes FEDGUARD_TRACE_ENABLED). When OFF the macro expands to
// a no-op expression: no Span object, no obs symbol references, bit-for-bit
// identical science (pinned by tests/test_update_pipeline.cpp goldens).
#if defined(FEDGUARD_TRACE_ENABLED)
#define FEDGUARD_TRACE_CONCAT_IMPL(a, b) a##b
#define FEDGUARD_TRACE_CONCAT(a, b) FEDGUARD_TRACE_CONCAT_IMPL(a, b)
#define FEDGUARD_TRACE_SPAN(category, name)                 \
  const ::fedguard::obs::Span FEDGUARD_TRACE_CONCAT(        \
      fedguard_trace_span_, __COUNTER__) {                  \
    (category), (name)                                      \
  }
#else
#define FEDGUARD_TRACE_SPAN(category, name) static_cast<void>(0)
#endif
