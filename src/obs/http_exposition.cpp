#include "obs/http_exposition.hpp"

#include <exception>

#include "obs/metrics.hpp"

namespace fedguard::obs {

namespace {

constexpr std::string_view kGet = "GET ";
constexpr std::string_view kHead = "HEAD ";

bool prefix_matches(std::span<const std::byte> prefix,
                    std::string_view token) noexcept {
  const std::size_t n = prefix.size() < token.size() ? prefix.size() : token.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (static_cast<char>(prefix[i]) != token[i]) return false;
  }
  return true;
}

std::string_view status_reason(int status_code) noexcept {
  switch (status_code) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

std::string guarded_body(const std::function<std::string()>& producer,
                         bool& failed) {
  failed = false;
  try {
    return producer();
  } catch (const std::exception&) {
    // A scrape must never take the federation down; surface the failure to
    // the scraper instead.
    failed = true;
    return "exposition callback failed";
  }
}

}  // namespace

bool looks_like_http(std::span<const std::byte> prefix) noexcept {
  if (prefix.empty()) return false;
  return prefix_matches(prefix, kGet) || prefix_matches(prefix, kHead);
}

HttpRequest parse_http_request(std::span<const std::byte> data,
                               std::size_t max_request_bytes) {
  HttpRequest request;
  // Find the end of the request line ('\n'; a preceding '\r' is trimmed).
  std::size_t line_end = data.size();
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (static_cast<char>(data[i]) == '\n') {
      line_end = i;
      break;
    }
  }
  if (line_end == data.size()) {
    request.status = data.size() >= max_request_bytes ? HttpParseStatus::Bad
                                                      : HttpParseStatus::NeedMore;
    return request;
  }
  std::string line;
  line.reserve(line_end);
  for (std::size_t i = 0; i < line_end; ++i) line += static_cast<char>(data[i]);
  if (!line.empty() && line.back() == '\r') line.pop_back();

  // METHOD SP PATH SP "HTTP/..."
  const std::size_t method_end = line.find(' ');
  if (method_end == std::string::npos) {
    request.status = HttpParseStatus::Bad;
    return request;
  }
  const std::string method = line.substr(0, method_end);
  if (method != "GET" && method != "HEAD") {
    request.status = HttpParseStatus::Bad;
    return request;
  }
  const std::size_t path_begin = method_end + 1;
  const std::size_t path_end = line.find(' ', path_begin);
  if (path_end == std::string::npos || path_end == path_begin ||
      line.compare(path_end + 1, 5, "HTTP/") != 0) {
    request.status = HttpParseStatus::Bad;
    return request;
  }
  request.path = line.substr(path_begin, path_end - path_begin);
  request.status = HttpParseStatus::Ready;
  return request;
}

std::string http_response(int status_code, std::string_view content_type,
                          std::string_view body) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.0 ";
  out += std::to_string(status_code);
  out += ' ';
  out += status_reason(status_code);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

std::string http_response_for(const HttpResponder& responder,
                              const std::string& path) {
  const std::function<std::string()>* producer = nullptr;
  std::string_view content_type = "text/plain; charset=utf-8";
  if (path == "/metrics") {
    producer = &responder.metrics_text;
  } else if (path == "/metrics.json") {
    producer = &responder.metrics_json;
    content_type = "application/json";
  } else if (path == "/healthz") {
    producer = &responder.healthz;
    content_type = "application/json";
  } else {
    return http_response(404, "text/plain; charset=utf-8", "not found\n");
  }
  if (producer == nullptr || !*producer) {
    return http_response(503, "text/plain; charset=utf-8",
                         "endpoint not wired\n");
  }
  bool failed = false;
  const std::string body = guarded_body(*producer, failed);
  if (failed) return http_response(503, "text/plain; charset=utf-8", body);
  return http_response(200, content_type, body);
}

std::string healthz_json(const std::string& rounds_counter,
                         const std::string& degraded_counter) {
  const Registry& registry = Registry::global();
  std::string out = "{\"status\":\"ok\"";
  if (!rounds_counter.empty()) {
    out += ",\"rounds_completed\":";
    out += std::to_string(registry.counter_value(rounds_counter));
  }
  if (!degraded_counter.empty()) {
    out += ",\"degraded_rounds\":";
    out += std::to_string(registry.counter_value(degraded_counter));
  }
  out += "}\n";
  return out;
}

}  // namespace fedguard::obs
