#pragma once
// Round-driven exporter: ties the metrics registry and tracer to files.
//
// ObsOptions is the descriptor-facing knob panel (obs_trace_path,
// obs_metrics_path, obs_flush_every_rounds, obs_histogram_buckets — see
// docs/CONFIG_REFERENCE.md). RoundExporter turns it into behaviour: it owns
// the TraceSession (when a trace path is set), appends one registry JSON
// snapshot per round to <obs_metrics_path>.jsonl, and on the configured
// cadence rewrites the Prometheus text file and flushes the trace.
//
// Both servers report round completion through the free function
// obs::round_tick(), which is a relaxed atomic load + nothing when no
// exporter is installed — servers stay oblivious to whether observability is
// on. Install at most one exporter at a time (the runner owns it for the
// duration of Federation::run()).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/process_stats.hpp"
#include "obs/trace.hpp"
#include "util/thread_annotations.hpp"

namespace fedguard::obs {

/// Observability configuration, one field per obs_* descriptor key. Empty
/// paths disable the corresponding output entirely.
struct ObsOptions {
  std::string trace_path;    // Chrome trace_event JSON (Perfetto-loadable)
  std::string metrics_path;  // Prometheus text; JSON snapshots at .jsonl
  // Rewrite metrics / flush trace every N rounds; 0 = only at teardown. The
  // per-round JSONL snapshot is appended every round regardless.
  std::size_t flush_every_rounds = 1;
  // Histogram bucket upper bounds for histograms registered without explicit
  // bounds; empty keeps Registry::default_buckets().
  std::vector<double> histogram_buckets;
  // Live scrape endpoint base port (obs_http_port key / --metrics-port flag);
  // 0 disables. The root (or the in-process server) serves on this port and
  // shard aggregator i serves on http_port + 1 + i — see
  // docs/OBSERVABILITY.md § Live scrape endpoints. Hosted by the net layer
  // (net::TelemetryHttpServer / reactor-attached responders), not by the
  // RoundExporter.
  std::uint16_t http_port = 0;

  [[nodiscard]] bool enabled() const noexcept {
    return !trace_path.empty() || !metrics_path.empty();
  }
};

/// Parse the obs_histogram_buckets descriptor value: comma-separated ascending
/// doubles, e.g. "0.001,0.01,0.1,1". Throws std::invalid_argument on garbage
/// or non-ascending bounds.
[[nodiscard]] std::vector<double> parse_histogram_buckets(const std::string& spec);

/// Installed by the runner around a federation run; uninstalls + final-flushes
/// on destruction. Construction applies histogram_buckets to the global
/// registry and opens the trace session.
class RoundExporter {
 public:
  explicit RoundExporter(ObsOptions options);
  ~RoundExporter();

  RoundExporter(const RoundExporter&) = delete;
  RoundExporter& operator=(const RoundExporter&) = delete;

  /// Called (via round_tick) after each completed round. Appends the JSON
  /// snapshot line and honours the flush cadence. Safe from concurrent
  /// reporting threads (sharded aggregators): io_mutex_ serializes the file
  /// writes.
  void on_round_end(std::size_t round_index) FEDGUARD_EXCLUDES(io_mutex_);

  /// Force a metrics rewrite + trace flush now (teardown path).
  void flush() FEDGUARD_EXCLUDES(io_mutex_);

  [[nodiscard]] const ObsOptions& options() const noexcept { return options_; }

 private:
  void flush_locked() FEDGUARD_REQUIRES(io_mutex_);

  ObsOptions options_;  // immutable after construction
  // Serializes every file write (metrics text, JSONL snapshots, trace flush)
  // so round_tick can be called from concurrent shard threads.
  util::Mutex io_mutex_;
  std::unique_ptr<TraceSession> trace_ FEDGUARD_PT_GUARDED_BY(io_mutex_);
  // Sampled under io_mutex_ every round so the JSONL snapshot that follows
  // carries fresh steady-state invariant gauges (rss/heap/arena).
  ProcessStatsProbe process_stats_ FEDGUARD_GUARDED_BY(io_mutex_);
  bool installed_ = false;
};

/// Report a completed round to the installed exporter, if any. No-op (one
/// relaxed atomic load) when observability is off.
void round_tick(std::size_t round_index);

}  // namespace fedguard::obs
